// Package serve implements dfenced's crash-safe synthesis service: a
// durable job queue over a filesystem spool, per-job supervised execution
// with bounded retry/backoff and permanent-failure quarantine, journal-
// based checkpoint/resume (a job killed mid-run restarts from its last
// completed round, bit-identical to an uninterrupted run), a whole-run
// result memo keyed on the program fingerprint plus the determinism-
// relevant configuration, and a graceful drain that stops in-flight jobs
// at their next round boundary with checkpoints flushed.
//
// Every piece of state a restart needs lives in the spool (see spool.go);
// the Server itself holds only an in-memory mirror. Crash anywhere,
// restart with the same -spool, and New re-discovers the queue: done jobs
// stay done, queued and running jobs requeue, and their journals resume.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dfence/internal/core"
	"dfence/internal/ir"
	"dfence/internal/telemetry"
	"dfence/internal/trace"
)

// Options configures a Server.
type Options struct {
	// Dir is the spool directory (created if missing). Required.
	Dir string
	// Jobs is the number of jobs run concurrently. Default 2.
	Jobs int
	// MaxAttempts quarantines a job after this many transient failures.
	// Default 3.
	MaxAttempts int
	// QueueLimit sheds new submissions (HTTP 429) once this many jobs are
	// queued or running. Default 64.
	QueueLimit int
	// BackoffBase and BackoffMax bound the exponential retry backoff:
	// attempt n waits Base*2^(n-1) (capped at Max) plus up to 25% jitter.
	// Defaults 500ms and 30s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// FaultHook, if non-nil, runs before each job attempt; a non-nil
	// error fails the attempt transiently. The retry/backoff tests' seam.
	FaultHook func(job *Job, attempt int) error
}

func (o *Options) fill() {
	if o.Jobs <= 0 {
		o.Jobs = 2
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 64
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 500 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 30 * time.Second
	}
}

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrDraining: the server is shutting down and accepts no new work.
	ErrDraining = errors.New("serve: draining")
	// ErrOverloaded: the queue is at QueueLimit; retry later.
	ErrOverloaded = errors.New("serve: queue full")
)

// Server is the dfenced job engine. Create with New, start workers with
// Start, stop with Drain.
type Server struct {
	opts     Options
	sp       *spool
	registry *telemetry.Registry
	metrics  *telemetry.Metrics
	status   *telemetry.Status

	queue   chan string
	drainCh chan struct{}
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	timers   map[string]*time.Timer
	tracers  map[string]*trace.Tracer // live per-job tracers (running attempts)
	draining bool
	seq      int64
	rng      *rand.Rand // backoff jitter; guarded by mu
}

// New opens (or creates) the spool and re-discovers its jobs: terminal
// records are kept for status queries, queued and running ones are
// requeued — a record found "running" belonged to a process that died,
// and its journal's last checkpoint is where the rerun will resume.
func New(opts Options) (*Server, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, fmt.Errorf("serve: Options.Dir is required")
	}
	sp, err := openSpool(opts.Dir)
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry(runtime.NumCPU())
	s := &Server{
		opts:     opts,
		sp:       sp,
		registry: reg,
		metrics:  telemetry.NewMetrics(reg),
		status:   &telemetry.Status{},
		queue:    make(chan string, 4096),
		drainCh:  make(chan struct{}),
		jobs:     make(map[string]*Job),
		timers:   make(map[string]*time.Timer),
		tracers:  make(map[string]*trace.Tracer),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	existing, err := sp.loadJobs()
	if err != nil {
		return nil, err
	}
	for _, j := range existing {
		s.jobs[j.ID] = j
		switch j.State {
		case StateRunning:
			// The previous process died mid-run. Requeue; the run journal's
			// checkpoints make the rerun a resume, not a restart.
			j.State = StateQueued
			j.UpdateTime = time.Now()
			if err := sp.saveJob(j); err != nil {
				return nil, err
			}
			s.enqueue(j.ID)
		case StateQueued:
			s.enqueue(j.ID)
		}
	}
	return s, nil
}

// Start launches the worker pool. Call once.
func (s *Server) Start() {
	for i := 0; i < s.opts.Jobs; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.drainCh:
					return
				case id := <-s.queue:
					s.runJob(id)
				}
			}
		}()
	}
}

// Drain stops the server gracefully: no new submissions, retry timers
// cancelled, and every in-flight synthesis told to stop at its next round
// boundary (Config.Interrupt) — where its checkpoint is already flushed
// and fsynced, so the interrupted jobs requeue with zero lost rounds. It
// returns when all workers have exited or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
		for id, t := range s.timers {
			t.Stop()
			delete(s.timers, id)
		}
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// Ready reports whether the server accepts work — the /readyz gate.
func (s *Server) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	return nil
}

// enqueue hands a job id to the worker pool without ever blocking the
// caller: if the channel is momentarily full (a huge spool requeue), the
// send retries on a goroutine that gives up when the server drains.
func (s *Server) enqueue(id string) {
	select {
	case s.queue <- id:
	default:
		go func() {
			select {
			case s.queue <- id:
			case <-s.drainCh:
			}
		}()
	}
}

// newID mints a sortable, restart-unique job id.
func (s *Server) newID() string {
	s.seq++
	return fmt.Sprintf("j%016x-%03x", time.Now().UnixNano(), s.seq&0xfff)
}

// Submit validates and enqueues a job. The flow mirrors what the HTTP
// handler reports: a memo hit returns an already-done job without running
// anything; a submission identical to a live (queued or running) job
// coalesces onto it; otherwise a fresh job is persisted and queued.
// coalesced is true in the second case (including memo hits against a
// terminal job record — the returned job is simply the existing one).
// The returned record is a snapshot: workers keep mutating the live one.
func (s *Server) Submit(spec JobSpec) (job *Job, coalesced bool, err error) {
	prog, _, start, err := spec.build()
	if err != nil {
		return nil, false, err
	}
	key := memoKey(prog, start)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	// Coalesce onto a live twin before counting queue depth: pointing the
	// client at existing work costs nothing.
	for _, ej := range s.jobs {
		if ej.MemoKey == key && !ej.State.terminal() {
			cp := *ej
			return &cp, true, nil
		}
	}
	now := time.Now()
	if r, ok := s.sp.loadMemo(key); ok {
		j := &Job{
			ID: s.newID(), Spec: spec, State: StateDone,
			MemoKey: key, FromMemo: true, Result: r,
			SubmitTime: now, UpdateTime: now,
		}
		if err := s.sp.saveJob(j); err != nil {
			return nil, false, err
		}
		s.jobs[j.ID] = j
		cp := *j
		return &cp, false, nil
	}
	pending := 0
	for _, ej := range s.jobs {
		if !ej.State.terminal() {
			pending++
		}
	}
	if pending >= s.opts.QueueLimit {
		return nil, false, ErrOverloaded
	}
	j := &Job{
		ID: s.newID(), Spec: spec, State: StateQueued,
		MemoKey: key, SubmitTime: now, UpdateTime: now,
	}
	if err := s.sp.saveJob(j); err != nil {
		return nil, false, err
	}
	s.jobs[j.ID] = j
	s.enqueue(j.ID)
	cp := *j
	return &cp, false, nil
}

// Jobs returns a snapshot of every job record, sorted by ID (submission
// order).
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		cp := *j
		out = append(out, &cp)
	}
	sortJobs(out)
	return out
}

// JobByID returns a snapshot of one job.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	cp := *j
	return &cp, true
}

// JournalPath exposes where a job's run journal lives (for the HTTP
// journal endpoint and the smoke tests).
func (s *Server) JournalPath(id string) string { return s.sp.journalPath(id) }

// TracePath exposes where a job's span-trace file lives (written after
// each attempt; absent until the job has run at least once).
func (s *Server) TracePath(id string) string { return s.sp.tracePath(id) }

// Tracez renders the live span-trace summary of every attempt currently
// running — the body dfenced serves at /tracez.
func (s *Server) Tracez() string {
	s.mu.Lock()
	type entry struct {
		id string
		tr *trace.Tracer
	}
	live := make([]entry, 0, len(s.tracers))
	for id, tr := range s.tracers {
		live = append(live, entry{id, tr})
	}
	s.mu.Unlock()
	if len(live) == 0 {
		return "no jobs running\n"
	}
	sort.Slice(live, func(a, b int) bool { return live[a].id < live[b].id })
	var b strings.Builder
	for _, e := range live {
		fmt.Fprintf(&b, "== job %s ==\n%s\n", e.id, e.tr.Summary())
	}
	return b.String()
}

func sortJobs(jobs []*Job) {
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && jobs[k].ID < jobs[k-1].ID; k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
}

// setState transitions a job under the lock and persists the record. The
// spool write happening inside the lock keeps disk and memory ordered:
// no later transition can overtake an earlier one's persistence.
func (s *Server) setState(j *Job, mut func(*Job)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mut(j)
	j.UpdateTime = time.Now()
	_ = s.sp.saveJob(j) // spool write failure must not take the server down
}

// runJob executes one queued job attempt end to end.
func (s *Server) runJob(id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.State.terminal() || j.State == StateRunning {
		s.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.UpdateTime = time.Now()
	_ = s.sp.saveJob(j)
	s.mu.Unlock()

	prog, cfg, start, err := j.Spec.build()
	if err != nil {
		// The spec cannot compile; no retry will change that.
		s.setState(j, func(j *Job) { j.State = StateFailed; j.Error = err.Error() })
		return
	}
	if j.MemoKey == "" {
		s.setState(j, func(j *Job) { j.MemoKey = memoKey(prog, start) })
	}
	if r, ok := s.sp.loadMemo(j.MemoKey); ok {
		// An identical job finished (possibly in a previous process life)
		// while this one waited.
		s.setState(j, func(j *Job) { j.State = StateDone; j.FromMemo = true; j.Result = r })
		return
	}

	// Open the run journal: resume it if a previous attempt (or process
	// life) left one behind, otherwise start fresh. A journal too corrupt
	// to resume is discarded — the job simply runs from round one.
	jp := s.sp.journalPath(id)
	var (
		journal *telemetry.Journal
		kept    []telemetry.Event
	)
	if _, serr := os.Stat(jp); serr == nil {
		journal, kept, err = telemetry.ResumeJournal(jp)
		if err != nil {
			os.Remove(jp)
			journal, kept = nil, nil
		}
	}
	if journal == nil {
		journal, err = telemetry.CreateJournal(jp)
		if err != nil {
			s.failTransient(j, fmt.Errorf("create journal: %w", err))
			return
		}
	}
	if len(kept) == 0 {
		journal.Emit(start)
	}
	journal.SyncOnCheckpoint(true)
	if rs, rerr := core.ResumeFromEvents(kept); rerr == nil && rs != nil {
		cfg.Resume = rs
	}
	cfg.Sink = telemetry.MultiSink(journal, s.status)
	cfg.Interrupt = s.drainCh
	cfg.Metrics = s.metrics

	// Every attempt gets its own span tracer: the job span's "round" slot
	// carries the attempt number, worker lanes match the job's Workers
	// setting, and the snapshot is written to the spool whatever the
	// outcome — best-effort observability, never job-fatal. While the
	// attempt runs the tracer is also registered for the live /tracez view.
	tracer := trace.New(trace.Options{Lanes: cfg.Workers})
	cfg.Tracer = tracer
	jobSpan := tracer.Begin(0, trace.SpanJob, j.Attempts+1)
	s.mu.Lock()
	s.tracers[id] = tracer
	s.mu.Unlock()
	defer func() {
		jobSpan.End()
		s.mu.Lock()
		delete(s.tracers, id)
		s.mu.Unlock()
		_ = tracer.WriteJSONFile(s.sp.tracePath(id))
	}()

	if hook := s.opts.FaultHook; hook != nil {
		if herr := hook(j, j.Attempts+1); herr != nil {
			journal.Close()
			s.failTransient(j, herr)
			return
		}
	}

	res, panicked, err := superviseSynthesize(prog, cfg)
	if cerr := journal.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("journal: %w", cerr)
	}
	switch {
	case panicked:
		// A panic is containment working, not proof the job is hopeless —
		// retry with backoff, resuming from the journal's last checkpoint.
		s.failTransient(j, err)
	case err != nil:
		// Synthesize errors are deterministic functions of (program,
		// config): rerunning reproduces them, so fail permanently.
		s.setState(j, func(j *Job) { j.State = StateFailed; j.Error = err.Error() })
	case res.Interrupted:
		// Drain landed at a round boundary. Back to the queue with no
		// attempt charged — the next process life resumes the journal.
		s.setState(j, func(j *Job) { j.State = StateQueued })
	default:
		digest := resultDigest(res)
		s.setState(j, func(j *Job) { j.State = StateDone; j.Result = digest; j.Error = "" })
		_ = s.sp.saveMemo(j.MemoKey, digest)
	}
}

// superviseSynthesize contains a panicking synthesis run the way the
// scheduler contains panicking executions: recovered into an error, with
// the panicked bit telling the retry policy it was a crash (transient,
// retry from the last checkpoint) rather than a deterministic refusal
// (permanent).
func superviseSynthesize(prog *ir.Program, cfg core.Config) (res *core.Result, panicked bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, panicked = nil, true
			err = fmt.Errorf("synthesis panicked: %v", p)
		}
	}()
	res, err = core.Synthesize(prog, cfg)
	return res, false, err
}

// failTransient records a failed attempt and either schedules a
// backoff-delayed retry or quarantines the job once MaxAttempts is
// reached. The job is persisted as queued (with NextRetry) before the
// timer starts, so a crash during the backoff window still requeues it at
// the next startup.
func (s *Server) failTransient(j *Job, cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.Attempts++
	j.Error = cause.Error()
	j.UpdateTime = time.Now()
	if j.Attempts >= s.opts.MaxAttempts {
		j.State = StateQuarantined
		_ = s.sp.saveJob(j)
		return
	}
	backoff := s.opts.BackoffBase << (j.Attempts - 1)
	if backoff > s.opts.BackoffMax || backoff <= 0 {
		backoff = s.opts.BackoffMax
	}
	// Up to 25% jitter, so a fleet of jobs felled by one cause does not
	// retry in lockstep.
	backoff += time.Duration(s.rng.Int63n(int64(backoff)/4 + 1))
	j.State = StateQueued
	j.NextRetry = time.Now().Add(backoff)
	_ = s.sp.saveJob(j)
	if s.draining {
		return // the record says queued; the next process life retries it
	}
	id := j.ID
	s.timers[id] = time.AfterFunc(backoff, func() {
		s.mu.Lock()
		delete(s.timers, id)
		draining := s.draining
		s.mu.Unlock()
		if !draining {
			s.enqueue(id)
		}
	})
}
