package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, submitResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, sr
}

// TestHTTPLifecycle drives the full API surface over httptest: submit,
// poll to done, fetch the record and journal, resubmit into the memo,
// and exercise the introspection endpoints.
func TestHTTPLifecycle(t *testing.T) {
	s := newServer(t, t.TempDir(), nil)
	s.Start()
	defer drain(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specJSON, err := json.Marshal(mailboxSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, sr := postJob(t, ts, string(specJSON))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if sr.ID == "" || sr.State != StateQueued {
		t.Fatalf("submit response: %+v", sr)
	}

	// Poll GET /jobs/{id} until done.
	var job Job
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/jobs/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&job)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if job.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != StateDone || job.Result == nil || len(job.Result.Fences) != 1 {
		t.Fatalf("job over HTTP: state=%s result=%+v", job.State, job.Result)
	}

	// The journal endpoint serves the full JSONL stream.
	r, err := http.Get(ts.URL + "/jobs/" + sr.ID + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ev":"Converged"`) {
		t.Fatalf("journal endpoint: status=%d body=%q...", r.StatusCode, body[:min(80, len(body))])
	}

	// Resubmission: 200 with from_memo.
	resp2, sr2 := postJob(t, ts, string(specJSON))
	if resp2.StatusCode != http.StatusOK || !sr2.FromMemo {
		t.Fatalf("memo resubmit: status=%d resp=%+v", resp2.StatusCode, sr2)
	}
	if sr2.Result == nil || len(sr2.Result.Fences) != 1 {
		t.Fatalf("memo resubmit carried no result: %+v", sr2)
	}

	// GET /jobs lists both records.
	lr, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []Job
	err = json.NewDecoder(lr.Body).Decode(&all)
	lr.Body.Close()
	if err != nil || len(all) != 2 {
		t.Fatalf("job list: %d records, err=%v", len(all), err)
	}

	// Introspection: healthz always ok, readyz ok while serving, metrics
	// exposition parses as text.
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/runz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, r.StatusCode)
		}
	}

	// Bad specs are 400s.
	if resp, _ := postJob(t, ts, `{"source":"int x = ;"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("uncompilable source: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJob(t, ts, `{"surprise":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPOverloadAndDrain: queue saturation answers 429 with Retry-After;
// a draining server turns /readyz 503 and rejects submissions with 503.
func TestHTTPOverloadAndDrain(t *testing.T) {
	s := newServer(t, t.TempDir(), func(o *Options) { o.QueueLimit = 1 })
	// Workers not started: the first job wedges the queue at its limit.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first, err := json.Marshal(mailboxSpec())
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJob(t, ts, string(first)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	over := mailboxSpec()
	over.Seed = 999
	overJSON, _ := json.Marshal(over)
	resp, _ := postJob(t, ts, string(overJSON))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	drain(t, s)
	if r, err := http.Get(ts.URL + "/readyz"); err != nil || r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d err=%v, want 503", r.StatusCode, err)
	}
	if r, err := http.Get(ts.URL + "/healthz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: status %d err=%v, want 200", r.StatusCode, err)
	}
	resp3, _ := postJob(t, ts, string(overJSON))
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp3.StatusCode)
	}
}
