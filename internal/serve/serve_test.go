package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"dfence/internal/core"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/spec"
	"dfence/internal/telemetry"
	"dfence/internal/trace"
)

// mailboxSrc is the examples/mailbox.mc program: one st-st fence under
// PSO repairs it, so a completed job must report exactly one fence.
const mailboxSrc = `
int data = 0;
int flag = 0;

void producer() {
  data = 42;
  flag = 1;
}

void consumer() {
  while (!flag) { }
  assert(data == 42);
}

int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1;
  join t2;
  return 0;
}
`

func mailboxSpec() JobSpec {
	return JobSpec{
		Source:    mailboxSrc,
		Model:     "pso",
		Criterion: "safety",
		Seed:      7,
		Execs:     300,
		Rounds:    6,
		Workers:   4,
	}
}

func newServer(t *testing.T, dir string, mut func(*Options)) *Server {
	t.Helper()
	opts := Options{Dir: dir, Jobs: 2}
	if mut != nil {
		mut(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, s *Server, id string, want JobState) *Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.JobByID(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.State == want {
			return j
		}
		if j.State.terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return nil
}

// TestSubmitRunsToCompletion: a source job runs, converges, and reports
// the mailbox's single store-store fence; the journal survives a strict
// re-read; the memoized resubmission answers without running.
func TestSubmitRunsToCompletion(t *testing.T) {
	s := newServer(t, t.TempDir(), nil)
	s.Start()
	defer drain(t, s)

	job, coalesced, err := s.Submit(mailboxSpec())
	if err != nil {
		t.Fatal(err)
	}
	if coalesced {
		t.Fatal("fresh submission reported coalesced")
	}
	done := waitState(t, s, job.ID, StateDone)
	if done.FromMemo {
		t.Fatal("first run claims a memo hit")
	}
	if done.Result == nil || done.Result.Outcome != "converged" {
		t.Fatalf("job result: %+v", done.Result)
	}
	if len(done.Result.Fences) != 1 || done.Result.Fences[0].Kind != "fence(st-st)" {
		t.Fatalf("mailbox fences = %+v, want one st-st fence", done.Result.Fences)
	}
	if data, err := os.ReadFile(s.JournalPath(job.ID)); err != nil || !strings.Contains(string(data), `"ev":"Converged"`) {
		t.Fatalf("journal unreadable or unterminated: err=%v", err)
	}

	// Identical resubmission: memo answers it, no new run.
	again, coalesced, err := s.Submit(mailboxSpec())
	if err != nil {
		t.Fatal(err)
	}
	if coalesced || !again.FromMemo || again.State != StateDone {
		t.Fatalf("resubmission: coalesced=%v fromMemo=%v state=%s", coalesced, again.FromMemo, again.State)
	}
	if fmt.Sprint(again.Result.Fences) != fmt.Sprint(done.Result.Fences) {
		t.Fatalf("memoized fences %v != original %v", again.Result.Fences, done.Result.Fences)
	}

	// A spec differing only in Workers is the same result — same memo key.
	ws := mailboxSpec()
	ws.Workers = 1
	third, _, err := s.Submit(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !third.FromMemo {
		t.Fatal("worker-count-only change missed the memo")
	}
}

// TestJobTraceRecorded: every completed attempt leaves a span trace in
// the spool that survives the strict trace reader, and the HTTP surface
// serves it at /jobs/{id}/trace (404 for jobs without one).
func TestJobTraceRecorded(t *testing.T) {
	s := newServer(t, t.TempDir(), nil)
	s.Start()
	defer drain(t, s)

	job, _, err := s.Submit(mailboxSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateDone)

	data, err := os.ReadFile(s.TracePath(job.ID))
	if err != nil {
		t.Fatalf("no trace in the spool: %v", err)
	}
	d, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("spooled trace fails the strict reader: %v", err)
	}
	var haveJob, haveRound bool
	for _, ev := range d.TraceEvents {
		switch ev.Name {
		case "job":
			haveJob = true
		case "round":
			haveRound = true
		}
	}
	if !haveJob || !haveRound {
		t.Errorf("trace missing spans: job=%v round=%v", haveJob, haveRound)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/{id}/trace: %d %s", resp.StatusCode, body)
	}
	if _, err := trace.Read(bytes.NewReader(body)); err != nil {
		t.Errorf("served trace fails the strict reader: %v", err)
	}
	if resp, err := http.Get(srv.URL + "/jobs/nope/trace"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: err=%v status=%v", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestSubmitCoalesces: an identical spec submitted while its twin is
// still queued lands on the twin instead of duplicating work.
func TestSubmitCoalesces(t *testing.T) {
	s := newServer(t, t.TempDir(), nil)
	// Workers deliberately not started: the first job stays queued.
	first, _, err := s.Submit(mailboxSpec())
	if err != nil {
		t.Fatal(err)
	}
	second, coalesced, err := s.Submit(mailboxSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !coalesced || second.ID != first.ID {
		t.Fatalf("coalesced=%v id=%s, want true/%s", coalesced, second.ID, first.ID)
	}
}

// TestInvalidSpecFailsPermanently: a job whose source does not compile is
// rejected at submission, and a job map entry never exists for it.
func TestInvalidSpecFailsPermanently(t *testing.T) {
	s := newServer(t, t.TempDir(), nil)
	if _, _, err := s.Submit(JobSpec{Source: "int x = ;"}); err == nil {
		t.Fatal("uncompilable source accepted")
	}
	if _, _, err := s.Submit(JobSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, _, err := s.Submit(JobSpec{Source: mailboxSrc, Builtin: "chase-lev"}); err == nil {
		t.Fatal("source+builtin spec accepted")
	}
}

// TestRetryBackoffAndQuarantine: a hook that fails the first two attempts
// exercises retry-with-backoff into eventual success; a hook that always
// fails drives the job into quarantine after MaxAttempts.
func TestRetryBackoffAndQuarantine(t *testing.T) {
	failures := 2
	s := newServer(t, t.TempDir(), func(o *Options) {
		o.MaxAttempts = 5
		o.BackoffBase = 5 * time.Millisecond
		o.BackoffMax = 20 * time.Millisecond
		o.FaultHook = func(j *Job, attempt int) error {
			if attempt <= failures {
				return fmt.Errorf("injected fault on attempt %d", attempt)
			}
			return nil
		}
	})
	s.Start()
	job, _, err := s.Submit(mailboxSpec())
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, job.ID, StateDone)
	if done.Attempts != 2 {
		t.Fatalf("job recorded %d failed attempts, want 2", done.Attempts)
	}
	if len(done.Result.Fences) != 1 {
		t.Fatalf("post-retry result wrong: %+v", done.Result)
	}
	drain(t, s)

	// Always-failing job: quarantined after MaxAttempts, never done.
	s2 := newServer(t, t.TempDir(), func(o *Options) {
		o.MaxAttempts = 3
		o.BackoffBase = time.Millisecond
		o.BackoffMax = 5 * time.Millisecond
		o.FaultHook = func(*Job, int) error { return fmt.Errorf("always down") }
	})
	s2.Start()
	defer drain(t, s2)
	job2, _, err := s2.Submit(mailboxSpec())
	if err != nil {
		t.Fatal(err)
	}
	q := waitState(t, s2, job2.ID, StateQuarantined)
	if q.Attempts != 3 || !strings.Contains(q.Error, "always down") {
		t.Fatalf("quarantined job: attempts=%d error=%q", q.Attempts, q.Error)
	}
}

// TestQueueLimitSheds: submissions beyond QueueLimit fail with
// ErrOverloaded while distinct earlier jobs sit queued (workers not
// started).
func TestQueueLimitSheds(t *testing.T) {
	s := newServer(t, t.TempDir(), func(o *Options) { o.QueueLimit = 2 })
	for i := 0; i < 2; i++ {
		spec := mailboxSpec()
		spec.Seed = int64(100 + i) // distinct memo keys, no coalescing
		if _, _, err := s.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	over := mailboxSpec()
	over.Seed = 999
	if _, _, err := s.Submit(over); err != ErrOverloaded {
		t.Fatalf("third submission: err=%v, want ErrOverloaded", err)
	}
}

// TestCrashResumeCompletes: the spool is pre-filled with exactly what a
// SIGKILL-ed dfenced leaves behind — a job record frozen in "running" and
// a journal cut at the first checkpoint with a torn line after it — and a
// fresh server life must requeue the job, resume from the checkpoint, and
// finish with a Result identical to an uninterrupted run's.
func TestCrashResumeCompletes(t *testing.T) {
	jobSpec := JobSpec{
		Builtin: "chase-lev",
		Model:   "pso", Criterion: "sc",
		Seed: 7, Execs: 300, Rounds: 5, Workers: 4,
	}
	b, err := progs.ByName("chase-lev")
	if err != nil {
		t.Fatal(err)
	}
	refCfg := core.Config{
		Model: memmodel.PSO, Criterion: spec.SeqConsistency, NewSpec: b.NewSpec(),
		CheckGarbage: b.CheckGarbage, RelaxStealAborts: b.RelaxStealAborts,
		ExecsPerRound: 300, MaxRounds: 5, Seed: 7, Workers: 4, ValidateFences: true,
	}
	// Reference run, journaled, straight through core.
	var refJournal strings.Builder
	j := telemetry.NewJournal(&refJournal)
	cfg := refCfg
	cfg.Sink = j
	prog, _, start, err := jobSpec.build()
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(start)
	ref, err := core.Synthesize(b.Program(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if len(ref.Rounds) < 2 {
		t.Fatalf("reference run finished in %d rounds; the crash test needs a checkpoint", len(ref.Rounds))
	}

	// Fabricate the crashed spool: journal truncated just past the first
	// Checkpoint line plus a torn tail, job record mid-flight.
	dir := t.TempDir()
	sp, err := openSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(refJournal.String(), "\n")
	var torn strings.Builder
	for _, ln := range lines {
		torn.WriteString(ln)
		if strings.Contains(ln, `"ev":"Checkpoint"`) {
			break
		}
	}
	torn.WriteString(`{"schema":1,"ev":"RoundSt`) // the write the kill interrupted
	const id = "j00000000000000-001"
	if err := os.WriteFile(sp.journalPath(id), []byte(torn.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	crashed := &Job{
		ID: id, Spec: jobSpec, State: StateRunning,
		MemoKey:    memoKey(prog, start),
		SubmitTime: time.Now(), UpdateTime: time.Now(),
	}
	if err := sp.saveJob(crashed); err != nil {
		t.Fatal(err)
	}

	// Restart on the crashed spool.
	s := newServer(t, dir, func(o *Options) { o.Jobs = 1 })
	s.Start()
	defer drain(t, s)
	done := waitState(t, s, id, StateDone)
	if done.FromMemo {
		t.Fatal("resumed job claims a memo hit; it should have run")
	}
	if done.Result.Outcome != ref.Outcome.String() {
		t.Fatalf("resumed outcome %s != reference %s", done.Result.Outcome, ref.Outcome)
	}
	if got, want := fmt.Sprint(done.Result.Fences), fmt.Sprint(telemetry.FencesOf(ref.Fences)); got != want {
		t.Fatalf("resumed fences %s != reference %s", got, want)
	}
	if done.Result.TotalExecutions != ref.TotalExecutions || done.Result.Rounds != len(ref.Rounds) {
		t.Fatalf("resumed counters execs=%d rounds=%d, reference execs=%d rounds=%d",
			done.Result.TotalExecutions, done.Result.Rounds, ref.TotalExecutions, len(ref.Rounds))
	}
	// The resumed journal must be whole again: strictly readable, no torn
	// tail, terminated by the run's Converged event.
	events, err := telemetry.ReadJournalFile(s.JournalPath(id))
	if err != nil {
		t.Fatalf("resumed journal not strictly readable: %v", err)
	}
	if _, ok := events[len(events)-1].(telemetry.Converged); !ok {
		t.Fatalf("resumed journal ends in %s, want Converged", events[len(events)-1].Kind())
	}
}

// TestDrainLeavesConsistentState: draining a busy server returns, and the
// job it interrupts (or lets finish) is in a state a second life can pick
// up — queued resumes, done stays done — converging on the same result.
func TestDrainLeavesConsistentState(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, dir, func(o *Options) { o.Jobs = 1 })
	s.Start()
	jobSpec := JobSpec{
		Builtin: "chase-lev", Model: "pso", Criterion: "sc",
		Seed: 7, Execs: 50000, Rounds: 5, Workers: 2,
	}
	job, _, err := s.Submit(jobSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Drain as soon as the job is off the queue: whichever round boundary
	// the interrupt lands on, the state must be resumable.
	for {
		if j, _ := s.JobByID(job.ID); j != nil && j.State != StateQueued {
			break
		}
		time.Sleep(time.Millisecond)
	}
	drain(t, s)
	j, _ := s.JobByID(job.ID)
	if j.State != StateQueued && j.State != StateDone && j.State != StateRunning {
		t.Fatalf("state after drain: %s", j.State)
	}
	if j.State == StateQueued {
		t.Log("drain interrupted the job mid-run")
	}

	s2 := newServer(t, dir, func(o *Options) { o.Jobs = 1 })
	s2.Start()
	defer drain(t, s2)
	done := waitState(t, s2, job.ID, StateDone)
	if done.Result == nil || len(done.Result.Fences) == 0 {
		t.Fatalf("job finished without fences: %+v", done.Result)
	}
}
