// The on-disk spool: dfenced's only durable state.
//
//	<dir>/jobs/<id>.json           one Job record per submission
//	<dir>/journals/<id>.jsonl      the job's run journal (checkpointed)
//	<dir>/memo/<key>.json          memoized JobResult per result-identity key
//	<dir>/traces/<id>.trace.json   the job's span trace (best-effort)
//
// Job records are written atomically (temp file + rename in the same
// directory), so a crash mid-write leaves either the old record or the
// new one, never a torn file. Journals are the one append-only exception;
// their crash story is the checkpoint/torn-tail machinery in
// internal/telemetry, not atomic replacement.
package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type spool struct {
	dir string
}

func openSpool(dir string) (*spool, error) {
	for _, sub := range []string{"jobs", "journals", "memo", "traces"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &spool{dir: dir}, nil
}

func (sp *spool) jobPath(id string) string     { return filepath.Join(sp.dir, "jobs", id+".json") }
func (sp *spool) journalPath(id string) string { return filepath.Join(sp.dir, "journals", id+".jsonl") }
func (sp *spool) memoPath(key string) string   { return filepath.Join(sp.dir, "memo", key+".json") }
func (sp *spool) tracePath(id string) string {
	return filepath.Join(sp.dir, "traces", id+".trace.json")
}

// writeFileAtomic replaces path with data via a same-directory temp file
// and rename, fsyncing before the rename so the new content is durable
// when the new name appears.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// saveJob persists a job record.
func (sp *spool) saveJob(j *Job) error {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(sp.jobPath(j.ID), data)
}

// loadJobs reads every job record in the spool, sorted by ID for
// deterministic requeue order. Unreadable records are returned as errors
// rather than skipped — a corrupt spool should fail loudly at startup,
// not silently lose jobs. (Leftover .tmp files from a crashed atomic
// write are ignored; the rename never happened, so the old record — if
// any — is the truth.)
func (sp *spool) loadJobs() ([]*Job, error) {
	entries, err := os.ReadDir(filepath.Join(sp.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var jobs []*Job
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(sp.dir, "jobs", name))
		if err != nil {
			return nil, err
		}
		var j Job
		if err := json.Unmarshal(data, &j); err != nil {
			return nil, fmt.Errorf("spool job %s: %w", name, err)
		}
		if j.ID == "" {
			return nil, fmt.Errorf("spool job %s: record has no id", name)
		}
		jobs = append(jobs, &j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return jobs, nil
}

// loadMemo fetches a memoized result, reporting ok=false when the key has
// never been stored. A corrupt memo entry is treated as absent — the memo
// is a pure cache, so re-running the job is always a safe answer.
func (sp *spool) loadMemo(key string) (*JobResult, bool) {
	data, err := os.ReadFile(sp.memoPath(key))
	if err != nil {
		return nil, false
	}
	var r JobResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, false
	}
	return &r, true
}

// saveMemo stores a result under its identity key.
func (sp *spool) saveMemo(key string, r *JobResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(sp.memoPath(key), data)
}
