// Job specification and construction: how a dfenced HTTP submission
// becomes a core.Config plus a compiled program, and how a finished run
// is summarized back to the client and the memo store.
package serve

import (
	"fmt"
	"hash/fnv"
	"time"

	"dfence/internal/core"
	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/lang"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/spec"
	"dfence/internal/telemetry"
)

// JobSpec is the client-facing description of one synthesis job — the
// same knobs `dfence` exposes as flags, minus anything that does not
// affect the result (introspection, profiling). Exactly one of Source
// and Builtin must be set.
type JobSpec struct {
	// Source is mini-C program text; Builtin names a built-in benchmark.
	Source  string `json:"source,omitempty"`
	Builtin string `json:"builtin,omitempty"`
	// Model is the memory model: sc, tso, pso. Default pso.
	Model string `json:"model,omitempty"`
	// Criterion is safety, sc, or lin. Default safety; sc/lin need a
	// sequential specification (SeqSpec, or the builtin's own).
	Criterion string `json:"criterion,omitempty"`
	// SeqSpec names the sequential specification for sc/lin source jobs
	// (deque, wsq-lifo, wsq-fifo, queue, set, alloc).
	SeqSpec string `json:"seq_spec,omitempty"`
	// Seed, Execs (K), Rounds, FlushProb: the synthesis budgets. Defaults
	// 1, 1000, 10, model-specific flush probability.
	Seed      int64   `json:"seed,omitempty"`
	Execs     int     `json:"execs,omitempty"`
	Rounds    int     `json:"rounds,omitempty"`
	FlushProb float64 `json:"flush_prob,omitempty"`
	// NoValidate skips the post-convergence redundant-fence pruning pass
	// (validation is on by default, like the CLI's -validate).
	NoValidate bool `json:"no_validate,omitempty"`
	// Static consults the static delay-set analysis (the CLI's -static).
	Static bool `json:"static,omitempty"`
	// Workers is the per-job execution parallelism (0 = NumCPU). It does
	// not affect the result and is excluded from the memo key.
	Workers int `json:"workers,omitempty"`
}

func (js *JobSpec) normalize() error {
	if (js.Source == "") == (js.Builtin == "") {
		return fmt.Errorf("exactly one of source and builtin must be set")
	}
	if js.Model == "" {
		js.Model = "pso"
	}
	if js.Criterion == "" {
		js.Criterion = "safety"
	}
	if js.Seed == 0 {
		js.Seed = 1
	}
	if js.Execs <= 0 {
		js.Execs = 1000
	}
	if js.Rounds <= 0 {
		js.Rounds = 10
	}
	return nil
}

// build compiles the spec into a runnable program + config and the
// RunStart event a fresh journal opens with. The config carries no Sink,
// Interrupt, or Resume — the job runner wires those per attempt.
func (js *JobSpec) build() (*ir.Program, core.Config, telemetry.RunStart, error) {
	var zero telemetry.RunStart
	if err := js.normalize(); err != nil {
		return nil, core.Config{}, zero, err
	}
	model, err := memmodel.ParseModel(js.Model)
	if err != nil {
		return nil, core.Config{}, zero, err
	}
	crit, ok := spec.ParseCriterion(js.Criterion)
	if !ok {
		return nil, core.Config{}, zero, fmt.Errorf("unknown criterion %q (want safety, sc, lin)", js.Criterion)
	}
	var (
		prog      *ir.Program
		benchmark *progs.Benchmark
	)
	if js.Builtin != "" {
		benchmark, err = progs.ByName(js.Builtin)
		if err != nil {
			return nil, core.Config{}, zero, err
		}
		prog = benchmark.Program()
	} else {
		prog, err = lang.Compile(js.Source)
		if err != nil {
			return nil, core.Config{}, zero, err
		}
	}
	cfg := core.Config{
		Model:          model,
		Criterion:      crit,
		ExecsPerRound:  js.Execs,
		MaxRounds:      js.Rounds,
		FlushProb:      js.FlushProb,
		Seed:           js.Seed,
		Workers:        js.Workers,
		ValidateFences: !js.NoValidate,
		StaticPrune:    js.Static,
	}
	seqName := ""
	if benchmark != nil {
		cfg.NewSpec = benchmark.NewSpec()
		cfg.CheckGarbage = benchmark.CheckGarbage
		cfg.RelaxStealAborts = benchmark.RelaxStealAborts
		seqName = benchmark.SpecName
	} else if crit != spec.MemorySafety {
		newSpec, err := spec.ByName(js.SeqSpec)
		if err != nil {
			return nil, core.Config{}, zero, err
		}
		cfg.NewSpec = newSpec
		seqName = js.SeqSpec
	}
	start := telemetry.RunStart{
		Model:     model.String(),
		Criterion: crit.String(),
		SeqSpec:   seqName,
		Seed:      js.Seed,
		Execs:     js.Execs,
		MaxRounds: js.Rounds,
		FlushProb: effectiveFlushProb(js.FlushProb, model),
		Workers:   js.Workers,
		Source:    js.Source,
		Builtin:   js.Builtin,
		Validate:  !js.NoValidate,
		Static:    js.Static,
	}
	return prog, cfg, start, nil
}

// effectiveFlushProb resolves a requested flush probability the way
// core.Config.fill does, so memo keys and RunStart events record the
// probability the run actually uses.
func effectiveFlushProb(p float64, model memmodel.Model) float64 {
	if p < 0 {
		return 0
	}
	if p == 0 {
		if model == memmodel.TSO {
			return 0.1
		}
		return 0.5
	}
	return p
}

// memoKey fingerprints everything the synthesis result is a function of:
// the compiled program's executable content and the determinism-relevant
// configuration. Workers is deliberately excluded — results are
// bit-identical for every worker count (the engine's determinism
// contract), so a job submitted with a different parallelism still hits
// the memo.
func memoKey(prog *ir.Program, start telemetry.RunStart) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%016x|%s|%s|%s|%d|%d|%d|%g|%v|%v",
		interp.Compile(prog).Fingerprint(),
		start.Model, start.Criterion, start.SeqSpec,
		start.Seed, start.Execs, start.MaxRounds, start.FlushProb,
		start.Validate, start.Static)
	return fmt.Sprintf("%016x", h.Sum64())
}

// JobState is a job's lifecycle position.
type JobState string

const (
	// StateQueued: waiting for a worker (fresh, requeued after a drain or
	// crash, or waiting out a retry backoff).
	StateQueued JobState = "queued"
	// StateRunning: a worker is executing the synthesis.
	StateRunning JobState = "running"
	// StateDone: synthesis finished with a terminal outcome (converged,
	// unfixable, or inconclusive are all "done" — the job ran; what the
	// run concluded is in Result.Outcome).
	StateDone JobState = "done"
	// StateFailed: the job can never succeed (compile error, invalid
	// spec, deterministic synthesis error) — retrying is pointless.
	StateFailed JobState = "failed"
	// StateQuarantined: the job failed transiently MaxAttempts times and
	// is parked for operator inspection rather than retried forever.
	StateQuarantined JobState = "quarantined"
)

func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateQuarantined
}

// JobResult is the client-facing digest of a finished run — also the memo
// store's value, so a memo hit reproduces exactly what the original job
// reported.
type JobResult struct {
	Outcome           string            `json:"outcome"`
	Fences            []telemetry.Fence `json:"fences,omitempty"`
	SynthesizedFences int               `json:"synthesized_fences,omitempty"`
	Redundant         int               `json:"redundant,omitempty"`
	Rounds            int               `json:"rounds"`
	TotalExecutions   int               `json:"total_executions"`
	Unfixable         bool              `json:"unfixable,omitempty"`
	StaticallyRobust  bool              `json:"statically_robust,omitempty"`
	Summary           string            `json:"summary"`
}

func resultDigest(res *core.Result) *JobResult {
	return &JobResult{
		Outcome:           res.Outcome.String(),
		Fences:            telemetry.FencesOf(res.Fences),
		SynthesizedFences: res.SynthesizedFences,
		Redundant:         res.Redundant,
		Rounds:            len(res.Rounds),
		TotalExecutions:   res.TotalExecutions,
		Unfixable:         res.Unfixable,
		StaticallyRobust:  res.StaticallyRobust,
		Summary:           res.Summary(),
	}
}

// Job is the durable record of one submission: the spool persists exactly
// this struct as jobs/<id>.json, so a restarted dfenced re-discovers the
// full lifecycle state.
type Job struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
	// Attempts counts runs that ended in a transient failure. A graceful
	// drain or crash does not increment it — interrupted work is not a
	// failure.
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// MemoKey is the result-identity fingerprint (set once the spec has
	// been built successfully). FromMemo marks a job answered from the
	// memo store without running.
	MemoKey  string     `json:"memo_key,omitempty"`
	FromMemo bool       `json:"from_memo,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	// NextRetry is when a backoff-delayed requeue fires (diagnostic).
	NextRetry  time.Time `json:"next_retry,omitempty"`
	SubmitTime time.Time `json:"submit_time"`
	UpdateTime time.Time `json:"update_time"`
}
