// The dfenced HTTP API.
//
//	POST /jobs               submit a JobSpec; 202 queued, 200 memo hit or
//	                         coalesced onto a live twin, 400 invalid spec,
//	                         429 queue full (with Retry-After), 503 draining
//	GET  /jobs               all job records
//	GET  /jobs/{id}          one job record
//	GET  /jobs/{id}/journal  the job's run journal (JSONL)
//	GET  /jobs/{id}/trace    the job's span trace (Chrome trace-event
//	                         JSON, written after each attempt; load in
//	                         Perfetto or summarize with `dfence trace`)
//	/metrics /runz /tracez /healthz /readyz /debug/pprof/
//	                         the shared introspection surface
//	                         (internal/telemetry.Server); /tracez shows the
//	                         live summaries of running attempts; /readyz
//	                         turns 503 the moment a drain starts, so load
//	                         balancers stop routing before shutdown
//	                         completes
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"

	"dfence/internal/telemetry"
)

// submitResponse is POST /jobs' body.
type submitResponse struct {
	ID        string     `json:"id"`
	State     JobState   `json:"state"`
	FromMemo  bool       `json:"from_memo,omitempty"`
	Coalesced bool       `json:"coalesced,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
}

// Handler returns the service mux: the job API plus the shared telemetry
// introspection endpoints, with readiness wired to the drain state.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/journal", s.handleJournal)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	ts := &telemetry.Server{Registry: s.registry, Status: s.status, Ready: s.Ready, Tracez: s.Tracez}
	mux.Handle("/", ts.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad job spec: %v", err), http.StatusBadRequest)
		return
	}
	job, coalesced, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrOverloaded):
		// Shed load the polite way: tell the client when the queue is
		// likely to have moved.
		w.Header().Set("Retry-After", "5")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := submitResponse{
		ID: job.ID, State: job.State,
		FromMemo: job.FromMemo, Coalesced: coalesced, Result: job.Result,
	}
	code := http.StatusAccepted
	if job.State.terminal() || coalesced {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.JobByID(id); !ok {
		http.NotFound(w, r)
		return
	}
	data, err := os.ReadFile(s.sp.journalPath(id))
	if err != nil {
		http.Error(w, "no journal recorded for this job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	_, _ = w.Write(data)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.JobByID(id); !ok {
		http.NotFound(w, r)
		return
	}
	data, err := os.ReadFile(s.sp.tracePath(id))
	if err != nil {
		http.Error(w, "no trace recorded for this job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}
