package synth

import (
	"fmt"
	"sort"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/staticanalysis"
)

// verifyMutation re-verifies a program after a fence mutation. Every
// insertion and removal path funnels through it so a synthesis step can
// never hand a corrupted program to the next round.
func verifyMutation(prog *ir.Program, what string) error {
	if err := staticanalysis.Verify(prog); err != nil {
		return fmt.Errorf("synth: program failed verification after %s: %w", what, err)
	}
	return nil
}

// InsertedFence describes one fence placed by Enforce.
type InsertedFence struct {
	// After is the label of the store the fence follows (the L of the
	// predicates it enforces).
	After ir.Label
	// Label is the fence instruction's own label.
	Label ir.Label
	Kind  ir.FenceKind
	// Func is the containing function's name.
	Func string
}

func (f InsertedFence) String() string {
	return fmt.Sprintf("%s in %s after L%d", f.Kind, f.Func, f.After)
}

// needSet accumulates the ordering requirements of one fence site (the l
// of a predicate group): which class pairs the fence must restore, and
// whether some K is a CAS whose write only a draining fence can order
// (the CAS write bypasses the store buffers, so an epoch barrier does
// not gate it — the same rule staticanalysis.CoveringKinds applies).
type needSet struct {
	pairs    [2][2]bool // [class of l][class of k], indexed by ir.AccessClass
	casDrain bool
}

// covers reports whether a fence kind's operational guarantee meets
// every requirement in n. Dynamic synthesis validates fences by
// re-executing, so the runtime coverage (OrdersAtRuntime) is the right
// table here — a draining st-ld fence legitimately discharges a
// store-store requirement.
func (n *needSet) covers(k ir.FenceKind) bool {
	if n.casDrain && !k.DrainsStores() {
		return false
	}
	for _, a := range ir.AccessClasses() {
		for _, b := range ir.AccessClasses() {
			if n.pairs[a][b] && !k.OrdersAtRuntime(a, b) {
				return false
			}
		}
	}
	return true
}

// coversDeclared is covers against the declared table (Orders) — the
// tie-break preference: among equally cheap covering kinds, one that
// also declares its coverage keeps the fenced program statically clean.
func (n *needSet) coversDeclared(k ir.FenceKind) bool {
	if n.casDrain && !k.DrainsStores() {
		return false
	}
	for _, a := range ir.AccessClasses() {
		for _, b := range ir.AccessClasses() {
			if n.pairs[a][b] && !k.Orders(a, b) {
				return false
			}
		}
	}
	return true
}

// cheapestKind selects the covering fence kind with the lowest per-model
// cost; ties prefer declared coverage, then FenceKinds order. FenceFull
// covers everything, so a kind always exists.
func cheapestKind(model memmodel.Model, n *needSet) ir.FenceKind {
	best := ir.FenceFull
	bestCost := 0
	found := false
	bestDecl := false
	for _, k := range ir.FenceKinds() {
		if !n.covers(k) {
			continue
		}
		c := model.FenceCost(k)
		d := n.coversDeclared(k)
		if !found || c < bestCost || (c == bestCost && d && !bestDecl) {
			best, bestCost, bestDecl, found = k, c, d, true
		}
	}
	return best
}

// Enforce realizes a satisfying assignment as fences (Algorithm 2): for
// every predicate [l ⊰ k] it inserts a fence immediately after label l.
// Predicates sharing the same l are enforced by a single fence whose
// kind is the cheapest (per model.FenceCost) whose runtime coverage
// restores every required class pair — the generalization of the paper's
// "we insert a more specific fence (store-load or store-store) depending
// on whether the statement at k is a load or a store" to the full fence
// vocabulary: load-K stores still get st-ld, store-K stores get st-st,
// mixed sites get the draining st-ld, and deferred-load predicates (RMO)
// get ld-ld/ld-st/acquire as their K classes demand.
func Enforce(prog *ir.Program, model memmodel.Model, preds []Predicate) ([]InsertedFence, error) {
	// Group the required class pairs by l.
	needs := make(map[ir.Label]*needSet)
	for _, p := range preds {
		lin := prog.InstrAt(p.L)
		if lin == nil {
			return nil, fmt.Errorf("synth: predicate references unknown label L%d", p.L)
		}
		la, ok := ir.ClassOf(lin.Op)
		if !ok {
			return nil, fmt.Errorf("synth: predicate L%d is not a shared access (%v)", p.L, lin.Op)
		}
		n := needs[p.L]
		if n == nil {
			n = &needSet{}
			needs[p.L] = n
		}
		kin := prog.InstrAt(p.K)
		switch {
		case kin != nil && kin.Op == ir.OpCas && la == ir.ClassStore:
			n.casDrain = true
		case kin != nil && kin.IsSharedLoad():
			n.pairs[la][ir.ClassLoad] = true
		default:
			n.pairs[la][ir.ClassStore] = true
		}
	}
	ls := make([]ir.Label, 0, len(needs))
	for l := range needs {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })

	var out []InsertedFence
	for _, l := range ls {
		f := prog.FuncOf(l)
		if f == nil {
			return nil, fmt.Errorf("synth: predicate references unknown label L%d", l)
		}
		kind := cheapestKind(model, needs[l])
		// If a fence already directly follows l and its runtime coverage
		// meets this site's requirements, skip instead of stacking
		// another one; an uncovering fence (e.g. a ld-ld fence where a
		// drain is now needed) does not suppress insertion.
		idx := f.IndexOf(l)
		if idx+1 < len(f.Code) && f.Code[idx+1].Op == ir.OpFence && needs[l].covers(f.Code[idx+1].Kind) {
			continue
		}
		fl, err := prog.InsertFenceAfter(l, kind)
		if err != nil {
			return nil, err
		}
		out = append(out, InsertedFence{After: l, Label: fl, Kind: kind, Func: f.Name})
	}
	if err := verifyMutation(prog, "fence insertion (Enforce)"); err != nil {
		return nil, err
	}
	return out, nil
}

// InsertFences re-applies previously computed fences onto a fresh clone of
// the base program (each InsertedFence.After is a base-program label, which
// clones share). Used by the validation pass to try fence subsets.
func InsertFences(prog *ir.Program, fences []InsertedFence) ([]InsertedFence, error) {
	out := make([]InsertedFence, 0, len(fences))
	for _, f := range fences {
		fn := prog.FuncOf(f.After)
		if fn == nil {
			return nil, fmt.Errorf("synth: InsertFences: label L%d not found", f.After)
		}
		idx := fn.IndexOf(f.After)
		if idx+1 < len(fn.Code) && fn.Code[idx+1].Op == ir.OpFence && fn.Code[idx+1].Kind == f.Kind {
			continue
		}
		nl, err := prog.InsertFenceAfter(f.After, f.Kind)
		if err != nil {
			return nil, err
		}
		out = append(out, InsertedFence{After: f.After, Label: nl, Kind: f.Kind, Func: fn.Name})
	}
	if err := verifyMutation(prog, "fence insertion (InsertFences)"); err != nil {
		return nil, err
	}
	return out, nil
}

// pairMask is a set of (class, class) ordering pairs, one bit per pair.
type pairMask uint8

func pairMaskBit(a, b ir.AccessClass) pairMask { return 1 << (uint(a)*2 + uint(b)) }

// runtimePairs returns the fence kind's operational guarantee as a pair
// set. DrainsStores is equivalent to the (st, ld) bit (every draining
// kind orders store-load at runtime and vice versa), so the mask captures
// the CAS-ordering property too.
func runtimePairs(k ir.FenceKind) pairMask {
	var m pairMask
	for _, a := range ir.AccessClasses() {
		for _, b := range ir.AccessClasses() {
			if k.OrdersAtRuntime(a, b) {
				m |= pairMaskBit(a, b)
			}
		}
	}
	return m
}

// maskRowSt / maskRowLd select the pairs invalidated by a new shared
// store (pending store-class entry) or shared load (pending deferred
// load) respectively.
var (
	maskRowSt = pairMaskBit(ir.ClassStore, ir.ClassLoad) | pairMaskBit(ir.ClassStore, ir.ClassStore)
	maskRowLd = pairMaskBit(ir.ClassLoad, ir.ClassLoad) | pairMaskBit(ir.ClassLoad, ir.ClassStore)
)

// MergeFences implements the paper's fence-combining optimization: "a
// simple static analysis which eliminates a fence if it can prove that it
// always follows a previous fence statement in program order, with no
// store statements on shared variables occurring in between" — lifted to
// the full fence vocabulary.
//
// It runs a forward dataflow per function over the CFG whose state is the
// set of class pairs (a, b) certainly ordered on every incoming path: a
// fence whose runtime coverage includes (a, b) has executed with no
// class-a shared access after it (meet = intersection, entry = empty). A
// fence whose runtime coverage is contained in its entry state guarantees
// nothing new and is removed. Removal is order-insensitive: a removable
// fence's transfer is the identity on the fixpoint state, so deleting it
// never weakens the protection of a later fence. Returns the number of
// fences removed.
func MergeFences(prog *ir.Program) (int, error) {
	removed := 0
	for _, name := range prog.FuncNames() {
		removed += mergeFunc(prog.Funcs[name])
	}
	if removed > 0 {
		if err := verifyMutation(prog, "fence removal (MergeFences)"); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

func mergeFunc(f *ir.Func) int {
	n := len(f.Code)
	// protectedIn[i]: pairs ordered on every path reaching instruction i.
	// Initialized to empty and grown to the least fixpoint — conservative
	// (loop heads stay unprotected), which only suppresses removals.
	protectedIn := make([]pairMask, n)
	preds := predecessors(f)

	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			var in pairMask
			if ps := preds[i]; len(ps) == 0 {
				in = 0 // function entry (or unreachable): conservative
			} else {
				in = ^pairMask(0)
				for _, p := range ps {
					in &= transfer(&f.Code[p], protectedIn[p])
				}
			}
			if in != protectedIn[i] {
				protectedIn[i] = in
				changed = true
			}
		}
	}

	// Remove redundant fences (back to front so indices stay valid). A
	// fence that is itself a branch target is removable too: branches to it
	// are retargeted to its successor (a fence is never a terminator, so a
	// successor always exists).
	removed := 0
	for i := n - 1; i >= 0; i-- {
		if f.Code[i].Op != ir.OpFence {
			continue
		}
		if m := runtimePairs(f.Code[i].Kind); m&^protectedIn[i] != 0 {
			continue
		}
		dead := f.Code[i].Label
		succ := f.Code[i+1].Label
		for j := range f.Code {
			in := &f.Code[j]
			if in.Op != ir.OpBr && in.Op != ir.OpCondBr {
				continue
			}
			if in.Target == dead {
				in.Target = succ
			}
			if in.Op == ir.OpCondBr && in.Target2 == dead {
				in.Target2 = succ
			}
		}
		f.Code = append(f.Code[:i], f.Code[i+1:]...)
		removed++
	}
	if removed > 0 {
		f.Rebuild()
	}
	return removed
}

// transfer computes the protected pair set after executing instruction in
// with the given entry state.
func transfer(in *ir.Instr, protected pairMask) pairMask {
	switch in.Op {
	case ir.OpFence:
		return protected | runtimePairs(in.Kind)
	case ir.OpCas:
		// CAS drains the relevant buffer but under PSO only that address's
		// buffer, and its write bypasses the buffers entirely.
		// Conservatively unprotect everything.
		return 0
	case ir.OpStore:
		if in.ThreadLocal {
			return protected
		}
		return protected &^ maskRowSt
	case ir.OpLoad:
		if in.ThreadLocal {
			return protected
		}
		return protected &^ maskRowLd
	case ir.OpCall, ir.OpFork:
		// The callee may access shared memory; conservative.
		return 0
	default:
		return protected
	}
}

// predecessors computes the CFG predecessor lists by instruction index.
func predecessors(f *ir.Func) [][]int {
	n := len(f.Code)
	preds := make([][]int, n)
	addEdge := func(from, to int) {
		if to >= 0 && to < n {
			preds[to] = append(preds[to], from)
		}
	}
	for i := 0; i < n; i++ {
		in := &f.Code[i]
		switch in.Op {
		case ir.OpBr:
			addEdge(i, f.IndexOf(in.Target))
		case ir.OpCondBr:
			addEdge(i, f.IndexOf(in.Target))
			addEdge(i, f.IndexOf(in.Target2))
		case ir.OpRet:
			// no successor
		default:
			addEdge(i, i+1)
		}
	}
	return preds
}
