package synth

import (
	"fmt"
	"sort"

	"dfence/internal/ir"
	"dfence/internal/staticanalysis"
)

// verifyMutation re-verifies a program after a fence mutation. Every
// insertion and removal path funnels through it so a synthesis step can
// never hand a corrupted program to the next round.
func verifyMutation(prog *ir.Program, what string) error {
	if err := staticanalysis.Verify(prog); err != nil {
		return fmt.Errorf("synth: program failed verification after %s: %w", what, err)
	}
	return nil
}

// InsertedFence describes one fence placed by Enforce.
type InsertedFence struct {
	// After is the label of the store the fence follows (the L of the
	// predicates it enforces).
	After ir.Label
	// Label is the fence instruction's own label.
	Label ir.Label
	Kind  ir.FenceKind
	// Func is the containing function's name.
	Func string
}

func (f InsertedFence) String() string {
	return fmt.Sprintf("%s in %s after L%d", f.Kind, f.Func, f.After)
}

// Enforce realizes a satisfying assignment as fences (Algorithm 2): for
// every predicate [l ⊰ k] it inserts a fence immediately after label l.
// Predicates sharing the same l are enforced by a single fence whose kind
// is chosen from the statements at the k labels: store-load if any k is a
// load, otherwise store-store (the paper: "we insert a more specific
// fence (store-load or store-store) depending on whether the statement at
// k is a load or a store").
func Enforce(prog *ir.Program, preds []Predicate) ([]InsertedFence, error) {
	// Group predicates by l.
	kinds := make(map[ir.Label]ir.FenceKind)
	for _, p := range preds {
		k := ir.FenceStoreStore
		if in := prog.InstrAt(p.K); in != nil && in.IsSharedLoad() {
			k = ir.FenceStoreLoad
		}
		prev, seen := kinds[p.L]
		if !seen {
			kinds[p.L] = k
			continue
		}
		if prev != k {
			kinds[p.L] = ir.FenceStoreLoad // the stronger of the two here
		}
	}
	ls := make([]ir.Label, 0, len(kinds))
	for l := range kinds {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })

	var out []InsertedFence
	for _, l := range ls {
		f := prog.FuncOf(l)
		if f == nil {
			return nil, fmt.Errorf("synth: predicate references unknown label L%d", l)
		}
		// If a fence already directly follows l, strengthen/skip instead of
		// stacking another one.
		idx := f.IndexOf(l)
		if idx+1 < len(f.Code) && f.Code[idx+1].Op == ir.OpFence {
			continue
		}
		fl, err := prog.InsertFenceAfter(l, kinds[l])
		if err != nil {
			return nil, err
		}
		out = append(out, InsertedFence{After: l, Label: fl, Kind: kinds[l], Func: f.Name})
	}
	if err := verifyMutation(prog, "fence insertion (Enforce)"); err != nil {
		return nil, err
	}
	return out, nil
}

// InsertFences re-applies previously computed fences onto a fresh clone of
// the base program (each InsertedFence.After is a base-program label, which
// clones share). Used by the validation pass to try fence subsets.
func InsertFences(prog *ir.Program, fences []InsertedFence) ([]InsertedFence, error) {
	out := make([]InsertedFence, 0, len(fences))
	for _, f := range fences {
		fn := prog.FuncOf(f.After)
		if fn == nil {
			return nil, fmt.Errorf("synth: InsertFences: label L%d not found", f.After)
		}
		idx := fn.IndexOf(f.After)
		if idx+1 < len(fn.Code) && fn.Code[idx+1].Op == ir.OpFence {
			continue
		}
		nl, err := prog.InsertFenceAfter(f.After, f.Kind)
		if err != nil {
			return nil, err
		}
		out = append(out, InsertedFence{After: f.After, Label: nl, Kind: f.Kind, Func: fn.Name})
	}
	if err := verifyMutation(prog, "fence insertion (InsertFences)"); err != nil {
		return nil, err
	}
	return out, nil
}

// MergeFences implements the paper's fence-combining optimization: "a
// simple static analysis which eliminates a fence if it can prove that it
// always follows a previous fence statement in program order, with no
// store statements on shared variables occurring in between."
//
// It runs a forward dataflow per function over the CFG with the state
// "buffers certainly empty since the last fence" (meet = conjunction,
// entry = unknown). A fence whose entry state is protected is removed.
// Returns the number of fences removed.
func MergeFences(prog *ir.Program) (int, error) {
	removed := 0
	for _, name := range prog.FuncNames() {
		removed += mergeFunc(prog.Funcs[name])
	}
	if removed > 0 {
		if err := verifyMutation(prog, "fence removal (MergeFences)"); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

func mergeFunc(f *ir.Func) int {
	n := len(f.Code)
	// protectedIn[i]: on every path reaching instruction i, a fence has
	// executed with no shared store/CAS after it.
	protectedIn := make([]bool, n)
	preds := predecessors(f)

	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			var in bool
			if ps := preds[i]; len(ps) == 0 {
				in = false // function entry (or unreachable): conservative
			} else {
				in = true
				for _, p := range ps {
					if !transfer(&f.Code[p], protectedIn[p]) {
						in = false
						break
					}
				}
			}
			if in != protectedIn[i] {
				protectedIn[i] = in
				changed = true
			}
		}
	}

	// Remove redundant fences (back to front so indices stay valid). A
	// fence that is itself a branch target is removable too: branches to it
	// are retargeted to its successor (a fence is never a terminator, so a
	// successor always exists).
	removed := 0
	for i := n - 1; i >= 0; i-- {
		if f.Code[i].Op != ir.OpFence || !protectedIn[i] {
			continue
		}
		dead := f.Code[i].Label
		succ := f.Code[i+1].Label
		for j := range f.Code {
			in := &f.Code[j]
			if in.Op != ir.OpBr && in.Op != ir.OpCondBr {
				continue
			}
			if in.Target == dead {
				in.Target = succ
			}
			if in.Op == ir.OpCondBr && in.Target2 == dead {
				in.Target2 = succ
			}
		}
		f.Code = append(f.Code[:i], f.Code[i+1:]...)
		removed++
	}
	if removed > 0 {
		f.Rebuild()
	}
	return removed
}

// transfer computes the protected state after executing instruction in
// with the given entry state.
func transfer(in *ir.Instr, protected bool) bool {
	switch in.Op {
	case ir.OpFence:
		return true
	case ir.OpCas:
		// CAS drains the relevant buffer but under PSO only that address's
		// buffer: not a full fence. Conservatively unprotect.
		return false
	case ir.OpStore:
		if in.ThreadLocal {
			return protected
		}
		return false
	case ir.OpCall, ir.OpFork:
		// The callee may store; conservative.
		return false
	default:
		return protected
	}
}

// predecessors computes the CFG predecessor lists by instruction index.
func predecessors(f *ir.Func) [][]int {
	n := len(f.Code)
	preds := make([][]int, n)
	addEdge := func(from, to int) {
		if to >= 0 && to < n {
			preds[to] = append(preds[to], from)
		}
	}
	for i := 0; i < n; i++ {
		in := &f.Code[i]
		switch in.Op {
		case ir.OpBr:
			addEdge(i, f.IndexOf(in.Target))
		case ir.OpCondBr:
			addEdge(i, f.IndexOf(in.Target))
			addEdge(i, f.IndexOf(in.Target2))
		case ir.OpRet:
			// no successor
		default:
			addEdge(i, i+1)
		}
	}
	return preds
}
