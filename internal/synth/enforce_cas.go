package synth

import (
	"fmt"
	"sort"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// DummyCASGlobal is the location the CAS enforcement targets. It is never
// otherwise read or written by the program.
const DummyCASGlobal = "__dfence_dummy"

// EnforceWithCAS realizes a satisfying assignment using the paper's §4.2
// alternative to fences: "On TSO, we can enforce the fence with CAS to a
// dummy location... Regardless of whether such a CAS fails or succeeds on
// the dummy location, in order to proceed, it requires that the buffer is
// flushed (similarly to a fence)."
//
// Only the TSO model is supported: under PSO a CAS to a dummy location
// drains only that location's (empty) buffer, so it orders nothing — the
// paper's PSO variant needs a same-location CAS that provably fails,
// which is not generally available.
func EnforceWithCAS(prog *ir.Program, model memmodel.Model, preds []Predicate) ([]InsertedFence, error) {
	if model != memmodel.TSO {
		return nil, fmt.Errorf("synth: CAS enforcement is only sound on TSO (got %v): a dummy-location CAS does not drain other PSO buffers", model)
	}
	if prog.Global(DummyCASGlobal) == nil {
		if err := prog.AddGlobal(&ir.Global{Name: DummyCASGlobal, Size: 1}); err != nil {
			return nil, err
		}
		if err := prog.Link(); err != nil {
			return nil, err
		}
	}
	ls := make(map[ir.Label]bool)
	for _, p := range preds {
		ls[p.L] = true
	}
	order := make([]ir.Label, 0, len(ls))
	for l := range ls {
		order = append(order, l)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	var out []InsertedFence
	for _, l := range order {
		f := prog.FuncOf(l)
		if f == nil {
			return nil, fmt.Errorf("synth: predicate references unknown label L%d", l)
		}
		// Skip if a dummy CAS (or fence) already directly follows l.
		idx := f.IndexOf(l)
		if idx+1 < len(f.Code) {
			next := &f.Code[idx+1]
			if next.Op == ir.OpFence || (next.Op == ir.OpGlobal && next.Func == DummyCASGlobal) {
				continue
			}
		}
		cl, err := prog.InsertDummyCASAfter(l, DummyCASGlobal)
		if err != nil {
			return nil, err
		}
		out = append(out, InsertedFence{After: l, Label: cl, Kind: ir.FenceFull, Func: f.Name})
	}
	if err := verifyMutation(prog, "dummy-CAS insertion (EnforceWithCAS)"); err != nil {
		return nil, err
	}
	return out, nil
}
