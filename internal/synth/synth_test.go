package synth

import (
	"testing"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

func TestCollectorPSOAllAccessKinds(t *testing.T) {
	c := NewCollector(memmodel.PSO)
	pend := []interp.PendingStore{{Label: 10, Addr: 1}, {Label: 11, Addr: 2}}
	c.OnSharedAccess(0, 20, interp.AccStore, 3, pend)
	c.OnSharedAccess(0, 21, interp.AccLoad, 3, pend[:1])
	c.OnSharedAccess(0, 22, interp.AccCas, 3, pend[1:])
	d := c.Disjunction()
	want := []Predicate{{10, 20}, {10, 21}, {11, 20}, {11, 22}}
	if len(d) != len(want) {
		t.Fatalf("disjunction = %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("disjunction = %v, want %v (sorted)", d, want)
		}
	}
}

func TestCollectorTSOOnlyLoads(t *testing.T) {
	c := NewCollector(memmodel.TSO)
	pend := []interp.PendingStore{{Label: 10, Addr: 1}}
	c.OnSharedAccess(0, 20, interp.AccStore, 3, pend) // FIFO keeps store order
	c.OnSharedAccess(0, 21, interp.AccCas, 3, pend)   // cannot happen, but filtered
	c.OnSharedAccess(0, 22, interp.AccLoad, 3, pend)
	d := c.Disjunction()
	if len(d) != 1 || d[0] != (Predicate{10, 22}) {
		t.Fatalf("TSO disjunction = %v, want [[L10 ⊰ L22]]", d)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector(memmodel.PSO)
	c.OnSharedAccess(0, 20, interp.AccLoad, 3, []interp.PendingStore{{Label: 10, Addr: 1}})
	if len(c.Disjunction()) != 1 {
		t.Fatal("setup failed")
	}
	c.Reset()
	if len(c.Disjunction()) != 0 {
		t.Fatal("Reset did not clear predicates")
	}
}

func TestFormulaMinimalSolutions(t *testing.T) {
	f := NewFormula()
	p12 := Predicate{1, 2}
	p34 := Predicate{3, 4}
	p56 := Predicate{5, 6}
	// exec1: p12 | p34 ; exec2: p34 | p56  → minimal: {p34}, {p12,p56}
	if err := f.AddExecution([]Predicate{p12, p34}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddExecution([]Predicate{p34, p56}); err != nil {
		t.Fatal(err)
	}
	sols := f.MinimalSolutions()
	if len(sols) != 2 {
		t.Fatalf("solutions = %v, want 2", sols)
	}
	if len(sols[0]) != 1 || sols[0][0] != p34 {
		t.Errorf("smallest solution = %v, want [%v]", sols[0], p34)
	}
	if len(sols[1]) != 2 || sols[1][0] != p12 || sols[1][1] != p56 {
		t.Errorf("second solution = %v, want [%v %v]", sols[1], p12, p56)
	}
}

func TestFormulaDeduplicatesClauses(t *testing.T) {
	f := NewFormula()
	d := []Predicate{{1, 2}, {3, 4}}
	f.AddExecution(d)
	f.AddExecution(d)
	if f.NumClauses() != 1 {
		t.Errorf("clauses = %d, want 1 after dedup", f.NumClauses())
	}
}

func TestFormulaRejectsEmptyDisjunction(t *testing.T) {
	f := NewFormula()
	if err := f.AddExecution(nil); err == nil {
		t.Fatal("empty disjunction accepted — should signal unfixable execution")
	}
}

// buildStoreStoreLoad constructs main: store x; store y; load x; ret.
func buildStoreStoreLoad(t *testing.T) (*ir.Program, ir.Label, ir.Label, ir.Label) {
	t.Helper()
	p := ir.NewProgram()
	for _, g := range []string{"x", "y"} {
		if err := p.AddGlobal(&ir.Global{Name: g, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	xa := b.GlobalAddr("x")
	ya := b.GlobalAddr("y")
	one := b.Const(1)
	sx := b.Store(xa, one, "x")
	sy := b.Store(ya, one, "y")
	v, lx := b.Load(xa, "x")
	b.RetVal(v)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p, sx, sy, lx
}

func TestEnforceInsertsKindsAndPositions(t *testing.T) {
	p, sx, sy, lx := buildStoreStoreLoad(t)
	fences, err := Enforce(p, memmodel.PSO, []Predicate{
		{L: sx, K: sy}, // store-store
		{L: sy, K: lx}, // store-load
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fences) != 2 {
		t.Fatalf("inserted %d fences, want 2: %v", len(fences), fences)
	}
	f := p.Funcs["main"]
	// fence after sx with kind store-store
	i := f.IndexOf(sx)
	if f.Code[i+1].Op != ir.OpFence || f.Code[i+1].Kind != ir.FenceStoreStore {
		t.Errorf("after store x: %v, want store-store fence", f.Code[i+1].String())
	}
	j := f.IndexOf(sy)
	if f.Code[j+1].Op != ir.OpFence || f.Code[j+1].Kind != ir.FenceStoreLoad {
		t.Errorf("after store y: %v, want store-load fence", f.Code[j+1].String())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid after enforcement: %v", err)
	}
}

func TestEnforceMergesSameL(t *testing.T) {
	p, sx, sy, lx := buildStoreStoreLoad(t)
	fences, err := Enforce(p, memmodel.PSO, []Predicate{
		{L: sx, K: sy}, // store-store
		{L: sx, K: lx}, // store-load — same l, stronger kind wins
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fences) != 1 {
		t.Fatalf("inserted %d fences for same-l predicates, want 1", len(fences))
	}
	if fences[0].Kind != ir.FenceStoreLoad {
		t.Errorf("kind = %v, want store-load (stronger)", fences[0].Kind)
	}
}

func TestEnforceSkipsExistingFence(t *testing.T) {
	p, sx, sy, _ := buildStoreStoreLoad(t)
	if _, err := Enforce(p, memmodel.PSO, []Predicate{{L: sx, K: sy}}); err != nil {
		t.Fatal(err)
	}
	before := len(p.Funcs["main"].Code)
	fences, err := Enforce(p, memmodel.PSO, []Predicate{{L: sx, K: sy}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fences) != 0 || len(p.Funcs["main"].Code) != before {
		t.Error("second enforcement stacked a redundant fence")
	}
}

func TestEnforceUnknownLabel(t *testing.T) {
	p, _, _, _ := buildStoreStoreLoad(t)
	if _, err := Enforce(p, memmodel.PSO, []Predicate{{L: 9999, K: 10000}}); err == nil {
		t.Fatal("unknown label accepted")
	}
}

// --- merge pass ---

func TestMergeRemovesBackToBackFences(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	xa := b.GlobalAddr("x")
	one := b.Const(1)
	b.Store(xa, one, "x")
	b.Fence(ir.FenceStoreStore)
	b.Fence(ir.FenceStoreStore) // redundant
	v, _ := b.Load(xa, "x")
	b.RetVal(v)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	got, err := MergeFences(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("merged %d fences, want 1", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid after merge: %v", err)
	}
	if len(p.Fences()) != 1 {
		t.Errorf("fences left = %d, want 1", len(p.Fences()))
	}
}

func TestMergeKeepsFenceAfterStore(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	xa := b.GlobalAddr("x")
	one := b.Const(1)
	b.Fence(ir.FenceStoreStore)
	b.Store(xa, one, "x") // invalidates protection
	b.Fence(ir.FenceStoreStore)
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	got, err := MergeFences(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("merged %d fences, want 0 (store between fences)", got)
	}
}

func TestMergeDiamondBothPathsFenced(t *testing.T) {
	// if (c) { fence } else { fence }; fence   → the join fence is
	// redundant only if both branch paths end in a fence with no store
	// after.
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	c := b.Const(1)
	taken, els := b.CondBrF(c)
	taken.Here()
	b.Fence(ir.FenceStoreStore)
	join := b.BrF()
	els.Here()
	b.Fence(ir.FenceStoreStore)
	join.Here()
	b.Fence(ir.FenceStoreStore) // redundant: every predecessor is a fence
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	got, err := MergeFences(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("merged %d, want 1 (join fence dominated on both paths)", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid after merge: %v", err)
	}
}

func TestMergeDiamondOnePathUnfenced(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	xa := b.GlobalAddr("x")
	one := b.Const(1)
	cnd := b.Const(1)
	taken, els := b.CondBrF(cnd)
	taken.Here()
	b.Fence(ir.FenceStoreStore)
	join := b.BrF()
	els.Here()
	b.Store(xa, one, "x") // this path has a trailing store
	join.Here()
	b.Fence(ir.FenceStoreStore) // must stay
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	got, err := MergeFences(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("merged %d, want 0", got)
	}
}

func TestMergeRetargetsBranchesToRemovedFence(t *testing.T) {
	// A loop whose back edge targets a redundant fence: the fence is
	// removed and the branch retargeted to its successor.
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	b.Fence(ir.FenceStoreStore)
	head := b.NextLabel()
	b.Fence(ir.FenceStoreStore) // branch target
	i := b.Const(0)
	one := b.Const(1)
	b.BinTo(i, ir.BinAdd, i, one)
	ten := b.Const(10)
	c := b.BinOp(ir.BinLt, i, ten)
	back, out := b.CondBrF(c)
	back.Here()
	b.Br(head)
	out.Here()
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	got, err := MergeFences(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("merged %d fences, want 1 (loop-head fence dominated by entry fence)", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("merge broke branch targets: %v", err)
	}
	if len(p.Fences()) != 1 {
		t.Errorf("fences left = %d, want 1", len(p.Fences()))
	}
}

func TestPredicateString(t *testing.T) {
	p := Predicate{L: 3, K: 7}
	if p.String() != "[L3 ⊰ L7]" {
		t.Errorf("String = %q", p.String())
	}
}

func TestMinimalSolutionsSupportRanking(t *testing.T) {
	// Two minimal solutions of equal size: {p} and {q}. p appears in many
	// executions' disjunctions, q in few — p must rank first.
	f := NewFormula()
	p := Predicate{1, 2}
	q := Predicate{3, 4}
	// Clauses are deduplicated, so vary a junk predicate to keep them
	// distinct while building support counts.
	for i := 0; i < 5; i++ {
		junk := Predicate{ir.Label(100 + i), ir.Label(200 + i)}
		if err := f.AddExecution([]Predicate{p, q, junk}); err != nil {
			t.Fatal(err)
		}
	}
	// One more clause mentioning p alone boosts p's support.
	if err := f.AddExecution([]Predicate{p, {ir.Label(900), ir.Label(901)}}); err != nil {
		t.Fatal(err)
	}
	sols := f.MinimalSolutions()
	if len(sols) == 0 {
		t.Fatal("no solutions")
	}
	first := sols[0]
	if len(first) != 1 || first[0] != p {
		t.Errorf("first solution = %v, want [%v] (higher support)", first, p)
	}
}

func TestFormulaCountsAccessors(t *testing.T) {
	f := NewFormula()
	if !f.Empty() || f.NumClauses() != 0 || f.NumPredicates() != 0 {
		t.Error("fresh formula not empty")
	}
	if err := f.AddExecution([]Predicate{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if f.Empty() || f.NumClauses() != 1 || f.NumPredicates() != 2 {
		t.Errorf("counts: clauses=%d preds=%d", f.NumClauses(), f.NumPredicates())
	}
}

func TestCollectorIgnoresSCModel(t *testing.T) {
	// The SC collector never receives pending stores (the interpreter
	// skips observation), but even if called it must behave sanely.
	c := NewCollector(memmodel.SC)
	c.OnSharedAccess(0, 20, interp.AccLoad, 3, []interp.PendingStore{{Label: 10, Addr: 1}})
	if len(c.Disjunction()) != 1 {
		t.Skip("SC collector records when explicitly fed — acceptable")
	}
}
