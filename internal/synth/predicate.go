// Package synth implements the repair machinery of DFENCE: ordering
// predicates, the instrumented-semantics collection of candidate repairs
// for an execution (paper Semantics 2 / the avoid function), accumulation
// of the global repair formula φ, computation of minimal satisfying
// assignments via the SAT solver, enforcement of chosen predicates as
// fences (Algorithm 2), and the static merge pass that removes redundant
// fences (§5.2, Enforcing).
package synth

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/sat"
)

// Predicate is an ordering predicate [L ⊰ K]: in any execution, the store
// at label L must take visible effect before the statement at label K
// executes (both labels in the same thread). Enforced by a fence after L.
type Predicate struct {
	L ir.Label // a store whose buffered value must be flushed
	K ir.Label // the later access that must observe it
}

func (p Predicate) String() string { return fmt.Sprintf("[L%d ⊰ L%d]", p.L, p.K) }

// less orders predicates deterministically.
func (p Predicate) less(q Predicate) bool {
	if p.L != q.L {
		return p.L < q.L
	}
	return p.K < q.K
}

// Collector implements interp.Observer, running the instrumented
// semantics of the paper online: at every shared access it records, for
// each store pending in the same thread's *other* buffers, the predicate
// that would order that store before the access. The union over the
// execution is the disjunction d of all single-predicate repairs for that
// execution.
//
// Model-specific filtering (paper §4.1, generalized to the reordering
// matrix): a pending access of class a generates a predicate at an access
// of class b only when the model relaxes (a, b). Under TSO only pending
// stores at loads qualify (the single FIFO preserves store-store order,
// and CAS drains it first); under PSO pending stores qualify at every
// access; under RMO deferred loads qualify too, on both sides of the
// matrix.
type Collector struct {
	model memmodel.Model
	preds map[Predicate]struct{}
}

// NewCollector returns an empty per-execution collector.
func NewCollector(model memmodel.Model) *Collector {
	return &Collector{model: model, preds: make(map[Predicate]struct{})}
}

// OnSharedAccess implements interp.Observer.
func (c *Collector) OnSharedAccess(thread int, label ir.Label, kind interp.AccessKind, addr int64, pending []interp.PendingStore) {
	// K's class: stores and CAS both write (ir.ClassOf treats OpCas as a
	// store); the pending entry's class comes from its IsLoad flag.
	kc := ir.ClassStore
	if kind == interp.AccLoad {
		kc = ir.ClassLoad
	}
	for _, p := range pending {
		pc := ir.ClassStore
		if p.IsLoad {
			pc = ir.ClassLoad
		}
		if !c.model.Relaxes(pc, kc) {
			continue
		}
		c.preds[Predicate{L: p.Label, K: label}] = struct{}{}
	}
}

// Reset clears the collector for reuse on the next execution.
func (c *Collector) Reset() { clear(c.preds) }

// TakeDisjunction returns the execution's disjunction (as Disjunction)
// and resets the collector in one step — the call the parallel batch
// runner makes between executions on a reused per-worker collector, so a
// worker is always clean before its next run regardless of outcome.
func (c *Collector) TakeDisjunction() []Predicate {
	out := c.Disjunction()
	c.Reset()
	return out
}

// Disjunction returns the candidate predicates gathered from the
// execution, sorted deterministically. Empty means the execution cannot
// be repaired by fences (Algorithm 1: "abort — cannot be fixed").
func (c *Collector) Disjunction() []Predicate {
	out := make([]Predicate, 0, len(c.preds))
	for p := range c.preds {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Formula is the global repair formula φ: a conjunction over violating
// executions of the disjunction of that execution's candidate predicates.
// Identical clauses are deduplicated, as in the paper ("each non-repeated
// clause in the formula is assigned a unique integer").
//
// A Formula owns a persistent incremental SAT solver (sat.Incremental):
// BeginRound clears the clause set for the next synthesis round while the
// solver retains its learnt clauses, VSIDS activity, and saved phases,
// together with the predicate-to-variable vocabulary — so a long-lived
// Formula reused across rounds solves each round's φ without rebuilding
// CDCL state from scratch. A throwaway Formula behaves exactly like the
// pre-incremental implementation (one round, fresh solver).
type Formula struct {
	vars   map[Predicate]int // predicate -> SAT variable (persists across rounds)
	byVar  []Predicate       // 1-based: variable -> predicate
	inc    *sat.Incremental  // owned persistent solver; holds the round's clauses
	seen   map[string]struct{}
	keyBuf []byte            // scratch for the clause-fingerprint probe
	freq   map[Predicate]int // #violating executions mentioning the predicate (per round)
}

// NewFormula returns φ = true.
func NewFormula() *Formula {
	return &Formula{
		vars:  make(map[Predicate]int),
		byVar: make([]Predicate, 1), // index 0 unused
		inc:   sat.NewIncremental(),
		seen:  make(map[string]struct{}),
		freq:  make(map[Predicate]int),
	}
}

// BeginRound resets φ to true for the next synthesis round while keeping
// the solver and the predicate vocabulary warm: learnt clauses and
// branching heuristics carry over (the previous round's clauses are
// deactivated inside the solver, so they cannot influence which models
// exist), and per-round bookkeeping — clause dedup and predicate
// support — starts fresh.
func (f *Formula) BeginRound() {
	f.inc.BeginRound()
	clear(f.seen)
	clear(f.freq)
}

// Empty reports whether no clause has been added (φ = true).
func (f *Formula) Empty() bool { return f.inc.NumClauses() == 0 }

// NumPredicates returns the number of distinct predicates mentioned this
// round (duplicated disjunctions mention no predicate a kept clause does
// not, so this equals the distinct-predicate count of the clause set).
func (f *Formula) NumPredicates() int { return len(f.freq) }

// NumClauses returns the number of distinct accumulated clauses.
func (f *Formula) NumClauses() int { return f.inc.NumClauses() }

// AddExecution conjoins the disjunction d (the repairs of one violating
// execution) onto φ. d must be non-empty.
func (f *Formula) AddExecution(d []Predicate) error {
	if len(d) == 0 {
		return fmt.Errorf("synth: execution has no candidate repairs (cannot be fixed by fences)")
	}
	// freq counts every occurrence, including duplicates of an existing
	// clause: support ordering in MinimalSolutions depends on it, so the
	// dedup below must not short-circuit these updates.
	for _, p := range d {
		f.freq[p]++
	}
	// Fingerprint the ordered predicate sequence into the reused scratch
	// buffer (varints are injective per field, so distinct disjunctions
	// cannot collide); the map[string(bytes)] probe allocates nothing, and
	// the key is materialized only for clauses actually inserted.
	buf := f.keyBuf[:0]
	for _, p := range d {
		buf = binary.AppendVarint(buf, int64(p.L))
		buf = binary.AppendVarint(buf, int64(p.K))
	}
	f.keyBuf = buf
	if _, dup := f.seen[string(buf)]; dup {
		return nil
	}
	f.seen[string(buf)] = struct{}{}
	clause := make([]sat.Lit, len(d))
	for i, p := range d {
		v, ok := f.vars[p]
		if !ok {
			v = len(f.byVar)
			f.byVar = append(f.byVar, p)
			f.vars[p] = v
		}
		clause[i] = sat.Lit(v)
	}
	f.inc.EnsureVars(len(f.byVar) - 1)
	f.inc.AddClause(clause)
	return nil
}

// MinimalSolutions returns all minimal sets of predicates satisfying φ.
// They are ordered by (size, descending total support, lexicographic),
// where a predicate's support is the number of violating executions whose
// disjunction mentioned it — among equally small repairs, prefer the one
// backed by the most evidence. The first entry is the assignment
// Algorithm 2 enforces.
func (f *Formula) MinimalSolutions() [][]Predicate {
	out, _ := f.MinimalSolutionsBudget(sat.Budget{})
	return out
}

// MinimalSolutionsBudget is MinimalSolutions under a solver enumeration
// budget (see sat.Budget). truncated reports that the budget tripped and
// the returned solutions may be incomplete — the synthesis loop records
// this as Result.SolverTruncated and proceeds with the best repairs found.
func (f *Formula) MinimalSolutionsBudget(budget sat.Budget) (solutions [][]Predicate, truncated bool) {
	return f.MinimalSolutionsStats(budget, nil)
}

// MinimalSolutionsStats is MinimalSolutionsBudget additionally reporting
// the enumeration's solver effort into st (ignored when nil) — the
// telemetry seam. Solutions are identical to MinimalSolutionsBudget's.
func (f *Formula) MinimalSolutionsStats(budget sat.Budget, st *sat.Stats) (solutions [][]Predicate, truncated bool) {
	if f.Empty() {
		return nil, false
	}
	models, truncated := f.inc.MinimalModels(budget, st)
	out := make([][]Predicate, len(models))
	for i, m := range models {
		ps := make([]Predicate, len(m))
		for j, v := range m {
			ps[j] = f.byVar[v]
		}
		sort.Slice(ps, func(a, b int) bool { return ps[a].less(ps[b]) })
		out[i] = ps
	}
	support := func(ps []Predicate) int {
		s := 0
		for _, p := range ps {
			s += f.freq[p]
		}
		return s
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		sa, sb := support(a), support(b)
		if sa != sb {
			return sa > sb
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k].less(b[k])
			}
		}
		return false
	})
	return out, truncated
}
