// Package progs contains the 13 concurrent algorithms of the paper's
// evaluation (Table 2), written in the mini-C dialect of package lang,
// each paired with the concurrent client used to exercise it. The sources
// deliberately contain NO memory fences: DFENCE infers them (§6.1: "we
// first removed the fences from the algorithms and then ran DFENCE to see
// if it could infer them automatically").
//
// Benchmarks:
//
//	chase-lev      Chase-Lev work-stealing deque [7]
//	cilk-the       Cilk's THE work-stealing deque [12] (take/steal use a lock)
//	lifo-iwsq      idempotent LIFO work stealing [24]
//	fifo-iwsq      idempotent FIFO work stealing [24]
//	anchor-iwsq    idempotent double-ended (anchor) work stealing [24]
//	lifo-wsq       LIFO WSQ: as lifo-iwsq but all operations use CAS
//	fifo-wsq       FIFO WSQ: as fifo-iwsq but take uses CAS on the head
//	anchor-wsq     Anchor WSQ: as anchor-iwsq but all operations use CAS
//	ms2-queue      Michael-Scott two-lock queue [23]
//	msn-queue      Michael-Scott non-blocking queue [23]
//	lazylist-set   Heller et al. lazy list-based set [13]
//	harris-set     Harris-style non-blocking sorted-list set [8]
//	michael-alloc  Michael's lock-free memory allocator [21] (simplified
//	               to its synchronization skeleton)
package progs

import (
	"fmt"
	"sort"
	"sync"

	"dfence/internal/ir"
	"dfence/internal/lang"
	"dfence/internal/spec"
)

// Benchmark couples an algorithm's source with its specification.
type Benchmark struct {
	// Name is the registry key (see package comment).
	Name string
	// Paper is the paper's name for the algorithm (Table 2/3 rows).
	Paper string
	// Source is the fence-free mini-C program including its client.
	Source string
	// SpecName selects the sequential specification ("deque", "queue",
	// "set", "alloc").
	SpecName string
	// CheckGarbage enables the "no garbage tasks returned" check (the
	// idempotent WSQs, whose Linearizability/SC specs are future work in
	// the paper).
	CheckGarbage bool
	// SkipSeqCheck marks benchmarks checked only under memory safety (+
	// garbage): the idempotent WSQs (paper: "Analysis of iWSQ algorithms
	// under Linearizability or SC requires more involved sequential
	// specifications and is left as future work").
	SkipSeqCheck bool
	// RelaxStealAborts treats contended steal()=EMPTY as an abort (the
	// published WSQ steal operations return ABORT when they lose a race).
	RelaxStealAborts bool
}

// NewSpec returns a fresh sequential-specification constructor.
func (b *Benchmark) NewSpec() func() spec.Sequential {
	f, err := spec.ByName(b.SpecName)
	if err != nil {
		panic(err)
	}
	return f
}

var (
	compileMu    sync.Mutex
	compileCache = map[string]*ir.Program{}
)

// Program compiles the benchmark (cached) and returns a private clone the
// caller may mutate (synthesis inserts fences).
func (b *Benchmark) Program() *ir.Program {
	compileMu.Lock()
	defer compileMu.Unlock()
	p, ok := compileCache[b.Name]
	if !ok {
		p = lang.MustCompile(b.Source)
		compileCache[b.Name] = p
	}
	return p.Clone()
}

// SourceLOC counts non-blank source lines (Table 3's "Source LOC").
func (b *Benchmark) SourceLOC() int {
	n := 0
	start := 0
	for i := 0; i <= len(b.Source); i++ {
		if i == len(b.Source) || b.Source[i] == '\n' {
			line := b.Source[start:i]
			start = i + 1
			for _, c := range line {
				if c != ' ' && c != '\t' {
					n++
					break
				}
			}
		}
	}
	return n
}

var registry = map[string]*Benchmark{}

func register(b *Benchmark) *Benchmark {
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("progs: duplicate benchmark %s", b.Name))
	}
	registry[b.Name] = b
	return b
}

// ByName looks a benchmark up.
func ByName(name string) (*Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("progs: unknown benchmark %q (have %v)", name, Names())
	}
	return b, nil
}

// Names lists all registered benchmarks, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns the benchmarks in Table 2 order.
func All() []*Benchmark {
	order := []string{
		"chase-lev", "cilk-the",
		"fifo-iwsq", "lifo-iwsq", "anchor-iwsq",
		"fifo-wsq", "lifo-wsq", "anchor-wsq",
		"ms2-queue", "msn-queue",
		"lazylist-set", "harris-set",
		"michael-alloc",
	}
	out := make([]*Benchmark, 0, len(order))
	for _, n := range order {
		if b, ok := registry[n]; ok {
			out = append(out, b)
		}
	}
	return out
}
