package progs

// Michael's scalable lock-free memory allocator (PLDI'04 [21]), reduced
// to its synchronization skeleton for one size class: superblocks of
// fixed-size blocks described by descriptors; a lock-free Active
// descriptor; per-descriptor Anchor words packing <avail, count, tag>
// updated by CAS; a lock-free free-descriptor list (DescAlloc /
// DescRetire); and block headers pointing back to the owning descriptor.
//
// The fences the paper reports (§6.7) correspond to these orderings, all
// removed here for DFENCE to infer:
//
//   - MallocFromNewSB: descriptor fields (sb, anchor, maxcount) must be
//     visible before the CAS that publishes the descriptor via Active —
//     otherwise another thread dereferences a half-initialized
//     descriptor (null sb → memory-safety violation).
//   - free: the freed block's next-free link must be visible before the
//     anchor CAS publishes the block at the head of the free list —
//     otherwise a concurrent malloc pops the block and reads a garbage
//     next index (out-of-bounds block address).
//   - DescRetire: the descriptor's next link must be visible before the
//     CAS publishes it on the free-descriptor list.
//
// The client is the paper's: thread 1 runs "m m m f f f" (frees oldest
// first), thread 2 runs "m f m f".
var michaelAlloc = register(&Benchmark{
	Name:     "michael-alloc",
	Paper:    "Michael's Memory Allocator",
	SpecName: "alloc",
	Source: `// Michael's lock-free allocator, synchronization skeleton (fences removed).
const NBLOCKS = 6;
const BS = 2;            // words per block: [desc backpointer, user word]
const AB = 65536;        // anchor = avail*AB + count*CB + tag
const CB = 256;

struct Desc {
  int anchor;
  int* sb;
  Desc* next;
  int maxcount;
}

Desc* Active = null;
Desc* DescAvail = null;

Desc* DescAlloc() {
  while (1) {
    Desc* d = DescAvail;
    if (d != null) {
      Desc* nxt = d->next;
      if (cas(&DescAvail, d, nxt)) {
        return d;
      }
      continue;
    }
    d = alloc(sizeof(Desc));
    return d;
  }
  return null;
}

void DescRetire(Desc* d) {
  while (1) {
    Desc* h = DescAvail;
    d->next = h;
    if (cas(&DescAvail, h, d)) {
      return;
    }
  }
}

int* MallocFromNewSB() {
  Desc* d = DescAlloc();
  int* s = alloc(NBLOCKS * BS);
  d->sb = s;
  d->maxcount = NBLOCKS;
  // Thread blocks 1..NBLOCKS-1 onto the free list via next-free indices
  // kept in each free block's user word.
  for (int i = 1; i < NBLOCKS; i = i + 1) {
    s[i * BS + 1] = i + 1;
  }
  // Block 0 goes to the caller: avail=1, count=NBLOCKS-1, tag=0.
  d->anchor = 1 * AB + (NBLOCKS - 1) * CB;
  if (cas(&Active, null, d)) {
    s[0] = d;
    return s + 1;
  }
  // Lost the race to install: recycle the descriptor (superblock leaks,
  // as in a failed partial-list insertion).
  DescRetire(d);
  return null;
}

operation int* malloc(int sz) {
  while (1) {
    Desc* d = Active;
    if (d == null) {
      int* p = MallocFromNewSB();
      if (p != null) {
        return p;
      }
      continue;
    }
    int a = d->anchor;
    int avail = a / AB;
    int count = (a / CB) % CB;
    int tag = a % CB;
    if (count == 0) {
      // Superblock exhausted: uninstall and start a new one.
      cas(&Active, d, null);
      continue;
    }
    int* s = d->sb;
    int* blk = s + avail * BS;
    int nextidx = blk[1];
    int na = nextidx * AB + (count - 1) * CB + ((tag + 1) % CB);
    if (cas(&d->anchor, a, na)) {
      blk[0] = d;
      return blk + 1;
    }
  }
  return null;
}

operation void free(int* p) {
  int* blk = p - 1;
  Desc* d = blk[0];
  int* s = d->sb;
  int idx = (blk - s) / BS;
  while (1) {
    int a = d->anchor;
    int count = (a / CB) % CB;
    int tag = a % CB;
    blk[1] = a / AB;     // link previous head as our next-free index
    int na = idx * AB + (count + 1) * CB + ((tag + 1) % CB);
    if (cas(&d->anchor, a, na)) {
      if (count + 1 == d->maxcount) {
        // Superblock entirely free: retire its descriptor.
        cas(&Active, d, null);
        DescRetire(d);
      }
      return;
    }
  }
}

void worker1() {
  int* a = malloc(1);
  int* b = malloc(1);
  int* c = malloc(1);
  free(a);
  free(b);
  free(c);
}

void worker2() {
  int* a = malloc(1);
  free(a);
  int* b = malloc(1);
  free(b);
}

int main() {
  int t1 = fork worker1();
  int t2 = fork worker2();
  join t1;
  join t2;
  return 0;
}
`,
})
