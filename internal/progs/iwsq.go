package progs

// The three idempotent work-stealing queues of Michael, Vechev &
// Saraswat (PPoPP'09) [24]: LIFO, FIFO, and the double-ended "anchor"
// algorithm. Idempotent semantics permit a task to be extracted more than
// once; the checked property is the paper's "no garbage tasks returned"
// plus memory safety (analysis under SC/linearizability needs idempotent
// sequential specifications and is future work in the paper — mirrored
// here by SkipSeqCheck).
//
// The LIFO and anchor algorithms keep their state in a single packed
// anchor word (<tail,tag> resp. <head,size,tag>) so a lone CAS updates it
// atomically, exactly as the paper's algorithms pack them into one
// machine word.

var lifoIWSQ = register(&Benchmark{
	Name:         "lifo-iwsq",
	Paper:        "LIFO iWSQ",
	SpecName:     "wsq-lifo",
	CheckGarbage: true,
	SkipSeqCheck: true,
	Source: `// Idempotent LIFO work stealing (fences removed).
const EMPTY = 0 - 1;
const TAGM = 1024;       // anchor = tail*TAGM + tag

int anchor = 0;
int tasks[16];

operation void put(int task) {
  int a = anchor;
  int t = a / TAGM;
  int g = a % TAGM;
  tasks[t] = task;
  anchor = (t + 1) * TAGM + (g + 1);
}

operation int take() {
  int a = anchor;
  int t = a / TAGM;
  int g = a % TAGM;
  if (t == 0) {
    return EMPTY;
  }
  int task = tasks[t - 1];
  anchor = (t - 1) * TAGM + g;
  return task;
}

operation int steal() {
  while (1) {
    int a = anchor;
    int t = a / TAGM;
    int g = a % TAGM;
    if (t == 0) {
      return EMPTY;
    }
    int task = tasks[t - 1];
    if (!cas(&anchor, a, (t - 1) * TAGM + g)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

void owner() {
  put(11);
  put(12);
  take();
  take();
  put(13);
  put(14);
  take();
  take();
}

void thief() {
  steal();
  steal();
  steal();
  steal();
}

int main() {
  int t1 = fork owner();
  int t2 = fork thief();
  join t1;
  join t2;
  return 0;
}
`,
})

var fifoIWSQ = register(&Benchmark{
	Name:         "fifo-iwsq",
	Paper:        "FIFO iWSQ",
	SpecName:     "wsq-fifo",
	CheckGarbage: true,
	SkipSeqCheck: true,
	Source: `// Idempotent FIFO work stealing (fences removed).
const EMPTY = 0 - 1;
const CAP = 16;

int H = 0;
int T = 0;
int tasks[16];

operation void put(int task) {
  int t = T;
  tasks[t % CAP] = task;
  T = t + 1;
}

operation int take() {
  int h = H;
  int t = T;
  if (h == t) {
    return EMPTY;
  }
  int task = tasks[h % CAP];
  H = h + 1;
  return task;
}

operation int steal() {
  while (1) {
    int h = H;
    int t = T;
    if (h == t) {
      return EMPTY;
    }
    int task = tasks[h % CAP];
    if (!cas(&H, h, h + 1)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

void owner() {
  put(11);
  put(12);
  take();
  take();
  put(13);
  put(14);
  take();
  take();
}

void thief() {
  steal();
  steal();
  steal();
  steal();
}

int main() {
  int t1 = fork owner();
  int t2 = fork thief();
  join t1;
  join t2;
  return 0;
}
`,
})

var anchorIWSQ = register(&Benchmark{
	Name:         "anchor-iwsq",
	Paper:        "Anchor iWSQ",
	SpecName:     "deque",
	CheckGarbage: true,
	SkipSeqCheck: true,
	Source: `// Idempotent double-ended (anchor) work stealing (fences removed).
const EMPTY = 0 - 1;
const CAP = 16;
const SB = 32;           // size field multiplier
const HB = 1024;         // head field multiplier: anchor = h*HB + s*SB + g

int anchor = 0;
int tasks[16];

operation void put(int task) {
  int a = anchor;
  int h = a / HB;
  int s = (a / SB) % SB;
  int g = a % SB;
  tasks[(h + s) % CAP] = task;
  anchor = h * HB + (s + 1) * SB + ((g + 1) % SB);
}

operation int take() {
  int a = anchor;
  int h = a / HB;
  int s = (a / SB) % SB;
  int g = a % SB;
  if (s == 0) {
    return EMPTY;
  }
  int task = tasks[(h + s - 1) % CAP];
  anchor = h * HB + (s - 1) * SB + g;
  return task;
}

operation int steal() {
  while (1) {
    int a = anchor;
    int h = a / HB;
    int s = (a / SB) % SB;
    int g = a % SB;
    if (s == 0) {
      return EMPTY;
    }
    int task = tasks[h % CAP];
    int h2 = (h + 1) % CAP;
    if (!cas(&anchor, a, h2 * HB + (s - 1) * SB + g)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

void owner() {
  put(11);
  put(12);
  take();
  take();
  put(13);
  put(14);
  take();
  take();
}

void thief() {
  steal();
  steal();
  steal();
  steal();
}

int main() {
  int t1 = fork owner();
  int t2 = fork thief();
  join t1;
  join t2;
  return 0;
}
`,
})
