package progs

// Cilk-5's THE work-stealing protocol (PLDI'98): the owner's take uses the
// optimistic T-decrement handshake; the conflict path and steal serialize
// through a lock. Fences removed; under SC-the-criterion DFENCE infers the
// store-load fence in take (the paper's (take,5:7)) and the corresponding
// handshake fences exposed by the chosen memory model.
var cilkTHE = register(&Benchmark{
	Name:             "cilk-the",
	Paper:            "Cilk's THE WSQ",
	SpecName:         "deque",
	RelaxStealAborts: true,
	Source: `// Cilk THE work-stealing deque (fences removed).
const EMPTY = 0 - 1;

int H = 0;
int T = 0;
int L = 0;
int items[16];

operation void put(int task) {
  int t = T;
  items[t] = task;
  T = t + 1;
}

operation int take() {
  int t = T - 1;
  T = t;
  int h = H;
  if (h > t) {
    // Potential conflict with a thief: restore and retry under the lock.
    T = t + 1;
    lock(&L);
    t = T - 1;
    T = t;
    h = H;
    if (h > t) {
      T = t + 1;
      unlock(&L);
      return EMPTY;
    }
    int task = items[t];
    unlock(&L);
    return task;
  }
  return items[t];
}

operation int steal() {
  lock(&L);
  int h = H;
  H = h + 1;
  int t = T;
  if (h + 1 > t) {
    H = h;
    unlock(&L);
    return EMPTY;
  }
  int task = items[h];
  unlock(&L);
  return task;
}

void owner() {
  put(1);
  put(2);
  take();
  take();
  put(3);
  put(4);
  take();
  take();
}

void thief() {
  steal();
  steal();
  steal();
  steal();
}

int main() {
  int t1 = fork owner();
  int t2 = fork thief();
  join t1;
  join t2;
  return 0;
}
`,
})
