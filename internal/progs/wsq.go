package progs

// The non-idempotent counterparts of the iWSQ family (paper Table 2):
// "same as X iWSQ except that all operations use CAS" (LIFO, Anchor) /
// "take uses CAS to update the head variable" (FIFO). These satisfy the
// exact (non-idempotent) sequential specifications, so they are analyzed
// under SC and linearizability.

var lifoWSQ = register(&Benchmark{
	Name:             "lifo-wsq",
	Paper:            "LIFO WSQ",
	SpecName:         "wsq-lifo",
	RelaxStealAborts: true,
	Source: `// LIFO WSQ: all operations CAS the packed anchor (fences removed).
const EMPTY = 0 - 1;
const TAGM = 1024;

int anchor = 0;
int tasks[16];

operation void put(int task) {
  while (1) {
    int a = anchor;
    int t = a / TAGM;
    int g = a % TAGM;
    tasks[t] = task;
    if (cas(&anchor, a, (t + 1) * TAGM + ((g + 1) % TAGM))) {
      return;
    }
  }
}

operation int take() {
  while (1) {
    int a = anchor;
    int t = a / TAGM;
    int g = a % TAGM;
    if (t == 0) {
      return EMPTY;
    }
    int task = tasks[t - 1];
    if (!cas(&anchor, a, (t - 1) * TAGM + g)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

operation int steal() {
  while (1) {
    int a = anchor;
    int t = a / TAGM;
    int g = a % TAGM;
    if (t == 0) {
      return EMPTY;
    }
    int task = tasks[t - 1];
    if (!cas(&anchor, a, (t - 1) * TAGM + g)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

void owner() {
  put(11);
  put(12);
  take();
  take();
  put(13);
  put(14);
  take();
  take();
}

void thief() {
  steal();
  steal();
  steal();
  steal();
}

int main() {
  int t1 = fork owner();
  int t2 = fork thief();
  join t1;
  join t2;
  return 0;
}
`,
})

var fifoWSQ = register(&Benchmark{
	Name:             "fifo-wsq",
	Paper:            "FIFO WSQ",
	SpecName:         "wsq-fifo",
	RelaxStealAborts: true,
	Source: `// FIFO WSQ: as FIFO iWSQ but take CASes the head (fences removed).
const EMPTY = 0 - 1;
const CAP = 16;

int H = 0;
int T = 0;
int tasks[16];

operation void put(int task) {
  int t = T;
  tasks[t % CAP] = task;
  T = t + 1;
}

operation int take() {
  while (1) {
    int h = H;
    int t = T;
    if (h == t) {
      return EMPTY;
    }
    int task = tasks[h % CAP];
    if (!cas(&H, h, h + 1)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

operation int steal() {
  while (1) {
    int h = H;
    int t = T;
    if (h == t) {
      return EMPTY;
    }
    int task = tasks[h % CAP];
    if (!cas(&H, h, h + 1)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

void owner() {
  put(11);
  put(12);
  take();
  take();
  put(13);
  put(14);
  take();
  take();
}

void thief() {
  steal();
  steal();
  steal();
  steal();
}

int main() {
  int t1 = fork owner();
  int t2 = fork thief();
  join t1;
  join t2;
  return 0;
}
`,
})

var anchorWSQ = register(&Benchmark{
	Name:             "anchor-wsq",
	Paper:            "Anchor WSQ",
	SpecName:         "deque",
	RelaxStealAborts: true,
	Source: `// Anchor WSQ: all operations CAS the packed anchor (fences removed).
const EMPTY = 0 - 1;
const CAP = 16;
const SB = 32;
const HB = 1024;

int anchor = 0;
int tasks[16];

operation void put(int task) {
  while (1) {
    int a = anchor;
    int h = a / HB;
    int s = (a / SB) % SB;
    int g = a % SB;
    tasks[(h + s) % CAP] = task;
    if (cas(&anchor, a, h * HB + (s + 1) * SB + ((g + 1) % SB))) {
      return;
    }
  }
}

operation int take() {
  while (1) {
    int a = anchor;
    int h = a / HB;
    int s = (a / SB) % SB;
    int g = a % SB;
    if (s == 0) {
      return EMPTY;
    }
    int task = tasks[(h + s - 1) % CAP];
    if (!cas(&anchor, a, h * HB + (s - 1) * SB + g)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

operation int steal() {
  while (1) {
    int a = anchor;
    int h = a / HB;
    int s = (a / SB) % SB;
    int g = a % SB;
    if (s == 0) {
      return EMPTY;
    }
    int task = tasks[h % CAP];
    int h2 = (h + 1) % CAP;
    if (!cas(&anchor, a, h2 * HB + (s - 1) * SB + g)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

void owner() {
  put(11);
  put(12);
  take();
  take();
  put(13);
  put(14);
  take();
  take();
}

void thief() {
  steal();
  steal();
  steal();
  steal();
}

int main() {
  int t1 = fork owner();
  int t2 = fork thief();
  join t1;
  join t2;
  return 0;
}
`,
})
