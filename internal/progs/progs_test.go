package progs

import (
	"strings"
	"testing"

	"dfence/internal/core"
	"dfence/internal/memmodel"
	"dfence/internal/sched"
	"dfence/internal/spec"
)

func TestAllBenchmarksCompile(t *testing.T) {
	if len(All()) != 13 {
		t.Fatalf("registry has %d benchmarks, want 13: %v", len(All()), Names())
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p := b.Program()
			if err := p.Validate(); err != nil {
				t.Fatalf("invalid IR: %v", err)
			}
			if p.CountStores() == 0 {
				t.Error("no insertion points — benchmark has no shared stores?")
			}
			// Sources carry no explicit fences; lock()/unlock() lower to
			// fence-wrapped CAS loops (§5.2), so lock-based benchmarks have
			// lock-induced fences only.
			if !strings.Contains(b.Source, "lock(") && len(p.Fences()) != 0 {
				t.Errorf("source ships %d fences; benchmarks must be fence-free", len(p.Fences()))
			}
		})
	}
}

// criterion returns the strongest criterion a benchmark is checked under.
func criterion(b *Benchmark) spec.Criterion {
	if b.SkipSeqCheck {
		return spec.MemorySafety
	}
	return spec.SeqConsistency
}

// TestCorrectUnderSCMachine is the keystone sanity check: every benchmark,
// run on the SC memory model, must satisfy its specification on every
// explored schedule — the algorithms are correct, only relaxed memory
// breaks them.
func TestCorrectUnderSCMachine(t *testing.T) {
	const runs = 200
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			cfg := core.Config{
				Model:            memmodel.SC,
				Criterion:        criterion(b),
				NewSpec:          b.NewSpec(),
				CheckGarbage:     b.CheckGarbage,
				RelaxStealAborts: b.RelaxStealAborts,
				Seed:             12345,
			}
			if v := core.CheckOnly(b.Program(), cfg, runs); v != 0 {
				t.Errorf("%d/%d SC-machine executions violate %v — the benchmark itself is buggy", v, runs, cfg.Criterion)
			}
		})
	}
}

// TestLinearizableUnderSCMachine documents which benchmarks satisfy
// linearizability on an SC machine (paper §6.6 examines this for THE).
func TestLinearizableUnderSCMachine(t *testing.T) {
	const runs = 200
	for _, b := range All() {
		if b.SkipSeqCheck {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			cfg := core.Config{
				Model:            memmodel.SC,
				Criterion:        spec.Linearizability,
				NewSpec:          b.NewSpec(),
				RelaxStealAborts: b.RelaxStealAborts,
				Seed:             999,
			}
			v := core.CheckOnly(b.Program(), cfg, runs)
			if v != 0 {
				t.Logf("NOT linearizable on SC machine: %d/%d violations", v, runs)
			}
			// All our variants are expected linearizable under SC; a change
			// here is worth noticing.
			if v != 0 {
				t.Errorf("%s: %d/%d linearizability violations under SC", b.Name, v, runs)
			}
		})
	}
}

// TestRelaxedModelsExposeViolations checks the headline dynamic: the
// fence-free sources do violate their specs under the relaxed models the
// paper flags them for.
func TestRelaxedModelsExposeViolations(t *testing.T) {
	cases := []struct {
		bench string
		model memmodel.Model
		crit  spec.Criterion
		flush float64
	}{
		{"chase-lev", memmodel.TSO, spec.SeqConsistency, 0.1},
		{"chase-lev", memmodel.PSO, spec.SeqConsistency, 0.5},
		{"chase-lev", memmodel.PSO, spec.Linearizability, 0.5},
		{"msn-queue", memmodel.PSO, spec.SeqConsistency, 0.5},
		{"lifo-wsq", memmodel.PSO, spec.SeqConsistency, 0.5},
		{"fifo-iwsq", memmodel.PSO, spec.MemorySafety, 0.5},
		{"michael-alloc", memmodel.PSO, spec.MemorySafety, 0.5},
	}
	for _, c := range cases {
		c := c
		t.Run(c.bench+"/"+c.model.String()+"/"+c.crit.String(), func(t *testing.T) {
			t.Parallel()
			b, err := ByName(c.bench)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.Config{
				Model:            c.model,
				Criterion:        c.crit,
				NewSpec:          b.NewSpec(),
				CheckGarbage:     b.CheckGarbage,
				RelaxStealAborts: b.RelaxStealAborts,
				FlushProb:        c.flush,
				Seed:             7,
			}
			if v := core.CheckOnly(b.Program(), cfg, 600); v == 0 {
				t.Errorf("no violations in 600 runs — expected the relaxed model to break this benchmark")
			}
		})
	}
}

// TestLockBasedNeedNoFences: the fully lock-protected algorithms must be
// clean even under PSO (the lock's own fences order everything) — the
// paper's MS2 and LazyList rows are all zeros.
func TestLockBasedNeedNoFences(t *testing.T) {
	for _, name := range []string{"ms2-queue", "lazylist-set"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.Config{
				Model:     memmodel.PSO,
				Criterion: spec.SeqConsistency,
				NewSpec:   b.NewSpec(),
				FlushProb: 0.5,
				Seed:      11,
			}
			if v := core.CheckOnly(b.Program(), cfg, 400); v != 0 {
				t.Errorf("%d/400 violations under PSO — lock fences should prevent all", v)
			}
		})
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	b, err := ByName("chase-lev")
	if err != nil || b.Paper != "Chase-Lev's WSQ" {
		t.Errorf("lookup broken: %v %v", b, err)
	}
}

func TestSourceLOC(t *testing.T) {
	for _, b := range All() {
		if loc := b.SourceLOC(); loc < 20 {
			t.Errorf("%s: SourceLOC = %d, implausibly small", b.Name, loc)
		}
	}
}

func TestProgramReturnsClone(t *testing.T) {
	b, _ := ByName("chase-lev")
	p1 := b.Program()
	p2 := b.Program()
	f := p1.Funcs["put"]
	var storeLbl = f.Code[0].Label
	for i := range f.Code {
		if f.Code[i].Op.String() == "store" {
			storeLbl = f.Code[i].Label
		}
	}
	if _, err := p1.InsertFenceAfter(storeLbl, 1); err != nil {
		t.Fatal(err)
	}
	if len(p2.Fences()) != 0 || len(b.Program().Fences()) != 0 {
		t.Error("Program() shares state across calls")
	}
}

// TestDeterministicScheduling: a benchmark run twice with one seed gives
// identical histories (the synthesis loop depends on this).
func TestDeterministicScheduling(t *testing.T) {
	b, _ := ByName("chase-lev")
	p := b.Program()
	a := sched.Run(p, memmodel.PSO, nil, sched.DefaultOptions(3))
	c := sched.Run(p, memmodel.PSO, nil, sched.DefaultOptions(3))
	if len(a.History) != len(c.History) {
		t.Fatalf("histories differ: %v vs %v", a.History, c.History)
	}
	for i := range a.History {
		if a.History[i].String() != c.History[i].String() {
			t.Fatalf("event %d differs", i)
		}
	}
}
