package progs

// The §6.6 "future work" experiment, realized: "one trick that may make
// memory safety more effective in triggering violations is to use a
// specific client: instead of elements of a primitive type, one stores
// pointers to newly allocated memory in the queue. Then, the client frees
// the pointer immediately after it has fetched it from the queue. In that
// way, one may be able to detect duplicate items."
//
// Same fence-free Chase-Lev deque; the client's payloads are heap cells
// and every fetched task is freed — a duplicate extraction becomes a
// double free, which the memory-safety checker catches without any
// sequential specification. Not part of the paper's 13-benchmark table;
// exposed via Extras().
var chaseLevPtr = &Benchmark{
	Name:     "chase-lev-ptr",
	Paper:    "Chase-Lev's WSQ (pointer client, §6.6)",
	SpecName: "deque",
	Source: `// Chase-Lev deque with a pointer-freeing client (fences removed).
const EMPTY = 0 - 1;

int H = 0;
int T = 0;
int items[16];

operation void put(int task) {
  int t = T;
  items[t] = task;
  T = t + 1;
}

operation int steal() {
  while (1) {
    int h = H;
    int t = T;
    if (h >= t) {
      return EMPTY;
    }
    int task = items[h];
    if (!cas(&H, h, h + 1)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

operation int take() {
  while (1) {
    int t = T - 1;
    T = t;
    int h = H;
    if (t < h) {
      T = h;
      return EMPTY;
    }
    int task = items[t];
    if (t > h) {
      return task;
    }
    T = h + 1;
    if (!cas(&H, h, h + 1)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

void consume(int task) {
  if (task != EMPTY) {
    int* p = task;
    int v = *p;       // dereference: dangling if already freed elsewhere
    assert(v == 7);
    sysfree(p);       // double free if the task was extracted twice
  }
}

void owner() {
  int* a = alloc(1);
  *a = 7;
  int* b = alloc(1);
  *b = 7;
  put(a);
  put(b);
  consume(take());
  consume(take());
  int* c = alloc(1);
  *c = 7;
  int* d = alloc(1);
  *d = 7;
  put(c);
  put(d);
  consume(take());
  consume(take());
}

void thief() {
  consume(steal());
  consume(steal());
  consume(steal());
  consume(steal());
}

int main() {
  int t1 = fork owner();
  int t2 = fork thief();
  join t1;
  join t2;
  return 0;
}
`,
}

// Extras returns experiment variants that are not part of the paper's
// 13-benchmark table.
func Extras() []*Benchmark {
	return []*Benchmark{chaseLevPtr}
}

func init() {
	register(chaseLevPtr)
}
