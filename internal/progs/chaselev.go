package progs

// Chase-Lev work-stealing deque (SPAA'05), the paper's running example
// (Fig. 1), without the fences F1/F2/F3 that DFENCE infers:
//
//	F1 store-load in take between "T = t" and "h = H"     (TSO & PSO, SC)
//	F2 store-store in put between "items[t] = task" and "T = t + 1" (PSO, SC)
//	F3 store-store in put after "T = t + 1"               (PSO, linearizability)
//
// The client mirrors §6.4: the owner drives the queue through empty and
// non-empty states while a thief steals concurrently.
var chaseLev = register(&Benchmark{
	Name:             "chase-lev",
	Paper:            "Chase-Lev's WSQ",
	SpecName:         "deque",
	RelaxStealAborts: true,
	Source: `// Chase-Lev work-stealing deque (fences removed).
const EMPTY = 0 - 1;

int H = 0;
int T = 0;
int items[16];

operation void put(int task) {
  int t = T;
  items[t] = task;
  T = t + 1;
}

operation int steal() {
  while (1) {
    int h = H;
    int t = T;
    if (h >= t) {
      return EMPTY;
    }
    int task = items[h];
    if (!cas(&H, h, h + 1)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

operation int take() {
  while (1) {
    int t = T - 1;
    T = t;
    int h = H;
    if (t < h) {
      T = h;
      return EMPTY;
    }
    int task = items[t];
    if (t > h) {
      return task;
    }
    T = h + 1;
    if (!cas(&H, h, h + 1)) {
      continue;
    }
    return task;
  }
  return EMPTY;
}

void owner() {
  put(1);
  put(2);
  take();
  take();
  put(3);
  put(4);
  take();
  take();
}

void thief() {
  steal();
  steal();
  steal();
  steal();
}

int main() {
  int t1 = fork owner();
  int t2 = fork thief();
  join t1;
  join t2;
  return 0;
}
`,
})
