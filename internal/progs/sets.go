package progs

// The two sorted-list sets of the evaluation. The lazy list (Heller et
// al., OPODIS'05 [13]) is lock-based: per Table 2 "add, contains and
// remove ... All three use locks" — here realized with a list lock
// protecting traversal plus the lazy marked-bit structure, which is why
// DFENCE finds no fences for it (the lock's own barriers order
// everything). Harris's set [8] is the CAS-based counterpart with the
// deletion mark packed into the successor pointer (ptr*2+mark, standing
// in for the paper's low-bit tagging), where the node-initialization
// fence (insert, 8:9) is needed on PSO.

var lazyListSet = register(&Benchmark{
	Name:     "lazylist-set",
	Paper:    "LazyList Set",
	SpecName: "set",
	Source: `// Lazy list-based set; all operations lock (fences removed).
struct Node {
  int key;
  int marked;
  Node* next;
}

Node* LHead;
int LLock = 0;

operation int add(int key) {
  lock(&LLock);
  Node* pred = LHead;
  Node* curr = pred->next;
  while (curr->key < key) {
    pred = curr;
    curr = curr->next;
  }
  if (curr->key == key && !curr->marked) {
    unlock(&LLock);
    return 0;
  }
  Node* n = alloc(sizeof(Node));
  n->key = key;
  n->marked = 0;
  n->next = curr;
  pred->next = n;
  unlock(&LLock);
  return 1;
}

operation int remove(int key) {
  lock(&LLock);
  Node* pred = LHead;
  Node* curr = pred->next;
  while (curr->key < key) {
    pred = curr;
    curr = curr->next;
  }
  if (curr->key != key || curr->marked) {
    unlock(&LLock);
    return 0;
  }
  curr->marked = 1;        // logical removal first (lazy deletion)
  pred->next = curr->next; // then physical unlink
  unlock(&LLock);
  return 1;
}

operation int contains(int key) {
  lock(&LLock);
  Node* curr = LHead;
  while (curr->key < key) {
    curr = curr->next;
  }
  int found = 0;
  if (curr->key == key && !curr->marked) {
    found = 1;
  }
  unlock(&LLock);
  return found;
}

void worker1() {
  add(1);
  add(2);
  remove(1);
  contains(1);
}

void worker2() {
  add(2);
  remove(2);
  contains(2);
}

int main() {
  Node* tail = alloc(sizeof(Node));
  tail->key = 1000;
  tail->next = null;
  Node* head = alloc(sizeof(Node));
  head->key = 0 - 1000;
  head->next = tail;
  LHead = head;
  int t1 = fork worker1();
  int t2 = fork worker2();
  join t1;
  join t2;
  return 0;
}
`,
})

var harrisSet = register(&Benchmark{
	Name:     "harris-set",
	Paper:    "Harris's Set",
	SpecName: "set",
	Source: `// Harris-style non-blocking sorted-list set (fences removed).
// Successor pointers are packed as ptr*2 + mark so that marking a node
// and changing its successor contend on one CAS word, as in the original
// algorithm's low-bit tagging.
struct Node {
  int key;
  int next;        // packed: successor*2 + mark
}

Node* SHead;

operation int add(int key) {
  while (1) {
    Node* pred = SHead;
    Node* curr = pred->next / 2;
    int restart = 0;
    while (1) {
      int cn = curr->next;
      Node* nxt = cn / 2;
      if (cn % 2) {
        // curr is marked: snip it out and retry from its successor.
        if (!cas(&pred->next, curr * 2, nxt * 2)) {
          restart = 1;
          break;
        }
        curr = nxt;
        continue;
      }
      if (curr->key >= key) {
        break;
      }
      pred = curr;
      curr = nxt;
    }
    if (restart) {
      continue;
    }
    if (curr->key == key) {
      return 0;
    }
    Node* n = alloc(sizeof(Node));
    n->key = key;
    n->next = curr * 2;
    if (cas(&pred->next, curr * 2, n * 2)) {
      return 1;
    }
  }
  return 0;
}

operation int remove(int key) {
  while (1) {
    Node* pred = SHead;
    Node* curr = pred->next / 2;
    while (curr->key < key) {
      pred = curr;
      curr = curr->next / 2;
    }
    if (curr->key != key) {
      return 0;
    }
    int cn = curr->next;
    if (cn % 2) {
      return 0;          // already logically deleted
    }
    if (!cas(&curr->next, cn, cn + 1)) {
      continue;          // interference: re-examine
    }
    cas(&pred->next, curr * 2, cn);   // physical unlink, best effort
    return 1;
  }
  return 0;
}

operation int contains(int key) {
  Node* curr = SHead;
  while (curr->key < key) {
    curr = curr->next / 2;
  }
  if (curr->key != key) {
    return 0;
  }
  return !(curr->next % 2);
}

void worker1() {
  add(1);
  add(2);
  remove(1);
  contains(1);
}

void worker2() {
  add(2);
  remove(2);
  contains(2);
}

int main() {
  Node* tail = alloc(sizeof(Node));
  tail->key = 1000;
  tail->next = 0;
  Node* head = alloc(sizeof(Node));
  head->key = 0 - 1000;
  head->next = tail * 2;
  SHead = head;
  int t1 = fork worker1();
  int t2 = fork worker2();
  join t1;
  join t2;
  return 0;
}
`,
})
