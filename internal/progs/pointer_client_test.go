package progs

import (
	"testing"

	"dfence/internal/core"
	"dfence/internal/memmodel"
	"dfence/internal/spec"
)

// The §6.6 future-work experiment: with a pointer-freeing client, pure
// memory-safety checking detects the duplicate-extraction bugs that plain
// clients only reveal under SC/linearizability.

func TestPointerClientRegistered(t *testing.T) {
	b, err := ByName("chase-lev-ptr")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Program().Validate(); err != nil {
		t.Fatal(err)
	}
	if len(Extras()) == 0 {
		t.Error("Extras() empty")
	}
	// Not part of the Table 2/3 set.
	for _, x := range All() {
		if x.Name == "chase-lev-ptr" {
			t.Error("pointer client leaked into the Table 3 benchmark list")
		}
	}
}

func TestPointerClientCleanUnderSC(t *testing.T) {
	b, _ := ByName("chase-lev-ptr")
	cfg := core.Config{Model: memmodel.SC, Criterion: spec.MemorySafety, Seed: 1}
	if v := core.CheckOnly(b.Program(), cfg, 300); v != 0 {
		t.Fatalf("%d/300 SC-machine violations — client itself is buggy", v)
	}
}

// TestPointerClientExposesDuplicatesViaMemorySafety is the paper's
// hypothesis: the plain chase-lev client shows NO memory-safety
// violations under TSO (§6.6: "memory safety specifications are almost
// always not sufficiently strong"), while the pointer-freeing client
// turns the duplicate extraction into a double free.
func TestPointerClientExposesDuplicatesViaMemorySafety(t *testing.T) {
	plain, _ := ByName("chase-lev")
	ptr, _ := ByName("chase-lev-ptr")

	count := func(b *Benchmark, model memmodel.Model, fp float64) int {
		cfg := core.Config{
			Model: model, Criterion: spec.MemorySafety,
			FlushProb: fp, Seed: 13,
		}
		return core.CheckOnly(b.Program(), cfg, 1500)
	}

	if v := count(plain, memmodel.TSO, 0.15); v != 0 {
		t.Errorf("plain client: %d memory-safety violations on TSO — expected 0 (§6.6)", v)
	}
	if v := count(ptr, memmodel.TSO, 0.15); v == 0 {
		t.Error("pointer client: no memory-safety violations on TSO — the §6.6 trick failed")
	}
	if v := count(ptr, memmodel.PSO, 0.5); v == 0 {
		t.Error("pointer client: no memory-safety violations on PSO")
	}
}

// TestPointerClientSynthesis: memory safety alone now drives fence
// inference for Chase-Lev.
func TestPointerClientSynthesis(t *testing.T) {
	b, _ := ByName("chase-lev-ptr")
	res, err := core.Synthesize(b.Program(), core.Config{
		Model:          memmodel.PSO,
		Criterion:      spec.MemorySafety,
		ExecsPerRound:  800,
		MaxRounds:      8,
		Seed:           2,
		ValidateFences: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %s", res.Summary())
	}
	if len(res.Fences) == 0 {
		t.Fatal("no fences inferred from memory safety with the pointer client")
	}
	// The repaired program must be clean.
	cfg := core.Config{Model: memmodel.PSO, Criterion: spec.MemorySafety, Seed: 555}
	if v := core.CheckOnly(res.Program, cfg, 500); v != 0 {
		t.Errorf("repaired program still violates %d/500", v)
	}
}
