package progs

import (
	"testing"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/sched"
)

// TestOptimizerPreservesBehaviour is the optimizer's strongest guarantee:
// for every benchmark and many seeds, the optimized program produces
// exactly the same history, output, exit code, and violation status as
// the original under the same schedule seed and memory model.
//
// (Seeds drive the same pseudo-random decisions; instruction counts
// differ so schedules are not literally identical, but both versions must
// stay within the algorithm's legal behaviours — we therefore compare
// under the SC model, where every benchmark is deterministic up to
// operation outcomes validated by TestCorrectUnderSCMachine, and
// additionally check violation-freedom under PSO.)
func TestOptimizerPreservesBehaviour(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			orig := b.Program()
			opt := b.Program()
			removed := ir.Optimize(opt)
			if removed == 0 {
				t.Errorf("optimizer removed nothing from %s", b.Name)
			}
			if err := opt.Validate(); err != nil {
				t.Fatalf("optimized program invalid: %v", err)
			}
			if opt.CountInstrs() >= orig.CountInstrs() {
				t.Errorf("no shrink: %d -> %d", orig.CountInstrs(), opt.CountInstrs())
			}
			// Shared accesses survive (the synthesizer's anchor points).
			if opt.CountStores() != orig.CountStores() {
				t.Errorf("stores changed: %d -> %d", orig.CountStores(), opt.CountStores())
			}
			// Optimized program must be violation-free on the SC machine
			// and not introduce violations that fences couldn't explain.
			for seed := int64(0); seed < 60; seed++ {
				res := sched.Run(opt, memmodel.SC, nil, sched.DefaultOptions(seed))
				if res.Violation != nil {
					t.Fatalf("seed %d: optimized program violates under SC: %v", seed, res.Violation)
				}
				if res.StepLimitHit {
					t.Fatalf("seed %d: optimized program hit step limit", seed)
				}
			}
		})
	}
}

// TestOptimizedSingleThreadedEquivalence: for deterministic single-thread
// programs the results must be bit-identical.
func TestOptimizedSingleThreadedEquivalence(t *testing.T) {
	// Use each benchmark's operations driven from main directly via the
	// compiled quickstartish program below would need new source; instead
	// run the owner-only variant: both versions of chase-lev's owner
	// sequence through the deque produce the same history under a
	// single-thread schedule (thief never scheduled ⇒ impossible here), so
	// use the simplest check: main-only arithmetic from the lang tests is
	// covered there. Here, verify exit codes match for every benchmark
	// under the same SC seed.
	for _, b := range All() {
		orig := b.Program()
		opt := b.Program()
		ir.Optimize(opt)
		r1 := sched.Run(orig, memmodel.SC, nil, sched.DefaultOptions(1))
		r2 := sched.Run(opt, memmodel.SC, nil, sched.DefaultOptions(1))
		if r1.ExitCode != r2.ExitCode {
			t.Errorf("%s: exit %d vs %d", b.Name, r1.ExitCode, r2.ExitCode)
		}
		if (r1.Violation == nil) != (r2.Violation == nil) {
			t.Errorf("%s: violation status diverged", b.Name)
		}
	}
}
