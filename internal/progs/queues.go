package progs

// The two Michael-Scott queues (PODC'96) [23]: the two-lock blocking
// queue (MS2) and the non-blocking CAS-based queue (MSN). Both use a
// dummy-node linked list with head and tail pointers; nodes come from the
// system allocator (the paper's interpreter hooks malloc/mmap the same
// way) and are not reclaimed, the standard arrangement for a lock-free
// queue without a memory-reclamation scheme.

var ms2Queue = register(&Benchmark{
	Name:     "ms2-queue",
	Paper:    "MS2 Queue",
	SpecName: "queue",
	Source: `// Michael-Scott two-lock queue (fences removed).
const EMPTY = 0 - 1;

struct Node {
  int val;
  Node* next;
}

Node* Qhead;
Node* Qtail;
int HL = 0;
int TL = 0;

operation void enqueue(int v) {
  Node* n = alloc(sizeof(Node));
  n->val = v;
  n->next = null;
  lock(&TL);
  Qtail->next = n;
  Qtail = n;
  unlock(&TL);
}

operation int dequeue() {
  lock(&HL);
  Node* h = Qhead;
  Node* nh = h->next;
  if (nh == null) {
    unlock(&HL);
    return EMPTY;
  }
  int v = nh->val;
  Qhead = nh;
  unlock(&HL);
  return v;
}

void producer() {
  enqueue(21);
  enqueue(22);
  dequeue();
}

void consumer() {
  enqueue(23);
  dequeue();
  dequeue();
}

int main() {
  Node* dummy = alloc(sizeof(Node));
  dummy->next = null;
  Qhead = dummy;
  Qtail = dummy;
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1;
  join t2;
  return 0;
}
`,
})

var msnQueue = register(&Benchmark{
	Name:     "msn-queue",
	Paper:    "MSN Queue",
	SpecName: "queue",
	Source: `// Michael-Scott non-blocking queue (fences removed). The fence the
// paper reports at (enqueue, E3:E4) orders the node initialization before
// the CAS that links it into the list.
const EMPTY = 0 - 1;

struct Node {
  int val;
  Node* next;
}

Node* Qhead;
Node* Qtail;

operation void enqueue(int v) {
  Node* n = alloc(sizeof(Node));
  n->val = v;
  n->next = null;
  while (1) {
    Node* t = Qtail;
    Node* nxt = t->next;
    if (t == Qtail) {
      if (nxt == null) {
        if (cas(&t->next, null, n)) {
          cas(&Qtail, t, n);
          return;
        }
      } else {
        cas(&Qtail, t, nxt);
      }
    }
  }
}

operation int dequeue() {
  while (1) {
    Node* h = Qhead;
    Node* t = Qtail;
    Node* nxt = h->next;
    if (h == Qhead) {
      if (h == t) {
        if (nxt == null) {
          return EMPTY;
        }
        cas(&Qtail, t, nxt);
      } else {
        int v = nxt->val;
        if (cas(&Qhead, h, nxt)) {
          return v;
        }
      }
    }
  }
  return EMPTY;
}

void producer() {
  enqueue(21);
  enqueue(22);
  dequeue();
}

void consumer() {
  enqueue(23);
  dequeue();
  dequeue();
}

int main() {
  Node* dummy = alloc(sizeof(Node));
  dummy->next = null;
  Qhead = dummy;
  Qtail = dummy;
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1;
  join t2;
  return 0;
}
`,
})
