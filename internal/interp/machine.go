// Package interp is the DFENCE execution engine: a small-step interpreter
// for the IR of package ir running under a pluggable relaxed memory model
// (package memmodel). It is the from-scratch replacement for the paper's
// extended LLVM interpreter (lli): it supports user-level threads
// (fork/join/self), per-thread store buffers for TSO and PSO, scheduler-
// driven flush transitions, memory-safety checking, operation history
// recording, and an observation hook used by the fence synthesizer.
//
// The interpreter exposes individual transitions (StepThread, FlushOne) so
// that a demonic scheduler (package sched) fully controls interleaving and
// flush timing, exactly as in the paper's architecture.
//
// Executions run over a Compiled program (see Compile): branch targets and
// callees are pre-resolved to array indices, so the step loop performs no
// map lookups. A Machine is reusable: Reset re-arms it for the next
// execution while retaining every internal buffer (memory image, thread
// and frame pools, register slices, history), which makes the per-
// execution hot path allocation-free after warm-up. Results produced by a
// Machine alias its internal buffers — they are valid only until the next
// Reset of the same Machine.
package interp

import (
	"fmt"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// frame is one activation record. Registers are not stored here: they
// live in the owning thread's flat register arena, and the frame holds
// only its [base, base+nregs) window — frames are pointer-light (one
// *cfunc into the compiled program) and a thread's whole call stack sits
// in two contiguous slices.
type frame struct {
	fn     *cfunc
	base   int32  // first register slot in the thread's arena
	nregs  int32  // register count (== fn.numRegs)
	pc     int    // index into fn.code
	retDst ir.Reg // caller register receiving the return value (NoReg: dropped)
	isOp   bool   // operation frame: its return emits an EventResponse
}

// DeferredLoad is a shared load whose read of memory has been issued but
// not yet performed — the operational form of load-load/load-store
// relaxation under models with memmodel.Model.DefersLoads. The scheduler
// resolves deferred loads in any order (ResolveOne); the resolution order
// is the effective read order, so resolving out of program order *is* the
// reordering. While deferred, the issuing thread holds no buffered store
// to Addr (a buffered store would have been forwarded at issue), so
// resolution reads main memory directly.
type DeferredLoad struct {
	Label ir.Label
	Addr  int64
	Dst   ir.Reg
}

// Thread is one user-level thread, mirroring the paper's ThreadStacks map:
// a thread identifier owning a list of execution contexts plus its store
// buffers and (under load-deferring models) its pending-load queue.
//
// Threads are stored by value in the machine's thread table
// (struct-of-arrays layout): the store buffers are embedded rather than
// heap-allocated, every frame's registers live in the thread's flat regs
// arena, and a retired thread slot keeps all its backing storage for the
// next execution — so steady-state runs hold per-thread state in a few
// contiguous allocations the garbage collector never has to trace
// per-frame.
type Thread struct {
	ID      int
	frames  []frame
	regs    []int64 // register arena; frames hold [base, base+nregs) windows
	buf     memmodel.Buffers
	defq    []DeferredLoad // issued-but-unresolved shared loads, issue order
	opDepth int            // >0 while executing inside an operation
}

// Finished reports whether the thread has run to completion. Its buffers
// may still hold pending stores; the JOIN rule additionally requires the
// buffers to drain (paper Semantics 1).
func (t *Thread) Finished() bool { return len(t.frames) == 0 }

// Buffers exposes the thread's store buffers (read-only use intended).
func (t *Thread) Buffers() *memmodel.Buffers { return &t.buf }

// DeferredLoads exposes the thread's pending-load queue in issue order.
// The slice aliases internal state — valid until the thread's next step.
func (t *Thread) DeferredLoads() []DeferredLoad { return t.defq }

// top returns the active frame.
func (t *Thread) top() *frame { return &t.frames[len(t.frames)-1] }

// frameRegs returns fr's register window into the thread's arena. The
// view is invalidated by pushFrame (arena growth may move the backing).
func (t *Thread) frameRegs(fr *frame) []int64 {
	return t.regs[fr.base : int(fr.base)+int(fr.nregs)]
}

// pushFrame appends an activation of fn, carving (and zeroing) its
// register window out of the arena, and returns the new frame. Any
// previously obtained frame pointer or register view may be invalidated
// (both the frame slice and the arena can grow).
func (t *Thread) pushFrame(fn *cfunc, retDst ir.Reg, isOp bool) *frame {
	base := len(t.regs)
	need := base + fn.numRegs
	if need <= cap(t.regs) {
		t.regs = t.regs[:need]
		clear(t.regs[base:])
	} else {
		grown := make([]int64, need, 2*need+8)
		copy(grown, t.regs)
		t.regs = grown
	}
	t.frames = append(t.frames, frame{
		fn:     fn,
		base:   int32(base),
		nregs:  int32(fn.numRegs),
		retDst: retDst,
		isOp:   isOp,
	})
	return &t.frames[len(t.frames)-1]
}

// popFrame retires the active frame, returning its register window to
// the arena (stack discipline: the window is always the arena's tail).
func (t *Thread) popFrame() {
	fr := t.top()
	t.regs = t.regs[:fr.base]
	t.frames = t.frames[:len(t.frames)-1]
}

// Machine executes one program run. It is not safe for concurrent use.
// The zero Machine is ready for Reset; NewMachine compiles and resets in
// one step. A Machine may be reused for any number of executions via
// Reset — each Reset retains the pooled internals, so steady-state
// executions allocate (almost) nothing.
type Machine struct {
	c     *Compiled
	model memmodel.Model
	obs   Observer

	mem      []int64
	units    unitTracker
	threads  []Thread // by value: thread state is machine-owned (SoA)
	history  []Event
	output   []int64
	steps    int
	violated *Violation
	exitCode int64
	touched  uint64 // bitmask of watched fences executed (CompileWatched)

	// Scratch, retained across Reset. Retired Thread slots beyond
	// len(m.threads) keep their frame, register-arena, buffer, and queue
	// storage and are revived in place by newThread; argBlocks backs
	// history-event argument slices; pendScratch and entScratch back the
	// observation hook.
	argBlocks   [][]int64
	argCur      int
	pendScratch []PendingStore
	entScratch  []memmodel.Entry
	useScratch  []ir.Reg // backing for forced-resolve use-set scans
}

// heapGap is the number of unaddressable guard words placed between
// allocations so that small overflows land outside every unit and are
// caught (a strengthening over contiguous layout; detection-only, no
// semantic effect).
const heapGap = 1

// NewMachine prepares an execution of prog under the given memory model.
// prog must be linked. obs may be nil. It compiles prog on the spot; batch
// callers should Compile once and Reset a pooled Machine instead.
func NewMachine(prog *ir.Program, model memmodel.Model, obs Observer) *Machine {
	m := &Machine{}
	m.Reset(Compile(prog), model, obs)
	return m
}

// Reset re-arms the machine for a fresh execution of c under the given
// model. All internal buffers are retained and reused; any Result (and its
// History/Output slices) obtained from the machine before the Reset is
// invalidated. The zero Machine may be Reset.
func (m *Machine) Reset(c *Compiled, model memmodel.Model, obs Observer) {
	m.c = c
	m.model = model
	m.obs = obs
	m.steps = 0
	m.violated = nil
	m.exitCode = 0
	m.touched = 0
	m.history = m.history[:0]
	m.output = m.output[:0]
	for i := range m.argBlocks {
		m.argBlocks[i] = m.argBlocks[i][:0]
	}
	m.argCur = 0
	m.units.units = m.units.units[:0]

	// Retire every thread of the previous run: slots beyond the length
	// keep their storage and are revived in place by newThread.
	m.threads = m.threads[:0]

	size := c.prog.GlobalsSize()
	if int64(cap(m.mem)) >= size {
		m.mem = m.mem[:size]
		clear(m.mem)
	} else {
		m.mem = make([]int64, size)
	}
	for _, g := range c.prog.Globals {
		m.units.add(g.Addr, g.Size)
		copy(m.mem[g.Addr:g.Addr+g.Size], g.Init)
	}
	entry := &c.funcs[c.entry]
	main := m.newThread()
	main.pushFrame(entry, ir.NoReg, false)
}

// newThread appends a thread (id = its table index) with empty buffers
// under the current model, reviving a retired slot's storage when one is
// available. Growing the table may move it: every *Thread (and frame or
// register view derived from one) obtained earlier is invalidated.
func (m *Machine) newThread() *Thread {
	if len(m.threads) < cap(m.threads) {
		m.threads = m.threads[:len(m.threads)+1]
	} else {
		m.threads = append(m.threads, Thread{})
	}
	t := &m.threads[len(m.threads)-1]
	t.ID = len(m.threads) - 1
	t.frames = t.frames[:0]
	t.regs = t.regs[:0]
	t.defq = t.defq[:0]
	t.opDepth = 0
	t.buf.Reset(m.model)
	return t
}

// allocArgs carves an n-word slice out of the machine's argument arena
// (history-event arguments live until the next Reset, not until frame pop,
// so they cannot share the register pool). The arena is chunked: a full
// block is sealed and the next pooled block activated, so growth never
// abandons storage — every block survives Reset, and an execution stream
// whose arg high-water mark has been reached stops allocating entirely.
func (m *Machine) allocArgs(n int) []int64 {
	if n == 0 {
		return nil
	}
	for {
		if m.argCur < len(m.argBlocks) {
			b := m.argBlocks[m.argCur]
			if off := len(b); off+n <= cap(b) {
				b = b[: off+n : off+n]
				m.argBlocks[m.argCur] = b
				return b[off:]
			}
			m.argCur++
			continue
		}
		grow := 256
		if n > grow {
			grow = n
		}
		m.argBlocks = append(m.argBlocks, make([]int64, 0, grow))
	}
}

// NumThreads returns the number of live threads (ids are 0..n-1).
func (m *Machine) NumThreads() int { return len(m.threads) }

// Thread returns thread tid. The pointer aliases the machine's thread
// table: it is valid until the next fork or Reset (both may move the
// table) and must not be retained across steps.
func (m *Machine) Thread(tid int) *Thread { return &m.threads[tid] }

// Steps returns the number of transitions taken so far.
func (m *Machine) Steps() int { return m.steps }

// Violation returns the first violation, or nil.
func (m *Machine) Violation() *Violation { return m.violated }

// History returns the operation history recorded so far.
func (m *Machine) History() []Event { return m.history }

// Output returns the values printed so far.
func (m *Machine) Output() []int64 { return m.output }

// ExitCode returns main's return value.
func (m *Machine) ExitCode() int64 { return m.exitCode }

// Done reports whether the execution has ended: a violation occurred, or
// every thread finished with drained buffers and no unresolved loads (a
// finished thread's queue is empty by construction — OpRet resolves all —
// but Done checks it anyway to keep the invariant observable).
func (m *Machine) Done() bool {
	if m.violated != nil {
		return true
	}
	for i := range m.threads {
		t := &m.threads[i]
		if !t.Finished() || !t.buf.Empty() || len(t.defq) > 0 {
			return false
		}
	}
	return true
}

// CanExec reports whether thread tid can execute its next instruction
// right now (it has one, and any join it is blocked on has become ready).
// A thread whose next instruction is a fence or CAS with pending buffered
// stores can still "execute": its step is a forced flush.
func (m *Machine) CanExec(tid int) bool {
	t := &m.threads[tid]
	if t.Finished() {
		return false
	}
	in := m.current(t)
	if in.Op == ir.OpJoin {
		target := t.frameRegs(t.top())[in.A]
		return m.joinReady(target)
	}
	return true
}

// CanFlush reports whether thread tid has pending buffered stores.
func (m *Machine) CanFlush(tid int) bool { return !m.threads[tid].buf.Empty() }

// CanResolve reports whether thread tid has deferred loads awaiting
// resolution (only ever true under load-deferring models).
func (m *Machine) CanResolve(tid int) bool { return len(m.threads[tid].defq) > 0 }

// DeferredCount returns the number of deferred loads of thread tid — the
// valid index range for ResolveOne.
func (m *Machine) DeferredCount(tid int) int { return len(m.threads[tid].defq) }

// NextForcesResolve reports whether executing thread tid's next
// instruction would first force-resolve a pending deferred load
// (dependency, per-location coherence, or synchronization — the
// forcedResolveIdx rules). Always false for finished threads and for
// threads with an empty deferred queue. The scheduler's load-starvation
// vow keys on it: executing such an instruction ends the load's
// deferral window, so an adversarial schedule runs the other threads
// first.
func (m *Machine) NextForcesResolve(tid int) bool {
	t := &m.threads[tid]
	if len(t.defq) == 0 || t.Finished() {
		return false
	}
	fr := t.top()
	return m.forcedResolveIdx(t, fr, &fr.fn.code[fr.pc]) >= 0
}

// Actable reports whether the scheduler can give thread tid a turn at all.
func (m *Machine) Actable(tid int) bool {
	return m.CanExec(tid) || m.CanFlush(tid) || m.CanResolve(tid)
}

// Census bits: the scheduler-relevant state of one thread, packed so the
// scheduling loop can rebuild its actable set from one byte per thread.
// A thread whose census is exactly CensusFinished is permanently inert
// (finished, buffer drained, no unresolved loads): it never acts again,
// and joins blocked on it are ready.
const (
	// CensusExec: the thread can execute its next instruction.
	CensusExec uint8 = 1 << iota
	// CensusFlush: the thread has pending buffered stores.
	CensusFlush
	// CensusResolve: the thread has deferred loads awaiting resolution.
	CensusResolve
	// CensusFinished: the thread has no frames left.
	CensusFinished
)

// CensusActable masks the bits that make a thread schedulable at all.
const CensusActable = CensusExec | CensusFlush | CensusResolve

// censusOf computes the census bits of one thread — the fused equivalent
// of Finished/CanExec/CanFlush/CanResolve with a single frame-and-queue
// inspection.
func (m *Machine) censusOf(tid int) uint8 {
	t := &m.threads[tid]
	var f uint8
	if !t.buf.Empty() {
		f |= CensusFlush
	}
	if len(t.defq) > 0 {
		f |= CensusResolve
	}
	if t.Finished() {
		f |= CensusFinished
	} else {
		in := m.current(t)
		if in.Op != ir.OpJoin || m.joinReady(t.frameRegs(t.top())[in.A]) {
			f |= CensusExec
		}
	}
	return f
}

// SchedCensus fills flags (reset and grown as needed, indexed by tid)
// with every thread's census bits. The scheduler calls it once per
// structural change; between those, SchedCensusOne keeps the census
// exact at one-thread cost.
func (m *Machine) SchedCensus(flags []uint8) []uint8 {
	for tid := range m.threads {
		flags = append(flags, m.censusOf(tid))
	}
	return flags
}

// SchedCensusOne recomputes the census entry of the one thread that
// mutated. Sound whenever the machine changed only through thread tid
// and the thread count is unchanged: flushes, resolves, and non-fork
// steps touch no other thread's frames or queues, memory contents never
// affect actability, and join readiness of other threads can only flip
// when tid's new census becomes exactly CensusFinished — the caller must
// fall back to a full SchedCensus in that case (and after forks).
func (m *Machine) SchedCensusOne(flags []uint8, tid int) {
	flags[tid] = m.censusOf(tid)
}

func (m *Machine) joinReady(target int64) bool {
	if target < 0 || target >= int64(len(m.threads)) {
		// Joining a bogus id can never succeed; treat as never-ready (the
		// runner will report deadlock).
		return false
	}
	u := &m.threads[target]
	return u.Finished() && u.buf.Empty() && len(u.defq) == 0
}

func (m *Machine) current(t *Thread) *ir.Instr {
	fr := t.top()
	return &fr.fn.code[fr.pc]
}

// CurrentInstr returns the instruction thread tid would execute next,
// or nil when the thread has finished (or tid is out of range). The
// returned pointer aliases the compiled program — read-only use. It
// exists for replay-time introspection (the violation-witness
// explainer), not for the hot path.
func (m *Machine) CurrentInstr(tid int) *ir.Instr {
	if tid < 0 || tid >= len(m.threads) {
		return nil
	}
	t := &m.threads[tid]
	if t.Finished() {
		return nil
	}
	return m.current(t)
}

// CurrentFunc returns the name of the function thread tid is currently
// executing, or "" when finished.
func (m *Machine) CurrentFunc(tid int) string {
	if tid < 0 || tid >= len(m.threads) {
		return ""
	}
	t := &m.threads[tid]
	if t.Finished() {
		return ""
	}
	return t.top().fn.name
}

// RegValue returns register r of thread tid's active frame. Used by the
// explainer to resolve the address/value operands of the instruction
// about to execute; returns 0, false when unavailable.
func (m *Machine) RegValue(tid int, r ir.Reg) (int64, bool) {
	if tid < 0 || tid >= len(m.threads) {
		return 0, false
	}
	t := &m.threads[tid]
	if t.Finished() {
		return 0, false
	}
	regs := t.frameRegs(t.top())
	if int(r) < 0 || int(r) >= len(regs) {
		return 0, false
	}
	return regs[r], true
}

// StepKind describes what a transition did, for scheduler bookkeeping.
type StepKind uint8

const (
	// StepLocal executed an instruction touching only registers or
	// provably thread-local memory (partial-order-reduction candidates).
	StepLocal StepKind = iota
	// StepShared executed an instruction visible to other threads.
	StepShared
	// StepFlush committed one buffered store to main memory.
	StepFlush
	// StepResolve performed the deferred read of one pending load.
	StepResolve
	// StepBlocked means the thread could not act (should not normally be
	// scheduled in this state).
	StepBlocked
)

// FlushOne commits the oldest pending store of thread tid for the given
// address (per-address-buffer models) or the FIFO head (TSO; addr
// ignored) to main memory, performing the memory-safety check of the
// FLUSH transition. Under per-address models the address must be
// currently flushable (see Buffers.FlushableAddrsView) — the oldest entry
// of an address parked behind a store-store barrier cannot commit yet and
// the step reports StepBlocked.
func (m *Machine) FlushOne(tid int, addr int64) StepKind {
	t := &m.threads[tid]
	e, ok := t.buf.FlushOldest(addr)
	if !ok {
		return StepBlocked
	}
	m.steps++
	m.commit(tid, e)
	return StepFlush
}

// commit writes a flushed entry to main memory with safety checking.
func (m *Machine) commit(tid int, e memmodel.Entry) {
	if !m.checkAddr(tid, e.Label, e.Addr, "store (at flush)") {
		return
	}
	m.mem[e.Addr] = e.Val
}

func (m *Machine) checkAddr(tid int, l ir.Label, addr int64, what string) bool {
	if addr > 0 && addr < int64(len(m.mem)) && m.units.contains(addr) {
		return true
	}
	kind := "out-of-bounds"
	if addr == 0 {
		kind = "null-dereference"
	}
	m.fail(&Violation{
		Kind:   VMemSafety,
		Thread: tid,
		Label:  l,
		Msg:    fmt.Sprintf("%s %s of address %d", kind, what, addr),
	})
	return false
}

func (m *Machine) fail(v *Violation) {
	if m.violated == nil {
		m.violated = v
	}
}

// ResolveOne performs the deferred read of thread tid's idx-th pending
// load (RESOLVE transition): the value at its address is read from main
// memory — with the memory-safety check deferred loads postpone to read
// time — into the destination register, and the entry leaves the queue.
// Any index is legal; out-of-program-order resolution is precisely the
// load-load/load-store reordering the deferring models exhibit. The
// issuing frame is always the thread's top frame (calls and returns force
// full resolution first).
func (m *Machine) ResolveOne(tid int, idx int) StepKind {
	t := &m.threads[tid]
	if m.violated != nil || idx < 0 || idx >= len(t.defq) {
		return StepBlocked
	}
	d := t.defq[idx]
	t.defq = append(t.defq[:idx], t.defq[idx+1:]...)
	m.steps++
	if !m.checkAddr(tid, d.Label, d.Addr, "load (at resolve)") {
		return StepResolve
	}
	t.frameRegs(t.top())[d.Dst] = m.mem[d.Addr]
	return StepResolve
}

// forcedResolveIdx returns the queue index of a deferred load that must
// resolve before in can execute, or -1 when in may proceed. The rules
// preserve exactly what every deferring hardware model preserves:
// data/address dependencies (in reads or rewrites a pending destination
// register), per-location coherence (in accesses the same address as a
// pending load), and synchronization (calls, returns, forks, joins, CAS,
// and load-ordering fences resolve everything, one entry per step).
func (m *Machine) forcedResolveIdx(t *Thread, fr *frame, in *ir.Instr) int {
	switch in.Op {
	case ir.OpCall, ir.OpRet, ir.OpFork, ir.OpJoin, ir.OpCas:
		return 0
	case ir.OpFence:
		if in.Kind.ResolvesLoads() {
			return 0
		}
		return -1
	}
	// Dependency order: an instruction reading or redefining a deferred
	// destination register forces that load to resolve first.
	uses := in.Uses(m.useScratch[:0])
	m.useScratch = uses[:0]
	def := in.Def()
	for i := range t.defq {
		if t.defq[i].Dst == def && def != ir.NoReg {
			return i
		}
		for _, u := range uses {
			if t.defq[i].Dst == u {
				return i
			}
		}
	}
	// Per-location coherence: a load or store to an address with a pending
	// load of the same address resolves it first (CoRR/CoWR). The address
	// register is meaningful here — had it been a deferred destination, the
	// dependency rule above would have fired instead.
	switch in.Op {
	case ir.OpLoad, ir.OpStore:
		addr := t.frameRegs(fr)[in.A]
		for i := range t.defq {
			if t.defq[i].Addr == addr {
				return i
			}
		}
	}
	return -1
}

// forcedFlush performs one flush step on behalf of an instruction that
// requires (some of) the buffers to drain before it can execute. Under
// per-address-buffer models a CAS drains only its own address when that
// address is flushable; otherwise (and under TSO) the oldest flushable
// entry goes first — store-store barriers can park the wanted address
// behind entries of an earlier epoch, which must then drain first.
func (m *Machine) forcedFlush(tid int, addr int64) StepKind {
	t := &m.threads[tid]
	if m.model.RelaxesStoreStore() && addr >= 0 && !t.buf.EmptyFor(addr) {
		if k := m.FlushOne(tid, addr); k != StepBlocked {
			return k
		}
	}
	fl := t.buf.FlushableAddrsView()
	if len(fl) == 0 {
		return StepBlocked
	}
	return m.FlushOne(tid, fl[0])
}

// StepThread performs one transition of thread tid: a forced flush if the
// next instruction needs empty buffers, otherwise the next instruction.
// If the thread has finished but still has pending stores, the step is a
// flush. Returns what kind of step occurred.
func (m *Machine) StepThread(tid int) StepKind {
	if m.violated != nil {
		return StepBlocked
	}
	t := &m.threads[tid]
	if t.Finished() {
		if t.buf.Empty() {
			return StepBlocked
		}
		fl := t.buf.FlushableAddrsView()
		return m.FlushOne(tid, fl[0])
	}
	fr := t.top()
	in := &fr.fn.code[fr.pc]

	// Deferred loads the next instruction depends on (or that its
	// synchronization semantics order) resolve first, one per step.
	if len(t.defq) > 0 {
		if idx := m.forcedResolveIdx(t, fr, in); idx >= 0 {
			return m.ResolveOne(tid, idx)
		}
	}

	// Instructions that require drained buffers first (store-draining
	// FENCE kinds, CAS, and the flush half of JOIN handled via joinReady)
	// trigger forced flushes.
	switch in.Op {
	case ir.OpFence:
		if in.Kind.DrainsStores() && !t.buf.Empty() {
			return m.forcedFlush(tid, -1)
		}
	case ir.OpCas:
		a := t.frameRegs(fr)[in.A]
		if !t.buf.EmptyFor(a) {
			return m.forcedFlush(tid, a)
		}
	case ir.OpFork:
		// Thread creation is a synchronization point (pthread_create
		// implies a full barrier): the parent's buffers drain so the child
		// observes everything written before the fork.
		if !t.buf.Empty() {
			return m.forcedFlush(tid, -1)
		}
	case ir.OpJoin:
		if !m.joinReady(t.frameRegs(fr)[in.A]) {
			return StepBlocked
		}
	}

	m.steps++
	return m.exec(t, fr, in)
}

func (m *Machine) exec(t *Thread, fr *frame, in *ir.Instr) StepKind {
	pc := fr.pc // index of in within fr.fn (for the resolved side table)
	regs := t.frameRegs(fr)
	advance := true
	kind := StepLocal
	switch in.Op {
	case ir.OpConst:
		regs[in.Dst] = in.Imm
	case ir.OpGlobal:
		regs[in.Dst] = in.Imm
	case ir.OpMov:
		regs[in.Dst] = regs[in.A]
	case ir.OpBin:
		regs[in.Dst] = in.Bin.Eval(regs[in.A], regs[in.B])
	case ir.OpNot:
		if regs[in.A] == 0 {
			regs[in.Dst] = 1
		} else {
			regs[in.Dst] = 0
		}
	case ir.OpNeg:
		regs[in.Dst] = -regs[in.A]

	case ir.OpLoad:
		addr := regs[in.A]
		if in.ThreadLocal {
			if !m.checkAddr(t.ID, in.Label, addr, "load") {
				return StepShared
			}
			regs[in.Dst] = m.mem[addr]
			break // stays StepLocal
		}
		kind = StepShared
		m.observe(t, in.Label, AccLoad, addr)
		if v, ok := t.buf.Lookup(addr); ok {
			regs[in.Dst] = v // LOAD-B (store forwarding resolves at issue)
		} else if m.model.DefersLoads() {
			// LOAD-D: the read is deferred — the scheduler picks the moment
			// (and hence the order) it reads memory via ResolveOne. The
			// memory-safety check moves to resolve time with the read.
			t.defq = append(t.defq, DeferredLoad{Label: in.Label, Addr: addr, Dst: in.Dst})
		} else {
			if !m.checkAddr(t.ID, in.Label, addr, "load") {
				return StepShared
			}
			regs[in.Dst] = m.mem[addr] // LOAD-G
		}

	case ir.OpStore:
		addr := regs[in.A]
		val := regs[in.B]
		if in.ThreadLocal {
			if !m.checkAddr(t.ID, in.Label, addr, "store") {
				return StepShared
			}
			m.mem[addr] = val
			break
		}
		kind = StepShared
		m.observe(t, in.Label, AccStore, addr)
		if m.model == memmodel.SC {
			if !m.checkAddr(t.ID, in.Label, addr, "store") {
				return StepShared
			}
			m.mem[addr] = val
		} else {
			t.buf.Put(addr, val, in.Label)
		}

	case ir.OpCas:
		kind = StepShared
		addr := regs[in.A]
		m.observe(t, in.Label, AccCas, addr)
		if !m.checkAddr(t.ID, in.Label, addr, "cas") {
			return StepShared
		}
		if m.mem[addr] == regs[in.B] {
			m.mem[addr] = regs[in.C]
			regs[in.Dst] = 1
		} else {
			regs[in.Dst] = 0
		}

	case ir.OpFence:
		// Store-draining kinds arrive with empty buffers (forced flushes
		// ran) and load-ordering kinds with an empty queue (forced resolves
		// ran). Store-*ordering* kinds instead seal the current buffer
		// content behind an epoch barrier — nothing drains, but later
		// stores cannot overtake earlier ones.
		kind = StepShared
		if in.Kind.BarriersStores() {
			t.buf.Barrier()
		}
		if w := fr.fn.rx[pc].watch; w >= 0 {
			m.touched |= 1 << uint(w)
		}

	case ir.OpBr:
		fr.pc = int(fr.fn.rx[pc].target)
		advance = false
	case ir.OpCondBr:
		if regs[in.A] != 0 {
			fr.pc = int(fr.fn.rx[pc].target)
		} else {
			fr.pc = int(fr.fn.rx[pc].target2)
		}
		advance = false

	case ir.OpCall:
		callee := &m.c.funcs[fr.fn.rx[pc].callee]
		isOp := false
		if callee.isOp {
			isOp = t.opDepth == 0
			t.opDepth++
		}
		fr.pc++ // return lands after the call (before fr is invalidated)
		nf := t.pushFrame(callee, in.Dst, isOp)
		// pushFrame may move both the frame slice and the register arena:
		// re-derive the caller's registers before seeding the callee's.
		caller := &t.frames[len(t.frames)-2]
		cregs := t.frameRegs(caller)
		nregs := t.frameRegs(nf)
		for i, a := range in.Args {
			nregs[i] = cregs[a]
		}
		if isOp {
			args := m.allocArgs(len(in.Args))
			copy(args, nregs[:len(in.Args)])
			m.history = append(m.history, Event{
				Kind: EventInvoke, Thread: t.ID, Op: callee.name, Args: args,
			})
		}
		advance = false

	case ir.OpRet:
		var val int64
		hasVal := in.HasVal
		if hasVal {
			val = regs[in.A]
		}
		if fr.isOp {
			m.history = append(m.history, Event{
				Kind: EventResponse, Thread: t.ID, Op: fr.fn.name, Ret: val, HasRet: hasVal,
			})
		}
		if fr.fn.isOp {
			t.opDepth--
		}
		retDst := fr.retDst
		t.popFrame()
		if len(t.frames) == 0 {
			if t.ID == 0 {
				m.exitCode = val
			}
		} else if hasVal && retDst != ir.NoReg {
			t.frameRegs(t.top())[retDst] = val
		}
		advance = false
		kind = StepShared // returns are scheduling points (keeps POR honest)

	case ir.OpFork:
		callee := &m.c.funcs[fr.fn.rx[pc].callee]
		tid := t.ID
		nt := m.newThread() // may move the thread table: t/fr/regs go stale
		t = &m.threads[tid]
		fr = t.top()
		regs = t.frameRegs(fr)
		nf := nt.pushFrame(callee, ir.NoReg, callee.isOp)
		nregs := nt.frameRegs(nf)
		for i, a := range in.Args {
			nregs[i] = regs[a]
		}
		if callee.isOp {
			nt.opDepth++
			args := m.allocArgs(len(in.Args))
			copy(args, nregs[:len(in.Args)])
			m.history = append(m.history, Event{
				Kind: EventInvoke, Thread: nt.ID, Op: callee.name, Args: args,
			})
		}
		regs[in.Dst] = int64(nt.ID)
		kind = StepShared

	case ir.OpJoin:
		kind = StepShared // readiness checked by caller

	case ir.OpSelf:
		regs[in.Dst] = int64(t.ID)

	case ir.OpAlloc:
		size := regs[in.A]
		if size < 1 {
			size = 1
		}
		base := int64(len(m.mem)) + heapGap
		need := base + size
		if int64(cap(m.mem)) >= need {
			old := int64(len(m.mem))
			m.mem = m.mem[:need]
			clear(m.mem[old:])
		} else {
			grown := make([]int64, need)
			copy(grown, m.mem)
			m.mem = grown
		}
		m.units.add(base, size)
		regs[in.Dst] = base
		kind = StepShared

	case ir.OpFree:
		addr := regs[in.A]
		if !m.units.remove(addr) {
			m.fail(&Violation{
				Kind:   VMemSafety,
				Thread: t.ID,
				Label:  in.Label,
				Msg:    fmt.Sprintf("free of invalid pointer %d", addr),
			})
			return StepShared
		}
		// Per the paper, free does not flush write buffers; pending stores
		// to the freed unit will fault at flush time (use-after-free).
		kind = StepShared

	case ir.OpAssert:
		if regs[in.A] == 0 {
			m.fail(&Violation{
				Kind:   VAssert,
				Thread: t.ID,
				Label:  in.Label,
				Msg:    in.Msg,
			})
			return StepShared
		}

	case ir.OpPrint:
		m.output = append(m.output, regs[in.A])

	default:
		m.fail(&Violation{
			Kind:   VAssert,
			Thread: t.ID,
			Label:  in.Label,
			Msg:    fmt.Sprintf("cannot execute opcode %v", in.Op),
		})
		return StepShared
	}
	if advance {
		fr.pc++
	}
	return kind
}

// observe reports a shared access to the Observer with the same-thread
// pending accesses to other addresses (instrumented Semantics 2): the
// buffered stores first, then — under load-deferring models — the
// deferred loads, each of which may still take effect after the access
// being observed. Observation happens at issue time, so the pending set
// is exactly the set of program-order-earlier accesses the model may
// reorder past this one. A buffered store separated from an issuing
// store by an epoch barrier is excluded: the barrier forces it to commit
// before the new entry, so the pair cannot reorder and no predicate
// arises. The filter does not apply to loads (the barrier leaves st-ld
// reordering possible) nor to CAS (its write bypasses the buffers, so
// epochs do not gate it — mirrored statically by killsBeforeCas). The
// slice handed to the Observer is scratch space reused across calls —
// observers must not retain it (see Observer).
func (m *Machine) observe(t *Thread, l ir.Label, kind AccessKind, addr int64) {
	if m.obs == nil || m.model == memmodel.SC {
		return
	}
	entries := t.buf.AppendPendingOther(m.entScratch[:0], addr)
	m.entScratch = entries[:0]
	pend := m.pendScratch[:0]
	epoch := t.buf.Epoch()
	for _, e := range entries {
		if kind == AccStore && e.Epoch < epoch {
			continue
		}
		pend = append(pend, PendingStore{Label: e.Label, Addr: e.Addr})
	}
	for _, d := range t.defq {
		if d.Addr != addr {
			pend = append(pend, PendingStore{Label: d.Label, Addr: d.Addr, IsLoad: true})
		}
	}
	m.pendScratch = pend[:0]
	if len(pend) == 0 {
		return // nothing pending to other locations: no predicates arise
	}
	m.obs.OnSharedAccess(t.ID, l, kind, addr, pend)
}

// MemRead returns the committed value at addr (tests/inspection only).
func (m *Machine) MemRead(addr int64) int64 {
	if addr < 0 || addr >= int64(len(m.mem)) {
		return 0
	}
	return m.mem[addr]
}

// GlobalValue returns the committed value of the named global's first word.
func (m *Machine) GlobalValue(name string) (int64, bool) {
	g := m.c.prog.Global(name)
	if g == nil {
		return 0, false
	}
	return m.mem[g.Addr], true
}

// Result snapshots the execution outcome. stepLimitHit is supplied by the
// runner that enforced the budget. The History and Output slices alias the
// machine's internal buffers: they are valid until the machine's next
// Reset, so batch reducers must consume (or copy) them before the worker
// moves on to its next execution.
func (m *Machine) Result(stepLimitHit bool) *Result {
	return &Result{
		Violation:    m.violated,
		History:      m.history,
		Output:       m.output,
		Steps:        m.steps,
		StepLimitHit: stepLimitHit,
		ExitCode:     m.exitCode,
		FenceTouched: m.touched,
	}
}
