// Package interp is the DFENCE execution engine: a small-step interpreter
// for the IR of package ir running under a pluggable relaxed memory model
// (package memmodel). It is the from-scratch replacement for the paper's
// extended LLVM interpreter (lli): it supports user-level threads
// (fork/join/self), per-thread store buffers for TSO and PSO, scheduler-
// driven flush transitions, memory-safety checking, operation history
// recording, and an observation hook used by the fence synthesizer.
//
// The interpreter exposes individual transitions (StepThread, FlushOne) so
// that a demonic scheduler (package sched) fully controls interleaving and
// flush timing, exactly as in the paper's architecture.
package interp

import (
	"fmt"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// frame is one activation record.
type frame struct {
	fn     *ir.Func
	regs   []int64
	pc     int    // index into fn.Code
	retDst ir.Reg // caller register receiving the return value (NoReg: dropped)
	isOp   bool   // operation frame: its return emits an EventResponse
}

// Thread is one user-level thread, mirroring the paper's ThreadStacks map:
// a thread identifier owning a list of execution contexts plus its store
// buffers.
type Thread struct {
	ID      int
	frames  []frame
	buf     *memmodel.Buffers
	opDepth int // >0 while executing inside an operation
}

// Finished reports whether the thread has run to completion. Its buffers
// may still hold pending stores; the JOIN rule additionally requires the
// buffers to drain (paper Semantics 1).
func (t *Thread) Finished() bool { return len(t.frames) == 0 }

// Buffers exposes the thread's store buffers (read-only use intended).
func (t *Thread) Buffers() *memmodel.Buffers { return t.buf }

// Machine executes one program run. It is not safe for concurrent use;
// create one Machine per execution.
type Machine struct {
	prog  *ir.Program
	model memmodel.Model
	obs   Observer

	mem      []int64
	units    unitTracker
	threads  []*Thread
	history  []Event
	output   []int64
	steps    int
	violated *Violation
	exitCode int64
}

// heapGap is the number of unaddressable guard words placed between
// allocations so that small overflows land outside every unit and are
// caught (a strengthening over contiguous layout; detection-only, no
// semantic effect).
const heapGap = 1

// NewMachine prepares an execution of prog under the given memory model.
// prog must be linked. obs may be nil.
func NewMachine(prog *ir.Program, model memmodel.Model, obs Observer) *Machine {
	m := &Machine{prog: prog, model: model, obs: obs}
	m.mem = make([]int64, prog.GlobalsSize())
	for _, g := range prog.Globals {
		m.units.add(g.Addr, g.Size)
		copy(m.mem[g.Addr:g.Addr+g.Size], g.Init)
	}
	entry := prog.Funcs[prog.Entry]
	main := &Thread{ID: 0, buf: memmodel.New(model)}
	main.frames = append(main.frames, frame{
		fn:     entry,
		regs:   make([]int64, entry.NumRegs),
		retDst: ir.NoReg,
	})
	m.threads = []*Thread{main}
	return m
}

// Threads returns the live thread table (index = thread id).
func (m *Machine) Threads() []*Thread { return m.threads }

// Steps returns the number of transitions taken so far.
func (m *Machine) Steps() int { return m.steps }

// Violation returns the first violation, or nil.
func (m *Machine) Violation() *Violation { return m.violated }

// History returns the operation history recorded so far.
func (m *Machine) History() []Event { return m.history }

// Output returns the values printed so far.
func (m *Machine) Output() []int64 { return m.output }

// ExitCode returns main's return value.
func (m *Machine) ExitCode() int64 { return m.exitCode }

// Done reports whether the execution has ended: a violation occurred, or
// every thread finished with drained buffers.
func (m *Machine) Done() bool {
	if m.violated != nil {
		return true
	}
	for _, t := range m.threads {
		if !t.Finished() || !t.buf.Empty() {
			return false
		}
	}
	return true
}

// CanExec reports whether thread tid can execute its next instruction
// right now (it has one, and any join it is blocked on has become ready).
// A thread whose next instruction is a fence or CAS with pending buffered
// stores can still "execute": its step is a forced flush.
func (m *Machine) CanExec(tid int) bool {
	t := m.threads[tid]
	if t.Finished() {
		return false
	}
	in := m.current(t)
	if in.Op == ir.OpJoin {
		target := t.frames[len(t.frames)-1].regs[in.A]
		return m.joinReady(target)
	}
	return true
}

// CanFlush reports whether thread tid has pending buffered stores.
func (m *Machine) CanFlush(tid int) bool { return !m.threads[tid].buf.Empty() }

// Actable reports whether the scheduler can give thread tid a turn at all.
func (m *Machine) Actable(tid int) bool { return m.CanExec(tid) || m.CanFlush(tid) }

func (m *Machine) joinReady(target int64) bool {
	if target < 0 || target >= int64(len(m.threads)) {
		// Joining a bogus id can never succeed; treat as never-ready (the
		// runner will report deadlock).
		return false
	}
	u := m.threads[target]
	return u.Finished() && u.buf.Empty()
}

func (m *Machine) current(t *Thread) *ir.Instr {
	fr := &t.frames[len(t.frames)-1]
	return &fr.fn.Code[fr.pc]
}

// StepKind describes what a transition did, for scheduler bookkeeping.
type StepKind uint8

const (
	// StepLocal executed an instruction touching only registers or
	// provably thread-local memory (partial-order-reduction candidates).
	StepLocal StepKind = iota
	// StepShared executed an instruction visible to other threads.
	StepShared
	// StepFlush committed one buffered store to main memory.
	StepFlush
	// StepBlocked means the thread could not act (should not normally be
	// scheduled in this state).
	StepBlocked
)

// FlushOne commits the oldest pending store of thread tid for the given
// address (PSO) or the FIFO head (TSO; addr ignored) to main memory,
// performing the memory-safety check of the FLUSH transition.
func (m *Machine) FlushOne(tid int, addr int64) StepKind {
	t := m.threads[tid]
	e, ok := t.buf.FlushOldest(addr)
	if !ok {
		return StepBlocked
	}
	m.steps++
	m.commit(tid, e)
	return StepFlush
}

// commit writes a flushed entry to main memory with safety checking.
func (m *Machine) commit(tid int, e memmodel.Entry) {
	if !m.checkAddr(tid, e.Label, e.Addr, "store (at flush)") {
		return
	}
	m.mem[e.Addr] = e.Val
}

func (m *Machine) checkAddr(tid int, l ir.Label, addr int64, what string) bool {
	if addr > 0 && addr < int64(len(m.mem)) && m.units.contains(addr) {
		return true
	}
	kind := "out-of-bounds"
	if addr == 0 {
		kind = "null-dereference"
	}
	m.fail(&Violation{
		Kind:   VMemSafety,
		Thread: tid,
		Label:  l,
		Msg:    fmt.Sprintf("%s %s of address %d", kind, what, addr),
	})
	return false
}

func (m *Machine) fail(v *Violation) {
	if m.violated == nil {
		m.violated = v
	}
}

// forcedFlush performs one flush step on behalf of an instruction that
// requires (some of) the buffers to drain before it can execute.
func (m *Machine) forcedFlush(tid int, addr int64) StepKind {
	t := m.threads[tid]
	if m.model == memmodel.PSO && addr >= 0 && !t.buf.EmptyFor(addr) {
		return m.FlushOne(tid, addr)
	}
	pend := t.buf.PendingAddrs()
	if len(pend) == 0 {
		return StepBlocked
	}
	return m.FlushOne(tid, pend[0])
}

// StepThread performs one transition of thread tid: a forced flush if the
// next instruction needs empty buffers, otherwise the next instruction.
// If the thread has finished but still has pending stores, the step is a
// flush. Returns what kind of step occurred.
func (m *Machine) StepThread(tid int) StepKind {
	if m.violated != nil {
		return StepBlocked
	}
	t := m.threads[tid]
	if t.Finished() {
		if t.buf.Empty() {
			return StepBlocked
		}
		pend := t.buf.PendingAddrs()
		return m.FlushOne(tid, pend[0])
	}
	fr := &t.frames[len(t.frames)-1]
	in := &fr.fn.Code[fr.pc]

	// Instructions that require drained buffers first (FENCE, CAS, and the
	// flush half of JOIN handled via joinReady) trigger forced flushes.
	switch in.Op {
	case ir.OpFence:
		if !t.buf.Empty() {
			return m.forcedFlush(tid, -1)
		}
	case ir.OpCas:
		a := fr.regs[in.A]
		if !t.buf.EmptyFor(a) {
			return m.forcedFlush(tid, a)
		}
	case ir.OpFork:
		// Thread creation is a synchronization point (pthread_create
		// implies a full barrier): the parent's buffers drain so the child
		// observes everything written before the fork.
		if !t.buf.Empty() {
			return m.forcedFlush(tid, -1)
		}
	case ir.OpJoin:
		if !m.joinReady(fr.regs[in.A]) {
			return StepBlocked
		}
	}

	m.steps++
	return m.exec(t, fr, in)
}

func (m *Machine) exec(t *Thread, fr *frame, in *ir.Instr) StepKind {
	advance := true
	kind := StepLocal
	switch in.Op {
	case ir.OpConst:
		fr.regs[in.Dst] = in.Imm
	case ir.OpGlobal:
		fr.regs[in.Dst] = in.Imm
	case ir.OpMov:
		fr.regs[in.Dst] = fr.regs[in.A]
	case ir.OpBin:
		fr.regs[in.Dst] = in.Bin.Eval(fr.regs[in.A], fr.regs[in.B])
	case ir.OpNot:
		if fr.regs[in.A] == 0 {
			fr.regs[in.Dst] = 1
		} else {
			fr.regs[in.Dst] = 0
		}
	case ir.OpNeg:
		fr.regs[in.Dst] = -fr.regs[in.A]

	case ir.OpLoad:
		addr := fr.regs[in.A]
		if in.ThreadLocal {
			if !m.checkAddr(t.ID, in.Label, addr, "load") {
				return StepShared
			}
			fr.regs[in.Dst] = m.mem[addr]
			break // stays StepLocal
		}
		kind = StepShared
		m.observe(t, in.Label, AccLoad, addr)
		if v, ok := t.buf.Lookup(addr); ok {
			fr.regs[in.Dst] = v // LOAD-B
		} else {
			if !m.checkAddr(t.ID, in.Label, addr, "load") {
				return StepShared
			}
			fr.regs[in.Dst] = m.mem[addr] // LOAD-G
		}

	case ir.OpStore:
		addr := fr.regs[in.A]
		val := fr.regs[in.B]
		if in.ThreadLocal {
			if !m.checkAddr(t.ID, in.Label, addr, "store") {
				return StepShared
			}
			m.mem[addr] = val
			break
		}
		kind = StepShared
		m.observe(t, in.Label, AccStore, addr)
		if m.model == memmodel.SC {
			if !m.checkAddr(t.ID, in.Label, addr, "store") {
				return StepShared
			}
			m.mem[addr] = val
		} else {
			t.buf.Put(addr, val, in.Label)
		}

	case ir.OpCas:
		kind = StepShared
		addr := fr.regs[in.A]
		m.observe(t, in.Label, AccCas, addr)
		if !m.checkAddr(t.ID, in.Label, addr, "cas") {
			return StepShared
		}
		if m.mem[addr] == fr.regs[in.B] {
			m.mem[addr] = fr.regs[in.C]
			fr.regs[in.Dst] = 1
		} else {
			fr.regs[in.Dst] = 0
		}

	case ir.OpFence:
		kind = StepShared // buffers already empty (forced flushes ran)

	case ir.OpBr:
		fr.pc = fr.fn.IndexOf(in.Target)
		advance = false
	case ir.OpCondBr:
		if fr.regs[in.A] != 0 {
			fr.pc = fr.fn.IndexOf(in.Target)
		} else {
			fr.pc = fr.fn.IndexOf(in.Target2)
		}
		advance = false

	case ir.OpCall:
		callee := m.prog.Funcs[in.Func]
		nf := frame{
			fn:     callee,
			regs:   make([]int64, callee.NumRegs),
			retDst: in.Dst,
		}
		for i, a := range in.Args {
			nf.regs[i] = fr.regs[a]
		}
		if callee.IsOperation && t.opDepth == 0 {
			nf.isOp = true
			t.opDepth++
			args := make([]int64, len(in.Args))
			copy(args, nf.regs[:len(in.Args)])
			m.history = append(m.history, Event{
				Kind: EventInvoke, Thread: t.ID, Op: callee.Name, Args: args,
			})
		} else if callee.IsOperation {
			t.opDepth++
		}
		fr.pc++ // return lands after the call
		t.frames = append(t.frames, nf)
		advance = false

	case ir.OpRet:
		var val int64
		hasVal := in.HasVal
		if hasVal {
			val = fr.regs[in.A]
		}
		if fr.isOp {
			m.history = append(m.history, Event{
				Kind: EventResponse, Thread: t.ID, Op: fr.fn.Name, Ret: val, HasRet: hasVal,
			})
		}
		if fr.fn.IsOperation {
			t.opDepth--
		}
		retDst := fr.retDst
		t.frames = t.frames[:len(t.frames)-1]
		if len(t.frames) == 0 {
			if t.ID == 0 {
				m.exitCode = val
			}
		} else if hasVal && retDst != ir.NoReg {
			caller := &t.frames[len(t.frames)-1]
			caller.regs[retDst] = val
		}
		advance = false
		kind = StepShared // returns are scheduling points (keeps POR honest)

	case ir.OpFork:
		callee := m.prog.Funcs[in.Func]
		nt := &Thread{ID: len(m.threads), buf: memmodel.New(m.model)}
		nf := frame{
			fn:     callee,
			regs:   make([]int64, callee.NumRegs),
			retDst: ir.NoReg,
		}
		for i, a := range in.Args {
			nf.regs[i] = fr.regs[a]
		}
		if callee.IsOperation {
			nf.isOp = true
			nt.opDepth++
			args := make([]int64, len(in.Args))
			copy(args, nf.regs[:len(in.Args)])
			m.history = append(m.history, Event{
				Kind: EventInvoke, Thread: nt.ID, Op: callee.Name, Args: args,
			})
		}
		nt.frames = append(nt.frames, nf)
		m.threads = append(m.threads, nt)
		fr.regs[in.Dst] = int64(nt.ID)
		kind = StepShared

	case ir.OpJoin:
		kind = StepShared // readiness checked by caller

	case ir.OpSelf:
		fr.regs[in.Dst] = int64(t.ID)

	case ir.OpAlloc:
		size := fr.regs[in.A]
		if size < 1 {
			size = 1
		}
		base := int64(len(m.mem)) + heapGap
		grown := make([]int64, base+size)
		copy(grown, m.mem)
		m.mem = grown
		m.units.add(base, size)
		fr.regs[in.Dst] = base
		kind = StepShared

	case ir.OpFree:
		addr := fr.regs[in.A]
		if !m.units.remove(addr) {
			m.fail(&Violation{
				Kind:   VMemSafety,
				Thread: t.ID,
				Label:  in.Label,
				Msg:    fmt.Sprintf("free of invalid pointer %d", addr),
			})
			return StepShared
		}
		// Per the paper, free does not flush write buffers; pending stores
		// to the freed unit will fault at flush time (use-after-free).
		kind = StepShared

	case ir.OpAssert:
		if fr.regs[in.A] == 0 {
			m.fail(&Violation{
				Kind:   VAssert,
				Thread: t.ID,
				Label:  in.Label,
				Msg:    in.Msg,
			})
			return StepShared
		}

	case ir.OpPrint:
		m.output = append(m.output, fr.regs[in.A])

	default:
		m.fail(&Violation{
			Kind:   VAssert,
			Thread: t.ID,
			Label:  in.Label,
			Msg:    fmt.Sprintf("cannot execute opcode %v", in.Op),
		})
		return StepShared
	}
	if advance {
		fr.pc++
	}
	return kind
}

// observe reports a shared access to the Observer with the same-thread
// pending stores to other addresses (instrumented Semantics 2).
func (m *Machine) observe(t *Thread, l ir.Label, kind AccessKind, addr int64) {
	if m.obs == nil || m.model == memmodel.SC {
		return
	}
	entries := t.buf.PendingOther(addr)
	if len(entries) == 0 {
		return // no pending stores to other locations: no predicates arise
	}
	pend := make([]PendingStore, len(entries))
	for i, e := range entries {
		pend[i] = PendingStore{Label: e.Label, Addr: e.Addr}
	}
	m.obs.OnSharedAccess(t.ID, l, kind, addr, pend)
}

// MemRead returns the committed value at addr (tests/inspection only).
func (m *Machine) MemRead(addr int64) int64 {
	if addr < 0 || addr >= int64(len(m.mem)) {
		return 0
	}
	return m.mem[addr]
}

// GlobalValue returns the committed value of the named global's first word.
func (m *Machine) GlobalValue(name string) (int64, bool) {
	g := m.prog.Global(name)
	if g == nil {
		return 0, false
	}
	return m.mem[g.Addr], true
}

// Result snapshots the execution outcome. stepLimitHit is supplied by the
// runner that enforced the budget.
func (m *Machine) Result(stepLimitHit bool) *Result {
	return &Result{
		Violation:    m.violated,
		History:      m.history,
		Output:       m.output,
		Steps:        m.steps,
		StepLimitHit: stepLimitHit,
		ExitCode:     m.exitCode,
	}
}
