// Compiled dispatch: a one-time "compile" step that lowers a linked
// ir.Program into a flat executable form so the interpreter's step loop is
// pure array-indexed dispatch. The ir form resolves branch targets through
// a per-function label map (Func.IndexOf) and callees through the
// program-wide Funcs map on every branch, call, and fork; compilation
// pre-resolves both into integer indices held in a per-instruction side
// table, eliminating every map lookup from the per-step hot path. Compiling
// is cheap (one pass over the code) and is done once per program version —
// the batch engine compiles once per round/batch and every execution of
// that batch shares the read-only Compiled value.
package interp

import (
	"fmt"
	"hash/fnv"

	"dfence/internal/ir"
)

// rinstr is the resolved side table entry for one instruction: everything
// the ir.Instr encodes symbolically (labels, function names), pre-resolved
// to array indices.
type rinstr struct {
	target  int32 // OpBr/OpCondBr taken target as a code index
	target2 int32 // OpCondBr fall-through target as a code index
	callee  int32 // OpCall/OpFork callee as a Compiled.funcs index
	watch   int16 // watched-fence slot (Result.FenceTouched bit), -1 = unwatched
}

// cfunc is one compiled function. code aliases the source Func's Code
// slice — the program must not be mutated while any execution of the
// Compiled value is in flight (the same invariant RunBatch already
// documents for the ir.Program itself).
type cfunc struct {
	name    string
	numRegs int
	isOp    bool
	code    []ir.Instr
	rx      []rinstr
}

// Compiled is the executable form of a linked ir.Program. It is immutable
// after Compile and safe to share across any number of concurrent
// executions. Recompile after any program mutation (fence insertion or
// removal) — Machines never consult the ir maps at runtime, so a stale
// Compiled silently executes the old code.
type Compiled struct {
	prog   *ir.Program
	funcs  []cfunc
	entry  int32
	nwatch int
}

// Program returns the source program (for global lookups and reporting).
func (c *Compiled) Program() *ir.Program { return c.prog }

// WatchedFences returns how many fence labels are watched (the number of
// meaningful low bits in Result.FenceTouched).
func (c *Compiled) WatchedFences() int { return c.nwatch }

// MaxWatchedFences is the capacity of the Result.FenceTouched bitmask.
const MaxWatchedFences = 64

// Compile lowers a linked program into its executable form.
func Compile(p *ir.Program) *Compiled {
	c, err := CompileWatched(p, nil)
	if err != nil {
		// Only watch-label resolution can fail; with no watch list the
		// lowering of a linked, validated program always succeeds.
		panic("interp: Compile: " + err.Error())
	}
	return c
}

// CompileWatched is Compile with a watch list: watch[i] must label a fence
// instruction in p, and executing it sets bit i of Result.FenceTouched.
// The execution cache uses this to learn which candidate fences an
// execution actually reached — a fence the execution never reaches cannot
// change its outcome. At most MaxWatchedFences labels can be watched.
func CompileWatched(p *ir.Program, watch []ir.Label) (*Compiled, error) {
	if len(watch) > MaxWatchedFences {
		return nil, fmt.Errorf("interp: CompileWatched: %d watch labels exceed the maximum %d", len(watch), MaxWatchedFences)
	}
	watchSlot := make(map[ir.Label]int16, len(watch))
	for i, l := range watch {
		watchSlot[l] = int16(i)
	}
	names := p.FuncNames() // sorted: function ids are deterministic
	id := make(map[string]int32, len(names))
	for i, n := range names {
		id[n] = int32(i)
	}
	c := &Compiled{prog: p, funcs: make([]cfunc, len(names)), nwatch: len(watch)}
	seen := 0
	for i, n := range names {
		f := p.Funcs[n]
		cf := &c.funcs[i]
		cf.name = f.Name
		cf.numRegs = f.NumRegs
		cf.isOp = f.IsOperation
		cf.code = f.Code
		cf.rx = make([]rinstr, len(f.Code))
		for j := range f.Code {
			in := &f.Code[j]
			r := rinstr{target: -1, target2: -1, callee: -1, watch: -1}
			switch in.Op {
			case ir.OpBr:
				r.target = int32(f.IndexOf(in.Target))
			case ir.OpCondBr:
				r.target = int32(f.IndexOf(in.Target))
				r.target2 = int32(f.IndexOf(in.Target2))
			case ir.OpCall, ir.OpFork:
				r.callee = id[in.Func]
			case ir.OpFence:
				if s, ok := watchSlot[in.Label]; ok {
					r.watch = s
					seen++
				}
			}
			cf.rx[j] = r
		}
	}
	if seen != len(watch) {
		return nil, fmt.Errorf("interp: CompileWatched: %d of %d watch labels are not fence instructions in the program", len(watch)-seen, len(watch))
	}
	c.entry = id[p.Entry]
	return c, nil
}

// Fingerprint returns a 64-bit FNV-1a fingerprint of the compiled
// program's entire executable content: entry point, globals (layout and
// initial values), and every instruction field that affects execution. Two
// programs with equal fingerprints execute identically for equal seeds
// (modulo hash collision); the execution cache uses it as the
// program-identity component of its keys.
func (c *Compiled) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	ws := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	ws(c.prog.Entry)
	for _, g := range c.prog.Globals {
		ws(g.Name)
		w64(uint64(g.Size))
		w64(uint64(g.Addr))
		for _, v := range g.Init {
			w64(uint64(v))
		}
	}
	for i := range c.funcs {
		f := &c.funcs[i]
		ws(f.name)
		w64(uint64(f.numRegs))
		if f.isOp {
			w64(1)
		} else {
			w64(0)
		}
		for j := range f.code {
			in := &f.code[j]
			w64(uint64(uint32(in.Label)))
			w64(uint64(in.Op)<<32 | uint64(uint8(in.Kind))<<8 | uint64(uint8(in.Bin)))
			w64(uint64(uint32(in.Dst))<<32 | uint64(uint32(in.A)))
			w64(uint64(uint32(in.B))<<32 | uint64(uint32(in.C)))
			w64(uint64(in.Imm))
			w64(uint64(uint32(in.Target))<<32 | uint64(uint32(in.Target2)))
			ws(in.Func)
			for _, a := range in.Args {
				w64(uint64(uint32(a)))
			}
			flags := uint64(0)
			if in.HasVal {
				flags |= 1
			}
			if in.ThreadLocal {
				flags |= 2
			}
			w64(flags)
		}
	}
	return h.Sum64()
}
