package interp

import (
	"testing"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// buildLB constructs the load-buffering litmus shape without dependencies:
//
//	t1: r1 = y; x = 1        t2: r2 = x; y = 1
//
// Under RMO both loads may defer past the subsequent stores, so r1 = r2 = 1
// is reachable; under PSO and stronger (loads read at issue) it is not.
// The racy registers are published through globals p1/p2 AFTER both
// accesses so the publication does not force early resolution.
func buildLB(t *testing.T, fence ir.FenceKind, withFence bool) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	for _, g := range []string{"x", "y", "p1", "p2"} {
		if err := p.AddGlobal(&ir.Global{Name: g, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(name, loadVar, storeVar, pubVar string) {
		b := ir.NewFuncBuilder(p, name, 0)
		la := b.GlobalAddr(loadVar)
		r, _ := b.Load(la, loadVar)
		if withFence {
			b.Fence(fence)
		}
		sa := b.GlobalAddr(storeVar)
		one := b.Const(1)
		b.Store(sa, one, storeVar)
		pa := b.GlobalAddr(pubVar)
		b.Store(pa, r, pubVar)
		b.Ret()
		finish(t, b)
	}
	mk("t1", "y", "x", "p1")
	mk("t2", "x", "y", "p2")

	mb := ir.NewFuncBuilder(p, "main", 0)
	h1 := mb.Fork("t1")
	h2 := mb.Fork("t2")
	mb.Join(h1)
	mb.Join(h2)
	p1 := mb.GlobalAddr("p1")
	v1, _ := mb.Load(p1, "p1")
	mb.Print(v1)
	p2 := mb.GlobalAddr("p2")
	v2, _ := mb.Load(p2, "p2")
	mb.Print(v2)
	mb.Ret()
	finish(t, mb)
	mustLink(t, p)
	return p
}

// TestRMOLoadDefersAndResolves drives the deferral machinery by hand on a
// single thread: a shared load issues without reading, the destination
// register materializes only at ResolveOne, and the value read is the
// memory content at resolve time (not issue time).
func TestRMOLoadDefersAndResolves(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	xa := b.GlobalAddr("x")
	v, _ := b.Load(xa, "x")
	b.Print(v)
	b.Ret()
	finish(t, b)
	mustLink(t, p)

	m := NewMachine(p, memmodel.RMO, nil)
	// Step to and through the load: it must defer, not read.
	stepUntil(t, m, 0, func() bool { return m.CanResolve(0) })
	if n := m.DeferredCount(0); n != 1 {
		t.Fatalf("DeferredCount = %d, want 1", n)
	}
	d := m.Thread(0).DeferredLoads()[0]
	if d.Addr != p.Global("x").Addr {
		t.Fatalf("deferred addr = %d, want x", d.Addr)
	}
	if got := m.MemRead(p.Global("x").Addr); got != 0 {
		t.Fatalf("x = %d before resolve", got)
	}
	// The print instruction uses the deferred dst, so stepping the thread
	// force-resolves rather than printing a stale register.
	k := m.StepThread(0)
	if k != StepResolve {
		t.Fatalf("step on use of deferred dst = %v, want StepResolve", k)
	}
	if m.CanResolve(0) {
		t.Fatal("queue not empty after forced resolve")
	}
	runAll(t, m, 1000)
	if m.Output()[0] != 0 {
		t.Fatalf("printed %d, want 0", m.Output()[0])
	}
}

// TestRMOLoadBuffering: the LB outcome r1 = r2 = 1 is reachable under RMO
// (deferred loads resolve after the other thread's store commits) and
// unreachable under PSO (loads read at issue).
func TestRMOLoadBuffering(t *testing.T) {
	p := buildLB(t, ir.FenceFull, false)

	// RMO: drive the witness schedule by hand. Fork both threads, issue
	// both loads (deferring), run both stores and let them commit, then
	// resolve both loads — each reads the other thread's store.
	m := NewMachine(p, memmodel.RMO, nil)
	stepUntil(t, m, 0, func() bool { return m.NumThreads() == 3 })
	stepUntil(t, m, 1, func() bool { return m.CanResolve(1) }) // t1 load y deferred
	stepUntil(t, m, 2, func() bool { return m.CanResolve(2) }) // t2 load x deferred
	// Run both threads until their first store is buffered, then flush.
	stepUntil(t, m, 1, func() bool { return m.CanFlush(1) })
	stepUntil(t, m, 2, func() bool { return m.CanFlush(2) })
	m.FlushOne(1, p.Global("x").Addr)
	m.FlushOne(2, p.Global("y").Addr)
	// Both stores committed; now resolve the deferred loads.
	if k := m.ResolveOne(1, 0); k != StepResolve {
		t.Fatalf("resolve t1 = %v", k)
	}
	if k := m.ResolveOne(2, 0); k != StepResolve {
		t.Fatalf("resolve t2 = %v", k)
	}
	runAll(t, m, 10000)
	if m.Violation() != nil {
		t.Fatalf("violation: %v", m.Violation())
	}
	out := m.Output()
	if out[0] != 1 || out[1] != 1 {
		t.Fatalf("RMO LB outcome = %v, want [1 1] (load buffering)", out)
	}
}

// TestRMOCoherenceForcedResolve: a second load of the same address cannot
// overtake a deferred first load (CoRR) — stepping into it resolves the
// first load before the second issues.
func TestRMOCoherenceForcedResolve(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	xa := b.GlobalAddr("x")
	v1, _ := b.Load(xa, "x")
	v2, _ := b.Load(xa, "x")
	b.Print(v1)
	b.Print(v2)
	b.Ret()
	finish(t, b)
	mustLink(t, p)

	m := NewMachine(p, memmodel.RMO, nil)
	stepUntil(t, m, 0, func() bool { return m.CanResolve(0) })
	if n := m.DeferredCount(0); n != 1 {
		t.Fatalf("DeferredCount = %d, want 1", n)
	}
	// Next instruction is the second load of x: same address forces the
	// first to resolve before the second can issue.
	if k := m.StepThread(0); k != StepResolve {
		t.Fatalf("second load of same addr stepped as %v, want StepResolve", k)
	}
	runAll(t, m, 1000)
}

// TestRMOStoreForwarding: a load of an address with a same-thread buffered
// store forwards at issue (no deferral) — the invariant that deferred
// loads never have a same-thread pending store to their address.
func TestRMOStoreForwarding(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	xa := b.GlobalAddr("x")
	c7 := b.Const(7)
	b.Store(xa, c7, "x")
	v, _ := b.Load(xa, "x")
	b.Print(v)
	b.Ret()
	finish(t, b)
	mustLink(t, p)

	m := NewMachine(p, memmodel.RMO, nil)
	stepUntil(t, m, 0, func() bool { return len(m.Output()) == 1 })
	if m.DeferredCount(0) != 0 {
		t.Error("load with buffered same-address store deferred instead of forwarding")
	}
	if m.Output()[0] != 7 {
		t.Errorf("forwarded %d, want 7", m.Output()[0])
	}
	runAll(t, m, 1000)
}

// TestRMOFenceKindsGate: load-ordering fence kinds force the queue empty
// before executing; store-only kinds do not.
func TestRMOFenceKindsGate(t *testing.T) {
	cases := []struct {
		kind     ir.FenceKind
		resolves bool
	}{
		{ir.FenceFull, true},
		{ir.FenceLoadLoad, true},
		{ir.FenceLoadStore, true},
		{ir.FenceAcquire, true},
		{ir.FenceRelease, true}, // release orders ld-st at runtime too
		{ir.FenceStoreStore, false},
		{ir.FenceStoreLoad, false},
	}
	for _, c := range cases {
		p := ir.NewProgram()
		if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
			t.Fatal(err)
		}
		if err := p.AddGlobal(&ir.Global{Name: "y", Size: 1}); err != nil {
			t.Fatal(err)
		}
		b := ir.NewFuncBuilder(p, "main", 0)
		xa := b.GlobalAddr("x")
		v, _ := b.Load(xa, "x")
		b.Fence(c.kind)
		ya := b.GlobalAddr("y")
		one := b.Const(1)
		b.Store(ya, one, "y")
		b.Print(v)
		b.Ret()
		finish(t, b)
		mustLink(t, p)

		m := NewMachine(p, memmodel.RMO, nil)
		stepUntil(t, m, 0, func() bool { return m.CanResolve(0) })
		// Step the fence: load-ordering kinds resolve first.
		k := m.StepThread(0)
		if c.resolves {
			if k != StepResolve {
				t.Errorf("%v: step = %v, want StepResolve", c.kind, k)
			}
			if m.CanResolve(0) {
				t.Errorf("%v: queue non-empty after forced resolve", c.kind)
			}
		} else {
			if k == StepResolve {
				t.Errorf("%v: store-only fence forced a resolve", c.kind)
			}
			if !m.CanResolve(0) {
				t.Errorf("%v: queue drained by store-only fence", c.kind)
			}
		}
		runAll(t, m, 1000)
	}
}

// TestLBFenceRepairs: with acquire fences between load and store in both
// threads, the r1 = r2 = 1 outcome becomes unreachable under RMO — resolve
// is forced before the store issues, restoring load-store order.
func TestRMOLBFenceRepairs(t *testing.T) {
	p := buildLB(t, ir.FenceAcquire, true)
	m := NewMachine(p, memmodel.RMO, nil)
	stepUntil(t, m, 0, func() bool { return m.NumThreads() == 3 })
	// Adversarial attempt: defer t1's load, then try to reach its store
	// without resolving. The acquire fence must block that path.
	stepUntil(t, m, 1, func() bool { return m.CanResolve(1) })
	k := m.StepThread(1) // fence: forces resolve
	if k != StepResolve {
		t.Fatalf("acquire fence step = %v, want StepResolve", k)
	}
	if m.CanResolve(1) {
		t.Fatal("queue non-empty after acquire fence resolve")
	}
	runAll(t, m, 10000)
	out := m.Output()
	if out[0] == 1 && out[1] == 1 {
		t.Fatalf("fenced LB still produced [1 1]")
	}
}
