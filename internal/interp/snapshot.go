// State fingerprinting for exhaustive-exploration clients. The brute-force
// interleaving enumerator (internal/proggen) replays choice prefixes on a
// pooled Machine and prunes any prefix that lands in a machine state it has
// already expanded; that needs a canonical byte encoding of *all* state
// that can influence either future transitions or the recorded outcome.
// The encoding lives here because frames, buffers, and the memory image
// are unexported.
package interp

import "encoding/binary"

// keyNoExclude is an address no store can have, so AppendPendingOther
// returns every pending entry (the same sentinel memmodel.Buffers.All
// uses).
const keyNoExclude = int64(-1) << 62

// AppendStateKey appends a canonical encoding of the machine's current
// state to dst and returns the extended slice. Two machines running the
// same Compiled program that produce equal keys are in indistinguishable
// states: every future schedule from one yields the same transitions,
// outputs, and violations as from the other. The key covers the memory
// image, live allocation units, accumulated output and history, the exit
// code, every thread's frame stack (function, pc, registers, return
// slot), every thread's store buffers in canonical drain order (with
// store-store barrier epochs), and every thread's deferred-load queue. It
// deliberately excludes the step counter and the watched-fence bitmask —
// neither affects future behavior, and including the former would defeat
// deduplication entirely (different-length paths reach equal states).
//
// The encoding is length-prefixed per section, so distinct states cannot
// collide. Keys are only comparable between machines executing the same
// *Compiled value (function indices are compile-order positions).
func (m *Machine) AppendStateKey(dst []byte) []byte {
	dst = append(dst, byte(m.model))
	if m.violated != nil {
		dst = append(dst, 1, byte(m.violated.Kind))
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendVarint(dst, m.exitCode)
	dst = binary.AppendUvarint(dst, uint64(len(m.mem)))
	for _, v := range m.mem {
		dst = binary.AppendVarint(dst, v)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.units.units)))
	for _, u := range m.units.units {
		dst = binary.AppendVarint(dst, u.base)
		dst = binary.AppendVarint(dst, u.size)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.output)))
	for _, v := range m.output {
		dst = binary.AppendVarint(dst, v)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.history)))
	for i := range m.history {
		e := &m.history[i]
		dst = append(dst, byte(e.Kind))
		dst = binary.AppendVarint(dst, int64(e.Thread))
		dst = binary.AppendUvarint(dst, uint64(len(e.Op)))
		dst = append(dst, e.Op...)
		dst = binary.AppendUvarint(dst, uint64(len(e.Args)))
		for _, a := range e.Args {
			dst = binary.AppendVarint(dst, a)
		}
		if e.HasRet {
			dst = append(dst, 1)
			dst = binary.AppendVarint(dst, e.Ret)
		} else {
			dst = append(dst, 0)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.threads)))
	for ti := range m.threads {
		t := &m.threads[ti]
		dst = binary.AppendVarint(dst, int64(t.opDepth))
		dst = binary.AppendUvarint(dst, uint64(len(t.frames)))
		for i := range t.frames {
			fr := &t.frames[i]
			dst = binary.AppendUvarint(dst, uint64(m.funcIndex(fr.fn)))
			dst = binary.AppendVarint(dst, int64(fr.pc))
			dst = binary.AppendVarint(dst, int64(fr.retDst))
			if fr.isOp {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
			regs := t.frameRegs(fr)
			dst = binary.AppendUvarint(dst, uint64(len(regs)))
			for _, r := range regs {
				dst = binary.AppendVarint(dst, r)
			}
		}
		// Buffers in canonical drain order (TSO: FIFO; per-address models:
		// per-address FIFOs grouped oldest-address-first) — the same order
		// flushes commit in, so equal encodings mean equal flush behavior.
		// Entry epochs are included: two buffers with equal content but a
		// store-store barrier between different entries flush differently.
		ents := t.buf.AppendPendingOther(m.entScratch[:0], keyNoExclude)
		m.entScratch = ents[:0]
		dst = binary.AppendUvarint(dst, uint64(len(ents)))
		for _, e := range ents {
			dst = binary.AppendVarint(dst, e.Addr)
			dst = binary.AppendVarint(dst, e.Val)
			dst = binary.AppendVarint(dst, int64(e.Label))
			dst = binary.AppendVarint(dst, int64(e.Epoch))
		}
		// Deferred loads in issue order: the queue determines which resolve
		// transitions exist and what they will write where.
		dst = binary.AppendUvarint(dst, uint64(len(t.defq)))
		for _, d := range t.defq {
			dst = binary.AppendVarint(dst, int64(d.Label))
			dst = binary.AppendVarint(dst, d.Addr)
			dst = binary.AppendVarint(dst, int64(d.Dst))
		}
	}
	return dst
}

// funcIndex resolves a frame's function back to its compile-order index.
// Linear scan: function counts are tiny and this runs off the execution
// hot path (only during state-key construction).
func (m *Machine) funcIndex(f *cfunc) int {
	for i := range m.c.funcs {
		if &m.c.funcs[i] == f {
			return i
		}
	}
	return -1
}
