package interp

import (
	"fmt"
	"strings"

	"dfence/internal/ir"
)

// EventKind distinguishes history events.
type EventKind uint8

const (
	// EventInvoke records entry to an operation (a function marked
	// IsOperation) with its argument values.
	EventInvoke EventKind = iota
	// EventResponse records the operation's return with its result.
	EventResponse
)

// Event is one entry of the observable history extracted from an
// execution: the sequence of calls and returns of specification-visible
// operations, in the global order they occurred (paper §5.2,
// Specifications). The SC and linearizability checkers consume these.
type Event struct {
	Kind   EventKind
	Thread int
	Op     string
	Args   []int64 // EventInvoke only
	Ret    int64   // EventResponse only
	HasRet bool
}

func (e Event) String() string {
	if e.Kind == EventInvoke {
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = fmt.Sprint(a)
		}
		return fmt.Sprintf("t%d: %s(%s)", e.Thread, e.Op, strings.Join(parts, ","))
	}
	if e.HasRet {
		return fmt.Sprintf("t%d: %s -> %d", e.Thread, e.Op, e.Ret)
	}
	return fmt.Sprintf("t%d: %s -> ()", e.Thread, e.Op)
}

// ViolationKind classifies why an execution is illegal.
type ViolationKind uint8

const (
	// VMemSafety is an out-of-bounds or dangling/null access (paper's
	// memory-safety specification: "array out of bounds and null
	// dereferencing").
	VMemSafety ViolationKind = iota
	// VAssert is a failed program assertion.
	VAssert
	// VDeadlock means no thread can make progress but the program has not
	// finished.
	VDeadlock
)

func (k ViolationKind) String() string {
	switch k {
	case VMemSafety:
		return "memory-safety"
	case VAssert:
		return "assertion"
	case VDeadlock:
		return "deadlock"
	}
	return fmt.Sprintf("violation(%d)", uint8(k))
}

// Violation describes the first illegal event of an execution.
type Violation struct {
	Kind   ViolationKind
	Thread int
	Label  ir.Label // instruction at fault (NoLabel for deadlock)
	Msg    string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("%s violation in thread %d at L%d: %s", v.Kind, v.Thread, v.Label, v.Msg)
}

// AccessKind classifies shared-memory accesses reported to an Observer.
type AccessKind uint8

const (
	AccLoad AccessKind = iota
	AccStore
	AccCas
)

func (k AccessKind) String() string {
	switch k {
	case AccLoad:
		return "load"
	case AccStore:
		return "store"
	case AccCas:
		return "cas"
	}
	return fmt.Sprintf("access(%d)", uint8(k))
}

// Observer receives shared-memory access notifications during execution.
// The fence synthesizer implements it to run the paper's instrumented
// semantics (Semantics 2) online: pendingOther carries the same-thread
// accesses to *other* addresses still in flight at the moment of this
// access — buffered stores first, then (under load-deferring models)
// deferred loads. These are the labels ly whose ordering before this
// access would repair the execution.
//
// pendingOther is scratch space reused across calls: it is valid only for
// the duration of the call, and implementations must copy anything they
// want to retain.
type Observer interface {
	OnSharedAccess(thread int, label ir.Label, kind AccessKind, addr int64, pendingOther []PendingStore)
}

// PendingStore identifies one in-flight access visible to the Observer: a
// buffered store, or — when IsLoad is set — a deferred load that has
// issued but not yet read memory. (The name predates deferred loads;
// "pending access" is the accurate reading.)
type PendingStore struct {
	Label  ir.Label
	Addr   int64
	IsLoad bool
}

// Result summarizes one complete execution.
type Result struct {
	// Violation is non-nil if the execution was illegal (memory safety,
	// assertion, deadlock). Specification violations (SC/linearizability)
	// are judged afterwards from History.
	Violation *Violation
	// History is the call/return sequence of operations.
	History []Event
	// Output collects values printed by the program.
	Output []int64
	// Steps is the number of transitions executed (instructions + flushes).
	Steps int
	// StepLimitHit reports that the execution was cut off by the step
	// budget; such executions are treated as inconclusive, not violating.
	StepLimitHit bool
	// TimedOut reports that the execution was cut off by a wall-clock
	// budget (sched.Options.Timeout) or a cancelled batch context before
	// completing. Like StepLimitHit, such executions are inconclusive.
	TimedOut bool
	// ExitCode is main's return value (0 if void or cut off).
	ExitCode int64
	// FenceTouched is a bitmask of the watched fences the execution
	// reached: bit i is set iff the fence labelled by the i-th entry of the
	// CompileWatched watch list executed. Always 0 when the program was
	// compiled without a watch list. The execution cache uses it to decide
	// which candidate fence sets could possibly change this execution.
	FenceTouched uint64
	// SchedIters counts scheduler-loop iterations: machine steps plus
	// iterations that deferred (made no step). Filled by the sched runner;
	// the basis for the deterministic sched.Options.MaxIters budget.
	SchedIters int
	// SchedSpins counts just the no-step deferral iterations — the spin
	// share a starving portfolio phase burns without progressing. Filled
	// by the sched runner; surfaced via trace portfolio aggregates.
	SchedSpins int
}
