package interp

import (
	"strings"
	"testing"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

func TestForkActsAsBarrier(t *testing.T) {
	// main stores to a global, then forks a reader; the child must see the
	// value even under PSO (pthread_create implies a full barrier).
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "g", Size: 1}); err != nil {
		t.Fatal(err)
	}
	r := ir.NewFuncBuilder(p, "reader", 0)
	ga := r.GlobalAddr("g")
	v, _ := r.Load(ga, "g")
	r.Print(v)
	r.Ret()
	finish(t, r)
	b := ir.NewFuncBuilder(p, "main", 0)
	ma := b.GlobalAddr("g")
	val := b.Const(77)
	b.Store(ma, val, "g")
	tid := b.Fork("reader")
	b.Join(tid)
	b.Ret()
	finish(t, b)
	mustLink(t, p)

	for seed := 0; seed < 30; seed++ {
		m := NewMachine(p, memmodel.PSO, nil)
		// Drive main: the store buffers, then the fork must force a flush.
		stepUntil(t, m, 0, func() bool { return m.NumThreads() == 2 })
		if got, _ := m.GlobalValue("g"); got != 77 {
			t.Fatalf("fork did not drain the parent's buffer: g = %d", got)
		}
		runAll(t, m, 10000)
		if m.Output()[0] != 77 {
			t.Fatalf("child read %d, want 77", m.Output()[0])
		}
	}
}

func TestThreadLocalAccessesBypassBuffers(t *testing.T) {
	// A store marked ThreadLocal writes memory immediately even under PSO
	// and is classified as a local step (POR candidate).
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "slot", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	ga := b.GlobalAddr("slot")
	v := b.Const(5)
	st := b.Store(ga, v, "slot")
	lv, ll := b.Load(ga, "slot")
	b.RetVal(lv)
	finish(t, b)
	mustLink(t, p)
	// Mark both accesses thread-local.
	p.InstrAt(st).ThreadLocal = true
	p.InstrAt(ll).ThreadLocal = true

	m := NewMachine(p, memmodel.PSO, nil)
	// The first four steps (&slot, const, store, load) are all local; the
	// trailing ret is a scheduling point by design and not checked.
	for i := 0; i < 4; i++ {
		if k := m.StepThread(0); k != StepLocal {
			t.Errorf("step %d = %v, want local", i, k)
		}
	}
	for !m.Done() {
		m.StepThread(0)
	}
	if m.ExitCode() != 5 {
		t.Errorf("exit = %d, want 5", m.ExitCode())
	}
	if !m.Thread(0).Buffers().Empty() {
		t.Error("thread-local store entered the buffer")
	}
}

func TestStepKindClassification(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "g", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	c := b.Const(1) // local
	ga := b.GlobalAddr("g")
	b.Store(ga, c, "g") // shared
	b.Ret()
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.PSO, nil)
	if k := m.StepThread(0); k != StepLocal {
		t.Errorf("const step = %v, want local", k)
	}
	if k := m.StepThread(0); k != StepLocal {
		t.Errorf("globaladdr step = %v, want local", k)
	}
	if k := m.StepThread(0); k != StepShared {
		t.Errorf("store step = %v, want shared", k)
	}
	if k := m.FlushOne(0, p.Global("g").Addr); k != StepFlush {
		t.Errorf("flush = %v", k)
	}
	if k := m.FlushOne(0, 0); k != StepBlocked {
		t.Errorf("flush on empty buffer = %v, want blocked", k)
	}
}

func TestEventAndViolationStrings(t *testing.T) {
	inv := Event{Kind: EventInvoke, Thread: 2, Op: "put", Args: []int64{4, 5}}
	if got := inv.String(); got != "t2: put(4,5)" {
		t.Errorf("invoke string = %q", got)
	}
	resp := Event{Kind: EventResponse, Thread: 1, Op: "take", Ret: 9, HasRet: true}
	if got := resp.String(); got != "t1: take -> 9" {
		t.Errorf("response string = %q", got)
	}
	void := Event{Kind: EventResponse, Thread: 1, Op: "put"}
	if got := void.String(); got != "t1: put -> ()" {
		t.Errorf("void response string = %q", got)
	}
	v := &Violation{Kind: VMemSafety, Thread: 3, Label: 7, Msg: "boom"}
	if !strings.Contains(v.Error(), "memory-safety") || !strings.Contains(v.Error(), "L7") {
		t.Errorf("violation string = %q", v.Error())
	}
	for _, k := range []ViolationKind{VMemSafety, VAssert, VDeadlock} {
		if strings.Contains(k.String(), "?") {
			t.Errorf("kind %d has no name", k)
		}
	}
	for _, k := range []AccessKind{AccLoad, AccStore, AccCas} {
		if strings.Contains(k.String(), "access(") {
			t.Errorf("access kind %d has no name", k)
		}
	}
}

func TestUnitTrackerDirect(t *testing.T) {
	var tr unitTracker
	tr.add(10, 5)
	tr.add(1, 2)
	tr.add(20, 1)
	for _, c := range []struct {
		addr int64
		want bool
	}{
		{1, true}, {2, true}, {3, false},
		{10, true}, {14, true}, {15, false},
		{20, true}, {21, false}, {0, false}, {9, false},
	} {
		if got := tr.contains(c.addr); got != c.want {
			t.Errorf("contains(%d) = %v, want %v", c.addr, got, c.want)
		}
	}
	if tr.sizeAt(10) != 5 || tr.sizeAt(11) != -1 {
		t.Error("sizeAt wrong")
	}
	if !tr.remove(10) {
		t.Error("remove(10) failed")
	}
	if tr.remove(10) {
		t.Error("double remove succeeded")
	}
	if tr.contains(12) {
		t.Error("removed unit still contained")
	}
	if tr.contains(1) != true || tr.contains(20) != true {
		t.Error("neighbors disturbed by removal")
	}
}

func TestJoinInvalidThreadIDNeverReady(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	bogus := b.Const(99)
	b.Join(bogus)
	b.Ret()
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.SC, nil)
	// Step to the join.
	m.StepThread(0)
	if m.CanExec(0) {
		t.Error("join on bogus tid reported ready")
	}
	if m.Actable(0) {
		t.Error("thread actable while joined on bogus tid (deadlock expected)")
	}
}

func TestCallReturnsValueToCorrectRegister(t *testing.T) {
	p := ir.NewProgram()
	fb := ir.NewFuncBuilder(p, "seven", 0)
	s := fb.Const(7)
	fb.RetVal(s)
	finish(t, fb)
	b := ir.NewFuncBuilder(p, "main", 0)
	ignore := b.Const(1)
	dst := b.NewReg()
	b.Call(dst, "seven")
	sum := b.BinOp(ir.BinAdd, dst, ignore)
	b.RetVal(sum)
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.SC, nil)
	runAll(t, m, 1000)
	if m.ExitCode() != 8 {
		t.Errorf("exit = %d, want 8", m.ExitCode())
	}
}

func TestVoidCallResultDropped(t *testing.T) {
	p := ir.NewProgram()
	fb := ir.NewFuncBuilder(p, "noop", 0)
	fb.Ret()
	finish(t, fb)
	b := ir.NewFuncBuilder(p, "main", 0)
	keep := b.Const(3)
	b.Call(ir.NoReg, "noop")
	b.RetVal(keep)
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.SC, nil)
	runAll(t, m, 1000)
	if m.ExitCode() != 3 {
		t.Errorf("exit = %d, want 3", m.ExitCode())
	}
}

func TestMemReadAndGlobalValue(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "g", Size: 2, Init: []int64{8, 9}}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	b.Ret()
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.SC, nil)
	if v, ok := m.GlobalValue("g"); !ok || v != 8 {
		t.Errorf("GlobalValue(g) = %d,%v", v, ok)
	}
	if _, ok := m.GlobalValue("missing"); ok {
		t.Error("missing global reported present")
	}
	if m.MemRead(p.Global("g").Addr+1) != 9 {
		t.Error("MemRead wrong")
	}
	if m.MemRead(-5) != 0 || m.MemRead(1<<40) != 0 {
		t.Error("out-of-range MemRead should be 0")
	}
}
