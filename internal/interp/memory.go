package interp

import "sort"

// unit is one tracked region of memory: a global variable or a live heap
// allocation. Accesses outside every live unit are memory-safety
// violations (paper §5.2: globals are found by scanning the global
// segment, heap units come from malloc/mmap and disappear on free).
type unit struct {
	base int64
	size int64
}

// unitTracker indexes live units by base address. The paper keeps units in
// a self-balanced binary tree keyed by starting address; a sorted slice
// with binary search is the equivalent structure (same O(log n) lookup,
// simpler in Go, and unit counts here are small).
type unitTracker struct {
	units []unit // sorted by base, non-overlapping
}

// add registers a new live unit. Units never overlap by construction (the
// heap is a bump allocator and globals are linked disjointly).
func (t *unitTracker) add(base, size int64) {
	i := sort.Search(len(t.units), func(i int) bool { return t.units[i].base >= base })
	t.units = append(t.units, unit{})
	copy(t.units[i+1:], t.units[i:])
	t.units[i] = unit{base: base, size: size}
}

// remove deletes the unit with exactly the given base. It reports whether
// such a unit existed (freeing a bad pointer is itself a violation).
func (t *unitTracker) remove(base int64) bool {
	i := sort.Search(len(t.units), func(i int) bool { return t.units[i].base >= base })
	if i >= len(t.units) || t.units[i].base != base {
		return false
	}
	t.units = append(t.units[:i], t.units[i+1:]...)
	return true
}

// contains reports whether addr falls inside a live unit.
func (t *unitTracker) contains(addr int64) bool {
	i := sort.Search(len(t.units), func(i int) bool { return t.units[i].base > addr })
	if i == 0 {
		return false
	}
	u := t.units[i-1]
	return addr < u.base+u.size
}

// sizeAt returns the size of the unit based exactly at addr, or -1.
func (t *unitTracker) sizeAt(base int64) int64 {
	i := sort.Search(len(t.units), func(i int) bool { return t.units[i].base >= base })
	if i < len(t.units) && t.units[i].base == base {
		return t.units[i].size
	}
	return -1
}
