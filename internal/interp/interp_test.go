package interp

import (
	"testing"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// runAll drives the machine to completion with a simple deterministic
// scheduler: repeatedly give each thread a step (executing or flushing)
// until done. Good enough for single-threaded and join-ordered tests.
func runAll(t *testing.T, m *Machine, maxSteps int) {
	t.Helper()
	for i := 0; i < maxSteps && !m.Done(); i++ {
		moved := false
		for tid := 0; tid < m.NumThreads(); tid++ {
			if m.CanExec(tid) {
				m.StepThread(tid)
				moved = true
				break
			}
			if m.CanResolve(tid) {
				m.ResolveOne(tid, 0)
				moved = true
				break
			}
			if m.CanFlush(tid) {
				fl := m.Thread(tid).Buffers().FlushableAddrs()
				m.FlushOne(tid, fl[0])
				moved = true
				break
			}
		}
		if !moved {
			t.Fatal("no thread can act but machine not done (deadlock)")
		}
	}
	if !m.Done() {
		t.Fatal("machine did not finish within step budget")
	}
}

// exec1 steps thread tid once and fails the test if it was blocked.
func exec1(t *testing.T, m *Machine, tid int) StepKind {
	t.Helper()
	k := m.StepThread(tid)
	if k == StepBlocked {
		t.Fatalf("thread %d blocked", tid)
	}
	return k
}

// stepUntil steps thread tid until pred holds (or the budget runs out).
func stepUntil(t *testing.T, m *Machine, tid int, pred func() bool) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if pred() {
			return
		}
		exec1(t, m, tid)
	}
	t.Fatal("stepUntil: predicate never held")
}

func mustLink(t *testing.T, p *ir.Program) {
	t.Helper()
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
}

func finish(t *testing.T, b *ir.FuncBuilder) {
	t.Helper()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
}

// --- sequential semantics ---

func TestFactorialRecursion(t *testing.T) {
	p := ir.NewProgram()
	// fact(n) = n<=1 ? 1 : n*fact(n-1)
	fb := ir.NewFuncBuilder(p, "fact", 1)
	n := fb.Param(0)
	one := fb.Const(1)
	cond := fb.BinOp(ir.BinLe, n, one)
	base, rec := fb.CondBrF(cond)
	rec.Here()
	nm1 := fb.BinOp(ir.BinSub, n, one)
	r := fb.NewReg()
	fb.Call(r, "fact", nm1)
	prod := fb.BinOp(ir.BinMul, n, r)
	fb.RetVal(prod)
	base.Here()
	fb.RetVal(one)
	finish(t, fb)

	mb := ir.NewFuncBuilder(p, "main", 0)
	five := mb.Const(5)
	res := mb.NewReg()
	mb.Call(res, "fact", five)
	mb.Print(res)
	mb.RetVal(res)
	finish(t, mb)
	mustLink(t, p)

	for _, model := range []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO} {
		m := NewMachine(p, model, nil)
		runAll(t, m, 10000)
		if m.ExitCode() != 120 {
			t.Errorf("%v: fact(5) = %d, want 120", model, m.ExitCode())
		}
		if len(m.Output()) != 1 || m.Output()[0] != 120 {
			t.Errorf("%v: output = %v, want [120]", model, m.Output())
		}
	}
}

func TestGlobalLoopSum(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "acc", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	addr := b.GlobalAddr("acc")
	i := b.Const(0)
	lim := b.Const(10)
	one := b.Const(1)
	head := b.NextLabel()
	c := b.BinOp(ir.BinLt, i, lim)
	body, exit := b.CondBrF(c)
	body.Here()
	v, _ := b.Load(addr, "acc")
	nv := b.BinOp(ir.BinAdd, v, i)
	b.Store(addr, nv, "acc")
	b.BinTo(i, ir.BinAdd, i, one)
	b.Br(head)
	exit.Here()
	fin, _ := b.Load(addr, "acc")
	b.RetVal(fin)
	finish(t, b)
	mustLink(t, p)

	for _, model := range []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO} {
		m := NewMachine(p, model, nil)
		runAll(t, m, 10000)
		if m.ExitCode() != 45 {
			t.Errorf("%v: sum = %d, want 45 (own buffered stores must be visible to own loads)", model, m.ExitCode())
		}
	}
}

func TestGlobalInitValues(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "tbl", Size: 3, Init: []int64{7, 8, 9}}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	base := b.GlobalAddr("tbl")
	two := b.Const(2)
	at := b.BinOp(ir.BinAdd, base, two)
	v, _ := b.Load(at, "tbl[2]")
	b.RetVal(v)
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.SC, nil)
	runAll(t, m, 1000)
	if m.ExitCode() != 9 {
		t.Errorf("tbl[2] = %d, want 9", m.ExitCode())
	}
}

// --- litmus: store buffering (SB) ---

// buildSB: t1: x=1; print(y)   t2: y=1; print(x)
func buildSB(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	for _, g := range []string{"x", "y"} {
		if err := p.AddGlobal(&ir.Global{Name: g, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(name, st, ld string) {
		b := ir.NewFuncBuilder(p, name, 0)
		sa := b.GlobalAddr(st)
		one := b.Const(1)
		b.Store(sa, one, st)
		la := b.GlobalAddr(ld)
		v, _ := b.Load(la, ld)
		b.Print(v)
		b.Ret()
		finish(t, b)
	}
	mk("w1", "x", "y")
	mk("w2", "y", "x")
	b := ir.NewFuncBuilder(p, "main", 0)
	t1 := b.Fork("w1")
	t2 := b.Fork("w2")
	b.Join(t1)
	b.Join(t2)
	b.Ret()
	finish(t, b)
	mustLink(t, p)
	return p
}

func TestLitmusSBRelaxed(t *testing.T) {
	// Under TSO and PSO, delaying both flushes lets both loads read 0 —
	// the classic non-SC outcome.
	for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
		p := buildSB(t)
		m := NewMachine(p, model, nil)
		stepUntil(t, m, 0, func() bool { return m.NumThreads() == 3 })
		// Run each worker to its print with no flushes in between.
		stepUntil(t, m, 1, func() bool { return len(m.Output()) == 1 })
		stepUntil(t, m, 2, func() bool { return len(m.Output()) == 2 })
		if m.Output()[0] != 0 || m.Output()[1] != 0 {
			t.Errorf("%v: outputs = %v, want [0 0] (both loads bypass buffered stores)", model, m.Output())
		}
		runAll(t, m, 10000)
		if v, _ := m.GlobalValue("x"); v != 1 {
			t.Errorf("%v: x = %d after drain, want 1", model, v)
		}
		if m.Violation() != nil {
			t.Errorf("%v: unexpected violation %v", model, m.Violation())
		}
	}
}

func TestLitmusSBSC(t *testing.T) {
	// Under SC the same schedule commits stores immediately: loads see 1.
	p := buildSB(t)
	m := NewMachine(p, memmodel.SC, nil)
	stepUntil(t, m, 0, func() bool { return m.NumThreads() == 3 })
	stepUntil(t, m, 1, func() bool { return len(m.Output()) == 1 })
	stepUntil(t, m, 2, func() bool { return len(m.Output()) == 2 })
	if m.Output()[0] != 0 {
		t.Errorf("SC: w1 printed %d, want 0 (y not yet stored)", m.Output()[0])
	}
	if m.Output()[1] != 1 {
		t.Errorf("SC: w2 printed %d, want 1 (x committed immediately under SC)", m.Output()[1])
	}
}

// --- litmus: message passing (MP) under PSO ---

// buildMP: t1: data=42; flag=1   t2: spin until flag; print(data)
func buildMP(t *testing.T, withFence bool) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	for _, g := range []string{"data", "flag"} {
		if err := p.AddGlobal(&ir.Global{Name: g, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	b := ir.NewFuncBuilder(p, "producer", 0)
	da := b.GlobalAddr("data")
	v := b.Const(42)
	b.Store(da, v, "data")
	if withFence {
		b.Fence(ir.FenceStoreStore)
	}
	fa := b.GlobalAddr("flag")
	one := b.Const(1)
	b.Store(fa, one, "flag")
	b.Ret()
	finish(t, b)

	c := ir.NewFuncBuilder(p, "consumer", 0)
	cfa := c.GlobalAddr("flag")
	head := c.NextLabel()
	fv, _ := c.Load(cfa, "flag")
	nz := c.Not(fv)
	spin, done := c.CondBrF(nz)
	spin.Here()
	c.Br(head)
	done.Here()
	cda := c.GlobalAddr("data")
	dv, _ := c.Load(cda, "data")
	c.Print(dv)
	c.Ret()
	finish(t, c)

	mb := ir.NewFuncBuilder(p, "main", 0)
	t1 := mb.Fork("producer")
	t2 := mb.Fork("consumer")
	mb.Join(t1)
	mb.Join(t2)
	mb.Ret()
	finish(t, mb)
	mustLink(t, p)
	return p
}

func TestLitmusMPPSOReordersStores(t *testing.T) {
	p := buildMP(t, false)
	m := NewMachine(p, memmodel.PSO, nil)
	stepUntil(t, m, 0, func() bool { return m.NumThreads() == 3 })
	// Producer buffers both stores.
	stepUntil(t, m, 1, func() bool { return m.Thread(1).Finished() })
	// Demonically flush flag *before* data (legal under PSO only).
	flagAddr := p.Global("flag").Addr
	if k := m.FlushOne(1, flagAddr); k != StepFlush {
		t.Fatalf("flush of flag failed: %v", k)
	}
	// Consumer sees flag=1 but data=0.
	stepUntil(t, m, 2, func() bool { return len(m.Output()) == 1 })
	if m.Output()[0] != 0 {
		t.Errorf("PSO: consumer read data = %d, want 0 (store-store reordering)", m.Output()[0])
	}
	runAll(t, m, 10000)
}

func TestLitmusMPTSOPreservesStoreOrder(t *testing.T) {
	p := buildMP(t, false)
	m := NewMachine(p, memmodel.TSO, nil)
	stepUntil(t, m, 0, func() bool { return m.NumThreads() == 3 })
	stepUntil(t, m, 1, func() bool { return m.Thread(1).Finished() })
	// Under TSO the FIFO forces data to flush first regardless of the hint.
	flagAddr := p.Global("flag").Addr
	m.FlushOne(1, flagAddr)
	if v, _ := m.GlobalValue("data"); v != 42 {
		t.Errorf("TSO: first flush committed flag before data; data = %d", v)
	}
	if v, _ := m.GlobalValue("flag"); v != 0 {
		t.Error("TSO: flag committed before data")
	}
	runAll(t, m, 10000)
	if m.Output()[0] != 42 {
		t.Errorf("TSO: consumer read %d, want 42", m.Output()[0])
	}
}

func TestLitmusMPPSOWithFence(t *testing.T) {
	p := buildMP(t, true)
	m := NewMachine(p, memmodel.PSO, nil)
	stepUntil(t, m, 0, func() bool { return m.NumThreads() == 3 })
	// Run producer to completion. fence(st-st) is an epoch barrier, not a
	// drain: both stores may still be buffered afterwards, but flag can no
	// longer commit before data.
	stepUntil(t, m, 1, func() bool { return m.Thread(1).Finished() })
	dataAddr := p.Global("data").Addr
	flagAddr := p.Global("flag").Addr
	if !m.Thread(1).Buffers().EmptyFor(flagAddr) {
		if k := m.FlushOne(1, flagAddr); k != StepBlocked {
			t.Error("flag flushed across the store-store barrier")
		}
		if fl := m.Thread(1).Buffers().FlushableAddrs(); len(fl) != 1 || fl[0] != dataAddr {
			t.Errorf("flushable = %v, want data only", fl)
		}
		m.FlushOne(1, dataAddr)
	}
	if v, _ := m.GlobalValue("data"); v != 42 {
		t.Errorf("data not committed after draining its buffer: %d", v)
	}
	if v, _ := m.GlobalValue("flag"); v != 0 {
		t.Error("flag committed before data despite the barrier")
	}
	m.FlushOne(1, flagAddr)
	stepUntil(t, m, 2, func() bool { return len(m.Output()) == 1 })
	if m.Output()[0] != 42 {
		t.Errorf("PSO+fence: consumer read %d, want 42", m.Output()[0])
	}
	runAll(t, m, 10000)
}

// --- CAS and fence forcing ---

func TestCasForcesFlush(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	xa := b.GlobalAddr("x")
	one := b.Const(1)
	two := b.Const(2)
	b.Store(xa, one, "x")
	ok, _ := b.Cas(xa, one, two, "cas x 1->2")
	b.RetVal(ok)
	finish(t, b)
	mustLink(t, p)

	for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
		m := NewMachine(p, model, nil)
		// Step until the CAS is next; the store is buffered.
		stepUntil(t, m, 0, func() bool { return m.Thread(0).Buffers().Len() == 1 })
		// Next step must be a forced flush, not the CAS.
		if k := exec1(t, m, 0); k != StepFlush {
			t.Fatalf("%v: step with pending buffer before CAS = %v, want StepFlush", model, k)
		}
		if v, _ := m.GlobalValue("x"); v != 1 {
			t.Fatalf("%v: flush did not commit store", model)
		}
		runAll(t, m, 1000)
		if m.ExitCode() != 1 {
			t.Errorf("%v: CAS failed; exit = %d, want 1", model, m.ExitCode())
		}
		if v, _ := m.GlobalValue("x"); v != 2 {
			t.Errorf("%v: x = %d, want 2", model, v)
		}
	}
}

func TestCasFailureLeavesMemory(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1, Init: []int64{5}}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	xa := b.GlobalAddr("x")
	one := b.Const(1)
	two := b.Const(2)
	ok, _ := b.Cas(xa, one, two, "cas should fail")
	b.RetVal(ok)
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.TSO, nil)
	runAll(t, m, 1000)
	if m.ExitCode() != 0 {
		t.Errorf("CAS succeeded unexpectedly")
	}
	if v, _ := m.GlobalValue("x"); v != 5 {
		t.Errorf("x = %d, want 5", v)
	}
}

// --- memory safety ---

func buildOOB(t *testing.T, offset int64) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "arr", Size: 4}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	base := b.GlobalAddr("arr")
	off := b.Const(offset)
	at := b.BinOp(ir.BinAdd, base, off)
	v, _ := b.Load(at, "arr[off]")
	b.RetVal(v)
	finish(t, b)
	mustLink(t, p)
	return p
}

func TestMemSafetyLoadInBounds(t *testing.T) {
	m := NewMachine(buildOOB(t, 3), memmodel.SC, nil)
	runAll(t, m, 1000)
	if m.Violation() != nil {
		t.Errorf("in-bounds load flagged: %v", m.Violation())
	}
}

func TestMemSafetyLoadOutOfBounds(t *testing.T) {
	m := NewMachine(buildOOB(t, 4), memmodel.SC, nil)
	for i := 0; i < 100 && !m.Done(); i++ {
		m.StepThread(0)
	}
	v := m.Violation()
	if v == nil || v.Kind != VMemSafety {
		t.Fatalf("out-of-bounds load not caught: %v", v)
	}
}

func TestMemSafetyNullDeref(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	z := b.Const(0)
	v, _ := b.Load(z, "*NULL")
	b.RetVal(v)
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.SC, nil)
	for i := 0; i < 100 && !m.Done(); i++ {
		m.StepThread(0)
	}
	v2 := m.Violation()
	if v2 == nil || v2.Kind != VMemSafety {
		t.Fatalf("null deref not caught: %v", v2)
	}
}

func TestUseAfterFreeCaughtAtFlush(t *testing.T) {
	// Store to heap memory, free it before the buffer flushes: the flush
	// must fault (the paper: free does not flush write buffers).
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	sz := b.Const(2)
	ptr := b.Alloc(sz)
	val := b.Const(99)
	b.Store(ptr, val, "*p")
	b.Free(ptr)
	b.Ret()
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.PSO, nil)
	// Execute everything without flushing.
	stepUntil(t, m, 0, func() bool { return m.Thread(0).Finished() })
	if m.Violation() != nil {
		t.Fatalf("premature violation: %v", m.Violation())
	}
	// Now drain: the pending store hits freed memory.
	pend := m.Thread(0).Buffers().PendingAddrs()
	if len(pend) == 0 {
		t.Fatal("store was not buffered")
	}
	m.FlushOne(0, pend[0])
	v := m.Violation()
	if v == nil || v.Kind != VMemSafety {
		t.Fatalf("use-after-free at flush not caught: %v", v)
	}
}

func TestDoubleFreeCaught(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	sz := b.Const(1)
	ptr := b.Alloc(sz)
	b.Free(ptr)
	b.Free(ptr)
	b.Ret()
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.SC, nil)
	for i := 0; i < 100 && !m.Done(); i++ {
		m.StepThread(0)
	}
	v := m.Violation()
	if v == nil || v.Kind != VMemSafety {
		t.Fatalf("double free not caught: %v", v)
	}
}

func TestAllocGuardGapCatchesOverflow(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	sz := b.Const(2)
	ptr := b.Alloc(sz)
	two := b.Const(2)
	past := b.BinOp(ir.BinAdd, ptr, two)
	v := b.Const(1)
	b.Store(past, v, "p[2] overflow")
	b.Ret()
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.SC, nil)
	for i := 0; i < 100 && !m.Done(); i++ {
		m.StepThread(0)
	}
	viol := m.Violation()
	if viol == nil || viol.Kind != VMemSafety {
		t.Fatalf("one-past-end heap store not caught: %v", viol)
	}
}

// --- assertions, history, fork/join ---

func TestAssertFailure(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	z := b.Const(0)
	b.Assert(z, "must not be zero")
	b.Ret()
	finish(t, b)
	mustLink(t, p)
	m := NewMachine(p, memmodel.SC, nil)
	for i := 0; i < 100 && !m.Done(); i++ {
		m.StepThread(0)
	}
	v := m.Violation()
	if v == nil || v.Kind != VAssert || v.Msg != "must not be zero" {
		t.Fatalf("assert not reported: %v", v)
	}
}

func TestHistoryRecording(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "q", Size: 1}); err != nil {
		t.Fatal(err)
	}
	// operation put(v) stores v; operation take() returns it.
	pb := ir.NewFuncBuilder(p, "put", 1).MarkOperation()
	qa := pb.GlobalAddr("q")
	pb.Store(qa, pb.Param(0), "q")
	pb.Ret()
	finish(t, pb)
	tb := ir.NewFuncBuilder(p, "take", 0).MarkOperation()
	ta := tb.GlobalAddr("q")
	v, _ := tb.Load(ta, "q")
	tb.RetVal(v)
	finish(t, tb)

	mb := ir.NewFuncBuilder(p, "main", 0)
	arg := mb.Const(7)
	mb.Call(ir.NoReg, "put", arg)
	got := mb.NewReg()
	mb.Call(got, "take")
	mb.RetVal(got)
	finish(t, mb)
	mustLink(t, p)

	m := NewMachine(p, memmodel.TSO, nil)
	runAll(t, m, 10000)
	h := m.History()
	if len(h) != 4 {
		t.Fatalf("history has %d events, want 4: %v", len(h), h)
	}
	want := []struct {
		kind EventKind
		op   string
	}{
		{EventInvoke, "put"}, {EventResponse, "put"},
		{EventInvoke, "take"}, {EventResponse, "take"},
	}
	for i, w := range want {
		if h[i].Kind != w.kind || h[i].Op != w.op {
			t.Errorf("event %d = %v, want %v %s", i, h[i], w.kind, w.op)
		}
	}
	if h[0].Args[0] != 7 {
		t.Errorf("put invoke args = %v, want [7]", h[0].Args)
	}
	if !h[3].HasRet || h[3].Ret != 7 {
		t.Errorf("take response = %v, want 7", h[3])
	}
	if m.ExitCode() != 7 {
		t.Errorf("exit = %d, want 7", m.ExitCode())
	}
}

func TestNestedOperationRecordedOnce(t *testing.T) {
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "g", Size: 1}); err != nil {
		t.Fatal(err)
	}
	inner := ir.NewFuncBuilder(p, "inner", 0).MarkOperation()
	ga := inner.GlobalAddr("g")
	one := inner.Const(1)
	inner.Store(ga, one, "g")
	inner.Ret()
	finish(t, inner)
	outer := ir.NewFuncBuilder(p, "outer", 0).MarkOperation()
	outer.Call(ir.NoReg, "inner")
	outer.Ret()
	finish(t, outer)
	mb := ir.NewFuncBuilder(p, "main", 0)
	mb.Call(ir.NoReg, "outer")
	mb.Ret()
	finish(t, mb)
	mustLink(t, p)
	m := NewMachine(p, memmodel.SC, nil)
	runAll(t, m, 1000)
	h := m.History()
	if len(h) != 2 || h[0].Op != "outer" || h[1].Op != "outer" {
		t.Fatalf("nested operation leaked into history: %v", h)
	}
}

func TestForkJoinCounter(t *testing.T) {
	// Two workers each CAS-increment a counter 5 times; join; read 10.
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "ctr", Size: 1}); err != nil {
		t.Fatal(err)
	}
	w := ir.NewFuncBuilder(p, "worker", 0)
	ca := w.GlobalAddr("ctr")
	i := w.Const(0)
	five := w.Const(5)
	one := w.Const(1)
	head := w.NextLabel()
	c := w.BinOp(ir.BinLt, i, five)
	body, exit := w.CondBrF(c)
	body.Here()
	retry := w.NextLabel()
	cur, _ := w.Load(ca, "ctr")
	next := w.BinOp(ir.BinAdd, cur, one)
	ok, _ := w.Cas(ca, cur, next, "inc")
	bad := w.Not(ok)
	again, done := w.CondBrF(bad)
	again.Here()
	w.Br(retry)
	done.Here()
	w.BinTo(i, ir.BinAdd, i, one)
	w.Br(head)
	exit.Here()
	w.Ret()
	finish(t, w)

	mb := ir.NewFuncBuilder(p, "main", 0)
	t1 := mb.Fork("worker")
	t2 := mb.Fork("worker")
	mb.Join(t1)
	mb.Join(t2)
	ra := mb.GlobalAddr("ctr")
	v, _ := mb.Load(ra, "ctr")
	mb.RetVal(v)
	finish(t, mb)
	mustLink(t, p)

	for _, model := range []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO} {
		m := NewMachine(p, model, nil)
		runAll(t, m, 100000)
		if m.ExitCode() != 10 {
			t.Errorf("%v: counter = %d, want 10", model, m.ExitCode())
		}
	}
}

func TestJoinWaitsForBufferDrain(t *testing.T) {
	// Worker stores and returns without a fence; join must not complete
	// until the worker's buffer drains (JOIN rule: ∀x.B(u,x)=ε).
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	w := ir.NewFuncBuilder(p, "worker", 0)
	xa := w.GlobalAddr("x")
	one := w.Const(1)
	w.Store(xa, one, "x")
	w.Ret()
	finish(t, w)
	mb := ir.NewFuncBuilder(p, "main", 0)
	tid := mb.Fork("worker")
	mb.Join(tid)
	ra := mb.GlobalAddr("x")
	v, _ := mb.Load(ra, "x")
	mb.RetVal(v)
	finish(t, mb)
	mustLink(t, p)

	m := NewMachine(p, memmodel.PSO, nil)
	stepUntil(t, m, 0, func() bool { return m.NumThreads() == 2 })
	stepUntil(t, m, 1, func() bool { return m.Thread(1).Finished() })
	// Worker finished but buffer pending: main must be blocked on join.
	if m.CanExec(0) {
		t.Fatal("join proceeded before the target's buffers drained")
	}
	// Finished thread still flushes via StepThread.
	if k := m.StepThread(1); k != StepFlush {
		t.Fatalf("finished thread step = %v, want flush", k)
	}
	if !m.CanExec(0) {
		t.Fatal("join not ready after drain")
	}
	runAll(t, m, 1000)
	if m.ExitCode() != 1 {
		t.Errorf("main read x = %d, want 1 after join", m.ExitCode())
	}
}

func TestSelf(t *testing.T) {
	p := ir.NewProgram()
	w := ir.NewFuncBuilder(p, "worker", 0)
	id := w.Self()
	w.Print(id)
	w.Ret()
	finish(t, w)
	mb := ir.NewFuncBuilder(p, "main", 0)
	mid := mb.Self()
	mb.Print(mid)
	t1 := mb.Fork("worker")
	mb.Join(t1)
	mb.Ret()
	finish(t, mb)
	mustLink(t, p)
	m := NewMachine(p, memmodel.SC, nil)
	runAll(t, m, 1000)
	out := m.Output()
	if len(out) != 2 || out[0] != 0 || out[1] != 1 {
		t.Errorf("self outputs = %v, want [0 1]", out)
	}
}

// --- observer ---

type recordingObserver struct {
	calls []struct {
		label ir.Label
		kind  AccessKind
		addr  int64
		pend  []PendingStore
	}
}

func (r *recordingObserver) OnSharedAccess(thread int, label ir.Label, kind AccessKind, addr int64, pend []PendingStore) {
	// The pend slice is scratch space reused across calls (see Observer);
	// copy it before retaining.
	r.calls = append(r.calls, struct {
		label ir.Label
		kind  AccessKind
		addr  int64
		pend  []PendingStore
	}{label, kind, addr, append([]PendingStore(nil), pend...)})
}

func TestObserverSeesPendingOther(t *testing.T) {
	// store x; store y; load x  — at the store to y, x is pending; at the
	// load of x, y (and x) are pending but only *other* addresses are
	// reported, so the load reports y's store.
	p := ir.NewProgram()
	for _, g := range []string{"x", "y"} {
		if err := p.AddGlobal(&ir.Global{Name: g, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	xa := b.GlobalAddr("x")
	ya := b.GlobalAddr("y")
	one := b.Const(1)
	sx := b.Store(xa, one, "x")
	sy := b.Store(ya, one, "y")
	v, _ := b.Load(xa, "x")
	b.RetVal(v)
	finish(t, b)
	mustLink(t, p)

	obs := &recordingObserver{}
	m := NewMachine(p, memmodel.PSO, obs)
	stepUntil(t, m, 0, func() bool { return m.Thread(0).Finished() })
	// Expect: store-x with no pending (skipped), store-y with pending x,
	// load-x with pending y.
	if len(obs.calls) != 2 {
		t.Fatalf("observer calls = %d, want 2: %+v", len(obs.calls), obs.calls)
	}
	c0 := obs.calls[0]
	if c0.kind != AccStore || len(c0.pend) != 1 || c0.pend[0].Label != sx {
		t.Errorf("store-y observation wrong: %+v (want pending store L%d)", c0, sx)
	}
	c1 := obs.calls[1]
	if c1.kind != AccLoad || len(c1.pend) != 1 || c1.pend[0].Label != sy {
		t.Errorf("load-x observation wrong: %+v (want pending store L%d)", c1, sy)
	}
	runAll(t, m, 1000)
}

func TestObserverSilentUnderSC(t *testing.T) {
	p := buildSB(t)
	obs := &recordingObserver{}
	m := NewMachine(p, memmodel.SC, obs)
	runAll(t, m, 10000)
	if len(obs.calls) != 0 {
		t.Errorf("observer called %d times under SC, want 0", len(obs.calls))
	}
}
