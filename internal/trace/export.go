// Chrome trace-event JSON export: the Tracer's snapshot serialized in
// the object form Perfetto (and chrome://tracing) load directly —
// `{"traceEvents": [...], "otherData": {...}}`. Spans become "X"
// (complete) events with ts/dur in microseconds, instants become "i"
// events, and per-lane "M" metadata events name the coordinator and
// worker threads. Viewers ignore otherData, which is where the *exact*
// per-lane portfolio aggregates, the sampling configuration, and the
// ring-drop counts live — the numbers the terminal summarizer trusts,
// unaffected by span sampling or ring overflow.
package trace

import (
	"encoding/json"
	"io"
	"os"
)

// formatVersion identifies this exporter's layout; Read rejects other
// values so `dfence trace` never mis-summarizes a drifted file.
const formatVersion = 1

// Data is the on-disk trace: what WriteJSON emits and Read decodes.
type Data struct {
	TraceEvents []Event   `json:"traceEvents"`
	Other       OtherData `json:"otherData"`
}

// Event is one trace-event record. Ph is "M" (metadata), "X" (complete
// span, Ts/Dur in microseconds), or "i" (instant).
type Event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"` // instant scope ("t" = thread)
	Args *Args   `json:"args,omitempty"`
}

// Args carries the per-event payload (all fields optional).
type Args struct {
	Name      string `json:"name,omitempty"` // metadata payload
	Round     int    `json:"round,omitempty"`
	Portfolio int    `json:"portfolio,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Iters     int64  `json:"iters,omitempty"`
	Steps     int64  `json:"steps,omitempty"`
	Spins     int64  `json:"spins,omitempty"`
	Count     int64  `json:"count,omitempty"`
}

// OtherData is the exact side-channel viewers ignore.
type OtherData struct {
	Tool        string     `json:"tool"` // always "dfence-trace"
	Format      int        `json:"format"`
	DurationUS  float64    `json:"duration_us"` // epoch → snapshot
	SampleEvery int        `json:"sample_every"`
	RingSize    int        `json:"ring_size"`
	Lanes       []LaneInfo `json:"lanes"`
}

// LaneInfo is one lane's exact accounting.
type LaneInfo struct {
	Lane      int        `json:"lane"`
	Label     string     `json:"label"`
	Dropped   int64      `json:"dropped,omitempty"`
	Portfolio []PhaseAgg `json:"portfolio,omitempty"`
}

// laneLabel names a lane for thread metadata and summaries.
func laneLabel(i int) string {
	if i == 0 {
		return "coordinator"
	}
	return "worker " + itoa(i-1)
}

// itoa avoids strconv for the two-digit lane labels (keeps the import
// set minimal; lanes are small).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 && i > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

const us = 1e3 // ns per µs, as a float divisor

// Snapshot freezes the tracer's current contents into the exportable
// Data form. Safe during a live run (each lane is copied under its
// lock); nil-safe (returns an empty Data).
func (t *Tracer) Snapshot() *Data {
	d := &Data{Other: OtherData{Tool: "dfence-trace", Format: formatVersion}}
	if t == nil {
		return d
	}
	d.Other.DurationUS = float64(t.now()) / us
	d.Other.SampleEvery = t.opts.SampleEvery
	d.Other.RingSize = t.opts.RingSize
	d.TraceEvents = append(d.TraceEvents, Event{
		Name: "process_name", Ph: "M", Pid: 1, Args: &Args{Name: "dfence"},
	})
	for li, ln := range t.lanes {
		info := LaneInfo{Lane: li, Label: laneLabel(li)}
		d.TraceEvents = append(d.TraceEvents, Event{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: li, Args: &Args{Name: info.Label},
		})
		ln.mu.Lock()
		info.Dropped = ln.dropped
		for p := range ln.agg {
			if ln.agg[p].Execs > 0 {
				a := ln.agg[p]
				a.Phase = p
				info.Portfolio = append(info.Portfolio, a)
			}
		}
		events := make([]event, ln.n)
		for k := 0; k < ln.n; k++ {
			events[k] = ln.ring[(ln.head+k)%len(ln.ring)]
		}
		ln.mu.Unlock()
		for _, ev := range events {
			d.TraceEvents = append(d.TraceEvents, jsonEvent(ev, li))
		}
		d.Other.Lanes = append(d.Other.Lanes, info)
	}
	return d
}

// jsonEvent converts one ring entry for lane li.
func jsonEvent(ev event, li int) Event {
	out := Event{Name: ev.name.String(), Pid: 1, Tid: li, Ts: float64(ev.start) / us}
	var args Args
	used := false
	if ev.round != 0 {
		args.Round = int(ev.round)
		used = true
	}
	if ev.dur < 0 {
		out.Ph = "i"
		out.S = "t"
		if ev.arg != 0 {
			args.Count = ev.arg
			used = true
		}
	} else {
		out.Ph = "X"
		out.Dur = float64(ev.dur) / us
		if ev.name == SpanExec {
			args.Portfolio = int(ev.phase)
			args.Seed = ev.arg
			args.Iters, args.Steps, args.Spins = ev.iters, ev.steps, ev.spins
			used = true
		}
	}
	if used {
		out.Args = &args
	}
	return out
}

// WriteJSON writes the tracer's snapshot as Chrome trace-event JSON.
// Nil-safe (writes an empty, valid trace).
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.Snapshot())
}

// WriteJSONFile writes the snapshot to path (created or truncated).
func (t *Tracer) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = t.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Summary renders the live terminal summary of the tracer's current
// contents — what /tracez serves mid-run. Nil-safe.
func (t *Tracer) Summary() string {
	return Summarize(t.Snapshot())
}
