// Package trace is dfence's hierarchical span tracer: a timeline
// recorder for the synthesis pipeline (service job → run → round →
// phase {collect, solve, validate, minimize} → per-worker execution
// lanes) with instant events for violations, checkpoints, cache hits,
// and solver restarts. It exports Chrome trace-event JSON viewable in
// Perfetto (export.go), re-reads its own files strictly (read.go), and
// renders a terminal summary (summary.go) — the artifact that answers
// "where did this run spend its time" without a rerun.
//
// Like internal/telemetry, the tracer is provably inert when absent:
// every method tolerates a nil *Tracer (and the zero Span), costs one
// branch, and allocates nothing — the disabled hot path is bit-identical
// and allocation-free, which TestDisabledTracerZeroAlloc and core's
// TestTracingDisabledIdentical pin. When enabled it is bounded: span
// events land in fixed-size per-lane ring buffers (oldest overwritten,
// drops counted), and per-execution spans are sampled 1-in-SampleEvery —
// while per-portfolio-phase aggregates (executions, wall, scheduler
// iterations, machine steps, deferral spins) are exact, updated on every
// execution regardless of sampling. Long service jobs therefore trace in
// O(ring), not O(executions).
package trace

import (
	"runtime"
	"sync"
	"time"
)

// Name identifies a span or instant kind — the closed vocabulary the
// strict reader validates against.
type Name uint8

const (
	nameNone Name = iota
	// SpanJob wraps one service job attempt (dfenced).
	SpanJob
	// SpanRun wraps one core.Synthesize call.
	SpanRun
	// SpanRound wraps one repair round.
	SpanRound
	// SpanCollect is a round's execution batch plus formula merge.
	SpanCollect
	// SpanSolve is a round's minimal-model enumeration.
	SpanSolve
	// SpanValidate is the post-convergence fence validation pass.
	SpanValidate
	// SpanMinimize is the post-convergence fence merge pass.
	SpanMinimize
	// SpanExec is one sampled execution on a worker lane.
	SpanExec
	// InstantViolation marks a violating execution (worker lane).
	InstantViolation
	// InstantCheckpoint marks a journaled round boundary.
	InstantCheckpoint
	// InstantCacheHit marks a sampled execution-cache verdict hit.
	InstantCacheHit
	// InstantSolverRestarts marks a solve whose CDCL search restarted;
	// the event's count carries how many times.
	InstantSolverRestarts
	nameCount
)

var nameStrings = [nameCount]string{
	nameNone:              "none",
	SpanJob:               "job",
	SpanRun:               "run",
	SpanRound:             "round",
	SpanCollect:           "collect",
	SpanSolve:             "solve",
	SpanValidate:          "validate",
	SpanMinimize:          "minimize",
	SpanExec:              "exec",
	InstantViolation:      "violation",
	InstantCheckpoint:     "checkpoint",
	InstantCacheHit:       "cache-hit",
	InstantSolverRestarts: "solver-restarts",
}

func (n Name) String() string {
	if int(n) < len(nameStrings) {
		return nameStrings[n]
	}
	return "name(?)"
}

// nameOf inverts Name.String — the strict reader's vocabulary check.
func nameOf(s string) (Name, bool) {
	for n := SpanJob; n < nameCount; n++ {
		if nameStrings[n] == s {
			return n, true
		}
	}
	return nameNone, false
}

// maxPortfolio bounds the per-lane portfolio-phase aggregate array; the
// scheduler portfolio cycles through at most 6 phases today (see
// core.portfolioPhases), with headroom for growth.
const maxPortfolio = 8

// Options configures a Tracer.
type Options struct {
	// Lanes is the number of worker lanes (the coordinator lane 0 is
	// always added on top). <= 0 selects runtime.NumCPU().
	Lanes int
	// RingSize is the per-lane event ring capacity; once full, the
	// oldest events are overwritten and counted as dropped. <= 0 selects
	// 4096.
	RingSize int
	// SampleEvery records one execution span per this many executions on
	// each lane (aggregates are always exact). <= 0 selects 8; 1 records
	// every execution.
	SampleEvery int
}

// event is one ring entry. dur < 0 marks an instant.
type event struct {
	start, dur          int64 // ns since the tracer epoch
	arg                 int64 // seed (exec spans) or count (instants)
	iters, steps, spins int64 // exec spans only
	round               int32 // 1-based; 0 = outside any round
	name                Name
	phase               uint8 // portfolio phase (exec spans only)
}

// PhaseAgg is the exact per-portfolio-phase execution aggregate one lane
// maintains: every execution lands here whether or not its span was
// sampled into the ring.
type PhaseAgg struct {
	Phase  int   `json:"phase"`
	Execs  int64 `json:"execs"`
	WallNS int64 `json:"wall_ns"`
	Iters  int64 `json:"iters"`
	Steps  int64 `json:"steps"`
	Spins  int64 `json:"spins"`
}

// lane is one ring buffer plus its aggregates. The mutex makes live
// snapshots (/tracez) safe against concurrent worker writes; workers
// never contend with each other — each lane is written by exactly one
// goroutine (the worker-ownership invariant of sched/batch.go).
type lane struct {
	mu       sync.Mutex
	ring     []event
	head     int // next write position
	n        int // occupied entries (<= len(ring))
	dropped  int64
	sampleCt int // executions since the last sampled span
	instCt   int // sampled-instant counter (cache hits)
	agg      [maxPortfolio]PhaseAgg
	_        [32]byte // pad lanes apart; workers write adjacent entries
}

// push appends one event, overwriting the oldest when full.
func (ln *lane) push(ev event) {
	if ln.n < len(ln.ring) {
		ln.ring[(ln.head+ln.n)%len(ln.ring)] = ev
		ln.n++
		return
	}
	ln.ring[ln.head] = ev
	ln.head = (ln.head + 1) % len(ln.ring)
	ln.dropped++
}

// Tracer records spans and instants into per-lane rings. Lane 0 is the
// coordinator (run/round/phase spans and cold instants); lanes 1..Lanes
// are worker execution lanes. All methods are safe on a nil receiver
// (no-ops) and safe for concurrent use.
type Tracer struct {
	opts  Options
	epoch time.Time
	lanes []*lane
}

// New creates a Tracer with opts' defaults filled.
func New(opts Options) *Tracer {
	if opts.Lanes <= 0 {
		opts.Lanes = runtime.NumCPU()
	}
	if opts.RingSize <= 0 {
		opts.RingSize = 4096
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 8
	}
	t := &Tracer{opts: opts, epoch: time.Now(), lanes: make([]*lane, opts.Lanes+1)}
	for i := range t.lanes {
		t.lanes[i] = &lane{ring: make([]event, opts.RingSize)}
	}
	return t
}

func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// laneAt clamps an out-of-range lane index onto the last lane, so a
// batch run with more workers than configured lanes degrades to shared
// attribution instead of a panic.
func (t *Tracer) laneAt(i int) *lane {
	if i < 0 {
		i = 0
	}
	if i >= len(t.lanes) {
		i = len(t.lanes) - 1
	}
	return t.lanes[i]
}

// Span is an open span handle. The zero Span (and any span from a nil
// Tracer) is inert: End is a no-op. Spans are values — beginning and
// ending one allocates nothing.
type Span struct {
	t     *Tracer
	start int64
	lane  int32
	round int32
	name  Name
}

// Begin opens a span on the given lane. round is 1-based (0 = outside
// rounds). Nil-safe: a nil Tracer returns the inert zero Span.
func (t *Tracer) Begin(laneIdx int, name Name, round int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: t.now(), lane: int32(laneIdx), round: int32(round), name: name}
}

// End closes the span and records it.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.now()
	ln := s.t.laneAt(int(s.lane))
	ln.mu.Lock()
	ln.push(event{start: s.start, dur: end - s.start, round: s.round, name: s.name})
	ln.mu.Unlock()
}

// Instant records a point event (count is the event's payload: solver
// restarts, etc.). Nil-safe.
func (t *Tracer) Instant(laneIdx int, name Name, round int, count int64) {
	if t == nil {
		return
	}
	ln := t.laneAt(laneIdx)
	ts := t.now()
	ln.mu.Lock()
	ln.push(event{start: ts, dur: -1, arg: count, round: int32(round), name: name})
	ln.mu.Unlock()
}

// InstantSampled records a point event 1-in-SampleEvery times per lane —
// for instants that fire once per execution (cache hits), where the
// unsampled rate would flood the ring. Nil-safe.
func (t *Tracer) InstantSampled(laneIdx int, name Name, round int, count int64) {
	if t == nil {
		return
	}
	ln := t.laneAt(laneIdx)
	ts := t.now()
	ln.mu.Lock()
	ln.instCt++
	if ln.instCt >= t.opts.SampleEvery {
		ln.instCt = 0
		ln.push(event{start: ts, dur: -1, arg: count, round: int32(round), name: name})
	}
	ln.mu.Unlock()
}

// ExecDone records one finished execution on the given lane: the exact
// per-portfolio-phase aggregate always, plus a sampled SpanExec ring
// event for 1-in-SampleEvery executions. dur is the execution's wall
// time; iters/steps/spins come from the scheduler's Result. Nil-safe.
func (t *Tracer) ExecDone(laneIdx int, portfolio uint8, dur time.Duration, iters, steps, spins int, seed int64) {
	if t == nil {
		return
	}
	ln := t.laneAt(laneIdx)
	end := t.now()
	p := int(portfolio) % maxPortfolio
	ln.mu.Lock()
	a := &ln.agg[p]
	a.Execs++
	a.WallNS += int64(dur)
	a.Iters += int64(iters)
	a.Steps += int64(steps)
	a.Spins += int64(spins)
	ln.sampleCt++
	if ln.sampleCt >= t.opts.SampleEvery {
		ln.sampleCt = 0
		start := end - int64(dur)
		if start < 0 {
			start = 0 // dur predates the tracer epoch (clock skew)
		}
		ln.push(event{
			start: start, dur: int64(dur), arg: seed,
			iters: int64(iters), steps: int64(steps), spins: int64(spins),
			name: SpanExec, phase: uint8(p),
		})
	}
	ln.mu.Unlock()
}
