// The terminal summarizer behind `dfence trace` and /tracez: folds a
// trace's coordinator spans into a per-phase and per-round wall
// breakdown, the lane aggregates into worker utilization, and the exact
// portfolio aggregates into per-phase attribution — including the
// deferral-loop spin counts that make scheduler starvation (the
// ms2-queue × RMO pathology) measurable from the artifact alone.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// portfolioLabels mirrors core.portfolioPhase's cycle (runner.go); the
// summarizer names phases so the attribution table reads without
// cross-referencing the source.
var portfolioLabels = [maxPortfolio]string{
	0: "random",
	1: "priority",
	2: "starve",
	3: "priority+starve+eager-flush",
	4: "eager-flush+lazy-resolve+starve-loads",
	5: "priority+lazy-resolve+starve-loads",
	6: "phase 6",
	7: "phase 7",
}

func durUS(us float64) time.Duration {
	return time.Duration(us * float64(time.Microsecond)).Round(10 * time.Microsecond)
}

// Summarize renders the terminal report for one trace.
func Summarize(d *Data) string {
	var b strings.Builder

	// Wall basis: the run span when present (job span for service
	// traces), otherwise the tracer's whole lifetime.
	wallUS := d.Other.DurationUS
	for _, ev := range d.TraceEvents {
		if ev.Ph == "X" && (ev.Name == SpanRun.String() || ev.Name == SpanJob.String()) && ev.Dur > wallUS {
			wallUS = ev.Dur
		}
	}
	var dropped int64
	for _, ln := range d.Other.Lanes {
		dropped += ln.Dropped
	}
	workers := len(d.Other.Lanes) - 1
	if workers < 0 {
		workers = 0
	}
	fmt.Fprintf(&b, "trace: %s wall, %d worker lane(s), exec spans sampled 1-in-%d, %d ring event(s) dropped\n",
		durUS(wallUS), workers, d.Other.SampleEvery, dropped)

	// Per-phase wall breakdown from the coordinator's phase spans.
	type phaseSum struct {
		n  int
		us float64
	}
	phases := map[string]*phaseSum{}
	type roundSum struct {
		round              int
		us, collect, solve float64
	}
	rounds := map[int]*roundSum{}
	var instants []string
	instantCounts := map[string]int64{}
	for _, ev := range d.TraceEvents {
		switch ev.Ph {
		case "X":
			switch ev.Name {
			case SpanCollect.String(), SpanSolve.String(), SpanValidate.String(), SpanMinimize.String():
				ps := phases[ev.Name]
				if ps == nil {
					ps = &phaseSum{}
					phases[ev.Name] = ps
				}
				ps.n++
				ps.us += ev.Dur
				if ev.Args != nil && ev.Args.Round > 0 {
					rs := rounds[ev.Args.Round]
					if rs == nil {
						rs = &roundSum{round: ev.Args.Round}
						rounds[ev.Args.Round] = rs
					}
					if ev.Name == SpanCollect.String() {
						rs.collect += ev.Dur
					} else if ev.Name == SpanSolve.String() {
						rs.solve += ev.Dur
					}
				}
			case SpanRound.String():
				if ev.Args != nil && ev.Args.Round > 0 {
					rs := rounds[ev.Args.Round]
					if rs == nil {
						rs = &roundSum{round: ev.Args.Round}
						rounds[ev.Args.Round] = rs
					}
					rs.us += ev.Dur
				}
			}
		case "i":
			instantCounts[ev.Name]++
		}
	}
	if len(phases) > 0 {
		b.WriteString("\nphase breakdown (coordinator wall):\n")
		for _, name := range []string{SpanCollect.String(), SpanSolve.String(), SpanValidate.String(), SpanMinimize.String()} {
			ps := phases[name]
			if ps == nil {
				continue
			}
			pct := 0.0
			if wallUS > 0 {
				pct = 100 * ps.us / wallUS
			}
			fmt.Fprintf(&b, "  %-9s %3d span(s)  %10s  %5.1f%%\n", name, ps.n, durUS(ps.us), pct)
		}
	}
	if len(rounds) > 0 {
		keys := make([]int, 0, len(rounds))
		for r := range rounds {
			keys = append(keys, r)
		}
		sort.Ints(keys)
		b.WriteString("\nrounds:\n")
		for _, r := range keys {
			rs := rounds[r]
			total := rs.us
			if total == 0 {
				total = rs.collect + rs.solve
			}
			fmt.Fprintf(&b, "  round %-3d %10s  (collect %s, solve %s)\n",
				rs.round, durUS(total), durUS(rs.collect), durUS(rs.solve))
		}
	}

	// Worker utilization and portfolio attribution from the exact lane
	// aggregates.
	var total [maxPortfolio]PhaseAgg
	busyAny := false
	var util strings.Builder
	for _, ln := range d.Other.Lanes {
		if ln.Lane == 0 {
			continue
		}
		var busyNS, execs int64
		for _, a := range ln.Portfolio {
			busyNS += a.WallNS
			execs += a.Execs
			t := &total[a.Phase%maxPortfolio]
			t.Execs += a.Execs
			t.WallNS += a.WallNS
			t.Iters += a.Iters
			t.Steps += a.Steps
			t.Spins += a.Spins
		}
		if execs == 0 {
			continue
		}
		busyAny = true
		pct := 0.0
		if wallUS > 0 {
			pct = 100 * float64(busyNS) / us / wallUS
		}
		fmt.Fprintf(&util, "  %-12s %10s busy (%5.1f%%)  %d exec(s)\n",
			ln.Label, time.Duration(busyNS).Round(10*time.Microsecond), pct, execs)
	}
	if busyAny {
		b.WriteString("\nworker utilization (execution wall / trace wall):\n")
		b.WriteString(util.String())
		b.WriteString("\nportfolio attribution (exact, all lanes):\n")
		for p := range total {
			a := total[p]
			if a.Execs == 0 {
				continue
			}
			spinsPer := float64(a.Spins) / float64(a.Execs)
			spinShare := 0.0
			if a.Iters > 0 {
				spinShare = 100 * float64(a.Spins) / float64(a.Iters)
			}
			fmt.Fprintf(&b, "  phase %d %-38s %6d exec(s)  %10s  %7.0f iters/exec  %8.1f spins/exec (%4.1f%% of iters)\n",
				p, portfolioLabels[p], a.Execs,
				time.Duration(a.WallNS).Round(10*time.Microsecond),
				float64(a.Iters)/float64(a.Execs), spinsPer, spinShare)
		}
	}
	if len(instantCounts) > 0 {
		for _, name := range []string{InstantViolation.String(), InstantCheckpoint.String(), InstantCacheHit.String(), InstantSolverRestarts.String()} {
			if n := instantCounts[name]; n > 0 {
				instants = append(instants, fmt.Sprintf("%s ×%d", name, n))
			}
		}
		if len(instants) > 0 {
			fmt.Fprintf(&b, "\ninstants: %s\n", strings.Join(instants, ", "))
		}
	}
	return b.String()
}
