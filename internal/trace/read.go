// The strict reader: decodes a trace file WriteJSON produced, rejecting
// anything it does not understand — unknown JSON fields, unknown event
// names or phase types, a missing or mismatched tool/format stamp. Like
// telemetry.ReadJournal, strictness is the drift tripwire: `make
// trace-smoke` writes a real trace and re-reads it here, so an exporter
// change that is not mirrored in the reader (or versioned) fails CI
// instead of silently mis-summarizing.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Read decodes and validates one trace file.
func Read(r io.Reader) (*Data, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Data
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if d.Other.Tool != "dfence-trace" {
		return nil, fmt.Errorf("trace: not a dfence trace (tool %q)", d.Other.Tool)
	}
	if d.Other.Format != formatVersion {
		return nil, fmt.Errorf("trace: format %d, reader expects %d", d.Other.Format, formatVersion)
	}
	for i := range d.TraceEvents {
		ev := &d.TraceEvents[i]
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				return nil, fmt.Errorf("trace: event %d: unknown metadata %q", i, ev.Name)
			}
		case "X", "i":
			n, ok := nameOf(ev.Name)
			if !ok {
				return nil, fmt.Errorf("trace: event %d: unknown name %q", i, ev.Name)
			}
			if ev.Ph == "X" && n >= InstantViolation {
				return nil, fmt.Errorf("trace: event %d: instant name %q on a span", i, ev.Name)
			}
			if ev.Ph == "i" && n < InstantViolation {
				return nil, fmt.Errorf("trace: event %d: span name %q on an instant", i, ev.Name)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				return nil, fmt.Errorf("trace: event %d: negative timestamp", i)
			}
		default:
			return nil, fmt.Errorf("trace: event %d: unknown phase type %q", i, ev.Ph)
		}
	}
	for i, ln := range d.Other.Lanes {
		if ln.Lane != i {
			return nil, fmt.Errorf("trace: lane %d recorded as %d", i, ln.Lane)
		}
		for _, a := range ln.Portfolio {
			if a.Phase < 0 || a.Phase >= maxPortfolio {
				return nil, fmt.Errorf("trace: lane %d: portfolio phase %d out of range", i, a.Phase)
			}
		}
	}
	return &d, nil
}

// ReadFile is Read over a file path.
func ReadFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
