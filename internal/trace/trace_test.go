package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestDisabledTracerZeroAlloc pins the inert-when-disabled contract: every
// hot-path call on a nil Tracer (and End on the zero Span it returns) must
// allocate nothing.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Begin(1, SpanExec, 3)
		s.End()
		tr.Instant(1, InstantViolation, 3, 0)
		tr.InstantSampled(1, InstantCacheHit, 3, 0)
		tr.ExecDone(1, 2, time.Millisecond, 100, 40, 7, 42)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f per op, want 0", allocs)
	}
}

// TestEnabledTracerSpanZeroAlloc pins that Begin/End on an enabled tracer
// also allocate nothing (spans are values; rings are preallocated).
func TestEnabledTracerSpanZeroAlloc(t *testing.T) {
	tr := New(Options{Lanes: 2, RingSize: 16, SampleEvery: 1})
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Begin(1, SpanExec, 1)
		s.End()
		tr.ExecDone(1, 0, time.Microsecond, 10, 5, 1, 7)
	})
	if allocs != 0 {
		t.Fatalf("enabled tracer span allocated %.1f per op, want 0", allocs)
	}
}

// TestRingBounded pins the bounded-when-enabled contract: pushing far more
// events than the ring holds keeps n at capacity and counts the overflow.
func TestRingBounded(t *testing.T) {
	tr := New(Options{Lanes: 1, RingSize: 8, SampleEvery: 1})
	const total = 100
	for i := 0; i < total; i++ {
		tr.Instant(1, InstantViolation, 1, int64(i))
	}
	ln := tr.lanes[1]
	if ln.n != 8 {
		t.Fatalf("ring holds %d events, want 8", ln.n)
	}
	if ln.dropped != total-8 {
		t.Fatalf("dropped = %d, want %d", ln.dropped, total-8)
	}
	// The surviving events must be the newest ones, in order.
	d := tr.Snapshot()
	var counts []int64
	for _, ev := range d.TraceEvents {
		if ev.Ph == "i" && ev.Tid == 1 {
			counts = append(counts, ev.Args.Count)
		}
	}
	// Count 0 encodes as no args; events 92..99 all have non-zero counts.
	if len(counts) != 8 || counts[0] != total-8 || counts[7] != total-1 {
		t.Fatalf("ring kept counts %v, want 92..99", counts)
	}
}

// TestSampling pins 1-in-N exec-span sampling against exact aggregates.
func TestSampling(t *testing.T) {
	tr := New(Options{Lanes: 1, RingSize: 1024, SampleEvery: 4})
	for i := 0; i < 40; i++ {
		tr.ExecDone(1, 1, time.Millisecond, 10, 6, 2, int64(i))
	}
	d := tr.Snapshot()
	spans := 0
	for _, ev := range d.TraceEvents {
		if ev.Ph == "X" && ev.Name == SpanExec.String() {
			spans++
		}
	}
	if spans != 10 {
		t.Fatalf("sampled %d exec spans, want 10 (40 execs, 1-in-4)", spans)
	}
	var agg *PhaseAgg
	for i := range d.Other.Lanes[1].Portfolio {
		if d.Other.Lanes[1].Portfolio[i].Phase == 1 {
			agg = &d.Other.Lanes[1].Portfolio[i]
		}
	}
	if agg == nil || agg.Execs != 40 || agg.Iters != 400 || agg.Steps != 240 || agg.Spins != 80 {
		t.Fatalf("aggregate not exact despite sampling: %+v", agg)
	}
}

// TestRoundTrip pins that WriteJSON output survives the strict reader.
func TestRoundTrip(t *testing.T) {
	tr := New(Options{Lanes: 2, RingSize: 64, SampleEvery: 1})
	run := tr.Begin(0, SpanRun, 0)
	round := tr.Begin(0, SpanRound, 1)
	c := tr.Begin(0, SpanCollect, 1)
	tr.ExecDone(1, 0, 50*time.Microsecond, 20, 12, 3, 99)
	tr.ExecDone(2, 3, 80*time.Microsecond, 30, 18, 5, 100)
	tr.Instant(1, InstantViolation, 1, 0)
	c.End()
	s := tr.Begin(0, SpanSolve, 1)
	tr.Instant(0, InstantSolverRestarts, 1, 2)
	s.End()
	round.End()
	tr.Instant(0, InstantCheckpoint, 1, 0)
	run.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	d, err := Read(&buf)
	if err != nil {
		t.Fatalf("strict reader rejected our own output: %v", err)
	}
	if len(d.Other.Lanes) != 3 {
		t.Fatalf("lanes = %d, want 3", len(d.Other.Lanes))
	}
	sum := Summarize(d)
	for _, want := range []string{"phase breakdown", "round 1", "worker utilization", "portfolio attribution", "random", "priority+starve+eager-flush", "violation ×1", "solver-restarts ×1"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

// TestReaderRejects pins the strict reader's tripwires.
func TestReaderRejects(t *testing.T) {
	cases := map[string]string{
		"wrong tool":      `{"traceEvents":[],"otherData":{"tool":"other","format":1,"duration_us":0,"sample_every":1,"ring_size":1,"lanes":[]}}`,
		"wrong format":    `{"traceEvents":[],"otherData":{"tool":"dfence-trace","format":99,"duration_us":0,"sample_every":1,"ring_size":1,"lanes":[]}}`,
		"unknown field":   `{"traceEvents":[],"otherData":{"tool":"dfence-trace","format":1,"duration_us":0,"sample_every":1,"ring_size":1,"lanes":[],"extra":1}}`,
		"unknown name":    `{"traceEvents":[{"name":"mystery","ph":"X","ts":0,"pid":1,"tid":0}],"otherData":{"tool":"dfence-trace","format":1,"duration_us":0,"sample_every":1,"ring_size":1,"lanes":[]}}`,
		"instant as span": `{"traceEvents":[{"name":"violation","ph":"X","ts":0,"pid":1,"tid":0}],"otherData":{"tool":"dfence-trace","format":1,"duration_us":0,"sample_every":1,"ring_size":1,"lanes":[]}}`,
		"bad lane index":  `{"traceEvents":[],"otherData":{"tool":"dfence-trace","format":1,"duration_us":0,"sample_every":1,"ring_size":1,"lanes":[{"lane":3,"label":"x"}]}}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: strict reader accepted invalid input", name)
		}
	}
}

// TestNilSnapshot pins that a nil tracer still writes a valid empty trace.
func TestNilSnapshot(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on nil: %v", err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("nil snapshot rejected: %v", err)
	}
	if tr.Summary() == "" {
		t.Fatal("nil summary empty")
	}
}

// TestLaneClamp pins that out-of-range lanes degrade instead of panicking.
func TestLaneClamp(t *testing.T) {
	tr := New(Options{Lanes: 1, RingSize: 8, SampleEvery: 1})
	tr.ExecDone(99, 0, time.Microsecond, 1, 1, 0, 0)
	tr.ExecDone(-5, 0, time.Microsecond, 1, 1, 0, 0)
	d := tr.Snapshot()
	if got := d.Other.Lanes[1].Portfolio[0].Execs; got != 1 {
		t.Fatalf("high lane clamped execs = %d, want 1", got)
	}
	if got := d.Other.Lanes[0].Portfolio[0].Execs; got != 1 {
		t.Fatalf("low lane clamped execs = %d, want 1", got)
	}
}
