package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dfence/internal/ir"
)

func TestParseModel(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Model
		ok   bool
	}{
		{"sc", SC, true}, {"TSO", TSO, true}, {"pso", PSO, true}, {"x86", SC, false},
		// Case-insensitivity: the doc promises any mixed-case spelling works
		// (the CLI's -model flag passes user input through verbatim).
		{"Sc", SC, true}, {"sC", SC, true}, {"tSO", TSO, true}, {"TsO", TSO, true},
		{"tso", TSO, true}, {"pSo", PSO, true}, {"PsO", PSO, true}, {"psO", PSO, true},
		{"", SC, false}, {" tso", SC, false}, {"tso ", SC, false},
	} {
		got, err := ParseModel(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseModel(%q) err = %v, ok want %v", c.in, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseModel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestParseModelRoundTrip pins ParseModel(m.String()) == m for every
// defined model, so journal deserialization can never drop a model added
// later (it would have to be added to Models() to be usable at all).
func TestParseModelRoundTrip(t *testing.T) {
	for _, m := range Models() {
		got, err := ParseModel(m.String())
		if err != nil {
			t.Fatalf("ParseModel(%q) failed: %v", m.String(), err)
		}
		if got != m {
			t.Errorf("ParseModel(%v.String()) = %v, want %v", m, got, m)
		}
	}
}

func TestTSOFIFOOrder(t *testing.T) {
	b := New(TSO)
	b.Put(10, 1, 100)
	b.Put(20, 2, 101)
	b.Put(10, 3, 102)
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	// Newest value wins for lookup.
	if v, ok := b.Lookup(10); !ok || v != 3 {
		t.Errorf("Lookup(10) = %d,%v want 3,true", v, ok)
	}
	if v, ok := b.Lookup(20); !ok || v != 2 {
		t.Errorf("Lookup(20) = %d,%v want 2,true", v, ok)
	}
	if _, ok := b.Lookup(30); ok {
		t.Error("Lookup(30) found a value")
	}
	// Flush pops strictly FIFO, ignoring the addr hint.
	want := []Entry{
		{Addr: 10, Val: 1, Label: 100},
		{Addr: 20, Val: 2, Label: 101},
		{Addr: 10, Val: 3, Label: 102},
	}
	for i, w := range want {
		e, ok := b.FlushOldest(999)
		if !ok || e != w {
			t.Fatalf("flush %d = %+v,%v want %+v", i, e, ok, w)
		}
	}
	if !b.Empty() {
		t.Error("buffer not empty after draining")
	}
	if _, ok := b.FlushOldest(0); ok {
		t.Error("FlushOldest on empty buffer returned ok")
	}
}

func TestPSOPerAddressFIFO(t *testing.T) {
	b := New(PSO)
	b.Put(10, 1, 100)
	b.Put(20, 2, 101)
	b.Put(10, 3, 102)
	// Per-address FIFO: address 20 can flush before address 10's first
	// entry (store-store reordering), but within address 10 order holds.
	e, ok := b.FlushOldest(20)
	if !ok || e.Val != 2 {
		t.Fatalf("FlushOldest(20) = %+v,%v", e, ok)
	}
	e, ok = b.FlushOldest(10)
	if !ok || e.Val != 1 {
		t.Fatalf("FlushOldest(10) first = %+v, want val 1", e)
	}
	e, ok = b.FlushOldest(10)
	if !ok || e.Val != 3 {
		t.Fatalf("FlushOldest(10) second = %+v, want val 3", e)
	}
	if !b.Empty() {
		t.Error("not empty")
	}
}

func TestEmptyFor(t *testing.T) {
	sc := New(SC)
	if !sc.EmptyFor(10) {
		t.Error("SC EmptyFor must always be true")
	}

	tso := New(TSO)
	tso.Put(10, 1, 1)
	if tso.EmptyFor(20) {
		t.Error("TSO CAS must wait for the whole FIFO to drain")
	}

	pso := New(PSO)
	pso.Put(10, 1, 1)
	if pso.EmptyFor(10) {
		t.Error("PSO EmptyFor(10) with pending store to 10")
	}
	if !pso.EmptyFor(20) {
		t.Error("PSO CAS on a different address may proceed")
	}
}

func TestPendingAddrsDeterministic(t *testing.T) {
	b := New(PSO)
	b.Put(30, 1, 1)
	b.Put(10, 2, 2)
	b.Put(20, 3, 3)
	b.Put(10, 4, 4)
	got := b.PendingAddrs()
	want := []int64{30, 10, 20}
	if len(got) != len(want) {
		t.Fatalf("PendingAddrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PendingAddrs = %v, want %v", got, want)
		}
	}

	tso := New(TSO)
	tso.Put(30, 1, 1)
	tso.Put(10, 2, 2)
	if got := tso.PendingAddrs(); len(got) != 1 || got[0] != 30 {
		t.Errorf("TSO PendingAddrs = %v, want [30] (FIFO head only)", got)
	}
}

func TestPendingOther(t *testing.T) {
	b := New(PSO)
	b.Put(10, 1, 100)
	b.Put(20, 2, 200)
	b.Put(20, 3, 201)
	other := b.PendingOther(10)
	if len(other) != 2 || other[0].Label != 200 || other[1].Label != 201 {
		t.Errorf("PendingOther(10) = %+v, want the two stores to 20", other)
	}
	if got := b.PendingOther(20); len(got) != 1 || got[0].Label != 100 {
		t.Errorf("PendingOther(20) = %+v, want the store to 10", got)
	}
}

func TestDrain(t *testing.T) {
	for _, m := range []Model{TSO, PSO} {
		b := New(m)
		b.Put(10, 1, 1)
		b.Put(20, 2, 2)
		b.Put(10, 3, 3)
		got := b.Drain()
		if len(got) != 3 {
			t.Fatalf("%v: Drain returned %d entries, want 3", m, len(got))
		}
		if !b.Empty() || b.Len() != 0 {
			t.Errorf("%v: buffers not empty after Drain", m)
		}
		// Per-address order must hold in the drain sequence.
		last := map[int64]int64{}
		for _, e := range got {
			if prev, ok := last[e.Addr]; ok && prev == 3 && e.Val == 1 {
				t.Errorf("%v: drain violated per-address FIFO: %+v", m, got)
			}
			last[e.Addr] = e.Val
		}
	}
}

// Property: under both TSO and PSO, for any sequence of stores to a set of
// addresses, Lookup(a) always returns the most recent store to a (or
// nothing if a was fully flushed), and per-address flush order equals store
// order. This is the coherence invariant the models share.
func TestQuickPerAddressCoherence(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		for _, m := range []Model{TSO, PSO} {
			b := New(m)
			rng := rand.New(rand.NewSource(seed))
			latest := map[int64]int64{}    // last stored value per addr
			flushedUpTo := map[int64]int{} // count of flushes per addr
			stored := map[int64][]int64{}  // all values stored per addr, in order
			val := int64(0)
			for _, op := range ops {
				addr := int64(op%4) * 8
				if op%3 == 0 && !b.Empty() {
					// flush something legal
					addrs := b.PendingAddrs()
					a := addrs[rng.Intn(len(addrs))]
					e, ok := b.FlushOldest(a)
					if !ok {
						return false
					}
					// must be the next unflushed store to e.Addr
					idx := flushedUpTo[e.Addr]
					if idx >= len(stored[e.Addr]) || stored[e.Addr][idx] != e.Val {
						return false
					}
					flushedUpTo[e.Addr] = idx + 1
				} else {
					val++
					b.Put(addr, val, ir.Label(val))
					latest[addr] = val
					stored[addr] = append(stored[addr], val)
				}
			}
			for a, want := range latest {
				got, ok := b.Lookup(a)
				fullyFlushed := flushedUpTo[a] == len(stored[a])
				if fullyFlushed {
					if ok {
						return false // nothing pending, Lookup must miss
					}
				} else if !ok || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: count bookkeeping — Len equals puts minus flushes at all times.
func TestQuickLenInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		for _, m := range []Model{TSO, PSO} {
			b := New(m)
			n := 0
			for i, put := range ops {
				if put {
					b.Put(int64(i%5), int64(i), ir.Label(i))
					n++
				} else if !b.Empty() {
					addrs := b.PendingAddrs()
					if _, ok := b.FlushOldest(addrs[0]); ok {
						n--
					}
				}
				if b.Len() != n || b.Empty() != (n == 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelString(t *testing.T) {
	if SC.String() != "SC" || TSO.String() != "TSO" || PSO.String() != "PSO" {
		t.Error("model names wrong")
	}
}
