// Package memmodel implements the store-buffer machinery of the paper's
// Semantics 1 for the three memory models DFENCE supports:
//
//   - SC: no buffering; stores hit main memory immediately.
//   - TSO (total store order): one FIFO buffer of (address, value) pairs per
//     thread. Loads may bypass earlier buffered stores to *other* addresses;
//     a load of a buffered address reads the newest buffered value.
//   - PSO (partial store order): one FIFO buffer per (thread, address) pair,
//     so stores to different addresses may also be reordered.
//
// A Buffers value holds the buffers of a single thread. The interpreter
// consults it on every shared load/store/CAS; the demonic scheduler decides
// when pending entries flush to main memory.
package memmodel

import (
	"fmt"
	"strings"

	"dfence/internal/ir"
)

// Model selects the memory model an execution runs under.
type Model uint8

const (
	// SC is (hardware-level) sequential consistency: no buffering.
	SC Model = iota
	// TSO buffers stores in a single per-thread FIFO (x86-like).
	TSO
	// PSO buffers stores per (thread, variable) (SPARC PSO-like).
	PSO
)

func (m Model) String() string {
	switch m {
	case SC:
		return "SC"
	case TSO:
		return "TSO"
	case PSO:
		return "PSO"
	}
	return fmt.Sprintf("model(%d)", uint8(m))
}

// ParseModel converts a name ("sc", "tso", "pso", case-insensitive) to a
// Model.
func ParseModel(s string) (Model, error) {
	switch strings.ToLower(s) {
	case "sc":
		return SC, nil
	case "tso":
		return TSO, nil
	case "pso":
		return PSO, nil
	}
	return SC, fmt.Errorf("memmodel: unknown model %q (want sc, tso, or pso)", s)
}

// Models lists every defined memory model, weakest-last. Exhaustive by
// construction: corpus sweeps and round-trip tests range over it so a model
// added later cannot be silently skipped.
func Models() []Model { return []Model{SC, TSO, PSO} }

// RelaxesStoreLoad reports whether the model may reorder a store with a
// later load of the same thread (the store sits in a buffer while the
// load reads memory). True for TSO and PSO — the reordering fence(st-ld)
// prevents.
func (m Model) RelaxesStoreLoad() bool { return m == TSO || m == PSO }

// RelaxesStoreStore reports whether the model may reorder two stores of
// the same thread to different addresses (per-address buffers commit
// independently). True only for PSO — TSO's single FIFO preserves store
// order, so under TSO only loads can observe pending stores.
func (m Model) RelaxesStoreStore() bool { return m == PSO }

// Entry is one pending buffered store. Label records the program label of
// the store instruction — the instrumented semantics (paper Semantics 2)
// need it to build ordering predicates.
type Entry struct {
	Addr  int64
	Val   int64
	Label ir.Label
}

// Buffers holds the pending stores of one thread under one memory model.
// The zero value is not usable; call New (or Reset, which accepts the zero
// value).
//
// Storage is pooled for machine reuse: the FIFOs are head-indexed queues
// whose backing arrays (and, under PSO, whose per-address map entries)
// survive both flushes and Reset, so a thread that keeps executing — or a
// pooled thread re-armed for its next execution — stops allocating once
// the queues have grown to the workload's high-water mark.
type Buffers struct {
	model Model
	count int

	tso fifo // TSO: single FIFO

	pso   map[int64]*fifo // PSO: per-address FIFO (entries persist across Reset, emptied not deleted)
	order []int64         // addresses with pending entries, oldest-first insertion order (deterministic iteration)

	scratch [1]int64 // backing for the TSO PendingAddrsView result
}

// fifo is a head-indexed queue of entries: pops advance head instead of
// reslicing, so the backing array keeps its capacity, and the storage is
// reclaimed wholesale whenever the queue empties.
type fifo struct {
	ents []Entry
	head int
}

func (q *fifo) len() int       { return len(q.ents) - q.head }
func (q *fifo) slice() []Entry { return q.ents[q.head:] }
func (q *fifo) push(e Entry)   { q.ents = append(q.ents, e) }
func (q *fifo) reset()         { q.ents = q.ents[:0]; q.head = 0 }
func (q *fifo) pop() Entry {
	e := q.ents[q.head]
	q.head++
	if q.head == len(q.ents) {
		q.reset()
	}
	return e
}

// New returns empty buffers for one thread under model m.
func New(m Model) *Buffers {
	b := &Buffers{}
	b.Reset(m)
	return b
}

// Reset empties the buffers and switches them to model m, retaining the
// backing storage of previous runs (including the PSO per-address queues)
// so a pooled thread's buffers are allocation-free after warm-up. The zero
// Buffers value may be Reset.
func (b *Buffers) Reset(m Model) {
	b.model = m
	b.count = 0
	b.tso.reset()
	b.order = b.order[:0]
	if m == PSO && b.pso == nil {
		b.pso = make(map[int64]*fifo)
	}
	for _, q := range b.pso {
		q.reset()
	}
}

// Model returns the memory model these buffers implement.
func (b *Buffers) Model() Model { return b.model }

// Len returns the total number of pending entries.
func (b *Buffers) Len() int { return b.count }

// Empty reports whether no stores are pending.
func (b *Buffers) Empty() bool { return b.count == 0 }

// EmptyFor reports whether a CAS on addr may proceed: the paper's CAS rules
// require B(x) = ε. Under PSO that is the per-address buffer; under TSO the
// single FIFO must be empty (the whole buffer orders before the atomic).
// Under SC it is always true.
func (b *Buffers) EmptyFor(addr int64) bool {
	switch b.model {
	case SC:
		return true
	case TSO:
		return b.tso.len() == 0
	case PSO:
		q := b.pso[addr]
		return q == nil || q.len() == 0
	}
	return true
}

// Put appends a pending store. It must not be called under SC (SC stores
// write memory directly).
func (b *Buffers) Put(addr, val int64, label ir.Label) {
	switch b.model {
	case SC:
		panic("memmodel: Put on SC buffers")
	case TSO:
		b.tso.push(Entry{Addr: addr, Val: val, Label: label})
	case PSO:
		q := b.pso[addr]
		if q == nil {
			q = &fifo{}
			b.pso[addr] = q
		}
		if q.len() == 0 {
			b.order = append(b.order, addr)
		}
		q.push(Entry{Addr: addr, Val: val, Label: label})
	}
	b.count++
}

// Lookup implements the LOAD-B rule: if addr has pending stores in this
// thread's buffers, the newest buffered value is returned with ok=true.
// Otherwise ok=false and the caller reads main memory (LOAD-G).
func (b *Buffers) Lookup(addr int64) (val int64, ok bool) {
	switch b.model {
	case TSO:
		s := b.tso.slice()
		for i := len(s) - 1; i >= 0; i-- {
			if s[i].Addr == addr {
				return s[i].Val, true
			}
		}
	case PSO:
		if q := b.pso[addr]; q != nil && q.len() > 0 {
			s := q.slice()
			return s[len(s)-1].Val, true
		}
	}
	return 0, false
}

// FlushOldest implements the FLUSH rule for one entry. Under TSO the FIFO
// head is popped regardless of addr. Under PSO the oldest entry of addr's
// buffer is popped; addr must have pending entries (pick one from
// PendingAddrs). The popped entry is returned for the interpreter to commit
// to main memory; ok is false if nothing was pending.
func (b *Buffers) FlushOldest(addr int64) (Entry, bool) {
	switch b.model {
	case TSO:
		if b.tso.len() == 0 {
			return Entry{}, false
		}
		b.count--
		return b.tso.pop(), true
	case PSO:
		q := b.pso[addr]
		if q == nil || q.len() == 0 {
			return Entry{}, false
		}
		e := q.pop()
		if q.len() == 0 {
			b.removeFromOrder(addr)
		}
		b.count--
		return e, true
	}
	return Entry{}, false
}

func (b *Buffers) removeFromOrder(addr int64) {
	for i, a := range b.order {
		if a == addr {
			b.order = append(b.order[:i], b.order[i+1:]...)
			return
		}
	}
}

// PendingAddrs returns the addresses that currently have pending entries,
// in deterministic (oldest-buffer-first) order. Under TSO the result is
// the FIFO head's address only — TSO can only flush in FIFO order.
func (b *Buffers) PendingAddrs() []int64 {
	switch b.model {
	case TSO:
		if b.tso.len() == 0 {
			return nil
		}
		return []int64{b.tso.slice()[0].Addr}
	case PSO:
		out := make([]int64, len(b.order))
		copy(out, b.order)
		return out
	}
	return nil
}

// PendingAddrsView is PendingAddrs without the copy: the returned slice
// aliases internal state (the PSO insertion-order list, or a one-element
// scratch buffer under TSO) and is only valid until the next buffer
// mutation. Callers must not retain or modify it — it exists so the
// scheduler's flush choice and the interpreter's forced flushes are
// allocation-free on the per-step hot path.
func (b *Buffers) PendingAddrsView() []int64 {
	switch b.model {
	case TSO:
		if b.tso.len() == 0 {
			return nil
		}
		b.scratch[0] = b.tso.slice()[0].Addr
		return b.scratch[:1]
	case PSO:
		return b.order
	}
	return nil
}

// PendingOther returns the pending entries whose address differs from
// exclude, oldest first. This realizes the premise of the instrumented
// STORE/LOAD/CAS rules of Semantics 2: the labels ly of stores sitting in
// *other* buffers of the same thread, any of which could be ordered before
// the current access to repair the execution.
func (b *Buffers) PendingOther(exclude int64) []Entry {
	return b.AppendPendingOther(nil, exclude)
}

// AppendPendingOther is PendingOther appending into dst (which may be a
// reused scratch slice), returning the extended slice. The interpreter's
// observation hook uses it to keep the per-access instrumented-semantics
// path allocation-free.
func (b *Buffers) AppendPendingOther(dst []Entry, exclude int64) []Entry {
	switch b.model {
	case TSO:
		for _, e := range b.tso.slice() {
			if e.Addr != exclude {
				dst = append(dst, e)
			}
		}
	case PSO:
		for _, a := range b.order {
			if a == exclude {
				continue
			}
			dst = append(dst, b.pso[a].slice()...)
		}
	}
	return dst
}

// All returns every pending entry (TSO: FIFO order; PSO: grouped by
// address, oldest address group first). Used by tests and reporting.
func (b *Buffers) All() []Entry {
	return b.PendingOther(-1 << 62)
}

// Drain removes and returns all pending entries in the order they must
// commit (TSO: FIFO; PSO: round-robin oldest-first per address group is not
// required — any interleaving of the per-address FIFOs is legal, so we
// commit address groups in buffer-creation order). Used by the interpreter
// to execute fences and to drain before CAS/join.
func (b *Buffers) Drain() []Entry {
	var out []Entry
	switch b.model {
	case TSO:
		out = append(out, b.tso.slice()...)
		b.tso.reset()
	case PSO:
		for _, a := range b.order {
			q := b.pso[a]
			out = append(out, q.slice()...)
			q.reset()
		}
		b.order = b.order[:0]
	}
	b.count = 0
	return out
}
