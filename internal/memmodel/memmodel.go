// Package memmodel implements the relaxed-memory machinery of the paper's
// Semantics 1 for the model hierarchy DFENCE supports:
//
//   - SC: no buffering; stores hit main memory immediately.
//   - TSO (total store order): one FIFO buffer of (address, value) pairs per
//     thread. Loads may bypass earlier buffered stores to *other* addresses;
//     a load of a buffered address reads the newest buffered value.
//   - PSO (partial store order): one FIFO buffer per (thread, address) pair,
//     so stores to different addresses may also be reordered.
//   - RMO (relaxed memory order): PSO's store buffers plus deferred loads —
//     the scheduler may postpone a shared load's read of memory past later
//     accesses of the same thread, exhibiting load-load and load-store
//     reordering (SPARC RMO-like). The deferral machinery itself lives in
//     the interpreter; this package declares the capability.
//
// Each model is characterized by a full reordering matrix over
// {load,store} × {load,store} (Relaxes) rather than ad-hoc capability
// bits, so analyses and synthesizers are written once against the matrix
// and every present or future model plugs in. Store-atomicity is a
// separate flag: all current models are multi-copy atomic (a committed
// store is visible to every other thread at once; only the issuing thread
// can read its own stores early, via buffer forwarding).
//
// A Buffers value holds the buffers of a single thread. The interpreter
// consults it on every shared load/store/CAS; the demonic scheduler decides
// when pending entries flush to main memory. Store-store barriers partition
// a buffer into epochs (Barrier): entries of a later epoch cannot commit
// before entries of an earlier one, which is how fence(st-st) orders stores
// without forcing anything to drain.
package memmodel

import (
	"fmt"
	"strings"

	"dfence/internal/ir"
)

// Model selects the memory model an execution runs under.
type Model uint8

const (
	// SC is (hardware-level) sequential consistency: no buffering.
	SC Model = iota
	// TSO buffers stores in a single per-thread FIFO (x86-like).
	TSO
	// PSO buffers stores per (thread, variable) (SPARC PSO-like).
	PSO
	// RMO additionally defers loads: per-thread pending-load queues let a
	// load's read of memory happen after later same-thread accesses
	// (SPARC RMO-like; every class pair is relaxed).
	RMO
)

func (m Model) String() string {
	switch m {
	case SC:
		return "SC"
	case TSO:
		return "TSO"
	case PSO:
		return "PSO"
	case RMO:
		return "RMO"
	}
	return fmt.Sprintf("model(%d)", uint8(m))
}

// ParseModel converts a name ("sc", "tso", "pso", "rmo", case-insensitive)
// to a Model.
func ParseModel(s string) (Model, error) {
	for _, m := range Models() {
		if strings.EqualFold(s, m.String()) {
			return m, nil
		}
	}
	return SC, fmt.Errorf("memmodel: unknown model %q (want sc, tso, pso, or rmo)", s)
}

// Models lists every defined memory model, weakest-last. Exhaustive by
// construction: corpus sweeps and round-trip tests range over it so a model
// added later cannot be silently skipped.
func Models() []Model { return []Model{SC, TSO, PSO, RMO} }

// relaxMask returns the model's reordering matrix as a bitmask over
// ordered class pairs (same encoding as ir.FenceKind's coverage masks:
// bit 2*a+b set means an earlier class-a access may take effect after a
// later class-b access).
func (m Model) relaxMask() uint8 {
	const (
		ldld = 1 << 0
		ldst = 1 << 1
		stld = 1 << 2
		stst = 1 << 3
	)
	switch m {
	case SC:
		return 0
	case TSO:
		return stld
	case PSO:
		return stld | stst
	case RMO:
		return ldld | ldst | stld | stst
	}
	return 0
}

// Relaxes reports whether the model may reorder an earlier class-a access
// with a later class-b access of the same thread — the full per-model
// reordering matrix every analysis and synthesizer dispatches on. The
// matrix is cumulative down the hierarchy: SC relaxes nothing, TSO adds
// (st,ld), PSO adds (st,st), RMO adds (ld,ld) and (ld,st).
func (m Model) Relaxes(a, b ir.AccessClass) bool {
	return m.relaxMask()&(1<<(2*uint8(a)+uint8(b))) != 0
}

// MultiCopyAtomic reports the model's store-atomicity: a store that
// commits becomes visible to all other threads simultaneously, and only
// the issuing thread may read it early (through its own buffer). True for
// every store-buffer model DFENCE implements; a future non-MCA model
// (POWER-like) would return false and require per-thread memory views.
func (m Model) MultiCopyAtomic() bool {
	switch m {
	case SC, TSO, PSO, RMO:
		return true
	}
	return true
}

// RelaxesStoreLoad reports whether the model may reorder a store with a
// later load of the same thread (the store sits in a buffer while the
// load reads memory) — Relaxes(store, load).
func (m Model) RelaxesStoreLoad() bool { return m.Relaxes(ir.ClassStore, ir.ClassLoad) }

// RelaxesStoreStore reports whether the model may reorder two stores of
// the same thread to different addresses (per-address buffers commit
// independently) — Relaxes(store, store).
func (m Model) RelaxesStoreStore() bool { return m.Relaxes(ir.ClassStore, ir.ClassStore) }

// DefersLoads reports whether the model may delay a shared load's read of
// memory past later same-thread accesses — Relaxes(load, ·). When true,
// the interpreter routes shared loads through a per-thread deferred-load
// queue whose resolution the scheduler controls.
func (m Model) DefersLoads() bool {
	return m.Relaxes(ir.ClassLoad, ir.ClassLoad) || m.Relaxes(ir.ClassLoad, ir.ClassStore)
}

// perAddrBuffers reports whether stores buffer per (thread, address)
// rather than in a single FIFO — the models that relax store-store order.
func (m Model) perAddrBuffers() bool { return m.RelaxesStoreStore() }

// FenceCost is the model-specific cost of placing one fence of the given
// kind, the weight the static hitting-set synthesizer minimizes
// (musketeer-style: full fences dominate one-way barriers, which dominate
// the single-pair membar variants). A kind that orders nothing the model
// actually relaxes is a no-op on that model and costs a nominal 1 — it can
// never help a repair, so the synthesizer will not pick it, but the table
// stays total. Costs are abstract hardware expense (cycles a stronger
// barrier wastes), not interpreter step counts.
func (m Model) FenceCost(k ir.FenceKind) int {
	relaxed := false
	for _, a := range ir.AccessClasses() {
		for _, b := range ir.AccessClasses() {
			if k.Orders(a, b) && m.Relaxes(a, b) {
				relaxed = true
			}
		}
	}
	if !relaxed {
		return 1
	}
	switch k {
	case ir.FenceFull:
		return 8
	case ir.FenceStoreLoad:
		return 5 // drains the whole buffer: nearly a full fence
	case ir.FenceAcquire, ir.FenceRelease:
		return 4 // one-way barriers: two pairs each
	case ir.FenceStoreStore, ir.FenceLoadLoad, ir.FenceLoadStore:
		return 2 // single-pair membar variants
	}
	return 8 // unknown kinds priced like a full fence (conservative)
}

// Entry is one pending buffered store. Label records the program label of
// the store instruction — the instrumented semantics (paper Semantics 2)
// need it to build ordering predicates. Epoch is the store-store barrier
// epoch the entry was buffered in: entries commit in non-decreasing epoch
// order (only meaningful for per-address-buffer models; always 0 for TSO,
// whose single FIFO is totally ordered anyway).
type Entry struct {
	Addr  int64
	Val   int64
	Label ir.Label
	Epoch int32
}

// Buffers holds the pending stores of one thread under one memory model.
// The zero value is not usable; call New (or Reset, which accepts the zero
// value).
//
// Storage is pooled for machine reuse: the FIFOs are head-indexed queues
// whose backing arrays (and, under per-address models, whose per-address
// map entries) survive both flushes and Reset, so a thread that keeps
// executing — or a pooled thread re-armed for its next execution — stops
// allocating once the queues have grown to the workload's high-water mark.
type Buffers struct {
	model Model
	count int
	epoch int32 // current put-epoch; bumped by Barrier, rearmed to 0 when empty

	tso fifo // TSO: single FIFO

	// Per-address FIFOs. Program addresses are small dense integers
	// (globals and arrays are laid out contiguously from 0), so the hot
	// path indexes a slice grown to the highest buffered address —
	// profiles showed the former map[int64]*fifo's hashing under every
	// Put/Lookup/flush-candidate scan. Out-of-range addresses (negative
	// or huge register garbage headed for a bad-address violation at
	// flush time) fall back to a lazily-made map so a broken program
	// cannot force a giant allocation.
	pso     []fifo          // dense per-address FIFOs, index = address
	psoWild map[int64]*fifo // rare fallback for addresses outside [0, denseAddrCap)
	order   []int64         // addresses with pending entries, oldest-first insertion order (deterministic iteration)

	scratch  [1]int64 // backing for the TSO PendingAddrsView result
	fscratch []int64  // backing for the FlushableAddrsView result
}

// fifo is a head-indexed queue of entries: pops advance head instead of
// reslicing, so the backing array keeps its capacity, and the storage is
// reclaimed wholesale whenever the queue empties.
type fifo struct {
	ents []Entry
	head int
}

func (q *fifo) len() int       { return len(q.ents) - q.head }
func (q *fifo) slice() []Entry { return q.ents[q.head:] }
func (q *fifo) push(e Entry)   { q.ents = append(q.ents, e) }
func (q *fifo) reset()         { q.ents = q.ents[:0]; q.head = 0 }
func (q *fifo) pop() Entry {
	e := q.ents[q.head]
	q.head++
	if q.head == len(q.ents) {
		q.reset()
	}
	return e
}

// denseAddrCap bounds the dense per-address table: any program address
// below it gets an O(1) slice slot; anything at or above it (or negative)
// is register garbage that will trip the bad-address check when it
// flushes, and lives in the psoWild fallback map until then.
const denseAddrCap = 1 << 16

// queue returns addr's FIFO if it has ever buffered an entry, else nil.
// The pointer aliases the dense table and is invalidated by the next
// queueFor call — use immediately.
func (b *Buffers) queue(addr int64) *fifo {
	if uint64(addr) < uint64(len(b.pso)) {
		return &b.pso[addr]
	}
	return b.psoWild[addr]
}

// queueFor returns addr's FIFO, creating its slot on first use.
func (b *Buffers) queueFor(addr int64) *fifo {
	if addr >= 0 && addr < denseAddrCap {
		if int(addr) >= len(b.pso) {
			b.pso = append(b.pso, make([]fifo, int(addr)+1-len(b.pso))...)
		}
		return &b.pso[addr]
	}
	if b.psoWild == nil {
		b.psoWild = make(map[int64]*fifo)
	}
	q := b.psoWild[addr]
	if q == nil {
		q = &fifo{}
		b.psoWild[addr] = q
	}
	return q
}

// New returns empty buffers for one thread under model m.
func New(m Model) *Buffers {
	b := &Buffers{}
	b.Reset(m)
	return b
}

// Reset empties the buffers and switches them to model m, retaining the
// backing storage of previous runs (including the per-address queues)
// so a pooled thread's buffers are allocation-free after warm-up. The zero
// Buffers value may be Reset.
func (b *Buffers) Reset(m Model) {
	b.model = m
	b.count = 0
	b.epoch = 0
	b.tso.reset()
	// Non-empty queues are exactly the order-listed ones (Put appends an
	// address on its first pending entry; FlushOldest delists it on its
	// last), so resetting those — not the whole table — keeps Reset O(pending).
	for _, a := range b.order {
		b.queue(a).reset()
	}
	b.order = b.order[:0]
}

// Model returns the memory model these buffers implement.
func (b *Buffers) Model() Model { return b.model }

// Len returns the total number of pending entries.
func (b *Buffers) Len() int { return b.count }

// Empty reports whether no stores are pending.
func (b *Buffers) Empty() bool { return b.count == 0 }

// EmptyFor reports whether a CAS on addr may proceed: the paper's CAS rules
// require B(x) = ε. Under per-address models that is the per-address
// buffer; under TSO the single FIFO must be empty (the whole buffer orders
// before the atomic). Under SC it is always true.
func (b *Buffers) EmptyFor(addr int64) bool {
	switch b.model {
	case SC:
		return true
	case TSO:
		return b.tso.len() == 0
	case PSO, RMO:
		q := b.queue(addr)
		return q == nil || q.len() == 0
	}
	return true
}

// Put appends a pending store in the current epoch. It must not be called
// under SC (SC stores write memory directly).
func (b *Buffers) Put(addr, val int64, label ir.Label) {
	switch b.model {
	case SC:
		panic("memmodel: Put on SC buffers")
	case TSO:
		b.tso.push(Entry{Addr: addr, Val: val, Label: label})
	case PSO, RMO:
		q := b.queueFor(addr)
		if q.len() == 0 {
			b.order = append(b.order, addr)
		}
		q.push(Entry{Addr: addr, Val: val, Label: label, Epoch: b.epoch})
	}
	b.count++
}

// Barrier starts a new store epoch (the operational meaning of
// fence(st-st) and the store half of fence(rel)): entries buffered from
// now on cannot commit before any entry already pending. A no-op under
// TSO (the single FIFO is already totally ordered) and on empty buffers
// (nothing to order against).
func (b *Buffers) Barrier() {
	if !b.model.perAddrBuffers() || b.count == 0 {
		return
	}
	b.epoch++
}

// Epoch returns the current store epoch — the epoch the next Put tags
// its entry with. Entries with a smaller epoch are separated from the
// present by at least one Barrier, so they are ordered before any store
// issued now (the instrumented semantics uses this to suppress
// predicates for already-ordered pairs).
func (b *Buffers) Epoch() int32 { return b.epoch }

// minHeadEpoch returns the smallest epoch among the per-address queue
// heads; only entries of that epoch may commit next.
func (b *Buffers) minHeadEpoch() int32 {
	min := int32(0)
	first := true
	for _, a := range b.order {
		e := b.queue(a).slice()[0].Epoch
		if first || e < min {
			min, first = e, false
		}
	}
	return min
}

// Lookup implements the LOAD-B rule: if addr has pending stores in this
// thread's buffers, the newest buffered value is returned with ok=true.
// Otherwise ok=false and the caller reads main memory (LOAD-G).
func (b *Buffers) Lookup(addr int64) (val int64, ok bool) {
	switch b.model {
	case SC:
	case TSO:
		s := b.tso.slice()
		for i := len(s) - 1; i >= 0; i-- {
			if s[i].Addr == addr {
				return s[i].Val, true
			}
		}
	case PSO, RMO:
		if q := b.queue(addr); q != nil && q.len() > 0 {
			s := q.slice()
			return s[len(s)-1].Val, true
		}
	}
	return 0, false
}

// FlushOldest implements the FLUSH rule for one entry. Under TSO the FIFO
// head is popped regardless of addr. Under per-address models the oldest
// entry of addr's buffer is popped; addr must have pending entries in the
// lowest pending epoch (pick one from FlushableAddrs), or ok is false —
// epoch barriers make entries behind a store-store fence uncommittable
// until everything before the fence has drained. The popped entry is
// returned for the interpreter to commit to main memory.
func (b *Buffers) FlushOldest(addr int64) (Entry, bool) {
	switch b.model {
	case SC:
	case TSO:
		if b.tso.len() == 0 {
			return Entry{}, false
		}
		b.count--
		return b.tso.pop(), true
	case PSO, RMO:
		q := b.queue(addr)
		if q == nil || q.len() == 0 {
			return Entry{}, false
		}
		if q.slice()[0].Epoch > b.minHeadEpoch() {
			return Entry{}, false // epoch barrier: older entries first
		}
		e := q.pop()
		if q.len() == 0 {
			b.removeFromOrder(addr)
		}
		b.count--
		if b.count == 0 {
			b.epoch = 0 // re-arm: epochs are relative to buffer content
		}
		return e, true
	}
	return Entry{}, false
}

func (b *Buffers) removeFromOrder(addr int64) {
	for i, a := range b.order {
		if a == addr {
			b.order = append(b.order[:i], b.order[i+1:]...)
			return
		}
	}
}

// PendingAddrs returns the addresses that currently have pending entries,
// in deterministic (oldest-buffer-first) order. Under TSO the result is
// the FIFO head's address only — TSO can only flush in FIFO order. Note
// that under per-address models a pending address is not necessarily
// flushable right now (epoch barriers); use FlushableAddrs to pick a
// flush target.
func (b *Buffers) PendingAddrs() []int64 {
	switch b.model {
	case SC:
	case TSO:
		if b.tso.len() == 0 {
			return nil
		}
		return []int64{b.tso.slice()[0].Addr}
	case PSO, RMO:
		out := make([]int64, len(b.order))
		copy(out, b.order)
		return out
	}
	return nil
}

// PendingAddrsView is PendingAddrs without the copy: the returned slice
// aliases internal state (the per-address insertion-order list, or a
// one-element scratch buffer under TSO) and is only valid until the next
// buffer mutation. Callers must not retain or modify it — it exists so
// the scheduler's flush choice and the interpreter's forced flushes are
// allocation-free on the per-step hot path.
func (b *Buffers) PendingAddrsView() []int64 {
	switch b.model {
	case SC:
	case TSO:
		if b.tso.len() == 0 {
			return nil
		}
		b.scratch[0] = b.tso.slice()[0].Addr
		return b.scratch[:1]
	case PSO, RMO:
		return b.order
	}
	return nil
}

// FlushableAddrsView returns the addresses FlushOldest would accept right
// now: the pending addresses whose oldest entry lies in the lowest pending
// epoch. Equal to PendingAddrsView when no epoch barrier divides the
// buffers. The slice aliases reusable scratch storage — same contract as
// PendingAddrsView. Non-empty whenever the buffers are non-empty (the
// lowest epoch always has a head), which is what keeps every schedule
// live.
func (b *Buffers) FlushableAddrsView() []int64 {
	switch b.model {
	case SC:
	case TSO:
		return b.PendingAddrsView()
	case PSO, RMO:
		if len(b.order) == 0 {
			return nil
		}
		min := b.minHeadEpoch()
		out := b.fscratch[:0]
		for _, a := range b.order {
			if b.queue(a).slice()[0].Epoch == min {
				out = append(out, a)
			}
		}
		b.fscratch = out[:0]
		return out
	}
	return nil
}

// FlushableAddrs is FlushableAddrsView with a copy (safe to retain).
func (b *Buffers) FlushableAddrs() []int64 {
	v := b.FlushableAddrsView()
	if len(v) == 0 {
		return nil
	}
	out := make([]int64, len(v))
	copy(out, v)
	return out
}

// PendingOther returns the pending entries whose address differs from
// exclude, oldest first. This realizes the premise of the instrumented
// STORE/LOAD/CAS rules of Semantics 2: the labels ly of stores sitting in
// *other* buffers of the same thread, any of which could be ordered before
// the current access to repair the execution.
func (b *Buffers) PendingOther(exclude int64) []Entry {
	return b.AppendPendingOther(nil, exclude)
}

// AppendPendingOther is PendingOther appending into dst (which may be a
// reused scratch slice), returning the extended slice. The interpreter's
// observation hook uses it to keep the per-access instrumented-semantics
// path allocation-free.
func (b *Buffers) AppendPendingOther(dst []Entry, exclude int64) []Entry {
	switch b.model {
	case SC:
	case TSO:
		for _, e := range b.tso.slice() {
			if e.Addr != exclude {
				dst = append(dst, e)
			}
		}
	case PSO, RMO:
		for _, a := range b.order {
			if a == exclude {
				continue
			}
			dst = append(dst, b.queue(a).slice()...)
		}
	}
	return dst
}

// All returns every pending entry (TSO: FIFO order; per-address models:
// grouped by address, oldest address group first). Used by tests and
// reporting.
func (b *Buffers) All() []Entry {
	return b.PendingOther(-1 << 62)
}

// Drain removes and returns all pending entries in an order they may
// legally commit: TSO pops its FIFO; per-address models repeatedly pop a
// flushable head (lowest epoch first, address groups in buffer-creation
// order within an epoch), which respects every store-store barrier. Used
// by tests and by batch drains.
func (b *Buffers) Drain() []Entry {
	var out []Entry
	switch b.model {
	case SC:
	case TSO:
		out = append(out, b.tso.slice()...)
		b.tso.reset()
		b.count = 0
	case PSO, RMO:
		for b.count > 0 {
			a := b.FlushableAddrsView()[0]
			e, _ := b.FlushOldest(a)
			out = append(out, e)
		}
	}
	b.epoch = 0
	return out
}
