package memmodel

import (
	"testing"

	"dfence/internal/ir"
)

// TestRelaxesMatrix pins the full reordering matrix for every model —
// the single source of truth every analysis dispatches on.
func TestRelaxesMatrix(t *testing.T) {
	type pair struct{ a, b ir.AccessClass }
	ld, st := ir.ClassLoad, ir.ClassStore
	want := map[Model]map[pair]bool{
		SC:  {},
		TSO: {{st, ld}: true},
		PSO: {{st, ld}: true, {st, st}: true},
		RMO: {{st, ld}: true, {st, st}: true, {ld, ld}: true, {ld, st}: true},
	}
	for _, m := range Models() {
		for _, a := range ir.AccessClasses() {
			for _, b := range ir.AccessClasses() {
				if got := m.Relaxes(a, b); got != want[m][pair{a, b}] {
					t.Errorf("%v.Relaxes(%v,%v) = %v, want %v", m, a, b, got, want[m][pair{a, b}])
				}
			}
		}
	}
	// The hierarchy is cumulative: each model's relaxations include its
	// predecessor's.
	ms := Models()
	for i := 1; i < len(ms); i++ {
		for _, a := range ir.AccessClasses() {
			for _, b := range ir.AccessClasses() {
				if ms[i-1].Relaxes(a, b) && !ms[i].Relaxes(a, b) {
					t.Errorf("%v relaxes (%v,%v) but weaker %v does not", ms[i-1], a, b, ms[i])
				}
			}
		}
	}
}

func TestCapabilityWrappers(t *testing.T) {
	for _, m := range Models() {
		if m.RelaxesStoreLoad() != m.Relaxes(ir.ClassStore, ir.ClassLoad) {
			t.Errorf("%v: RelaxesStoreLoad disagrees with matrix", m)
		}
		if m.RelaxesStoreStore() != m.Relaxes(ir.ClassStore, ir.ClassStore) {
			t.Errorf("%v: RelaxesStoreStore disagrees with matrix", m)
		}
		wantDefer := m.Relaxes(ir.ClassLoad, ir.ClassLoad) || m.Relaxes(ir.ClassLoad, ir.ClassStore)
		if m.DefersLoads() != wantDefer {
			t.Errorf("%v: DefersLoads = %v, want %v", m, m.DefersLoads(), wantDefer)
		}
		if !m.MultiCopyAtomic() {
			t.Errorf("%v: all store-buffer models are multi-copy atomic", m)
		}
	}
	if SC.DefersLoads() || TSO.DefersLoads() || PSO.DefersLoads() {
		t.Error("only RMO defers loads")
	}
	if !RMO.DefersLoads() {
		t.Error("RMO must defer loads")
	}
}

// TestFenceCost pins the cost lattice: on a model where a kind is useful,
// a full fence is at least as expensive as any other kind, and a kind
// covering nothing the model relaxes costs the nominal nop price.
func TestFenceCost(t *testing.T) {
	for _, m := range Models() {
		full := m.FenceCost(ir.FenceFull)
		for _, k := range ir.FenceKinds() {
			c := m.FenceCost(k)
			if c <= 0 {
				t.Errorf("%v.FenceCost(%v) = %d, want positive", m, k, c)
			}
			if c > full {
				t.Errorf("%v: %v costs %d > full fence %d", m, k, c, full)
			}
			useful := false
			for _, a := range ir.AccessClasses() {
				for _, b := range ir.AccessClasses() {
					if k.Orders(a, b) && m.Relaxes(a, b) {
						useful = true
					}
				}
			}
			if !useful && c != 1 {
				t.Errorf("%v: nop kind %v costs %d, want 1", m, k, c)
			}
			if useful && c == 1 {
				t.Errorf("%v: useful kind %v priced as a nop", m, k)
			}
		}
	}
	// Under SC every fence is a nop.
	for _, k := range ir.FenceKinds() {
		if SC.FenceCost(k) != 1 {
			t.Errorf("SC.FenceCost(%v) = %d, want 1", k, SC.FenceCost(k))
		}
	}
	// Under RMO the single-pair membars are strictly cheaper than the
	// one-way barriers, which are cheaper than st-ld, which is cheaper
	// than full — the lattice the synthesizer exploits.
	costs := []int{
		RMO.FenceCost(ir.FenceLoadLoad),
		RMO.FenceCost(ir.FenceAcquire),
		RMO.FenceCost(ir.FenceStoreLoad),
		RMO.FenceCost(ir.FenceFull),
	}
	for i := 1; i < len(costs); i++ {
		if costs[i-1] >= costs[i] {
			t.Errorf("RMO cost lattice not strict: %v", costs)
		}
	}
}

// TestBarrierEpochs exercises the store-store barrier machinery: entries
// behind a Barrier cannot flush until everything before it has drained.
func TestBarrierEpochs(t *testing.T) {
	b := New(PSO)
	b.Put(10, 1, 100)
	b.Put(20, 2, 101)
	b.Barrier()
	b.Put(30, 3, 102)

	// 30 is pending but not flushable: it sits behind the barrier.
	if got := b.PendingAddrs(); len(got) != 3 {
		t.Fatalf("PendingAddrs = %v, want 3 addrs", got)
	}
	fl := b.FlushableAddrs()
	if len(fl) != 2 || fl[0] != 10 || fl[1] != 20 {
		t.Fatalf("FlushableAddrs = %v, want [10 20]", fl)
	}
	if _, ok := b.FlushOldest(30); ok {
		t.Fatal("FlushOldest(30) succeeded across an epoch barrier")
	}
	if _, ok := b.FlushOldest(20); !ok {
		t.Fatal("FlushOldest(20) refused in the lowest epoch")
	}
	// 10 still blocks 30.
	if _, ok := b.FlushOldest(30); ok {
		t.Fatal("FlushOldest(30) succeeded with epoch-0 entry pending")
	}
	if _, ok := b.FlushOldest(10); !ok {
		t.Fatal("FlushOldest(10) refused")
	}
	// Barrier cleared: 30 is now flushable.
	fl = b.FlushableAddrs()
	if len(fl) != 1 || fl[0] != 30 {
		t.Fatalf("FlushableAddrs after drain = %v, want [30]", fl)
	}
	if e, ok := b.FlushOldest(30); !ok || e.Val != 3 {
		t.Fatalf("FlushOldest(30) = %+v,%v", e, ok)
	}
	if !b.Empty() {
		t.Error("not empty after full drain")
	}
}

// TestBarrierSameAddressStacking: two stores to the same address across a
// barrier stay FIFO within their queue, and the head epoch gates correctly
// when the same address spans epochs.
func TestBarrierSameAddress(t *testing.T) {
	b := New(PSO)
	b.Put(10, 1, 100)
	b.Barrier()
	b.Put(10, 2, 101)
	b.Put(20, 3, 102)
	// Address 10's head is epoch 0, so 10 is flushable; 20's head is epoch
	// 1, blocked by 10's epoch-0 head.
	fl := b.FlushableAddrs()
	if len(fl) != 1 || fl[0] != 10 {
		t.Fatalf("FlushableAddrs = %v, want [10]", fl)
	}
	if e, _ := b.FlushOldest(10); e.Val != 1 {
		t.Fatalf("flushed %+v, want val 1", e)
	}
	// Now both heads are epoch 1: both flushable.
	fl = b.FlushableAddrs()
	if len(fl) != 2 {
		t.Fatalf("FlushableAddrs = %v, want both", fl)
	}
}

func TestBarrierNoopCases(t *testing.T) {
	// TSO: Barrier is a no-op (single FIFO already ordered) — everything
	// stays flushable in FIFO order.
	tso := New(TSO)
	tso.Put(10, 1, 100)
	tso.Barrier()
	tso.Put(20, 2, 101)
	if e, ok := tso.FlushOldest(0); !ok || e.Val != 1 {
		t.Fatalf("TSO flush after Barrier = %+v,%v", e, ok)
	}
	if e, ok := tso.FlushOldest(0); !ok || e.Val != 2 {
		t.Fatalf("TSO flush after Barrier = %+v,%v", e, ok)
	}

	// Empty buffers: Barrier must not create an epoch (a later lone store
	// must be immediately flushable).
	pso := New(PSO)
	pso.Barrier()
	pso.Put(10, 1, 100)
	if _, ok := pso.FlushOldest(10); !ok {
		t.Error("store after Barrier-on-empty not flushable")
	}
}

// TestEpochRearm: once the buffers drain, the epoch counter re-arms so
// state keys stay canonical (two histories reaching "empty" are identical).
func TestEpochRearm(t *testing.T) {
	b := New(PSO)
	b.Put(10, 1, 100)
	b.Barrier()
	b.Put(20, 2, 101)
	for _, a := range []int64{10, 20} {
		if _, ok := b.FlushOldest(a); !ok {
			t.Fatalf("FlushOldest(%d) refused", a)
		}
	}
	b.Put(30, 3, 102)
	if got := b.All(); len(got) != 1 || got[0].Epoch != 0 {
		t.Errorf("epoch did not re-arm after drain: %+v", got)
	}
}

// TestDrainRespectsBarriers: Drain's commit order never lets a later-epoch
// entry precede an earlier-epoch entry.
func TestDrainRespectsBarriers(t *testing.T) {
	for _, m := range []Model{PSO, RMO} {
		b := New(m)
		b.Put(10, 1, 100)
		b.Put(20, 2, 101)
		b.Barrier()
		b.Put(30, 3, 102)
		b.Put(10, 4, 103)
		got := b.Drain()
		if len(got) != 4 {
			t.Fatalf("%v: Drain = %d entries, want 4", m, len(got))
		}
		lastEpoch := int32(0)
		for _, e := range got {
			if e.Epoch < lastEpoch {
				t.Errorf("%v: Drain order violated epochs: %+v", m, got)
			}
			lastEpoch = e.Epoch
		}
		if !b.Empty() {
			t.Errorf("%v: not empty after Drain", m)
		}
	}
}

// TestRMOBuffersBehaveLikePSO: the store side of RMO is PSO's per-address
// buffers; load deferral lives in the interpreter.
func TestRMOBuffersBehaveLikePSO(t *testing.T) {
	b := New(RMO)
	b.Put(10, 1, 100)
	b.Put(20, 2, 101)
	if e, ok := b.FlushOldest(20); !ok || e.Val != 2 {
		t.Fatalf("RMO FlushOldest(20) = %+v,%v (store-store reorder)", e, ok)
	}
	if !b.EmptyFor(20) || b.EmptyFor(10) {
		t.Error("RMO EmptyFor wrong")
	}
	if v, ok := b.Lookup(10); !ok || v != 1 {
		t.Errorf("RMO Lookup(10) = %d,%v", v, ok)
	}
}
