package staticanalysis

// Cost-aware static fence synthesis. Where core.Synthesize repairs a
// program by observing violating executions, Fix repairs it from the
// delay-set analysis alone: every delay pair [L ⊰ K] must be ordered by
// some fence placed directly after L (a fence there dominates every
// L → K path — L is a load or store, so it has a single successor), and
// the choice of fence kinds is a weighted hitting-set problem over the
// per-model fence cost table (memmodel.Model.FenceCost). Subset-minimal
// hitting sets are enumerated through the same SAT core the dynamic loop
// uses (sat.MinimalModels on a monotone positive CNF), and the cheapest
// one wins — which is not always the smallest: under RMO, a ld-ld plus a
// st-st fence (cost 2+2) beats one full fence (cost 8) when a location
// has both load- and store-class delays.
//
// The result is sound by construction — each clause only admits kinds
// whose insertion kills the pair under the same rules Analyze applies —
// and Fix re-analyses the fenced clone as a defense-in-depth gate.

import (
	"fmt"
	"sort"
	"strings"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/sat"
)

// Placement is one fence chosen by the static synthesis: a fence of Kind
// inserted directly after the instruction labelled After.
type Placement struct {
	After ir.Label
	Kind  ir.FenceKind
	// Cost is the model's cost of this fence kind at synthesis time.
	Cost int
	// Func names the containing function, for reports.
	Func string
}

func (p Placement) String() string {
	return fmt.Sprintf("%v after L%d in %s (cost %d)", p.Kind, p.After, p.Func, p.Cost)
}

// FixResult is the outcome of one static synthesis.
type FixResult struct {
	// Analysis is the delay-set analysis of the input program.
	Analysis *Result
	// Placements is the chosen repair, sorted by (After, kind order).
	// Empty iff the program is already robust.
	Placements []Placement
	// TotalCost is the summed cost of Placements.
	TotalCost int
	// BaselineCost is the cost of the trivial repair — one full fence
	// after every distinct delay L. TotalCost never exceeds it.
	BaselineCost int
	// SolverStats records the hitting-set enumeration's effort.
	SolverStats sat.Stats
	// Truncated reports that the solver budget tripped: the enumeration
	// may have missed cheaper hitting sets.
	Truncated bool
	// Baseline reports that the full-fence baseline was used because the
	// truncated enumeration produced nothing cheaper.
	Baseline bool
}

// Report renders the synthesis human-readably — the output of
// `dfence analyze -fix`.
func (fr *FixResult) Report(p *ir.Program) string {
	var b strings.Builder
	if fr.Analysis.Robust() {
		b.WriteString("static fix: program already robust, no fences needed\n")
		return b.String()
	}
	fmt.Fprintf(&b, "static fix: %d fence(s), total cost %d (all-full-fence baseline %d)\n",
		len(fr.Placements), fr.TotalCost, fr.BaselineCost)
	for _, pl := range fr.Placements {
		fmt.Fprintf(&b, "  %v after %s\n", pl.Kind, fr.Analysis.describeAccess(p, pl.After))
	}
	if fr.Truncated {
		b.WriteString("solver enumeration truncated by budget (placement best-effort, not provably cheapest)\n")
	}
	if fr.Baseline {
		b.WriteString("fell back to the full-fence baseline\n")
	}
	return b.String()
}

// CoveringKinds returns the fence kinds that, inserted between a pending
// class-a access and a later instruction of opcode kop (OpLoad, OpStore,
// or OpCas), restore their order per the analysis's kill rules: the
// declared coverage Orders(a, class(kop)), except that a CAS K of a
// pending store requires a physically draining kind — the CAS write
// bypasses the store buffers, so an epoch barrier does not order it (see
// killsBeforeCas). Returned in FenceKinds order; never empty, since
// FenceFull both orders every pair and drains.
func CoveringKinds(a ir.AccessClass, kop ir.Op) []ir.FenceKind {
	b, _ := ir.ClassOf(kop)
	var out []ir.FenceKind
	for _, k := range ir.FenceKinds() {
		if a == ir.ClassStore && kop == ir.OpCas {
			if k.DrainsStores() {
				out = append(out, k)
			}
			continue
		}
		if k.Orders(a, b) {
			out = append(out, k)
		}
	}
	return out
}

// fixSolverBudget bounds the hitting-set enumeration. Delay sets are
// litmus-sized (tens of pairs), so the cap exists as a backstop, not a
// tuning knob; hitting it degrades to the baseline repair.
var fixSolverBudget = sat.Budget{MaxModels: 4096}

// Fix computes a minimum-cost static fence placement for prog under
// model: a set of fences, each directly after a delay pair's L, that
// kills every delay pair, minimizing the summed per-model fence cost.
// The placement is deterministic — the same program and model always
// yield the identical result — and is verified by re-analysing a fenced
// clone before returning. prog itself is not modified.
func Fix(prog *ir.Program, model memmodel.Model) (*FixResult, error) {
	res, err := Analyze(prog, model)
	if err != nil {
		return nil, err
	}
	fr := &FixResult{Analysis: res}
	if res.Robust() {
		return fr, nil
	}

	// One variable per (L, kind) that covers at least one delay pair at
	// L; one clause per delay pair. Delays are sorted and FenceKinds is
	// fixed, so variable numbering — and with it the solver's model
	// order — is deterministic.
	type pvar struct {
		l    ir.Label
		kind ir.FenceKind
	}
	var vars []pvar
	varIdx := make(map[pvar]int)
	clauses := make([][]sat.Lit, 0, len(res.Delays))
	seenL := make(map[ir.Label]bool)
	var ls []ir.Label
	for _, d := range res.Delays {
		lin, kin := prog.InstrAt(d.L), prog.InstrAt(d.K)
		if lin == nil || kin == nil {
			return nil, fmt.Errorf("staticanalysis: delay pair %v references unknown labels", d)
		}
		la, ok := ir.ClassOf(lin.Op)
		if !ok {
			return nil, fmt.Errorf("staticanalysis: delay L%d is not a shared access", d.L)
		}
		if !seenL[d.L] {
			seenL[d.L] = true
			ls = append(ls, d.L)
		}
		var cl []sat.Lit
		for _, k := range CoveringKinds(la, kin.Op) {
			v := pvar{d.L, k}
			idx, ok := varIdx[v]
			if !ok {
				idx = len(vars) + 1 // SAT variables are 1-based
				varIdx[v] = idx
				vars = append(vars, v)
			}
			cl = append(cl, sat.Lit(idx))
		}
		clauses = append(clauses, cl)
	}
	fr.BaselineCost = len(ls) * model.FenceCost(ir.FenceFull)

	models, truncated := sat.MinimalModelsStats(len(vars), clauses, fixSolverBudget, &fr.SolverStats)
	fr.Truncated = truncated

	// Pick the cheapest hitting set; the enumeration order (size, then
	// lexicographic) breaks cost ties deterministically.
	best := -1
	bestCost := 0
	for i, m := range models {
		c := 0
		for _, v := range m {
			c += model.FenceCost(vars[v-1].kind)
		}
		if best < 0 || c < bestCost {
			best, bestCost = i, c
		}
	}
	if best < 0 || bestCost > fr.BaselineCost {
		// Only reachable when truncation cut the enumeration before any
		// subset of the baseline solution appeared (every superset of a
		// hitting set contains a minimal one no costlier than itself).
		fr.Baseline = true
		for _, l := range ls {
			fr.Placements = append(fr.Placements, Placement{
				After: l, Kind: ir.FenceFull,
				Cost: model.FenceCost(ir.FenceFull),
				Func: prog.FuncOf(l).Name,
			})
		}
		fr.TotalCost = fr.BaselineCost
	} else {
		for _, v := range models[best] {
			pv := vars[v-1]
			fr.Placements = append(fr.Placements, Placement{
				After: pv.l, Kind: pv.kind,
				Cost: model.FenceCost(pv.kind),
				Func: prog.FuncOf(pv.l).Name,
			})
		}
		fr.TotalCost = bestCost
	}
	kindOrder := make(map[ir.FenceKind]int, len(ir.FenceKinds()))
	for i, k := range ir.FenceKinds() {
		kindOrder[k] = i
	}
	sort.Slice(fr.Placements, func(i, j int) bool {
		if fr.Placements[i].After != fr.Placements[j].After {
			return fr.Placements[i].After < fr.Placements[j].After
		}
		return kindOrder[fr.Placements[i].Kind] < kindOrder[fr.Placements[j].Kind]
	})

	// Defense-in-depth: the fenced program must verify and re-analyse as
	// robust. Fences only add kills, so candidates shrink and the hit
	// pairs vanish; a failure here is an internal invariant break.
	check := prog.Clone()
	if err := Apply(check, fr.Placements); err != nil {
		return nil, err
	}
	re, err := Analyze(check, model)
	if err != nil {
		return nil, err
	}
	if !re.Robust() {
		return nil, fmt.Errorf("staticanalysis: fix left %d delay pair(s) unordered (internal error): %v",
			len(re.Delays), re.Delays)
	}
	return fr, nil
}

// Apply inserts the placements into prog and verifies the result.
// Placements sharing an After label are inserted in reverse so their
// listed order is the resulting program order. Unlike the dynamic
// enforcement path, an existing adjacent fence does not suppress
// insertion: the placement's kind was chosen against the analysis of
// this exact program, which already accounted for existing fences.
func Apply(prog *ir.Program, placements []Placement) error {
	for i := len(placements) - 1; i >= 0; i-- {
		pl := placements[i]
		if _, err := prog.InsertFenceAfter(pl.After, pl.Kind); err != nil {
			return err
		}
	}
	if err := Verify(prog); err != nil {
		return fmt.Errorf("staticanalysis: program failed verification after static fix: %w", err)
	}
	return nil
}

// CheckNonRedundant verifies the placement's subset-minimality
// operationally: dropping any single placement must leave the program
// non-robust. It is meaningful only for solver-chosen placements —
// baseline fallbacks (fr.Baseline) carry no minimality claim, and the
// check reports them as such rather than failing.
func CheckNonRedundant(prog *ir.Program, model memmodel.Model, fr *FixResult) error {
	if fr.Baseline {
		return nil
	}
	for i := range fr.Placements {
		rest := make([]Placement, 0, len(fr.Placements)-1)
		rest = append(rest, fr.Placements[:i]...)
		rest = append(rest, fr.Placements[i+1:]...)
		trial := prog.Clone()
		if err := Apply(trial, rest); err != nil {
			return err
		}
		re, err := Analyze(trial, model)
		if err != nil {
			return err
		}
		if re.Robust() {
			return fmt.Errorf("staticanalysis: placement %v is redundant — program robust without it", fr.Placements[i])
		}
	}
	return nil
}
