package staticanalysis

// This file implements the flow-insensitive address analysis: which
// globals and allocation sites can each register point to, which
// globals/allocations escape (their address flows into memory, a call, a
// fork, or a return), and when a register is *exactly* the address of one
// scalar global. The delay-set analysis uses the answers to build
// conflict edges and to discard same-location pairs the instrumented
// semantics can never report, and the verifier's ThreadLocal lint uses
// them to validate front-end claims.

import (
	"sort"

	"dfence/internal/ir"
)

// aval is the abstract value of one register: the set of base addresses it
// may hold. Plain integers contribute nothing — a register fed only by
// constants has an empty, non-unknown aval.
type aval struct {
	globals map[string]bool   // named globals whose base address may flow here
	allocs  map[ir.Label]bool // OpAlloc sites whose result may flow here
	unknown bool              // value from memory, a parameter, or a call/fork/self result
}

func (v *aval) addGlobal(name string) bool {
	if v.globals == nil {
		v.globals = make(map[string]bool)
	}
	if v.globals[name] {
		return false
	}
	v.globals[name] = true
	return true
}

func (v *aval) addAlloc(site ir.Label) bool {
	if v.allocs == nil {
		v.allocs = make(map[ir.Label]bool)
	}
	if v.allocs[site] {
		return false
	}
	v.allocs[site] = true
	return true
}

// union merges o into v and reports whether v changed.
func (v *aval) union(o *aval) bool {
	changed := false
	for g := range o.globals {
		changed = v.addGlobal(g) || changed
	}
	for a := range o.allocs {
		changed = v.addAlloc(a) || changed
	}
	if o.unknown && !v.unknown {
		v.unknown = true
		changed = true
	}
	return changed
}

// addrSets computes, to a fixpoint, the abstract address value of every
// register of f. Parameters and values read from memory or returned from
// calls are unknown; arithmetic propagates both operands' sets (pointer
// arithmetic such as base+index keeps the base).
func addrSets(f *ir.Func) []aval {
	vals := make([]aval, f.NumRegs)
	for r := 0; r < f.NumParams; r++ {
		vals[r].unknown = true
	}
	for changed := true; changed; {
		changed = false
		for i := range f.Code {
			in := &f.Code[i]
			switch in.Op {
			case ir.OpGlobal:
				changed = vals[in.Dst].addGlobal(in.Func) || changed
			case ir.OpAlloc:
				changed = vals[in.Dst].addAlloc(in.Label) || changed
			case ir.OpMov:
				changed = vals[in.Dst].union(&vals[in.A]) || changed
			case ir.OpBin:
				changed = vals[in.Dst].union(&vals[in.A]) || changed
				changed = vals[in.Dst].union(&vals[in.B]) || changed
			case ir.OpNeg, ir.OpNot:
				changed = vals[in.Dst].union(&vals[in.A]) || changed
			case ir.OpLoad, ir.OpSelf, ir.OpFork:
				if !vals[in.Dst].unknown {
					vals[in.Dst].unknown = true
					changed = true
				}
			case ir.OpCall:
				if in.Dst != ir.NoReg && !vals[in.Dst].unknown {
					vals[in.Dst].unknown = true
					changed = true
				}
			}
			// OpConst and OpCas results are plain integers: no contribution.
		}
	}
	return vals
}

// exactGlobals reports, per register, the global name g such that every
// definition of the register is `&g` (OpGlobal g) — "" otherwise. Such a
// register's runtime value is exactly the global's base address, which is
// what lets the candidate enumeration discard same-scalar pairs: the
// instrumented semantics exclude same-address pending stores
// (memmodel.PendingOther).
func exactGlobals(f *ir.Func) []string {
	const conflict = "\x00"
	ex := make([]string, f.NumRegs)
	for r := 0; r < f.NumParams; r++ {
		ex[r] = conflict
	}
	for i := range f.Code {
		in := &f.Code[i]
		d := in.Def()
		if d == ir.NoReg {
			continue
		}
		if in.Op == ir.OpGlobal {
			switch ex[d] {
			case "":
				ex[d] = in.Func
			case in.Func:
			default:
				ex[d] = conflict
			}
			continue
		}
		ex[d] = conflict
	}
	for r := range ex {
		if ex[r] == conflict {
			ex[r] = ""
		}
	}
	return ex
}

// escapeInfo records which addresses may be reachable from memory, other
// threads' arguments, or return values — the values an *unknown* register
// may hold. An address escapes when it is used as anything other than the
// address operand of a load/store/CAS or an input to pure arithmetic:
// stored as a value, passed to a call or fork, returned, or used as a CAS
// compare/swap value.
type escapeInfo struct {
	globals map[string]bool
	allocs  map[ir.Label]bool
}

// computeEscapes runs the per-function address analysis over the whole
// program and collects every global and allocation site whose address
// reaches an escaping use.
func computeEscapes(p *ir.Program) *escapeInfo {
	esc := &escapeInfo{globals: make(map[string]bool), allocs: make(map[ir.Label]bool)}
	for _, name := range p.FuncNames() {
		f := p.Funcs[name]
		vals := addrSets(f)
		leak := func(r ir.Reg) {
			if r == ir.NoReg || int(r) >= len(vals) {
				return
			}
			v := &vals[r]
			for g := range v.globals {
				esc.globals[g] = true
			}
			for a := range v.allocs {
				esc.allocs[a] = true
			}
		}
		for i := range f.Code {
			in := &f.Code[i]
			switch in.Op {
			case ir.OpStore:
				leak(in.B) // address written to memory
			case ir.OpCas:
				leak(in.B)
				leak(in.C)
			case ir.OpCall, ir.OpFork:
				for _, a := range in.Args {
					leak(a)
				}
			case ir.OpRet:
				if in.HasVal {
					leak(in.A)
				}
			}
		}
	}
	return esc
}

// mayAlias reports whether two accesses with the given abstract address
// values can touch the same memory word.
//
// The unknown element stands for "some address that escaped into memory,
// an argument, or a return value": it aliases escaped globals, escaped
// allocations, and other unknowns, but not addresses that provably never
// leave their defining thread. (A program that manufactures an address
// from an unrelated integer falls outside this contract; the corpus never
// does, and candidate enumeration does not rely on aliasing at all.)
// Distinct allocation sites never alias — every OpAlloc execution returns
// a fresh unit — and the same site in two different threads allocated two
// different units, so alloc/alloc pairs contribute nothing.
func mayAlias(a, b *aval, esc *escapeInfo) bool {
	for g := range a.globals {
		if b.globals[g] {
			return true
		}
	}
	if a.unknown && b.unknown {
		return true
	}
	if a.unknown && escapes(b, esc) {
		return true
	}
	if b.unknown && escapes(a, esc) {
		return true
	}
	return false
}

// escapes reports whether any address in v has escaped.
func escapes(v *aval, esc *escapeInfo) bool {
	for g := range v.globals {
		if esc.globals[g] {
			return true
		}
	}
	for a := range v.allocs {
		if esc.allocs[a] {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
