package staticanalysis_test

// Soundness cross-check: for every program in the repository's corpora
// (the litmus suite, the embedded benchmarks, and the quickstart mailbox)
// and every relaxed model, the static candidate set must contain every
// predicate the instrumented dynamic semantics actually propose. A
// missing pair would mean the pruning in core.Synthesize could silently
// discard a necessary repair.

import (
	"testing"

	"dfence/internal/ir"
	"dfence/internal/lang"
	"dfence/internal/litmus"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/sched"
	"dfence/internal/staticanalysis"
	"dfence/internal/synth"
)

const mailboxSrc = `
int data = 0;
int flag = 0;
void producer() {
  data = 42;
  flag = 1;
}
void consumer() {
  while (!flag) { }
  assert(data == 42);
}
int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1;
  join t2;
  return 0;
}
`

// collectDynamic unions the predicates the collector reports over runs
// pseudo-random executions of prog under model.
func collectDynamic(t *testing.T, prog *ir.Program, model memmodel.Model, runs int) map[synth.Predicate]bool {
	t.Helper()
	seen := make(map[synth.Predicate]bool)
	col := synth.NewCollector(model)
	for i := 0; i < runs; i++ {
		opts := sched.DefaultOptions(int64(1000 + i))
		if model == memmodel.TSO {
			opts.FlushProb = 0.1
		}
		sched.Run(prog, model, col, opts)
		for _, p := range col.TakeDisjunction() {
			seen[p] = true
		}
	}
	return seen
}

// checkSuperset asserts the static candidate set covers every dynamically
// observed predicate and that the delay set stays within the candidates.
// It returns the number of dynamic predicates observed, so suite-level
// callers can assert the check was not vacuous.
func checkSuperset(t *testing.T, name string, prog *ir.Program, model memmodel.Model, runs int) int {
	t.Helper()
	res, err := staticanalysis.Analyze(prog, model)
	if err != nil {
		t.Errorf("%s/%v: Analyze failed: %v", name, model, err)
		return 0
	}
	cand := res.CandidateSet()
	dyn := collectDynamic(t, prog, model, runs)
	for p := range dyn {
		if !cand[staticanalysis.Pair{L: p.L, K: p.K}] {
			t.Errorf("%s/%v: dynamic engine proposed %v but it is missing from the static candidate set %v",
				name, model, p, res.Candidates)
		}
	}
	for _, d := range res.Delays {
		if !cand[d] {
			t.Errorf("%s/%v: delay %v is not a candidate — delays must refine candidates", name, model, d)
		}
	}
	return len(dyn)
}

func TestCrossCheckLitmus(t *testing.T) {
	total := 0
	for _, test := range litmus.All() {
		for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO, memmodel.RMO} {
			test, model := test, model
			t.Run(test.Name+"/"+model.String(), func(t *testing.T) {
				total += checkSuperset(t, test.Name, test.Program(), model, 150)
			})
		}
	}
	if total == 0 {
		t.Error("no dynamic predicates were collected across the litmus suite — the cross-check is vacuous (observer wiring broken?)")
	}
}

func TestCrossCheckBenchmarks(t *testing.T) {
	runs := 40
	if testing.Short() {
		runs = 10
	}
	for _, b := range progs.All() {
		for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO, memmodel.RMO} {
			t.Run(b.Name+"/"+model.String(), func(t *testing.T) {
				checkSuperset(t, b.Name, b.Program(), model, runs)
			})
		}
	}
}

func TestCrossCheckMailbox(t *testing.T) {
	prog, err := lang.Compile(mailboxSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO, memmodel.RMO} {
		checkSuperset(t, "mailbox", prog, model, 200)
	}
}
