// Package staticanalysis provides the static companion passes to DFENCE's
// dynamic synthesis loop:
//
//   - an IR verifier (Verify): structural validation plus CFG-based
//     def-before-use checking and a ThreadLocal soundness lint, run after
//     front-end lowering and after every fence insertion or removal so a
//     program mutation can never silently corrupt the IR;
//   - a delay-set analysis (Analyze): a Shasha–Snir-style static
//     over-approximation of the ordering predicates the dynamic engine
//     can ever propose, and of the critical cycles that make them matter
//     (in the spirit of Alglave et al., "Don't sit on the fence");
//   - the pruning interface core.Synthesize consults to shrink the repair
//     formula and to short-circuit statically robust programs.
//
// The package depends only on internal/ir and internal/memmodel, so the
// front end (internal/lang), the repair machinery (internal/synth), and
// the synthesis loop (internal/core) can all call into it.
package staticanalysis

import (
	"fmt"
	"strings"

	"dfence/internal/ir"
)

// Diagnostic is one verifier finding, attributed to an instruction when
// possible (Label == ir.NoLabel for program-level findings).
type Diagnostic struct {
	Func  string
	Label ir.Label
	Msg   string
}

func (d Diagnostic) String() string {
	switch {
	case d.Func == "":
		return d.Msg
	case d.Label == ir.NoLabel:
		return fmt.Sprintf("%s: %s", d.Func, d.Msg)
	}
	return fmt.Sprintf("%s: L%d: %s", d.Func, d.Label, d.Msg)
}

// VerifyError aggregates every diagnostic of a failed verification.
type VerifyError struct {
	Diags []Diagnostic
}

func (e *VerifyError) Error() string {
	if len(e.Diags) == 1 {
		return "staticanalysis: " + e.Diags[0].String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "staticanalysis: %d verifier errors:", len(e.Diags))
	for _, d := range e.Diags {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	return b.String()
}

// Verify checks a program's well-formedness beyond ir.Program.Validate:
// on top of the structural checks (unique labels, in-function branch
// targets, register bounds, NoLabel/NoReg misuse, defined callees) it
// verifies that every register is defined on every path before it is
// used, that OpGlobal immediates agree with the linked global addresses
// (catching a missed re-Link after mutation), and that every access the
// front end marked ThreadLocal provably cannot reach a shared global.
// It returns nil or a *VerifyError listing every finding.
func Verify(p *ir.Program) error {
	if err := p.Validate(); err != nil {
		// Structure is broken; the CFG passes below assume it is not.
		return &VerifyError{Diags: []Diagnostic{{Label: ir.NoLabel, Msg: err.Error()}}}
	}
	var diags []Diagnostic
	for _, name := range p.FuncNames() {
		f := p.Funcs[name]
		diags = append(diags, checkGlobalRefs(p, f)...)
		diags = append(diags, checkDefBeforeUse(f)...)
		diags = append(diags, lintThreadLocal(p, f)...)
	}
	if len(diags) > 0 {
		return &VerifyError{Diags: diags}
	}
	return nil
}

// checkGlobalRefs flags OpGlobal instructions whose resolved immediate
// does not match the global's linked address — the signature of a mutation
// that added or reordered globals without calling Program.Link again.
func checkGlobalRefs(p *ir.Program, f *ir.Func) []Diagnostic {
	var diags []Diagnostic
	for i := range f.Code {
		in := &f.Code[i]
		if in.Op != ir.OpGlobal {
			continue
		}
		g := p.Global(in.Func)
		if g == nil {
			diags = append(diags, Diagnostic{Func: f.Name, Label: in.Label,
				Msg: fmt.Sprintf("references unknown global %q", in.Func)})
			continue
		}
		if in.Imm != g.Addr {
			diags = append(diags, Diagnostic{Func: f.Name, Label: in.Label,
				Msg: fmt.Sprintf("stale link: &%s resolved to %d but the global is at %d (missing Program.Link?)", in.Func, in.Imm, g.Addr)})
		}
	}
	return diags
}

// regset is a bitset over a function's registers.
type regset []uint64

func newRegset(n int) regset { return make(regset, (n+63)/64) }

func (s regset) has(r ir.Reg) bool { return s[r/64]&(1<<(uint(r)%64)) != 0 }
func (s regset) add(r ir.Reg)      { s[r/64] |= 1 << (uint(r) % 64) }
func (s regset) remove(r ir.Reg)   { s[r/64] &^= 1 << (uint(r) % 64) }

func (s regset) fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

func (s regset) copyFrom(t regset) {
	copy(s, t)
}

// intersect ands t into s and reports whether s changed.
func (s regset) intersect(t regset) bool {
	changed := false
	for i := range s {
		n := s[i] & t[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// succIndexes returns the in-function successor indices of instruction i.
// Calls fall through (the callee returns); rets have no successor.
func succIndexes(f *ir.Func, i int) []int {
	in := &f.Code[i]
	switch in.Op {
	case ir.OpBr:
		return []int{f.IndexOf(in.Target)}
	case ir.OpCondBr:
		return []int{f.IndexOf(in.Target), f.IndexOf(in.Target2)}
	case ir.OpRet:
		return nil
	}
	if i+1 < len(f.Code) {
		return []int{i + 1}
	}
	return nil
}

// checkDefBeforeUse runs a must-be-defined forward dataflow over the
// function's CFG (meet = intersection over predecessors; entry starts with
// the parameter registers; unreachable code starts TOP so it never
// produces spurious findings) and flags every register read before any
// defining path reaches it.
func checkDefBeforeUse(f *ir.Func) []Diagnostic {
	if f.NumRegs == 0 {
		return nil
	}
	n := len(f.Code)
	in := make([]regset, n)
	out := make([]regset, n)
	for i := 0; i < n; i++ {
		in[i] = newRegset(f.NumRegs)
		out[i] = newRegset(f.NumRegs)
		in[i].fill()
		out[i].fill()
	}
	// The entry fact is exactly the parameter registers; everything else
	// starts TOP (unreachable code then never produces spurious findings).
	// Meet is intersection, so facts only ever shrink and the uniform
	// in[s] ∩= out[i] propagation is correct even for branches back to the
	// entry instruction.
	entry := newRegset(f.NumRegs)
	entry.fill()
	for r := f.NumParams; r < f.NumRegs; r++ {
		entry.remove(ir.Reg(r))
	}
	in[0].copyFrom(entry)

	// Iterate to fixpoint; the programs are tiny, so a simple round-robin
	// sweep converges quickly.
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			out[i].copyFrom(in[i])
			if d := f.Code[i].Def(); d != ir.NoReg {
				out[i].add(d)
			}
			for _, s := range succIndexes(f, i) {
				if in[s].intersect(out[i]) {
					changed = true
				}
			}
		}
	}

	var diags []Diagnostic
	var uses []ir.Reg
	for i := 0; i < n; i++ {
		uses = f.Code[i].Uses(uses[:0])
		for _, r := range uses {
			if r == ir.NoReg || int(r) >= f.NumRegs {
				continue // Validate already reported it
			}
			if !in[i].has(r) {
				diags = append(diags, Diagnostic{Func: f.Name, Label: f.Code[i].Label,
					Msg: fmt.Sprintf("register r%d may be used before it is defined", r)})
			}
		}
	}
	return diags
}

// lintThreadLocal verifies the front end's ThreadLocal claims: an access
// marked ThreadLocal bypasses the store buffers and is invisible to the
// demonic scheduler and the predicate collector, so a mis-marked access
// silently removes behaviours from the search. The lint requires the
// address to be derived exclusively from allocations — any flow from a
// global's address, an unknown source (load, parameter, call result), or
// a plain integer (which could numerically hit the global segment) is an
// error.
func lintThreadLocal(p *ir.Program, f *ir.Func) []Diagnostic {
	var marked []int
	for i := range f.Code {
		in := &f.Code[i]
		if in.ThreadLocal && (in.Op == ir.OpLoad || in.Op == ir.OpStore) {
			marked = append(marked, i)
		}
	}
	if len(marked) == 0 {
		return nil
	}
	vals := addrSets(f)
	var diags []Diagnostic
	for _, i := range marked {
		in := &f.Code[i]
		v := vals[in.A]
		switch {
		case v.unknown:
			diags = append(diags, Diagnostic{Func: f.Name, Label: in.Label,
				Msg: "ThreadLocal access through an unknown address (load/param/call result) may reach a shared global"})
		case len(v.globals) > 0:
			diags = append(diags, Diagnostic{Func: f.Name, Label: in.Label,
				Msg: fmt.Sprintf("ThreadLocal access may target shared global(s) %s", strings.Join(sortedKeys(v.globals), ", "))})
		case len(v.allocs) == 0:
			diags = append(diags, Diagnostic{Func: f.Name, Label: in.Label,
				Msg: "ThreadLocal access through a plain integer address may numerically reach the global segment"})
		}
	}
	return diags
}
