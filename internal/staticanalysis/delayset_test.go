package staticanalysis_test

// External test package: it compiles mini-C sources with internal/lang,
// which itself calls into staticanalysis — an in-package test would cycle.

import (
	"testing"

	"dfence/internal/ir"
	"dfence/internal/lang"
	"dfence/internal/memmodel"
	"dfence/internal/staticanalysis"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func analyze(t *testing.T, src string, model memmodel.Model) *staticanalysis.Result {
	t.Helper()
	res, err := staticanalysis.Analyze(compile(t, src), model)
	if err != nil {
		t.Fatalf("Analyze(%v): %v", model, err)
	}
	return res
}

// accessLabel finds the nth (0-based) shared access of the given op in
// function fn whose address register was last defined as &global.
func accessLabel(t *testing.T, p *ir.Program, fn string, op ir.Op, global string, nth int) ir.Label {
	t.Helper()
	f := p.Funcs[fn]
	if f == nil {
		t.Fatalf("no function %q", fn)
	}
	regGlobal := make(map[ir.Reg]string)
	count := 0
	for i := range f.Code {
		in := &f.Code[i]
		if in.Op == ir.OpGlobal {
			regGlobal[in.Dst] = in.Func
			continue
		}
		if in.Op == op && regGlobal[in.A] == global {
			if count == nth {
				return in.Label
			}
			count++
		}
	}
	t.Fatalf("no %v of global %q (occurrence %d) in %s", op, global, nth, fn)
	return ir.NoLabel
}

const sbSrc = `
int x = 0; int y = 0;
void w1() { x = 1; print(y); }
void w2() { y = 1; print(x); }
int main() {
  int t1 = fork w1();
  int t2 = fork w2();
  join t1; join t2;
  return 0;
}
`

const mpSrc = `
int data = 0; int flag = 0;
void producer() { data = 42; flag = 1; }
void consumer() {
  while (!flag) { }
  print(data);
}
int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1; join t2;
  return 0;
}
`

// SB under TSO: each writer's store may be delayed past its own load of
// the other variable, and both reorderings sit on the classic critical
// cycle — the exact pairs the dynamic engine proposes.
func TestAnalyzeSBTSO(t *testing.T) {
	p := compile(t, sbSrc)
	res, err := staticanalysis.Analyze(p, memmodel.TSO)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust() {
		t.Fatal("SB reported robust under TSO")
	}
	want := []staticanalysis.Pair{
		{L: accessLabel(t, p, "w1", ir.OpStore, "x", 0), K: accessLabel(t, p, "w1", ir.OpLoad, "y", 0)},
		{L: accessLabel(t, p, "w2", ir.OpStore, "y", 0), K: accessLabel(t, p, "w2", ir.OpLoad, "x", 0)},
	}
	delays := res.DelaySet()
	for _, w := range want {
		if !delays[w] {
			t.Errorf("delay set %v is missing %v", res.Delays, w)
		}
		if len(res.Cycles[w]) < 3 {
			t.Errorf("delay %v has no witness cycle: %v", w, res.Cycles[w])
		}
	}
	if len(res.Delays) != len(want) {
		t.Errorf("got %d delays %v, want %d", len(res.Delays), res.Delays, len(want))
	}
}

// MP under TSO is robust: the producer never loads after its stores, so
// no store→load reordering exists to delay.
func TestAnalyzeMPTSORobust(t *testing.T) {
	res := analyze(t, mpSrc, memmodel.TSO)
	if !res.Robust() {
		t.Fatalf("MP not robust under TSO: delays %v", res.Delays)
	}
	if len(res.Candidates) != 0 {
		t.Fatalf("MP should have no TSO candidates, got %v", res.Candidates)
	}
}

// MP under PSO: the data store can be delayed past the flag store, and the
// consumer's flag-spin/data-read closes the cycle.
func TestAnalyzeMPPSODelay(t *testing.T) {
	p := compile(t, mpSrc)
	res, err := staticanalysis.Analyze(p, memmodel.PSO)
	if err != nil {
		t.Fatal(err)
	}
	want := staticanalysis.Pair{
		L: accessLabel(t, p, "producer", ir.OpStore, "data", 0),
		K: accessLabel(t, p, "producer", ir.OpStore, "flag", 0),
	}
	if !res.DelaySet()[want] {
		t.Fatalf("delay set %v is missing %v", res.Delays, want)
	}
}

// A fully fenced SB is statically robust under every model: the fences
// kill every pending path, so no candidates survive.
func TestAnalyzeFencedSBRobust(t *testing.T) {
	src := `
int x = 0; int y = 0;
void w1() { x = 1; fence_sl(); print(y); }
void w2() { y = 1; fence_sl(); print(x); }
int main() {
  int t1 = fork w1();
  int t2 = fork w2();
  join t1; join t2;
  return 0;
}
`
	for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
		res := analyze(t, src, model)
		if !res.Robust() {
			t.Errorf("fenced SB not robust under %v: delays %v", model, res.Delays)
		}
		if len(res.Candidates) != 0 {
			t.Errorf("fenced SB should have no %v candidates, got %v", model, res.Candidates)
		}
	}
}

// A single-threaded program has no conflict edges, so even programs full
// of store→load pairs are robust.
func TestAnalyzeSingleThreadedRobust(t *testing.T) {
	src := `
int x = 0; int y = 0;
int main() {
  x = 1;
  y = 2;
  print(x);
  print(y);
  return 0;
}
`
	for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
		res := analyze(t, src, model)
		if !res.Robust() {
			t.Errorf("single-threaded program not robust under %v: delays %v", model, res.Delays)
		}
		if res.Conflicts != 0 {
			t.Errorf("single-threaded program has %d conflict edges", res.Conflicts)
		}
	}
}

// Two stores to the same scalar global never form a candidate: the
// instrumented semantics exclude same-address pending stores, so the
// dynamic engine could never propose the pair (coherence handles it).
func TestAnalyzeSameScalarExcluded(t *testing.T) {
	src := `
int x = 0;
void w() { x = 1; x = 2; }
int main() {
  int t1 = fork w();
  int t2 = fork w();
  join t1; join t2;
  return 0;
}
`
	res := analyze(t, src, memmodel.PSO)
	if len(res.Candidates) != 0 {
		t.Fatalf("same-scalar store pair leaked into candidates: %v", res.Candidates)
	}
	if !res.Robust() {
		t.Fatalf("CoWW-style program not robust under PSO: %v", res.Delays)
	}
}

// Under SC nothing is relaxed, so even SB has no candidates at all.
func TestAnalyzeSCEmpty(t *testing.T) {
	res := analyze(t, sbSrc, memmodel.SC)
	if len(res.Candidates) != 0 || !res.Robust() {
		t.Fatalf("SC analysis not empty: candidates %v, delays %v", res.Candidates, res.Delays)
	}
}

// The pruning demonstration: the writer's stores to a and b travel with
// the message-passing idiom on x and y, so the dynamic collector proposes
// predicates over all of them — but only [x ⊰ y] lies on a critical
// cycle. Candidates keep the full proposable superset; delays prune it to
// the one pair worth enforcing.
func TestAnalyzeCoTravelerPruning(t *testing.T) {
	src := `
int x = 0; int y = 0; int a = 0; int b = 0;
void w() { a = 1; b = 1; x = 1; y = 1; }
void r() {
  while (!y) { }
  assert(x);
}
int main() {
  int t1 = fork w();
  int t2 = fork r();
  join t1; join t2;
  return 0;
}
`
	p := compile(t, src)
	res, err := staticanalysis.Analyze(p, memmodel.PSO)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 6 {
		t.Errorf("want 6 candidates (all ordered store pairs in w), got %v", res.Candidates)
	}
	want := staticanalysis.Pair{
		L: accessLabel(t, p, "w", ir.OpStore, "x", 0),
		K: accessLabel(t, p, "w", ir.OpStore, "y", 0),
	}
	if len(res.Delays) != 1 || res.Delays[0] != want {
		t.Fatalf("want delays == {%v}, got %v", want, res.Delays)
	}
	cand := res.CandidateSet()
	for _, d := range res.Delays {
		if !cand[d] {
			t.Errorf("delay %v not in candidate set", d)
		}
	}
}

// A critical-cycle-free program reached by inserting the synthesized
// fence must analyse as robust — the property the fast path in
// core.Synthesize relies on to terminate in zero dynamic rounds.
func TestAnalyzeFencedMPRobustPSO(t *testing.T) {
	src := `
int data = 0; int flag = 0;
void producer() { data = 42; fence_ss(); flag = 1; }
void consumer() {
  while (!flag) { }
  print(data);
}
int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1; join t2;
  return 0;
}
`
	res := analyze(t, src, memmodel.PSO)
	if !res.Robust() {
		t.Fatalf("fenced MP not robust under PSO: delays %v", res.Delays)
	}
}
