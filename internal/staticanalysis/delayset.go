package staticanalysis

// This file implements the static delay-set analysis, a Shasha–Snir-style
// over-approximation of the reorderings a store-buffer model can exhibit
// (cf. Alglave, Kroening, Nimal & Poetzl, "Don't sit on the fence"):
//
//   - Candidates over-approximate every ordering predicate [L ⊰ K] the
//     dynamic Collector can ever propose: L a shared store (whose
//     buffered write can commit late) or a shared load (whose deferred
//     read can resolve late, under load-deferring models), K a later
//     same-thread access whose class pair (class L, class K) the model's
//     reordering matrix relaxes, connected by an interprocedural path
//     free of instructions that order exactly that pair (see killsPair),
//     and not provably the same scalar location (the instrumented
//     semantics only report *other*-address pending accesses).
//   - Delays refine Candidates to the pairs lying on a critical cycle of
//     the static event graph: program-order edges within each thread
//     root, conflict edges between may-aliasing accesses of different
//     threads (at least one a write). Only delayed pairs can change
//     program behaviour, so they are the predicates worth enforcing.
//
// An empty delay set proves the program robust for the model — every
// execution is sequentially consistent — which is what lets
// core.Synthesize skip dynamic rounds entirely.

import (
	"fmt"
	"sort"
	"strings"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// Pair is a static delay pair [L ⊰ K]: structurally identical to
// synth.Predicate (which this package cannot import without a cycle; the
// synthesis loop converts by field).
type Pair struct {
	L ir.Label
	K ir.Label
}

func (p Pair) String() string { return fmt.Sprintf("[L%d ⊰ L%d]", p.L, p.K) }

// CycleStep is one event of a critical-cycle witness.
type CycleStep struct {
	Thread string // root name, with "#2" marking the second instance
	Label  ir.Label
}

func (s CycleStep) String() string { return fmt.Sprintf("%s:L%d", s.Thread, s.Label) }

// Result holds the outcome of one static analysis.
type Result struct {
	Model memmodel.Model
	// Roots are the thread roots (the entry function and every fork
	// target), entry first, rest sorted.
	Roots []string
	// MultiInstance marks roots analysed as two concurrent instances
	// (every fork target: forks can run the same function twice, so
	// same-root conflicts must be considered).
	MultiInstance map[string]bool
	// Events is the number of static shared-access events (per root and
	// instance) in the event graph.
	Events int
	// Conflicts is the number of conflict edges (unordered pairs of
	// may-aliasing events of different threads, at least one a write).
	Conflicts int
	// Candidates over-approximates the predicates the dynamic engine can
	// propose; Delays are the candidates on a critical cycle. Both sorted.
	Candidates []Pair
	Delays     []Pair
	// Cycles maps each delay pair to one witness cycle: the events from K
	// through other threads back to a same-thread event preceding L (L's
	// and K's own events included as first and last steps).
	Cycles map[Pair][]CycleStep
	// EscapingGlobals lists the globals whose address escapes (sorted) —
	// unknown-address accesses may alias exactly these.
	EscapingGlobals []string
}

// Robust reports that the delay set is empty: no statically possible
// reordering lies on a critical cycle, so every execution under the model
// is sequentially consistent and fence synthesis has nothing to do.
func (r *Result) Robust() bool { return len(r.Delays) == 0 }

// DelaySet returns the delay pairs as a set.
func (r *Result) DelaySet() map[Pair]bool {
	out := make(map[Pair]bool, len(r.Delays))
	for _, p := range r.Delays {
		out[p] = true
	}
	return out
}

// CandidateSet returns the candidate pairs as a set.
func (r *Result) CandidateSet() map[Pair]bool {
	out := make(map[Pair]bool, len(r.Candidates))
	for _, p := range r.Candidates {
		out[p] = true
	}
	return out
}

// event is one static shared access of one thread instance.
type event struct {
	root    string
	inst    int // 0 or 1 (second instance of a forked root)
	rootIdx int // index into the per-root graphs
	node    int // node index within the root graph
	label   ir.Label
	kind    ir.Op // OpLoad, OpStore, or OpCas
	write   bool
	val     *aval
}

func (e *event) thread() string {
	if e.inst > 0 {
		return e.root + "#2"
	}
	return e.root
}

// Analyze verifies the program and computes its static delay set under
// the given memory model. Under SC both sets are empty by construction
// (no access kind is relaxed).
func Analyze(p *ir.Program, model memmodel.Model) (*Result, error) {
	if err := Verify(p); err != nil {
		return nil, err
	}
	a := &analysis{
		p:     p,
		model: model,
		esc:   computeEscapes(p),
		vals:  make(map[string][]aval),
		exact: make(map[string][]string),
	}
	for _, name := range p.FuncNames() {
		f := p.Funcs[name]
		a.vals[name] = addrSets(f)
		a.exact[name] = exactGlobals(f)
	}
	a.findRoots()
	a.buildEvents()
	a.findCandidates()
	a.findDelays()

	res := &Result{
		Model:         model,
		Roots:         a.roots,
		MultiInstance: a.multi,
		Events:        len(a.events),
		Conflicts:     a.conflicts,
		Candidates:    a.candidates,
		Delays:        a.delays,
		Cycles:        a.cycles,
	}
	res.EscapingGlobals = sortedKeys(a.esc.globals)
	return res, nil
}

type analysis struct {
	p     *ir.Program
	model memmodel.Model
	esc   *escapeInfo
	vals  map[string][]aval
	exact map[string][]string

	roots  []string
	multi  map[string]bool
	graphs []*rootGraph

	events    []event
	byRoot    [][]int // event indices per (rootIdx, inst) flattened pairs, see eventsOf
	cf        [][]int // conflict adjacency per event index
	conflicts int

	candidates []Pair
	// candSites records where each candidate was found, for the cycle
	// check: (rootIdx, L node, K node).
	candSites map[Pair][][3]int

	delays []Pair
	cycles map[Pair][]CycleStep
}

// findRoots collects the entry function and every OpFork target. Fork
// targets are conservatively treated as multi-instance: nothing bounds
// how many threads a program forks onto the same function, and two
// instances of one function conflict with each other.
func (a *analysis) findRoots() {
	a.multi = make(map[string]bool)
	set := map[string]bool{a.p.Entry: true}
	for _, name := range a.p.FuncNames() {
		f := a.p.Funcs[name]
		for i := range f.Code {
			in := &f.Code[i]
			if in.Op == ir.OpFork {
				set[in.Func] = true
				a.multi[in.Func] = true
			}
		}
	}
	var rest []string
	for name := range set {
		if name != a.p.Entry {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	a.roots = append([]string{a.p.Entry}, rest...)
	a.graphs = make([]*rootGraph, len(a.roots))
	for i, r := range a.roots {
		a.graphs[i] = buildRootGraph(a.p, r)
	}
}

// buildEvents enumerates the shared-access events of every thread
// instance and the conflict edges between them.
func (a *analysis) buildEvents() {
	for ri, g := range a.graphs {
		insts := 1
		if a.multi[a.roots[ri]] {
			insts = 2
		}
		for inst := 0; inst < insts; inst++ {
			for n := range g.nodes {
				in := g.instr(n)
				if !in.IsSharedAccess() {
					continue
				}
				fn := g.nodes[n].fn
				a.events = append(a.events, event{
					root:    a.roots[ri],
					inst:    inst,
					rootIdx: ri,
					node:    n,
					label:   in.Label,
					kind:    in.Op,
					write:   in.Op == ir.OpStore || in.Op == ir.OpCas,
					val:     &a.vals[fn.Name][in.A],
				})
			}
		}
	}
	a.cf = make([][]int, len(a.events))
	for i := range a.events {
		for j := i + 1; j < len(a.events); j++ {
			ei, ej := &a.events[i], &a.events[j]
			if ei.rootIdx == ej.rootIdx && ei.inst == ej.inst {
				continue // same thread: program order, not conflict
			}
			if !ei.write && !ej.write {
				continue // two reads never conflict
			}
			if !mayAlias(ei.val, ej.val, a.esc) {
				continue
			}
			a.cf[i] = append(a.cf[i], j)
			a.cf[j] = append(a.cf[j], i)
			a.conflicts++
		}
	}
}

// killsPair reports whether executing in ends the reorderability of a
// pending class-a access with any later class-b access, under model:
//
//   - A fence kills exactly the class pairs its declared coverage orders
//     (FenceKind.Orders). Runtime over-delivery — a draining st-ld fence
//     also orders st-st, a load-resolving release fence also orders
//     ld-ld — only makes the dynamic engine propose fewer predicates,
//     which keeps the static candidates a superset.
//   - Fork is a full barrier: the interpreter drains the parent's
//     buffers and resolves its deferred loads before the child starts.
//   - Call, return, and join force the deferred-load queue to resolve
//     (frames change, and registers must be concrete across them) but
//     leave buffered stores pending.
//   - CAS resolves the deferred-load queue, and on models with a single
//     FIFO buffer (TSO) it also drains every pending store first. Under
//     PSO/RMO it drains only its own address's buffer, so it is
//     pending-transparent for store-class accesses (a sound
//     over-approximation).
//
// For a == ClassLoad the caller must additionally kill on instructions
// that use or redefine the deferred load's destination register (the
// interpreter force-resolves on dependency) — see findCandidates.
func killsPair(in *ir.Instr, model memmodel.Model, a, b ir.AccessClass) bool {
	switch in.Op {
	case ir.OpFence:
		return in.Kind.Orders(a, b)
	case ir.OpFork:
		return true
	case ir.OpCall, ir.OpRet, ir.OpJoin:
		return a == ir.ClassLoad
	case ir.OpCas:
		return a == ir.ClassLoad || !model.RelaxesStoreStore()
	}
	return false
}

// killsBeforeCas is the kill rule for a pending store-class access whose
// K is a CAS. A CAS commits its write directly to memory, bypassing the
// store buffers, so an epoch barrier (st-st or release fence) does not
// order a pending store before it — only a fence that physically drains
// the buffers (full, st-ld) does. The dynamic engine mirrors this: the
// observe hook's epoch filter applies to buffered stores only, never to
// CAS accesses.
func killsBeforeCas(in *ir.Instr, model memmodel.Model) bool {
	switch in.Op {
	case ir.OpFence:
		return in.Kind.DrainsStores()
	case ir.OpFork:
		return true
	case ir.OpCas:
		return !model.RelaxesStoreStore()
	}
	return false
}

// sameScalar reports that both accesses provably address the same
// single-word global, in which case the instrumented semantics can never
// pair them: pending stores to the access's own address are excluded
// (memmodel.PendingOther).
func (a *analysis) sameScalar(fL *ir.Func, L *ir.Instr, fK *ir.Func, K *ir.Instr) bool {
	gl := a.exact[fL.Name][L.A]
	if gl == "" || gl != a.exact[fK.Name][K.A] {
		return false
	}
	g := a.p.Global(gl)
	return g != nil && g.Size == 1
}

// findCandidates enumerates, per root, every (shared access L, later
// access K) pair whose class pair the model relaxes, connected by a
// kill-free path. L is a shared store (its buffered write can commit
// late) or a shared load (its deferred read can resolve late); a CAS
// never appears as L — it executes atomically, in place. The kill set
// depends on the class pair — an (a, b)-covering fence orders only that
// pair — so reachability is computed once per relaxed pair, and for a
// deferred load additionally kills on any instruction that uses or
// redefines its destination register (the interpreter force-resolves on
// dependency). CAS K's of a pending store consult a separate
// reachability under the stricter killsBeforeCas rule.
func (a *analysis) findCandidates() {
	a.candSites = make(map[Pair][][3]int)
	seen := make(map[Pair]bool)
	var regs []ir.Reg
	for ri, g := range a.graphs {
		for n := range g.nodes {
			in := g.instr(n)
			var ca ir.AccessClass
			switch {
			case in.IsSharedStore():
				ca = ir.ClassStore
			case in.IsSharedLoad():
				ca = ir.ClassLoad
			default:
				continue
			}
			for _, cb := range ir.AccessClasses() {
				if !a.model.Relaxes(ca, cb) {
					continue
				}
				kill := func(x *ir.Instr) bool {
					if killsPair(x, a.model, ca, cb) {
						return true
					}
					if ca != ir.ClassLoad {
						return false
					}
					// Dependency on the deferred load's destination
					// forces resolution. Register numbers are
					// per-function, but every interprocedural edge goes
					// through a call or ret, which kill load-class
					// pending above — so the comparison never crosses a
					// function boundary.
					if x.Def() == in.Dst {
						return true
					}
					regs = x.Uses(regs[:0])
					for _, r := range regs {
						if r == in.Dst {
							return true
						}
					}
					return false
				}
				pending := g.pendingReach(n, kill)
				var pendingCas bitvec
				if ca == ir.ClassStore && cb == ir.ClassStore {
					pendingCas = g.pendingReach(n, func(x *ir.Instr) bool {
						return killsBeforeCas(x, a.model)
					})
				}
				for m := range g.nodes {
					k := g.instr(m)
					if !k.IsSharedAccess() {
						continue
					}
					kc, _ := ir.ClassOf(k.Op)
					if kc != cb {
						continue
					}
					set := pending
					if k.Op == ir.OpCas && pendingCas != nil {
						set = pendingCas
					}
					if !set.has(m) {
						continue
					}
					if a.sameScalar(g.nodes[n].fn, in, g.nodes[m].fn, k) {
						continue
					}
					pair := Pair{L: in.Label, K: k.Label}
					if !seen[pair] {
						seen[pair] = true
						a.candidates = append(a.candidates, pair)
					}
					a.candSites[pair] = append(a.candSites[pair], [3]int{ri, n, m})
				}
			}
		}
	}
	sortPairs(a.candidates)
}

// findDelays keeps the candidates that lie on a critical cycle: from K,
// leave the thread on a conflict edge, move along program-order and
// conflict edges of other thread instances, and re-enter instance 0 of
// K's root at an event M with M →po* L. The cycle then closes as
// M →po L →po K →cf … →cf M.
func (a *analysis) findDelays() {
	a.cycles = make(map[Pair][]CycleStep)
	// Index events by (rootIdx, inst, node) and list them per instance.
	type instKey struct {
		ri, inst int
	}
	byNode := make(map[[3]int]int)
	byInst := make(map[instKey][]int)
	for i := range a.events {
		e := &a.events[i]
		byNode[[3]int{e.rootIdx, e.inst, e.node}] = i
		k := instKey{e.rootIdx, e.inst}
		byInst[k] = append(byInst[k], i)
	}

	poSucc := func(i int) []int {
		e := &a.events[i]
		g := a.graphs[e.rootIdx]
		r := g.reach(e.node)
		var out []int
		for _, j := range byInst[instKey{e.rootIdx, e.inst}] {
			if j != i && r.has(a.events[j].node) {
				out = append(out, j)
			}
		}
		return out
	}

	for _, pair := range a.candidates {
		found := false
		for _, site := range a.candSites[pair] {
			ri, ln, kn := site[0], site[1], site[2]
			kev, ok := byNode[[3]int{ri, 0, kn}]
			if !ok {
				continue
			}
			parent := make(map[int]int)
			var work []int
			for _, nb := range a.cf[kev] {
				if _, dup := parent[nb]; !dup {
					parent[nb] = -1
					work = append(work, nb)
				}
			}
			for len(work) > 0 && !found {
				cur := work[0]
				work = work[1:]
				e := &a.events[cur]
				if e.rootIdx == ri && e.inst == 0 {
					// Re-entered the delayed thread: the cycle closes iff
					// this event M precedes (or is) L in program order.
					if e.node == ln || a.graphs[ri].reach(e.node).has(ln) {
						found = true
						a.cycles[pair] = a.witness(pair, kev, cur, parent, ln, ri)
					}
					continue
				}
				for _, nb := range poSucc(cur) {
					if _, dup := parent[nb]; !dup {
						parent[nb] = cur
						work = append(work, nb)
					}
				}
				for _, nb := range a.cf[cur] {
					if _, dup := parent[nb]; !dup {
						parent[nb] = cur
						work = append(work, nb)
					}
				}
			}
			if found {
				break
			}
		}
		if found {
			a.delays = append(a.delays, pair)
		}
	}
	sortPairs(a.delays)
}

// witness reconstructs the cycle path K → … → M (→ L) for reporting.
func (a *analysis) witness(pair Pair, kev, m int, parent map[int]int, ln, ri int) []CycleStep {
	var rev []int
	for cur := m; cur != -1; cur = parent[cur] {
		rev = append(rev, cur)
	}
	steps := []CycleStep{{Thread: a.events[kev].thread(), Label: pair.K}}
	for i := len(rev) - 1; i >= 0; i-- {
		e := &a.events[rev[i]]
		steps = append(steps, CycleStep{Thread: e.thread(), Label: e.label})
	}
	steps = append(steps, CycleStep{Thread: a.events[kev].thread(), Label: pair.L})
	return steps
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].L != ps[j].L {
			return ps[i].L < ps[j].L
		}
		return ps[i].K < ps[j].K
	})
}

// describeAccess renders one labelled access for reports: kind, global (if
// exact), function, and source line.
func (r *Result) describeAccess(p *ir.Program, l ir.Label) string {
	f := p.FuncOf(l)
	in := p.InstrAt(l)
	if f == nil || in == nil {
		return fmt.Sprintf("L%d", l)
	}
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Comment != "" {
		fmt.Fprintf(&b, " (%s)", in.Comment)
	}
	fmt.Fprintf(&b, " in %s", f.Name)
	if in.Line > 0 {
		fmt.Fprintf(&b, ":%d", in.Line)
	}
	return b.String()
}

// Report renders the analysis human-readably — the output of the `dfence
// analyze` subcommand.
func (r *Result) Report(p *ir.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "verifier: ok\nmodel: %v\n", r.Model)
	parts := make([]string, len(r.Roots))
	for i, root := range r.Roots {
		parts[i] = root
		if r.MultiInstance[root] {
			parts[i] += "*"
		}
	}
	fmt.Fprintf(&b, "threads: %s (* = forked; analysed as two concurrent instances)\n", strings.Join(parts, ", "))
	fmt.Fprintf(&b, "events: %d shared accesses, %d conflict edges\n", r.Events, r.Conflicts)
	if len(r.EscapingGlobals) > 0 {
		fmt.Fprintf(&b, "escaping globals: %s\n", strings.Join(r.EscapingGlobals, ", "))
	}
	fmt.Fprintf(&b, "candidate pairs (dynamically proposable): %d\n", len(r.Candidates))
	for _, c := range r.Candidates {
		fmt.Fprintf(&b, "  %v  %s  ->  %s\n", c, r.describeAccess(p, c.L), r.describeAccess(p, c.K))
	}
	fmt.Fprintf(&b, "delay pairs (on a critical cycle): %d\n", len(r.Delays))
	for _, d := range r.Delays {
		fmt.Fprintf(&b, "  %v  %s  ->  %s\n", d, r.describeAccess(p, d.L), r.describeAccess(p, d.K))
		if cyc := r.Cycles[d]; len(cyc) > 0 {
			strs := make([]string, len(cyc))
			for i, s := range cyc {
				strs[i] = s.String()
			}
			fmt.Fprintf(&b, "    cycle: %s\n", strings.Join(strs, " -> "))
		}
	}
	if r.Robust() {
		b.WriteString("robust: yes — no relaxation lies on a critical cycle; every execution is sequentially consistent\n")
	} else {
		fmt.Fprintf(&b, "robust: no (%d delay pair(s) need ordering)\n", len(r.Delays))
	}
	return b.String()
}
