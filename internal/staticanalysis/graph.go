package staticanalysis

// This file builds the per-thread interprocedural control-flow view the
// delay-set analysis walks: one rootGraph per thread root (the entry
// function plus every OpFork target), spanning the functions the root can
// reach through calls, with call edges into callee entries and return
// edges back to every call site's successor (context-insensitive).

import (
	"sort"

	"dfence/internal/ir"
)

// bitvec is a dense bitset over node indices.
type bitvec []uint64

func newBitvec(n int) bitvec    { return make(bitvec, (n+63)/64) }
func (b bitvec) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitvec) add(i int)      { b[i/64] |= 1 << (uint(i) % 64) }

// rootGraph is the interprocedural CFG of one thread root.
type rootGraph struct {
	p     *ir.Program
	root  string
	funcs []string // call closure of root, sorted
	nodes []struct {
		fn  *ir.Func
		idx int
	}
	byLabel map[ir.Label]int // instruction label -> dense node index
	succs   [][]int          // full interprocedural successor lists

	reachMemo map[int]bitvec // node -> nodes reachable in >= 1 step
}

// instr returns the instruction at dense node index n.
func (g *rootGraph) instr(n int) *ir.Instr {
	nd := g.nodes[n]
	return &nd.fn.Code[nd.idx]
}

// callClosure returns the functions reachable from root through OpCall
// edges (forked functions run in their own thread and belong to their own
// root graph).
func callClosure(p *ir.Program, root string) []string {
	seen := map[string]bool{root: true}
	work := []string{root}
	for len(work) > 0 {
		name := work[len(work)-1]
		work = work[:len(work)-1]
		f := p.Funcs[name]
		if f == nil {
			continue
		}
		for i := range f.Code {
			in := &f.Code[i]
			if in.Op == ir.OpCall && !seen[in.Func] {
				seen[in.Func] = true
				work = append(work, in.Func)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// buildRootGraph assembles the interprocedural CFG for one root.
func buildRootGraph(p *ir.Program, root string) *rootGraph {
	g := &rootGraph{
		p:         p,
		root:      root,
		funcs:     callClosure(p, root),
		byLabel:   make(map[ir.Label]int),
		reachMemo: make(map[int]bitvec),
	}
	base := make(map[string]int) // function -> first node index
	for _, name := range g.funcs {
		f := p.Funcs[name]
		base[name] = len(g.nodes)
		for i := range f.Code {
			g.byLabel[f.Code[i].Label] = len(g.nodes)
			g.nodes = append(g.nodes, struct {
				fn  *ir.Func
				idx int
			}{f, i})
		}
	}
	// Collect the call sites of every function in the closure; a ret edge
	// goes to each site's fall-through (OpCall is never a terminator, so
	// idx+1 exists).
	retTargets := make(map[string][]int)
	for _, name := range g.funcs {
		f := p.Funcs[name]
		for i := range f.Code {
			in := &f.Code[i]
			if in.Op == ir.OpCall {
				retTargets[in.Func] = append(retTargets[in.Func], base[name]+i+1)
			}
		}
	}
	g.succs = make([][]int, len(g.nodes))
	for n := range g.nodes {
		f, idx := g.nodes[n].fn, g.nodes[n].idx
		in := &f.Code[idx]
		switch in.Op {
		case ir.OpBr:
			g.succs[n] = []int{base[f.Name] + f.IndexOf(in.Target)}
		case ir.OpCondBr:
			g.succs[n] = []int{base[f.Name] + f.IndexOf(in.Target), base[f.Name] + f.IndexOf(in.Target2)}
		case ir.OpCall:
			// Control enters the callee; it comes back via the ret edges.
			g.succs[n] = []int{base[in.Func]}
		case ir.OpRet:
			g.succs[n] = append([]int(nil), retTargets[f.Name]...)
		default:
			if idx+1 < len(f.Code) {
				g.succs[n] = []int{base[f.Name] + idx + 1}
			}
		}
	}
	return g
}

// pendingReach returns the nodes a pending access issued at node n can
// still be pending at: every node reachable from n in >= 1 step without
// passing through an instruction the kill predicate claims ends the
// access's reorderability (the rules live in delayset.go's killsPair,
// parameterized by the access-class pair under consideration). Kill
// nodes themselves are not in the result — by the time they execute, the
// pending access is ordered.
func (g *rootGraph) pendingReach(n int, kill func(*ir.Instr) bool) bitvec {
	out := newBitvec(len(g.nodes))
	var work []int
	seen := newBitvec(len(g.nodes))
	for _, s := range g.succs[n] {
		if !seen.has(s) {
			seen.add(s)
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		if kill(g.instr(m)) {
			continue
		}
		out.add(m)
		for _, s := range g.succs[m] {
			if !seen.has(s) {
				seen.add(s)
				work = append(work, s)
			}
		}
	}
	return out
}

// reach returns the nodes reachable from n in >= 1 step through the full
// interprocedural CFG (memoized).
func (g *rootGraph) reach(n int) bitvec {
	if r, ok := g.reachMemo[n]; ok {
		return r
	}
	out := newBitvec(len(g.nodes))
	var work []int
	for _, s := range g.succs[n] {
		if !out.has(s) {
			out.add(s)
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.succs[m] {
			if !out.has(s) {
				out.add(s)
				work = append(work, s)
			}
		}
	}
	g.reachMemo[n] = out
	return out
}
