package staticanalysis

// Constructive critical cycles. delayset.go *detects* critical cycles in
// an arbitrary program; this file runs the same theory in the generative
// direction, enumerating the abstract cycle shapes a memory model admits
// so a test generator (internal/proggen) can instantiate each one as a
// litmus program with a known-forbidden outcome. A shape is a Shasha–Snir
// critical cycle in which *every* program-order edge is relaxed by the
// model: thread i performs A_i (an access of location i) followed by B_i
// (an access of location i+1 mod n), and the conflict edges B_i → A_{i+1}
// close the cycle. With all po edges intact (SC, or any model once fences
// are inserted) the conjunction of the conflict-edge witnesses is
// unsatisfiable; with every edge relaxed the store-buffer semantics
// exhibit it. A conflict edge needs at least one write, so shapes where
// B_i and A_{i+1} are both loads are rejected (see CriticalCycleShapes).

import (
	"fmt"
	"strings"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// EdgeKind classifies one thread's relaxed program-order edge in a cycle
// shape: the class of the pending A access and of the B access it is
// delayed past.
type EdgeKind uint8

const (
	// EdgeStoreLoad is A: store loc[i]; B: load loc[i+1]. Relaxed by TSO,
	// PSO, and RMO; the fr-edge witness is "the load saw the initial
	// value".
	EdgeStoreLoad EdgeKind = iota
	// EdgeStoreStore is A: store loc[i]; B: store loc[i+1]. Relaxed by
	// PSO and RMO; the co-edge witness is "location i+1 ended with
	// A_{i+1}'s value, so B_i committed first".
	EdgeStoreStore
	// EdgeLoadLoad is A: load loc[i]; B: load loc[i+1]. Relaxed only by
	// load-deferring models (RMO): A defers and resolves after B; the
	// witness is "A read a value written after B was read".
	EdgeLoadLoad
	// EdgeLoadStore is A: load loc[i]; B: store loc[i+1]. Relaxed only by
	// load-deferring models (RMO): A defers past the B store; the witness
	// is "A observed a write that B's commit transitively enabled".
	EdgeLoadStore
)

// EdgeKinds lists every edge kind in declaration order — the iteration
// order RelaxedEdgeKinds and the shape enumeration use.
func EdgeKinds() []EdgeKind {
	return []EdgeKind{EdgeStoreLoad, EdgeStoreStore, EdgeLoadLoad, EdgeLoadStore}
}

// AClass returns the access class of the edge's A (the pending access
// that is delayed).
func (k EdgeKind) AClass() ir.AccessClass {
	if k == EdgeLoadLoad || k == EdgeLoadStore {
		return ir.ClassLoad
	}
	return ir.ClassStore
}

// BClass returns the access class of the edge's B (the later access the
// pending A is delayed past).
func (k EdgeKind) BClass() ir.AccessClass {
	if k == EdgeStoreLoad || k == EdgeLoadLoad {
		return ir.ClassLoad
	}
	return ir.ClassStore
}

func (k EdgeKind) String() string {
	switch k {
	case EdgeStoreLoad:
		return "st-ld"
	case EdgeStoreStore:
		return "st-st"
	case EdgeLoadLoad:
		return "ld-ld"
	case EdgeLoadStore:
		return "ld-st"
	}
	return fmt.Sprintf("edgekind(%d)", uint8(k))
}

// RelaxedEdgeKinds returns the edge kinds the model can reorder, in
// declaration order. It is driven by the same reordering matrix the
// delay-set analysis uses (memmodel.Model.Relaxes), so the generative
// and detecting directions can never disagree about which shapes a model
// admits.
func RelaxedEdgeKinds(model memmodel.Model) []EdgeKind {
	var out []EdgeKind
	for _, k := range EdgeKinds() {
		if model.Relaxes(k.AClass(), k.BClass()) {
			out = append(out, k)
		}
	}
	return out
}

// CycleShape is one abstract critical cycle: Edges[i] is thread i's
// relaxed po edge. Under Model, every edge is a delay pair, so a program
// instantiating the shape is maximally non-robust: synthesis must fence
// every thread to forbid the cycle's outcome.
type CycleShape struct {
	Model memmodel.Model
	Edges []EdgeKind
}

// Threads returns the number of threads (= locations = edges).
func (s CycleShape) Threads() int { return len(s.Edges) }

// Name returns a stable identifier, e.g. "pso3-st.ld_st.st_st.ld".
func (s CycleShape) Name() string {
	parts := make([]string, len(s.Edges))
	for i, e := range s.Edges {
		parts[i] = strings.ReplaceAll(e.String(), "-", ".")
	}
	return fmt.Sprintf("%s%d-%s", strings.ToLower(s.Model.String()), len(s.Edges), strings.Join(parts, "_"))
}

// CriticalCycleShapes enumerates every cycle shape of the given size whose
// edges are all relaxed by the model, in a deterministic order (the
// mixed-radix counting order over RelaxedEdgeKinds). Shapes with an
// invalid conflict edge are dropped: the edge B_i → A_{i+1} relates two
// accesses of location i+1, and two reads never conflict, so either B_i
// or A_{i+1} must be a store. SC relaxes nothing and admits no shapes;
// TSO admits exactly the all-store-load cycle; PSO admits all 2^threads
// store-edge combinations; RMO admits every adjacency-valid shape over
// all four edge kinds. threads must be ≥ 2 for a cycle to involve a
// conflict between distinct threads.
func CriticalCycleShapes(model memmodel.Model, threads int) []CycleShape {
	kinds := RelaxedEdgeKinds(model)
	if len(kinds) == 0 || threads < 2 {
		return nil
	}
	total := 1
	for i := 0; i < threads; i++ {
		total *= len(kinds)
	}
	out := make([]CycleShape, 0, total)
	for idx := 0; idx < total; idx++ {
		edges := make([]EdgeKind, threads)
		v := idx
		for i := 0; i < threads; i++ {
			edges[i] = kinds[v%len(kinds)]
			v /= len(kinds)
		}
		valid := true
		for i := range edges {
			next := edges[(i+1)%threads]
			if edges[i].BClass() == ir.ClassLoad && next.AClass() == ir.ClassLoad {
				valid = false
				break
			}
		}
		if valid {
			out = append(out, CycleShape{Model: model, Edges: edges})
		}
	}
	return out
}
