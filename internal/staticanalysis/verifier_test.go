package staticanalysis

import (
	"strings"
	"testing"

	"dfence/internal/ir"
)

// buildProg assembles a small valid two-thread program directly in IR:
//
//	int x; int y;
//	void w() { x = 1; print(y); }
//	int main() { t = fork w(); join t; }
func buildProg(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGlobal(&ir.Global{Name: "y", Size: 1}); err != nil {
		t.Fatal(err)
	}
	w := ir.NewFuncBuilder(p, "w", 0)
	one := w.Const(1)
	w.Store(w.GlobalAddr("x"), one, "x = 1")
	v, _ := w.Load(w.GlobalAddr("y"), "y")
	w.Print(v)
	w.Ret()
	_, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := ir.NewFuncBuilder(p, "main", 0)
	tid := m.Fork("w")
	m.Join(tid)
	m.Ret()
	_, err = m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVerifyAcceptsValidProgram(t *testing.T) {
	if err := Verify(buildProg(t)); err != nil {
		t.Fatalf("Verify rejected a valid program: %v", err)
	}
}

// wantVerifyError asserts Verify fails with a diagnostic containing want.
func wantVerifyError(t *testing.T, p *ir.Program, want string) {
	t.Helper()
	err := Verify(p)
	if err == nil {
		t.Fatalf("Verify accepted a malformed program (want error containing %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("Verify error = %q, want it to mention %q", err, want)
	}
}

// Malformed fixture 1: a register used before any path defines it.
func TestVerifyRejectsUseBeforeDef(t *testing.T) {
	p := buildProg(t)
	w := p.Funcs["w"]
	// Overwrite the const's destination so the store's value register is
	// never defined.
	scratch := ir.Reg(w.NumRegs)
	w.NumRegs++
	w.Code[0].Dst = scratch
	wantVerifyError(t, p, "used before it is defined")
}

// Malformed fixture 2: a conditionally defined register used on the join
// path — the classic may-be-undefined case.
func TestVerifyRejectsConditionalDef(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFuncBuilder(p, "main", 0)
	cond := f.Const(1)
	r := f.NewReg()
	taken, fall := f.CondBrF(cond)
	taken.Here()
	f.Mov(r, cond) // r defined only on the taken arm
	fall.Here()
	f.Print(r) // may read r undefined
	f.Ret()
	_, err := f.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	wantVerifyError(t, p, "used before it is defined")
}

// Malformed fixture 3: a dangling branch target (structural damage that a
// careless mutation could introduce).
func TestVerifyRejectsDanglingBranch(t *testing.T) {
	p := buildProg(t)
	m := p.Funcs["main"]
	m.Code[len(m.Code)-1] = ir.Instr{Label: m.Code[len(m.Code)-1].Label, Op: ir.OpBr, Target: 9999}
	m.Rebuild()
	wantVerifyError(t, p, "branches to")
}

// Malformed fixture 4: a load of a shared global mis-marked ThreadLocal —
// it would silently bypass the store buffers and the collector.
func TestVerifyRejectsMisMarkedThreadLocal(t *testing.T) {
	p := buildProg(t)
	w := p.Funcs["w"]
	for i := range w.Code {
		if w.Code[i].Op == ir.OpLoad {
			w.Code[i].ThreadLocal = true
		}
	}
	wantVerifyError(t, p, "ThreadLocal")
}

// Malformed fixture 5: a stale OpGlobal immediate after the globals moved
// without re-linking.
func TestVerifyRejectsStaleLink(t *testing.T) {
	p := buildProg(t)
	for _, f := range p.Funcs {
		for i := range f.Code {
			if f.Code[i].Op == ir.OpGlobal && f.Code[i].Func == "y" {
				f.Code[i].Imm += 7
			}
		}
	}
	wantVerifyError(t, p, "stale link")
}

// A ThreadLocal access whose address is derived purely from an allocation
// is fine.
func TestVerifyAcceptsAllocThreadLocal(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFuncBuilder(p, "main", 0)
	size := f.Const(1)
	buf := f.Alloc(size)
	one := f.Const(1)
	st := f.Store(buf, one, "private slot")
	f.Ret()
	mf, err := f.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for i := range mf.Code {
		if mf.Code[i].Label == st {
			mf.Code[i].ThreadLocal = true
		}
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if err := Verify(p); err != nil {
		t.Fatalf("Verify rejected a correctly marked ThreadLocal access: %v", err)
	}
}

// Uses in unreachable code produce no findings (the dataflow starts TOP
// there), so dead code cannot fail verification spuriously.
func TestVerifyIgnoresUnreachableUse(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFuncBuilder(p, "main", 0)
	r := f.NewReg()
	f.Ret()
	f.Print(r) // unreachable: after ret, nothing branches here
	f.Ret()
	_, err := f.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if err := Verify(p); err != nil {
		t.Fatalf("Verify flagged unreachable code: %v", err)
	}
}
