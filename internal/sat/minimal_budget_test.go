package sat

import (
	"reflect"
	"testing"
	"time"
)

// indepClauses builds n independent binary clauses (2i-1 ∨ 2i), whose
// minimal-model count is 2^n — a cheap enumeration blow-up.
func indepClauses(n int) (nvars int, clauses [][]Lit) {
	for i := 0; i < n; i++ {
		clauses = append(clauses, []Lit{Lit(2*i + 1), Lit(2*i + 2)})
	}
	return 2 * n, clauses
}

func TestMinimalModelsBudgetUnlimitedMatches(t *testing.T) {
	nvars, clauses := indepClauses(4) // 16 minimal models
	full := MinimalModels(nvars, clauses)
	got, truncated := MinimalModelsBudget(nvars, clauses, Budget{})
	if truncated {
		t.Fatal("unlimited budget reported truncation")
	}
	if !reflect.DeepEqual(full, got) {
		t.Fatalf("budgeted(∞) diverges from MinimalModels:\n%v\nvs\n%v", got, full)
	}
	if len(full) != 16 {
		t.Fatalf("expected 16 minimal models, got %d", len(full))
	}
}

func TestMinimalModelsBudgetMaxModels(t *testing.T) {
	nvars, clauses := indepClauses(6) // 64 minimal models
	got, truncated := MinimalModelsBudget(nvars, clauses, Budget{MaxModels: 5})
	if !truncated {
		t.Fatal("cap of 5 over 64 models did not report truncation")
	}
	if len(got) != 5 {
		t.Fatalf("cap of 5 returned %d models", len(got))
	}
	// Every returned model is a genuine minimal model: irredundant and
	// satisfying. For independent binary clauses, minimal ⇔ exactly one
	// variable per clause.
	for _, m := range got {
		if len(m) != 6 {
			t.Fatalf("truncated model %v is not minimal for 6 independent clauses", m)
		}
		asn := map[int]bool{}
		for _, v := range m {
			asn[v] = true
		}
		if !satisfiesPositive(clauses, asn) {
			t.Fatalf("truncated model %v does not satisfy the formula", m)
		}
	}
	// Determinism: the MaxModels cutoff is solver-order based, not timing.
	again, _ := MinimalModelsBudget(nvars, clauses, Budget{MaxModels: 5})
	if !reflect.DeepEqual(got, again) {
		t.Fatal("MaxModels truncation is nondeterministic")
	}
}

func TestMinimalModelsBudgetTimeout(t *testing.T) {
	nvars, clauses := indepClauses(9) // 512 minimal models
	// An already-expired timeout must still yield at least one model
	// (the check runs after each model is recorded).
	got, truncated := MinimalModelsBudget(nvars, clauses, Budget{Timeout: time.Nanosecond})
	if !truncated {
		t.Fatal("nanosecond timeout over 512 models did not truncate")
	}
	if len(got) == 0 {
		t.Fatal("timeout returned no models at all — graceful degradation broken")
	}
}

func TestMinimalModelsBudgetGenerousCapNotTruncated(t *testing.T) {
	nvars, clauses := indepClauses(3) // 8 minimal models
	got, truncated := MinimalModelsBudget(nvars, clauses, Budget{MaxModels: 100})
	if truncated {
		t.Fatal("cap above the model count reported truncation")
	}
	if len(got) != 8 {
		t.Fatalf("got %d models, want 8", len(got))
	}
}
