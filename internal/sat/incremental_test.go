package sat

import (
	"fmt"
	"math/rand"
	"testing"
)

// randMonotone generates a random positive CNF over nvars variables,
// shaped like a synthesis round's φ: clauses are disjunctions of 1..w
// distinct variables.
func randMonotone(rng *rand.Rand, nvars, nclauses, w int) [][]Lit {
	out := make([][]Lit, 0, nclauses)
	for i := 0; i < nclauses; i++ {
		k := 1 + rng.Intn(w)
		seen := map[int]bool{}
		var c []Lit
		for len(c) < k {
			v := 1 + rng.Intn(nvars)
			if !seen[v] {
				seen[v] = true
				c = append(c, Lit(v))
			}
		}
		out = append(out, c)
	}
	return out
}

// TestIncrementalMatchesFreshAcrossRounds is the solver-persistence
// differential: a single Incremental carried across a staged sequence of
// growing rounds must enumerate, in every round, exactly the minimal
// models a fresh per-round solver finds — bit-identical sets in
// identical order, regardless of the learnt clauses, activity, and saved
// phases the persistent solver accumulated in earlier rounds.
func TestIncrementalMatchesFreshAcrossRounds(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		nvars := 4 + rng.Intn(10)
		inc := NewIncremental()
		inc.EnsureVars(nvars)
		rounds := 2 + rng.Intn(4)
		for r := 0; r < rounds; r++ {
			if r > 0 {
				inc.BeginRound()
			}
			clauses := randMonotone(rng, nvars, 1+rng.Intn(8), 4)
			for _, c := range clauses {
				inc.AddClause(c)
			}
			var pst, fst Stats
			persistent, ptr := inc.MinimalModels(Budget{}, &pst)
			fresh, ftr := MinimalModelsStats(nvars, clauses, Budget{}, &fst)
			if fmt.Sprint(persistent) != fmt.Sprint(fresh) || ptr != ftr {
				t.Fatalf("trial %d round %d: persistent solver diverged\npersistent: %v (trunc=%v)\nfresh:      %v (trunc=%v)",
					trial, r, persistent, ptr, fresh, ftr)
			}
			if pst.Models != len(persistent) || fst.Models != len(fresh) {
				t.Fatalf("trial %d round %d: stats model count mismatch", trial, r)
			}
		}
	}
}

// TestIncrementalRetiredRoundsInert: clauses of retired rounds (including
// their blocking clauses) must not constrain later rounds — a round whose
// formula is a single unit clause has exactly one minimal model even if a
// previous round blocked that very assignment.
func TestIncrementalRetiredRoundsInert(t *testing.T) {
	inc := NewIncremental()
	inc.EnsureVars(3)
	inc.AddClause([]Lit{1})
	inc.AddClause([]Lit{2, 3})
	first, _ := inc.MinimalModels(Budget{}, nil)
	if len(first) != 2 {
		t.Fatalf("round 0: got %v, want two minimal models", first)
	}
	inc.BeginRound()
	inc.AddClause([]Lit{1})
	second, _ := inc.MinimalModels(Budget{}, nil)
	if len(second) != 1 || len(second[0]) != 1 || second[0][0] != 1 {
		t.Fatalf("round 1: got %v, want [[1]]", second)
	}
	// A later round may also relax: a formula satisfied by the empty model
	// after BeginRound must report it even though earlier rounds forced 1.
	inc.BeginRound()
	third, _ := inc.MinimalModels(Budget{}, nil)
	if len(third) != 1 || len(third[0]) != 0 {
		t.Fatalf("round 2 (empty formula): got %v, want [[]]", third)
	}
}
