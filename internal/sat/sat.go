// Package sat is a small conflict-driven clause-learning (CDCL) SAT solver
// standing in for the MiniSAT dependency of the paper (§5.2). It supports
// incremental clause addition, solving, and the enumeration loop DFENCE
// uses to obtain all minimal repair assignments: solve, block the model,
// repeat until unsatisfiable.
//
// Literals follow the DIMACS convention: variable v (v >= 1) appears as the
// literal +v, its negation as -v.
package sat

import (
	"errors"
	"fmt"
	"sort"
)

// Lit is a DIMACS-style literal: +v or -v for variable v >= 1.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// value of a variable in the trail.
type tribool int8

const (
	unassigned tribool = iota
	vtrue
	vfalse
)

// Solver is an incremental CDCL solver. The zero value is usable.
type Solver struct {
	numVars int
	clauses []*clause // problem + learnt clauses
	watches map[Lit][]*clause

	assign   []tribool // 1-indexed by variable
	level    []int     // decision level per variable
	reason   []*clause // antecedent clause per variable
	trail    []Lit
	trailLim []int // trail index at each decision level
	qhead    int

	activity []float64 // per-variable VSIDS activity
	varInc   float64

	phase []bool // saved phases

	unsat bool // a top-level conflict was derived

	totalConflicts    int64 // conflicts across every Solve call (telemetry)
	totalDecisions    int64 // branch decisions across every Solve call
	totalPropagations int64 // literals propagated across every Solve call
	totalRestarts     int64 // search restarts across every Solve call
}

// Conflicts reports the number of conflicts the solver has analyzed
// across all Solve calls — the CDCL effort metric telemetry exports.
func (s *Solver) Conflicts() int64 { return s.totalConflicts }

// Decisions reports the number of branching decisions made across all
// Solve calls (assumption postings excluded).
func (s *Solver) Decisions() int64 { return s.totalDecisions }

// Propagations reports the number of literals unit-propagated across all
// Solve calls.
func (s *Solver) Propagations() int64 { return s.totalPropagations }

// Restarts reports the number of search restarts across all Solve calls.
func (s *Solver) Restarts() int64 { return s.totalRestarts }

type clause struct {
	lits    []Lit
	learnt  bool
	deleted bool
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{
		watches: make(map[Lit][]*clause),
		varInc:  1,
	}
}

// NewVar introduces a fresh variable and returns its index (>= 1).
func (s *Solver) NewVar() int {
	s.numVars++
	s.assign = append(s.assign, unassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	if len(s.assign) == 1 {
		// index 0 is padding so variables are 1-indexed
		s.assign = append(s.assign, unassigned)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.activity = append(s.activity, 0)
		s.phase = append(s.phase, false)
	}
	return s.numVars
}

// NumVars returns the number of variables introduced so far.
func (s *Solver) NumVars() int { return s.numVars }

func (s *Solver) valueLit(l Lit) tribool {
	v := s.assign[l.Var()]
	if v == unassigned {
		return unassigned
	}
	if (l > 0) == (v == vtrue) {
		return vtrue
	}
	return vfalse
}

// AddClause adds a clause over existing variables. Adding the empty clause
// (or a clause that simplifies to it) makes the formula unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) error {
	if s.unsat {
		return nil
	}
	// Deduplicate and drop tautologies.
	seen := make(map[Lit]bool, len(lits))
	out := lits[:0:0]
	for _, l := range lits {
		if l == 0 || l.Var() > s.numVars {
			return fmt.Errorf("sat: literal %d references unknown variable", l)
		}
		if seen[l.Neg()] {
			return nil // tautology, trivially satisfied
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	// Remove literals already false at level 0; a clause true at level 0 is
	// dropped.
	filtered := out[:0]
	for _, l := range out {
		switch s.valueLit(l) {
		case vtrue:
			if s.level[l.Var()] == 0 {
				return nil
			}
			filtered = append(filtered, l)
		case vfalse:
			if s.level[l.Var()] != 0 {
				filtered = append(filtered, l)
			}
		default:
			filtered = append(filtered, l)
		}
	}
	out = filtered
	switch len(out) {
	case 0:
		s.unsat = true
		return nil
	case 1:
		// Must enqueue at level 0; requires backtracking to root first.
		s.backtrackTo(0)
		if !s.enqueue(out[0], nil) {
			s.unsat = true
		} else if s.propagate() != nil {
			s.unsat = true
		}
		return nil
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return nil
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], c)
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], c)
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.valueLit(l) {
	case vtrue:
		return true
	case vfalse:
		return false
	}
	v := l.Var()
	if l > 0 {
		s.assign[v] = vtrue
	} else {
		s.assign[v] = vfalse
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate runs unit propagation; returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.totalPropagations++
		ws := s.watches[l]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if conflict != nil || c.deleted {
				kept = append(kept, c)
				continue
			}
			// Normalize: watched literal being falsified at index 1.
			if c.lits[0].Neg() == l {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.valueLit(c.lits[0]) == vtrue {
				kept = append(kept, c)
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != vfalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], c)
					moved = true
					break
				}
			}
			if moved {
				continue // no longer watching l
			}
			kept = append(kept, c)
			// Clause is unit or conflicting.
			if !s.enqueue(c.lits[0], c) {
				conflict = c
			}
		}
		s.watches[l] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.numVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze derives a 1UIP learnt clause from the conflict; returns the
// clause and the backjump level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 for the asserting literal
	seen := make([]bool, s.numVars+1)
	counter := 0
	var p Lit
	idx := len(s.trail) - 1

	c := confl
	for {
		for _, q := range c.lits {
			if q == p || q.Neg() == p {
				continue
			}
			v := q.Var()
			if !seen[v] && s.level[v] > 0 {
				seen[v] = true
				s.bumpVar(v)
				if s.level[v] == s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Pick the next trail literal at the current level that is seen.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		counter--
		seen[p.Var()] = false
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Backjump level = highest level among the other literals.
	bj := 0
	for i := 1; i < len(learnt); i++ {
		if lv := s.level[learnt[i].Var()]; lv > bj {
			bj = lv
		}
	}
	// Move a literal of the backjump level to position 1 for watching.
	for i := 1; i < len(learnt); i++ {
		if s.level[learnt[i].Var()] == bj {
			learnt[1], learnt[i] = learnt[i], learnt[1]
			break
		}
	}
	return learnt, bj
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == vtrue
		s.assign[v] = unassigned
		s.reason[v] = nil
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.numVars; v++ {
		if s.assign[v] == unassigned && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// ErrUnsat is returned by Solve when the formula is unsatisfiable.
var ErrUnsat = errors.New("sat: unsatisfiable")

// Solve searches for a satisfying assignment. On success it returns the
// model as a map from variable to boolean. The solver may be reused: add
// more clauses and call Solve again (the paper's enumeration loop).
// Simplify removes every clause satisfied at decision level 0 from the
// clause database and the watchlists. A clause with a literal fixed true
// at the root can never propagate or conflict again, so removal is
// behavior-neutral — the search visits the same assignments in the same
// order, it just stops wading through dead clauses. The round-incremental
// enumeration calls this when a round guard is fixed false, which
// retires the round's problem, blocking, and learnt clauses wholesale;
// without the sweep every retired blocking clause stays in two
// watchlists forever and each later round pays to skip it.
func (s *Solver) Simplify() {
	if s.unsat {
		return
	}
	s.backtrackTo(0)
	if s.propagate() != nil {
		s.unsat = true
		return
	}
	all := s.clauses
	kept := all[:0]
	for _, c := range all {
		if c.deleted {
			continue
		}
		sat0 := false
		for _, l := range c.lits {
			if s.valueLit(l) == vtrue && s.level[l.Var()] == 0 {
				sat0 = true
				break
			}
		}
		if sat0 {
			c.deleted = true
			continue
		}
		kept = append(kept, c)
	}
	if len(kept) == len(all) {
		return // nothing died: leave the watchlists alone
	}
	for i := len(kept); i < len(all); i++ {
		all[i] = nil
	}
	s.clauses = kept
	for l, ws := range s.watches {
		k := ws[:0]
		for _, c := range ws {
			if !c.deleted {
				k = append(k, c)
			}
		}
		for i := len(k); i < len(ws); i++ {
			ws[i] = nil
		}
		s.watches[l] = k
	}
}

func (s *Solver) Solve() (map[int]bool, error) {
	if err := s.SolveUnderAssumptions(nil); err != nil {
		return nil, err
	}
	model := make(map[int]bool, s.numVars)
	for i := 1; i <= s.numVars; i++ {
		model[i] = s.assign[i] == vtrue
	}
	return model, nil
}

// Value reports the value of variable v in the assignment found by the
// last successful SolveUnderAssumptions/Solve call. It is the
// allocation-free model accessor the enumeration hot path uses instead of
// Solve's map.
func (s *Solver) Value(v int) bool { return s.assign[v] == vtrue }

// restartBase is the conflict count of the first geometric restart;
// subsequent restart intervals grow by 3/2. Restarts redirect the search
// using the accumulated VSIDS activity; they never affect which models
// exist, only the order the search visits them.
const restartBase = 100

// SolveUnderAssumptions searches for a satisfying assignment under the
// given assumption literals (MiniSAT-style incremental interface). The
// assumptions are posted as pseudo-decisions ahead of the search; learnt
// clauses derived under them carry the corresponding guard literals and
// therefore remain sound for later calls with different assumptions — the
// mechanism the round-incremental enumeration builds on.
//
// On success the assignment is available through Value (no allocation).
// ErrUnsat means unsatisfiable *under these assumptions*; the solver
// remains usable, and only a conflict at decision level zero marks the
// formula itself permanently unsatisfiable.
func (s *Solver) SolveUnderAssumptions(assumps []Lit) error {
	if s.unsat {
		return ErrUnsat
	}
	s.backtrackTo(0)
	if s.propagate() != nil {
		s.unsat = true
		return ErrUnsat
	}
	conflictsAtRestart := s.totalConflicts
	restartLimit := int64(restartBase)
	for {
		confl := s.propagate()
		if confl != nil {
			if s.decisionLevel() == 0 {
				s.unsat = true
				return ErrUnsat
			}
			if s.decisionLevel() <= len(assumps) {
				// Conflict entirely under the assumptions: unsatisfiable for
				// this call only. The formula without the assumptions may
				// still be satisfiable, so the solver is not poisoned.
				s.backtrackTo(0)
				return ErrUnsat
			}
			s.totalConflicts++
			learnt, bj := s.analyze(confl)
			s.backtrackTo(bj)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], nil) {
					s.unsat = true
					return ErrUnsat
				}
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.clauses = append(s.clauses, c)
				s.watch(c)
				s.enqueue(learnt[0], c)
			}
			s.varInc *= 1.05 // decay others relative to recent bumps
			if s.totalConflicts-conflictsAtRestart >= restartLimit {
				conflictsAtRestart = s.totalConflicts
				restartLimit += restartLimit / 2
				s.totalRestarts++
				s.backtrackTo(0)
			}
			continue
		}
		if lvl := s.decisionLevel(); lvl < len(assumps) {
			// Post the next assumption as its own decision level.
			a := assumps[lvl]
			switch s.valueLit(a) {
			case vfalse:
				s.backtrackTo(0)
				return ErrUnsat
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(a, nil)
			}
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return nil // full assignment
		}
		s.totalDecisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		l := Lit(v)
		if !s.phase[v] {
			l = -l
		}
		s.enqueue(l, nil)
	}
}

// SolveWithBlocking enumerates models: after each model found, onModel is
// invoked; if it returns a non-empty blocking clause, the clause is added
// and the search continues; if it returns nil, enumeration stops. Returns
// the number of models visited.
func (s *Solver) SolveWithBlocking(onModel func(map[int]bool) []Lit) (int, error) {
	n := 0
	for {
		model, err := s.Solve()
		if errors.Is(err, ErrUnsat) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
		block := onModel(model)
		if block == nil {
			return n, nil
		}
		if err := s.AddClause(block...); err != nil {
			return n, err
		}
	}
}

// EvalClauses checks a full assignment against a clause set (testing aid).
func EvalClauses(clauses [][]Lit, model map[int]bool) bool {
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if model[l.Var()] == (l > 0) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// SortLits sorts a literal slice for deterministic output.
func SortLits(ls []Lit) {
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
}
