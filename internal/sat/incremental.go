package sat

import (
	"fmt"
	"sort"
	"time"
)

// Incremental enumerates the minimal models of a *growing* sequence of
// monotone positive CNF rounds over one persistent CDCL solver. Each
// round's clauses are added under a fresh guard variable; enumeration
// solves under the assumption that the current round's guard is true, so
// blocking clauses (and any clause learnt from them) carry the guard's
// negation and become inert — but stay sound — once the round is retired
// by BeginRound. The payoff is MiniSAT-style solver persistence: learnt
// clauses, VSIDS activity, and saved phases survive from round to round
// instead of being rebuilt from scratch by every enumeration
// (internal/core's synthesis loop calls one enumeration per round with
// heavily overlapping predicate vocabularies).
//
// The minimal-model *set* of a monotone formula is unique, and the final
// sort is a total order, so a complete enumeration returns bit-identical
// output no matter what solver state was carried in — the property the
// incremental-vs-fresh differential tests pin. A truncated enumeration
// (Budget) remains a sound but search-order-dependent prefix, exactly as
// before.
//
// An Incremental is not safe for concurrent use.
type Incremental struct {
	s     *Solver
	nvars int   // highest problem variable introduced
	svar  []int // problem var -> solver var (1-based; guards interleave)

	clauses [][]Lit // current round's clauses, problem-var space (aliased)
	guard   int     // solver var guarding the current round (0: not yet allocated)

	// Enumeration scratch, reused across rounds.
	cur     []bool // candidate assignment during greedy shrink
	seen    modelSet
	assump  [1]Lit
	litBuf  []Lit
	deadMin []int // backing for shrink results
}

// NewIncremental returns an enumerator with an empty persistent solver.
func NewIncremental() *Incremental {
	return &Incremental{s: NewSolver(), svar: make([]int, 1)}
}

// EnsureVars introduces problem variables up to n (idempotent).
func (inc *Incremental) EnsureVars(n int) {
	for inc.nvars < n {
		inc.nvars++
		inc.svar = append(inc.svar, inc.s.NewVar())
	}
}

// BeginRound retires the current round: its clauses — problem, blocking,
// and everything learnt strictly from them — are permanently deactivated
// by fixing the round guard false, and the clause list resets for the
// next round. Variables, activity, phases, and unconditionally-sound
// learnt clauses persist.
func (inc *Incremental) BeginRound() {
	if inc.guard != 0 {
		if err := inc.s.AddClause(Lit(-inc.guard)); err != nil {
			panic(err)
		}
		// Physically drop the retired round (problem, blocking, and
		// learnt clauses now satisfied at level 0 through ¬guard) so
		// later rounds' propagation never touches them. Behavior-neutral:
		// see Solver.Simplify.
		inc.s.Simplify()
		inc.guard = 0
	}
	inc.clauses = inc.clauses[:0]
}

// AddClause conjoins one positive clause (problem-var space) onto the
// current round's formula. The slice is retained (not copied); callers
// must not mutate it afterwards.
func (inc *Incremental) AddClause(c []Lit) {
	for _, l := range c {
		if l <= 0 || int(l) > inc.nvars {
			panic(fmt.Errorf("sat: literal %d references unknown variable", l))
		}
	}
	inc.ensureGuard()
	inc.clauses = append(inc.clauses, c)
	lits := append(inc.litBuf[:0], Lit(-inc.guard))
	for _, l := range c {
		lits = append(lits, Lit(inc.svar[l]))
	}
	inc.litBuf = lits[:0]
	if err := inc.s.AddClause(lits...); err != nil {
		panic(err)
	}
}

func (inc *Incremental) ensureGuard() {
	if inc.guard == 0 {
		inc.guard = inc.s.NewVar()
	}
}

// NumClauses returns the number of clauses in the current round.
func (inc *Incremental) NumClauses() int { return len(inc.clauses) }

// MinimalModels enumerates the minimal models of the current round's
// formula under the budget; semantics and output order are identical to
// MinimalModelsStats. st (ignored when nil) receives the solver effort of
// this call only (counter deltas, not lifetime totals).
func (inc *Incremental) MinimalModels(budget Budget, st *Stats) (models [][]int, truncated bool) {
	inc.ensureGuard()
	baseConfl := inc.s.Conflicts()
	baseDec := inc.s.Decisions()
	baseProp := inc.s.Propagations()
	baseRest := inc.s.Restarts()
	var deadline time.Time
	if budget.Timeout > 0 {
		deadline = time.Now().Add(budget.Timeout)
	}
	if cap(inc.cur) < inc.nvars+1 {
		inc.cur = make([]bool, inc.nvars+1)
	}
	inc.cur = inc.cur[:inc.nvars+1]
	inc.seen.reset()
	var out [][]int
	inc.assump[0] = Lit(inc.guard)
	for {
		if err := inc.s.SolveUnderAssumptions(inc.assump[:]); err != nil {
			break // unsatisfiable under the guard: enumeration exhausted
		}
		min := inc.shrink()
		if inc.seen.insert(min) {
			out = append(out, append([]int(nil), min...))
		}
		if len(min) == 0 {
			break // empty model satisfies everything: stop
		}
		if !budget.unlimited() {
			if (budget.MaxModels > 0 && len(out) >= budget.MaxModels) ||
				(!deadline.IsZero() && time.Now().After(deadline)) {
				truncated = true
				break
			}
		}
		// Block this minimal model and all its supersets — for this round
		// only (the guard literal deactivates the clause at BeginRound).
		block := append(inc.litBuf[:0], Lit(-inc.guard))
		for _, v := range min {
			block = append(block, Lit(-inc.svar[v]))
		}
		inc.litBuf = block[:0]
		if err := inc.s.AddClause(block...); err != nil {
			panic(err)
		}
	}
	if st != nil {
		st.Models = len(out)
		st.Conflicts = inc.s.Conflicts() - baseConfl
		st.Decisions = inc.s.Decisions() - baseDec
		st.Propagations = inc.s.Propagations() - baseProp
		st.Restarts = inc.s.Restarts() - baseRest
		st.Clauses = len(inc.clauses)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out, truncated
}

// shrink greedily reduces the solver's current model to an irredundant
// model of the round's (monotone) clauses, dropping variables in
// descending order — the same deterministic order the map-based shrink
// used, on flat scratch instead of maps.
func (inc *Incremental) shrink() []int {
	cur := inc.cur
	for v := 1; v <= inc.nvars; v++ {
		cur[v] = inc.s.Value(inc.svar[v])
	}
	for v := inc.nvars; v >= 1; v-- {
		if !cur[v] {
			continue
		}
		cur[v] = false
		if !coversPositive(inc.clauses, cur) {
			cur[v] = true
		}
	}
	min := inc.deadMin[:0]
	for v := 1; v <= inc.nvars; v++ {
		if cur[v] {
			min = append(min, v)
		}
	}
	inc.deadMin = min
	return min
}

// coversPositive reports whether the true-set in cur satisfies every
// positive clause.
func coversPositive(clauses [][]Lit, cur []bool) bool {
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if cur[int(l)] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// modelSet deduplicates variable-set models with integer keys: models are
// stored in a flat arena and probed by FNV-1a hash with exact collision
// checks — the replacement for the old fmtKey/map[string]bool dedup,
// allocation-free at steady state.
type modelSet struct {
	buckets map[uint64][]int32
	arena   []int32
	offs    []int32 // model i is arena[offs[i]:offs[i+1]]
}

func (ms *modelSet) reset() {
	if ms.buckets == nil {
		ms.buckets = make(map[uint64][]int32)
	} else {
		clear(ms.buckets)
	}
	ms.arena = ms.arena[:0]
	ms.offs = append(ms.offs[:0], 0)
}

// insert adds the model if absent; reports whether it was new.
func (ms *modelSet) insert(model []int) bool {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range model {
		h ^= uint64(uint32(v))
		h *= prime64
	}
	for _, idx := range ms.buckets[h] {
		got := ms.arena[ms.offs[idx]:ms.offs[idx+1]]
		if len(got) != len(model) {
			continue
		}
		eq := true
		for i, v := range got {
			if int(v) != model[i] {
				eq = false
				break
			}
		}
		if eq {
			return false
		}
	}
	ms.buckets[h] = append(ms.buckets[h], int32(len(ms.offs)-1))
	for _, v := range model {
		ms.arena = append(ms.arena, int32(v))
	}
	ms.offs = append(ms.offs, int32(len(ms.arena)))
	return true
}
