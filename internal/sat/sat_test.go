package sat

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newVars(s *Solver, n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	return vs
}

func TestTriviallySat(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	if err := s.AddClause(Lit(v[0]), Lit(v[1])); err != nil {
		t.Fatal(err)
	}
	m, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !m[v[0]] && !m[v[1]] {
		t.Fatal("model does not satisfy the only clause")
	}
}

func TestTriviallyUnsat(t *testing.T) {
	s := NewSolver()
	v := s.NewVar()
	if err := s.AddClause(Lit(v)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClause(Lit(-v)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); !errors.Is(err, ErrUnsat) {
		t.Fatalf("want unsat, got %v", err)
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// x1; x1->x2; x2->x3; x3->x4
	s := NewSolver()
	v := newVars(s, 4)
	s.AddClause(Lit(v[0]))
	s.AddClause(Lit(-v[0]), Lit(v[1]))
	s.AddClause(Lit(-v[1]), Lit(v[2]))
	s.AddClause(Lit(-v[2]), Lit(v[3]))
	m, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, vi := range v {
		if !m[vi] {
			t.Errorf("x%d should be forced true", i+1)
		}
	}
}

func TestTautologyDropped(t *testing.T) {
	s := NewSolver()
	v := s.NewVar()
	if err := s.AddClause(Lit(v), Lit(-v)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatalf("tautology made formula unsat: %v", err)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := NewSolver()
	s.NewVar()
	if err := s.AddClause(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); !errors.Is(err, ErrUnsat) {
		t.Fatal("empty clause did not make formula unsat")
	}
}

func TestUnknownVariableRejected(t *testing.T) {
	s := NewSolver()
	if err := s.AddClause(Lit(3)); err == nil {
		t.Fatal("literal over unknown variable accepted")
	}
}

// Pigeonhole PHP(3,2): 3 pigeons into 2 holes — classically unsat and
// requires real search + learning.
func TestPigeonhole32Unsat(t *testing.T) {
	s := NewSolver()
	// p[i][j]: pigeon i in hole j
	p := make([][]int, 3)
	for i := range p {
		p[i] = newVars(s, 2)
	}
	for i := 0; i < 3; i++ {
		s.AddClause(Lit(p[i][0]), Lit(p[i][1])) // each pigeon somewhere
	}
	for j := 0; j < 2; j++ {
		for a := 0; a < 3; a++ {
			for b := a + 1; b < 3; b++ {
				s.AddClause(Lit(-p[a][j]), Lit(-p[b][j]))
			}
		}
	}
	if _, err := s.Solve(); !errors.Is(err, ErrUnsat) {
		t.Fatal("PHP(3,2) reported satisfiable")
	}
}

func TestPigeonhole54Unsat(t *testing.T) {
	s := NewSolver()
	const P, H = 5, 4
	p := make([][]int, P)
	for i := range p {
		p[i] = newVars(s, H)
	}
	for i := 0; i < P; i++ {
		lits := make([]Lit, H)
		for j := 0; j < H; j++ {
			lits[j] = Lit(p[i][j])
		}
		s.AddClause(lits...)
	}
	for j := 0; j < H; j++ {
		for a := 0; a < P; a++ {
			for b := a + 1; b < P; b++ {
				s.AddClause(Lit(-p[a][j]), Lit(-p[b][j]))
			}
		}
	}
	if _, err := s.Solve(); !errors.Is(err, ErrUnsat) {
		t.Fatal("PHP(5,4) reported satisfiable")
	}
}

// brute force satisfiability for cross-checking
func bruteSat(nvars int, clauses [][]Lit) (map[int]bool, bool) {
	for mask := 0; mask < 1<<nvars; mask++ {
		m := make(map[int]bool, nvars)
		for v := 1; v <= nvars; v++ {
			m[v] = mask&(1<<(v-1)) != 0
		}
		if EvalClauses(clauses, m) {
			return m, true
		}
	}
	return nil, false
}

func randomCNF(rng *rand.Rand, nvars, nclauses, width int) [][]Lit {
	clauses := make([][]Lit, nclauses)
	for i := range clauses {
		w := 1 + rng.Intn(width)
		c := make([]Lit, 0, w)
		for k := 0; k < w; k++ {
			v := 1 + rng.Intn(nvars)
			l := Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			c = append(c, l)
		}
		clauses[i] = c
	}
	return clauses
}

// Property: CDCL agrees with brute force on random small formulas, and the
// model it returns actually satisfies the clauses.
func TestQuickAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 2 + rng.Intn(9) // up to 10 vars
		clauses := randomCNF(rng, nvars, 2+rng.Intn(25), 3)
		s := NewSolver()
		for i := 0; i < nvars; i++ {
			s.NewVar()
		}
		for _, c := range clauses {
			if err := s.AddClause(c...); err != nil {
				return false
			}
		}
		model, err := s.Solve()
		_, want := bruteSat(nvars, clauses)
		if want {
			return err == nil && EvalClauses(clauses, model)
		}
		return errors.Is(err, ErrUnsat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalSolving(t *testing.T) {
	// Solve, add a blocking clause, solve again — DFENCE's enumeration use.
	s := NewSolver()
	v := newVars(s, 3)
	s.AddClause(Lit(v[0]), Lit(v[1]), Lit(v[2]))
	models := 0
	n, err := s.SolveWithBlocking(func(m map[int]bool) []Lit {
		models++
		if models > 20 {
			t.Fatal("runaway enumeration")
		}
		// Block this exact assignment.
		block := make([]Lit, 0, 3)
		for _, vi := range v {
			if m[vi] {
				block = append(block, Lit(-vi))
			} else {
				block = append(block, Lit(vi))
			}
		}
		return block
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("enumerated %d models of x|y|z, want 7", n)
	}
}

// --- minimal models ---

// bruteMinimalModels computes minimal models of a positive CNF by brute
// force.
func bruteMinimalModels(nvars int, clauses [][]Lit) [][]int {
	var models [][]int
	for mask := 0; mask < 1<<nvars; mask++ {
		m := make(map[int]bool, nvars)
		for v := 1; v <= nvars; v++ {
			m[v] = mask&(1<<(v-1)) != 0
		}
		if !EvalClauses(clauses, m) {
			continue
		}
		var set []int
		for v := 1; v <= nvars; v++ {
			if m[v] {
				set = append(set, v)
			}
		}
		models = append(models, set)
	}
	// Keep only minimal ones.
	var min [][]int
	for i, a := range models {
		minimal := true
		for j, b := range models {
			if i != j && subset(b, a) && len(b) < len(a) {
				minimal = false
				break
			}
		}
		if minimal {
			min = append(min, a)
		}
	}
	return min
}

func subset(a, b []int) bool {
	set := make(map[int]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func setsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(s []int) string {
		return fmtKey(s)
	}
	m := map[string]bool{}
	for _, s := range a {
		m[key(s)] = true
	}
	for _, s := range b {
		if !m[key(s)] {
			return false
		}
	}
	return true
}

func TestMinimalModelsSimple(t *testing.T) {
	// (1|2) & (2|3): minimal models {2}, {1,3}
	clauses := [][]Lit{{1, 2}, {2, 3}}
	got := MinimalModels(3, clauses)
	want := [][]int{{2}, {1, 3}}
	if !setsEqual(got, want) {
		t.Fatalf("MinimalModels = %v, want %v", got, want)
	}
	// Minimum (smallest) models: just {2}.
	minimum := MinimumModels(3, clauses)
	if len(minimum) != 1 || len(minimum[0]) != 1 || minimum[0][0] != 2 {
		t.Fatalf("MinimumModels = %v, want [[2]]", minimum)
	}
}

func TestMinimalModelsEmptyFormula(t *testing.T) {
	got := MinimalModels(3, nil)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty formula should have the empty minimal model, got %v", got)
	}
}

func TestMinimalModelsUnsatIsEmpty(t *testing.T) {
	// A positive formula is never unsat unless it has an empty clause.
	got := MinimalModels(2, [][]Lit{{}})
	if len(got) != 0 {
		t.Fatalf("formula with empty clause has models: %v", got)
	}
}

func TestQuickMinimalModelsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 1 + rng.Intn(7)
		nclauses := 1 + rng.Intn(8)
		clauses := make([][]Lit, nclauses)
		for i := range clauses {
			w := 1 + rng.Intn(3)
			c := make([]Lit, 0, w)
			for k := 0; k < w; k++ {
				c = append(c, Lit(1+rng.Intn(nvars)))
			}
			clauses[i] = c
		}
		got := MinimalModels(nvars, clauses)
		want := bruteMinimalModels(nvars, clauses)
		return setsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinimalModelsDeterministic(t *testing.T) {
	clauses := [][]Lit{{3, 1}, {2, 1}, {3, 2}}
	a := MinimalModels(3, clauses)
	b := MinimalModels(3, clauses)
	if !setsEqual(a, b) || len(a) != len(b) {
		t.Fatal("nondeterministic result")
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("ordering differs between runs")
			}
		}
	}
}

func TestLitHelpers(t *testing.T) {
	if Lit(-5).Var() != 5 || Lit(5).Var() != 5 {
		t.Error("Var wrong")
	}
	if Lit(5).Neg() != Lit(-5) {
		t.Error("Neg wrong")
	}
}
