package sat

import (
	"time"
)

// Budget bounds minimal-model enumeration. The zero value means unlimited
// (the paper's behaviour: enumerate every minimal model). When a bound
// trips, enumeration degrades gracefully: the models found so far are
// returned (sorted as usual) with truncated=true, so callers can proceed
// with the best repairs discovered instead of hanging on a pathological φ.
type Budget struct {
	// MaxModels stops enumeration after this many distinct minimal models
	// (<= 0: unlimited).
	MaxModels int
	// Timeout bounds the enumeration's wall-clock time (<= 0: unlimited).
	// Granularity is per model found: the check runs between solver calls,
	// so a single very hard Solve can overrun it.
	Timeout time.Duration
}

func (b Budget) unlimited() bool { return b.MaxModels <= 0 && b.Timeout <= 0 }

// Stats reports one enumeration's solver effort, for telemetry. All
// counters are per-enumeration deltas, even when the enumeration ran on a
// persistent Incremental solver.
type Stats struct {
	// Models is the number of distinct minimal models found.
	Models int
	// Conflicts is the CDCL conflict count across the enumeration's
	// Solve calls.
	Conflicts int64
	// Decisions is the number of branching decisions.
	Decisions int64
	// Propagations is the number of literals unit-propagated.
	Propagations int64
	// Restarts is the number of search restarts.
	Restarts int64
	// Clauses is the number of input clauses (blocking clauses excluded).
	Clauses int
}

// MinimalModels enumerates the minimal models of a *monotone* CNF formula:
// every clause contains only positive literals, so models are upward
// closed and the interesting solutions are the minimal sets of variables
// set to true. This is precisely the shape of DFENCE's repair formula φ — a
// conjunction, over violating executions, of disjunctions of ordering
// predicates — and this function implements the paper's §5.2 loop: "we
// call MiniSAT repeatedly to find out all solutions (when we find a
// solution, we adjust the formula to exclude that solution), and then we
// select the minimal ones."
//
// Each found model is first shrunk greedily to an irredundant model (try
// dropping each true variable; monotonicity makes the check a simple
// clause-coverage test), then blocked with the clause ¬(∧ its true vars),
// which eliminates that model and all its supersets. Every minimal model
// is eventually produced: a minimal model is never a strict superset of
// another model, so blocking cannot hide it.
//
// nvars is the number of variables (1..nvars); clauses must be positive.
// The result is deterministic: each model is a sorted variable set, and
// the models are sorted by (size, lexicographic).
func MinimalModels(nvars int, clauses [][]Lit) [][]int {
	out, _ := MinimalModelsBudget(nvars, clauses, Budget{})
	return out
}

// MinimalModelsBudget is MinimalModels under an enumeration budget. When
// the budget trips before the enumeration is exhausted, the minimal models
// found so far are returned with truncated=true; each returned model is
// still irredundant (the greedy shrink runs per model, not at the end), so
// a truncated answer is a sound — merely possibly incomplete — repair set.
// The MaxModels cutoff is deterministic; the Timeout cutoff is wall-clock
// and therefore machine-dependent.
func MinimalModelsBudget(nvars int, clauses [][]Lit, budget Budget) (models [][]int, truncated bool) {
	return MinimalModelsStats(nvars, clauses, budget, nil)
}

// MinimalModelsStats is MinimalModelsBudget additionally reporting the
// enumeration's solver effort into st (ignored when nil). The models
// returned are identical to MinimalModelsBudget's. It runs a one-round
// Incremental enumeration on a throwaway solver; long-lived callers whose
// formula grows round over round should hold an Incremental instead and
// reap the learnt-clause and activity carry-over.
func MinimalModelsStats(nvars int, clauses [][]Lit, budget Budget, st *Stats) (models [][]int, truncated bool) {
	inc := NewIncremental()
	inc.EnsureVars(nvars)
	for _, c := range clauses {
		inc.AddClause(c)
	}
	return inc.MinimalModels(budget, st)
}

// shrink reduces a model of a monotone formula to an irredundant one.
func shrink(nvars int, clauses [][]Lit, model map[int]bool) []int {
	cur := make(map[int]bool, nvars)
	for v, b := range model {
		cur[v] = b
	}
	// Try dropping variables in descending order (deterministic).
	for v := nvars; v >= 1; v-- {
		if !cur[v] {
			continue
		}
		cur[v] = false
		if !satisfiesPositive(clauses, cur) {
			cur[v] = true
		}
	}
	var min []int
	for v := 1; v <= nvars; v++ {
		if cur[v] {
			min = append(min, v)
		}
	}
	return min
}

func satisfiesPositive(clauses [][]Lit, model map[int]bool) bool {
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if l > 0 && model[int(l)] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func fmtKey(vs []int) string {
	b := make([]byte, 0, len(vs)*3)
	for _, v := range vs {
		for v > 0 {
			b = append(b, byte('0'+v%10))
			v /= 10
		}
		b = append(b, ',')
	}
	return string(b)
}

// MinimumModels filters MinimalModels down to those of smallest
// cardinality — Algorithm 2's "minimal satisfying assignment" choice.
func MinimumModels(nvars int, clauses [][]Lit) [][]int {
	all := MinimalModels(nvars, clauses)
	if len(all) == 0 {
		return nil
	}
	best := len(all[0])
	var out [][]int
	for _, m := range all {
		if len(m) == best {
			out = append(out, m)
		}
	}
	return out
}
