package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format: a "p cnf <vars>
// <clauses>" header, comment lines starting with 'c', and clauses as
// whitespace-separated literals terminated by 0 (clauses may span lines).
// Returns the variable count and the clause list.
func ParseDIMACS(r io.Reader) (nvars int, clauses [][]Lit, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	sawHeader := false
	declaredClauses := -1
	var cur []Lit
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "p") {
			if sawHeader {
				return 0, nil, fmt.Errorf("sat: line %d: duplicate problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "cnf" {
				return 0, nil, fmt.Errorf("sat: line %d: malformed problem line %q", line, text)
			}
			nvars, err = strconv.Atoi(fields[2])
			if err != nil || nvars < 0 {
				return 0, nil, fmt.Errorf("sat: line %d: bad variable count %q", line, fields[2])
			}
			declaredClauses, err = strconv.Atoi(fields[3])
			if err != nil || declaredClauses < 0 {
				return 0, nil, fmt.Errorf("sat: line %d: bad clause count %q", line, fields[3])
			}
			sawHeader = true
			continue
		}
		if !sawHeader {
			return 0, nil, fmt.Errorf("sat: line %d: clause before problem line", line)
		}
		for _, tok := range strings.Fields(text) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return 0, nil, fmt.Errorf("sat: line %d: bad literal %q", line, tok)
			}
			if v == 0 {
				clauses = append(clauses, cur)
				cur = nil
				continue
			}
			if v > nvars || -v > nvars {
				return 0, nil, fmt.Errorf("sat: line %d: literal %d exceeds declared %d variables", line, v, nvars)
			}
			cur = append(cur, Lit(v))
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if !sawHeader {
		return 0, nil, fmt.Errorf("sat: missing problem line")
	}
	if len(cur) > 0 {
		clauses = append(clauses, cur) // tolerate missing trailing 0
	}
	if declaredClauses >= 0 && len(clauses) != declaredClauses {
		return 0, nil, fmt.Errorf("sat: header declares %d clauses, found %d", declaredClauses, len(clauses))
	}
	return nvars, clauses, nil
}

// WriteDIMACS serializes a formula in DIMACS format.
func WriteDIMACS(w io.Writer, nvars int, clauses [][]Lit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", nvars, len(clauses))
	for _, c := range clauses {
		for _, l := range c {
			fmt.Fprintf(bw, "%d ", int(l))
		}
		fmt.Fprintln(bw, 0)
	}
	return bw.Flush()
}

// SolveDIMACS parses and solves a DIMACS formula, returning the model.
func SolveDIMACS(r io.Reader) (map[int]bool, error) {
	nvars, clauses, err := ParseDIMACS(r)
	if err != nil {
		return nil, err
	}
	s := NewSolver()
	for i := 0; i < nvars; i++ {
		s.NewVar()
	}
	for _, c := range clauses {
		if err := s.AddClause(c...); err != nil {
			return nil, err
		}
	}
	return s.Solve()
}
