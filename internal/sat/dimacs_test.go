package sat

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDIMACSBasic(t *testing.T) {
	in := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	nvars, clauses, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if nvars != 3 || len(clauses) != 2 {
		t.Fatalf("nvars=%d clauses=%d", nvars, len(clauses))
	}
	if clauses[0][0] != 1 || clauses[0][1] != -2 {
		t.Errorf("clause 0 = %v", clauses[0])
	}
}

func TestParseDIMACSMultiLineClause(t *testing.T) {
	in := "p cnf 4 1\n1 2\n3 4 0\n"
	_, clauses, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 1 || len(clauses[0]) != 4 {
		t.Fatalf("clauses = %v", clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        "1 2 0\n",
		"bad header":       "p sat 3 2\n",
		"double header":    "p cnf 1 0\np cnf 1 0\n",
		"literal too big":  "p cnf 2 1\n3 0\n",
		"bad literal":      "p cnf 2 1\nx 0\n",
		"clause mismatch":  "p cnf 2 5\n1 0\n",
		"negative too big": "p cnf 2 1\n-3 0\n",
	}
	for name, in := range cases {
		if _, _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nvars := 1 + rng.Intn(10)
		clauses := randomCNF(rng, nvars, 1+rng.Intn(15), 4)
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, nvars, clauses); err != nil {
			return false
		}
		n2, c2, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil || n2 != nvars || len(c2) != len(clauses) {
			return false
		}
		for i := range clauses {
			if len(c2[i]) != len(clauses[i]) {
				return false
			}
			for j := range clauses[i] {
				if c2[i][j] != clauses[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolveDIMACS(t *testing.T) {
	model, err := SolveDIMACS(strings.NewReader("p cnf 2 2\n1 0\n-1 2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !model[1] || !model[2] {
		t.Errorf("model = %v, want both true", model)
	}
	_, err = SolveDIMACS(strings.NewReader("p cnf 1 2\n1 0\n-1 0\n"))
	if !errors.Is(err, ErrUnsat) {
		t.Errorf("want unsat, got %v", err)
	}
}
