// Batch execution: the worker-pool engine that fans a block of
// independent, seed-determined executions across OS threads. DFENCE's
// synthesis loop (Algorithm 1) gathers K executions per repair round; each
// execution is fully determined by its sched.Options (in particular the
// seed) and only reads the shared compiled program — so a round
// parallelizes embarrassingly. The engine preserves the serial semantics
// exactly: execution i always runs with optsFor(i), results land in slot i
// of the returned slice, and callers merge slots in index order, making
// the outcome bit-identical for any worker count.
//
// # Worker-ownership invariant
//
// Everything mutable in the hot path is owned by exactly one worker
// goroutine for the lifetime of the batch and reused across the
// executions that worker performs:
//
//   - the interp.Machine (with its pooled memory image, thread/frame/
//     register pools, history, and scratch buffers), Reset — not
//     reallocated — between executions;
//   - the rand.Rand, re-seeded — not reconstructed — per execution
//     (re-seeding restarts the exact stream a fresh Source would produce,
//     so pooling cannot perturb schedules);
//   - the scheduler's scratch slices (enabled-thread list, priorities);
//   - the observer obtained from newObs(worker).
//
// Nothing owned by one worker is ever touched by another, which is what
// makes the steady-state hot path allocation-free without locks. The cost
// is a lifetime rule: the *interp.Result handed to reduce (and its
// History/Output slices) aliases the worker's machine and is valid ONLY
// for the duration of that reduce call — the worker Resets the machine for
// its next execution as soon as reduce returns. Reducers must extract what
// they need (judge the run, drain the collector, copy events) before
// returning; retaining res is a bug the -race corpus tests catch.
//
// The one-shot entry points (Run, RunSafe, RunTraced) construct a private
// worker per call and discard it, so their Results have no aliasing hazard
// and the pre-pooling contract is preserved for external callers.
package sched

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// RunBatch executes n independent runs of prog across workers goroutines
// (workers <= 0 selects runtime.NumCPU; workers == 1 runs serially on the
// calling goroutine). It compiles prog once and delegates to
// RunBatchCompiled; callers that already hold a Compiled (or need a
// watched compile for the execution cache) use RunBatchCompiled directly.
//
// The shared prog must not be mutated while the batch runs. Interpretation
// never writes to it (every worker's interp.Machine owns its memory
// image), which is what makes the fan-out safe — see the -race tests in
// internal/core.
func RunBatch[T any](ctx context.Context, prog *ir.Program, model memmodel.Model, n, workers int,
	newObs func(worker int) interp.Observer,
	optsFor func(i int) Options,
	reduce func(i, worker int, obs interp.Observer, res *interp.Result, err *ExecError) (T, bool),
) []T {
	return RunBatchCompiled(ctx, interp.Compile(prog), model, n, workers, newObs, optsFor, reduce)
}

// RunBatchCompiled is RunBatch over an already-compiled program. Execution
// i runs with optsFor(i). Each worker owns one observer from newObs (nil
// newObs means no observation) and one pooled interp.Machine; both are
// reused for every execution the worker performs, so reduce must
// drain/reset any per-execution observer state — and must not retain res,
// which aliases the worker's machine — before returning (see the
// worker-ownership invariant in the package comment).
//
// Panic isolation: every execution runs under recover. A panic in the
// interpreter or an observer does not kill the batch (or the process) —
// reduce is invoked for that slot with res == nil and a structured
// *ExecError carrying the execution's index, seed, panic value, and stack,
// so one poisoned seed is reported while the remaining slots complete
// normally. Exactly one of res/err is non-nil. The panicked worker's
// machine is Reset before its next execution, which re-arms it from any
// intermediate state.
//
// reduce is called once per execution, from the worker goroutine that ran
// it, and receives that worker's index (0 <= worker < workers) so callers
// can maintain per-worker reducer state (e.g. the core verdict cache)
// without locks; calls are concurrent across workers but slot i is written
// by exactly one worker, so reduce must only touch the observer it was
// handed, its own worker-indexed state, and the values it returns. Its T result is stored at out[i]. Returning stop=true
// cancels the batch: outstanding executions are abandoned (their slots
// keep T's zero value, and reduce is never called for them) and remaining
// workers drain via the context. The surrounding ctx cancels the batch
// externally the same way; an execution already in flight when the context
// dies stops at its next budget check and reports TimedOut.
func RunBatchCompiled[T any](ctx context.Context, c *interp.Compiled, model memmodel.Model, n, workers int,
	newObs func(worker int) interp.Observer,
	optsFor func(i int) Options,
	reduce func(i, worker int, obs interp.Observer, res *interp.Result, err *ExecError) (T, bool),
) []T {
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	obsFor := func(w int) interp.Observer {
		if newObs == nil {
			return nil
		}
		return newObs(w)
	}
	exec := func(st *worker, w, i int, obs interp.Observer) (T, bool) {
		opts := optsFor(i)
		opts.traceLane = w + 1 // lane 0 is the coordinator
		res, err := st.runSafe(ctx, c, model, obs, opts)
		if err != nil {
			err.Index = i
		}
		return reduce(i, w, obs, res, err)
	}
	if workers <= 1 {
		// Label the serial path too, so CPU profiles separate execution
		// time from solve/check phases regardless of worker count.
		pprof.Do(ctx, pprof.Labels("dfence_phase", "execute", "dfence_worker", "0"), func(ctx context.Context) {
			var st worker
			obs := obsFor(0)
			for i := 0; i < n; i++ {
				if ctx.Err() != nil {
					break
				}
				t, stop := exec(&st, 0, i, obs)
				out[i] = t
				if stop {
					break
				}
			}
		})
		return out
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker pprof labels: samples attribute to the batch
			// execution phase and to the individual worker goroutine.
			pprof.Do(ctx, pprof.Labels("dfence_phase", "execute", "dfence_worker", strconv.Itoa(w)), func(ctx context.Context) {
				var st worker
				obs := obsFor(w)
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					t, stop := exec(&st, w, i, obs)
					out[i] = t
					if stop {
						cancel()
						return
					}
				}
			})
		}(w)
	}
	wg.Wait()
	return out
}
