// Batch execution: the worker-pool engine that fans a block of
// independent, seed-determined executions across OS threads. DFENCE's
// synthesis loop (Algorithm 1) gathers K executions per repair round; each
// execution is fully determined by its sched.Options (in particular the
// seed), owns its interp.Machine, and only reads the shared *ir.Program —
// so a round parallelizes embarrassingly. The engine preserves the serial
// semantics exactly: execution i always runs with optsFor(i), results land
// in slot i of the returned slice, and callers merge slots in index order,
// making the outcome bit-identical for any worker count.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// RunBatch executes n independent runs of prog across workers goroutines
// (workers <= 0 selects runtime.NumCPU; workers == 1 runs serially on the
// calling goroutine). Execution i runs with optsFor(i). Each worker owns
// one observer from newObs (nil newObs means no observation); the same
// observer is reused for every execution the worker performs, so reduce
// must drain/reset any per-execution observer state before returning.
//
// Panic isolation: every execution runs under recover. A panic in the
// interpreter or an observer does not kill the batch (or the process) —
// reduce is invoked for that slot with res == nil and a structured
// *ExecError carrying the execution's index, seed, panic value, and stack,
// so one poisoned seed is reported while the remaining slots complete
// normally. Exactly one of res/err is non-nil.
//
// reduce is called once per execution, from the worker goroutine that ran
// it; calls are concurrent across workers but slot i is written by exactly
// one worker, so reduce must only touch the observer it was handed and the
// values it returns. Its T result is stored at out[i]. Returning stop=true
// cancels the batch: outstanding executions are abandoned (their slots
// keep T's zero value, and reduce is never called for them) and remaining
// workers drain via the context. The surrounding ctx cancels the batch
// externally the same way; an execution already in flight when the context
// dies stops at its next budget check and reports TimedOut.
//
// The shared prog must not be mutated while the batch runs. Interpretation
// never writes to it (every interp.Machine owns its memory image), which
// is what makes the fan-out safe — see the -race tests in internal/core.
func RunBatch[T any](ctx context.Context, prog *ir.Program, model memmodel.Model, n, workers int,
	newObs func(worker int) interp.Observer,
	optsFor func(i int) Options,
	reduce func(i int, obs interp.Observer, res *interp.Result, err *ExecError) (T, bool),
) []T {
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	obsFor := func(w int) interp.Observer {
		if newObs == nil {
			return nil
		}
		return newObs(w)
	}
	exec := func(i int, obs interp.Observer) (T, bool) {
		res, err := runSafe(ctx, prog, model, obs, optsFor(i))
		if err != nil {
			err.Index = i
		}
		return reduce(i, obs, res, err)
	}
	if workers <= 1 {
		obs := obsFor(0)
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			t, stop := exec(i, obs)
			out[i] = t
			if stop {
				break
			}
		}
		return out
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obs := obsFor(w)
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				t, stop := exec(i, obs)
				out[i] = t
				if stop {
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return out
}
