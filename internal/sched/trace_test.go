package sched

import (
	"strings"
	"testing"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

func TestRunTracedMatchesRun(t *testing.T) {
	p := buildSB(t)
	opts := DefaultOptions(21)
	plain := Run(p, memmodel.PSO, nil, opts)
	traced, tr := RunTraced(p, memmodel.PSO, nil, opts)
	if plain.Steps != traced.Steps || plain.ExitCode != traced.ExitCode {
		t.Fatalf("tracing changed the execution: %d vs %d steps", plain.Steps, traced.Steps)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	if !strings.Contains(tr.String(), "[PSO]") {
		t.Errorf("trace string %q missing model", tr.String())
	}
}

func TestReplayReproducesExecution(t *testing.T) {
	p := buildSB(t)
	for seed := int64(0); seed < 50; seed++ {
		orig, tr := RunTraced(p, memmodel.PSO, nil, DefaultOptions(seed))
		rep, ok := Replay(p, nil, tr)
		if !ok {
			t.Fatalf("seed %d: replay diverged", seed)
		}
		if len(orig.Output) != len(rep.Output) {
			t.Fatalf("seed %d: outputs %v vs %v", seed, orig.Output, rep.Output)
		}
		for i := range orig.Output {
			if orig.Output[i] != rep.Output[i] {
				t.Fatalf("seed %d: outputs %v vs %v", seed, orig.Output, rep.Output)
			}
		}
		if orig.Steps != rep.Steps {
			t.Fatalf("seed %d: steps %d vs %d", seed, orig.Steps, rep.Steps)
		}
	}
}

func TestReplayReproducesViolation(t *testing.T) {
	// An always-failing assertion: the trace must reproduce the violation.
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	z := b.Const(0)
	b.Assert(z, "boom")
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	mustLink(t, p)
	orig, tr := RunTraced(p, memmodel.TSO, nil, DefaultOptions(5))
	if orig.Violation == nil {
		t.Fatal("no violation recorded")
	}
	rep, ok := Replay(p, nil, tr)
	if !ok || rep.Violation == nil || rep.Violation.Kind != orig.Violation.Kind {
		t.Fatalf("replay lost the violation: ok=%v v=%v", ok, rep.Violation)
	}
}

func TestReplayOnRepairedProgramDiverges(t *testing.T) {
	// Record a PSO schedule of the MP litmus where the stale read occurs,
	// then replay against a fence-inserted program: the witness schedule
	// must no longer produce the stale value (the trace either diverges or
	// completes with the fresh value).
	p := buildMP(t)
	var stale *Trace
	for seed := int64(0); seed < 500 && stale == nil; seed++ {
		opts := DefaultOptions(seed)
		opts.FlushProb = 0.4
		res, tr := RunTraced(p, memmodel.PSO, nil, opts)
		if res.Violation == nil && !res.StepLimitHit && len(res.Output) == 1 && res.Output[0] == 0 {
			stale = tr
		}
	}
	if stale == nil {
		t.Fatal("never observed the stale read")
	}
	// Sanity: replay on the identical program reproduces the stale read.
	rep, ok := Replay(p, nil, stale)
	if !ok || rep.Output[0] != 0 {
		t.Fatalf("witness replay failed: ok=%v out=%v", ok, rep.Output)
	}
	// Insert the store-store fence after the data store.
	fixed := p.Clone()
	var dataStore ir.Label = ir.NoLabel
	for _, in := range fixed.Funcs["producer"].Code {
		if in.Op.String() == "store" && in.Comment == "data" {
			dataStore = in.Label
		}
	}
	if dataStore == ir.NoLabel {
		t.Fatal("data store not found")
	}
	if _, err := fixed.InsertFenceAfter(dataStore, ir.FenceStoreStore); err != nil {
		t.Fatal(err)
	}
	rep2, _ := Replay(fixed, nil, stale)
	for _, v := range rep2.Output {
		if v == 0 {
			t.Fatal("fence-inserted program still produced the stale read under the witness schedule")
		}
	}
}

func TestTraceMergesBursts(t *testing.T) {
	p := buildSB(t)
	_, tr := RunTraced(p, memmodel.TSO, nil, DefaultOptions(3))
	for i := 1; i < len(tr.Decisions); i++ {
		a, b := tr.Decisions[i-1], tr.Decisions[i]
		if !a.Flush && !b.Flush && a.Thread == b.Thread {
			t.Fatalf("adjacent unmerged execution bursts at %d: %+v %+v", i, a, b)
		}
	}
}
