package sched

import (
	"context"
	"testing"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// countObs is a trivial observer used to check per-worker ownership.
type countObs struct{ id int }

func (*countObs) OnSharedAccess(thread int, label ir.Label, kind interp.AccessKind, addr int64, pending []interp.PendingStore) {
}

// batchOutcome is what the RunBatch tests record per execution.
type batchOutcome struct {
	steps  int
	output []int64
}

func batchOptsFor(i int) Options {
	opts := DefaultOptions(int64(i))
	opts.FlushProb = 0.3
	return opts
}

// TestRunBatchMatchesSerial: the same n executions produce identical
// per-slot results for any worker count — the bit-identity claim the
// synthesis loop relies on.
func TestRunBatchMatchesSerial(t *testing.T) {
	p := buildSB(t)
	run := func(workers int) []batchOutcome {
		return RunBatch(context.Background(), p, memmodel.PSO, 64, workers, nil, batchOptsFor,
			func(i int, _ interp.Observer, res *interp.Result) (batchOutcome, bool) {
				return batchOutcome{steps: res.Steps, output: res.Output}, false
			})
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 8} {
		parallel := run(workers)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d slots, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if serial[i].steps != parallel[i].steps {
				t.Fatalf("workers=%d slot %d: steps %d != serial %d", workers, i, parallel[i].steps, serial[i].steps)
			}
			if len(serial[i].output) != len(parallel[i].output) {
				t.Fatalf("workers=%d slot %d: output length differs", workers, i)
			}
			for j := range serial[i].output {
				if serial[i].output[j] != parallel[i].output[j] {
					t.Fatalf("workers=%d slot %d: output[%d] %d != serial %d",
						workers, i, j, parallel[i].output[j], serial[i].output[j])
				}
			}
		}
	}
}

// TestRunBatchEarlyStop: a stop verdict cancels the batch. With one
// worker the cut is exact; with many workers the stopping slot must still
// be filled and the batch must terminate.
func TestRunBatchEarlyStop(t *testing.T) {
	p := buildSB(t)
	const stopAt = 5
	serial := RunBatch(context.Background(), p, memmodel.PSO, 32, 1, nil, batchOptsFor,
		func(i int, _ interp.Observer, res *interp.Result) (bool, bool) {
			return true, i == stopAt
		})
	for i, ran := range serial {
		if want := i <= stopAt; ran != want {
			t.Fatalf("serial early stop: slot %d ran=%v, want %v", i, ran, want)
		}
	}
	parallel := RunBatch(context.Background(), p, memmodel.PSO, 32, 4, nil, batchOptsFor,
		func(i int, _ interp.Observer, res *interp.Result) (bool, bool) {
			return true, i == stopAt
		})
	if !parallel[stopAt] {
		t.Fatal("parallel early stop: stopping slot was not recorded")
	}
}

// TestRunBatchCancelledContext: a pre-cancelled context runs nothing.
func TestRunBatchCancelledContext(t *testing.T) {
	p := buildSB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := RunBatch(ctx, p, memmodel.PSO, 16, workers, nil, batchOptsFor,
			func(i int, _ interp.Observer, res *interp.Result) (bool, bool) {
				return true, false
			})
		for i, r := range ran {
			if r {
				t.Fatalf("workers=%d: slot %d ran under a cancelled context", workers, i)
			}
		}
	}
}

// TestRunBatchObserverPerWorker: every worker gets its own observer and
// reduce receives the observer of the worker that ran the execution.
func TestRunBatchObserverPerWorker(t *testing.T) {
	p := buildSB(t)
	made := make(chan int, 16)
	RunBatch(context.Background(), p, memmodel.PSO, 16, 4,
		func(w int) interp.Observer { made <- w; return &countObs{id: w} },
		batchOptsFor,
		func(i int, obs interp.Observer, res *interp.Result) (struct{}, bool) {
			if _, ok := obs.(*countObs); !ok {
				t.Errorf("slot %d: reduce got observer %T, want *countObs", i, obs)
			}
			return struct{}{}, false
		})
	close(made)
	seen := map[int]bool{}
	for w := range made {
		if seen[w] {
			t.Fatalf("worker %d got two observers", w)
		}
		seen[w] = true
	}
	if len(seen) == 0 {
		t.Fatal("no observers constructed")
	}
}
