package sched

import (
	"context"
	"testing"
	"time"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// countObs is a trivial observer used to check per-worker ownership.
type countObs struct{ id int }

func (*countObs) OnSharedAccess(thread int, label ir.Label, kind interp.AccessKind, addr int64, pending []interp.PendingStore) {
}

// batchOutcome is what the RunBatch tests record per execution.
type batchOutcome struct {
	steps  int
	output []int64
}

func batchOptsFor(i int) Options {
	opts := DefaultOptions(int64(i))
	opts.FlushProb = 0.3
	return opts
}

// TestRunBatchMatchesSerial: the same n executions produce identical
// per-slot results for any worker count — the bit-identity claim the
// synthesis loop relies on.
func TestRunBatchMatchesSerial(t *testing.T) {
	p := buildSB(t)
	run := func(workers int) []batchOutcome {
		return RunBatch(context.Background(), p, memmodel.PSO, 64, workers, nil, batchOptsFor,
			func(i, _ int, _ interp.Observer, res *interp.Result, err *ExecError) (batchOutcome, bool) {
				if err != nil {
					t.Errorf("slot %d: unexpected exec error: %v", i, err)
					return batchOutcome{}, false
				}
				// res.Output aliases the pooled worker machine (see the
				// worker-ownership invariant); copy before retaining.
				return batchOutcome{steps: res.Steps, output: append([]int64(nil), res.Output...)}, false
			})
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 8} {
		parallel := run(workers)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d slots, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if serial[i].steps != parallel[i].steps {
				t.Fatalf("workers=%d slot %d: steps %d != serial %d", workers, i, parallel[i].steps, serial[i].steps)
			}
			if len(serial[i].output) != len(parallel[i].output) {
				t.Fatalf("workers=%d slot %d: output length differs", workers, i)
			}
			for j := range serial[i].output {
				if serial[i].output[j] != parallel[i].output[j] {
					t.Fatalf("workers=%d slot %d: output[%d] %d != serial %d",
						workers, i, j, parallel[i].output[j], serial[i].output[j])
				}
			}
		}
	}
}

// TestRunBatchEarlyStop: a stop verdict cancels the batch. With one
// worker the cut is exact; with many workers the stopping slot must still
// be filled and the batch must terminate.
func TestRunBatchEarlyStop(t *testing.T) {
	p := buildSB(t)
	const stopAt = 5
	serial := RunBatch(context.Background(), p, memmodel.PSO, 32, 1, nil, batchOptsFor,
		func(i, _ int, _ interp.Observer, res *interp.Result, err *ExecError) (bool, bool) {
			return true, i == stopAt
		})
	for i, ran := range serial {
		if want := i <= stopAt; ran != want {
			t.Fatalf("serial early stop: slot %d ran=%v, want %v", i, ran, want)
		}
	}
	parallel := RunBatch(context.Background(), p, memmodel.PSO, 32, 4, nil, batchOptsFor,
		func(i, _ int, _ interp.Observer, res *interp.Result, err *ExecError) (bool, bool) {
			return true, i == stopAt
		})
	if !parallel[stopAt] {
		t.Fatal("parallel early stop: stopping slot was not recorded")
	}
}

// TestRunBatchCancelledContext: a pre-cancelled context runs nothing.
func TestRunBatchCancelledContext(t *testing.T) {
	p := buildSB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := RunBatch(ctx, p, memmodel.PSO, 16, workers, nil, batchOptsFor,
			func(i, _ int, _ interp.Observer, res *interp.Result, err *ExecError) (bool, bool) {
				return true, false
			})
		for i, r := range ran {
			if r {
				t.Fatalf("workers=%d: slot %d ran under a cancelled context", workers, i)
			}
		}
	}
}

// TestRunBatchObserverPerWorker: every worker gets its own observer and
// reduce receives the observer of the worker that ran the execution.
func TestRunBatchObserverPerWorker(t *testing.T) {
	p := buildSB(t)
	made := make(chan int, 16)
	RunBatch(context.Background(), p, memmodel.PSO, 16, 4,
		func(w int) interp.Observer { made <- w; return &countObs{id: w} },
		batchOptsFor,
		func(i, _ int, obs interp.Observer, res *interp.Result, err *ExecError) (struct{}, bool) {
			if _, ok := obs.(*countObs); !ok {
				t.Errorf("slot %d: reduce got observer %T, want *countObs", i, obs)
			}
			return struct{}{}, false
		})
	close(made)
	seen := map[int]bool{}
	for w := range made {
		if seen[w] {
			t.Fatalf("worker %d got two observers", w)
		}
		seen[w] = true
	}
	if len(seen) == 0 {
		t.Fatal("no observers constructed")
	}
}

// panicObs panics on the nth shared access it sees.
type panicObs struct{ n, seen int }

func (o *panicObs) OnSharedAccess(thread int, label ir.Label, kind interp.AccessKind, addr int64, pending []interp.PendingStore) {
	o.seen++
	if o.seen >= o.n {
		panic("injected observer panic")
	}
}

// TestRunBatchPanicIsolation is the containment guarantee: an injected
// panic in slot i is recovered into a structured ExecError naming the
// execution's index and seed, and every other slot is bit-identical to a
// serial run without the fault.
func TestRunBatchPanicIsolation(t *testing.T) {
	p := buildSB(t)
	const n, poisoned = 48, 17
	// FlushProb 0 keeps both stores buffered until each thread's load, so
	// every execution performs exactly two observed shared accesses and the
	// injected panic (on the second) fires deterministically.
	optsFor := func(i int) Options {
		opts := batchOptsFor(i)
		opts.FlushProb = 0
		return opts
	}
	clean := RunBatch(context.Background(), p, memmodel.PSO, n, 1, nil, optsFor,
		func(i, _ int, _ interp.Observer, res *interp.Result, err *ExecError) (batchOutcome, bool) {
			if err != nil {
				t.Fatalf("clean run: slot %d errored: %v", i, err)
			}
			// res.Output aliases the pooled worker machine (see the
				// worker-ownership invariant); copy before retaining.
				return batchOutcome{steps: res.Steps, output: append([]int64(nil), res.Output...)}, false
		})
	faultyOptsFor := func(i int) Options {
		opts := optsFor(i)
		if i == poisoned {
			opts.Wrap = func(obs interp.Observer) interp.Observer { return &panicObs{n: 2} }
		}
		return opts
	}
	for _, workers := range []int{1, 4, 8} {
		var gotErr *ExecError
		faulty := RunBatch(context.Background(), p, memmodel.PSO, n, workers, nil, faultyOptsFor,
			func(i, _ int, _ interp.Observer, res *interp.Result, err *ExecError) (batchOutcome, bool) {
				if err != nil {
					if i != poisoned {
						t.Errorf("workers=%d: unexpected error in slot %d: %v", workers, i, err)
					}
					gotErr = err
					return batchOutcome{}, false
				}
				// res.Output aliases the pooled worker machine (see the
				// worker-ownership invariant); copy before retaining.
				return batchOutcome{steps: res.Steps, output: append([]int64(nil), res.Output...)}, false
			})
		if gotErr == nil {
			t.Fatalf("workers=%d: injected panic was not reported", workers)
		}
		if gotErr.Index != poisoned || gotErr.Seed != batchOptsFor(poisoned).Seed {
			t.Errorf("workers=%d: ExecError names index %d seed %d, want %d/%d",
				workers, gotErr.Index, gotErr.Seed, poisoned, batchOptsFor(poisoned).Seed)
		}
		if gotErr.Panic != "injected observer panic" || gotErr.Stack == "" {
			t.Errorf("workers=%d: ExecError payload incomplete: panic=%v stackLen=%d",
				workers, gotErr.Panic, len(gotErr.Stack))
		}
		for i := range clean {
			if i == poisoned {
				continue
			}
			if clean[i].steps != faulty[i].steps || len(clean[i].output) != len(faulty[i].output) {
				t.Fatalf("workers=%d: slot %d diverged from serial clean run", workers, i)
			}
			for j := range clean[i].output {
				if clean[i].output[j] != faulty[i].output[j] {
					t.Fatalf("workers=%d: slot %d output diverged from serial clean run", workers, i)
				}
			}
		}
	}
}

// TestRunSafeRecoversPanic: the serial entry point reports the panic too.
func TestRunSafeRecoversPanic(t *testing.T) {
	p := buildSB(t)
	opts := batchOptsFor(7)
	opts.Wrap = func(obs interp.Observer) interp.Observer { return &panicObs{n: 1} }
	res, err := RunSafe(p, memmodel.PSO, nil, opts)
	if err == nil || res != nil {
		t.Fatalf("RunSafe did not report the panic: res=%v err=%v", res, err)
	}
	if err.Seed != opts.Seed || err.Index != -1 || err.Round != -1 {
		t.Errorf("ExecError = %+v, want seed %d and -1 round/index", err, opts.Seed)
	}
	if err.Error() == "" {
		t.Error("ExecError.Error is empty")
	}
	// Without the fault the same options succeed.
	opts.Wrap = nil
	res, err = RunSafe(p, memmodel.PSO, nil, opts)
	if err != nil || res == nil {
		t.Fatalf("clean RunSafe failed: res=%v err=%v", res, err)
	}
}

// TestRunTimeout: an infinite loop with a tiny wall-clock budget stops and
// reports TimedOut instead of spinning until the step limit.
func TestRunTimeout(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	head := b.NextLabel()
	b.Br(head)
	finish(t, b)
	mustLink(t, p)
	opts := DefaultOptions(1)
	opts.MaxSteps = 1 << 30 // effectively unbounded: the timeout must cut first
	opts.Timeout = time.Millisecond
	res := Run(p, memmodel.TSO, nil, opts)
	if !res.TimedOut {
		t.Fatal("execution did not report TimedOut")
	}
	if res.StepLimitHit || res.Violation != nil {
		t.Fatalf("timeout misclassified: stepLimit=%v violation=%v", res.StepLimitHit, res.Violation)
	}
}
