package sched

import (
	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// StepFact describes one replayed transition at the level of detail the
// violation-witness explainer renders: which instruction ran (or which
// buffered store committed), the concrete addresses and values involved,
// and whether a store was buffered rather than made visible. Facts come
// from ReplayExplained, which re-executes a recorded Trace and inspects
// the machine around every transition — none of this instrumentation
// exists on the hot execution path.
type StepFact struct {
	Thread int
	// Exec is true when an instruction executed; false for flush steps
	// (scheduled or forced).
	Exec  bool
	Instr ir.Instr // the executed instruction (valid when Exec)
	Func  string   // enclosing function (valid when Exec)

	// Memory-access operands, resolved from registers before the step.
	Addr    int64
	Val     int64
	HasAddr bool
	HasVal  bool
	// Buffered: the store entered this thread's store buffer (invisible
	// to other threads until a flush). FromBuffer: the load was satisfied
	// by this thread's own buffer (LOAD-B), not main memory.
	Buffered   bool
	FromBuffer bool

	// Flush facts: a buffered store committed to main memory this step.
	// Forced marks commits triggered by a fence/CAS/fork/join drain
	// rather than a scheduler flush decision.
	Flush      bool
	Forced     bool
	FlushAddr  int64
	FlushVal   int64
	FlushLabel ir.Label // label of the store instruction whose write committed

	// Violated is set on the step that raised the violation.
	Violated *interp.Violation
}

// snapshotBuf copies a thread's pending entries (All allocates a fresh
// slice already, so this is just a call).
func snapshotBuf(t *interp.Thread) []memmodel.Entry { return t.Buffers().All() }

// removedEntry finds the entry present in before but missing from after
// (the one a flush committed). Both slices come from Buffers.All, whose
// order is stable under removal of a single element.
func removedEntry(before, after []memmodel.Entry) (memmodel.Entry, bool) {
	if len(before) != len(after)+1 {
		return memmodel.Entry{}, false
	}
	for i := range after {
		if before[i] != after[i] {
			return before[i], true
		}
	}
	return before[len(before)-1], true
}

// ReplayExplained re-executes a recorded schedule against prog,
// producing a StepFact per transition alongside the final result. Like
// Replay it is best-effort against a modified program: ok=false means
// the schedule stopped applying partway (facts cover the prefix that
// did apply). The fact stream stops at the first violation; the
// deterministic drain that completes the execution afterwards is not
// recorded (it is not part of the witness).
func ReplayExplained(prog *ir.Program, tr *Trace) (facts []StepFact, res *interp.Result, ok bool) {
	m := interp.NewMachine(prog, tr.Model, nil)
	ok = true

	// step performs one transition of thread tid (forced=false for
	// scheduler flush decisions with the given addr; addr<0 means an
	// execution step) and appends its fact. Returns false when the
	// machine reached a violation.
	step := func(tid int, flushAddr int64, explicitFlush bool) bool {
		t := m.Thread(tid)
		before := snapshotBuf(t)
		fact := StepFact{Thread: tid}

		if explicitFlush {
			m.FlushOne(tid, flushAddr)
			fact.Flush = true
		} else {
			in := m.CurrentInstr(tid)
			if in != nil {
				fact.Func = m.CurrentFunc(tid)
				switch in.Op {
				case ir.OpLoad:
					if a, aok := m.RegValue(tid, in.A); aok {
						fact.Addr, fact.HasAddr = a, true
						_, fact.FromBuffer = t.Buffers().Lookup(a)
					}
				case ir.OpStore:
					if a, aok := m.RegValue(tid, in.A); aok {
						fact.Addr, fact.HasAddr = a, true
					}
					if v, vok := m.RegValue(tid, in.B); vok {
						fact.Val, fact.HasVal = v, true
					}
				case ir.OpCas:
					if a, aok := m.RegValue(tid, in.A); aok {
						fact.Addr, fact.HasAddr = a, true
					}
				}
			}
			kind := m.StepThread(tid)
			switch kind {
			case interp.StepFlush:
				// The instruction needed drained buffers: this transition
				// committed a store instead of executing in.
				fact.Flush, fact.Forced = true, true
			default:
				fact.Exec = true
				if in != nil {
					fact.Instr = *in
					if in.Op == ir.OpStore && !in.ThreadLocal && tr.Model != memmodel.SC {
						fact.Buffered = true
					}
					if in.Op == ir.OpLoad && in.Dst != ir.NoReg {
						if v, vok := m.RegValue(tid, in.Dst); vok {
							fact.Val, fact.HasVal = v, true
						}
					}
				}
			}
		}

		if fact.Flush {
			if e, found := removedEntry(before, snapshotBuf(t)); found {
				fact.FlushAddr, fact.FlushVal, fact.FlushLabel = e.Addr, e.Val, e.Label
			}
		}
		if v := m.Violation(); v != nil {
			fact.Violated = v
		}
		facts = append(facts, fact)
		return m.Violation() == nil
	}

	for _, d := range tr.Decisions {
		if d.Thread >= m.NumThreads() {
			return facts, m.Result(false), false
		}
		if d.Flush {
			if !m.CanFlush(d.Thread) {
				return facts, m.Result(false), false
			}
			if !step(d.Thread, d.Addr, true) {
				return facts, m.Result(false), true
			}
			continue
		}
		for i := 0; i < d.Steps; i++ {
			if !m.CanExec(d.Thread) && !m.CanFlush(d.Thread) {
				return facts, m.Result(false), false
			}
			if !step(d.Thread, -1, false) {
				return facts, m.Result(false), true
			}
		}
	}
	// Complete the execution deterministically (unrecorded — the witness
	// is the recorded prefix).
	for guard := 0; !m.Done() && guard < 1_000_000; guard++ {
		moved := false
		for tid := 0; tid < m.NumThreads(); tid++ {
			if m.CanExec(tid) {
				m.StepThread(tid)
				moved = true
				break
			}
			if m.CanFlush(tid) {
				pend := m.Thread(tid).Buffers().PendingAddrs()
				m.FlushOne(tid, pend[0])
				moved = true
				break
			}
		}
		if !moved {
			break
		}
	}
	return facts, m.Result(false), ok
}
