// Package sched implements DFENCE's flush-delaying demonic scheduler
// (paper §5.2). At every step it picks an enabled thread at random; if the
// chosen thread has pending buffered stores, a coin weighted by the flush
// probability decides between flushing one store to main memory and letting
// the thread execute its next instruction. Small flush probabilities keep
// stores buffered longer, which is what exposes relaxed-memory violations;
// large ones make the execution look sequentially consistent.
//
// The scheduler also applies the paper's partial-order reduction: a thread
// that keeps accessing only registers or provably thread-local memory is
// not context-switched (bounded by PORWindow so that local infinite loops
// still yield).
package sched

import (
	"math/rand"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// Strategy selects how the demonic scheduler picks among enabled threads.
type Strategy uint8

const (
	// Random picks uniformly at random each step — the paper's scheduler.
	Random Strategy = iota
	// Priority is a PCT-style scheduler (the paper's "more advanced
	// demonic schedulers" future work): every thread carries a random
	// priority, the highest-priority enabled thread always runs, and at
	// random change points the running thread's priority is demoted. Long
	// uninterrupted windows plus rare, adversarial preemptions expose a
	// different class of interleavings than uniform choice.
	Priority
)

func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case Priority:
		return "priority"
	}
	return "strategy(?)"
}

// Options configures one execution.
type Options struct {
	// Seed drives the pseudo-random choices; equal seeds give identical
	// executions.
	Seed int64
	// Strategy selects the thread-choice discipline (default Random).
	Strategy Strategy
	// ChangePoints is the expected number of priority demotions per 1000
	// steps for the Priority strategy (default 30).
	ChangePoints int
	// FlushProb is the probability that a thread with pending buffered
	// stores flushes one instead of executing (paper §6.5: ~0.1 for TSO,
	// ~0.5 for PSO).
	FlushProb float64
	// MaxSteps bounds the execution; runs that exceed it are reported with
	// StepLimitHit and treated as inconclusive.
	MaxSteps int
	// PORWindow bounds consecutive local-only steps a thread may take
	// without a scheduling decision. 0 disables partial-order reduction.
	PORWindow int
}

// DefaultOptions returns the settings used throughout the evaluation:
// flush probability 0.5 (the paper's PSO sweet spot), a generous step
// budget, and POR enabled.
func DefaultOptions(seed int64) Options {
	return Options{Seed: seed, FlushProb: 0.5, MaxSteps: 200000, PORWindow: 64}
}

// Run executes prog once under the given memory model and scheduling
// options. obs may be nil. The returned result carries the violation (if
// any), the operation history, and bookkeeping.
func Run(prog *ir.Program, model memmodel.Model, obs interp.Observer, opts Options) *interp.Result {
	return run(prog, model, obs, opts, nil)
}

func run(prog *ir.Program, model memmodel.Model, obs interp.Observer, opts Options, tr *Trace) *interp.Result {
	m := interp.NewMachine(prog, model, obs)
	rng := rand.New(rand.NewSource(opts.Seed))
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 200000
	}
	changePoints := opts.ChangePoints
	if changePoints <= 0 {
		changePoints = 30
	}
	var priorities []float64

	var actable []int
	for m.Steps() < maxSteps {
		if m.Done() {
			return m.Result(false)
		}
		actable = actable[:0]
		n := len(m.Threads())
		for tid := 0; tid < n; tid++ {
			if m.Actable(tid) {
				actable = append(actable, tid)
			}
		}
		if len(actable) == 0 {
			res := m.Result(false)
			res.Violation = &interp.Violation{
				Kind:  interp.VDeadlock,
				Label: ir.NoLabel,
				Msg:   "no thread can make progress",
			}
			return res
		}
		var tid int
		switch opts.Strategy {
		case Priority:
			for len(priorities) < n {
				priorities = append(priorities, rng.Float64())
			}
			tid = actable[0]
			for _, cand := range actable[1:] {
				if priorities[cand] > priorities[tid] {
					tid = cand
				}
			}
			// Random change point: demote the chosen thread below everyone.
			if rng.Intn(1000) < changePoints {
				priorities[tid] = rng.Float64() * priorities[lowest(priorities)]
			}
		default:
			tid = actable[rng.Intn(len(actable))]
		}
		t := m.Threads()[tid]

		if !m.CanExec(tid) {
			// Finished or join-blocked thread with pending stores: its only
			// action is a flush.
			flushOne(m, t, tid, rng, tr)
			continue
		}
		if !t.Buffers().Empty() && rng.Float64() < opts.FlushProb {
			flushOne(m, t, tid, rng, tr)
			continue
		}
		kind := m.StepThread(tid)
		if tr != nil {
			tr.record(tid, false, 0)
		}
		// Partial-order reduction: keep running a thread that only touches
		// local state — interleaving such steps with other threads cannot
		// change any observable outcome.
		for local := 0; kind == interp.StepLocal && local < opts.PORWindow; local++ {
			if m.Violation() != nil || m.Steps() >= maxSteps || !m.CanExec(tid) {
				break
			}
			kind = m.StepThread(tid)
			if tr != nil {
				tr.record(tid, false, 0)
			}
		}
	}
	return m.Result(true)
}

// lowest returns the index of the smallest priority.
func lowest(ps []float64) int {
	best := 0
	for i, p := range ps {
		if p < ps[best] {
			best = i
		}
	}
	return best
}

// flushOne commits one pending store of thread t, choosing the flushed
// variable uniformly among those with pending entries (under PSO the
// scheduler "can choose to flush only values for a particular variable").
func flushOne(m *interp.Machine, t *interp.Thread, tid int, rng *rand.Rand, tr *Trace) {
	pend := t.Buffers().PendingAddrs()
	if len(pend) == 0 {
		return
	}
	addr := pend[rng.Intn(len(pend))]
	m.FlushOne(tid, addr)
	if tr != nil {
		tr.record(tid, true, addr)
	}
}
