// Package sched implements DFENCE's flush-delaying demonic scheduler
// (paper §5.2). At every step it picks an enabled thread at random; if the
// chosen thread has pending buffered stores, a coin weighted by the flush
// probability decides between flushing one store to main memory and letting
// the thread execute its next instruction. Small flush probabilities keep
// stores buffered longer, which is what exposes relaxed-memory violations;
// large ones make the execution look sequentially consistent.
//
// The scheduler also applies the paper's partial-order reduction: a thread
// that keeps accessing only registers or provably thread-local memory is
// not context-switched (bounded by PORWindow so that local infinite loops
// still yield).
package sched

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"time"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/trace"
)

// Strategy selects how the demonic scheduler picks among enabled threads.
type Strategy uint8

const (
	// Random picks uniformly at random each step — the paper's scheduler.
	Random Strategy = iota
	// Priority is a PCT-style scheduler (the paper's "more advanced
	// demonic schedulers" future work): every thread carries a random
	// priority, the highest-priority enabled thread always runs, and at
	// random change points the running thread's priority is demoted. Long
	// uninterrupted windows plus rare, adversarial preemptions expose a
	// different class of interleavings than uniform choice.
	Priority
)

func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case Priority:
		return "priority"
	}
	return "strategy(?)"
}

// Options configures one execution.
type Options struct {
	// Seed drives the pseudo-random choices; equal seeds give identical
	// executions.
	Seed int64
	// Strategy selects the thread-choice discipline (default Random).
	Strategy Strategy
	// ChangePoints is the expected number of priority demotions per 1000
	// steps for the Priority strategy (default 30).
	ChangePoints int
	// FlushProb is the probability that a thread with pending buffered
	// stores flushes one instead of executing (paper §6.5: ~0.1 for TSO,
	// ~0.5 for PSO).
	FlushProb float64
	// ResolveProb is the probability that a thread with deferred loads
	// (load-deferring models such as RMO) resolves one — at a uniformly
	// random queue position, which is what realizes load-load/load-store
	// reordering — instead of executing. 0 means "use FlushProb", keeping
	// the two delay disciplines aligned by default.
	ResolveProb float64
	// MaxSteps bounds the execution; runs that exceed it are reported with
	// StepLimitHit and treated as inconclusive.
	MaxSteps int
	// PORWindow bounds consecutive local-only steps a thread may take
	// without a scheduling decision. 0 disables partial-order reduction.
	PORWindow int
	// Starve enables the starvation discipline: the first buffered store
	// the scheduler is asked to flush names a per-execution victim
	// (thread, variable) whose buffer entries are never flushed
	// voluntarily afterwards — only a fence, a CAS, or global lack of
	// progress forces them out. Under the plain coin a store survives k
	// flush opportunities with probability (1-FlushProb)^k, so witnesses
	// that need one store to land very late (2+2W-style write cycles,
	// where a finished thread's buffered store must outlive another
	// thread's whole run) are exponentially unlikely; the vow makes the
	// maximal delay of one store a certainty per execution. Victim choice
	// is seed-deterministic.
	Starve bool
	// StarveLoads enables the load-starvation discipline (meaningful only
	// under load-deferring models): the first thread the scheduler picks
	// whose next instruction would force-resolve a pending deferred load
	// names a per-execution victim; the victim is not executed while
	// another thread can make real progress — it may still flush and
	// resolve by coin, but its dependent instruction waits. This is the
	// load-class analogue of Starve. A deferred load's window typically
	// ends one instruction after it opens (the loaded register is used
	// almost immediately, which force-resolves), so witnesses that need
	// one thread's load to out-defer another thread's entire run
	// (one-sided load-buffering residuals) require the scheduler to avoid
	// the deferring thread for the whole window — exponentially unlikely
	// under uniform picks; the vow makes it a certainty. A single victim,
	// not all deferring threads: vowing everyone blocks every thread's
	// progress at once and the witness's ordering dissolves into coin
	// noise. Victim choice is seed-deterministic, and the vow is released
	// (and re-chooseable) once the victim's deferred queue drains.
	// Liveness is preserved: the vow yields when no other thread can
	// execute.
	StarveLoads bool
	// Timeout bounds the execution's wall-clock time (0 = none). A run
	// that exceeds it stops at the next budget check and is reported with
	// TimedOut set — inconclusive, like a step-limit hit. Unlike MaxSteps
	// this depends on machine speed, so it trades determinism for liveness;
	// leave it zero when bit-identical results matter.
	Timeout time.Duration
	// MaxIters bounds scheduler-loop iterations (0 = none). MaxSteps only
	// counts machine steps, so a portfolio phase whose delay disciplines
	// keep deferring — the starve-loads phases on programs where every pick
	// lands on the vowed victim — can spin indefinitely without ever
	// tripping it; Timeout cuts such runs but is machine-dependent. MaxIters
	// is the deterministic budget: a run that exceeds it stops with
	// StepLimitHit set (inconclusive), identically on every machine.
	MaxIters int
	// Portfolio tags this execution with its scheduler-portfolio phase
	// (core.portfolioPhase's cycle index) for trace attribution. Purely
	// observational.
	Portfolio uint8
	// Tracer, if non-nil, receives one ExecDone per execution (exact
	// per-portfolio aggregates plus sampled exec spans) on lane traceLane.
	// Purely observational: results are bit-identical with or without it.
	Tracer *trace.Tracer
	// traceLane is the Tracer lane this execution reports to; batch
	// runners set it to worker+1 (lane 0 is the coordinator).
	traceLane int
	// Wrap, if non-nil, wraps the observer for this execution only. It is
	// invoked once per run with the caller's observer (possibly nil) and
	// its result receives the execution's notifications. This is the
	// per-execution hook the fault-injection harness uses; batch callers
	// can set it from optsFor(i) to target individual executions while
	// workers keep reusing their own observers.
	Wrap func(obs interp.Observer) interp.Observer
}

// budgetCheckEvery is how many scheduler iterations pass between wall-clock
// and context checks; each iteration advances at least one machine step, so
// budget overruns are bounded by ~1024 steps. The check also runs once at
// iteration 0, so an already-expired budget (or context) cuts even
// executions far shorter than the check interval.
const budgetCheckEvery = 1024

// ExecError describes a panic recovered from one execution: the interpreter
// (or an observer) panicked, the worker recovered, and the batch reports the
// poisoned execution instead of crashing the process. The seed makes the
// failure reproducible with sched.Run under the same program and options.
type ExecError struct {
	// Round is the synthesis repair round, filled by the core loop
	// (-1 when the execution was not part of a synthesis round).
	Round int
	// Index is the execution's index within its batch (-1 outside batches).
	Index int
	// Seed is the execution's scheduler seed.
	Seed int64
	// Panic is the recovered panic value.
	Panic any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("execution panicked (round %d, index %d, seed %d): %v", e.Round, e.Index, e.Seed, e.Panic)
}

// DefaultOptions returns the settings used throughout the evaluation:
// flush probability 0.5 (the paper's PSO sweet spot), a generous step
// budget, and POR enabled.
func DefaultOptions(seed int64) Options {
	return Options{Seed: seed, FlushProb: 0.5, MaxSteps: 200000, PORWindow: 64}
}

// worker is the reusable per-execution state of one scheduler goroutine:
// the pooled interpreter machine, the RNG (re-seeded per execution, never
// re-allocated), and the scratch slices of the scheduling loop. A worker
// is owned by exactly one goroutine — see the worker-ownership invariant
// in the package comment of batch.go. The zero worker is ready to use.
type worker struct {
	m          interp.Machine
	rng        schedRNG
	actable    []int
	census     []uint8
	priorities []float64
	// Starvation vow of the current execution (Options.Starve): once
	// stChosen, thread stTid's buffer entries for stAddr are only flushed
	// under duress, until starveVowSteps machine steps after stSteps.
	// Reset per run.
	stChosen bool
	stTid    int
	stAddr   int64
	stSteps  int
	// Load-starvation vow (Options.StarveLoads): once ldChosen, thread
	// ldTid is not executed past a force-resolving instruction while
	// another thread can execute. Released when ldTid's deferred queue
	// drains. Reset per run.
	ldChosen bool
	ldTid    int
}

// Run executes prog once under the given memory model and scheduling
// options. obs may be nil. The returned result carries the violation (if
// any), the operation history, and bookkeeping. A panic in the interpreter
// or an observer propagates; use RunSafe where isolation is required.
// Run compiles prog on the spot and discards the machine afterwards, so
// its Result has no aliasing hazard; batch callers use RunBatch, which
// compiles once and pools machines across executions.
func Run(prog *ir.Program, model memmodel.Model, obs interp.Observer, opts Options) *interp.Result {
	var w worker
	return w.run(context.Background(), interp.Compile(prog), model, obs, opts, nil)
}

// RunSafe is Run with panic isolation: a panic anywhere in the execution
// (interpreter, memory model, or observer) is recovered and returned as a
// structured *ExecError (with Round/Index -1; batch callers fill them)
// instead of crashing the caller. res is nil exactly when err is non-nil.
func RunSafe(prog *ir.Program, model memmodel.Model, obs interp.Observer, opts Options) (res *interp.Result, err *ExecError) {
	var w worker
	return w.runSafe(context.Background(), interp.Compile(prog), model, obs, opts)
}

func (w *worker) runSafe(ctx context.Context, c *interp.Compiled, model memmodel.Model, obs interp.Observer, opts Options) (res *interp.Result, err *ExecError) {
	defer func() {
		if p := recover(); p != nil {
			res = nil
			err = &ExecError{Round: -1, Index: -1, Seed: opts.Seed, Panic: p, Stack: string(debug.Stack())}
		}
	}()
	if opts.Tracer == nil {
		// Disabled hot path: no clock reads, no extra branches inside run.
		return w.run(ctx, c, model, obs, opts, nil), nil
	}
	start := time.Now()
	r := w.run(ctx, c, model, obs, opts, nil)
	opts.Tracer.ExecDone(opts.traceLane, opts.Portfolio, time.Since(start), r.SchedIters, r.Steps, r.SchedSpins, opts.Seed)
	return r, nil
}

func (w *worker) run(ctx context.Context, c *interp.Compiled, model memmodel.Model, obs interp.Observer, opts Options, tr *Trace) *interp.Result {
	if opts.Wrap != nil {
		obs = opts.Wrap(obs)
	}
	m := &w.m
	m.Reset(c, model, obs)
	// Re-seeding restarts the exact stream a fresh generator would
	// produce (schedRNG's state is a pure function of the seed), so
	// worker reuse cannot perturb the schedule.
	w.rng.Seed(opts.Seed)
	rng := &w.rng
	w.stChosen = false
	w.ldChosen = false
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 200000
	}
	changePoints := opts.ChangePoints
	if changePoints <= 0 {
		changePoints = 30
	}
	resolveProb := opts.ResolveProb
	if resolveProb == 0 {
		resolveProb = opts.FlushProb
	}
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	priorities := w.priorities[:0]
	defer func() { w.priorities = priorities[:0] }()

	actable := w.actable[:0]
	census := w.census
	defer func() { w.actable = actable[:0]; w.census = census }()
	// refresh tracks how much of the census the machine's last mutation
	// could have invalidated. Deferral iterations whose coins all came up
	// tails change only RNG and priority state, so the previous census
	// (actable, anyExec — and the done/deadlock verdicts it implies) is
	// still exact and no rescan runs. A mutation confined to one thread
	// (flush, resolve, non-fork step) re-derives that thread's byte only;
	// the full O(threads) frame-and-queue walk happens just when a fork
	// changed the thread count or a thread became drained-finished (the
	// one transition that can flip other threads' join readiness). The
	// census values are pure derived state, so the rebuilt actable set —
	// and hence the RNG-driven schedule — is bit-identical to a full
	// rescan every iteration.
	const (
		refreshNone = iota
		refreshThread
		refreshAll
	)
	refresh, refreshTid := refreshAll, 0
	var anyExec bool
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = math.MaxInt
	}
	// iter counts scheduler-loop iterations (steps + deferrals); spins
	// counts just the iterations that deferred without acting. Both land in
	// the Result at every return below — observational bookkeeping the
	// tracer and the MaxIters budget share.
	iter, spins := 0, 0
	for ; m.Steps() < maxSteps && iter < maxIters; iter++ {
		if iter%budgetCheckEvery == 0 {
			if ctx.Err() != nil || (!deadline.IsZero() && time.Now().After(deadline)) {
				res := m.Result(false)
				res.TimedOut = true
				res.SchedIters, res.SchedSpins = iter, spins
				return res
			}
		}
		if refresh != refreshNone {
			if m.Violation() != nil {
				res := m.Result(false)
				res.SchedIters, res.SchedSpins = iter, spins
				return res
			}
			if refresh == refreshThread && m.NumThreads() == len(census) {
				m.SchedCensusOne(census, refreshTid)
				if census[refreshTid] == interp.CensusFinished {
					refresh = refreshAll // newly joinable: others may wake
				}
			} else {
				refresh = refreshAll // fork grew the thread set
			}
			if refresh == refreshAll {
				census = m.SchedCensus(census[:0])
			}
			actable = actable[:0]
			anyExec = false
			done := true
			for tid, f := range census {
				if f&interp.CensusActable != 0 {
					actable = append(actable, tid)
					anyExec = anyExec || f&interp.CensusExec != 0
					done = false
				} else if f&interp.CensusFinished == 0 {
					done = false // alive but join-blocked: not done, not actable
				}
			}
			if done {
				res := m.Result(false)
				res.SchedIters, res.SchedSpins = iter, spins
				return res
			}
			if len(actable) == 0 {
				res := m.Result(false)
				res.Violation = &interp.Violation{
					Kind:  interp.VDeadlock,
					Label: ir.NoLabel,
					Msg:   "no thread can make progress",
				}
				res.SchedIters, res.SchedSpins = iter, spins
				return res
			}
			refresh = refreshNone
		}
		n := m.NumThreads()
		var tid int
		switch opts.Strategy {
		case Priority:
			for len(priorities) < n {
				priorities = append(priorities, rng.Float64())
			}
			tid = actable[0]
			for _, cand := range actable[1:] {
				if priorities[cand] > priorities[tid] {
					tid = cand
				}
			}
			// Random change point: demote the chosen thread below everyone.
			if rng.Intn(1000) < changePoints {
				priorities[tid] = rng.Float64() * priorities[lowest(priorities)]
			}
		default:
			tid = actable[rng.Intn(len(actable))]
		}
		t := m.Thread(tid)

		if census[tid]&interp.CensusExec == 0 {
			// Finished or join-blocked thread with pending stores or
			// deferred loads: its only actions are flushes and resolves —
			// but the delay coins apply here too. Acting unconditionally
			// would commit a dead thread's stores within ~2 picks, making
			// witnesses that need such a store to land late (2+2W-style
			// write cycles) exponentially unlikely. Defer while some other
			// thread can make real progress; when this thread's action is
			// the only possible one it is forced, which keeps every
			// schedule live.
			if !anyExec {
				if w.tryFlush(t, tid, opts.Starve, true, tr) || w.tryResolve(tid, tr) {
					refresh, refreshTid = refreshThread, tid
				} else {
					spins++
				}
				continue
			}
			acted := false
			if rng.Float64() < opts.FlushProb {
				acted = w.tryFlush(t, tid, opts.Starve, false, tr)
			}
			if !acted && m.CanResolve(tid) && rng.Float64() < resolveProb {
				acted = w.tryResolve(tid, tr)
			}
			if acted {
				refresh, refreshTid = refreshThread, tid
			} else {
				spins++
			}
			if !acted && opts.Strategy == Priority {
				// Deferral must demote, or the highest-priority thread
				// would be re-picked to defer forever.
				priorities[tid] = rng.Float64() * priorities[lowest(priorities)]
			}
			continue
		}
		if opts.StarveLoads {
			if w.ldChosen && !m.CanResolve(w.ldTid) {
				w.ldChosen = false // victim's queue drained: vow over
			}
			if !w.ldChosen && m.NextForcesResolve(tid) {
				w.ldChosen, w.ldTid = true, tid
			}
			if w.ldChosen && w.ldTid == tid && m.NextForcesResolve(tid) && canExecOther(census, actable, tid) {
				// Load-starvation vow: executing the victim's next
				// instruction would end a deferred load's window. The flush
				// coin still applies (committing the victim's earlier
				// stores is exactly what a load-buffering witness needs),
				// and the resolve coin retires deferred loads from the
				// queue's tail — later loads committing first is load-load
				// reordering — while never touching the oldest entry, whose
				// window the vow protects. The dependent instruction waits
				// until no other thread can execute.
				acted := false
				if rng.Float64() < opts.FlushProb {
					acted = w.tryFlush(t, tid, opts.Starve, false, tr)
				}
				if acted {
					refresh, refreshTid = refreshThread, tid
				} else if rng.Float64() < resolveProb && w.tryResolveTail(tid, tr) {
					acted = true
					refresh, refreshTid = refreshThread, tid
				}
				if !acted {
					spins++
				}
				if opts.Strategy == Priority {
					// Deferral must demote, or the highest-priority thread
					// would be re-picked to defer forever.
					priorities[tid] = rng.Float64() * priorities[lowest(priorities)]
				}
				continue
			}
		}
		if !t.Buffers().Empty() && rng.Float64() < opts.FlushProb {
			if w.tryFlush(t, tid, opts.Starve, false, tr) {
				refresh, refreshTid = refreshThread, tid
				continue
			}
			// Only the starvation victim is pending: execute instead of
			// breaking the vow.
		}
		if m.CanResolve(tid) && rng.Float64() < resolveProb {
			if w.tryResolve(tid, tr) {
				refresh, refreshTid = refreshThread, tid
				continue
			}
		}
		refresh, refreshTid = refreshThread, tid
		kind := m.StepThread(tid)
		if tr != nil {
			tr.record(tid, false, 0)
		}
		// Partial-order reduction: keep running a thread that only touches
		// local state — interleaving such steps with other threads cannot
		// change any observable outcome.
		for local := 0; kind == interp.StepLocal && local < opts.PORWindow; local++ {
			if m.Violation() != nil || m.Steps() >= maxSteps || !m.CanExec(tid) {
				break
			}
			if opts.StarveLoads && m.NextForcesResolve(tid) {
				// The load-starvation vow guards force-resolving
				// instructions at pick time; stepping into one inside the
				// reduction window would bypass it.
				break
			}
			kind = m.StepThread(tid)
			if tr != nil {
				tr.record(tid, false, 0)
			}
		}
	}
	res := m.Result(true)
	res.SchedIters, res.SchedSpins = iter, spins
	return res
}

// canExecOther reports whether any actable thread other than tid can
// execute its next instruction — the liveness guard of the
// load-starvation vow. census is the current iteration's census (no
// machine step has happened since, so it is still accurate).
func canExecOther(census []uint8, actable []int, tid int) bool {
	for _, cand := range actable {
		if cand != tid && census[cand]&interp.CensusExec != 0 {
			return true
		}
	}
	return false
}

// lowest returns the index of the smallest priority.
func lowest(ps []float64) int {
	best := 0
	for i, p := range ps {
		if p < ps[best] {
			best = i
		}
	}
	return best
}

// starveVowSteps bounds the starvation vow's lifetime in machine steps.
// The witnesses the vow exists for (a store outliving the other threads'
// entire runs) play out within tens of steps on the programs synthesis
// samples, so a generous fixed budget loses nothing — while an unbounded
// vow livelocks programs where another thread spin-waits on the victim's
// variable: the spinner can always execute, so the forced-flush escape
// never triggers and the run burns its whole MaxSteps budget.
const starveVowSteps = 4096

// tryFlush commits one pending store of thread t, choosing the flushed
// variable uniformly among those with pending entries (under PSO the
// scheduler "can choose to flush only values for a particular variable"),
// and reports whether a store was committed. With starve, the first store
// ever offered for flushing becomes the execution's victim and tryFlush
// thereafter refuses to flush it unless forced (no thread can execute, or
// nothing else is pending on a forced call) — until the vow expires
// starveVowSteps machine steps after it was sworn. It reads the
// flushable-address view in place (no copy): the slice is consumed before
// the FlushOne mutation invalidates it. Flushable (not merely pending)
// addresses are offered, so store-store barrier epochs are respected.
func (w *worker) tryFlush(t *interp.Thread, tid int, starve, forced bool, tr *Trace) bool {
	m := &w.m
	pend := t.Buffers().FlushableAddrsView()
	if len(pend) == 0 {
		return false
	}
	if starve && w.stChosen && m.Steps()-w.stSteps >= starveVowSteps {
		starve = false // vow expired
	}
	if starve {
		if !w.stChosen {
			w.stChosen, w.stTid, w.stAddr = true, tid, pend[w.rng.Intn(len(pend))]
			w.stSteps = m.Steps()
			if !forced {
				return false // the vow starts by skipping this very flush
			}
		}
		if tid == w.stTid {
			n := 0
			for _, a := range pend {
				if a != w.stAddr {
					n++
				}
			}
			if n == 0 {
				if !forced {
					return false
				}
				// Forced with only the victim pending: liveness wins.
			} else {
				k := w.rng.Intn(n)
				for _, a := range pend {
					if a == w.stAddr {
						continue
					}
					if k == 0 {
						m.FlushOne(tid, a)
						if tr != nil {
							tr.record(tid, true, a)
						}
						return true
					}
					k--
				}
			}
		}
	}
	addr := pend[w.rng.Intn(len(pend))]
	m.FlushOne(tid, addr)
	if tr != nil {
		tr.record(tid, true, addr)
	}
	return true
}

// tryResolve performs the deferred read of one pending load of thread
// tid, at a uniformly random queue position — under load-deferring models
// the position choice is the scheduler's load-reordering decision — and
// reports whether a load was resolved.
func (w *worker) tryResolve(tid int, tr *Trace) bool {
	m := &w.m
	n := m.DeferredCount(tid)
	if n == 0 {
		return false
	}
	idx := w.rng.Intn(n)
	m.ResolveOne(tid, idx)
	if tr != nil {
		tr.recordResolve(tid, idx)
	}
	return true
}

// tryResolveTail resolves thread tid's newest deferred load, refusing to
// touch the oldest entry — the load whose deferral window the
// load-starvation vow protects. Reports whether a load was resolved.
func (w *worker) tryResolveTail(tid int, tr *Trace) bool {
	m := &w.m
	n := m.DeferredCount(tid)
	if n < 2 {
		return false
	}
	m.ResolveOne(tid, n-1)
	if tr != nil {
		tr.recordResolve(tid, n-1)
	}
	return true
}
