// Package sched implements DFENCE's flush-delaying demonic scheduler
// (paper §5.2). At every step it picks an enabled thread at random; if the
// chosen thread has pending buffered stores, a coin weighted by the flush
// probability decides between flushing one store to main memory and letting
// the thread execute its next instruction. Small flush probabilities keep
// stores buffered longer, which is what exposes relaxed-memory violations;
// large ones make the execution look sequentially consistent.
//
// The scheduler also applies the paper's partial-order reduction: a thread
// that keeps accessing only registers or provably thread-local memory is
// not context-switched (bounded by PORWindow so that local infinite loops
// still yield).
package sched

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// Strategy selects how the demonic scheduler picks among enabled threads.
type Strategy uint8

const (
	// Random picks uniformly at random each step — the paper's scheduler.
	Random Strategy = iota
	// Priority is a PCT-style scheduler (the paper's "more advanced
	// demonic schedulers" future work): every thread carries a random
	// priority, the highest-priority enabled thread always runs, and at
	// random change points the running thread's priority is demoted. Long
	// uninterrupted windows plus rare, adversarial preemptions expose a
	// different class of interleavings than uniform choice.
	Priority
)

func (s Strategy) String() string {
	switch s {
	case Random:
		return "random"
	case Priority:
		return "priority"
	}
	return "strategy(?)"
}

// Options configures one execution.
type Options struct {
	// Seed drives the pseudo-random choices; equal seeds give identical
	// executions.
	Seed int64
	// Strategy selects the thread-choice discipline (default Random).
	Strategy Strategy
	// ChangePoints is the expected number of priority demotions per 1000
	// steps for the Priority strategy (default 30).
	ChangePoints int
	// FlushProb is the probability that a thread with pending buffered
	// stores flushes one instead of executing (paper §6.5: ~0.1 for TSO,
	// ~0.5 for PSO).
	FlushProb float64
	// MaxSteps bounds the execution; runs that exceed it are reported with
	// StepLimitHit and treated as inconclusive.
	MaxSteps int
	// PORWindow bounds consecutive local-only steps a thread may take
	// without a scheduling decision. 0 disables partial-order reduction.
	PORWindow int
	// Timeout bounds the execution's wall-clock time (0 = none). A run
	// that exceeds it stops at the next budget check and is reported with
	// TimedOut set — inconclusive, like a step-limit hit. Unlike MaxSteps
	// this depends on machine speed, so it trades determinism for liveness;
	// leave it zero when bit-identical results matter.
	Timeout time.Duration
	// Wrap, if non-nil, wraps the observer for this execution only. It is
	// invoked once per run with the caller's observer (possibly nil) and
	// its result receives the execution's notifications. This is the
	// per-execution hook the fault-injection harness uses; batch callers
	// can set it from optsFor(i) to target individual executions while
	// workers keep reusing their own observers.
	Wrap func(obs interp.Observer) interp.Observer
}

// budgetCheckEvery is how many scheduler iterations pass between wall-clock
// and context checks; each iteration advances at least one machine step, so
// budget overruns are bounded by ~1024 steps. The check also runs once at
// iteration 0, so an already-expired budget (or context) cuts even
// executions far shorter than the check interval.
const budgetCheckEvery = 1024

// ExecError describes a panic recovered from one execution: the interpreter
// (or an observer) panicked, the worker recovered, and the batch reports the
// poisoned execution instead of crashing the process. The seed makes the
// failure reproducible with sched.Run under the same program and options.
type ExecError struct {
	// Round is the synthesis repair round, filled by the core loop
	// (-1 when the execution was not part of a synthesis round).
	Round int
	// Index is the execution's index within its batch (-1 outside batches).
	Index int
	// Seed is the execution's scheduler seed.
	Seed int64
	// Panic is the recovered panic value.
	Panic any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("execution panicked (round %d, index %d, seed %d): %v", e.Round, e.Index, e.Seed, e.Panic)
}

// DefaultOptions returns the settings used throughout the evaluation:
// flush probability 0.5 (the paper's PSO sweet spot), a generous step
// budget, and POR enabled.
func DefaultOptions(seed int64) Options {
	return Options{Seed: seed, FlushProb: 0.5, MaxSteps: 200000, PORWindow: 64}
}

// worker is the reusable per-execution state of one scheduler goroutine:
// the pooled interpreter machine, the RNG (re-seeded per execution, never
// re-allocated), and the scratch slices of the scheduling loop. A worker
// is owned by exactly one goroutine — see the worker-ownership invariant
// in the package comment of batch.go. The zero worker is ready to use.
type worker struct {
	m          interp.Machine
	rng        *rand.Rand
	actable    []int
	priorities []float64
}

// Run executes prog once under the given memory model and scheduling
// options. obs may be nil. The returned result carries the violation (if
// any), the operation history, and bookkeeping. A panic in the interpreter
// or an observer propagates; use RunSafe where isolation is required.
// Run compiles prog on the spot and discards the machine afterwards, so
// its Result has no aliasing hazard; batch callers use RunBatch, which
// compiles once and pools machines across executions.
func Run(prog *ir.Program, model memmodel.Model, obs interp.Observer, opts Options) *interp.Result {
	var w worker
	return w.run(context.Background(), interp.Compile(prog), model, obs, opts, nil)
}

// RunSafe is Run with panic isolation: a panic anywhere in the execution
// (interpreter, memory model, or observer) is recovered and returned as a
// structured *ExecError (with Round/Index -1; batch callers fill them)
// instead of crashing the caller. res is nil exactly when err is non-nil.
func RunSafe(prog *ir.Program, model memmodel.Model, obs interp.Observer, opts Options) (res *interp.Result, err *ExecError) {
	var w worker
	return w.runSafe(context.Background(), interp.Compile(prog), model, obs, opts)
}

func (w *worker) runSafe(ctx context.Context, c *interp.Compiled, model memmodel.Model, obs interp.Observer, opts Options) (res *interp.Result, err *ExecError) {
	defer func() {
		if p := recover(); p != nil {
			res = nil
			err = &ExecError{Round: -1, Index: -1, Seed: opts.Seed, Panic: p, Stack: string(debug.Stack())}
		}
	}()
	return w.run(ctx, c, model, obs, opts, nil), nil
}

func (w *worker) run(ctx context.Context, c *interp.Compiled, model memmodel.Model, obs interp.Observer, opts Options, tr *Trace) *interp.Result {
	if opts.Wrap != nil {
		obs = opts.Wrap(obs)
	}
	m := &w.m
	m.Reset(c, model, obs)
	if w.rng == nil {
		w.rng = rand.New(rand.NewSource(opts.Seed))
	} else {
		// Re-seeding a private rand.Rand restarts the exact stream a fresh
		// rand.New(rand.NewSource(seed)) would produce, so reuse cannot
		// perturb the schedule.
		w.rng.Seed(opts.Seed)
	}
	rng := w.rng
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 200000
	}
	changePoints := opts.ChangePoints
	if changePoints <= 0 {
		changePoints = 30
	}
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	priorities := w.priorities[:0]
	defer func() { w.priorities = priorities[:0] }()

	actable := w.actable[:0]
	defer func() { w.actable = actable[:0] }()
	for iter := 0; m.Steps() < maxSteps; iter++ {
		if iter%budgetCheckEvery == 0 {
			if ctx.Err() != nil || (!deadline.IsZero() && time.Now().After(deadline)) {
				res := m.Result(false)
				res.TimedOut = true
				return res
			}
		}
		if m.Done() {
			return m.Result(false)
		}
		actable = actable[:0]
		n := len(m.Threads())
		for tid := 0; tid < n; tid++ {
			if m.Actable(tid) {
				actable = append(actable, tid)
			}
		}
		if len(actable) == 0 {
			res := m.Result(false)
			res.Violation = &interp.Violation{
				Kind:  interp.VDeadlock,
				Label: ir.NoLabel,
				Msg:   "no thread can make progress",
			}
			return res
		}
		var tid int
		switch opts.Strategy {
		case Priority:
			for len(priorities) < n {
				priorities = append(priorities, rng.Float64())
			}
			tid = actable[0]
			for _, cand := range actable[1:] {
				if priorities[cand] > priorities[tid] {
					tid = cand
				}
			}
			// Random change point: demote the chosen thread below everyone.
			if rng.Intn(1000) < changePoints {
				priorities[tid] = rng.Float64() * priorities[lowest(priorities)]
			}
		default:
			tid = actable[rng.Intn(len(actable))]
		}
		t := m.Threads()[tid]

		if !m.CanExec(tid) {
			// Finished or join-blocked thread with pending stores: its only
			// action is a flush.
			flushOne(m, t, tid, rng, tr)
			continue
		}
		if !t.Buffers().Empty() && rng.Float64() < opts.FlushProb {
			flushOne(m, t, tid, rng, tr)
			continue
		}
		kind := m.StepThread(tid)
		if tr != nil {
			tr.record(tid, false, 0)
		}
		// Partial-order reduction: keep running a thread that only touches
		// local state — interleaving such steps with other threads cannot
		// change any observable outcome.
		for local := 0; kind == interp.StepLocal && local < opts.PORWindow; local++ {
			if m.Violation() != nil || m.Steps() >= maxSteps || !m.CanExec(tid) {
				break
			}
			kind = m.StepThread(tid)
			if tr != nil {
				tr.record(tid, false, 0)
			}
		}
	}
	return m.Result(true)
}

// lowest returns the index of the smallest priority.
func lowest(ps []float64) int {
	best := 0
	for i, p := range ps {
		if p < ps[best] {
			best = i
		}
	}
	return best
}

// flushOne commits one pending store of thread t, choosing the flushed
// variable uniformly among those with pending entries (under PSO the
// scheduler "can choose to flush only values for a particular variable").
// It reads the pending-address view in place (no copy): the slice is
// consumed before the FlushOne mutation invalidates it.
func flushOne(m *interp.Machine, t *interp.Thread, tid int, rng *rand.Rand, tr *Trace) {
	pend := t.Buffers().PendingAddrsView()
	if len(pend) == 0 {
		return
	}
	addr := pend[rng.Intn(len(pend))]
	m.FlushOne(tid, addr)
	if tr != nil {
		tr.record(tid, true, addr)
	}
}
