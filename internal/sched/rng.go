// The scheduler's private PRNG. Schedules draw two kinds of randomness —
// probability coins (Float64 vs the flush/resolve/change-point knobs) and
// uniform picks (Intn over actable threads, pending addresses, queue
// entries) — and every execution is identified by its seed: re-seeding
// must restart the exact stream, because the batch engine reuses one
// generator per worker across executions (see the worker-ownership
// invariant in batch.go).
//
// This used to be a math/rand.Rand. Profiles of the pooled batch engine
// showed rngSource.Seed at ~45% of total execution CPU: the stdlib's
// lagged-Fibonacci source burns ~1800 multiply/mod iterations to seed
// 607 words of state, per execution, while a typical synthesis execution
// then draws only a few hundred values. xoshiro256++ has 4 words of
// state seeded with 4 splitmix64 steps — seeding is effectively free and
// generation is a handful of ALU ops, which roughly halves per-execution
// wall time on the acceptance benchmark.
//
// Switching generators changes the schedule stream, so corpus exposure
// statistics shifted when this landed (the scheduler-portfolio and
// fuzzing tests were re-validated against the new stream). What does NOT
// change is the determinism contract: the stream is a pure function of
// the seed, identical across workers, caches, re-seeding, and replay —
// everything the determinism tests compare is still bit-identical.
package sched

import "math/bits"

// schedRNG is a xoshiro256++ generator (Blackman & Vigna) with
// splitmix64 seeding. The zero value must be seeded before use.
type schedRNG struct {
	s [4]uint64
}

// Seed resets the generator to the canonical state of the given seed:
// four successive splitmix64 outputs. Equal seeds always restart the
// identical stream.
func (r *schedRNG) Seed(seed int64) {
	x := uint64(seed)
	for i := range r.s {
		// splitmix64 step — guarantees a well-mixed nonzero state even
		// for small and clustered seeds (synthesis uses Seed+round*K+i).
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Uint64 returns the next 64 uniform bits (xoshiro256++).
func (r *schedRNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1): the top 53 bits scaled,
// the standard conversion.
func (r *schedRNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform int in [0, n). n must be > 0. Scheduling draws
// are over tiny ranges (thread counts, queue lengths, the per-mille
// change-point check), so the multiply-shift range reduction (Lemire) is
// exact enough and branch-free.
func (r *schedRNG) Intn(n int) int {
	hi, _ := bits.Mul64(r.Uint64(), uint64(n))
	return int(hi)
}
