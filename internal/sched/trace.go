package sched

import (
	"context"
	"fmt"
	"strings"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// Decision is one scheduling choice: which thread acted and whether it
// flushed a buffered store (and which address), resolved a deferred load
// (and which queue index), or executed instructions.
type Decision struct {
	Thread  int
	Flush   bool
	Resolve bool
	Addr    int64 // flushed address (per-address models); ignored otherwise
	Idx     int   // resolved deferred-load queue index (Resolve only)
	// Steps is the number of consecutive execution steps taken (the POR
	// burst length); 1 for flushes and resolves.
	Steps int
}

// Trace is a complete schedule of one execution: replaying it against the
// same program and memory model reproduces the execution exactly. DFENCE
// uses traces as violation witnesses — a failing schedule the user can
// re-run and inspect.
type Trace struct {
	Model     memmodel.Model
	Decisions []Decision
}

// String renders the schedule compactly: "t0×5 t1⤓x t1⟲0 t1×2 ...".
func (tr *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%v]", tr.Model)
	for _, d := range tr.Decisions {
		switch {
		case d.Flush:
			fmt.Fprintf(&b, " t%d⤓%d", d.Thread, d.Addr)
		case d.Resolve:
			fmt.Fprintf(&b, " t%d⟲%d", d.Thread, d.Idx)
		default:
			fmt.Fprintf(&b, " t%d×%d", d.Thread, d.Steps)
		}
	}
	return b.String()
}

// Len returns the number of decisions.
func (tr *Trace) Len() int { return len(tr.Decisions) }

// record appends a decision, merging consecutive execution bursts by the
// same thread.
func (tr *Trace) record(thread int, flush bool, addr int64) {
	if !flush && len(tr.Decisions) > 0 {
		last := &tr.Decisions[len(tr.Decisions)-1]
		if !last.Flush && !last.Resolve && last.Thread == thread {
			last.Steps++
			return
		}
	}
	d := Decision{Thread: thread, Flush: flush, Addr: addr, Steps: 1}
	tr.Decisions = append(tr.Decisions, d)
}

// recordResolve appends a deferred-load resolution decision.
func (tr *Trace) recordResolve(thread, idx int) {
	tr.Decisions = append(tr.Decisions, Decision{Thread: thread, Resolve: true, Idx: idx, Steps: 1})
}

// RunTraced is Run but additionally records the schedule, returning it
// alongside the result.
func RunTraced(prog *ir.Program, model memmodel.Model, obs interp.Observer, opts Options) (*interp.Result, *Trace) {
	tr := &Trace{Model: model}
	var w worker
	res := w.run(context.Background(), interp.Compile(prog), model, obs, opts, tr)
	return res, tr
}

// Replay re-executes a recorded schedule. The program and model must be
// the ones the trace was recorded against; the result is bit-identical to
// the recorded execution. Replaying against a modified program (e.g. with
// a fence inserted) is allowed — the schedule is followed best-effort and
// stops cleanly when a decision no longer applies (the fence changed the
// enabled set), reporting ok=false.
func Replay(prog *ir.Program, obs interp.Observer, tr *Trace) (res *interp.Result, ok bool) {
	m := interp.NewMachine(prog, tr.Model, obs)
	for _, d := range tr.Decisions {
		if d.Thread >= m.NumThreads() {
			return m.Result(false), false
		}
		if d.Flush {
			if !m.CanFlush(d.Thread) {
				return m.Result(false), false
			}
			m.FlushOne(d.Thread, d.Addr)
			continue
		}
		if d.Resolve {
			if d.Idx >= m.DeferredCount(d.Thread) {
				return m.Result(false), false
			}
			m.ResolveOne(d.Thread, d.Idx)
			continue
		}
		for i := 0; i < d.Steps; i++ {
			if m.Violation() != nil {
				return m.Result(false), true // reproduced the violation
			}
			if !m.CanExec(d.Thread) && !m.CanFlush(d.Thread) && !m.CanResolve(d.Thread) {
				return m.Result(false), false
			}
			m.StepThread(d.Thread)
		}
	}
	// Drain any remainder deterministically (round-robin) so the result is
	// complete even if the trace was cut at the violation. Flushes pick a
	// currently flushable address (store-store barriers can park the oldest
	// pending address); resolves retire the queue head.
	for guard := 0; !m.Done() && guard < 1_000_000; guard++ {
		moved := false
		for tid := 0; tid < m.NumThreads(); tid++ {
			if m.CanExec(tid) {
				m.StepThread(tid)
				moved = true
				break
			}
			if m.CanResolve(tid) {
				m.ResolveOne(tid, 0)
				moved = true
				break
			}
			if m.CanFlush(tid) {
				fl := m.Thread(tid).Buffers().FlushableAddrs()
				m.FlushOne(tid, fl[0])
				moved = true
				break
			}
		}
		if !moved {
			break
		}
	}
	return m.Result(false), true
}
