package sched

import (
	"testing"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

func finish(t *testing.T, b *ir.FuncBuilder) {
	t.Helper()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
}

func mustLink(t *testing.T, p *ir.Program) {
	t.Helper()
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
}

// buildSB is the store-buffering litmus: two threads each store 1 to their
// own flag then print the other's flag.
func buildSB(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	for _, g := range []string{"x", "y"} {
		if err := p.AddGlobal(&ir.Global{Name: g, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(name, st, ld string) {
		b := ir.NewFuncBuilder(p, name, 0)
		sa := b.GlobalAddr(st)
		one := b.Const(1)
		b.Store(sa, one, st)
		la := b.GlobalAddr(ld)
		v, _ := b.Load(la, ld)
		b.Print(v)
		b.Ret()
		finish(t, b)
	}
	mk("w1", "x", "y")
	mk("w2", "y", "x")
	b := ir.NewFuncBuilder(p, "main", 0)
	t1 := b.Fork("w1")
	t2 := b.Fork("w2")
	b.Join(t1)
	b.Join(t2)
	b.Ret()
	finish(t, b)
	mustLink(t, p)
	return p
}

// buildMP is the message-passing litmus: data then flag; reader spins on
// flag and prints data.
func buildMP(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	for _, g := range []string{"data", "flag"} {
		if err := p.AddGlobal(&ir.Global{Name: g, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	b := ir.NewFuncBuilder(p, "producer", 0)
	da := b.GlobalAddr("data")
	v := b.Const(42)
	b.Store(da, v, "data")
	fa := b.GlobalAddr("flag")
	one := b.Const(1)
	b.Store(fa, one, "flag")
	b.Ret()
	finish(t, b)

	c := ir.NewFuncBuilder(p, "consumer", 0)
	cfa := c.GlobalAddr("flag")
	head := c.NextLabel()
	fv, _ := c.Load(cfa, "flag")
	nz := c.Not(fv)
	spin, done := c.CondBrF(nz)
	spin.Here()
	c.Br(head)
	done.Here()
	cda := c.GlobalAddr("data")
	dv, _ := c.Load(cda, "data")
	c.Print(dv)
	c.Ret()
	finish(t, c)

	mb := ir.NewFuncBuilder(p, "main", 0)
	t1 := mb.Fork("producer")
	t2 := mb.Fork("consumer")
	mb.Join(t1)
	mb.Join(t2)
	mb.Ret()
	finish(t, mb)
	mustLink(t, p)
	return p
}

// outcomes runs the program across seeds and collects distinct output
// tuples.
func outcomes(t *testing.T, p *ir.Program, model memmodel.Model, flushProb float64, seeds int) map[[2]int64]int {
	t.Helper()
	got := map[[2]int64]int{}
	for s := 0; s < seeds; s++ {
		opts := DefaultOptions(int64(s))
		opts.FlushProb = flushProb
		res := Run(p, model, nil, opts)
		if res.Violation != nil {
			t.Fatalf("seed %d: unexpected violation: %v", s, res.Violation)
		}
		if res.StepLimitHit {
			continue
		}
		if len(res.Output) != 2 {
			t.Fatalf("seed %d: output %v", s, res.Output)
		}
		got[[2]int64{res.Output[0], res.Output[1]}]++
	}
	return got
}

func TestSBOutcomesTSO(t *testing.T) {
	p := buildSB(t)
	got := outcomes(t, p, memmodel.TSO, 0.2, 300)
	if got[[2]int64{0, 0}] == 0 {
		t.Error("TSO never produced the relaxed outcome (0,0) in 300 runs")
	}
	// SC-reachable outcomes must also appear.
	if got[[2]int64{0, 1}]+got[[2]int64{1, 0}]+got[[2]int64{1, 1}] == 0 {
		t.Error("TSO produced only the relaxed outcome, scheduler is not exploring")
	}
}

func TestSBOutcomesSCNeverRelaxed(t *testing.T) {
	p := buildSB(t)
	got := outcomes(t, p, memmodel.SC, 0.2, 300)
	if got[[2]int64{0, 0}] != 0 {
		t.Errorf("SC produced the forbidden outcome (0,0) %d times", got[[2]int64{0, 0}])
	}
}

func TestMPOutcomesPSO(t *testing.T) {
	p := buildMP(t)
	sawStale := false
	sawFresh := false
	for s := 0; s < 400; s++ {
		opts := DefaultOptions(int64(s))
		opts.FlushProb = 0.5
		res := Run(p, memmodel.PSO, nil, opts)
		if res.Violation != nil {
			t.Fatalf("seed %d: %v", s, res.Violation)
		}
		if res.StepLimitHit {
			continue
		}
		switch res.Output[0] {
		case 0:
			sawStale = true
		case 42:
			sawFresh = true
		default:
			t.Fatalf("impossible data value %d", res.Output[0])
		}
	}
	if !sawStale {
		t.Error("PSO never reordered data/flag stores in 400 runs")
	}
	if !sawFresh {
		t.Error("PSO never delivered data before flag — scheduler stuck")
	}
}

func TestMPOutcomesTSONeverStale(t *testing.T) {
	p := buildMP(t)
	for s := 0; s < 300; s++ {
		res := Run(p, memmodel.TSO, nil, DefaultOptions(int64(s)))
		if res.Violation != nil {
			t.Fatalf("seed %d: %v", s, res.Violation)
		}
		if res.StepLimitHit {
			continue
		}
		if res.Output[0] != 42 {
			t.Fatalf("TSO let flag pass data: read %d (seed %d)", res.Output[0], s)
		}
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	p := buildSB(t)
	a := Run(p, memmodel.PSO, nil, DefaultOptions(7))
	b := Run(p, memmodel.PSO, nil, DefaultOptions(7))
	if a.Steps != b.Steps || len(a.Output) != len(b.Output) {
		t.Fatalf("same seed diverged: %d/%v vs %d/%v", a.Steps, a.Output, b.Steps, b.Output)
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatalf("same seed diverged at output %d", i)
		}
	}
}

func TestStepLimit(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	head := b.NextLabel()
	one := b.Const(1)
	_ = one
	b.Br(head)
	finish(t, b)
	mustLink(t, p)
	opts := DefaultOptions(1)
	opts.MaxSteps = 500
	res := Run(p, memmodel.TSO, nil, opts)
	if !res.StepLimitHit {
		t.Fatal("infinite loop did not hit step limit")
	}
	if res.Violation != nil {
		t.Fatalf("step limit should not be a violation: %v", res.Violation)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// main joins itself: never ready.
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	self := b.Self()
	b.Join(self)
	b.Ret()
	finish(t, b)
	mustLink(t, p)
	res := Run(p, memmodel.SC, nil, DefaultOptions(1))
	if res.Violation == nil || res.Violation.Kind != interp.VDeadlock {
		t.Fatalf("self-join not reported as deadlock: %v", res.Violation)
	}
}

func TestLowFlushProbFindsMoreRelaxedOutcomes(t *testing.T) {
	// The paper's Fig. 5 intuition: lower flush probability exposes more
	// relaxed behaviour. Compare the rate of (0,0) outcomes for SB on TSO
	// at flush probabilities 0.05 and 0.9.
	p := buildSB(t)
	low := outcomes(t, p, memmodel.TSO, 0.05, 300)[[2]int64{0, 0}]
	high := outcomes(t, p, memmodel.TSO, 0.9, 300)[[2]int64{0, 0}]
	if low <= high {
		t.Errorf("relaxed outcomes: flushProb 0.05 gave %d, 0.9 gave %d — expected low < high to expose more", high, low)
	}
}

func TestPOROffMatchesOnForSequential(t *testing.T) {
	// A deterministic single-threaded program must produce the same result
	// with and without POR.
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "acc", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "main", 0)
	addr := b.GlobalAddr("acc")
	i := b.Const(0)
	lim := b.Const(20)
	one := b.Const(1)
	head := b.NextLabel()
	c := b.BinOp(ir.BinLt, i, lim)
	body, exit := b.CondBrF(c)
	body.Here()
	v, _ := b.Load(addr, "acc")
	nv := b.BinOp(ir.BinAdd, v, i)
	b.Store(addr, nv, "acc")
	b.BinTo(i, ir.BinAdd, i, one)
	b.Br(head)
	exit.Here()
	fin, _ := b.Load(addr, "acc")
	b.RetVal(fin)
	finish(t, b)
	mustLink(t, p)

	on := DefaultOptions(3)
	off := DefaultOptions(3)
	off.PORWindow = 0
	ra := Run(p, memmodel.PSO, nil, on)
	rb := Run(p, memmodel.PSO, nil, off)
	if ra.ExitCode != 190 || rb.ExitCode != 190 {
		t.Fatalf("sum wrong: POR on %d, off %d, want 190", ra.ExitCode, rb.ExitCode)
	}
	if ra.Steps >= rb.Steps {
		// POR does not change step count for one thread (same transitions),
		// so only check both finished correctly; no strict inequality.
		t.Logf("steps: POR on %d, off %d", ra.Steps, rb.Steps)
	}
}

// --- priority (PCT-style) strategy ---

func TestPriorityStrategyCompletesPrograms(t *testing.T) {
	p := buildSB(t)
	for s := int64(0); s < 100; s++ {
		opts := DefaultOptions(s)
		opts.Strategy = Priority
		res := Run(p, memmodel.PSO, nil, opts)
		if res.Violation != nil {
			t.Fatalf("seed %d: %v", s, res.Violation)
		}
		if res.StepLimitHit {
			t.Fatalf("seed %d: step limit", s)
		}
		if len(res.Output) != 2 {
			t.Fatalf("seed %d: output %v", s, res.Output)
		}
	}
}

func TestPriorityStrategyDeterministic(t *testing.T) {
	p := buildMP(t)
	opts := DefaultOptions(11)
	opts.Strategy = Priority
	a := Run(p, memmodel.PSO, nil, opts)
	b := Run(p, memmodel.PSO, nil, opts)
	if a.Steps != b.Steps || len(a.Output) != len(b.Output) {
		t.Fatalf("priority strategy nondeterministic: %d vs %d steps", a.Steps, b.Steps)
	}
}

func TestPriorityStrategyFindsRelaxedOutcomes(t *testing.T) {
	p := buildSB(t)
	found := false
	for s := int64(0); s < 400 && !found; s++ {
		opts := DefaultOptions(s)
		opts.Strategy = Priority
		opts.FlushProb = 0.2
		res := Run(p, memmodel.TSO, nil, opts)
		if res.Violation != nil || res.StepLimitHit {
			continue
		}
		if res.Output[0] == 0 && res.Output[1] == 0 {
			found = true
		}
	}
	if !found {
		t.Error("priority scheduler never exposed the TSO store-buffering outcome")
	}
}

func TestPriorityStrategyPreservesSC(t *testing.T) {
	p := buildSB(t)
	for s := int64(0); s < 200; s++ {
		opts := DefaultOptions(s)
		opts.Strategy = Priority
		res := Run(p, memmodel.SC, nil, opts)
		if res.StepLimitHit || res.Violation != nil {
			continue
		}
		if res.Output[0] == 0 && res.Output[1] == 0 {
			t.Fatalf("seed %d: priority scheduler produced a non-SC outcome under SC", s)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if Random.String() != "random" || Priority.String() != "priority" {
		t.Error("strategy names wrong")
	}
}
