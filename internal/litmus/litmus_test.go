package litmus

import (
	"testing"

	"dfence/internal/memmodel"
)

// flushFor picks an exposure-friendly flush probability per model.
func flushFor(m memmodel.Model) float64 {
	if m == memmodel.TSO {
		return 0.15
	}
	return 0.4
}

// TestConformance runs the whole suite under every model, verifying that
// forbidden outcomes never appear and distinguishing outcomes do.
func TestConformance(t *testing.T) {
	for _, lt := range All() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			t.Parallel()
			for _, m := range []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO} {
				got, err := lt.Check(m, 800, flushFor(m), 42)
				if err != nil {
					t.Errorf("%v", err)
				}
				if len(got) == 0 {
					t.Errorf("%s under %v produced no outcomes", lt.Name, m)
				}
			}
		})
	}
}

// TestSuiteIsWellFormed checks the metadata: every test compiles, has
// verdicts for all three models, and distinguishing outcomes are not also
// forbidden.
func TestSuiteIsWellFormed(t *testing.T) {
	if len(All()) < 12 {
		t.Fatalf("suite has %d tests, want >= 8", len(All()))
	}
	for _, lt := range All() {
		if lt.Descr == "" {
			t.Errorf("%s has no description", lt.Name)
		}
		p := lt.Program()
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", lt.Name, err)
		}
		for _, m := range []memmodel.Model{memmodel.SC, memmodel.TSO, memmodel.PSO} {
			v, ok := lt.Results[m]
			if !ok {
				t.Errorf("%s: no verdict for %v", lt.Name, m)
				continue
			}
			for _, f := range v.Forbidden {
				if f == v.Distinguishing {
					t.Errorf("%s under %v: outcome %q both forbidden and distinguishing", lt.Name, m, f)
				}
			}
		}
	}
}

// TestModelStrengthChain: an outcome forbidden under PSO must also be
// forbidden under TSO and SC in this suite (PSO is the weakest model), so
// every verdict table is monotone.
func TestModelStrengthChain(t *testing.T) {
	for _, lt := range All() {
		psoForbidden := map[Outcome]bool{}
		for _, f := range lt.Results[memmodel.PSO].Forbidden {
			psoForbidden[f] = true
		}
		for f := range psoForbidden {
			tsoHas, scHas := false, false
			for _, g := range lt.Results[memmodel.TSO].Forbidden {
				if g == f {
					tsoHas = true
				}
			}
			for _, g := range lt.Results[memmodel.SC].Forbidden {
				if g == f {
					scHas = true
				}
			}
			if !tsoHas || !scHas {
				t.Errorf("%s: outcome %q forbidden under PSO but not under stronger models", lt.Name, f)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("SB"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown test accepted")
	}
	if len(Names()) != len(All()) {
		t.Error("Names/All mismatch")
	}
}

// TestSCSeesOnlyInterleavings: under SC, the SB outcomes are exactly the
// three interleaving results.
func TestSCSeesOnlyInterleavings(t *testing.T) {
	lt, err := ByName("SB")
	if err != nil {
		t.Fatal(err)
	}
	got := lt.Explore(memmodel.SC, 600, 0.3, 7)
	for o := range got {
		switch o {
		case "0,1", "1,0", "1,1":
		default:
			t.Errorf("SC SB produced unexpected outcome %q", o)
		}
	}
}
