// Package litmus is a conformance suite for the memory-model semantics:
// the classical litmus tests (store buffering, message passing, load
// buffering, coherence, IRIW, 2+2W) with their allowed/forbidden outcomes
// under SC, TSO, and PSO. The store-buffer models implemented here are
// multi-copy atomic and never delay loads, which fixes each verdict.
//
// Each test is a mini-C program whose interesting registers are printed;
// an outcome is the tuple of printed values. Explore runs a test many
// times under the flush-delaying scheduler and collects the outcomes seen.
package litmus

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dfence/internal/ir"
	"dfence/internal/lang"
	"dfence/internal/memmodel"
	"dfence/internal/sched"
)

// Outcome is a printed result tuple, rendered "a,b,...".
type Outcome string

func outcomeOf(vals []int64) Outcome {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprint(v)
	}
	return Outcome(strings.Join(parts, ","))
}

// Verdict states what a given model may produce.
type Verdict struct {
	// Forbidden outcomes must never be observed under the model.
	Forbidden []Outcome
	// Distinguishing is an outcome the model allows but a stronger model
	// forbids; Explore should observe it given enough runs ("" = none).
	Distinguishing Outcome
}

// Test is one litmus test.
type Test struct {
	Name    string
	Descr   string
	Source  string
	Results map[memmodel.Model]Verdict

	once sync.Once
	prog *ir.Program
}

// Program compiles the test (cached).
func (t *Test) Program() *ir.Program {
	t.once.Do(func() { t.prog = lang.MustCompile(t.Source) })
	return t.prog
}

// Explore runs the test `runs` times under the given model and flush
// probability, returning the multiset of outcomes.
func (t *Test) Explore(model memmodel.Model, runs int, flushProb float64, seed int64) map[Outcome]int {
	p := t.Program()
	out := make(map[Outcome]int)
	for i := 0; i < runs; i++ {
		opts := sched.Options{
			Seed:      seed + int64(i),
			FlushProb: flushProb,
			MaxSteps:  100000,
			PORWindow: 64,
		}
		res := sched.Run(p, model, nil, opts)
		if res.Violation != nil || res.StepLimitHit {
			continue
		}
		out[outcomeOf(res.Output)]++
	}
	return out
}

// Check explores and verifies the verdict: no forbidden outcome observed;
// the distinguishing outcome observed if one is expected. It returns the
// outcomes and an error describing the first discrepancy.
func (t *Test) Check(model memmodel.Model, runs int, flushProb float64, seed int64) (map[Outcome]int, error) {
	got := t.Explore(model, runs, flushProb, seed)
	v := t.Results[model]
	for _, f := range v.Forbidden {
		if n := got[f]; n > 0 {
			return got, fmt.Errorf("litmus %s under %v: forbidden outcome %q observed %d times", t.Name, model, f, n)
		}
	}
	if v.Distinguishing != "" && got[v.Distinguishing] == 0 {
		return got, fmt.Errorf("litmus %s under %v: distinguishing outcome %q never observed in %d runs", t.Name, model, v.Distinguishing, runs)
	}
	return got, nil
}

// All returns the suite.
func All() []*Test { return suite }

// ByName finds a test.
func ByName(name string) (*Test, error) {
	for _, t := range suite {
		if t.Name == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("litmus: unknown test %q", name)
}

// Names lists the suite, sorted.
func Names() []string {
	out := make([]string, len(suite))
	for i, t := range suite {
		out[i] = t.Name
	}
	sort.Strings(out)
	return out
}

var suite = []*Test{
	{
		Name:  "SB",
		Descr: "store buffering: both loads may bypass both stores (TSO, PSO)",
		Source: `
int x = 0; int y = 0;
void w1() { x = 1; print(y); }
void w2() { y = 1; print(x); }
int main() {
  int t1 = fork w1();
  int t2 = fork w2();
  join t1; join t2;
  return 0;
}
`,
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"0,0"}},
			memmodel.TSO: {Distinguishing: "0,0"},
			memmodel.PSO: {Distinguishing: "0,0"},
		},
	},
	{
		Name:  "SB+fences",
		Descr: "store buffering with store-load fences: SC restored on all models",
		Source: `
int x = 0; int y = 0;
void w1() { x = 1; fence_sl(); print(y); }
void w2() { y = 1; fence_sl(); print(x); }
int main() {
  int t1 = fork w1();
  int t2 = fork w2();
  join t1; join t2;
  return 0;
}
`,
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"0,0"}},
			memmodel.TSO: {Forbidden: []Outcome{"0,0"}},
			memmodel.PSO: {Forbidden: []Outcome{"0,0"}},
		},
	},
	{
		Name:  "MP",
		Descr: "message passing: only PSO reorders the data and flag stores",
		Source: `
int data = 0; int flag = 0;
void producer() { data = 42; flag = 1; }
void consumer() {
  while (!flag) { }
  print(data);
}
int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1; join t2;
  return 0;
}
`,
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"0"}},
			memmodel.TSO: {Forbidden: []Outcome{"0"}},
			memmodel.PSO: {Distinguishing: "0"},
		},
	},
	{
		Name:  "MP+fence",
		Descr: "message passing with a store-store fence: stale data forbidden everywhere",
		Source: `
int data = 0; int flag = 0;
void producer() { data = 42; fence_ss(); flag = 1; }
void consumer() {
  while (!flag) { }
  print(data);
}
int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1; join t2;
  return 0;
}
`,
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"0"}},
			memmodel.TSO: {Forbidden: []Outcome{"0"}},
			memmodel.PSO: {Forbidden: []Outcome{"0"}},
		},
	},
	{
		Name:  "LB",
		Descr: "load buffering: forbidden everywhere (loads are never delayed)",
		Source: `
int x = 0; int y = 0;
void w1() { int r = y; x = 1; print(r); }
void w2() { int r = x; y = 1; print(r); }
int main() {
  int t1 = fork w1();
  int t2 = fork w2();
  join t1; join t2;
  return 0;
}
`,
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"1,1"}},
			memmodel.TSO: {Forbidden: []Outcome{"1,1"}},
			memmodel.PSO: {Forbidden: []Outcome{"1,1"}},
		},
	},
	{
		Name:  "CoRR",
		Descr: "coherence: two reads of one location never go backwards",
		Source: `
int x = 0;
void writer() { x = 1; }
void reader() {
  int r1 = x;
  int r2 = x;
  print(r1);
  print(r2);
}
int main() {
  int t1 = fork writer();
  int t2 = fork reader();
  join t1; join t2;
  return 0;
}
`,
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"1,0"}},
			memmodel.TSO: {Forbidden: []Outcome{"1,0"}},
			memmodel.PSO: {Forbidden: []Outcome{"1,0"}},
		},
	},
	{
		Name:  "IRIW",
		Descr: "independent reads of independent writes: store buffers are multi-copy atomic",
		Source: `
int x = 0; int y = 0;
int ra = 0; int rb = 0; int rc = 0; int rd = 0;
void wx() { x = 1; }
void wy() { y = 1; }
void r1() { int a = x; int b = y; ra = a; rb = b; }
void r2() { int c = y; int d = x; rc = c; rd = d; }
int main() {
  int t1 = fork wx();
  int t2 = fork wy();
  int t3 = fork r1();
  int t4 = fork r2();
  join t1; join t2; join t3; join t4;
  print(ra); print(rb); print(rc); print(rd);
  return 0;
}
`,
		// The forbidden relativity outcome: r1 sees x before y while r2
		// sees y before x — impossible with a single main memory.
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"1,0,1,0"}},
			memmodel.TSO: {Forbidden: []Outcome{"1,0,1,0"}},
			memmodel.PSO: {Forbidden: []Outcome{"1,0,1,0"}},
		},
	},
	{
		Name:  "CoWW",
		Descr: "coherence: same-location store order is preserved on every model (per-address FIFO)",
		Source: `
int x = 0;
void writer() { x = 1; x = 2; }
void other() { x = 3; }
int main() {
  int t1 = fork writer();
  int t2 = fork other();
  join t1; join t2;
  print(x);
  return 0;
}
`,
		// Final x must be the last committed store of some thread: 2 or 3,
		// never 1 (x=1 cannot commit after x=2 from the same thread).
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"1"}},
			memmodel.TSO: {Forbidden: []Outcome{"1"}},
			memmodel.PSO: {Forbidden: []Outcome{"1"}},
		},
	},
	{
		Name:  "CoWR",
		Descr: "read-own-write: a thread always sees its latest buffered store",
		Source: `
int x = 0;
void w() { x = 7; print(x); }
int main() {
  int t1 = fork w();
  join t1;
  return 0;
}
`,
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"0"}},
			memmodel.TSO: {Forbidden: []Outcome{"0"}},
			memmodel.PSO: {Forbidden: []Outcome{"0"}},
		},
	},
	{
		Name:  "S",
		Descr: "S shape: store-store into a racing read — only PSO lets the second store pass the first",
		Source: `
int x = 0; int y = 0;
int r = 0;
void w1() { x = 2; y = 1; }
void w2() {
  while (!y) { }
  x = 1;
}
int main() {
  int t1 = fork w1();
  int t2 = fork w2();
  join t1; join t2;
  print(x);
  return 0;
}
`,
		// w2 observes y=1 then stores x=1. Under SC/TSO, w1's x=2 committed
		// before y=1, so the final x is 1 (or 2 only if... it cannot be 2:
		// x=1 commits after the y-spin, hence after x=2). Under PSO y=1 may
		// commit before x=2, so x=2 can land last: final x=2 is the
		// distinguishing outcome.
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"2"}},
			memmodel.TSO: {Forbidden: []Outcome{"2"}},
			memmodel.PSO: {Distinguishing: "2"},
		},
	},
	{
		Name:  "MP+cas",
		Descr: "message passing where the flag is raised by CAS: the CAS drain restores order on every model",
		Source: `
int data = 0; int flag = 0;
void producer() {
  data = 42;
  cas(&flag, 0, 1);
}
void consumer() {
  while (!flag) { }
  print(data);
}
int main() {
  int t1 = fork producer();
  int t2 = fork consumer();
  join t1; join t2;
  return 0;
}
`,
		// CAS executes only with drained buffers (TSO: the whole FIFO; PSO:
		// hmm — PSO drains only flag's buffer, so data may still lag).
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"0"}},
			memmodel.TSO: {Forbidden: []Outcome{"0"}},
			memmodel.PSO: {Distinguishing: "0"},
		},
	},
	{
		Name:  "2+2W",
		Descr: "two writers, two locations: only PSO can interleave the per-location flushes cyclically",
		Source: `
int x = 0; int y = 0;
void w1() { x = 1; y = 2; }
void w2() { y = 1; x = 2; }
int main() {
  int t1 = fork w1();
  int t2 = fork w2();
  join t1; join t2;
  print(x);
  print(y);
  return 0;
}
`,
		Results: map[memmodel.Model]Verdict{
			memmodel.SC:  {Forbidden: []Outcome{"1,1"}},
			memmodel.TSO: {Forbidden: []Outcome{"1,1"}},
			memmodel.PSO: {Distinguishing: "1,1"},
		},
	},
}
