package ir

import (
	"strings"
	"testing"
)

// buildCounter constructs: main { x = 0; for i in 0..4: x = x+1; return x }
// using the global "x" so loads/stores are exercised.
func buildCounter(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()
	if err := p.AddGlobal(&Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := NewFuncBuilder(p, "main", 0)
	xaddr := b.GlobalAddr("x")
	i := b.Const(0)
	four := b.Const(4)
	head := b.NextLabel()
	cond := b.BinOp(BinLt, i, four)
	taken, exit := b.CondBrF(cond)
	taken.Here() // body starts immediately
	xv, _ := b.Load(xaddr, "x")
	one := b.Const(1)
	sum := b.BinOp(BinAdd, xv, one)
	b.Store(xaddr, sum, "x")
	b.BinTo(i, BinAdd, i, one)
	b.Br(head)
	exit.Here()
	final, _ := b.Load(xaddr, "x")
	b.RetVal(final)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderAndLink(t *testing.T) {
	p := buildCounter(t)
	if p.Global("x").Addr != 1 {
		t.Errorf("global x address = %d, want 1 (0 is NULL)", p.Global("x").Addr)
	}
	f := p.Funcs["main"]
	if f == nil {
		t.Fatal("main not registered")
	}
	// All labels unique and indexable.
	seen := map[Label]bool{}
	for i := range f.Code {
		l := f.Code[i].Label
		if seen[l] {
			t.Errorf("duplicate label L%d", l)
		}
		seen[l] = true
		if f.IndexOf(l) != i {
			t.Errorf("IndexOf(L%d) = %d, want %d", l, f.IndexOf(l), i)
		}
	}
}

func TestValidateCatchesBadBranch(t *testing.T) {
	p := NewProgram()
	b := NewFuncBuilder(p, "main", 0)
	b.Br(Label(9999))
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err == nil {
		t.Fatal("Link accepted a branch to a label outside the function")
	}
}

func TestValidateCatchesUnknownCallee(t *testing.T) {
	p := NewProgram()
	b := NewFuncBuilder(p, "main", 0)
	b.Call(NoReg, "missing")
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("Link error = %v, want undefined-function error", err)
	}
}

func TestValidateCatchesRegisterOutOfRange(t *testing.T) {
	p := NewProgram()
	f := &Func{Name: "main", NumRegs: 1, Code: []Instr{
		{Label: p.NewLabel(), Op: OpMov, Dst: 0, A: 5},
		{Label: p.NewLabel(), Op: OpRet},
	}}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err == nil {
		t.Fatal("Link accepted out-of-range register")
	}
}

func TestValidateCatchesArgCountMismatch(t *testing.T) {
	p := NewProgram()
	callee := NewFuncBuilder(p, "f", 2)
	callee.Ret()
	if _, err := callee.Finish(); err != nil {
		t.Fatal(err)
	}
	b := NewFuncBuilder(p, "main", 0)
	x := b.Const(1)
	b.Call(NoReg, "f", x) // f wants 2 args
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err == nil || !strings.Contains(err.Error(), "expects 2 args") {
		t.Fatalf("Link error = %v, want arg-count error", err)
	}
}

func TestInsertFenceAfter(t *testing.T) {
	p := buildCounter(t)
	f := p.Funcs["main"]
	// Find the store instruction.
	var storeLbl Label = NoLabel
	for i := range f.Code {
		if f.Code[i].Op == OpStore {
			storeLbl = f.Code[i].Label
		}
	}
	if storeLbl == NoLabel {
		t.Fatal("no store found")
	}
	before := len(f.Code)
	fl, err := p.InsertFenceAfter(storeLbl, FenceStoreStore)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Code) != before+1 {
		t.Fatalf("code length %d, want %d", len(f.Code), before+1)
	}
	idx := f.IndexOf(storeLbl)
	if f.Code[idx+1].Label != fl || f.Code[idx+1].Op != OpFence {
		t.Fatalf("instruction after store is %v, want fence L%d", f.Code[idx+1].String(), fl)
	}
	if f.Code[idx+1].Kind != FenceStoreStore {
		t.Errorf("fence kind = %v, want store-store", f.Code[idx+1].Kind)
	}
	// Program still valid after mutation.
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid after fence insertion: %v", err)
	}
	// Existing branch targets unchanged and still resolvable.
	for i := range f.Code {
		in := &f.Code[i]
		if in.Op == OpBr || in.Op == OpCondBr {
			if f.IndexOf(in.Target) < 0 {
				t.Errorf("branch L%d target lost after insertion", in.Label)
			}
		}
	}
}

func TestInsertFenceAfterUnknownLabel(t *testing.T) {
	p := buildCounter(t)
	if _, err := p.InsertFenceAfter(Label(12345), FenceFull); err == nil {
		t.Fatal("InsertFenceAfter accepted unknown label")
	}
}

func TestClone(t *testing.T) {
	p := buildCounter(t)
	q := p.Clone()
	// Mutating the clone must not affect the original.
	f := q.Funcs["main"]
	var storeLbl Label
	for i := range f.Code {
		if f.Code[i].Op == OpStore {
			storeLbl = f.Code[i].Label
		}
	}
	if _, err := q.InsertFenceAfter(storeLbl, FenceFull); err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs["main"].Code) == len(q.Funcs["main"].Code) {
		t.Error("clone shares code with original")
	}
	if got := len(p.Fences()); got != 0 {
		t.Errorf("original gained %d fences from clone mutation", got)
	}
	if got := len(q.Fences()); got != 1 {
		t.Errorf("clone has %d fences, want 1", got)
	}
	// Fresh labels in the clone must not collide with the original's.
	nl := q.NewLabel()
	if p.InstrAt(nl) != nil {
		t.Errorf("clone label L%d collides with original instruction", nl)
	}
}

func TestCountStoresAndInstrs(t *testing.T) {
	p := buildCounter(t)
	if got := p.CountStores(); got != 1 {
		t.Errorf("CountStores = %d, want 1", got)
	}
	if got := p.CountInstrs(); got != len(p.Funcs["main"].Code) {
		t.Errorf("CountInstrs = %d, want %d", got, len(p.Funcs["main"].Code))
	}
}

func TestDisasmMentionsEverything(t *testing.T) {
	p := buildCounter(t)
	d := p.Disasm()
	for _, want := range []string{"global x[1]", "func main", "load", "store", "condbr", "ret"} {
		if !strings.Contains(d, want) {
			t.Errorf("Disasm missing %q:\n%s", want, d)
		}
	}
}

func TestBinEval(t *testing.T) {
	cases := []struct {
		op   Bin
		x, y int64
		want int64
	}{
		{BinAdd, 2, 3, 5},
		{BinSub, 2, 3, -1},
		{BinMul, 4, -3, -12},
		{BinDiv, 7, 2, 3},
		{BinDiv, 7, 0, 0},
		{BinMod, 7, 3, 1},
		{BinMod, 7, 0, 0},
		{BinAnd, 6, 3, 2},
		{BinOr, 6, 3, 7},
		{BinXor, 6, 3, 5},
		{BinShl, 1, 4, 16},
		{BinShr, 16, 4, 1},
		{BinEq, 5, 5, 1},
		{BinEq, 5, 6, 0},
		{BinNe, 5, 6, 1},
		{BinLt, -1, 0, 1},
		{BinLe, 0, 0, 1},
		{BinGt, 1, 0, 1},
		{BinGe, 0, 1, 0},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.x, c.y); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %d, want %d", c.op, c.x, c.y, got, c.want)
		}
	}
}

func TestFenceKindString(t *testing.T) {
	if FenceStoreStore.String() != "fence(st-st)" {
		t.Errorf("got %q", FenceStoreStore.String())
	}
	if FenceStoreLoad.String() != "fence(st-ld)" {
		t.Errorf("got %q", FenceStoreLoad.String())
	}
}

func TestSharedAccessPredicates(t *testing.T) {
	load := Instr{Op: OpLoad}
	if !load.IsSharedLoad() || !load.IsSharedAccess() {
		t.Error("plain load should be shared")
	}
	load.ThreadLocal = true
	if load.IsSharedLoad() || load.IsSharedAccess() {
		t.Error("thread-local load should not be shared")
	}
	cas := Instr{Op: OpCas}
	if !cas.IsSharedAccess() {
		t.Error("cas is a shared access")
	}
}

func TestDuplicateGlobalRejected(t *testing.T) {
	p := NewProgram()
	if err := p.AddGlobal(&Global{Name: "g", Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGlobal(&Global{Name: "g", Size: 2}); err == nil {
		t.Fatal("duplicate global accepted")
	}
}

func TestMissingEntryRejected(t *testing.T) {
	p := NewProgram()
	b := NewFuncBuilder(p, "helper", 0)
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err == nil {
		t.Fatal("Link accepted program without main")
	}
}

func TestInsertDummyCASAfter(t *testing.T) {
	p := buildCounter(t)
	if err := p.AddGlobal(&Global{Name: "__dummy", Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	f := p.Funcs["main"]
	var storeLbl Label = NoLabel
	for i := range f.Code {
		if f.Code[i].Op == OpStore {
			storeLbl = f.Code[i].Label
		}
	}
	regsBefore := f.NumRegs
	lenBefore := len(f.Code)
	casLbl, err := p.InsertDummyCASAfter(storeLbl, "__dummy")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRegs != regsBefore+4 {
		t.Errorf("NumRegs = %d, want %d", f.NumRegs, regsBefore+4)
	}
	if len(f.Code) != lenBefore+4 {
		t.Errorf("code length = %d, want %d", len(f.Code), lenBefore+4)
	}
	idx := f.IndexOf(storeLbl)
	if f.Code[idx+1].Op != OpGlobal || f.Code[idx+4].Op != OpCas {
		t.Errorf("unexpected sequence after store:\n%s", p.Disasm())
	}
	if f.Code[idx+4].Label != casLbl {
		t.Errorf("cas label mismatch")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid after insertion: %v", err)
	}
	// Unknown label / global rejected.
	if _, err := p.InsertDummyCASAfter(Label(99999), "__dummy"); err == nil {
		t.Error("unknown label accepted")
	}
	if _, err := p.InsertDummyCASAfter(storeLbl, "missing"); err == nil {
		t.Error("unknown global accepted")
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	p := buildCounter(t)
	Optimize(p)
	after := p.CountInstrs()
	if n := Optimize(p); n != 0 {
		t.Errorf("second Optimize removed %d more instructions", n)
	}
	if p.CountInstrs() != after {
		t.Error("instruction count changed on idempotent pass")
	}
}
