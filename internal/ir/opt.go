package ir

// Optimize applies semantics-preserving cleanups to every function:
// constant folding, copy propagation, and dead pure-instruction
// elimination. The front end's straightforward lowering materializes many
// constants and moves; folding them shrinks programs (faster
// interpretation, smaller "bytecode LOC") without touching anything the
// synthesizer cares about — shared loads, stores, CAS, fences, calls, and
// control flow keep their labels and order.
//
// The pass is optional: benchmark programs run unoptimized by default so
// reported sizes match the naive lowering; Optimize is exposed for users
// and measured by the ablation benchmarks. Returns the number of
// instructions removed.
func Optimize(p *Program) int {
	removed := 0
	for _, name := range p.FuncNames() {
		removed += optimizeFunc(p.Funcs[name])
	}
	return removed
}

// optimizeFunc runs fold/propagate + DCE to a fixpoint on one function.
func optimizeFunc(f *Func) int {
	removed := 0
	for {
		n := foldOnce(f) + dceOnce(f)
		if n == 0 {
			return removed
		}
		removed += n
	}
}

// regInfo tracks the compile-time knowledge about a register at one
// program point of a straight-line region.
type regInfo struct {
	isConst bool
	val     int64
	copyOf  Reg // NoReg if unknown
}

// foldOnce performs one forward pass over each basic block: registers
// holding known constants let Bin/Not/Neg/CondBr instructions be folded
// in place. Returns the number of instructions simplified structurally
// (branch folds); value folds don't remove instructions by themselves
// (DCE picks up the dead ones).
func foldOnce(f *Func) int {
	leaders := blockLeaders(f)
	changed := 0
	var know []regInfo
	reset := func() {
		know = make([]regInfo, f.NumRegs)
		for i := range know {
			know[i].copyOf = NoReg
		}
	}
	reset()
	clobber := func(r Reg) {
		if r == NoReg {
			return
		}
		know[r] = regInfo{copyOf: NoReg}
		// Anything copying from r is stale now.
		for i := range know {
			if know[i].copyOf == r {
				know[i] = regInfo{copyOf: NoReg}
			}
		}
	}
	constOf := func(r Reg) (int64, bool) {
		if r == NoReg || int(r) >= len(know) {
			return 0, false
		}
		if know[r].isConst {
			return know[r].val, true
		}
		return 0, false
	}
	resolve := func(r Reg) Reg {
		if r != NoReg && int(r) < len(know) && know[r].copyOf != NoReg {
			return know[r].copyOf
		}
		return r
	}

	for i := range f.Code {
		if leaders[i] {
			reset() // conservative: no facts across block boundaries
		}
		in := &f.Code[i]

		// Copy propagation on operands (never on Dst).
		switch in.Op {
		case OpMov, OpNot, OpNeg, OpLoad, OpJoin, OpFree, OpAssert, OpPrint, OpAlloc, OpRet, OpCondBr:
			in.A = resolve(in.A)
		case OpBin:
			in.A = resolve(in.A)
			in.B = resolve(in.B)
		case OpStore:
			in.A = resolve(in.A)
			in.B = resolve(in.B)
		case OpCas:
			in.A = resolve(in.A)
			in.B = resolve(in.B)
			in.C = resolve(in.C)
		case OpCall, OpFork:
			for j := range in.Args {
				in.Args[j] = resolve(in.Args[j])
			}
		}

		switch in.Op {
		case OpConst:
			clobber(in.Dst)
			know[in.Dst] = regInfo{isConst: true, val: in.Imm, copyOf: NoReg}
		case OpGlobal:
			clobber(in.Dst)
			know[in.Dst] = regInfo{isConst: true, val: in.Imm, copyOf: NoReg}
		case OpMov:
			src := in.A
			if v, ok := constOf(src); ok {
				// Rewrite to a constant load; cheaper and enables folding.
				*in = Instr{Label: in.Label, Op: OpConst, Dst: in.Dst, Imm: v, Line: in.Line, Comment: in.Comment}
				clobber(in.Dst)
				know[in.Dst] = regInfo{isConst: true, val: v, copyOf: NoReg}
				changed++
			} else {
				clobber(in.Dst)
				know[in.Dst] = regInfo{copyOf: src}
			}
		case OpBin:
			a, okA := constOf(in.A)
			bv, okB := constOf(in.B)
			if okA && okB {
				v := in.Bin.Eval(a, bv)
				*in = Instr{Label: in.Label, Op: OpConst, Dst: in.Dst, Imm: v, Line: in.Line, Comment: in.Comment}
				clobber(in.Dst)
				know[in.Dst] = regInfo{isConst: true, val: v, copyOf: NoReg}
				changed++
			} else {
				clobber(in.Dst)
			}
		case OpNot:
			if v, ok := constOf(in.A); ok {
				nv := int64(0)
				if v == 0 {
					nv = 1
				}
				*in = Instr{Label: in.Label, Op: OpConst, Dst: in.Dst, Imm: nv, Line: in.Line}
				clobber(in.Dst)
				know[in.Dst] = regInfo{isConst: true, val: nv, copyOf: NoReg}
				changed++
			} else {
				clobber(in.Dst)
			}
		case OpNeg:
			if v, ok := constOf(in.A); ok {
				*in = Instr{Label: in.Label, Op: OpConst, Dst: in.Dst, Imm: -v, Line: in.Line}
				clobber(in.Dst)
				know[in.Dst] = regInfo{isConst: true, val: -v, copyOf: NoReg}
				changed++
			} else {
				clobber(in.Dst)
			}
		case OpCondBr:
			if v, ok := constOf(in.A); ok {
				target := in.Target2
				if v != 0 {
					target = in.Target
				}
				*in = Instr{Label: in.Label, Op: OpBr, Target: target, Line: in.Line}
				changed++
			}
		default:
			// Def(), not Dst: non-result instructions (stores, fences,
			// branches, ...) leave Dst at its zero value, which is register
			// 0, and clobbering it here would discard real facts about r0.
			clobber(in.Def())
		}
	}
	return changed
}

// dceOnce removes pure instructions whose results are never read.
// Instructions with side effects (memory, control, calls, fences, I/O)
// are always kept. Branch targets are retargeted to the removed
// instruction's successor, like the fence-merge pass.
func dceOnce(f *Func) int {
	used := make([]bool, f.NumRegs)
	mark := func(r Reg) {
		if r != NoReg && int(r) < len(used) {
			used[r] = true
		}
	}
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Op {
		case OpConst, OpGlobal, OpSelf:
			// pure producers: operands none
		case OpMov, OpNot, OpNeg:
			mark(in.A)
		case OpBin:
			mark(in.A)
			mark(in.B)
		case OpLoad:
			mark(in.A)
		case OpStore:
			mark(in.A)
			mark(in.B)
		case OpCas:
			mark(in.A)
			mark(in.B)
			mark(in.C)
		case OpCondBr, OpJoin, OpFree, OpAssert, OpPrint, OpAlloc:
			mark(in.A)
		case OpRet:
			if in.HasVal {
				mark(in.A)
			}
		case OpCall, OpFork:
			for _, a := range in.Args {
				mark(a)
			}
		}
	}

	removedIdx := make([]int, 0)
	for i := range f.Code {
		in := &f.Code[i]
		pure := false
		switch in.Op {
		case OpConst, OpGlobal, OpMov, OpBin, OpNot, OpNeg, OpSelf:
			pure = true
		}
		if pure && (in.Dst == NoReg || !used[in.Dst]) {
			removedIdx = append(removedIdx, i)
		}
	}
	if len(removedIdx) == 0 {
		return 0
	}
	// Never empty a function or remove its only terminator path; pure
	// instructions are never terminators, and the function keeps its
	// trailing ret, so removal is safe. Retarget branches to successors,
	// back to front.
	for k := len(removedIdx) - 1; k >= 0; k-- {
		i := removedIdx[k]
		dead := f.Code[i].Label
		succ := f.Code[i+1].Label // pure instrs are never last (ret/br is)
		for j := range f.Code {
			in := &f.Code[j]
			if in.Op != OpBr && in.Op != OpCondBr {
				continue
			}
			if in.Target == dead {
				in.Target = succ
			}
			if in.Op == OpCondBr && in.Target2 == dead {
				in.Target2 = succ
			}
		}
		f.Code = append(f.Code[:i], f.Code[i+1:]...)
	}
	f.Rebuild()
	return len(removedIdx)
}

// blockLeaders marks the instructions that start a basic block.
func blockLeaders(f *Func) []bool {
	leaders := make([]bool, len(f.Code))
	if len(f.Code) > 0 {
		leaders[0] = true
	}
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Op {
		case OpBr:
			if t := f.IndexOf(in.Target); t >= 0 {
				leaders[t] = true
			}
			if i+1 < len(f.Code) {
				leaders[i+1] = true
			}
		case OpCondBr:
			if t := f.IndexOf(in.Target); t >= 0 {
				leaders[t] = true
			}
			if t := f.IndexOf(in.Target2); t >= 0 {
				leaders[t] = true
			}
			if i+1 < len(f.Code) {
				leaders[i+1] = true
			}
		case OpRet:
			if i+1 < len(f.Code) {
				leaders[i+1] = true
			}
		}
	}
	return leaders
}
