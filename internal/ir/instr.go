package ir

import (
	"fmt"
	"strings"
)

// Label uniquely identifies an instruction within a Program. Labels are
// assigned when instructions are created and never change; branch targets
// and ordering predicates refer to labels, so inserting instructions (e.g.
// synthesized fences) never invalidates them.
type Label int32

// NoLabel marks an unset label or branch target.
const NoLabel Label = -1

// Reg indexes a virtual register in the current frame. Registers are
// thread-local: they model the paper's Local environment L and are never
// subject to the memory model.
type Reg int32

// NoReg marks an unused register operand.
const NoReg Reg = -1

// Instr is a single IR instruction. One struct covers all opcodes; which
// fields are meaningful depends on Op (see the Op constants).
type Instr struct {
	Label Label
	Op    Op

	Dst Reg // result register
	A   Reg // first operand
	B   Reg // second operand
	C   Reg // third operand (OpCas new-value)

	Imm  int64 // OpConst immediate; OpGlobal resolved address
	Bin  Bin   // OpBin operation
	Kind FenceKind

	Target  Label // OpBr/OpCondBr taken target
	Target2 Label // OpCondBr fall-through target

	Func string // OpCall/OpFork callee; OpGlobal global name
	Args []Reg  // OpCall/OpFork arguments

	HasVal bool   // OpRet: register A carries a value
	Msg    string // OpAssert message

	// ThreadLocal marks a Load/Store that the front end proved can only
	// touch memory private to the executing thread (a non-escaping stack
	// slot). Such accesses bypass the store buffers (the paper:
	// "thread-local variables access the memory directly") and are not
	// scheduling points for the partial-order-reducing scheduler.
	ThreadLocal bool

	// Comment optionally records the source construct (variable name,
	// line) for disassembly and reporting.
	Comment string

	// Line is the source line this instruction was lowered from (0 when
	// built directly). Synthesis reports use it to phrase fence positions
	// the way the paper's Table 3 does: "(method, line1:line2)".
	Line int32
}

// String renders the instruction in disassembly form.
func (in *Instr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "L%d: ", in.Label)
	switch in.Op {
	case OpConst:
		fmt.Fprintf(&b, "r%d = const %d", in.Dst, in.Imm)
	case OpGlobal:
		fmt.Fprintf(&b, "r%d = &%s (addr %d)", in.Dst, in.Func, in.Imm)
	case OpMov:
		fmt.Fprintf(&b, "r%d = r%d", in.Dst, in.A)
	case OpBin:
		fmt.Fprintf(&b, "r%d = %s r%d, r%d", in.Dst, in.Bin, in.A, in.B)
	case OpNot:
		fmt.Fprintf(&b, "r%d = not r%d", in.Dst, in.A)
	case OpNeg:
		fmt.Fprintf(&b, "r%d = neg r%d", in.Dst, in.A)
	case OpLoad:
		fmt.Fprintf(&b, "r%d = load [r%d]", in.Dst, in.A)
		if in.ThreadLocal {
			b.WriteString(" {local}")
		}
	case OpStore:
		fmt.Fprintf(&b, "store [r%d], r%d", in.A, in.B)
		if in.ThreadLocal {
			b.WriteString(" {local}")
		}
	case OpCas:
		fmt.Fprintf(&b, "r%d = cas [r%d], r%d, r%d", in.Dst, in.A, in.B, in.C)
	case OpFence:
		b.WriteString(in.Kind.String())
	case OpBr:
		fmt.Fprintf(&b, "br L%d", in.Target)
	case OpCondBr:
		fmt.Fprintf(&b, "condbr r%d, L%d, L%d", in.A, in.Target, in.Target2)
	case OpCall:
		writeCall(&b, in)
	case OpRet:
		if in.HasVal {
			fmt.Fprintf(&b, "ret r%d", in.A)
		} else {
			b.WriteString("ret")
		}
	case OpFork:
		fmt.Fprintf(&b, "r%d = fork %s%s", in.Dst, in.Func, argList(in.Args))
	case OpJoin:
		fmt.Fprintf(&b, "join r%d", in.A)
	case OpSelf:
		fmt.Fprintf(&b, "r%d = self", in.Dst)
	case OpAlloc:
		fmt.Fprintf(&b, "r%d = alloc r%d", in.Dst, in.A)
	case OpFree:
		fmt.Fprintf(&b, "free r%d", in.A)
	case OpAssert:
		fmt.Fprintf(&b, "assert r%d, %q", in.A, in.Msg)
	case OpPrint:
		fmt.Fprintf(&b, "print r%d", in.A)
	default:
		fmt.Fprintf(&b, "%s ???", in.Op)
	}
	if in.Comment != "" {
		fmt.Fprintf(&b, "  ; %s", in.Comment)
	}
	return b.String()
}

func writeCall(b *strings.Builder, in *Instr) {
	if in.Dst != NoReg {
		fmt.Fprintf(b, "r%d = ", in.Dst)
	}
	fmt.Fprintf(b, "call %s%s", in.Func, argList(in.Args))
}

func argList(args []Reg) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = fmt.Sprintf("r%d", a)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Def returns the register the instruction writes, or NoReg for
// instructions without a result (store, fence, branches, ...). OpCall
// returns NoReg when the call result is discarded.
func (in *Instr) Def() Reg {
	switch in.Op {
	case OpConst, OpGlobal, OpSelf, OpMov, OpBin, OpNot, OpNeg,
		OpLoad, OpCas, OpFork, OpAlloc:
		return in.Dst
	case OpCall:
		return in.Dst // may be NoReg
	}
	return NoReg
}

// Uses appends the registers the instruction reads to dst and returns the
// extended slice. Callers typically reuse dst across instructions to avoid
// allocation.
func (in *Instr) Uses(dst []Reg) []Reg {
	switch in.Op {
	case OpMov, OpNot, OpNeg, OpLoad, OpCondBr, OpJoin, OpFree, OpAssert, OpPrint, OpAlloc:
		dst = append(dst, in.A)
	case OpBin, OpStore:
		dst = append(dst, in.A, in.B)
	case OpCas:
		dst = append(dst, in.A, in.B, in.C)
	case OpCall, OpFork:
		dst = append(dst, in.Args...)
	case OpRet:
		if in.HasVal {
			dst = append(dst, in.A)
		}
	}
	return dst
}

// IsSharedStore reports whether the instruction writes shared memory
// through the memory model (a buffered store).
func (in *Instr) IsSharedStore() bool {
	return in.Op == OpStore && !in.ThreadLocal
}

// IsSharedLoad reports whether the instruction reads shared memory through
// the memory model.
func (in *Instr) IsSharedLoad() bool {
	return in.Op == OpLoad && !in.ThreadLocal
}

// IsSharedAccess reports whether the instruction touches shared memory
// (load, store, or CAS through the memory model).
func (in *Instr) IsSharedAccess() bool {
	return in.IsSharedStore() || in.IsSharedLoad() || in.Op == OpCas
}
