// Package ir defines the intermediate representation interpreted by DFENCE:
// a register-based instruction set implementing the statement forms of the
// paper's Table 1 (load, store, cas, call, return, fork, join, fence, self)
// plus the ALU, branching, and allocation operations needed to lower a
// C-like surface language.
//
// Every instruction carries a stable Label that is unique within its
// Program. Labels survive program mutation: inserting a fence after label l
// allocates a fresh label for the fence and leaves all existing labels (and
// the branch targets that refer to them) untouched. Ordering predicates and
// synthesis results are expressed in terms of these labels.
package ir

import "fmt"

// Op enumerates instruction opcodes.
type Op uint8

const (
	// OpInvalid is the zero Op; a validated program never contains it.
	OpInvalid Op = iota

	// OpConst sets Dst to the immediate Imm.
	OpConst
	// OpGlobal sets Dst to the address of global GlobalName (resolved at
	// link time; Imm holds the resolved base address after linking).
	OpGlobal
	// OpMov copies register A to Dst.
	OpMov
	// OpBin applies Bin to registers A and B, storing the result in Dst.
	OpBin
	// OpNot sets Dst to 1 if register A is zero and 0 otherwise.
	OpNot
	// OpNeg sets Dst to the arithmetic negation of register A.
	OpNeg

	// OpLoad loads the word at address in register A into Dst. Subject to
	// the active memory model (reads the thread's own store buffer first).
	OpLoad
	// OpStore stores register B to the address in register A. Under TSO/PSO
	// the store enters the thread's store buffer.
	OpStore
	// OpCas compares the word at address in register A with register B and,
	// if equal, stores register C; Dst receives 1 on success, 0 on failure.
	// Executes atomically and only when the thread's store buffer for the
	// location has drained (the scheduler flushes first).
	OpCas
	// OpFence is a memory barrier; Kind selects its strength. Store-ordering
	// kinds drain (st-ld, full) or epoch-partition (st-st, release) the
	// thread's store buffers; load-ordering kinds force the thread's pending
	// deferred loads to resolve. See FenceKind.
	OpFence

	// OpBr jumps unconditionally to the instruction labelled Target.
	OpBr
	// OpCondBr jumps to Target if register A is non-zero, else to Target2.
	OpCondBr

	// OpCall invokes function Func with argument registers Args; the return
	// value (if any) lands in Dst.
	OpCall
	// OpRet returns from the current function. If HasVal, register A holds
	// the return value.
	OpRet

	// OpFork starts a new thread running function Func with argument
	// registers Args and sets Dst to the new thread's id.
	OpFork
	// OpJoin blocks until the thread whose id is in register A finishes.
	OpJoin
	// OpSelf sets Dst to the calling thread's id.
	OpSelf

	// OpAlloc allocates a fresh memory unit of the word size in register A
	// and sets Dst to its base address. Models mmap/sbrk: the unit is
	// tracked for memory-safety checking.
	OpAlloc
	// OpFree releases the memory unit based at the address in register A.
	// Per the paper, freeing does not flush store buffers.
	OpFree

	// OpAssert checks that register A is non-zero and reports a safety
	// violation otherwise. Msg describes the assertion.
	OpAssert
	// OpPrint appends register A to the execution's output (for tests and
	// examples).
	OpPrint
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpConst:   "const",
	OpGlobal:  "global",
	OpMov:     "mov",
	OpBin:     "bin",
	OpNot:     "not",
	OpNeg:     "neg",
	OpLoad:    "load",
	OpStore:   "store",
	OpCas:     "cas",
	OpFence:   "fence",
	OpBr:      "br",
	OpCondBr:  "condbr",
	OpCall:    "call",
	OpRet:     "ret",
	OpFork:    "fork",
	OpJoin:    "join",
	OpSelf:    "self",
	OpAlloc:   "alloc",
	OpFree:    "free",
	OpAssert:  "assert",
	OpPrint:   "print",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Bin enumerates binary ALU operations.
type Bin uint8

const (
	BinAdd Bin = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
)

var binNames = [...]string{
	BinAdd: "add", BinSub: "sub", BinMul: "mul", BinDiv: "div",
	BinMod: "mod", BinAnd: "and", BinOr: "or", BinXor: "xor",
	BinShl: "shl", BinShr: "shr", BinEq: "eq", BinNe: "ne",
	BinLt: "lt", BinLe: "le", BinGt: "gt", BinGe: "ge",
}

func (b Bin) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// Eval applies the binary operation to two word operands. Division and
// modulus by zero yield zero (the interpreter reports them separately).
func (b Bin) Eval(x, y int64) int64 {
	switch b {
	case BinAdd:
		return x + y
	case BinSub:
		return x - y
	case BinMul:
		return x * y
	case BinDiv:
		if y == 0 {
			return 0
		}
		return x / y
	case BinMod:
		if y == 0 {
			return 0
		}
		return x % y
	case BinAnd:
		return x & y
	case BinOr:
		return x | y
	case BinXor:
		return x ^ y
	case BinShl:
		return x << (uint64(y) & 63)
	case BinShr:
		return x >> (uint64(y) & 63)
	case BinEq:
		return b2i(x == y)
	case BinNe:
		return b2i(x != y)
	case BinLt:
		return b2i(x < y)
	case BinLe:
		return b2i(x <= y)
	case BinGt:
		return b2i(x > y)
	case BinGe:
		return b2i(x >= y)
	}
	panic(fmt.Sprintf("ir: unknown binary op %d", b))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// AccessClass classifies a shared access as a load or a store for the
// purposes of reordering: a memory model relaxes (or a fence restores)
// program order between ordered pairs of classes. CAS counts as a store
// (it writes memory); whether it can appear on either side of a relaxed
// pair is decided by the model's synchronization rules, not its class.
type AccessClass uint8

const (
	// ClassLoad is a shared read.
	ClassLoad AccessClass = iota
	// ClassStore is a shared write (store or CAS).
	ClassStore
)

func (c AccessClass) String() string {
	switch c {
	case ClassLoad:
		return "ld"
	case ClassStore:
		return "st"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// AccessClasses lists both classes, load first. Matrix builders and
// round-trip tests range over it.
func AccessClasses() []AccessClass { return []AccessClass{ClassLoad, ClassStore} }

// ClassOf returns the access class of a shared-memory opcode (OpLoad,
// OpStore, OpCas); ok is false for every other opcode.
func ClassOf(op Op) (AccessClass, bool) {
	switch op {
	case OpLoad:
		return ClassLoad, true
	case OpStore, OpCas:
		return ClassStore, true
	}
	return ClassLoad, false
}

// FenceKind distinguishes the barrier vocabulary DFENCE reasons about. Each
// kind declares which program-order pairs (AccessClass × AccessClass) it
// restores — see Orders — and the interpreter gives it operational meaning:
// store-ordering kinds drain or epoch-partition the store buffers,
// load-ordering kinds force pending deferred loads to resolve. The kinds
// mirror the SPARC membar variants plus acquire/release one-way barriers
// (cf. "Don't sit on the fence": full fences dominate one-way barriers in
// both strength and cost).
type FenceKind uint8

const (
	// FenceFull is a full barrier (programmer-written fence()): orders
	// every class pair.
	FenceFull FenceKind = iota
	// FenceStoreStore orders earlier stores before later stores. The
	// interpreter implements it as an epoch barrier in the store buffers:
	// nothing drains, but entries buffered after it cannot commit before
	// entries buffered before it.
	FenceStoreStore
	// FenceStoreLoad orders earlier stores before later loads; the
	// interpreter drains the store buffers (which incidentally also orders
	// store-store — see OrdersAtRuntime).
	FenceStoreLoad
	// FenceLoadLoad orders earlier loads before later loads (resolves
	// pending deferred loads).
	FenceLoadLoad
	// FenceLoadStore orders earlier loads before later stores (resolves
	// pending deferred loads).
	FenceLoadStore
	// FenceAcquire is the one-way barrier after a load: earlier loads are
	// ordered before every later access (ld-ld and ld-st).
	FenceAcquire
	// FenceRelease is the one-way barrier before a store: every earlier
	// access is ordered before later stores (ld-st and st-st).
	FenceRelease
)

// FenceKinds lists every defined fence kind, FenceFull first. Exhaustive
// by construction: dispatch sites, cost tables, and round-trip tests range
// over it so a kind added later cannot be silently skipped.
func FenceKinds() []FenceKind {
	return []FenceKind{
		FenceFull, FenceStoreStore, FenceStoreLoad,
		FenceLoadLoad, FenceLoadStore, FenceAcquire, FenceRelease,
	}
}

// pairBit maps an ordered class pair to its bit in a coverage mask.
func pairBit(a, b AccessClass) uint8 { return 1 << (2*uint8(a) + uint8(b)) }

const (
	maskLdLd = 1 << 0 // (ClassLoad, ClassLoad)
	maskLdSt = 1 << 1 // (ClassLoad, ClassStore)
	maskStLd = 1 << 2 // (ClassStore, ClassLoad)
	maskStSt = 1 << 3 // (ClassStore, ClassStore)
	maskAll  = maskLdLd | maskLdSt | maskStLd | maskStSt
)

// ordersMask is the declared (static) coverage of each kind: the class
// pairs the kind is *specified* to order. The static delay-set analysis
// and the hitting-set fence selector trust exactly this table.
func (k FenceKind) ordersMask() uint8 {
	switch k {
	case FenceFull:
		return maskAll
	case FenceStoreStore:
		return maskStSt
	case FenceStoreLoad:
		return maskStLd
	case FenceLoadLoad:
		return maskLdLd
	case FenceLoadStore:
		return maskLdSt
	case FenceAcquire:
		return maskLdLd | maskLdSt
	case FenceRelease:
		return maskLdSt | maskStSt
	}
	return 0
}

// runtimeMask is the operational guarantee of each kind in the
// interpreter, always a superset of ordersMask: draining the store buffer
// (st-ld) cannot help but order store-store too, and resolving the
// deferred-load queue (any load-ordering kind) orders both ld-ld and
// ld-st. interp's fence tests assert dynamic ⊇ declared, which is the
// soundness direction: a fence may be stronger than it claims, never
// weaker.
func (k FenceKind) runtimeMask() uint8 {
	switch k {
	case FenceFull:
		return maskAll
	case FenceStoreStore:
		return maskStSt
	case FenceStoreLoad:
		return maskStLd | maskStSt
	case FenceLoadLoad, FenceLoadStore, FenceAcquire:
		return maskLdLd | maskLdSt
	case FenceRelease:
		return maskLdLd | maskLdSt | maskStSt
	}
	return 0
}

// Orders reports the declared coverage: a fence of this kind guarantees
// that earlier class-a accesses take effect before later class-b accesses.
func (k FenceKind) Orders(a, b AccessClass) bool {
	return k.ordersMask()&pairBit(a, b) != 0
}

// OrdersAtRuntime reports the interpreter's operational guarantee, a
// superset of Orders (see runtimeMask). Dynamic synthesis selects fence
// kinds against this table; static analysis must use Orders.
func (k FenceKind) OrdersAtRuntime(a, b AccessClass) bool {
	return k.runtimeMask()&pairBit(a, b) != 0
}

// DrainsStores reports whether executing the fence forces the thread's
// store buffers to drain completely first (full and store-load barriers).
func (k FenceKind) DrainsStores() bool {
	return k.runtimeMask()&maskStLd != 0
}

// BarriersStores reports whether the fence partitions the store buffers
// into epochs instead of draining them (store-store and release barriers:
// earlier entries must commit before later ones, but nothing is forced
// out).
func (k FenceKind) BarriersStores() bool {
	return !k.DrainsStores() && k.runtimeMask()&maskStSt != 0
}

// ResolvesLoads reports whether executing the fence forces the thread's
// pending deferred loads to resolve first (every load-ordering kind).
func (k FenceKind) ResolvesLoads() bool {
	return k.runtimeMask()&(maskLdLd|maskLdSt) != 0
}

func (k FenceKind) String() string {
	switch k {
	case FenceFull:
		return "fence"
	case FenceStoreStore:
		return "fence(st-st)"
	case FenceStoreLoad:
		return "fence(st-ld)"
	case FenceLoadLoad:
		return "fence(ld-ld)"
	case FenceLoadStore:
		return "fence(ld-st)"
	case FenceAcquire:
		return "fence(acq)"
	case FenceRelease:
		return "fence(rel)"
	}
	return fmt.Sprintf("fencekind(%d)", uint8(k))
}

// ParseFenceKind inverts FenceKind.String — used when rebuilding a
// program's fences from a serialized run journal.
func ParseFenceKind(s string) (FenceKind, error) {
	for _, k := range FenceKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("ir: unknown fence kind %q", s)
}
