// Package ir defines the intermediate representation interpreted by DFENCE:
// a register-based instruction set implementing the statement forms of the
// paper's Table 1 (load, store, cas, call, return, fork, join, fence, self)
// plus the ALU, branching, and allocation operations needed to lower a
// C-like surface language.
//
// Every instruction carries a stable Label that is unique within its
// Program. Labels survive program mutation: inserting a fence after label l
// allocates a fresh label for the fence and leaves all existing labels (and
// the branch targets that refer to them) untouched. Ordering predicates and
// synthesis results are expressed in terms of these labels.
package ir

import "fmt"

// Op enumerates instruction opcodes.
type Op uint8

const (
	// OpInvalid is the zero Op; a validated program never contains it.
	OpInvalid Op = iota

	// OpConst sets Dst to the immediate Imm.
	OpConst
	// OpGlobal sets Dst to the address of global GlobalName (resolved at
	// link time; Imm holds the resolved base address after linking).
	OpGlobal
	// OpMov copies register A to Dst.
	OpMov
	// OpBin applies Bin to registers A and B, storing the result in Dst.
	OpBin
	// OpNot sets Dst to 1 if register A is zero and 0 otherwise.
	OpNot
	// OpNeg sets Dst to the arithmetic negation of register A.
	OpNeg

	// OpLoad loads the word at address in register A into Dst. Subject to
	// the active memory model (reads the thread's own store buffer first).
	OpLoad
	// OpStore stores register B to the address in register A. Under TSO/PSO
	// the store enters the thread's store buffer.
	OpStore
	// OpCas compares the word at address in register A with register B and,
	// if equal, stores register C; Dst receives 1 on success, 0 on failure.
	// Executes atomically and only when the thread's store buffer for the
	// location has drained (the scheduler flushes first).
	OpCas
	// OpFence drains the thread's store buffers. FenceK records the specific
	// kind (store-store or store-load) for reporting.
	OpFence

	// OpBr jumps unconditionally to the instruction labelled Target.
	OpBr
	// OpCondBr jumps to Target if register A is non-zero, else to Target2.
	OpCondBr

	// OpCall invokes function Func with argument registers Args; the return
	// value (if any) lands in Dst.
	OpCall
	// OpRet returns from the current function. If HasVal, register A holds
	// the return value.
	OpRet

	// OpFork starts a new thread running function Func with argument
	// registers Args and sets Dst to the new thread's id.
	OpFork
	// OpJoin blocks until the thread whose id is in register A finishes.
	OpJoin
	// OpSelf sets Dst to the calling thread's id.
	OpSelf

	// OpAlloc allocates a fresh memory unit of the word size in register A
	// and sets Dst to its base address. Models mmap/sbrk: the unit is
	// tracked for memory-safety checking.
	OpAlloc
	// OpFree releases the memory unit based at the address in register A.
	// Per the paper, freeing does not flush store buffers.
	OpFree

	// OpAssert checks that register A is non-zero and reports a safety
	// violation otherwise. Msg describes the assertion.
	OpAssert
	// OpPrint appends register A to the execution's output (for tests and
	// examples).
	OpPrint
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpConst:   "const",
	OpGlobal:  "global",
	OpMov:     "mov",
	OpBin:     "bin",
	OpNot:     "not",
	OpNeg:     "neg",
	OpLoad:    "load",
	OpStore:   "store",
	OpCas:     "cas",
	OpFence:   "fence",
	OpBr:      "br",
	OpCondBr:  "condbr",
	OpCall:    "call",
	OpRet:     "ret",
	OpFork:    "fork",
	OpJoin:    "join",
	OpSelf:    "self",
	OpAlloc:   "alloc",
	OpFree:    "free",
	OpAssert:  "assert",
	OpPrint:   "print",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Bin enumerates binary ALU operations.
type Bin uint8

const (
	BinAdd Bin = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
)

var binNames = [...]string{
	BinAdd: "add", BinSub: "sub", BinMul: "mul", BinDiv: "div",
	BinMod: "mod", BinAnd: "and", BinOr: "or", BinXor: "xor",
	BinShl: "shl", BinShr: "shr", BinEq: "eq", BinNe: "ne",
	BinLt: "lt", BinLe: "le", BinGt: "gt", BinGe: "ge",
}

func (b Bin) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// Eval applies the binary operation to two word operands. Division and
// modulus by zero yield zero (the interpreter reports them separately).
func (b Bin) Eval(x, y int64) int64 {
	switch b {
	case BinAdd:
		return x + y
	case BinSub:
		return x - y
	case BinMul:
		return x * y
	case BinDiv:
		if y == 0 {
			return 0
		}
		return x / y
	case BinMod:
		if y == 0 {
			return 0
		}
		return x % y
	case BinAnd:
		return x & y
	case BinOr:
		return x | y
	case BinXor:
		return x ^ y
	case BinShl:
		return x << (uint64(y) & 63)
	case BinShr:
		return x >> (uint64(y) & 63)
	case BinEq:
		return b2i(x == y)
	case BinNe:
		return b2i(x != y)
	case BinLt:
		return b2i(x < y)
	case BinLe:
		return b2i(x <= y)
	case BinGt:
		return b2i(x > y)
	case BinGe:
		return b2i(x >= y)
	}
	panic(fmt.Sprintf("ir: unknown binary op %d", b))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// FenceKind distinguishes the specific fences DFENCE inserts. All kinds
// drain the executing thread's store buffers; the kind records which
// reordering the fence was synthesized to prevent (paper §4.2: "we insert a
// more specific fence (store-load or store-store) depending on whether the
// statement at k is a load or a store").
type FenceKind uint8

const (
	// FenceFull is a full barrier (programmer-written fence()).
	FenceFull FenceKind = iota
	// FenceStoreStore orders a store before later stores.
	FenceStoreStore
	// FenceStoreLoad orders a store before later loads.
	FenceStoreLoad
)

func (k FenceKind) String() string {
	switch k {
	case FenceFull:
		return "fence"
	case FenceStoreStore:
		return "fence(st-st)"
	case FenceStoreLoad:
		return "fence(st-ld)"
	}
	return fmt.Sprintf("fencekind(%d)", uint8(k))
}

// ParseFenceKind inverts FenceKind.String — used when rebuilding a
// program's fences from a serialized run journal.
func ParseFenceKind(s string) (FenceKind, error) {
	switch s {
	case "fence":
		return FenceFull, nil
	case "fence(st-st)":
		return FenceStoreStore, nil
	case "fence(st-ld)":
		return FenceStoreLoad, nil
	}
	return 0, fmt.Errorf("ir: unknown fence kind %q", s)
}
