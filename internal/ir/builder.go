package ir

import "fmt"

// FuncBuilder incrementally constructs a Func, allocating registers and
// labels, and patching forward branches. It is used by the mini-C lowering
// pass and directly by tests.
//
// Forward branches: BrF/CondBrF emit a branch with an unresolved target and
// return a Patch; calling Patch.Here marks the target as the next emitted
// instruction. Backward branches: NextLabel reserves the label the next
// emitted instruction will carry, so loop headers can be branched to.
type FuncBuilder struct {
	prog     *Program
	fn       *Func
	errs     []error
	pending  []patch // patches resolving to the next emitted instruction
	reserved []Label // labels reserved by NextLabel, consumed FIFO by emit
	curLine  int32   // source line stamped onto emitted instructions
}

// SetLine sets the source line stamped onto subsequently emitted
// instructions (0 disables).
func (b *FuncBuilder) SetLine(line int) { b.curLine = int32(line) }

type patch struct {
	index int  // instruction index within fn.Code
	slot2 bool // patch Target2 instead of Target
}

// Patch is a forward-branch placeholder returned by BrF/CondBrF.
type Patch struct {
	b *FuncBuilder
	p patch
}

// Here resolves the patch to the label of the next emitted instruction.
func (p Patch) Here() {
	p.b.pending = append(p.b.pending, p.p)
}

// NewFuncBuilder starts a function with the given number of parameters.
// Parameter i is available in register Reg(i).
func NewFuncBuilder(p *Program, name string, numParams int) *FuncBuilder {
	return &FuncBuilder{
		prog: p,
		fn: &Func{
			Name:      name,
			NumParams: numParams,
			NumRegs:   numParams,
		},
	}
}

// MarkOperation flags the function as a specification-visible operation.
func (b *FuncBuilder) MarkOperation() *FuncBuilder {
	b.fn.IsOperation = true
	return b
}

// NewReg allocates a fresh virtual register.
func (b *FuncBuilder) NewReg() Reg {
	r := Reg(b.fn.NumRegs)
	b.fn.NumRegs++
	return r
}

// Param returns the register holding parameter i.
func (b *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= b.fn.NumParams {
		b.errs = append(b.errs, fmt.Errorf("ir: %s: parameter %d out of range", b.fn.Name, i))
		return 0
	}
	return Reg(i)
}

// NextLabel reserves and returns the label that the next emitted
// instruction will carry, for use as a backward-branch target.
func (b *FuncBuilder) NextLabel() Label {
	l := b.prog.NewLabel()
	b.reserved = append(b.reserved, l)
	return l
}

func (b *FuncBuilder) emit(in Instr) Label {
	in.Line = b.curLine
	if len(b.reserved) > 0 {
		in.Label = b.reserved[0]
		b.reserved = b.reserved[1:]
	} else {
		in.Label = b.prog.NewLabel()
	}
	for _, p := range b.pending {
		if p.slot2 {
			b.fn.Code[p.index].Target2 = in.Label
		} else {
			b.fn.Code[p.index].Target = in.Label
		}
	}
	b.pending = b.pending[:0]
	b.fn.Code = append(b.fn.Code, in)
	return in.Label
}

// Const emits r = imm and returns r.
func (b *FuncBuilder) Const(v int64) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpConst, Dst: r, Imm: v})
	return r
}

// GlobalAddr emits r = &name and returns r.
func (b *FuncBuilder) GlobalAddr(name string) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpGlobal, Dst: r, Func: name, Comment: "&" + name})
	return r
}

// Mov emits dst = src.
func (b *FuncBuilder) Mov(dst, src Reg) { b.emit(Instr{Op: OpMov, Dst: dst, A: src}) }

// BinOp emits r = a op b into a fresh register and returns it.
func (b *FuncBuilder) BinOp(op Bin, x, y Reg) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpBin, Bin: op, Dst: r, A: x, B: y})
	return r
}

// BinTo emits dst = a op b.
func (b *FuncBuilder) BinTo(dst Reg, op Bin, x, y Reg) {
	b.emit(Instr{Op: OpBin, Bin: op, Dst: dst, A: x, B: y})
}

// Not emits r = !a and returns r.
func (b *FuncBuilder) Not(x Reg) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpNot, Dst: r, A: x})
	return r
}

// Neg emits r = -a and returns r.
func (b *FuncBuilder) Neg(x Reg) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpNeg, Dst: r, A: x})
	return r
}

// Load emits r = [addr] and returns r and the load's label.
func (b *FuncBuilder) Load(addr Reg, comment string) (Reg, Label) {
	r := b.NewReg()
	l := b.emit(Instr{Op: OpLoad, Dst: r, A: addr, Comment: comment})
	return r, l
}

// LoadTo emits dst = [addr] and returns the load's label.
func (b *FuncBuilder) LoadTo(dst, addr Reg, comment string) Label {
	return b.emit(Instr{Op: OpLoad, Dst: dst, A: addr, Comment: comment})
}

// Store emits [addr] = val and returns the store's label.
func (b *FuncBuilder) Store(addr, val Reg, comment string) Label {
	return b.emit(Instr{Op: OpStore, A: addr, B: val, Comment: comment})
}

// Cas emits r = cas([addr], old, new) and returns r and the label.
func (b *FuncBuilder) Cas(addr, old, newv Reg, comment string) (Reg, Label) {
	r := b.NewReg()
	l := b.emit(Instr{Op: OpCas, Dst: r, A: addr, B: old, C: newv, Comment: comment})
	return r, l
}

// Fence emits a fence of the given kind and returns its label.
func (b *FuncBuilder) Fence(kind FenceKind) Label {
	return b.emit(Instr{Op: OpFence, Kind: kind})
}

// Call emits dst = call fn(args...). Pass NoReg as dst to drop the result.
func (b *FuncBuilder) Call(dst Reg, fn string, args ...Reg) Label {
	return b.emit(Instr{Op: OpCall, Dst: dst, Func: fn, Args: args})
}

// Fork emits tid = fork fn(args...) and returns tid.
func (b *FuncBuilder) Fork(fn string, args ...Reg) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpFork, Dst: r, Func: fn, Args: args})
	return r
}

// Join emits join(tid).
func (b *FuncBuilder) Join(tid Reg) { b.emit(Instr{Op: OpJoin, A: tid}) }

// Self emits r = self() and returns r.
func (b *FuncBuilder) Self() Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpSelf, Dst: r})
	return r
}

// Alloc emits r = alloc(size) and returns r.
func (b *FuncBuilder) Alloc(size Reg) Reg {
	r := b.NewReg()
	b.emit(Instr{Op: OpAlloc, Dst: r, A: size})
	return r
}

// Free emits free(addr).
func (b *FuncBuilder) Free(addr Reg) { b.emit(Instr{Op: OpFree, A: addr}) }

// Assert emits assert(cond, msg).
func (b *FuncBuilder) Assert(cond Reg, msg string) { b.emit(Instr{Op: OpAssert, A: cond, Msg: msg}) }

// Print emits print(x).
func (b *FuncBuilder) Print(x Reg) { b.emit(Instr{Op: OpPrint, A: x}) }

// Ret emits a void return.
func (b *FuncBuilder) Ret() { b.emit(Instr{Op: OpRet}) }

// RetVal emits return x.
func (b *FuncBuilder) RetVal(x Reg) { b.emit(Instr{Op: OpRet, A: x, HasVal: true}) }

// BrF emits an unconditional branch whose target is patched later.
func (b *FuncBuilder) BrF() Patch {
	b.emit(Instr{Op: OpBr, Target: NoLabel})
	return Patch{b: b, p: patch{index: len(b.fn.Code) - 1}}
}

// Br emits an unconditional branch to an existing label.
func (b *FuncBuilder) Br(target Label) { b.emit(Instr{Op: OpBr, Target: target}) }

// CondBr emits a conditional branch to existing labels.
func (b *FuncBuilder) CondBr(cond Reg, taken, fallthru Label) {
	b.emit(Instr{Op: OpCondBr, A: cond, Target: taken, Target2: fallthru})
}

// CondBrF emits a conditional branch with both targets patched later.
func (b *FuncBuilder) CondBrF(cond Reg) (taken, fallthru Patch) {
	b.emit(Instr{Op: OpCondBr, A: cond, Target: NoLabel, Target2: NoLabel})
	i := len(b.fn.Code) - 1
	return Patch{b: b, p: patch{index: i}}, Patch{b: b, p: patch{index: i, slot2: true}}
}

// Finish validates and registers the function with the program. If the body
// does not end in a terminator, a void return is appended.
func (b *FuncBuilder) Finish() (*Func, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.pending) > 0 || len(b.reserved) > 0 {
		// Pending patches or reserved labels bind to a trailing return.
		b.emit(Instr{Op: OpRet})
	} else if n := len(b.fn.Code); n == 0 || (b.fn.Code[n-1].Op != OpRet && b.fn.Code[n-1].Op != OpBr) {
		b.emit(Instr{Op: OpRet})
	}
	if err := b.prog.AddFunc(b.fn); err != nil {
		return nil, err
	}
	return b.fn, nil
}
