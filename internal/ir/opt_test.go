package ir

import (
	"testing"
)

// buildArith constructs main: r = (2+3)*4 via explicit consts; ret r.
func buildArith(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()
	b := NewFuncBuilder(p, "main", 0)
	two := b.Const(2)
	three := b.Const(3)
	five := b.BinOp(BinAdd, two, three)
	four := b.Const(4)
	r := b.BinOp(BinMul, five, four)
	b.RetVal(r)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOptimizeFoldsConstantArithmetic(t *testing.T) {
	p := buildArith(t)
	before := p.CountInstrs()
	removed := Optimize(p)
	if removed == 0 {
		t.Fatal("nothing optimized")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid after optimize: %v", err)
	}
	after := p.CountInstrs()
	if after >= before {
		t.Errorf("instructions %d -> %d, expected shrink", before, after)
	}
	// The result must now be a single constant feeding ret.
	f := p.Funcs["main"]
	if len(f.Code) != 2 {
		t.Fatalf("want [const; ret], got %d instrs:\n%s", len(f.Code), p.Disasm())
	}
	if f.Code[0].Op != OpConst || f.Code[0].Imm != 20 {
		t.Errorf("folded value = %v, want const 20", f.Code[0].String())
	}
}

func TestOptimizeFoldsConstantBranch(t *testing.T) {
	p := NewProgram()
	b := NewFuncBuilder(p, "main", 0)
	one := b.Const(1)
	taken, els := b.CondBrF(one)
	taken.Here()
	x := b.Const(10)
	b.RetVal(x)
	els.Here()
	y := b.Const(20)
	b.RetVal(y)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	Optimize(p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, in := range p.Funcs["main"].Code {
		if in.Op == OpCondBr {
			t.Error("constant conditional branch not folded")
		}
	}
}

func TestOptimizeKeepsSideEffects(t *testing.T) {
	p := NewProgram()
	if err := p.AddGlobal(&Global{Name: "g", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := NewFuncBuilder(p, "main", 0)
	ga := b.GlobalAddr("g")
	v := b.Const(5)
	b.Store(ga, v, "g")
	lv, _ := b.Load(ga, "g")
	b.Print(lv)
	b.Fence(FenceFull)
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	Optimize(p)
	ops := map[Op]int{}
	for _, in := range p.Funcs["main"].Code {
		ops[in.Op]++
	}
	for _, need := range []Op{OpStore, OpLoad, OpPrint, OpFence} {
		if ops[need] == 0 {
			t.Errorf("%v eliminated — it has side effects", need)
		}
	}
}

func TestOptimizeDeadCodeRetargetsBranches(t *testing.T) {
	// A loop whose head is a dead Mov: the back edge must retarget.
	p := NewProgram()
	if err := p.AddGlobal(&Global{Name: "g", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := NewFuncBuilder(p, "main", 0)
	ga := b.GlobalAddr("g")
	i := b.Const(0)
	ten := b.Const(10)
	one := b.Const(1)
	head := b.NextLabel()
	dead := b.NewReg()
	b.Mov(dead, one) // dead: never read
	c := b.BinOp(BinLt, i, ten)
	body, exit := b.CondBrF(c)
	body.Here()
	b.Store(ga, i, "g")
	b.BinTo(i, BinAdd, i, one)
	b.Br(head)
	exit.Here()
	fin, _ := b.Load(ga, "g")
	b.RetVal(fin)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if removed := Optimize(p); removed == 0 {
		t.Fatal("dead mov not removed")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("branches broken: %v", err)
	}
	for _, in := range p.Funcs["main"].Code {
		if in.Op == OpMov {
			t.Error("dead mov survived")
		}
	}
}

func TestOptimizePreservesLabelsOfSharedAccesses(t *testing.T) {
	p := NewProgram()
	if err := p.AddGlobal(&Global{Name: "g", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := NewFuncBuilder(p, "main", 0)
	ga := b.GlobalAddr("g")
	v := b.Const(5)
	st := b.Store(ga, v, "g")
	ld, lLbl := b.Load(ga, "g")
	b.RetVal(ld)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	Optimize(p)
	if p.InstrAt(st) == nil || p.InstrAt(st).Op != OpStore {
		t.Error("store label lost")
	}
	if p.InstrAt(lLbl) == nil || p.InstrAt(lLbl).Op != OpLoad {
		t.Error("load label lost")
	}
}

func TestOptimizeCopyPropagation(t *testing.T) {
	p := NewProgram()
	if err := p.AddGlobal(&Global{Name: "g", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := NewFuncBuilder(p, "main", 0)
	ga := b.GlobalAddr("g")
	v := b.Const(9)
	cp := b.NewReg()
	b.Mov(cp, v) // copy
	b.Store(ga, cp, "g")
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	Optimize(p)
	f := p.Funcs["main"]
	movs, consts := 0, 0
	for _, in := range f.Code {
		switch in.Op {
		case OpMov:
			movs++
		case OpConst:
			consts++
		}
	}
	if movs != 0 {
		t.Error("copy not propagated away")
	}
	if consts != 1 {
		t.Errorf("%d consts remain, want 1 (the dead duplicate removed)", consts)
	}
}
