package ir

import "testing"

// FenceKinds in op.go has no exported enumeration; keep this list in sync
// with the FenceKind constants. The round-trip property below is what the
// run-journal deserializer depends on: every kind the synthesizer can emit
// must parse back to itself.
var allFenceKinds = []FenceKind{FenceFull, FenceStoreStore, FenceStoreLoad}

func TestParseFenceKindRoundTrip(t *testing.T) {
	for _, k := range allFenceKinds {
		got, err := ParseFenceKind(k.String())
		if err != nil {
			t.Fatalf("ParseFenceKind(%q) failed: %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseFenceKind(%v.String()) = %v, want %v", k, got, k)
		}
	}
	if _, err := ParseFenceKind("fence(ld-ld)"); err == nil {
		t.Error("ParseFenceKind accepted an undefined kind")
	}
}
