package ir

import "testing"

func TestParseFenceKindRoundTrip(t *testing.T) {
	// Ranging over the exported enumeration keeps this in sync by
	// construction: a kind added to FenceKinds is round-trip tested without
	// touching this file. The property is what the run-journal deserializer
	// depends on: every kind the synthesizer can emit must parse back to
	// itself.
	for _, k := range FenceKinds() {
		got, err := ParseFenceKind(k.String())
		if err != nil {
			t.Fatalf("ParseFenceKind(%q) failed: %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseFenceKind(%v.String()) = %v, want %v", k, got, k)
		}
	}
	if _, err := ParseFenceKind("fence(ld-ld-ld)"); err == nil {
		t.Error("ParseFenceKind accepted an undefined kind")
	}
	if _, err := ParseFenceKind("membar #Sync"); err == nil {
		t.Error("ParseFenceKind accepted an undefined kind")
	}
}

func TestFenceKindStringsDistinct(t *testing.T) {
	seen := make(map[string]FenceKind)
	for _, k := range FenceKinds() {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("FenceKind %d and %d share the string %q", prev, k, s)
		}
		seen[s] = k
	}
}

func TestFenceKindCoverage(t *testing.T) {
	// Declared coverage must be a subset of the operational guarantee for
	// every kind: a fence may be stronger at runtime than it claims
	// statically, never weaker — the soundness direction the static
	// synthesizer relies on.
	for _, k := range FenceKinds() {
		covers := false
		for _, a := range AccessClasses() {
			for _, b := range AccessClasses() {
				if k.Orders(a, b) {
					covers = true
					if !k.OrdersAtRuntime(a, b) {
						t.Errorf("%v: Orders(%v,%v) declared but not guaranteed at runtime", k, a, b)
					}
				}
			}
		}
		if !covers {
			t.Errorf("%v declares no coverage at all", k)
		}
	}
	// FenceFull dominates every other kind in both tables.
	for _, k := range FenceKinds() {
		for _, a := range AccessClasses() {
			for _, b := range AccessClasses() {
				if k.Orders(a, b) && !FenceFull.Orders(a, b) {
					t.Errorf("FenceFull does not dominate %v on (%v,%v)", k, a, b)
				}
			}
		}
	}
}
