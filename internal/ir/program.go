package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Global describes one global shared variable or array. Globals are the
// primary shared state of the benchmarks (e.g. H, T and items[] of a
// work-stealing queue). Each occupies Size consecutive words and forms one
// memory-safety unit.
type Global struct {
	Name string
	Size int64   // in words; >= 1
	Init []int64 // optional initial values (len <= Size); rest zero
	Addr int64   // assigned by Program.Link
}

// Func is one function: a flat sequence of labelled instructions.
// Registers 0..NumParams-1 receive the arguments.
type Func struct {
	Name      string
	NumParams int
	NumRegs   int
	Code      []Instr

	// IsOperation marks functions whose calls and returns form the
	// observable history checked against the sequential specification
	// (e.g. put/take/steal). The interpreter records an invoke event when
	// such a function is entered and a response event when it returns.
	IsOperation bool

	labelIdx map[Label]int // rebuilt by reindex
}

// reindex rebuilds the label-to-position map after any code mutation.
func (f *Func) reindex() {
	if f.labelIdx == nil {
		f.labelIdx = make(map[Label]int, len(f.Code))
	} else {
		clear(f.labelIdx)
	}
	for i := range f.Code {
		f.labelIdx[f.Code[i].Label] = i
	}
}

// Rebuild refreshes the label index after external mutation of Code
// (e.g. an optimization pass removing instructions).
func (f *Func) Rebuild() { f.reindex() }

// IndexOf returns the position of the instruction with the given label, or
// -1 if the label is not in this function.
func (f *Func) IndexOf(l Label) int {
	if idx, ok := f.labelIdx[l]; ok {
		return idx
	}
	return -1
}

// Program is a complete linked IR program: globals, functions, and an entry
// point. The zero Program is empty; use NewProgram or a Builder.
type Program struct {
	Globals []*Global
	Funcs   map[string]*Func
	Entry   string // entry function name, normally "main"

	nextLabel Label
	globalsSz int64 // total words of global segment, set by Link
	byName    map[string]*Global
}

// NewProgram returns an empty program with entry point "main".
func NewProgram() *Program {
	return &Program{
		Funcs:  make(map[string]*Func),
		Entry:  "main",
		byName: make(map[string]*Global),
	}
}

// NewLabel allocates a fresh instruction label.
func (p *Program) NewLabel() Label {
	l := p.nextLabel
	p.nextLabel++
	return l
}

// AddGlobal registers a global variable. Call Link afterwards to assign
// addresses.
func (p *Program) AddGlobal(g *Global) error {
	if g.Size < 1 {
		return fmt.Errorf("ir: global %s has non-positive size %d", g.Name, g.Size)
	}
	if _, dup := p.byName[g.Name]; dup {
		return fmt.Errorf("ir: duplicate global %s", g.Name)
	}
	p.Globals = append(p.Globals, g)
	p.byName[g.Name] = g
	return nil
}

// Global returns the named global, or nil.
func (p *Program) Global(name string) *Global {
	return p.byName[name]
}

// AddFunc registers a function.
func (p *Program) AddFunc(f *Func) error {
	if _, dup := p.Funcs[f.Name]; dup {
		return fmt.Errorf("ir: duplicate function %s", f.Name)
	}
	f.reindex()
	p.Funcs[f.Name] = f
	return nil
}

// GlobalsSize returns the number of words occupied by the global segment
// (valid after Link).
func (p *Program) GlobalsSize() int64 { return p.globalsSz }

// Link assigns global addresses (address 0 is reserved as NULL), resolves
// OpGlobal immediates, and validates the program.
func (p *Program) Link() error {
	addr := int64(1) // 0 is NULL
	for _, g := range p.Globals {
		g.Addr = addr
		addr += g.Size
	}
	p.globalsSz = addr
	for _, f := range p.Funcs {
		for i := range f.Code {
			in := &f.Code[i]
			if in.Op == OpGlobal {
				g := p.byName[in.Func]
				if g == nil {
					return fmt.Errorf("ir: %s: L%d references unknown global %s", f.Name, in.Label, in.Func)
				}
				in.Imm = g.Addr
			}
		}
		f.reindex()
	}
	return p.Validate()
}

// Validate checks structural well-formedness: labels unique program-wide,
// branch targets resolvable, register indices within bounds, callees
// defined, entry present.
func (p *Program) Validate() error {
	if _, ok := p.Funcs[p.Entry]; !ok {
		return fmt.Errorf("ir: entry function %q not defined", p.Entry)
	}
	seen := make(map[Label]string)
	for _, f := range p.Funcs {
		if f.NumParams > f.NumRegs {
			return fmt.Errorf("ir: %s: NumParams %d exceeds NumRegs %d", f.Name, f.NumParams, f.NumRegs)
		}
		if len(f.Code) == 0 {
			return fmt.Errorf("ir: %s: empty body", f.Name)
		}
		for i := range f.Code {
			in := &f.Code[i]
			if in.Op == OpInvalid {
				return fmt.Errorf("ir: %s: instruction %d is invalid", f.Name, i)
			}
			if prev, dup := seen[in.Label]; dup {
				return fmt.Errorf("ir: label L%d duplicated in %s and %s", in.Label, prev, f.Name)
			}
			seen[in.Label] = f.Name
			if err := p.validateInstr(f, in); err != nil {
				return err
			}
		}
		// Branch targets must stay within the function.
		for i := range f.Code {
			in := &f.Code[i]
			var targets []Label
			switch in.Op {
			case OpBr:
				targets = []Label{in.Target}
			case OpCondBr:
				targets = []Label{in.Target, in.Target2}
			}
			for _, t := range targets {
				if t == NoLabel || f.IndexOf(t) < 0 {
					return fmt.Errorf("ir: %s: L%d branches to L%d outside the function", f.Name, in.Label, t)
				}
			}
		}
		last := &f.Code[len(f.Code)-1]
		if last.Op != OpRet && last.Op != OpBr {
			return fmt.Errorf("ir: %s: function does not end in ret or br", f.Name)
		}
	}
	return nil
}

func (p *Program) validateInstr(f *Func, in *Instr) error {
	ck := func(r Reg, what string) error {
		if r == NoReg {
			return fmt.Errorf("ir: %s: L%d: missing %s register", f.Name, in.Label, what)
		}
		if int(r) < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("ir: %s: L%d: %s register r%d out of range [0,%d)", f.Name, in.Label, what, r, f.NumRegs)
		}
		return nil
	}
	need := func(rs ...Reg) error {
		names := []string{"dst", "a", "b", "c"}
		for i, r := range rs {
			if r == NoReg {
				continue
			}
			if err := ck(r, names[i%len(names)]); err != nil {
				return err
			}
		}
		return nil
	}
	switch in.Op {
	case OpConst, OpGlobal, OpSelf:
		return ck(in.Dst, "dst")
	case OpMov, OpNot, OpNeg:
		if err := ck(in.Dst, "dst"); err != nil {
			return err
		}
		return ck(in.A, "src")
	case OpBin:
		if err := ck(in.Dst, "dst"); err != nil {
			return err
		}
		if err := ck(in.A, "a"); err != nil {
			return err
		}
		return ck(in.B, "b")
	case OpLoad:
		if err := ck(in.Dst, "dst"); err != nil {
			return err
		}
		return ck(in.A, "addr")
	case OpStore:
		if err := ck(in.A, "addr"); err != nil {
			return err
		}
		return ck(in.B, "val")
	case OpCas:
		if err := ck(in.Dst, "dst"); err != nil {
			return err
		}
		if err := ck(in.A, "addr"); err != nil {
			return err
		}
		if err := ck(in.B, "old"); err != nil {
			return err
		}
		return ck(in.C, "new")
	case OpFence:
		return nil
	case OpBr:
		if in.Target == NoLabel {
			return fmt.Errorf("ir: %s: L%d: br without target", f.Name, in.Label)
		}
		return nil
	case OpCondBr:
		if in.Target == NoLabel || in.Target2 == NoLabel {
			return fmt.Errorf("ir: %s: L%d: condbr without both targets", f.Name, in.Label)
		}
		return ck(in.A, "cond")
	case OpCall, OpFork:
		callee, ok := p.Funcs[in.Func]
		if !ok {
			return fmt.Errorf("ir: %s: L%d: call of undefined function %s", f.Name, in.Label, in.Func)
		}
		if len(in.Args) != callee.NumParams {
			return fmt.Errorf("ir: %s: L%d: %s expects %d args, got %d", f.Name, in.Label, in.Func, callee.NumParams, len(in.Args))
		}
		if err := need(in.Args...); err != nil {
			return err
		}
		if in.Op == OpFork {
			return ck(in.Dst, "dst")
		}
		if in.Dst != NoReg {
			return ck(in.Dst, "dst")
		}
		return nil
	case OpRet:
		if in.HasVal {
			return ck(in.A, "ret")
		}
		return nil
	case OpJoin, OpFree, OpPrint:
		return ck(in.A, "a")
	case OpAssert:
		return ck(in.A, "cond")
	case OpAlloc:
		if err := ck(in.Dst, "dst"); err != nil {
			return err
		}
		return ck(in.A, "size")
	}
	return fmt.Errorf("ir: %s: L%d: unknown opcode %v", f.Name, in.Label, in.Op)
}

// FuncOf returns the function containing the given label, or nil.
func (p *Program) FuncOf(l Label) *Func {
	for _, f := range p.Funcs {
		if f.IndexOf(l) >= 0 {
			return f
		}
	}
	return nil
}

// InstrAt returns the instruction with the given label, or nil.
func (p *Program) InstrAt(l Label) *Instr {
	f := p.FuncOf(l)
	if f == nil {
		return nil
	}
	return &f.Code[f.IndexOf(l)]
}

// InsertFenceAfter inserts a fence of the given kind immediately after the
// instruction labelled l (paper Algorithm 2, line 5). The fence receives a
// fresh label, which is returned. Branch targets are unaffected: any branch
// to the successor of l still skips the fence, which is correct because the
// ordering predicate only constrains the program-order path through l.
func (p *Program) InsertFenceAfter(l Label, kind FenceKind) (Label, error) {
	f := p.FuncOf(l)
	if f == nil {
		return NoLabel, fmt.Errorf("ir: InsertFenceAfter: label L%d not found", l)
	}
	idx := f.IndexOf(l)
	nl := p.NewLabel()
	fence := Instr{Label: nl, Op: OpFence, Kind: kind, Comment: fmt.Sprintf("synthesized after L%d", l)}
	f.Code = append(f.Code, Instr{})
	copy(f.Code[idx+2:], f.Code[idx+1:])
	f.Code[idx+1] = fence
	f.reindex()
	return nl, nil
}

// InsertDummyCASAfter inserts, immediately after the instruction labelled
// l, the sequence
//
//	r1 = &global; r2 = 0; r3 = 0; r4 = cas [r1], r2, r3
//
// realizing the paper's §4.2 "Enforce with CAS" alternative: on TSO a CAS
// to a dummy location (whose result and operands are never used) drains
// the store buffer exactly like a fence. The named global must exist.
// Returns the label of the CAS instruction.
func (p *Program) InsertDummyCASAfter(l Label, global string) (Label, error) {
	f := p.FuncOf(l)
	if f == nil {
		return NoLabel, fmt.Errorf("ir: InsertDummyCASAfter: label L%d not found", l)
	}
	g := p.Global(global)
	if g == nil {
		return NoLabel, fmt.Errorf("ir: InsertDummyCASAfter: unknown global %q", global)
	}
	idx := f.IndexOf(l)
	r1 := Reg(f.NumRegs)
	r2 := Reg(f.NumRegs + 1)
	r3 := Reg(f.NumRegs + 2)
	r4 := Reg(f.NumRegs + 3)
	f.NumRegs += 4
	casLabel := p.NewLabel()
	seq := []Instr{
		{Label: p.NewLabel(), Op: OpGlobal, Dst: r1, Func: global, Imm: g.Addr, Comment: "&" + global},
		{Label: p.NewLabel(), Op: OpConst, Dst: r2, Imm: 0},
		{Label: p.NewLabel(), Op: OpConst, Dst: r3, Imm: 0},
		{Label: casLabel, Op: OpCas, Dst: r4, A: r1, B: r2, C: r3, Comment: fmt.Sprintf("dummy cas after L%d", l)},
	}
	f.Code = append(f.Code, make([]Instr, len(seq))...)
	copy(f.Code[idx+1+len(seq):], f.Code[idx+1:len(f.Code)-len(seq)])
	copy(f.Code[idx+1:], seq)
	f.reindex()
	return casLabel, nil
}

// CountStores returns the number of shared store instructions — the
// paper's "insertion points" metric (Table 3 last column: "the total number
// of store instructions in the LLVM bytecode").
func (p *Program) CountStores() int {
	n := 0
	for _, f := range p.Funcs {
		for i := range f.Code {
			if f.Code[i].IsSharedStore() || f.Code[i].Op == OpCas {
				n++
			}
		}
	}
	return n
}

// CountInstrs returns the total instruction count (the "bytecode LOC"
// analogue).
func (p *Program) CountInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Code)
	}
	return n
}

// Fences returns the labels of all fence instructions, sorted.
func (p *Program) Fences() []Label {
	var out []Label
	for _, f := range p.Funcs {
		for i := range f.Code {
			if f.Code[i].Op == OpFence {
				out = append(out, f.Code[i].Label)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the program. Synthesis mutates its working
// copy (inserting fences) while callers keep the original.
func (p *Program) Clone() *Program {
	q := NewProgram()
	q.Entry = p.Entry
	q.nextLabel = p.nextLabel
	q.globalsSz = p.globalsSz
	for _, g := range p.Globals {
		ng := &Global{Name: g.Name, Size: g.Size, Addr: g.Addr}
		ng.Init = append([]int64(nil), g.Init...)
		q.Globals = append(q.Globals, ng)
		q.byName[ng.Name] = ng
	}
	for name, f := range p.Funcs {
		nf := &Func{
			Name:        f.Name,
			NumParams:   f.NumParams,
			NumRegs:     f.NumRegs,
			IsOperation: f.IsOperation,
			Code:        make([]Instr, len(f.Code)),
		}
		copy(nf.Code, f.Code)
		for i := range nf.Code {
			nf.Code[i].Args = append([]Reg(nil), nf.Code[i].Args...)
		}
		nf.reindex()
		q.Funcs[name] = nf
	}
	return q
}

// FuncNames returns the function names in sorted order (for deterministic
// iteration).
func (p *Program) FuncNames() []string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Disasm renders the whole program as text.
func (p *Program) Disasm() string {
	var b strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "global %s[%d] @%d", g.Name, g.Size, g.Addr)
		if len(g.Init) > 0 {
			fmt.Fprintf(&b, " = %v", g.Init)
		}
		b.WriteByte('\n')
	}
	for _, name := range p.FuncNames() {
		f := p.Funcs[name]
		kind := "func"
		if f.IsOperation {
			kind = "operation"
		}
		fmt.Fprintf(&b, "\n%s %s (params=%d regs=%d):\n", kind, name, f.NumParams, f.NumRegs)
		for i := range f.Code {
			fmt.Fprintf(&b, "  %s\n", f.Code[i].String())
		}
	}
	return b.String()
}
