// Package telemetry is DFENCE's observability layer: a zero-dependency
// metrics registry wired into the synthesis hot paths, a structured JSONL
// run journal that records the story of a run (rounds, violations, repair
// disjunctions, solver results, fence changes), a violation-witness
// explainer that renders a schedule as a human-readable interleaving
// report, and an optional introspection HTTP server.
//
// Everything is opt-in and nil-safe: a nil *Metrics or nil Sink costs the
// instrumented code one branch per call site, so a run with telemetry
// disabled is benchmark-neutral (the acceptance gate of PR 5). Counters
// and histograms are sharded per worker — the batch engine's worker index
// (see the worker-ownership invariant in sched/batch.go) selects the
// shard, so hot-path updates never contend — and shards are merged only
// on read, which keeps exported snapshots deterministic: the merge is a
// sum, so the same observations produce the same snapshot regardless of
// which worker recorded them.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// pad is the cache-line padding appended to each shard so two workers'
// counters never share a line (the usual false-sharing mitigation).
type pad [56]byte

// shard is one worker's slot of a Counter.
type shard struct {
	v atomic.Int64
	_ pad
}

// Counter is a monotonically increasing metric sharded per worker. The
// nil Counter is a valid no-op, which is what makes instrumentation sites
// branch-cheap when telemetry is disabled.
type Counter struct {
	name, help string
	shards     []shard
}

// Add increments the counter by n on the given worker's shard. worker
// indexes past the shard count wrap around (correctness is unaffected;
// only contention changes). Safe on a nil Counter.
func (c *Counter) Add(worker int, n int64) {
	if c == nil || n == 0 {
		return
	}
	if worker < 0 {
		worker = 0
	}
	c.shards[worker%len(c.shards)].v.Add(n)
}

// Inc is Add(worker, 1).
func (c *Counter) Inc(worker int) { c.Add(worker, 1) }

// Value merges the shards and returns the counter's current total.
// Returns 0 on a nil Counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a settable instantaneous value (single slot: gauges are
// updated from the coordinating goroutine, not the workers). The nil
// Gauge is a valid no-op.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores the gauge's value. Safe on a nil Gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the gauge's current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histShard is one worker's slot of a Histogram: one bucket counter per
// upper bound plus the overflow bucket, and the count/sum pair.
type histShard struct {
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Int64
	_       pad
}

// Histogram is a bounded-bucket histogram of integer observations
// (steps, microseconds, ...), sharded per worker. Bucket bounds are fixed
// at registration, so recording is a binary search plus two atomic adds —
// no allocation, no lock. Quantiles (p50/p95/p99) are estimated from the
// merged buckets on read; the estimate is deterministic for a given
// multiset of observations because merging is a per-bucket sum.
type Histogram struct {
	name, help string
	bounds     []int64 // strictly increasing upper bounds (inclusive)
	shards     []histShard
}

// Observe records one value. Safe on a nil Histogram.
func (h *Histogram) Observe(worker int, v int64) {
	if h == nil {
		return
	}
	if worker < 0 {
		worker = 0
	}
	s := &h.shards[worker%len(h.shards)]
	// Binary search for the first bound >= v; misses land in +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.buckets[lo].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// merge sums the shards into one bucket slice plus count and sum.
func (h *Histogram) merge() (buckets []int64, count, sum int64) {
	buckets = make([]int64, len(h.bounds)+1)
	for i := range h.shards {
		s := &h.shards[i]
		for b := range s.buckets {
			buckets[b] += s.buckets[b].Load()
		}
		count += s.count.Load()
		sum += s.sum.Load()
	}
	return buckets, count, sum
}

// quantile estimates the q-quantile (0 < q <= 1) from merged buckets: the
// upper bound of the first bucket whose cumulative count reaches
// ceil(q*count). The +Inf bucket reports the largest finite bound (the
// estimate is then a lower bound). Deterministic given the same merged
// buckets.
func quantile(bounds []int64, buckets []int64, count int64, q float64) int64 {
	if count == 0 {
		return 0
	}
	target := int64(q * float64(count))
	if float64(target) < q*float64(count) {
		target++
	}
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, b := range buckets {
		cum += b
		if cum >= target {
			if i < len(bounds) {
				return bounds[i]
			}
			break
		}
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge in a Snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnap is one histogram in a Snapshot: merged buckets plus the
// p50/p95/p99 estimates.
type HistogramSnap struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"` // len(Bounds)+1; last is +Inf
	P50     int64   `json:"p50"`
	P95     int64   `json:"p95"`
	P99     int64   `json:"p99"`
}

// Snapshot is a point-in-time, merged view of a Registry, ordered by
// metric name — the deterministic export the /runz endpoint and the merge
// tests consume.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Registry owns a set of named metrics. Registration (NewCounter, ...) is
// not in any hot path and takes a lock; recording on the returned handles
// is lock-free. The zero worker count is clamped to 1.
type Registry struct {
	workers int

	mu       sync.Mutex
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	names    map[string]bool
}

// NewRegistry returns a registry whose counters and histograms carry one
// shard per worker.
func NewRegistry(workers int) *Registry {
	if workers < 1 {
		workers = 1
	}
	return &Registry{workers: workers, names: map[string]bool{}}
}

func (r *Registry) claim(name string) {
	if r.names[name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.names[name] = true
}

// NewCounter registers a counter. Panics on duplicate names.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	c := &Counter{name: name, help: help, shards: make([]shard, r.workers)}
	r.counters = append(r.counters, c)
	return c
}

// NewGauge registers a gauge. Panics on duplicate names.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	g := &Gauge{name: name, help: help}
	r.gauges = append(r.gauges, g)
	return g
}

// NewHistogram registers a histogram with the given inclusive upper
// bounds (must be strictly increasing; a +Inf bucket is implicit).
// Panics on duplicate names or unsorted bounds.
func (r *Registry) NewHistogram(name, help string, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly increasing", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name)
	h := &Histogram{name: name, help: help, bounds: append([]int64(nil), bounds...)}
	h.shards = make([]histShard, r.workers)
	for i := range h.shards {
		h.shards[i].buckets = make([]atomic.Int64, len(bounds)+1)
	}
	r.hists = append(r.hists, h)
	return h
}

// Snapshot merges every metric's shards and returns the result sorted by
// name. Concurrent recording during a snapshot is safe; the snapshot is
// then a consistent-enough point-in-time view (each metric is summed
// atomically per shard).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()

	var s Snapshot
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		buckets, count, sum := h.merge()
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name:    h.name,
			Count:   count,
			Sum:     sum,
			Bounds:  append([]int64(nil), h.bounds...),
			Buckets: buckets,
			P50:     quantile(h.bounds, buckets, count, 0.50),
			P95:     quantile(h.bounds, buckets, count, 0.95),
			P99:     quantile(h.bounds, buckets, count, 0.99),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteOpenMetrics renders the registry in OpenMetrics text format
// (counters, gauges, and histograms with cumulative buckets), ending with
// the required "# EOF" line. Metric names are emitted as registered;
// counters get the "_total" suffix the format mandates.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	help := func(name, kind, h string) {
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
		if h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, h)
		}
	}
	helpFor := func(kind string, name string) string {
		r.mu.Lock()
		defer r.mu.Unlock()
		switch kind {
		case "counter":
			for _, c := range r.counters {
				if c.name == name {
					return c.help
				}
			}
		case "gauge":
			for _, g := range r.gauges {
				if g.name == name {
					return g.help
				}
			}
		default:
			for _, h := range r.hists {
				if h.name == name {
					return h.help
				}
			}
		}
		return ""
	}
	for _, c := range snap.Counters {
		help(c.Name, "counter", helpFor("counter", c.Name))
		fmt.Fprintf(&b, "%s_total %d\n", c.Name, c.Value)
	}
	for _, g := range snap.Gauges {
		help(g.Name, "gauge", helpFor("gauge", g.Name))
		fmt.Fprintf(&b, "%s %d\n", g.Name, g.Value)
	}
	for _, h := range snap.Histograms {
		help(h.Name, "histogram", helpFor("histogram", h.Name))
		var cum int64
		for i, bk := range h.Buckets {
			cum += bk
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprint(h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", h.Name, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %d\n", h.Name, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", h.Name, h.Count)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Metrics is the pre-registered handle bundle the synthesis loop records
// into — field access instead of name lookup keeps the hot path flat.
// Obtain one with NewMetrics; a nil *Metrics (telemetry disabled) is
// handled by View, whose zero value makes every handle a nil no-op.
type Metrics struct {
	Registry *Registry

	// Per-execution outcome counters (core's reduce path).
	Executions   *Counter
	Violations   *Counter
	Clean        *Counter
	Inconclusive *Counter
	Timeouts     *Counter // wall-clock cut executions (subset of Inconclusive)
	Panics       *Counter // recovered interpreter/observer panics
	Skipped      *Counter // executions never started (deadline/round cut)

	// Execution-cache counters (the verdict memo + fence-touch transfer).
	CacheHits   *Counter
	CacheMisses *Counter

	// Round / repair-loop counters.
	Rounds           *Counter
	CurrentRound     *Gauge
	Predicates       *Counter // distinct predicates entering φ per round
	PrunedPredicates *Counter // predicates discarded by the static prune

	// Solver counters (sat.Stats per minimal-model enumeration).
	SolverModels       *Counter
	SolverConflicts    *Counter
	SolverDecisions    *Counter
	SolverPropagations *Counter
	SolverRestarts     *Counter
	SolverClauses      *Counter

	// Fence lifecycle.
	FencesInserted *Counter
	FencesRemoved  *Counter // validation + merge removals

	// Distributions.
	ExecSteps    *Histogram // interpreter steps per execution
	RoundWallUS  *Histogram // round wall time, microseconds
	SolverWallUS *Histogram // solver enumeration wall time, microseconds
}

// NewMetrics registers the standard DFENCE metric set on reg.
func NewMetrics(reg *Registry) *Metrics {
	stepBounds := []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}
	wallBounds := []int64{100, 500, 1000, 5000, 10000, 50000, 100000, 500000, 1000000, 5000000, 10000000}
	return &Metrics{
		Registry:           reg,
		Executions:         reg.NewCounter("dfence_executions", "program executions performed"),
		Violations:         reg.NewCounter("dfence_violations", "executions that violated the specification"),
		Clean:              reg.NewCounter("dfence_clean_executions", "executions that satisfied the specification"),
		Inconclusive:       reg.NewCounter("dfence_inconclusive_executions", "executions cut off before a verdict"),
		Timeouts:           reg.NewCounter("dfence_exec_timeouts", "executions cut by a wall-clock budget"),
		Panics:             reg.NewCounter("dfence_exec_panics", "recovered interpreter/observer panics"),
		Skipped:            reg.NewCounter("dfence_skipped_executions", "executions never started (round cut off)"),
		CacheHits:          reg.NewCounter("dfence_exec_cache_hits", "verdicts answered by the execution caches"),
		CacheMisses:        reg.NewCounter("dfence_exec_cache_misses", "verdicts computed afresh"),
		Rounds:             reg.NewCounter("dfence_rounds", "repair rounds completed"),
		CurrentRound:       reg.NewGauge("dfence_current_round", "repair round in progress (1-based)"),
		Predicates:         reg.NewCounter("dfence_predicates", "distinct ordering predicates entering the repair formula"),
		PrunedPredicates:   reg.NewCounter("dfence_pruned_predicates", "predicates discarded by the static delay-set prune"),
		SolverModels:       reg.NewCounter("dfence_solver_models", "minimal models enumerated by the SAT solver"),
		SolverConflicts:    reg.NewCounter("dfence_solver_conflicts", "CDCL conflicts during minimal-model enumeration"),
		SolverDecisions:    reg.NewCounter("dfence_solver_decisions", "CDCL branching decisions during minimal-model enumeration"),
		SolverPropagations: reg.NewCounter("dfence_solver_propagations", "literals unit-propagated during minimal-model enumeration"),
		SolverRestarts:     reg.NewCounter("dfence_solver_restarts", "CDCL search restarts during minimal-model enumeration"),
		SolverClauses:      reg.NewCounter("dfence_solver_clauses", "clauses handed to the SAT solver"),
		FencesInserted:     reg.NewCounter("dfence_fences_inserted", "fences enforced across rounds"),
		FencesRemoved:      reg.NewCounter("dfence_fences_removed", "fences removed as redundant (validation + merge)"),
		ExecSteps:          reg.NewHistogram("dfence_exec_steps", "interpreter transitions per execution", stepBounds),
		RoundWallUS:        reg.NewHistogram("dfence_round_wall_us", "round wall time in microseconds", wallBounds),
		SolverWallUS:       reg.NewHistogram("dfence_solver_wall_us", "solver enumeration wall time in microseconds", wallBounds),
	}
}

// View dereferences the bundle nil-safely: the zero Metrics value has nil
// handles everywhere, and every handle method is a no-op on nil — so hot
// paths copy the view once and record unconditionally.
func (m *Metrics) View() Metrics {
	if m == nil {
		return Metrics{}
	}
	return *m
}
