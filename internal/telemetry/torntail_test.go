package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tornFixture builds a journal of well-formed events and returns its
// serialized bytes plus the event count.
func tornFixture(t *testing.T) (string, int) {
	t.Helper()
	var b strings.Builder
	j := NewJournal(&b)
	events := allEvents()
	for _, e := range events {
		j.Emit(e)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return b.String(), len(events)
}

// TestTornTailEveryOffset: byte-truncate the journal at every offset of
// the final event's line. Strict mode must reject every torn prefix;
// AllowTornTail must return every complete event before the tear and flag
// it — except at the full line length, where nothing is torn. This is the
// regression net for the crash-torn journals dfenced resumes from.
func TestTornTailEveryOffset(t *testing.T) {
	full, n := tornFixture(t)
	// Offset of the last line's first byte (the journal ends "...}\n").
	body := strings.TrimSuffix(full, "\n")
	lastStart := strings.LastIndexByte(body, '\n') + 1
	lastLen := len(full) - lastStart // includes the trailing newline

	for cut := 0; cut <= lastLen; cut++ {
		torn := full[:lastStart+cut]
		wholeLast := cut >= lastLen-1 // the full line, with or without its newline
		// Strict: any genuinely torn tail is an error.
		_, serr := ReadJournal(strings.NewReader(torn))
		if wholeLast || cut == 0 {
			if serr != nil {
				t.Fatalf("cut=%d: strict rejected a journal with no torn line: %v", cut, serr)
			}
		} else if serr == nil {
			t.Fatalf("cut=%d: strict accepted a torn journal", cut)
		}
		// Lenient: every complete event survives, the torn line is dropped.
		events, wasTorn, lerr := ReadJournalOptions(strings.NewReader(torn), ReadOptions{AllowTornTail: true})
		if lerr != nil {
			t.Fatalf("cut=%d: lenient read failed: %v", cut, lerr)
		}
		want := n - 1
		if wholeLast {
			want = n
		}
		if len(events) != want {
			t.Fatalf("cut=%d: lenient read %d events, want %d", cut, len(events), want)
		}
		if wantTorn := !wholeLast && cut > 0; wasTorn != wantTorn {
			t.Fatalf("cut=%d: torn=%v, want %v", cut, wasTorn, wantTorn)
		}
	}
}

// TestTornTailMiddleLineStillRejected: leniency covers only the final
// line. A mangled line with complete lines after it is corruption, not a
// tear, and must fail in both modes.
func TestTornTailMiddleLineStillRejected(t *testing.T) {
	full, _ := tornFixture(t)
	lines := strings.SplitAfter(strings.TrimSuffix(full, "\n"), "\n")
	mangled := strings.Join(append([]string{lines[0][:len(lines[0])/2] + "\n"}, lines[1:]...), "")
	if _, _, err := ReadJournalOptions(strings.NewReader(mangled), ReadOptions{AllowTornTail: true}); err == nil {
		t.Fatal("lenient mode accepted a mangled non-final line")
	}
}

// TestTornTailDriftStillRejected: a well-formed final line with schema
// drift (unknown kind, unknown field, version mismatch) is not a tear —
// AllowTornTail must still reject it.
func TestTornTailDriftStillRejected(t *testing.T) {
	full, _ := tornFixture(t)
	for name, line := range map[string]string{
		"unknown kind":  `{"schema":1,"ev":"NewFancyEvent","data":{}}`,
		"unknown field": `{"schema":1,"ev":"RoundStart","data":{"round":1,"surprise":true}}`,
		"bad version":   `{"schema":999,"ev":"RoundStart","data":{"round":1}}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, _, err := ReadJournalOptions(strings.NewReader(full+line+"\n"), ReadOptions{AllowTornTail: true}); err == nil {
				t.Fatal("lenient mode accepted schema drift on the final line")
			}
		})
	}
}

// TestResumeJournal: a torn journal is rewritten back to its last
// checkpoint and the returned handle appends after it; a journal without
// checkpoints keeps only RunStart. Both rewrites must survive a strict
// re-read (the rewritten file is a clean journal again).
func TestResumeJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")

	write := func(events []Event, tearBytes int) {
		t.Helper()
		j, err := CreateJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			j.Emit(e)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if tearBytes > 0 {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)-tearBytes], 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	start := RunStart{Model: "PSO", Criterion: "memory-safety", Seed: 1, Execs: 10, MaxRounds: 3, FlushProb: 0.5}
	cp := Checkpoint{Round: 1, TotalExecutions: 10}
	events := []Event{
		start,
		RoundStart{Round: 1},
		RoundEnd{Round: 1, Executions: 10},
		cp,
		RoundStart{Round: 2},
		Violation{Round: 2, Seed: 17, Disjunction: []Pred{{L: 1, K: 2}}},
	}
	write(events, 9) // tear into the Violation line

	j, kept, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 4 {
		t.Fatalf("kept %d events, want 4 (through the checkpoint)", len(kept))
	}
	if _, ok := kept[3].(Checkpoint); !ok {
		t.Fatalf("last kept event is %s, want Checkpoint", kept[3].Kind())
	}
	// Appends after the cut land in the rewritten file.
	j.Emit(RoundStart{Round: 2})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournalFile(path)
	if err != nil {
		t.Fatalf("rewritten journal is not strictly readable: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("rewritten journal has %d events, want 5", len(got))
	}
	if _, ok := got[4].(RoundStart); !ok {
		t.Fatalf("appended event is %s, want RoundStart", got[4].Kind())
	}

	// No checkpoint at all: keep only RunStart.
	write([]Event{start, RoundStart{Round: 1}, RoundEnd{Round: 1}}, 3)
	j2, kept2, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept2) != 1 {
		t.Fatalf("kept %d events, want 1 (RunStart only)", len(kept2))
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadJournalFile(path); err != nil || len(got) != 1 {
		t.Fatalf("rewritten checkpoint-free journal: events=%d err=%v", len(got), err)
	}
}
