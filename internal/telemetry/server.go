// The optional introspection HTTP server behind `dfence -listen`,
// `experiments -listen`, and the dfenced service: a plain net/http mux
// exposing
//
//	/metrics       the metrics registry in OpenMetrics text format
//	/runz          the live run status + merged metrics snapshot as JSON
//	/tracez        the live span-trace summary (404 unless tracing is on)
//	/healthz       process liveness (200 while the server runs)
//	/readyz        readiness (503 while draining or not yet ready)
//	/debug/pprof/  the standard runtime profiles
//
// The server only reads — the registry merges shards on demand and the
// Status sink hands out a copy under its lock — so serving concurrent
// scrapes during a run is safe and costs the synthesis loop nothing.
package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a Registry and a Status over HTTP. All fields are
// optional: a nil Registry serves an empty /metrics, a nil Status an
// empty run section in /runz, and a nil Ready makes /readyz always 200.
type Server struct {
	Registry *Registry
	Status   *Status
	// Ready, when non-nil, gates /readyz: a non-nil error serves 503 with
	// the error text — how dfenced reports "draining" to load balancers.
	Ready func() error
	// Tracez, when non-nil, serves /tracez: the live terminal summary of
	// the run's span tracer (trace.Tracer.Summary). A func field rather
	// than a tracer value keeps this package ignorant of internal/trace.
	Tracez func() string
}

// runzPayload is the /runz response body.
type runzPayload struct {
	Run     RunStatus `json:"run"`
	Metrics Snapshot  `json:"metrics"`
}

// Handler returns the server's mux (exported separately from Start so
// tests can drive it with httptest and embedders can mount it wherever).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/runz", s.serveRunz)
	mux.HandleFunc("/tracez", s.serveTracez)
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/readyz", s.serveReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.serveIndex)
	return mux
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	reg := s.Registry
	if reg == nil {
		fmt.Fprint(w, "# EOF\n")
		return
	}
	_ = reg.WriteOpenMetrics(w)
}

func (s *Server) serveRunz(w http.ResponseWriter, _ *http.Request) {
	var p runzPayload
	if s.Status != nil {
		p.Run = s.Status.Snapshot()
	}
	if s.Registry != nil {
		p.Metrics = s.Registry.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p)
}

func (s *Server) serveTracez(w http.ResponseWriter, _ *http.Request) {
	if s.Tracez == nil {
		http.Error(w, "tracing not enabled (run with -trace)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.Tracez())
}

// serveHealthz is pure liveness: if this handler runs at all, the process
// is alive. Readiness is /readyz's job.
func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) serveReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Ready != nil {
		if err := s.Ready(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "dfence introspection\n\n  /metrics        OpenMetrics exposition\n  /runz           run status + metrics snapshot (JSON)\n  /tracez         live span-trace summary (text; 404 unless -trace)\n  /healthz        liveness\n  /readyz         readiness\n  /debug/pprof/   runtime profiles\n")
}

// ShutdownGrace bounds how long Start's shutdown function waits for
// in-flight introspection requests before closing their connections.
const ShutdownGrace = 3 * time.Second

// Start listens on addr (":0" picks a free port) and serves in a
// background goroutine. It returns the bound address — what to print for
// the user, and what tests dial — and a shutdown function that drains
// gracefully: http.Server.Shutdown with a ShutdownGrace deadline (new
// connections refused, in-flight requests finished), then a hard Close
// for whatever remains (pprof streams can outlive any deadline). Errors
// from the serving goroutine after a successful Listen are dropped: the
// server is advisory and must never take the run down with it.
func (s *Server) Start(addr string) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
		}
	}, nil
}
