// Typed run-journal events and the Sink interface they flow through.
//
// A Sink receives the story of a synthesis run as typed events: the
// round lifecycle, each violating execution's seed and repair
// disjunction, the solver's verdicts, every fence change, and the
// terminal outcome. The core loop emits them through the nil-safe Emit
// helper, so a run without telemetry pays one branch per (cold) call
// site. Journal (journal.go) serializes events as JSONL; Status
// (below) folds them into a live view for the /runz endpoint; MultiSink
// fans one stream into both.
package telemetry

import (
	"fmt"
	"sync"

	"dfence/internal/ir"
	"dfence/internal/sched"
	"dfence/internal/synth"
)

// SchemaVersion identifies the journal event schema. Bump it when an
// event type changes incompatibly; ReadJournal rejects mismatches, which
// is what `make journal-smoke` trips on when the schema drifts without a
// version bump and reader update. Adding a new event kind or a new
// optional field is backward compatible (old journals still decode) and
// does not bump the version; only changing the meaning or type of an
// existing field does.
const SchemaVersion = 1

// Sink receives journal events. Implementations must be safe for
// concurrent Emit calls (core emits from the coordinating goroutine
// today, but the contract leaves room for per-worker emission).
type Sink interface {
	Emit(e Event)
}

// Emit forwards e to s when s is non-nil — the guard every
// instrumentation site uses.
func Emit(s Sink, e Event) {
	if s != nil {
		s.Emit(e)
	}
}

// Event is one typed journal record. Kind returns the stable name used
// as the JSONL discriminator ("RoundStart", "Violation", ...).
type Event interface {
	Kind() string
}

// Pred mirrors synth.Predicate with stable JSON field names: the
// ordering predicate [L ⊰ K].
type Pred struct {
	L int32 `json:"l"`
	K int32 `json:"k"`
}

// PredsOf converts a repair disjunction for journaling.
func PredsOf(ps []synth.Predicate) []Pred {
	if len(ps) == 0 {
		return nil
	}
	out := make([]Pred, len(ps))
	for i, p := range ps {
		out[i] = Pred{L: int32(p.L), K: int32(p.K)}
	}
	return out
}

// Predicates converts journaled predicates back to synth form.
func Predicates(ps []Pred) []synth.Predicate {
	if len(ps) == 0 {
		return nil
	}
	out := make([]synth.Predicate, len(ps))
	for i, p := range ps {
		out[i] = synth.Predicate{L: ir.Label(p.L), K: ir.Label(p.K)}
	}
	return out
}

// TraceDecision is one scheduling decision of a witness trace.
type TraceDecision struct {
	Thread int   `json:"t"`
	Flush  bool  `json:"flush,omitempty"`
	Addr   int64 `json:"addr,omitempty"`
	Steps  int   `json:"steps,omitempty"`
}

// TraceOf converts a sched.Trace for journaling (nil-safe).
func TraceOf(tr *sched.Trace) []TraceDecision {
	if tr == nil {
		return nil
	}
	out := make([]TraceDecision, len(tr.Decisions))
	for i, d := range tr.Decisions {
		out[i] = TraceDecision{Thread: d.Thread, Flush: d.Flush, Addr: d.Addr, Steps: d.Steps}
	}
	return out
}

// Fence describes one fence for journaling, mirroring
// synth.InsertedFence with stable JSON names.
type Fence struct {
	After int32  `json:"after"` // label of the store the fence follows
	Label int32  `json:"label"` // the fence instruction's own label
	Kind  string `json:"kind"`
	Func  string `json:"func"`
}

// FencesOf converts inserted fences for journaling.
func FencesOf(fs []synth.InsertedFence) []Fence {
	if len(fs) == 0 {
		return nil
	}
	out := make([]Fence, len(fs))
	for i, f := range fs {
		out[i] = Fence{After: int32(f.After), Label: int32(f.Label), Kind: f.Kind.String(), Func: f.Func}
	}
	return out
}

// InsertedFences converts journaled fences back to synth form — the
// inverse of FencesOf, used when rebuilding a program from a journal.
func InsertedFences(fs []Fence) ([]synth.InsertedFence, error) {
	if len(fs) == 0 {
		return nil, nil
	}
	out := make([]synth.InsertedFence, len(fs))
	for i, f := range fs {
		kind, err := ir.ParseFenceKind(f.Kind)
		if err != nil {
			return nil, fmt.Errorf("telemetry: fence %d: %w", i, err)
		}
		out[i] = synth.InsertedFence{After: ir.Label(f.After), Label: ir.Label(f.Label), Kind: kind, Func: f.Func}
	}
	return out, nil
}

// RunStart opens a journal: what program ran under which configuration.
// Source carries the mini-C text for file-based runs (so `dfence
// explain` can rebuild the program without the original file); Builtin
// names a built-in benchmark instead. Exactly one of the two is set by
// the CLI; library callers may leave both empty, which limits explain to
// journals whose program the caller supplies.
type RunStart struct {
	Model     string  `json:"model"`
	Criterion string  `json:"criterion"`
	SeqSpec   string  `json:"seq_spec,omitempty"`
	Seed      int64   `json:"seed"`
	Execs     int     `json:"execs_per_round"`
	MaxRounds int     `json:"max_rounds"`
	FlushProb float64 `json:"flush_prob"`
	Workers   int     `json:"workers"`
	Source    string  `json:"source,omitempty"`
	Builtin   string  `json:"builtin,omitempty"`
	// The remaining fields record the determinism-relevant configuration a
	// resumed run must reproduce exactly (`dfence -resume`, dfenced).
	// Workers above is deliberately not among them: results are
	// bit-identical for every worker count.
	MaxSteps      int     `json:"max_steps,omitempty"`
	MaxIters      int     `json:"max_iters,omitempty"`
	Validate      bool    `json:"validate"`
	Static        bool    `json:"static,omitempty"`
	CAS           bool    `json:"cas,omitempty"`
	MinConclusive float64 `json:"min_conclusive,omitempty"`
	MaxModels     int     `json:"max_models,omitempty"`
}

func (RunStart) Kind() string { return "RunStart" }

// RoundStart opens one repair round.
type RoundStart struct {
	Round      int `json:"round"` // 1-based
	DelayPairs int `json:"static_delay_pairs,omitempty"`
}

func (RoundStart) Kind() string { return "RoundStart" }

// Violation records one violating execution: its seed (reproducible with
// sched.Run under the journaled options), the repair disjunction the
// instrumented semantics proposed, and — for the run's witness execution
// — the full schedule. One Violation event is emitted per *distinct*
// disjunction per round (duplicates are counted in RoundEnd), so the
// journal reconstructs φ exactly without growing with K.
type Violation struct {
	Round int    `json:"round"`
	Index int    `json:"index"` // execution index within the round
	Seed  int64  `json:"seed"`
	Desc  string `json:"desc,omitempty"` // violation description (empty-repair diagnostics)
	// Disjunction is the execution's candidate repairs; empty means the
	// execution cannot be avoided by fences (the unfixable case).
	Disjunction []Pred `json:"disjunction"`
	// Trace is the witness schedule, present on the execution captured as
	// the run's counterexample.
	Trace []TraceDecision `json:"trace,omitempty"`
}

func (Violation) Kind() string { return "Violation" }

// SolverResult records one round's minimal-model enumeration. The
// Decisions/Propagations/Restarts counters are additive optional fields
// (schema stays at version 1): journals written before them decode with
// the counters zero.
type SolverResult struct {
	Round        int    `json:"round"`
	Clauses      int    `json:"clauses"`
	Predicates   int    `json:"predicates"`
	Models       int    `json:"models"`
	Conflicts    int64  `json:"conflicts"`
	Decisions    int64  `json:"decisions,omitempty"`
	Propagations int64  `json:"propagations,omitempty"`
	Restarts     int64  `json:"restarts,omitempty"`
	Truncated    bool   `json:"truncated,omitempty"`
	WallUS       int64  `json:"wall_us"`
	Chosen       []Pred `json:"chosen"` // the assignment Algorithm 2 enforces
}

func (SolverResult) Kind() string { return "SolverResult" }

// FenceChange records fences entering or leaving the program.
// Action is "insert" (end-of-round enforcement), "drop-redundant"
// (post-convergence validation), or "merge" (static merge pass; Fences
// empty, Count set).
type FenceChange struct {
	Round  int     `json:"round,omitempty"` // 0 for post-convergence passes
	Action string  `json:"action"`
	Fences []Fence `json:"fences,omitempty"`
	Count  int     `json:"count,omitempty"`
}

func (FenceChange) Kind() string { return "FenceChange" }

// RoundEnd closes one repair round with its statistics.
type RoundEnd struct {
	Round           int     `json:"round"`
	Executions      int     `json:"executions"`
	Violations      int     `json:"violations"`
	Inconclusive    int     `json:"inconclusive,omitempty"`
	Errors          int     `json:"errors,omitempty"`
	Skipped         int     `json:"skipped,omitempty"`
	DistinctClauses int     `json:"distinct_clauses"`
	Predicates      int     `json:"predicates"`
	WallUS          int64   `json:"wall_us"`
	ExecsPerSec     float64 `json:"execs_per_sec"`
	PrunedPreds     int     `json:"pruned_predicates,omitempty"`
	PruneFallbacks  int     `json:"prune_fallbacks,omitempty"`
}

func (RoundEnd) Kind() string { return "RoundEnd" }

// Checkpoint marks a durable round boundary: the cumulative state a
// resumed run needs to restart after round Round without re-running
// rounds 1..Round. The synthesis loop emits it only when it is about to
// run another round — a terminal round is followed by Converged instead —
// so resuming from the last Checkpoint always re-enters the loop at a
// round the uninterrupted run would also have executed. The Journal sink
// flushes (and optionally fsyncs) on Checkpoint, making the boundary
// crash-durable; anything after the last Checkpoint in a torn journal
// belongs to the round that died and is re-run deterministically.
type Checkpoint struct {
	// Round is the number of fully completed rounds (1-based count); the
	// resumed loop starts at round Round+1.
	Round int `json:"round"`
	// Fences is the cumulative fence set in insertion order — what
	// synth.InsertFences re-applies to the original program on resume.
	Fences []Fence `json:"fences,omitempty"`
	// Cumulative Result counters as of this boundary.
	TotalExecutions   int    `json:"total_executions"`
	TotalInconclusive int    `json:"total_inconclusive,omitempty"`
	EmptyRepairs      int    `json:"empty_repairs,omitempty"`
	UnfixableExample  string `json:"unfixable_example,omitempty"`
	PrunedPredicates  int    `json:"pruned_predicates,omitempty"`
	SolverTruncated   bool   `json:"solver_truncated,omitempty"`
	// WitnessCaptured reports that an earlier round already captured the
	// run's counterexample trace, so the resumed run must not capture a
	// second one (the trace itself lives on the journaled Violation).
	WitnessCaptured bool `json:"witness_captured,omitempty"`
}

func (Checkpoint) Kind() string { return "Checkpoint" }

// Converged is the terminal event of every journal (despite the name it
// is emitted for every outcome — the Outcome field says which).
type Converged struct {
	Outcome          string `json:"outcome"`
	Rounds           int    `json:"rounds"`
	TotalExecutions  int    `json:"total_executions"`
	Fences           int    `json:"fences"`
	Redundant        int    `json:"redundant,omitempty"`
	MergedAway       int    `json:"merged_away,omitempty"`
	CacheHits        int    `json:"cache_hits,omitempty"`
	CacheMisses      int    `json:"cache_misses,omitempty"`
	StaticallyRobust bool   `json:"statically_robust,omitempty"`
}

func (Converged) Kind() string { return "Converged" }

// MultiSink fans events out to every non-nil sink; returns nil when none
// remain (so Emit's nil guard still short-circuits everything).
func MultiSink(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// maxRoundWallSamples bounds the per-round solve-time list RunStatus
// carries; beyond it the list stops growing and Truncated counts the
// overflow, so a pathological many-round run cannot grow /runz without
// limit.
const maxRoundWallSamples = 64

// SolverStatus is the live solver section of /runz: cumulative effort
// counters folded from SolverResult events plus the per-round solve-time
// list (microseconds, in round order, capped at maxRoundWallSamples).
type SolverStatus struct {
	Rounds       int     `json:"rounds"`
	Models       int     `json:"models"`
	Conflicts    int64   `json:"conflicts"`
	Decisions    int64   `json:"decisions"`
	Propagations int64   `json:"propagations"`
	Restarts     int64   `json:"restarts"`
	RoundWallUS  []int64 `json:"round_wall_us,omitempty"`
	Truncated    int     `json:"round_wall_truncated,omitempty"`
}

// RunStatus is the live view /runz serves: where the run is and what it
// has seen so far, folded from the event stream.
type RunStatus struct {
	Round           int          `json:"round"`
	Rounds          int          `json:"rounds_completed"`
	Executions      int          `json:"executions"`
	Violations      int          `json:"violations"`
	Inconclusive    int          `json:"inconclusive"`
	Skipped         int          `json:"skipped"`
	DistinctClauses int          `json:"distinct_clauses"`
	FencesInserted  int          `json:"fences_inserted"`
	FencesRemoved   int          `json:"fences_removed"`
	CacheHits       int          `json:"cache_hits"`
	CacheMisses     int          `json:"cache_misses"`
	Solver          SolverStatus `json:"solver"`
	Outcome         string       `json:"outcome"` // "" while running
}

// Status is a Sink that folds the event stream into a RunStatus.
type Status struct {
	mu  sync.Mutex
	cur RunStatus
}

// Emit implements Sink.
func (st *Status) Emit(e Event) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch ev := e.(type) {
	case RoundStart:
		st.cur.Round = ev.Round
	case RoundEnd:
		st.cur.Rounds++
		st.cur.Executions += ev.Executions
		st.cur.Violations += ev.Violations
		st.cur.Inconclusive += ev.Inconclusive
		st.cur.Skipped += ev.Skipped
		st.cur.DistinctClauses += ev.DistinctClauses
	case SolverResult:
		s := &st.cur.Solver
		s.Rounds++
		s.Models += ev.Models
		s.Conflicts += ev.Conflicts
		s.Decisions += ev.Decisions
		s.Propagations += ev.Propagations
		s.Restarts += ev.Restarts
		if len(s.RoundWallUS) < maxRoundWallSamples {
			s.RoundWallUS = append(s.RoundWallUS, ev.WallUS)
		} else {
			s.Truncated++
		}
	case FenceChange:
		switch ev.Action {
		case "insert":
			st.cur.FencesInserted += len(ev.Fences)
		case "drop-redundant":
			st.cur.FencesRemoved += len(ev.Fences)
		case "merge":
			st.cur.FencesRemoved += ev.Count
		}
	case Converged:
		st.cur.Outcome = ev.Outcome
		st.cur.CacheHits = ev.CacheHits
		st.cur.CacheMisses = ev.CacheMisses
	}
}

// Snapshot returns the current view. The solve-time list is copied so
// callers can serialize it while Emit keeps appending.
func (st *Status) Snapshot() RunStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.cur
	out.Solver.RoundWallUS = append([]int64(nil), st.cur.Solver.RoundWallUS...)
	return out
}
