package telemetry

import (
	"reflect"
	"strings"
	"testing"
)

// allEvents is one instance of every journal event type, with every field
// populated — the roundtrip fixture that catches an event added to the
// schema without a decoders row, and a field added without a reader
// update.
func allEvents() []Event {
	return []Event{
		RunStart{
			Model: "PSO", Criterion: "memory-safety", SeqSpec: "deque", Seed: 7,
			Execs: 500, MaxRounds: 10, FlushProb: 0.5, Workers: 4,
			Source: "int x = 0;", Builtin: "",
			MaxSteps: 100000, Validate: true, Static: true, CAS: true,
			MinConclusive: 0.5, MaxModels: 4096,
		},
		RoundStart{Round: 1, DelayPairs: 3},
		Violation{
			Round: 1, Index: 2, Seed: 9, Desc: "assertion violation",
			Disjunction: []Pred{{L: 2, K: 5}, {L: 3, K: 7}},
			Trace:       []TraceDecision{{Thread: 1, Steps: 4}, {Thread: 1, Flush: true, Addr: 2}},
		},
		SolverResult{
			Round: 1, Clauses: 2, Predicates: 3, Models: 4, Conflicts: 5,
			Truncated: true, WallUS: 120, Chosen: []Pred{{L: 2, K: 5}},
		},
		FenceChange{
			Round: 1, Action: "insert", Count: 1,
			Fences: []Fence{{After: 2, Label: 90, Kind: "fence(st-st)", Func: "producer"}},
		},
		RoundEnd{
			Round: 1, Executions: 500, Violations: 22, Inconclusive: 3, Errors: 1,
			Skipped: 2, DistinctClauses: 2, Predicates: 3, WallUS: 4000,
			ExecsPerSec: 125000, PrunedPreds: 1, PruneFallbacks: 1,
		},
		Checkpoint{
			Round:  1,
			Fences: []Fence{{After: 2, Label: 90, Kind: "fence(st-st)", Func: "producer"}},
			TotalExecutions: 500, TotalInconclusive: 5, EmptyRepairs: 1,
			UnfixableExample: "assertion violation", PrunedPredicates: 2,
			SolverTruncated: true, WitnessCaptured: true,
		},
		Converged{
			Outcome: "converged", Rounds: 2, TotalExecutions: 1000, Fences: 1,
			Redundant: 1, MergedAway: 1, CacheHits: 900, CacheMisses: 100,
			StaticallyRobust: false,
		},
	}
}

func TestJournalRoundtrip(t *testing.T) {
	var b strings.Builder
	j := NewJournal(&b)
	events := allEvents()
	for _, e := range events {
		j.Emit(e)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if !reflect.DeepEqual(got[i], events[i]) {
			t.Errorf("event %d (%s) did not roundtrip:\ngot  %+v\nwant %+v",
				i, events[i].Kind(), got[i], events[i])
		}
	}
}

// TestJournalSchemaDrift: ReadJournal is strict by design — it is the
// schema-drift detector `make journal-smoke` relies on. Unknown kinds,
// unknown fields inside known events, and version mismatches must all
// fail loudly, not decode approximately.
func TestJournalSchemaDrift(t *testing.T) {
	cases := []struct {
		name, line, wantErr string
	}{
		{
			"unknown kind",
			`{"schema":1,"ev":"NewFancyEvent","data":{}}`,
			"unknown event kind",
		},
		{
			"unknown field",
			`{"schema":1,"ev":"RoundStart","data":{"round":1,"surprise":true}}`,
			"unknown field",
		},
		{
			"schema version mismatch",
			`{"schema":999,"ev":"RoundStart","data":{"round":1}}`,
			"schema version",
		},
		{
			"unknown envelope field",
			`{"schema":1,"ev":"RoundStart","data":{"round":1},"extra":1}`,
			"unknown field",
		},
		{
			"malformed line",
			`{"schema":1,"ev":`,
			"journal line 1",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadJournal(strings.NewReader(c.line + "\n"))
			if err == nil {
				t.Fatalf("drifted journal decoded without error: %s", c.line)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestDecodersComplete: every event type emitted by the writer must have
// a decoders row, or journals become unreadable the day the new event
// first fires in production.
func TestDecodersComplete(t *testing.T) {
	for _, e := range allEvents() {
		if _, ok := decoders[e.Kind()]; !ok {
			t.Errorf("event kind %q has no decoders row in journal.go", e.Kind())
		}
	}
}

func TestSummarizeJournal(t *testing.T) {
	events := []Event{
		RunStart{Model: "PSO", Criterion: "memory-safety", Source: "int x;"},
		RoundStart{Round: 1},
		Violation{Round: 1, Seed: 3, Trace: []TraceDecision{{Thread: 1, Steps: 2}}},
		Violation{Round: 1, Seed: 4}, // no trace: not a witness
		FenceChange{Round: 1, Action: "insert", Fences: []Fence{{After: 1, Label: 50, Kind: "fence", Func: "f"}}},
		RoundEnd{Round: 1},
		RoundStart{Round: 2},
		Violation{Round: 2, Seed: 8, Trace: []TraceDecision{{Thread: 2, Steps: 1}}},
		FenceChange{Round: 2, Action: "insert", Fences: []Fence{{After: 2, Label: 51, Kind: "fence", Func: "g"}}},
		FenceChange{Action: "drop-redundant", Fences: []Fence{{After: 2, Label: 51, Kind: "fence", Func: "g"}}},
		RoundEnd{Round: 2},
		Converged{Outcome: "converged", Rounds: 2},
	}
	jr := SummarizeJournal(events)
	if jr.Start == nil || jr.Start.Model != "PSO" {
		t.Fatal("RunStart not folded")
	}
	if len(jr.Violations) != 3 {
		t.Errorf("folded %d violations, want 3", len(jr.Violations))
	}
	if w := jr.Witnesses(); len(w) != 2 {
		t.Errorf("found %d witnesses, want 2", len(w))
	}
	if jr.Converged == nil || jr.Converged.Outcome != "converged" {
		t.Error("Converged not folded")
	}
	// A round-1 witness ran before any fences; a round-2 witness ran with
	// round 1's insertion; drop-redundant events never count.
	if got := jr.FencesBefore(1); len(got) != 0 {
		t.Errorf("FencesBefore(1) = %d fences, want 0", len(got))
	}
	if got := jr.FencesBefore(2); len(got) != 1 || got[0].Func != "f" {
		t.Errorf("FencesBefore(2) = %+v, want the round-1 insert", got)
	}
}
