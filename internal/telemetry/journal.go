// JSONL run journal: the durable form of the event stream.
//
// Each line is an envelope {"schema":1,"ev":"RoundStart","data":{...}}.
// The writer is a Sink, safe for concurrent Emit; errors are sticky and
// surfaced via Err (journaling must never abort a synthesis run, so
// Emit swallows them). ReadJournal is the strict inverse: it rejects
// schema-version mismatches, unknown event kinds, and unknown fields
// inside known events — the drift detector behind `make journal-smoke`.
package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// envelope frames one journal line.
type envelope struct {
	Schema int             `json:"schema"`
	Ev     string          `json:"ev"`
	Data   json.RawMessage `json:"data"`
}

// Journal is a Sink that appends events to an io.Writer as JSONL.
type Journal struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // nil when the caller owns the underlying writer
	err error
}

// NewJournal wraps w. The caller keeps ownership of w; call Flush (or
// Close, a no-op close) when done.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: bufio.NewWriter(w)}
}

// CreateJournal creates (truncating) a journal file at path.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Journal{w: bufio.NewWriter(f), c: f}, nil
}

// Emit implements Sink. Marshal or write failures are recorded in Err
// and subsequent events are dropped; the run itself is never disturbed.
func (j *Journal) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		j.err = fmt.Errorf("telemetry: marshal %s: %w", e.Kind(), err)
		return
	}
	line, err := json.Marshal(envelope{Schema: SchemaVersion, Ev: e.Kind(), Data: data})
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		j.err = err
	}
}

// Flush forces buffered lines to the underlying writer.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Close flushes and, when the journal owns its file, closes it.
func (j *Journal) Close() error {
	ferr := j.Flush()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.c != nil {
		if cerr := j.c.Close(); ferr == nil {
			ferr = cerr
		}
		j.c = nil
	}
	return ferr
}

// Err reports the first write or marshal failure, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// decoders maps event kinds to strict decoders. Adding an event type
// means adding a row here; forgetting to is caught by the roundtrip
// test, not at runtime in a user's hands.
var decoders = map[string]func(json.RawMessage) (Event, error){
	"RunStart":     decodeAs[RunStart],
	"RoundStart":   decodeAs[RoundStart],
	"Violation":    decodeAs[Violation],
	"SolverResult": decodeAs[SolverResult],
	"FenceChange":  decodeAs[FenceChange],
	"RoundEnd":     decodeAs[RoundEnd],
	"Converged":    decodeAs[Converged],
}

func decodeAs[T Event](data json.RawMessage) (Event, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var v T
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// ReadJournal decodes a full journal, strictly: any schema-version
// mismatch, unknown event kind, or unknown field is an error.
func ReadJournal(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // traces can be long
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var env envelope
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&env); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", line, err)
		}
		if env.Schema != SchemaVersion {
			return nil, fmt.Errorf("journal line %d: schema version %d, want %d", line, env.Schema, SchemaVersion)
		}
		decode, ok := decoders[env.Ev]
		if !ok {
			return nil, fmt.Errorf("journal line %d: unknown event kind %q", line, env.Ev)
		}
		ev, err := decode(env.Data)
		if err != nil {
			return nil, fmt.Errorf("journal line %d: %s: %w", line, env.Ev, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadJournalFile is ReadJournal over a file path.
func ReadJournalFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}
