// JSONL run journal: the durable form of the event stream.
//
// Each line is an envelope {"schema":1,"ev":"RoundStart","data":{...}}.
// The writer is a Sink, safe for concurrent Emit; errors are sticky and
// surfaced via Err (journaling must never abort a synthesis run, so
// Emit swallows them). ReadJournal is the strict inverse: it rejects
// schema-version mismatches, unknown event kinds, and unknown fields
// inside known events — the drift detector behind `make journal-smoke`.
package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// envelope frames one journal line.
type envelope struct {
	Schema int             `json:"schema"`
	Ev     string          `json:"ev"`
	Data   json.RawMessage `json:"data"`
}

// Journal is a Sink that appends events to an io.Writer as JSONL.
//
// Durability: Checkpoint and Converged events force the buffered lines to
// the underlying writer (and, with SyncOnCheckpoint, fsync the file), so
// a crash loses at most the partially completed round after the last
// checkpoint — exactly the tail a resumed run re-executes anyway.
type Journal struct {
	mu   sync.Mutex
	w    *bufio.Writer
	c    io.Closer // nil when the caller owns the underlying writer
	f    *os.File  // non-nil when the journal owns a file (for fsync)
	sync bool      // fsync on checkpoint/terminal events
	err  error
}

// NewJournal wraps w. The caller keeps ownership of w; call Flush (or
// Close, a no-op close) when done.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: bufio.NewWriter(w)}
}

// CreateJournal creates (truncating) a journal file at path.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Journal{w: bufio.NewWriter(f), c: f, f: f}, nil
}

// SyncOnCheckpoint makes every Checkpoint and Converged event fsync the
// journal's file (no-op for writer-backed journals). The synthesis hot
// path never checkpoints more than once per round, so the cost is one
// fsync per round — what dfenced pays for crash-durable spool journals.
func (j *Journal) SyncOnCheckpoint(on bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sync = on
}

// Emit implements Sink. Marshal or write failures are recorded in Err
// and subsequent events are dropped; the run itself is never disturbed.
func (j *Journal) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		j.err = fmt.Errorf("telemetry: marshal %s: %w", e.Kind(), err)
		return
	}
	line, err := json.Marshal(envelope{Schema: SchemaVersion, Ev: e.Kind(), Data: data})
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		j.err = err
		return
	}
	// Round boundaries (and the terminal event) become durable immediately:
	// this is the commit record the resume path trusts.
	switch e.(type) {
	case Checkpoint, Converged:
		if err := j.w.Flush(); err != nil {
			j.err = err
			return
		}
		if j.sync && j.f != nil {
			if err := j.f.Sync(); err != nil {
				j.err = err
			}
		}
	}
}

// Flush forces buffered lines to the underlying writer.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}

// Close flushes and, when the journal owns its file, closes it.
func (j *Journal) Close() error {
	ferr := j.Flush()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.c != nil {
		if cerr := j.c.Close(); ferr == nil {
			ferr = cerr
		}
		j.c = nil
	}
	return ferr
}

// Err reports the first write or marshal failure, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// decoders maps event kinds to strict decoders. Adding an event type
// means adding a row here; forgetting to is caught by the roundtrip
// test, not at runtime in a user's hands.
var decoders = map[string]func(json.RawMessage) (Event, error){
	"RunStart":     decodeAs[RunStart],
	"RoundStart":   decodeAs[RoundStart],
	"Violation":    decodeAs[Violation],
	"SolverResult": decodeAs[SolverResult],
	"FenceChange":  decodeAs[FenceChange],
	"RoundEnd":     decodeAs[RoundEnd],
	"Checkpoint":   decodeAs[Checkpoint],
	"Converged":    decodeAs[Converged],
}

func decodeAs[T Event](data json.RawMessage) (Event, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var v T
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// ReadOptions controls ReadJournalOptions' tolerance.
type ReadOptions struct {
	// AllowTornTail tolerates a final line that does not parse as JSON —
	// the signature of a crash-torn journal, where the process died while
	// the last line was being written. Only a JSON *syntax* failure on the
	// very last non-empty line is forgiven (a truncated line is a strict
	// prefix of a complete one and can never re-balance its braces, so it
	// always fails the parser); a well-formed line with a wrong schema
	// version, unknown event kind, or unknown field is drift, not a tear,
	// and stays an error. Strict mode (the default everywhere) rejects
	// torn tails too.
	AllowTornTail bool
}

// ReadJournal decodes a full journal, strictly: any schema-version
// mismatch, unknown event kind, unknown field, or torn final line is an
// error.
func ReadJournal(r io.Reader) ([]Event, error) {
	events, _, err := ReadJournalOptions(r, ReadOptions{})
	return events, err
}

// decodeLine decodes one journal line. syntax reports whether the failure
// was a JSON parse failure (the torn-tail signature) rather than schema
// drift.
func decodeLine(raw []byte, line int) (ev Event, syntax bool, err error) {
	var env envelope
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if derr := dec.Decode(&env); derr != nil {
		return nil, isSyntaxErr(derr), fmt.Errorf("journal line %d: %w", line, derr)
	}
	if env.Schema != SchemaVersion {
		return nil, false, fmt.Errorf("journal line %d: schema version %d, want %d", line, env.Schema, SchemaVersion)
	}
	decode, ok := decoders[env.Ev]
	if !ok {
		return nil, false, fmt.Errorf("journal line %d: unknown event kind %q", line, env.Ev)
	}
	ev, derr := decode(env.Data)
	if derr != nil {
		return nil, isSyntaxErr(derr), fmt.Errorf("journal line %d: %s: %w", line, env.Ev, derr)
	}
	return ev, false, nil
}

// isSyntaxErr classifies a decode failure as JSON-truncation-shaped.
func isSyntaxErr(err error) bool {
	var se *json.SyntaxError
	return errors.As(err, &se) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF)
}

// ReadJournalOptions decodes a journal under the given tolerance. With
// AllowTornTail, a final line that fails to parse is dropped and torn is
// true; every decoded event before it is returned. Any failure on a
// non-final line remains an error in both modes.
func ReadJournalOptions(r io.Reader, o ReadOptions) (events []Event, torn bool, err error) {
	// Collect the raw lines first: torn-tail classification needs to know
	// whether a bad line is the file's last, which a streaming scan cannot
	// see. Journals are bounded (they grow with φ, not with K), so holding
	// the lines is cheap.
	var lines [][]byte
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // traces can be long
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		lines = append(lines, append([]byte(nil), raw...))
	}
	if serr := sc.Err(); serr != nil {
		return nil, false, serr
	}
	for i, raw := range lines {
		ev, syntax, derr := decodeLine(raw, i+1)
		if derr != nil {
			if o.AllowTornTail && syntax && i == len(lines)-1 {
				return events, true, nil
			}
			return nil, false, derr
		}
		events = append(events, ev)
	}
	return events, false, nil
}

// ReadJournalFile is ReadJournal over a file path.
func ReadJournalFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}

// ResumeJournal prepares path's journal for a resumed run. It reads the
// existing events tolerating a crash-torn tail, truncates the stream back
// to its last durable cut — the final Checkpoint event, or the RunStart
// if no round ever checkpointed — and rewrites the file to exactly that
// prefix (temp file + rename, so a crash during preparation never
// corrupts the original). The returned Journal appends to the rewritten
// file; kept holds the retained events, from which the caller derives the
// run configuration (RunStart) and the core resume state (Checkpoint).
//
// Events after the last checkpoint are discarded deliberately: they
// belong to the round that died, which the resumed loop re-executes
// deterministically — keeping them would duplicate every one of its
// journal entries.
func ResumeJournal(path string) (j *Journal, kept []Event, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	events, _, err := ReadJournalOptions(f, ReadOptions{AllowTornTail: true})
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	cut := 0 // number of events to keep
	for i, e := range events {
		switch e.(type) {
		case Checkpoint:
			cut = i + 1
		case RunStart:
			if cut == 0 {
				cut = i + 1
			}
		}
	}
	kept = events[:cut]
	tmp := path + ".resume.tmp"
	nf, err := os.Create(tmp)
	if err != nil {
		return nil, nil, err
	}
	j = &Journal{w: bufio.NewWriter(nf), c: nf, f: nf}
	for _, e := range kept {
		j.Emit(e)
	}
	if err := j.Flush(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return nil, nil, err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return nil, nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return nil, nil, err
	}
	// The open handle survives the rename (same inode, now named path), so
	// subsequent Emits append to the rewritten journal.
	return j, kept, nil
}
