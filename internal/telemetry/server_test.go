package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func serverFixture() *Server {
	reg := NewRegistry(2)
	m := NewMetrics(reg)
	m.Executions.Add(0, 100)
	m.Violations.Add(1, 7)
	st := &Status{}
	st.Emit(RoundStart{Round: 1})
	st.Emit(SolverResult{Round: 1, Models: 3, Conflicts: 5, Decisions: 40, Propagations: 200, Restarts: 1, WallUS: 120})
	st.Emit(RoundEnd{Round: 1, Executions: 100, Violations: 7, DistinctClauses: 2})
	st.Emit(FenceChange{Round: 1, Action: "insert", Fences: []Fence{{After: 1, Label: 9, Kind: "fence", Func: "f"}}})
	st.Emit(Converged{Outcome: "converged", CacheHits: 90, CacheMisses: 10})
	return &Server{Registry: reg, Status: st}
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetrics(t *testing.T) {
	code, body := get(t, serverFixture().Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"dfence_executions_total 100", "dfence_violations_total 7", "# EOF"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestServerRunz(t *testing.T) {
	code, body := get(t, serverFixture().Handler(), "/runz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var p struct {
		Run     RunStatus `json:"run"`
		Metrics Snapshot  `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/runz is not JSON: %v\n%s", err, body)
	}
	if p.Run.Executions != 100 || p.Run.Violations != 7 || p.Run.FencesInserted != 1 {
		t.Errorf("run status = %+v", p.Run)
	}
	if p.Run.Outcome != "converged" || p.Run.CacheHits != 90 {
		t.Errorf("terminal fields not folded: %+v", p.Run)
	}
	s := p.Run.Solver
	if s.Rounds != 1 || s.Models != 3 || s.Conflicts != 5 || s.Decisions != 40 ||
		s.Propagations != 200 || s.Restarts != 1 {
		t.Errorf("solver status not folded: %+v", s)
	}
	if len(s.RoundWallUS) != 1 || s.RoundWallUS[0] != 120 || s.Truncated != 0 {
		t.Errorf("solver round wall not folded: %+v", s)
	}
	if len(p.Metrics.Counters) == 0 {
		t.Error("metrics snapshot empty")
	}
}

func TestServerPprofAndIndex(t *testing.T) {
	h := serverFixture().Handler()
	if code, body := get(t, h, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, body := get(t, h, "/"); code != http.StatusOK || !strings.Contains(body, "/runz") {
		t.Errorf("index status %d body %q", code, body)
	}
	if code, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

// TestServerEmpty: a server with neither registry nor status must serve
// valid empty responses, not nil-pointer panics.
func TestServerEmpty(t *testing.T) {
	h := (&Server{}).Handler()
	if code, body := get(t, h, "/metrics"); code != http.StatusOK || !strings.Contains(body, "# EOF") {
		t.Errorf("/metrics on empty server: %d %q", code, body)
	}
	if code, _ := get(t, h, "/runz"); code != http.StatusOK {
		t.Errorf("/runz on empty server: %d", code)
	}
}

func TestServerStart(t *testing.T) {
	srv := serverFixture()
	bound, shutdown, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}
