// The violation-witness explainer: turns a recorded schedule plus its
// journal context into a human-readable interleaving report — per-thread
// program text, the step-by-step interleaving with buffered-vs-flushed
// stores made explicit, the stores still sitting in buffers when the
// check failed, the specification failure, and the repair disjunction
// the instrumented semantics proposed. This is the `dfence explain`
// backend and the detail section of failure output.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"dfence/internal/ir"
	"dfence/internal/sched"
)

// ExplainOptions carries the journal/run context around one witness.
type ExplainOptions struct {
	// Round and Seed locate the witness execution in the run.
	Round int
	Seed  int64
	// Desc describes what the execution violated (an interpreter fault,
	// or the failed history check — spec.DescribeFailure output).
	Desc string
	// Disjunction is the repair disjunction [l1 ⊰ k1] ∨ ... the
	// instrumented semantics proposed for this execution.
	Disjunction []Pred
	// MaxSteps caps the rendered interleaving (0 = 400). Longer replays
	// are elided in the middle, keeping the head and the violating tail.
	MaxSteps int
}

// pendingStore tracks one buffered store during witness rendering.
type pendingStore struct {
	label ir.Label
	addr  int64
	val   int64
}

// ExplainWitness replays tr against prog and renders the witness report.
// The error is non-nil only when the trace cannot be replayed at all;
// a schedule that stops applying partway (e.g. against a since-fenced
// program) still renders its applicable prefix, flagged as partial.
func ExplainWitness(prog *ir.Program, tr *sched.Trace, opts ExplainOptions) (string, error) {
	if tr == nil || len(tr.Decisions) == 0 {
		return "", fmt.Errorf("telemetry: no witness trace to explain")
	}
	facts, res, ok := sched.ReplayExplained(prog, tr)
	if len(facts) == 0 {
		return "", fmt.Errorf("telemetry: witness trace does not apply to this program")
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 400
	}

	names := addrNamer(prog)
	var b strings.Builder

	// Header.
	fmt.Fprintf(&b, "violation witness — %v", tr.Model)
	if opts.Round > 0 {
		fmt.Fprintf(&b, ", round %d", opts.Round)
	}
	fmt.Fprintf(&b, ", seed %d\n", opts.Seed)
	desc := opts.Desc
	if desc == "" && res != nil && res.Violation != nil {
		desc = res.Violation.Error()
	}
	if desc != "" {
		b.WriteString("violated: " + indentAfterFirst(desc, "  ") + "\n")
	}
	if !ok {
		b.WriteString("note: schedule no longer fully applies to this program (it has changed since the witness was recorded); showing the applicable prefix\n")
	}

	// Per-thread program text: each thread's functions in execution
	// order, each function's code printed once.
	b.WriteString("\nprogram (per thread):\n")
	threadFuncs, threadOrder := factFuncs(facts)
	printed := map[string]bool{}
	for _, tid := range threadOrder {
		fmt.Fprintf(&b, "  t%d runs %s\n", tid, strings.Join(threadFuncs[tid], ", "))
	}
	for _, tid := range threadOrder {
		for _, fname := range threadFuncs[tid] {
			if printed[fname] {
				continue
			}
			printed[fname] = true
			fn := prog.Funcs[fname]
			if fn == nil {
				continue
			}
			fmt.Fprintf(&b, "  func %s:\n", fname)
			for i := range fn.Code {
				fmt.Fprintf(&b, "    %s\n", fn.Code[i].String())
			}
		}
	}

	// The interleaving, with live store-buffer bookkeeping.
	fmt.Fprintf(&b, "\ninterleaving (%d transitions):\n", len(facts))
	pending := map[int][]pendingStore{}
	elideFrom, elideTo := -1, -1
	if len(facts) > maxSteps {
		keepHead := maxSteps / 2
		keepTail := maxSteps - keepHead
		elideFrom, elideTo = keepHead, len(facts)-keepTail
	}
	for i, f := range facts {
		// Bookkeeping must run for elided steps too.
		line := renderFact(f, names, pending)
		if elideFrom >= 0 && i >= elideFrom && i < elideTo {
			if i == elideFrom {
				fmt.Fprintf(&b, "  ... %d transitions elided ...\n", elideTo-elideFrom)
			}
			continue
		}
		fmt.Fprintf(&b, "  %s\n", line)
	}

	// Stores still buffered when the check failed — the relaxed-memory
	// heart of the witness.
	var tids []int
	for tid, ps := range pending {
		if len(ps) > 0 {
			tids = append(tids, tid)
		}
	}
	sort.Ints(tids)
	if len(tids) > 0 {
		b.WriteString("\nstill buffered (written, never flushed to memory before the check):\n")
		for _, tid := range tids {
			for _, p := range pending[tid] {
				fmt.Fprintf(&b, "  t%d: %s = %d (store L%d)\n", tid, names(p.addr), p.val, p.label)
			}
		}
	}

	// The repair disjunction.
	if len(opts.Disjunction) > 0 {
		b.WriteString("\nrepair disjunction (enforcing any one ordering repairs this execution):\n")
		for _, p := range opts.Disjunction {
			fmt.Fprintf(&b, "  [L%d \u2b30 L%d]%s\n", p.L, p.K, describePred(prog, p))
		}
	} else if opts.Desc != "" || res != nil {
		b.WriteString("\nrepair disjunction: empty — no fence placement can avoid this execution\n")
	}
	return b.String(), nil
}

// factFuncs collects, per thread, the functions it executed (in order),
// and the threads in order of first action.
func factFuncs(facts []sched.StepFact) (map[int][]string, []int) {
	funcs := map[int][]string{}
	var order []int
	for _, f := range facts {
		if _, seen := funcs[f.Thread]; !seen {
			order = append(order, f.Thread)
			funcs[f.Thread] = nil
		}
		if !f.Exec || f.Func == "" {
			continue
		}
		fs := funcs[f.Thread]
		if len(fs) == 0 || fs[len(fs)-1] != f.Func {
			dup := false
			for _, n := range fs {
				if n == f.Func {
					dup = true
					break
				}
			}
			if !dup {
				funcs[f.Thread] = append(fs, f.Func)
			}
		}
	}
	return funcs, order
}

// renderFact renders one step and updates the pending-store books.
func renderFact(f sched.StepFact, names func(int64) string, pending map[int][]pendingStore) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t%d", f.Thread)
	switch {
	case f.Flush:
		src := ""
		if f.FlushLabel != 0 {
			src = fmt.Sprintf(" (store L%d", f.FlushLabel)
			if f.Forced {
				src += ", forced by fence/atomic"
			}
			src += ")"
		}
		fmt.Fprintf(&b, " \u2913 flush %s = %d%s", names(f.FlushAddr), f.FlushVal, src)
		// Retire the oldest matching pending store.
		ps := pending[f.Thread]
		for i, p := range ps {
			if p.addr == f.FlushAddr && p.label == f.FlushLabel {
				pending[f.Thread] = append(ps[:i:i], ps[i+1:]...)
				break
			}
		}
	case f.Exec:
		in := f.Instr
		fmt.Fprintf(&b, " %s  %s", f.Func, in.String())
		switch in.Op {
		case ir.OpStore:
			if f.HasAddr && f.HasVal {
				if f.Buffered {
					fmt.Fprintf(&b, "   → %s = %d BUFFERED (not yet visible to other threads)", names(f.Addr), f.Val)
					pending[f.Thread] = append(pending[f.Thread], pendingStore{label: in.Label, addr: f.Addr, val: f.Val})
				} else {
					fmt.Fprintf(&b, "   → %s = %d (to memory)", names(f.Addr), f.Val)
				}
			}
		case ir.OpLoad:
			if f.HasAddr && f.HasVal {
				src := "from memory"
				if f.FromBuffer {
					src = "from OWN buffer"
				}
				fmt.Fprintf(&b, "   → read %s = %d (%s)", names(f.Addr), f.Val, src)
			}
		case ir.OpCas:
			if f.HasAddr {
				fmt.Fprintf(&b, "   → atomic on %s", names(f.Addr))
			}
		}
	default:
		b.WriteString(" (no-op)")
	}
	if f.Violated != nil {
		fmt.Fprintf(&b, "\n  !! violation: %s", f.Violated.Error())
	}
	return b.String()
}

// describePred phrases one ordering predicate in program terms.
func describePred(prog *ir.Program, p Pred) string {
	l := prog.InstrAt(ir.Label(p.L))
	k := prog.InstrAt(ir.Label(p.K))
	if l == nil || k == nil {
		return ""
	}
	return fmt.Sprintf(" — commit \u201c%s\u201d before executing \u201c%s\u201d", instrPhrase(l), instrPhrase(k))
}

func instrPhrase(in *ir.Instr) string {
	s := in.String()
	if in.Line > 0 {
		s += fmt.Sprintf(" (line %d)", in.Line)
	}
	return s
}

// addrNamer maps addresses to global names (name, or name+offset) for
// readable reports; unknown addresses render as [addr N].
func addrNamer(prog *ir.Program) func(int64) string {
	return func(addr int64) string {
		for _, g := range prog.Globals {
			if addr >= g.Addr && addr < g.Addr+g.Size {
				if addr == g.Addr {
					return g.Name
				}
				return fmt.Sprintf("%s+%d", g.Name, addr-g.Addr)
			}
		}
		return fmt.Sprintf("[addr %d]", addr)
	}
}

func indentAfterFirst(s, indent string) string {
	return strings.ReplaceAll(s, "\n", "\n"+indent)
}
