package telemetry

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterShards(t *testing.T) {
	reg := NewRegistry(4)
	c := reg.NewCounter("test_counter", "")
	c.Inc(0)
	c.Add(3, 5)
	c.Add(7, 2) // wraps onto shard 3
	c.Add(1, 0) // no-op
	if got := c.Value(); got != 8 {
		t.Errorf("Value = %d, want 8", got)
	}
	var nilC *Counter
	nilC.Inc(0) // must not panic
	if nilC.Value() != 0 {
		t.Error("nil Counter Value != 0")
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry(1)
	g := reg.NewGauge("test_gauge", "")
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	if nilG.Value() != 0 {
		t.Error("nil Gauge Value != 0")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry(1)
	h := reg.NewHistogram("test_hist", "", []int64{10, 100, 1000})
	for v := int64(1); v <= 100; v++ {
		h.Observe(0, v)
	}
	snap := reg.Snapshot()
	hs := snap.Histograms[0]
	if hs.Count != 100 || hs.Sum != 5050 {
		t.Errorf("count/sum = %d/%d, want 100/5050", hs.Count, hs.Sum)
	}
	// 1..10 land in the 10-bucket, 11..100 in the 100-bucket: p50 and p95
	// both resolve to bound 100, p05 to bound 10.
	if hs.P50 != 100 || hs.P95 != 100 {
		t.Errorf("p50/p95 = %d/%d, want 100/100", hs.P50, hs.P95)
	}
	var nilH *Histogram
	nilH.Observe(0, 5) // must not panic
}

func TestDuplicateNamePanics(t *testing.T) {
	reg := NewRegistry(1)
	reg.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.NewGauge("dup", "")
}

// TestHistogramMergeDeterminism is the satellite-3 test: concurrent
// workers hammer sharded counters and histograms with a fixed per-worker
// observation schedule; however the scheduler interleaves them (run with
// -race), the merged snapshot must be identical across runs and identical
// to the serial reference, because merging is a per-bucket sum.
func TestHistogramMergeDeterminism(t *testing.T) {
	const workers = 8
	const perWorker = 5000
	run := func(parallel bool) Snapshot {
		reg := NewRegistry(workers)
		c := reg.NewCounter("det_counter", "")
		h := reg.NewHistogram("det_hist", "", []int64{10, 50, 100, 500, 1000, 5000})
		work := func(w int) {
			rng := rand.New(rand.NewSource(int64(w) + 1)) // fixed seed per worker
			for i := 0; i < perWorker; i++ {
				v := rng.Int63n(6000)
				h.Observe(w, v)
				c.Add(w, v%7)
			}
		}
		if parallel {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					work(w)
				}(w)
			}
			wg.Wait()
		} else {
			for w := 0; w < workers; w++ {
				work(w)
			}
		}
		return reg.Snapshot()
	}
	serial := run(false)
	for i := 0; i < 3; i++ {
		got := run(true)
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("concurrent snapshot %d differs from serial reference:\ngot  %+v\nwant %+v", i, got, serial)
		}
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	reg := NewRegistry(2)
	m := NewMetrics(reg)
	m.Executions.Add(0, 10)
	m.Executions.Add(1, 5)
	m.CurrentRound.Set(3)
	m.ExecSteps.Observe(0, 75)
	m.ExecSteps.Observe(1, 120)
	var b strings.Builder
	if err := reg.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dfence_executions counter",
		"dfence_executions_total 15",
		"dfence_current_round 3",
		`dfence_exec_steps_bucket{le="100"} 1`,
		`dfence_exec_steps_bucket{le="+Inf"} 2`,
		"dfence_exec_steps_sum 195",
		"dfence_exec_steps_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("output does not end with # EOF")
	}
}

// TestNilMetricsView: the all-nil view every disabled-telemetry hot path
// records into must be inert.
func TestNilMetricsView(t *testing.T) {
	var m *Metrics
	v := m.View()
	v.Executions.Inc(0)
	v.CurrentRound.Set(5)
	v.ExecSteps.Observe(0, 100)
	// Nothing to assert beyond "did not panic": all handles are nil no-ops.
}
