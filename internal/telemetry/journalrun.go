// Journal post-processing for `dfence explain`: fold a decoded event
// stream into the pieces needed to re-render witnesses — the run
// configuration, every journaled violation, and the fences present in
// the program at each round.
package telemetry

import (
	"dfence/internal/memmodel"
	"dfence/internal/sched"
)

// JournalRun is the folded view of one journal.
type JournalRun struct {
	Start      *RunStart
	Violations []Violation
	// InsertsByRound holds the fences each round's FenceChange inserted.
	InsertsByRound map[int][]Fence
	// roundOrder preserves insertion-event order for FencesBefore.
	roundOrder []int
	Converged  *Converged
}

// SummarizeJournal folds events (as returned by ReadJournal) into a
// JournalRun.
func SummarizeJournal(events []Event) *JournalRun {
	jr := &JournalRun{InsertsByRound: map[int][]Fence{}}
	for _, e := range events {
		switch ev := e.(type) {
		case RunStart:
			s := ev
			jr.Start = &s
		case Violation:
			jr.Violations = append(jr.Violations, ev)
		case FenceChange:
			if ev.Action == "insert" {
				if _, seen := jr.InsertsByRound[ev.Round]; !seen {
					jr.roundOrder = append(jr.roundOrder, ev.Round)
				}
				jr.InsertsByRound[ev.Round] = append(jr.InsertsByRound[ev.Round], ev.Fences...)
			}
		case Converged:
			c := ev
			jr.Converged = &c
		}
	}
	return jr
}

// FencesBefore returns, in insertion order, the fences the synthesis had
// inserted before the given round began — the set present in the program
// a round-N witness ran against.
func (jr *JournalRun) FencesBefore(round int) []Fence {
	var out []Fence
	for _, r := range jr.roundOrder {
		if r < round {
			out = append(out, jr.InsertsByRound[r]...)
		}
	}
	return out
}

// Witnesses returns the journaled violations that carry a trace (the
// explainable ones).
func (jr *JournalRun) Witnesses() []Violation {
	var out []Violation
	for _, v := range jr.Violations {
		if len(v.Trace) > 0 {
			out = append(out, v)
		}
	}
	return out
}

// TraceFrom rebuilds a sched.Trace from journaled decisions — the
// inverse of TraceOf.
func TraceFrom(ds []TraceDecision, model memmodel.Model) *sched.Trace {
	tr := &sched.Trace{Model: model}
	for _, d := range ds {
		tr.Decisions = append(tr.Decisions, sched.Decision{
			Thread: d.Thread, Flush: d.Flush, Addr: d.Addr, Steps: d.Steps,
		})
	}
	return tr
}
