// Package eval regenerates the paper's evaluation artifacts: Table 2
// (benchmark inventory), Table 3 (inferred fences per benchmark ×
// specification × memory model), Figure 4 (inferred fences vs executions
// per round, multi-round vs one round), and Figure 5 (synthesized fences
// vs flush probability). The cmd/experiments binary and the repository's
// benchmark harness both drive this package.
package eval

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dfence/internal/core"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/spec"
	"dfence/internal/synth"
	"dfence/internal/telemetry"
	"dfence/internal/trace"
)

// Options tunes an evaluation run. Zero values select the paper's
// settings.
type Options struct {
	// ExecsPerRound is K (default 1000; §6.3.2).
	ExecsPerRound int
	// MaxRounds bounds repair rounds (default 10).
	MaxRounds int
	// Seed makes everything deterministic (default 1).
	Seed int64
	// Validate prunes redundant fences after convergence (default true in
	// the Table 3 runs).
	Validate bool
	// FlushProbTSO / FlushProbPSO override the scheduler flush
	// probabilities (defaults 0.1 / 0.5 — §6.5).
	FlushProbTSO float64
	FlushProbPSO float64
	// Workers is the parallel execution engine's worker count, passed
	// through to core.Config.Workers (0 = NumCPU). Every artifact is
	// bit-identical for any value.
	Workers int
	// ExecTimeout and Deadline pass through to the matching core.Config
	// budgets (0 = none) so long table runs degrade to partial, clearly
	// flagged cells instead of hanging.
	ExecTimeout time.Duration
	Deadline    time.Duration
	// JournalDir, when non-empty, writes one JSONL run journal per cell
	// to <JournalDir>/<bench>_<criterion>_<model>.jsonl — the per-cell
	// provenance of a Table 3 artifact, each replayable with
	// `dfence explain`.
	JournalDir string
	// Metrics and Sink pass through to every cell's core.Config: one
	// registry accumulates across the whole table, and Sink (e.g. a
	// telemetry.Status feeding /runz) sees every cell's events in
	// addition to the per-cell journal.
	Metrics *telemetry.Metrics
	Sink    telemetry.Sink
	// Tracer, when non-nil, records every cell's spans into one shared
	// trace (cells are sequential, so round spans never interleave).
	Tracer *trace.Tracer
}

func (o *Options) fill() {
	if o.ExecsPerRound <= 0 {
		o.ExecsPerRound = 1000
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FlushProbTSO <= 0 {
		o.FlushProbTSO = 0.1
	}
	if o.FlushProbPSO <= 0 {
		o.FlushProbPSO = 0.5
	}
}

func (o *Options) flushFor(m memmodel.Model) float64 {
	if m == memmodel.TSO {
		return o.FlushProbTSO
	}
	return o.FlushProbPSO
}

// FenceDesc renders one inferred fence the way Table 3 does: method plus
// the source lines the fence sits between. The canonical type lives in
// core (the unified Result renderer uses it); the alias preserves this
// package's historical API.
type FenceDesc = core.FenceDesc

// DescribeFence locates a synthesized fence in source terms.
func DescribeFence(p *ir.Program, f synth.InsertedFence) FenceDesc {
	return core.DescribeFence(p, f)
}

// Cell is one Table 3 cell: the outcome of synthesis for one benchmark
// under one (criterion, model) pair.
type Cell struct {
	Fences      []FenceDesc
	Converged   bool
	Unfixable   bool
	Outcome     core.Outcome
	Synthesized int // before validation
	Executions  int
	// Inconclusive counts the executions of the run that produced no
	// verdict (step-limit hits, timeouts, panics) or never ran; Coverage is
	// the conclusive fraction of the run's total execution budget. Together
	// they qualify the cell: a "-" or "?" backed by 20% coverage says far
	// less than one backed by 100%.
	Inconclusive int
	Coverage     float64
}

// String renders the cell Table 3 style: "0" for no fences, "-" for
// cannot-satisfy, "?" for an inconclusive run (round budget exhausted, or
// too many executions cut off for a clean round to count), "!" for a run
// aborted by the deadline.
func (c Cell) String() string {
	if c.Unfixable {
		return "-"
	}
	if !c.Converged {
		if c.Outcome == core.OutcomeAborted {
			return "!"
		}
		return "?"
	}
	if len(c.Fences) == 0 {
		return "0"
	}
	parts := make([]string, len(c.Fences))
	for i, f := range c.Fences {
		parts[i] = f.String()
	}
	return strings.Join(parts, " ")
}

// Row is one Table 3 row.
type Row struct {
	Benchmark *progs.Benchmark
	// Cells indexed by [criterion][model]: criteria MemorySafety, SC, Lin;
	// models TSO, PSO.
	Cells map[spec.Criterion]map[memmodel.Model]Cell
	// Size metrics (Table 3's last columns).
	SourceLOC       int
	IRInstrs        int
	InsertionPoints int
}

// criteria lists Table 3's specification columns in order.
var criteria = []spec.Criterion{spec.MemorySafety, spec.SeqConsistency, spec.Linearizability}

// models lists Table 3's memory-model sub-columns in order.
var models = []memmodel.Model{memmodel.TSO, memmodel.PSO}

// SynthesizeCell runs fence synthesis for one cell.
func SynthesizeCell(b *progs.Benchmark, crit spec.Criterion, model memmodel.Model, o Options) (Cell, error) {
	o.fill()
	cfg := core.Config{
		Model:            model,
		Criterion:        crit,
		NewSpec:          b.NewSpec(),
		CheckGarbage:     b.CheckGarbage,
		RelaxStealAborts: b.RelaxStealAborts,
		ExecsPerRound:    o.ExecsPerRound,
		MaxRounds:        o.MaxRounds,
		FlushProb:        o.flushFor(model),
		Seed:             o.Seed,
		Workers:          o.Workers,
		ValidateFences:   o.Validate,
		ExecTimeout:      o.ExecTimeout,
		Deadline:         o.Deadline,
		Metrics:          o.Metrics,
		Tracer:           o.Tracer,
	}
	sink := o.Sink
	var journal *telemetry.Journal
	if o.JournalDir != "" {
		path := filepath.Join(o.JournalDir, fmt.Sprintf("%s_%v_%v.jsonl", b.Name, crit, model))
		var jerr error
		journal, jerr = telemetry.CreateJournal(path)
		if jerr != nil {
			return Cell{}, jerr
		}
		sink = telemetry.MultiSink(sink, journal)
	}
	cfg.Sink = sink
	telemetry.Emit(sink, telemetry.RunStart{
		Model:     model.String(),
		Criterion: crit.String(),
		SeqSpec:   b.SpecName,
		Seed:      o.Seed,
		Execs:     o.ExecsPerRound,
		MaxRounds: o.MaxRounds,
		FlushProb: o.flushFor(model),
		Workers:   o.Workers,
		Builtin:   b.Name,
	})
	res, err := core.Synthesize(b.Program(), cfg)
	if journal != nil {
		if cerr := journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return Cell{}, err
	}
	return cellFrom(res), nil
}

func cellFrom(res *core.Result) Cell {
	c := Cell{
		Converged:    res.Converged,
		Unfixable:    res.Unfixable,
		Outcome:      res.Outcome,
		Synthesized:  res.SynthesizedFences,
		Executions:   res.TotalExecutions,
		Inconclusive: res.TotalInconclusive,
		Coverage:     1,
	}
	skipped := 0
	for _, r := range res.Rounds {
		skipped += r.Skipped
	}
	if budget := res.TotalExecutions + skipped; budget > 0 {
		c.Coverage = float64(budget-res.TotalInconclusive) / float64(budget)
	}
	for _, f := range res.Fences {
		c.Fences = append(c.Fences, DescribeFence(res.Program, f))
	}
	sort.Slice(c.Fences, func(i, j int) bool {
		a, b := c.Fences[i], c.Fences[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.LineBefore < b.LineBefore
	})
	return c
}

// Table3 runs the full Table 3 matrix. Benchmarks whose SC/linearizability
// specifications are future work (the iWSQs) get "-" in those columns
// without running, as in the paper.
func Table3(benchmarks []*progs.Benchmark, o Options) ([]Row, error) {
	o.fill()
	var rows []Row
	for _, b := range benchmarks {
		p := b.Program()
		row := Row{
			Benchmark:       b,
			Cells:           map[spec.Criterion]map[memmodel.Model]Cell{},
			SourceLOC:       b.SourceLOC(),
			IRInstrs:        p.CountInstrs(),
			InsertionPoints: p.CountStores(),
		}
		for _, crit := range criteria {
			row.Cells[crit] = map[memmodel.Model]Cell{}
			for _, m := range models {
				if b.SkipSeqCheck && crit != spec.MemorySafety {
					row.Cells[crit][m] = Cell{Unfixable: true, Outcome: core.OutcomeUnfixable, Coverage: 1}
					continue
				}
				cell, err := SynthesizeCell(b, crit, m, o)
				if err != nil {
					return nil, fmt.Errorf("%s %v/%v: %w", b.Name, crit, m, err)
				}
				row.Cells[crit][m] = cell
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable3 renders rows as text.
func FormatTable3(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s | %-28s | %-44s | %-44s | %5s %5s %5s\n",
		"Benchmark", "Memory Safety (TSO | PSO)", "Sequential Consistency (TSO | PSO)",
		"Linearizability (TSO | PSO)", "SLOC", "IR", "Ins")
	b.WriteString(strings.Repeat("-", 170) + "\n")
	for _, r := range rows {
		cell := func(c spec.Criterion) string {
			return r.Cells[c][memmodel.TSO].String() + " | " + r.Cells[c][memmodel.PSO].String()
		}
		fmt.Fprintf(&b, "%-14s | %-28s | %-44s | %-44s | %5d %5d %5d\n",
			r.Benchmark.Name, cell(spec.MemorySafety), cell(spec.SeqConsistency),
			cell(spec.Linearizability), r.SourceLOC, r.IRInstrs, r.InsertionPoints)
	}
	// Coverage notes: cells whose runs had inconclusive or skipped
	// executions, so a "-"/"?"/"!" can be weighed by how much of the
	// execution budget actually produced verdicts.
	notes := ""
	for _, r := range rows {
		for _, crit := range criteria {
			for _, m := range models {
				c := r.Cells[crit][m]
				if c.Inconclusive == 0 {
					continue
				}
				notes += fmt.Sprintf("  %s %v/%v: %s with %.0f%% conclusive coverage (%d inconclusive)\n",
					r.Benchmark.Name, crit, m, c.String(), 100*c.Coverage, c.Inconclusive)
			}
		}
	}
	if notes != "" {
		b.WriteString("coverage:\n" + notes)
	}
	return b.String()
}

// Table2 renders the benchmark inventory.
func Table2(benchmarks []*progs.Benchmark) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-28s %-10s %s\n", "Name", "Paper name", "Spec", "Notes")
	for _, bm := range benchmarks {
		notes := ""
		if bm.CheckGarbage {
			notes = "idempotent: no-garbage + memory safety only"
		}
		fmt.Fprintf(&b, "%-14s %-28s %-10s %s\n", bm.Name, bm.Paper, bm.SpecName, notes)
	}
	return b.String()
}
