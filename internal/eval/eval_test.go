package eval

import (
	"strings"
	"testing"

	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/spec"
)

// fastOpts keeps the evaluation tests quick while still converging.
func fastOpts() Options {
	return Options{ExecsPerRound: 400, MaxRounds: 8, Seed: 1, Validate: true}
}

func TestSynthesizeCellChaseLevTSO(t *testing.T) {
	b, err := progs.ByName("chase-lev")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := SynthesizeCell(b, spec.SeqConsistency, memmodel.TSO, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !cell.Converged {
		t.Fatal("did not converge")
	}
	if len(cell.Fences) != 1 {
		t.Fatalf("fences = %v, want exactly F1", cell.Fences)
	}
	f := cell.Fences[0]
	if f.Func != "take" {
		t.Errorf("F1 in %s, want take", f.Func)
	}
	s := cell.String()
	if !strings.Contains(s, "(take,") {
		t.Errorf("cell string %q does not mention take", s)
	}
}

func TestSynthesizeCellChaseLevPSO(t *testing.T) {
	b, _ := progs.ByName("chase-lev")
	// The F1 mechanism is rare under PSO/SC: use the paper's full K=1000
	// budget (the Figure 4 lesson — small K under-infers).
	o := fastOpts()
	o.ExecsPerRound = 1000
	cell, err := SynthesizeCell(b, spec.SeqConsistency, memmodel.PSO, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cell.Fences) != 2 {
		t.Fatalf("fences = %v, want F1+F2", cell.Fences)
	}
	funcs := map[string]bool{}
	for _, f := range cell.Fences {
		funcs[f.Func] = true
	}
	if !funcs["put"] || !funcs["take"] {
		t.Errorf("expected fences in put and take, got %v", cell.Fences)
	}
}

func TestCellStringForms(t *testing.T) {
	if got := (Cell{Converged: true}).String(); got != "0" {
		t.Errorf("empty converged cell = %q, want 0", got)
	}
	if got := (Cell{Unfixable: true}).String(); got != "-" {
		t.Errorf("unfixable cell = %q, want -", got)
	}
	c := Cell{Converged: true, Fences: []FenceDesc{{Func: "put", LineBefore: 4, LineAfter: 5}}}
	if got := c.String(); got != "(put, 4:5)" {
		t.Errorf("cell = %q", got)
	}
	end := Cell{Converged: true, Fences: []FenceDesc{{Func: "put", LineBefore: 5}}}
	if got := end.String(); got != "(put, 5:-)" {
		t.Errorf("method-end cell = %q", got)
	}
}

func TestTable3SingleRow(t *testing.T) {
	b, _ := progs.ByName("lifo-wsq")
	rows, err := Table3([]*progs.Benchmark{b}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.SourceLOC == 0 || r.IRInstrs == 0 || r.InsertionPoints == 0 {
		t.Error("size metrics missing")
	}
	// TSO columns all clean, PSO SC/lin have the put fence.
	if got := r.Cells[spec.SeqConsistency][memmodel.TSO].String(); got != "0" {
		t.Errorf("SC/TSO = %q, want 0", got)
	}
	if got := r.Cells[spec.SeqConsistency][memmodel.PSO].String(); !strings.Contains(got, "(put,") {
		t.Errorf("SC/PSO = %q, want a put fence", got)
	}
	text := FormatTable3(rows)
	if !strings.Contains(text, "lifo-wsq") {
		t.Error("formatted table missing benchmark name")
	}
}

func TestTable3SkipsIWSQSeqColumns(t *testing.T) {
	b, _ := progs.ByName("lifo-iwsq")
	rows, err := Table3([]*progs.Benchmark{b}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0].Cells[spec.SeqConsistency][memmodel.TSO].String(); got != "-" {
		t.Errorf("iWSQ SC column = %q, want -", got)
	}
	if got := rows[0].Cells[spec.Linearizability][memmodel.PSO].String(); got != "-" {
		t.Errorf("iWSQ lin column = %q, want -", got)
	}
	if got := rows[0].Cells[spec.MemorySafety][memmodel.TSO].String(); got == "-" {
		t.Error("iWSQ memory-safety column must run")
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	o := Options{ExecsPerRound: 0, Seed: 1}
	pts, err := Fig4([]int{100, 500}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Multi-round at K=500 must converge and find at least as many fences
	// as one-round at K=500.
	var multi500, one500 Fig4Point
	for _, p := range pts {
		if p.ExecsPerRound == 500 {
			if p.OneRound {
				one500 = p
			} else {
				multi500 = p
			}
		}
	}
	if !multi500.Converged {
		t.Error("multi-round K=500 did not converge")
	}
	if one500.Converged {
		t.Error("one-round mode claimed convergence (it never verifies)")
	}
	if multi500.Fences < one500.Fences {
		t.Errorf("multi-round found %d fences, one-round %d — repair-per-round should find at least as many", multi500.Fences, one500.Fences)
	}
	if !strings.Contains(FormatFig4(pts), "one-round") {
		t.Error("formatting broken")
	}
}

func TestFig5ExposureFallsWithFlushProb(t *testing.T) {
	o := Options{ExecsPerRound: 400, Seed: 1}
	pts, err := Fig5([]float64{0.1, 0.9}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Violations <= pts[1].Violations {
		t.Errorf("round-1 violations: flush 0.1 -> %d, 0.9 -> %d; want strictly more at low flush", pts[0].Violations, pts[1].Violations)
	}
	if !strings.Contains(FormatFig5(pts), "flushProb") {
		t.Error("formatting broken")
	}
}

func TestSchedulerSweep(t *testing.T) {
	res, err := SchedulerSweep("chase-lev", memmodel.PSO, spec.SeqConsistency, []float64{0.3, 0.9}, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0.3] <= res[0.9] {
		t.Errorf("sweep: %d at 0.3 vs %d at 0.9 — expected more exposure at lower flush probability", res[0.3], res[0.9])
	}
	if _, err := SchedulerSweep("nope", memmodel.PSO, spec.SeqConsistency, nil, 1, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestTable2Lists13(t *testing.T) {
	text := Table2(progs.All())
	for _, want := range []string{"chase-lev", "michael-alloc", "harris-set", "idempotent"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestSynthesizeCellMSNQueue(t *testing.T) {
	b, _ := progs.ByName("msn-queue")
	// TSO needs nothing; PSO needs the node-init fence in enqueue (the
	// paper's (enqueue, E3:E4)).
	tso, err := SynthesizeCell(b, spec.SeqConsistency, memmodel.TSO, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if tso.String() != "0" {
		t.Errorf("MSN TSO = %q, want 0", tso.String())
	}
	pso, err := SynthesizeCell(b, spec.SeqConsistency, memmodel.PSO, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pso.Fences) != 1 || pso.Fences[0].Func != "enqueue" {
		t.Errorf("MSN PSO = %q, want one enqueue fence", pso.String())
	}
}

func TestSynthesizeCellHarrisSet(t *testing.T) {
	b, _ := progs.ByName("harris-set")
	pso, err := SynthesizeCell(b, spec.SeqConsistency, memmodel.PSO, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pso.Fences) != 1 || pso.Fences[0].Func != "add" {
		t.Errorf("Harris PSO = %q, want one add fence (the paper's insert,8:9)", pso.String())
	}
}

func TestSynthesizeCellLockBasedClean(t *testing.T) {
	for _, name := range []string{"ms2-queue", "lazylist-set"} {
		b, _ := progs.ByName(name)
		cell, err := SynthesizeCell(b, spec.Linearizability, memmodel.PSO, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		if cell.String() != "0" {
			t.Errorf("%s lin/PSO = %q, want 0 (lock barriers suffice)", name, cell.String())
		}
	}
}
