package eval

import (
	"fmt"
	"strings"

	"dfence/internal/core"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/spec"
)

// Fig4Point is one point of Figure 4: how many fences synthesis infers for
// the subject benchmark given K executions per round, in multi-round mode
// (repair after each batch of K) or one-round mode (gather everything,
// repair once).
type Fig4Point struct {
	ExecsPerRound int
	OneRound      bool
	Fences        int
	Rounds        int
	Executions    int
	Converged     bool
	Outcome       core.Outcome
	Inconclusive  int
}

// Fig4Subject is the paper's Figure 4 configuration: Cilk's THE under the
// sequential-consistency specification on PSO.
const Fig4Subject = "cilk-the"

// Fig4 sweeps executions-per-round for both modes. expected is the number
// of fences a converged multi-round run infers (3 for THE); one-round runs
// report however many they manage with a single repair.
func Fig4(ks []int, o Options) ([]Fig4Point, error) {
	o.fill()
	b, err := progs.ByName(Fig4Subject)
	if err != nil {
		return nil, err
	}
	var out []Fig4Point
	for _, mode := range []bool{false, true} { // multi-round, then one-round
		for _, k := range ks {
			cfg := core.Config{
				Model:            memmodel.PSO,
				Criterion:        spec.SeqConsistency,
				NewSpec:          b.NewSpec(),
				RelaxStealAborts: b.RelaxStealAborts,
				ExecsPerRound:    k,
				MaxRounds:        10,
				FlushProb:        o.FlushProbPSO,
				Seed:             o.Seed,
				Workers:          o.Workers,
			}
			if mode {
				cfg.MaxRounds = 1
			}
			res, err := core.Synthesize(b.Program(), cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig4Point{
				ExecsPerRound: k,
				OneRound:      mode,
				Fences:        res.SynthesizedFences,
				Rounds:        len(res.Rounds),
				Executions:    res.TotalExecutions,
				Converged:     res.Converged,
				Outcome:       res.Outcome,
				Inconclusive:  res.TotalInconclusive,
			})
		}
	}
	return out, nil
}

// FormatFig4 renders the sweep.
func FormatFig4(pts []Fig4Point) string {
	var b strings.Builder
	b.WriteString("Figure 4: inferred fences vs executions per round (Cilk THE, SC, PSO)\n")
	fmt.Fprintf(&b, "%-12s %-14s %-8s %-8s %-12s %-14s %-8s\n", "mode", "execs/round", "fences", "rounds", "total execs", "outcome", "inconcl")
	for _, p := range pts {
		mode := "multi-round"
		if p.OneRound {
			mode = "one-round"
		}
		fmt.Fprintf(&b, "%-12s %-14d %-8d %-8d %-12d %-14v %-8d\n", mode, p.ExecsPerRound, p.Fences, p.Rounds, p.Executions, p.Outcome, p.Inconclusive)
	}
	return b.String()
}

// Fig5Point is one point of Figure 5: fences synthesized at a given flush
// probability, split into necessary (survive validation) and redundant.
type Fig5Point struct {
	FlushProb   float64
	Synthesized int
	Needed      int
	Redundant   int
	Violations  int // violations observed in the first round (exposure)
}

// Fig5 sweeps the flush probability for the Figure 5 subject (Cilk THE,
// SC, PSO, K=1000): low probabilities over-fence (redundant predicates
// recur in most buggy executions), high probabilities under-expose.
func Fig5(ps []float64, o Options) ([]Fig5Point, error) {
	return Fig5For(Fig4Subject, spec.SeqConsistency, ps, o)
}

// Fig5For runs the Figure 5 sweep for any benchmark and criterion (the
// redundancy effect is most visible on benchmarks with several distinct
// violation mechanisms, e.g. chase-lev under linearizability).
func Fig5For(bench string, crit spec.Criterion, ps []float64, o Options) ([]Fig5Point, error) {
	o.fill()
	b, err := progs.ByName(bench)
	if err != nil {
		return nil, err
	}
	var out []Fig5Point
	for _, fp := range ps {
		cfg := core.Config{
			Model:            memmodel.PSO,
			Criterion:        crit,
			NewSpec:          b.NewSpec(),
			CheckGarbage:     b.CheckGarbage,
			RelaxStealAborts: b.RelaxStealAborts,
			ExecsPerRound:    o.ExecsPerRound,
			MaxRounds:        o.MaxRounds,
			FlushProb:        fp,
			Seed:             o.Seed,
			Workers:          o.Workers,
			ValidateFences:   true,
		}
		res, err := core.Synthesize(b.Program(), cfg)
		if err != nil {
			return nil, err
		}
		pt := Fig5Point{
			FlushProb:   fp,
			Synthesized: res.SynthesizedFences,
			Needed:      len(res.Fences),
			Redundant:   res.Redundant,
		}
		if len(res.Rounds) > 0 {
			pt.Violations = res.Rounds[0].Violations
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatFig5 renders the sweep.
func FormatFig5(pts []Fig5Point) string {
	return FormatFig5Titled("Cilk THE, SC, PSO", pts)
}

// FormatFig5Titled renders the sweep with a custom subject description.
func FormatFig5Titled(subject string, pts []Fig5Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: synthesized fences vs flush probability (%s)\n", subject)
	fmt.Fprintf(&b, "%-10s %-12s %-8s %-10s %-18s\n", "flushProb", "synthesized", "needed", "redundant", "round-1 violations")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-10.2f %-12d %-8d %-10d %-18d\n", p.FlushProb, p.Synthesized, p.Needed, p.Redundant, p.Violations)
	}
	return b.String()
}

// SchedulerSweep measures violation exposure vs flush probability for any
// benchmark — the §6.5 study of scheduler vs memory model.
func SchedulerSweep(bench string, model memmodel.Model, crit spec.Criterion, ps []float64, runs int, seed int64) (map[float64]int, error) {
	b, err := progs.ByName(bench)
	if err != nil {
		return nil, err
	}
	out := make(map[float64]int, len(ps))
	for _, fp := range ps {
		cfg := core.Config{
			Model:            model,
			Criterion:        crit,
			NewSpec:          b.NewSpec(),
			CheckGarbage:     b.CheckGarbage,
			RelaxStealAborts: b.RelaxStealAborts,
			FlushProb:        fp,
			Seed:             seed,
		}
		out[fp] = core.CheckOnly(b.Program(), cfg, runs)
	}
	return out, nil
}
