package faultinject_test

import (
	"testing"
	"time"

	"dfence/internal/core"
	"dfence/internal/faultinject"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/spec"
)

// buildSB builds the store-buffering litmus with an assertion that fails
// when both loads bypass both stores — the standard violating workload the
// resilience tests run synthesis on.
func buildSB(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	for _, g := range []string{"x", "y", "r1", "r2"} {
		if err := p.AddGlobal(&ir.Global{Name: g, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(name, st, ld, out string) {
		b := ir.NewFuncBuilder(p, name, 0)
		sa := b.GlobalAddr(st)
		one := b.Const(1)
		b.Store(sa, one, st)
		la := b.GlobalAddr(ld)
		v, _ := b.Load(la, ld)
		oa := b.GlobalAddr(out)
		b.Store(oa, v, out)
		b.Ret()
		if _, err := b.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	mk("w1", "x", "y", "r1")
	mk("w2", "y", "x", "r2")
	b := ir.NewFuncBuilder(p, "main", 0)
	t1 := b.Fork("w1")
	t2 := b.Fork("w2")
	b.Join(t1)
	b.Join(t2)
	r1a := b.GlobalAddr("r1")
	r1, _ := b.Load(r1a, "r1")
	r2a := b.GlobalAddr("r2")
	r2, _ := b.Load(r2a, "r2")
	either := b.BinOp(ir.BinOr, r1, r2)
	b.Assert(either, "SB: both loads bypassed both stores")
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p
}

// buildLoops builds a violation-free two-thread program whose workers loop
// long enough (>1024 machine steps) for the scheduler's periodic budget
// check to observe a wall-clock timeout.
func buildLoops(t *testing.T, iters int64) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	for _, g := range []string{"x", "y"} {
		if err := p.AddGlobal(&ir.Global{Name: g, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(name, st, ld string) {
		b := ir.NewFuncBuilder(p, name, 0)
		sa := b.GlobalAddr(st)
		la := b.GlobalAddr(ld)
		i := b.Const(0)
		lim := b.Const(iters)
		one := b.Const(1)
		head := b.NextLabel()
		c := b.BinOp(ir.BinLt, i, lim)
		body, exit := b.CondBrF(c)
		body.Here()
		b.Store(sa, i, st)
		b.Load(la, ld)
		b.BinTo(i, ir.BinAdd, i, one)
		b.Br(head)
		exit.Here()
		b.Ret()
		if _, err := b.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	mk("w1", "x", "y")
	mk("w2", "y", "x")
	b := ir.NewFuncBuilder(p, "main", 0)
	t1 := b.Fork("w1")
	t2 := b.Fork("w2")
	b.Join(t1)
	b.Join(t2)
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p
}

// sbConfig is the shared synthesis configuration: TSO with FlushProb -1
// (explicitly 0), so stores stay buffered until forced and every worker's
// load deterministically triggers the observer — injected observer faults
// then fire on every chosen execution, independent of schedule randomness.
func sbConfig(workers int) core.Config {
	return core.Config{
		Model:         memmodel.TSO,
		Criterion:     spec.MemorySafety,
		ExecsPerRound: 64,
		MaxRounds:     8,
		Seed:          3,
		FlushProb:     -1,
		Workers:       workers,
	}
}

// TestPlanKind: the fault decision is a pure function of coordinates; At
// overrides Rate; rate 0 and >=1 behave as never/always.
func TestPlanKind(t *testing.T) {
	p := faultinject.NewPlan(11).
		Rate(faultinject.ExhaustSteps, 0.5).
		At(2, 7, faultinject.Panic).
		At(2, 8, faultinject.None)
	if got := p.Kind(2, 7); got != faultinject.Panic {
		t.Errorf("At(2,7): got %v, want panic", got)
	}
	if got := p.Kind(2, 8); got != faultinject.None {
		t.Errorf("At(2,8) pinned to none, got %v", got)
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		k := p.Kind(0, i)
		if k != p.Kind(0, i) {
			t.Fatal("Kind is not deterministic")
		}
		if k == faultinject.ExhaustSteps {
			hits++
		}
	}
	if hits < 300 || hits > 700 {
		t.Errorf("rate 0.5 hit %d/1000 executions", hits)
	}
	always := faultinject.NewPlan(1).Rate(faultinject.Slow, 1.1)
	never := faultinject.NewPlan(1).Rate(faultinject.Slow, 0)
	for i := 0; i < 100; i++ {
		if always.Kind(0, i) != faultinject.Slow {
			t.Fatal("rate 1.1 missed an execution")
		}
		if never.Kind(0, i) != faultinject.None {
			t.Fatal("rate 0 injected a fault")
		}
	}
}

// TestPanicContained is the acceptance scenario: a panic injected into one
// synthesis execution is recovered into a structured error naming its
// round, index, and seed, the round's accounting shows it, and synthesis
// still converges on the same fences as a fault-free run — for any worker
// count.
func TestPanicContained(t *testing.T) {
	const round, index = 0, 5
	baseline, err := core.Synthesize(buildSB(t), sbConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Converged {
		t.Fatalf("baseline did not converge: %s", baseline.Summary())
	}
	plan := faultinject.NewPlan(0).At(round, index, faultinject.Panic)
	for _, workers := range []int{1, 4} {
		cfg := sbConfig(workers)
		cfg.OptionsHook = plan.Hook()
		res, err := core.Synthesize(buildSB(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ExecErrors) != 1 {
			t.Fatalf("workers=%d: %d exec errors, want 1: %s", workers, len(res.ExecErrors), res.Summary())
		}
		e := res.ExecErrors[0]
		wantSeed := cfg.Seed + int64(round)*int64(cfg.ExecsPerRound) + index
		if e.Round != round || e.Index != index || e.Seed != wantSeed {
			t.Errorf("workers=%d: error at round %d index %d seed %d, want %d/%d/%d",
				workers, e.Round, e.Index, e.Seed, round, index, wantSeed)
		}
		if e.Panic != faultinject.PanicPayload || e.Stack == "" {
			t.Errorf("workers=%d: error payload incomplete: %+v", workers, e)
		}
		if res.Rounds[0].Errors != 1 || res.Rounds[0].Inconclusive != 1 {
			t.Errorf("workers=%d: round 0 counted %d errors, %d inconclusive, want 1/1",
				workers, res.Rounds[0].Errors, res.Rounds[0].Inconclusive)
		}
		if !res.Converged || res.Outcome != core.OutcomeConverged {
			t.Fatalf("workers=%d: faulted run did not converge: %s", workers, res.Summary())
		}
		if len(res.Fences) != len(baseline.Fences) {
			t.Fatalf("workers=%d: %d fences, baseline has %d", workers, len(res.Fences), len(baseline.Fences))
		}
		for i := range res.Fences {
			if res.Fences[i] != baseline.Fences[i] {
				t.Errorf("workers=%d: fence %d is %v, baseline %v", workers, i, res.Fences[i], baseline.Fences[i])
			}
		}
	}
}

// TestExhaustedRoundsAreInconclusive: when every execution exhausts its
// step budget, no round sees a violation — but the result must be
// OutcomeInconclusive, never vacuous convergence.
func TestExhaustedRoundsAreInconclusive(t *testing.T) {
	cfg := sbConfig(4)
	cfg.ExecsPerRound = 8
	cfg.MaxRounds = 3
	cfg.OptionsHook = faultinject.NewPlan(0).Rate(faultinject.ExhaustSteps, 1.1).Hook()
	res, err := core.Synthesize(buildSB(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Outcome != core.OutcomeInconclusive {
		t.Fatalf("all-exhausted run reported converged=%v outcome=%v: %s",
			res.Converged, res.Outcome, res.Summary())
	}
	if len(res.Rounds) != cfg.MaxRounds {
		t.Errorf("ran %d rounds, want all %d (vacuous rounds must not terminate the loop)",
			len(res.Rounds), cfg.MaxRounds)
	}
	want := cfg.ExecsPerRound * cfg.MaxRounds
	if res.TotalInconclusive != want {
		t.Errorf("TotalInconclusive = %d, want %d", res.TotalInconclusive, want)
	}
	for i, r := range res.Rounds {
		if r.Violations != 0 || r.Inconclusive != cfg.ExecsPerRound || r.ConclusiveFraction() != 0 {
			t.Errorf("round %d: %+v, want all-inconclusive", i, r)
		}
	}
}

// TestDeadlineAborts: an already-expired deadline skips every execution,
// keeps the partial round's statistics, and reports OutcomeAborted.
func TestDeadlineAborts(t *testing.T) {
	cfg := sbConfig(4)
	cfg.ExecsPerRound = 16
	cfg.Deadline = time.Nanosecond
	res, err := core.Synthesize(buildSB(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.OutcomeAborted || res.Converged {
		t.Fatalf("expired deadline gave converged=%v outcome=%v: %s",
			res.Converged, res.Outcome, res.Summary())
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("kept %d rounds, want the 1 partial round", len(res.Rounds))
	}
	r := res.Rounds[0]
	if r.Skipped != cfg.ExecsPerRound || r.Executions != 0 {
		t.Errorf("partial round: %d skipped, %d executed, want %d/0", r.Skipped, r.Executions, cfg.ExecsPerRound)
	}
	if res.TotalInconclusive != cfg.ExecsPerRound {
		t.Errorf("TotalInconclusive = %d, want %d", res.TotalInconclusive, cfg.ExecsPerRound)
	}
}

// TestSlowExecutionTimesOut: a stalled execution is cut by ExecTimeout and
// counted inconclusive, while the other executions of the round complete
// and the run still converges (the program is violation-free).
func TestSlowExecutionTimesOut(t *testing.T) {
	// Margins: an unfaulted execution of the 200-iteration loop takes a few
	// ms (tens of ms under -race), far under the 400ms budget; the stalled
	// one sleeps 5ms per shared access, so by the scheduler's first
	// periodic budget check (step 1024, ~170 loads in) it has slept ~850ms
	// — over the budget regardless of machine load, since sleeping needs no
	// CPU.
	plan := faultinject.NewPlan(0).At(0, 2, faultinject.Slow)
	plan.SlowDelay = 5 * time.Millisecond
	cfg := sbConfig(4)
	cfg.ExecsPerRound = 16
	cfg.MaxRounds = 2
	cfg.ExecTimeout = 400 * time.Millisecond
	cfg.OptionsHook = plan.Hook()
	res, err := core.Synthesize(buildLoops(t, 200), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[0].Inconclusive != 1 {
		t.Fatalf("round 0 counted %d inconclusive, want the 1 stalled execution: %s",
			res.Rounds[0].Inconclusive, res.Summary())
	}
	if res.Rounds[0].Errors != 0 {
		t.Errorf("timeout misreported as an error: %s", res.Summary())
	}
	if !res.Converged || res.Outcome != core.OutcomeConverged {
		t.Fatalf("violation-free run did not converge: %s", res.Summary())
	}
}

// TestRateDeterministicAcrossWorkers: a sampled plan injects the same
// faults into the same executions for every worker count, so the entire
// synthesis transcript matches.
func TestRateDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *core.Result {
		cfg := sbConfig(workers)
		cfg.ExecsPerRound = 32
		cfg.OptionsHook = faultinject.NewPlan(9).Rate(faultinject.ExhaustSteps, 0.4).Hook()
		res, err := core.Synthesize(buildSB(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	if a.Outcome != b.Outcome || a.TotalInconclusive != b.TotalInconclusive || len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("workers changed the outcome:\nserial:   %s\nparallel: %s", a.Summary(), b.Summary())
	}
	for i := range a.Rounds {
		ra, rb := a.Rounds[i], b.Rounds[i]
		if ra.Violations != rb.Violations || ra.Inconclusive != rb.Inconclusive || ra.Executions != rb.Executions {
			t.Errorf("round %d diverged: serial %+v, parallel %+v", i, ra, rb)
		}
	}
	if len(a.Fences) != len(b.Fences) {
		t.Fatalf("fences diverged: %d vs %d", len(a.Fences), len(b.Fences))
	}
	for i := range a.Fences {
		if a.Fences[i] != b.Fences[i] {
			t.Errorf("fence %d: %v vs %v", i, a.Fences[i], b.Fences[i])
		}
	}
}
