// Package faultinject is a deterministic fault-injection harness for the
// synthesis runtime. A Plan decides, purely from (Seed, round, index),
// which executions of a core.Synthesize run receive which fault, and
// compiles into a Config.OptionsHook. Because the decision is a pure
// function of the plan and the execution's coordinates — never of timing,
// worker identity, or completion order — the same plan injects the same
// faults into the same executions for every Config.Workers value, which is
// what lets the resilience tests assert that untouched executions are
// bit-identical to a fault-free run.
//
// Three fault kinds cover the failure modes the runtime must contain:
//
//   - Panic: the execution's observer panics mid-run — the model for a bug
//     in the interpreter, a collector, or a user-supplied observer. The
//     runtime must recover it into a structured sched.ExecError and leave
//     every other execution untouched.
//   - Slow: the execution's observer stalls on every shared access — the
//     model for a pathological schedule. With Config.ExecTimeout set, the
//     execution must be cut off and counted inconclusive.
//   - ExhaustSteps: the execution's step budget collapses to 1, forcing an
//     immediate step-limit hit — the model for livelock. The round must
//     count it inconclusive rather than "no violation".
package faultinject

import (
	"time"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/sched"
)

// Kind identifies a fault.
type Kind uint8

const (
	// None injects nothing.
	None Kind = iota
	// Panic makes the execution's observer panic on its first shared
	// access. Executions that never perform an observed shared access
	// (no same-thread pending stores to other addresses) escape the fault;
	// tests pin FlushProb to make the access deterministic.
	Panic
	// Slow makes the execution's observer sleep SlowDelay on every shared
	// access, so a configured ExecTimeout trips.
	Slow
	// ExhaustSteps overrides the execution's MaxSteps to 1, forcing an
	// immediate, deterministic step-limit hit.
	ExhaustSteps
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Slow:
		return "slow"
	case ExhaustSteps:
		return "exhaust-steps"
	}
	return "kind(?)"
}

// PanicPayload is the value injected panics carry, so tests (and operators
// reading ExecErrors) can tell an injected fault from a genuine bug.
const PanicPayload = "faultinject: injected panic"

type point struct{ round, index int }

// Plan is a deterministic fault schedule. Build one with NewPlan, register
// faults with At (explicit coordinates) and Rate (seed-driven sampling),
// then install Hook into core.Config.OptionsHook.
type Plan struct {
	// SlowDelay is the per-shared-access stall of Slow faults.
	// Zero selects 10ms.
	SlowDelay time.Duration

	seed   int64
	points map[point]Kind
	rates  []rate
}

type rate struct {
	kind Kind
	prob float64
}

// NewPlan returns an empty plan. seed parameterizes Rate's sampling; plans
// that only use At ignore it.
func NewPlan(seed int64) *Plan {
	return &Plan{seed: seed, points: make(map[point]Kind)}
}

// At injects kind into execution (round, index) of the synthesis. The last
// registration for a coordinate wins, and At beats Rate.
func (p *Plan) At(round, index int, kind Kind) *Plan {
	p.points[point{round, index}] = kind
	return p
}

// Rate injects kind into a pseudo-random prob fraction of executions,
// chosen by hashing (seed, round, index) — deterministic for a given plan,
// independent of worker count and completion order. Rates are consulted in
// registration order; the first that fires wins.
func (p *Plan) Rate(kind Kind, prob float64) *Plan {
	p.rates = append(p.rates, rate{kind: kind, prob: prob})
	return p
}

// Kind returns the fault this plan assigns to execution (round, index).
func (p *Plan) Kind(round, index int) Kind {
	if k, ok := p.points[point{round, index}]; ok {
		return k
	}
	for i, r := range p.rates {
		h := mix(uint64(p.seed) ^ uint64(round)<<32 ^ uint64(index) ^ uint64(i)<<56)
		// Top 53 bits -> uniform float64 in [0, 1).
		if float64(h>>11)/(1<<53) < r.prob {
			return r.kind
		}
	}
	return None
}

// Hook compiles the plan into a core.Config.OptionsHook. Faulted
// executions get their sched.Options rewritten (an observer wrapper for
// Panic/Slow, a MaxSteps override for ExhaustSteps); unfaulted executions
// pass through untouched, preserving bit-identity with a fault-free run.
func (p *Plan) Hook() func(round, index int, opts sched.Options) sched.Options {
	return func(round, index int, opts sched.Options) sched.Options {
		switch p.Kind(round, index) {
		case Panic:
			opts.Wrap = chainWrap(opts.Wrap, func(obs interp.Observer) interp.Observer {
				return &panicObserver{inner: obs}
			})
		case Slow:
			delay := p.SlowDelay
			if delay <= 0 {
				delay = 10 * time.Millisecond
			}
			opts.Wrap = chainWrap(opts.Wrap, func(obs interp.Observer) interp.Observer {
				return &slowObserver{inner: obs, delay: delay}
			})
		case ExhaustSteps:
			opts.MaxSteps = 1
		}
		return opts
	}
}

// chainWrap composes observer wrappers so a plan stacks on top of any
// wrapper already present in the options.
func chainWrap(prev, next func(interp.Observer) interp.Observer) func(interp.Observer) interp.Observer {
	if prev == nil {
		return next
	}
	return func(obs interp.Observer) interp.Observer { return next(prev(obs)) }
}

// mix is splitmix64's finalizer: a cheap, well-distributed 64-bit hash.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// panicObserver panics on the first shared access it sees.
type panicObserver struct{ inner interp.Observer }

func (o *panicObserver) OnSharedAccess(thread int, label ir.Label, kind interp.AccessKind, addr int64, pending []interp.PendingStore) {
	panic(PanicPayload)
}

// slowObserver stalls on every shared access, then delegates.
type slowObserver struct {
	inner interp.Observer
	delay time.Duration
}

func (o *slowObserver) OnSharedAccess(thread int, label ir.Label, kind interp.AccessKind, addr int64, pending []interp.PendingStore) {
	time.Sleep(o.delay)
	if o.inner != nil {
		o.inner.OnSharedAccess(thread, label, kind, addr, pending)
	}
}
