// Crash-restart harness: the process-death analogue of the package's
// per-execution faults. RunKilledAt simulates a SIGKILL landing right
// after a chosen round's checkpoint — the journal ends at that Checkpoint
// event, everything after it (including the terminal Converged) is lost —
// and Resume restarts synthesis from those journal bytes the way `dfence
// -resume` and dfenced do. The crash tests assert the resumed Result is
// bit-identical to an uninterrupted run's.
package faultinject

import (
	"bytes"
	"fmt"

	"dfence/internal/core"
	"dfence/internal/ir"
	"dfence/internal/telemetry"
)

// killSink wraps a journal and simulates process death at a round
// boundary: once it sees the Checkpoint for afterRound (or a later one),
// it closes kill — stopping the loop via Config.Interrupt — and drops
// every subsequent event. The drop matters as much as the stop:
// Synthesize journals a terminal Converged even for aborted runs, and a
// real SIGKILL-ed process would never have written it, so forwarding it
// would hand the resume path a journal no crash can produce.
type killSink struct {
	inner      telemetry.Sink
	afterRound int
	kill       chan struct{}
	dead       bool
}

func (k *killSink) Emit(e telemetry.Event) {
	if k.dead {
		return
	}
	k.inner.Emit(e)
	if cp, ok := e.(telemetry.Checkpoint); ok && cp.Round >= k.afterRound {
		k.dead = true
		close(k.kill)
	}
}

// RunKilledAt runs Synthesize on prog and kills it at the first round
// boundary with Round >= afterRound: the returned journal bytes end at
// that Checkpoint event, exactly what a crash-torn spool journal decodes
// to after ReadJournalOptions strips its torn tail. cfg.Sink and
// cfg.Interrupt are overridden. If the run finishes before ever reaching
// such a boundary (converged or exhausted MaxRounds first), killed is
// false and the journal holds the complete run.
func RunKilledAt(prog *ir.Program, cfg core.Config, afterRound int) (journal []byte, killed bool, err error) {
	var buf bytes.Buffer
	j := telemetry.NewJournal(&buf)
	ks := &killSink{inner: j, afterRound: afterRound, kill: make(chan struct{})}
	cfg.Sink = ks
	cfg.Interrupt = ks.kill
	res, err := core.Synthesize(prog, cfg)
	if err != nil {
		return nil, false, err
	}
	if err := j.Flush(); err != nil {
		return nil, false, err
	}
	if ks.dead && !res.Interrupted {
		return nil, false, fmt.Errorf("faultinject: kill fired at round %d but the run did not stop", afterRound)
	}
	return buf.Bytes(), ks.dead, nil
}

// Resume restarts a killed run from its journal bytes: decode tolerating
// a torn tail, fold the last checkpoint into a core.ResumeState, and run
// Synthesize on the same original program with the same config. This is
// the in-process twin of the `dfence -resume` / dfenced restart path.
func Resume(prog *ir.Program, cfg core.Config, journal []byte) (*core.Result, error) {
	events, _, err := telemetry.ReadJournalOptions(bytes.NewReader(journal), telemetry.ReadOptions{AllowTornTail: true})
	if err != nil {
		return nil, fmt.Errorf("faultinject: resume: %w", err)
	}
	rs, err := core.ResumeFromEvents(events)
	if err != nil {
		return nil, err
	}
	if rs == nil {
		return nil, fmt.Errorf("faultinject: resume: journal holds no checkpoint")
	}
	cfg.Sink = nil
	cfg.Interrupt = nil
	cfg.Resume = rs
	return core.Synthesize(prog, cfg)
}
