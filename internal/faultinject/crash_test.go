package faultinject

import (
	"fmt"
	"sync/atomic"
	"testing"

	"dfence/internal/core"
	"dfence/internal/ir"
	"dfence/internal/litmus"
	"dfence/internal/memmodel"
	"dfence/internal/progs"
	"dfence/internal/spec"
)

// crashKey summarizes a synthesis result's observable outcome, mirroring
// the determinism tests in internal/core: everything except wall-clock
// timings, cache counters, and the witness trace (which a resumed run
// deliberately does not re-capture — the journaled Violation event owns
// it).
func crashKey(res *core.Result) string {
	s := fmt.Sprintf("outcome=%v fences=%v synth=%d redundant=%d empty=%d execs=%d inconc=%d pruned=%d",
		res.Outcome, res.Fences, res.SynthesizedFences, res.Redundant,
		res.EmptyRepairs, res.TotalExecutions, res.TotalInconclusive, res.PrunedPredicates)
	for _, r := range res.Rounds {
		s += fmt.Sprintf(" [execs=%d viol=%d inc=%d clauses=%d preds=%d ins=%v]",
			r.Executions, r.Violations, r.Inconclusive, r.DistinctClauses, r.Predicates, r.Inserted)
	}
	return s
}

// crashSubject is one corpus entry of the crash-restart sweep.
type crashSubject struct {
	name string
	prog *ir.Program
	cfg  core.Config
}

// crashCorpus assembles every litmus test and benchmark under both memory
// models, with the same determinism-friendly budgets the core corpus
// tests use.
func crashCorpus(t *testing.T) []crashSubject {
	t.Helper()
	var out []crashSubject
	for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
		for _, lt := range litmus.All() {
			out = append(out, crashSubject{
				name: fmt.Sprintf("litmus/%s/%v", lt.Name, model),
				prog: lt.Program(),
				cfg: core.Config{
					Model:          model,
					Criterion:      spec.MemorySafety,
					ExecsPerRound:  60,
					MaxRounds:      4,
					Seed:           7,
					Workers:        4,
					ValidateFences: true,
				},
			})
		}
		for _, b := range progs.All() {
			crit := spec.SeqConsistency
			if b.SkipSeqCheck {
				crit = spec.MemorySafety
			}
			out = append(out, crashSubject{
				name: fmt.Sprintf("bench/%s/%v", b.Name, model),
				prog: b.Program(),
				cfg: core.Config{
					Model:            model,
					Criterion:        crit,
					NewSpec:          b.NewSpec(),
					CheckGarbage:     b.CheckGarbage,
					RelaxStealAborts: b.RelaxStealAborts,
					ExecsPerRound:    120,
					MaxRounds:        4,
					Seed:             7,
					Workers:          4,
					ValidateFences:   true,
				},
			})
		}
	}
	return out
}

// TestCrashRestartCorpus: for every corpus program, both models, and every
// checkpointed round boundary k, a run SIGKILL-ed at k and resumed from
// its journal bytes produces a Result bit-identical to the uninterrupted
// run — including the post-convergence fence validation. The resume also
// survives a torn tail appended after the checkpoint (the partial line a
// real crash leaves mid-write).
func TestCrashRestartCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep skipped in -short mode")
	}
	var kills atomic.Int64
	t.Run("sweep", func(t *testing.T) {
		for _, s := range crashCorpus(t) {
			s := s
			t.Run(s.name, func(t *testing.T) {
				t.Parallel()
				base, err := core.Synthesize(s.prog, s.cfg)
				if err != nil {
					t.Fatal(err)
				}
				baseKey := crashKey(base)
				// Checkpoints exist at every boundary the loop crossed:
				// k = 1 .. rounds-1.
				for k := 1; k < len(base.Rounds); k++ {
					journal, killed, err := RunKilledAt(s.prog, s.cfg, k)
					if err != nil {
						t.Fatalf("kill at round %d: %v", k, err)
					}
					if !killed {
						t.Fatalf("kill at round %d never fired despite %d baseline rounds", k, len(base.Rounds))
					}
					kills.Add(1)
					for tornTail, tail := range map[string][]byte{
						"clean": nil,
						// A crash mid-write of the next event leaves a torn
						// final line; resume must shrug it off.
						"torn": []byte(`{"schema":1,"ev":"RoundSt`),
					} {
						res, err := Resume(s.prog, s.cfg, append(append([]byte(nil), journal...), tail...))
						if err != nil {
							t.Fatalf("resume from round %d (%s): %v", k, tornTail, err)
						}
						if got := crashKey(res); got != baseKey {
							t.Fatalf("resume from round %d (%s) diverged\nbase:    %s\nresumed: %s",
								k, tornTail, baseKey, got)
						}
					}
				}
			})
		}
	})
	// The sweep is only meaningful if some runs actually spanned multiple
	// rounds; a corpus that converges everywhere in one round would pass
	// vacuously.
	if kills.Load() == 0 {
		t.Fatal("no corpus run ever reached a checkpointed boundary — the crash sweep tested nothing")
	}
	t.Logf("crash-restart sweep exercised %d kill points", kills.Load())
}
