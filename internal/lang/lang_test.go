package lang

import (
	"strings"
	"testing"

	"dfence/internal/interp"
	"dfence/internal/memmodel"
	"dfence/internal/sched"
)

// run compiles and executes a program under the given model, failing on
// violations, and returns the result.
func run(t *testing.T, src string, model memmodel.Model) *interp.Result {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := sched.Run(prog, model, nil, sched.DefaultOptions(1))
	if res.Violation != nil {
		t.Fatalf("violation: %v", res.Violation)
	}
	if res.StepLimitHit {
		t.Fatal("step limit hit")
	}
	return res
}

func wantOutput(t *testing.T, res *interp.Result, want ...int64) {
	t.Helper()
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output = %v, want %v", res.Output, want)
		}
	}
}

func wantCompileError(t *testing.T, src, substr string) {
	t.Helper()
	_, err := Compile(src)
	if err == nil {
		t.Fatalf("compiled, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

// --- lexer ---

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("int x = 42; // comment\n/* block\n*/ x -> y != z")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TEOF {
			break
		}
		if tok.Kind == TInt {
			texts = append(texts, "42")
		} else {
			texts = append(texts, tok.Text)
		}
	}
	want := []string{"int", "x", "=", "42", ";", "x", "->", "y", "!=", "z"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", texts, want)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := Tokenize("int x = 3abc;"); err == nil {
		t.Error("malformed number accepted")
	}
	if _, err := Tokenize("x @ y"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := Tokenize("/* unterminated"); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestLexerLineNumbers(t *testing.T) {
	toks, err := Tokenize("a\nb\n  c")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[2].Line != 3 {
		t.Errorf("lines = %d,%d,%d", toks[0].Line, toks[1].Line, toks[2].Line)
	}
	if toks[2].Col != 3 {
		t.Errorf("col = %d, want 3", toks[2].Col)
	}
}

// --- end-to-end compile & run ---

func TestArithmetic(t *testing.T) {
	res := run(t, `
int main() {
  int a = 7;
  int b = 3;
  print(a + b);
  print(a - b);
  print(a * b);
  print(a / b);
  print(a % b);
  print(-a);
  print(!0);
  print(!5);
  print(a < b);
  print(a >= b);
  print(a == 7);
  print(a != 7);
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 10, 4, 21, 2, 1, -7, 1, 0, 0, 1, 1, 0)
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
int main() {
  int sum = 0;
  for (int i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i == 9) { break; }
    sum = sum + i;
  }
  print(sum); // 1+3+5+7 = 16
  int n = 0;
  while (n < 5) { n = n + 1; }
  print(n);
  if (n == 5) { print(100); } else { print(200); }
  if (n == 6) { print(300); } else if (n == 5) { print(400); } else { print(500); }
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 16, 5, 100, 400)
}

func TestShortCircuit(t *testing.T) {
	res := run(t, `
int g = 0;
int bump() { g = g + 1; return 1; }
int main() {
  int a = 0 && bump();  // bump not called
  print(a); print(g);
  int b = 1 && bump();  // called
  print(b); print(g);
  int c = 1 || bump();  // not called
  print(c); print(g);
  int d = 0 || bump();  // called
  print(d); print(g);
  print(5 && 7);        // normalized to 1
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 0, 0, 1, 1, 1, 1, 1, 2, 1)
}

func TestGlobalsArraysAndConsts(t *testing.T) {
	res := run(t, `
const N = 4;
const EMPTY = 0 - 1;
int table[4];
int total = 100;
int main() {
  for (int i = 0; i < N; i = i + 1) {
    table[i] = i * i;
  }
  int s = 0;
  for (int i = 0; i < N; i = i + 1) {
    s = s + table[i];
  }
  print(s);        // 0+1+4+9
  print(total);    // initializer
  print(EMPTY);
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 14, 100, -1)
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := run(t, `
int fib(int n) {
  if (n <= 1) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() {
  print(fib(10));
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 55)
}

func TestStructsAndPointers(t *testing.T) {
	res := run(t, `
struct Node {
  int val;
  Node* next;
}
struct Pair { int a; int b; }
Pair g;
int main() {
  Node* n1 = alloc(sizeof(Node));
  Node* n2 = alloc(sizeof(Node));
  n1->val = 10;
  n1->next = n2;
  n2->val = 20;
  n2->next = null;
  print(n1->val);
  print(n1->next->val);
  print(n2->next == null);
  g.a = 5;
  g.b = 6;
  print(g.a + g.b);
  sysfree(n1);
  sysfree(n2);
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 10, 20, 1, 11)
}

func TestPointerArithmeticScales(t *testing.T) {
	res := run(t, `
struct Pair { int a; int b; }
Pair arr[3];
int main() {
  Pair* p = arr;
  p->a = 1;
  Pair* q = p + 2;   // skips 2*sizeof(Pair) words
  q->a = 3;
  print(arr[0].a);
  print(arr[2].a);
  print(sizeof(Pair));
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 1, 3, 2)
}

func TestAddressOfGlobalAndDeref(t *testing.T) {
	res := run(t, `
int x = 5;
int arr[3];
int main() {
  int* p = &x;
  *p = 9;
  print(x);
  int* q = &arr[1];
  *q = 7;
  print(arr[1]);
  print(*p + *q);
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 9, 7, 16)
}

func TestCasIntrinsic(t *testing.T) {
	res := run(t, `
int x = 5;
int main() {
  int ok = cas(&x, 5, 8);
  print(ok); print(x);
  ok = cas(&x, 5, 9);
  print(ok); print(x);
  return 0;
}`, memmodel.TSO)
	wantOutput(t, res, 1, 8, 0, 8)
}

func TestForkJoinSelf(t *testing.T) {
	res := run(t, `
int counter = 0;
void worker(int n) {
  for (int i = 0; i < n; i = i + 1) {
    while (1) {
      int c = counter;
      if (cas(&counter, c, c + 1)) { break; }
    }
  }
}
int main() {
  print(self());
  int t1 = fork worker(5);
  int t2 = fork worker(7);
  join t1;
  join t2;
  print(counter);
  return 0;
}`, memmodel.PSO)
	wantOutput(t, res, 0, 12)
}

func TestLockUnlock(t *testing.T) {
	res := run(t, `
int mu = 0;
int shared = 0;
void worker() {
  for (int i = 0; i < 10; i = i + 1) {
    lock(&mu);
    shared = shared + 1;
    unlock(&mu);
  }
}
int main() {
  int t1 = fork worker();
  int t2 = fork worker();
  join t1;
  join t2;
  print(shared);
  return 0;
}`, memmodel.PSO)
	wantOutput(t, res, 20)
}

func TestFencesCompile(t *testing.T) {
	prog, err := Compile(`
int x = 0; int y = 0;
int main() {
  x = 1;
  fence_ss();
  y = 1;
  fence_sl();
  int v = x;
  fence();
  return v;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prog.Fences()); got != 3 {
		t.Errorf("fence count = %d, want 3", got)
	}
}

func TestOperationMarking(t *testing.T) {
	prog, err := Compile(`
int q = 0;
operation void put(int v) { q = v; }
operation int take() { return q; }
int main() {
  put(3);
  int v = take();
  return v;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Funcs["put"].IsOperation || !prog.Funcs["take"].IsOperation {
		t.Error("operation flags missing")
	}
	if prog.Funcs["main"].IsOperation {
		t.Error("main wrongly marked as operation")
	}
	res := sched.Run(prog, memmodel.TSO, nil, sched.DefaultOptions(2))
	if len(res.History) != 4 {
		t.Errorf("history = %v, want 4 events", res.History)
	}
	if res.ExitCode != 3 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestAssertTriggersViolation(t *testing.T) {
	prog, err := Compile(`int main() { assert(1 == 2); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	res := sched.Run(prog, memmodel.SC, nil, sched.DefaultOptions(1))
	if res.Violation == nil || res.Violation.Kind != interp.VAssert {
		t.Fatalf("assert violation missing: %v", res.Violation)
	}
}

func TestSourceLinesStamped(t *testing.T) {
	prog, err := Compile(`
int x = 0;
int main() {
  x = 7;
  return x;
}`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range prog.Funcs["main"].Code {
		if in.Op.String() == "store" && in.Line == 4 {
			found = true
		}
	}
	if !found {
		t.Error("store to x not stamped with source line 4")
	}
}

// --- error cases ---

func TestErrorUndefinedIdent(t *testing.T) {
	wantCompileError(t, `int main() { return zz; }`, "undefined identifier")
}

func TestErrorUndefinedFunction(t *testing.T) {
	wantCompileError(t, `int main() { return f(); }`, "undefined function")
}

func TestErrorArgCount(t *testing.T) {
	wantCompileError(t, `
int f(int a, int b) { return a; }
int main() { return f(1); }`, "expects 2 arguments")
}

func TestErrorNoMain(t *testing.T) {
	wantCompileError(t, `int f() { return 0; }`, "no main")
}

func TestErrorAddressOfLocal(t *testing.T) {
	wantCompileError(t, `
int main() {
  int x = 1;
  int* p = &x;
  return *p;
}`, "address")
}

func TestErrorUnknownField(t *testing.T) {
	wantCompileError(t, `
struct Node { int val; }
int main() {
  Node* n = alloc(sizeof(Node));
  return n->bogus;
}`, "no field")
}

func TestErrorArrowOnInt(t *testing.T) {
	wantCompileError(t, `
int main() {
  int x = 1;
  return x->val;
}`, "->")
}

func TestErrorBreakOutsideLoop(t *testing.T) {
	wantCompileError(t, `int main() { break; return 0; }`, "break outside loop")
}

func TestErrorDuplicateGlobal(t *testing.T) {
	wantCompileError(t, `int x; int x; int main() { return 0; }`, "redefined")
}

func TestErrorVoidReturnsValue(t *testing.T) {
	wantCompileError(t, `void f() { return 3; } int main() { return 0; }`, "void function")
}

func TestErrorMissingReturnValue(t *testing.T) {
	wantCompileError(t, `int f() { return; } int main() { return 0; }`, "must return a value")
}

func TestErrorCasNeedsAddress(t *testing.T) {
	wantCompileError(t, `
int main() {
  int x = 1;
  return cas(x, 1, 2);
}`, "address")
}

func TestErrorStructLocal(t *testing.T) {
	wantCompileError(t, `
struct Pair { int a; int b; }
int main() {
  Pair p;
  return 0;
}`, "word-sized")
}

func TestErrorRecursiveStructValue(t *testing.T) {
	wantCompileError(t, `
struct Node { int v; Node inner; }
int main() { return 0; }`, "pointer")
}

func TestErrorConstDivZero(t *testing.T) {
	wantCompileError(t, `const X = 1 / 0; int main() { return 0; }`, "division by zero")
}

func TestErrorRedefineBuiltin(t *testing.T) {
	wantCompileError(t, `int cas() { return 0; } int main() { return 0; }`, "builtin")
}

func TestErrorSyntax(t *testing.T) {
	wantCompileError(t, `int main() { int = 5; return 0; }`, "expected identifier")
	wantCompileError(t, `int main() { if 1 { } return 0; }`, `expected "("`)
}

func TestNestedLoopsBreakInner(t *testing.T) {
	res := run(t, `
int main() {
  int hits = 0;
  for (int i = 0; i < 3; i = i + 1) {
    for (int j = 0; j < 10; j = j + 1) {
      if (j == 2) { break; }
      hits = hits + 1;
    }
  }
  print(hits); // 3 outer * 2 inner
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 6)
}

func TestWhileContinue(t *testing.T) {
	res := run(t, `
int main() {
  int i = 0;
  int odd = 0;
  while (i < 10) {
    i = i + 1;
    if (i % 2 == 0) { continue; }
    odd = odd + 1;
  }
  print(odd);
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 5)
}

func TestForContinueRunsPost(t *testing.T) {
	res := run(t, `
int main() {
  int s = 0;
  for (int i = 0; i < 5; i = i + 1) {
    if (i == 2) { continue; }
    s = s + i;
  }
  print(s); // 0+1+3+4
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 8)
}

func TestGlobalStructArrayIndexing(t *testing.T) {
	res := run(t, `
struct Slot { int key; int val; }
Slot slots[4];
int main() {
  for (int i = 0; i < 4; i = i + 1) {
    slots[i].key = i;
    slots[i].val = i * 10;
  }
  print(slots[3].key);
  print(slots[3].val);
  print(slots[0].val);
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 3, 30, 0)
}

func TestBitOps(t *testing.T) {
	res := run(t, `
int main() {
  print(6 & 3);
  print(6 | 3);
  print(6 ^ 3);
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 2, 7, 5)
}
