package lang

import "fmt"

// TypeKind classifies semantic types. Everything occupies whole words; the
// type system exists to resolve field offsets, array element sizes, and
// pointer dereferences — assignments between word-sized values are not
// restricted (the benchmarks are low-level C).
type TypeKind uint8

const (
	KInt TypeKind = iota
	KVoid
	KPtr
	KStruct
)

// Type is a semantic type.
type Type struct {
	Kind TypeKind
	Elem *Type       // KPtr: pointee
	S    *StructType // KStruct
}

// StructType is a resolved record layout.
type StructType struct {
	Name    string
	Fields  []StructField
	ByName  map[string]*StructField
	SizeWds int64
}

// StructField is one field with its word offset.
type StructField struct {
	Name   string
	Type   *Type
	Offset int64
}

var (
	tInt  = &Type{Kind: KInt}
	tVoid = &Type{Kind: KVoid}
)

// IntType returns the int type.
func IntType() *Type { return tInt }

// VoidType returns the void type.
func VoidType() *Type { return tVoid }

// PtrTo returns a pointer type.
func PtrTo(elem *Type) *Type { return &Type{Kind: KPtr, Elem: elem} }

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KInt:
		return "int"
	case KVoid:
		return "void"
	case KPtr:
		return t.Elem.String() + "*"
	case KStruct:
		return t.S.Name
	}
	return "?"
}

// SizeWords returns the number of memory words a value of this type
// occupies (pointers and ints are one word; structs are their layout
// size).
func (t *Type) SizeWords() int64 {
	if t.Kind == KStruct {
		return t.S.SizeWds
	}
	return 1
}

// IsWord reports whether the type fits a register (ints and pointers).
func (t *Type) IsWord() bool { return t.Kind == KInt || t.Kind == KPtr }

// resolveType turns a syntactic TypeExpr into a semantic Type using the
// struct table.
func resolveType(x TypeExpr, structs map[string]*StructType) (*Type, error) {
	var base *Type
	switch x.Base {
	case "int":
		base = tInt
	case "void":
		base = tVoid
	default:
		st, ok := structs[x.Base]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown type %q", x.Line, x.Base)
		}
		base = &Type{Kind: KStruct, S: st}
	}
	for i := 0; i < x.Ptrs; i++ {
		base = PtrTo(base)
	}
	if base.Kind == KVoid && x.Ptrs > 0 {
		// void* is a generic word pointer: model as int*.
		base = PtrTo(tInt)
	}
	return base, nil
}

// layoutStructs resolves all struct declarations, allowing pointer fields
// to reference any struct (including forward and self references) but
// rejecting directly recursive value fields.
func layoutStructs(decls []*StructDecl) (map[string]*StructType, error) {
	structs := make(map[string]*StructType, len(decls))
	for _, d := range decls {
		if _, dup := structs[d.Name]; dup {
			return nil, fmt.Errorf("line %d: duplicate struct %q", d.Line, d.Name)
		}
		structs[d.Name] = &StructType{Name: d.Name, ByName: map[string]*StructField{}}
	}
	// Layout in declaration order; a value field of a later struct is only
	// legal if that struct is already laid out.
	laid := make(map[string]bool)
	for _, d := range decls {
		st := structs[d.Name]
		off := int64(0)
		for _, f := range d.Fields {
			ft, err := resolveType(f.TypeX, structs)
			if err != nil {
				return nil, err
			}
			if ft.Kind == KStruct && !laid[ft.S.Name] {
				return nil, fmt.Errorf("line %d: struct %s embeds %s by value before its layout is known (use a pointer)", f.Line, d.Name, ft.S.Name)
			}
			if ft.Kind == KVoid {
				return nil, fmt.Errorf("line %d: field %s.%s has void type", f.Line, d.Name, f.Name)
			}
			if _, dup := st.ByName[f.Name]; dup {
				return nil, fmt.Errorf("line %d: duplicate field %s.%s", f.Line, d.Name, f.Name)
			}
			sf := StructField{Name: f.Name, Type: ft, Offset: off}
			st.Fields = append(st.Fields, sf)
			st.ByName[f.Name] = &st.Fields[len(st.Fields)-1]
			off += ft.SizeWords()
		}
		st.SizeWds = off
		if off == 0 {
			st.SizeWds = 1 // empty structs still occupy a word
		}
		laid[d.Name] = true
	}
	return structs, nil
}
