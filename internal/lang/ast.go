package lang

// The AST mirrors the surface syntax closely; semantic analysis decorates
// expressions with types (see types.go) and lowering walks these nodes.

// File is a parsed translation unit.
type File struct {
	Structs []*StructDecl
	Consts  []*ConstDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// StructDecl declares a record type.
type StructDecl struct {
	Name   string
	Fields []Param // reuse Param: name + type expression
	Line   int
}

// ConstDecl declares a compile-time integer constant.
type ConstDecl struct {
	Name string
	Expr Expr // must fold to a constant
	Line int
}

// GlobalDecl declares a global variable (scalar, array, or struct).
type GlobalDecl struct {
	Name     string
	TypeX    TypeExpr
	ArrayLen int64 // 0 for scalars
	Init     Expr  // optional scalar initializer
	Line     int
}

// Param is a declared name with a type. For function parameters, Sym is
// bound by sema so lowering shares the symbol with the uses.
type Param struct {
	Name  string
	TypeX TypeExpr
	Line  int
	Sym   *Symbol
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name        string
	Params      []Param
	RetX        TypeExpr
	Body        *BlockStmt
	IsOperation bool
	Line        int
}

// TypeExpr is a syntactic type: base name ("int", "void", or a struct
// name) plus pointer depth.
type TypeExpr struct {
	Base string
	Ptrs int
	Line int
}

// --- statements ---

// Stmt is the statement interface.
type Stmt interface{ stmtNode() }

// BlockStmt is { ... }.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

// DeclStmt declares a local: type name [= init]; Sym is bound by sema.
type DeclStmt struct {
	Name  string
	TypeX TypeExpr
	Init  Expr
	Line  int
	Sym   *Symbol
}

// AssignStmt is lvalue = expr;
type AssignStmt struct {
	LHS  Expr
	RHS  Expr
	Line int
}

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is if (cond) then [else els].
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt or *IfStmt or nil
	Line int
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Line int
}

// ForStmt is for (init; cond; post) body; any part may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or AssignStmt
	Cond Expr
	Post Stmt // AssignStmt or ExprStmt
	Body *BlockStmt
	Line int
}

// ReturnStmt is return [expr];
type ReturnStmt struct {
	X    Expr
	Line int
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

// JoinStmt is join expr;
type JoinStmt struct {
	X    Expr
	Line int
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*JoinStmt) stmtNode()     {}

// --- expressions ---

// Expr is the expression interface. Type() is filled by sema.
type Expr interface {
	exprNode()
	Type() *Type
	setType(*Type)
	Pos() int
}

type exprBase struct {
	typ  *Type
	Line int
}

func (e *exprBase) Type() *Type     { return e.typ }
func (e *exprBase) setType(t *Type) { e.typ = t }
func (e *exprBase) Pos() int        { return e.Line }

// IntLit is an integer literal (null lexes to IntLit 0).
type IntLit struct {
	exprBase
	Val int64
}

// Ident references a local, parameter, global, or constant.
type Ident struct {
	exprBase
	Name string
	// Sym is resolved by sema.
	Sym *Symbol
}

// Unary is !x, -x, *x, or &x.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is x op y for arithmetic, comparison, and bit ops.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}

// Logical is x && y or x || y (short-circuit).
type Logical struct {
	exprBase
	Op   string
	X, Y Expr
}

// Index is base[idx].
type Index struct {
	exprBase
	Base Expr
	Idx  Expr
}

// Field is base.name (Arrow false) or base->name (Arrow true).
type Field struct {
	exprBase
	Base  Expr
	Name  string
	Arrow bool
	// Offset/FieldType resolved by sema.
	Offset    int64
	FieldType *Type
}

// Call invokes a function or intrinsic. Intrinsics are recognized by name
// during sema: cas, fence, fence_ss, fence_sl, fence_ll, fence_ls,
// fence_acq, fence_rel, alloc, free, self, assert, print, lock, unlock,
// sizeof.
type Call struct {
	exprBase
	Name string
	Args []Expr
}

// Fork is fork f(args).
type Fork struct {
	exprBase
	Name string
	Args []Expr
}

// SizeOf is sizeof(TypeName), folded by sema.
type SizeOf struct {
	exprBase
	TypeName string
}

func (*IntLit) exprNode()  {}
func (*Ident) exprNode()   {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}
func (*Logical) exprNode() {}
func (*Index) exprNode()   {}
func (*Field) exprNode()   {}
func (*Call) exprNode()    {}
func (*Fork) exprNode()    {}
func (*SizeOf) exprNode()  {}
