package lang

import "fmt"

// SymKind classifies resolved symbols.
type SymKind uint8

const (
	SymLocal SymKind = iota
	SymParam
	SymGlobal
	SymConst
	SymFunc
)

// Symbol is a resolved name.
type Symbol struct {
	Kind SymKind
	Name string
	Type *Type

	ConstVal int64 // SymConst
	IsArray  bool  // SymGlobal arrays
	Elem     *Type // element type of arrays
	ArrayLen int64
	Words    int64 // total global size in words

	Fn *FuncDecl // SymFunc
}

// Unit is a semantically analyzed translation unit, ready for lowering.
type Unit struct {
	File    *File
	Structs map[string]*StructType
	Consts  map[string]*Symbol
	Globals map[string]*Symbol
	Funcs   map[string]*Symbol

	// GlobalOrder preserves declaration order for linking.
	GlobalOrder []*Symbol
}

// intrinsics maps name to (arg count, returns value). Arity -1 means any.
var intrinsics = map[string]struct {
	args int
	ret  *Type
}{
	"cas":       {3, tInt},
	"fence":     {0, tVoid},
	"fence_ss":  {0, tVoid},
	"fence_sl":  {0, tVoid},
	"fence_ll":  {0, tVoid},
	"fence_ls":  {0, tVoid},
	"fence_acq": {0, tVoid},
	"fence_rel": {0, tVoid},
	"alloc":    {1, PtrTo(tInt)},
	"sysfree":  {1, tVoid},
	"self":     {0, tInt},
	"assert":   {1, tVoid},
	"print":    {1, tVoid},
	"lock":     {1, tVoid},
	"unlock":   {1, tVoid},
}

// Analyze performs semantic analysis on a parsed file.
func Analyze(f *File) (*Unit, error) {
	structs, err := layoutStructs(f.Structs)
	if err != nil {
		return nil, err
	}
	u := &Unit{
		File:    f,
		Structs: structs,
		Consts:  map[string]*Symbol{},
		Globals: map[string]*Symbol{},
		Funcs:   map[string]*Symbol{},
	}
	// Constants (may reference earlier constants).
	for _, c := range f.Consts {
		if err := u.checkRedef(c.Name, c.Line); err != nil {
			return nil, err
		}
		v, err := u.foldConst(c.Expr)
		if err != nil {
			return nil, err
		}
		u.Consts[c.Name] = &Symbol{Kind: SymConst, Name: c.Name, Type: tInt, ConstVal: v}
	}
	// Globals.
	for _, g := range f.Globals {
		if err := u.checkRedef(g.Name, g.Line); err != nil {
			return nil, err
		}
		t, err := resolveType(g.TypeX, structs)
		if err != nil {
			return nil, err
		}
		if t.Kind == KVoid {
			return nil, fmt.Errorf("line %d: global %s has void type", g.Line, g.Name)
		}
		sym := &Symbol{Kind: SymGlobal, Name: g.Name, Type: t}
		if g.ArrayLen > 0 {
			sym.IsArray = true
			sym.Elem = t
			sym.ArrayLen = g.ArrayLen
			sym.Words = g.ArrayLen * t.SizeWords()
		} else {
			sym.Words = t.SizeWords()
		}
		if g.Init != nil {
			if sym.IsArray || t.Kind == KStruct {
				return nil, fmt.Errorf("line %d: only scalar globals may have initializers", g.Line)
			}
			if _, err := u.foldConst(g.Init); err != nil {
				return nil, fmt.Errorf("line %d: global initializer must be constant: %v", g.Line, err)
			}
		}
		u.Globals[g.Name] = sym
		u.GlobalOrder = append(u.GlobalOrder, sym)
	}
	// Function signatures first (mutual recursion), then bodies.
	for _, fn := range f.Funcs {
		if err := u.checkRedef(fn.Name, fn.Line); err != nil {
			return nil, err
		}
		if _, isIntrinsic := intrinsics[fn.Name]; isIntrinsic {
			return nil, fmt.Errorf("line %d: %q is a builtin and cannot be redefined", fn.Line, fn.Name)
		}
		rt, err := resolveType(fn.RetX, structs)
		if err != nil {
			return nil, err
		}
		if rt.Kind == KStruct {
			return nil, fmt.Errorf("line %d: function %s returns a struct by value (unsupported)", fn.Line, fn.Name)
		}
		u.Funcs[fn.Name] = &Symbol{Kind: SymFunc, Name: fn.Name, Type: rt, Fn: fn}
	}
	if _, ok := u.Funcs["main"]; !ok {
		return nil, fmt.Errorf("program has no main function")
	}
	for _, fn := range f.Funcs {
		if err := u.checkFunc(fn); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (u *Unit) checkRedef(name string, line int) error {
	if u.Consts[name] != nil || u.Globals[name] != nil || u.Funcs[name] != nil {
		return fmt.Errorf("line %d: %q redefined", line, name)
	}
	return nil
}

// foldConst evaluates a compile-time constant expression.
func (u *Unit) foldConst(e Expr) (int64, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, nil
	case *Ident:
		if s, ok := u.Consts[x.Name]; ok {
			return s.ConstVal, nil
		}
		return 0, fmt.Errorf("line %d: %q is not a constant", x.Pos(), x.Name)
	case *Unary:
		v, err := u.foldConst(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("line %d: operator %q not constant", x.Pos(), x.Op)
	case *Binary:
		a, err := u.foldConst(x.X)
		if err != nil {
			return 0, err
		}
		b, err := u.foldConst(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, fmt.Errorf("line %d: constant division by zero", x.Pos())
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0, fmt.Errorf("line %d: constant modulo by zero", x.Pos())
			}
			return a % b, nil
		}
		return 0, fmt.Errorf("line %d: operator %q not constant", x.Pos(), x.Op)
	case *SizeOf:
		st, ok := u.Structs[x.TypeName]
		if !ok {
			return 0, fmt.Errorf("line %d: sizeof of unknown struct %q", x.Pos(), x.TypeName)
		}
		return st.SizeWds, nil
	}
	return 0, fmt.Errorf("expression is not constant")
}

// scope is a lexical scope for local symbols.
type scope struct {
	parent *scope
	names  map[string]*Symbol
}

func (s *scope) lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.names[name]; ok {
			return sym
		}
	}
	return nil
}

// fnChecker carries per-function analysis state.
type fnChecker struct {
	u         *Unit
	fn        *FuncDecl
	ret       *Type
	loopDepth int
}

func (u *Unit) checkFunc(fn *FuncDecl) error {
	c := &fnChecker{u: u, fn: fn, ret: u.Funcs[fn.Name].Type}
	sc := &scope{names: map[string]*Symbol{}}
	for i := range fn.Params {
		p := &fn.Params[i]
		t, err := resolveType(p.TypeX, u.Structs)
		if err != nil {
			return err
		}
		if !t.IsWord() {
			return fmt.Errorf("line %d: parameter %s of %s must be word-sized (int or pointer)", p.Line, p.Name, fn.Name)
		}
		if _, dup := sc.names[p.Name]; dup {
			return fmt.Errorf("line %d: duplicate parameter %s", p.Line, p.Name)
		}
		p.Sym = &Symbol{Kind: SymParam, Name: p.Name, Type: t}
		sc.names[p.Name] = p.Sym
	}
	return c.block(fn.Body, sc)
}

func (c *fnChecker) block(b *BlockStmt, parent *scope) error {
	sc := &scope{parent: parent, names: map[string]*Symbol{}}
	for _, s := range b.Stmts {
		if err := c.stmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (c *fnChecker) stmt(s Stmt, sc *scope) error {
	switch x := s.(type) {
	case *BlockStmt:
		return c.block(x, sc)
	case *DeclStmt:
		t, err := resolveType(x.TypeX, c.u.Structs)
		if err != nil {
			return err
		}
		if !t.IsWord() {
			return fmt.Errorf("line %d: local %s must be word-sized (int or pointer); use alloc for records", x.Line, x.Name)
		}
		if x.Init != nil {
			if err := c.expr(x.Init, sc); err != nil {
				return err
			}
		}
		if _, dup := sc.names[x.Name]; dup {
			return fmt.Errorf("line %d: %q redeclared in this scope", x.Line, x.Name)
		}
		x.Sym = &Symbol{Kind: SymLocal, Name: x.Name, Type: t}
		sc.names[x.Name] = x.Sym
		return nil
	case *AssignStmt:
		if err := c.expr(x.LHS, sc); err != nil {
			return err
		}
		if err := c.lvalue(x.LHS); err != nil {
			return err
		}
		return c.expr(x.RHS, sc)
	case *ExprStmt:
		return c.expr(x.X, sc)
	case *IfStmt:
		if err := c.expr(x.Cond, sc); err != nil {
			return err
		}
		if err := c.block(x.Then, sc); err != nil {
			return err
		}
		if x.Else != nil {
			return c.stmt(x.Else, sc)
		}
		return nil
	case *WhileStmt:
		if err := c.expr(x.Cond, sc); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.block(x.Body, sc)
	case *ForStmt:
		inner := &scope{parent: sc, names: map[string]*Symbol{}}
		if x.Init != nil {
			if err := c.stmt(x.Init, inner); err != nil {
				return err
			}
		}
		if x.Cond != nil {
			if err := c.expr(x.Cond, inner); err != nil {
				return err
			}
		}
		if x.Post != nil {
			if err := c.stmt(x.Post, inner); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.block(x.Body, inner)
	case *ReturnStmt:
		if x.X == nil {
			if c.ret.Kind != KVoid {
				return fmt.Errorf("line %d: %s must return a value", x.Line, c.fn.Name)
			}
			return nil
		}
		if c.ret.Kind == KVoid {
			return fmt.Errorf("line %d: void function %s returns a value", x.Line, c.fn.Name)
		}
		return c.expr(x.X, sc)
	case *BreakStmt:
		if c.loopDepth == 0 {
			return fmt.Errorf("line %d: break outside loop", x.Line)
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return fmt.Errorf("line %d: continue outside loop", x.Line)
		}
		return nil
	case *JoinStmt:
		return c.expr(x.X, sc)
	}
	return fmt.Errorf("sema: unknown statement %T", s)
}

// lvalue verifies that e designates an assignable location.
func (c *fnChecker) lvalue(e Expr) error {
	switch x := e.(type) {
	case *Ident:
		switch x.Sym.Kind {
		case SymLocal, SymParam:
			return nil
		case SymGlobal:
			if x.Sym.IsArray {
				return fmt.Errorf("line %d: cannot assign to array %q", x.Pos(), x.Name)
			}
			if x.Sym.Type.Kind == KStruct {
				return fmt.Errorf("line %d: cannot assign whole struct %q", x.Pos(), x.Name)
			}
			return nil
		}
		return fmt.Errorf("line %d: cannot assign to %q", x.Pos(), x.Name)
	case *Unary:
		if x.Op == "*" {
			return nil
		}
	case *Index:
		if !e.Type().IsWord() {
			return fmt.Errorf("line %d: cannot assign a whole struct element", e.Pos())
		}
		return nil
	case *Field:
		if !e.Type().IsWord() {
			return fmt.Errorf("line %d: cannot assign a whole struct field", e.Pos())
		}
		return nil
	}
	return fmt.Errorf("line %d: expression is not assignable", e.Pos())
}

// expr resolves names and annotates types.
func (c *fnChecker) expr(e Expr, sc *scope) error {
	switch x := e.(type) {
	case *IntLit:
		x.setType(tInt)
		return nil
	case *SizeOf:
		if _, ok := c.u.Structs[x.TypeName]; !ok {
			return fmt.Errorf("line %d: sizeof of unknown struct %q", x.Pos(), x.TypeName)
		}
		x.setType(tInt)
		return nil
	case *Ident:
		if sym := sc.lookup(x.Name); sym != nil {
			x.Sym = sym
			x.setType(sym.Type)
			return nil
		}
		if sym, ok := c.u.Consts[x.Name]; ok {
			x.Sym = sym
			x.setType(tInt)
			return nil
		}
		if sym, ok := c.u.Globals[x.Name]; ok {
			x.Sym = sym
			if sym.IsArray {
				x.setType(PtrTo(sym.Elem)) // array decays to pointer
			} else {
				x.setType(sym.Type)
			}
			return nil
		}
		return fmt.Errorf("line %d: undefined identifier %q", x.Pos(), x.Name)
	case *Unary:
		if err := c.expr(x.X, sc); err != nil {
			return err
		}
		switch x.Op {
		case "!", "-":
			x.setType(tInt)
		case "*":
			t := x.X.Type()
			if t.Kind == KPtr {
				x.setType(t.Elem)
			} else {
				x.setType(tInt) // weakly-typed deref of an int address
			}
		case "&":
			if err := c.addressable(x.X); err != nil {
				return err
			}
			x.setType(PtrTo(x.X.Type()))
		}
		return nil
	case *Binary:
		if err := c.expr(x.X, sc); err != nil {
			return err
		}
		if err := c.expr(x.Y, sc); err != nil {
			return err
		}
		// Pointer arithmetic keeps the pointer type; comparisons yield int.
		switch x.Op {
		case "+", "-":
			if x.X.Type().Kind == KPtr {
				x.setType(x.X.Type())
				return nil
			}
		}
		x.setType(tInt)
		return nil
	case *Logical:
		if err := c.expr(x.X, sc); err != nil {
			return err
		}
		if err := c.expr(x.Y, sc); err != nil {
			return err
		}
		x.setType(tInt)
		return nil
	case *Index:
		if err := c.expr(x.Base, sc); err != nil {
			return err
		}
		if err := c.expr(x.Idx, sc); err != nil {
			return err
		}
		bt := x.Base.Type()
		if bt.Kind == KPtr {
			x.setType(bt.Elem)
		} else {
			x.setType(tInt)
		}
		return nil
	case *Field:
		if err := c.expr(x.Base, sc); err != nil {
			return err
		}
		bt := x.Base.Type()
		var st *StructType
		if x.Arrow {
			if bt.Kind != KPtr || bt.Elem.Kind != KStruct {
				return fmt.Errorf("line %d: -> on non-struct-pointer (%s)", x.Pos(), bt)
			}
			st = bt.Elem.S
		} else {
			if bt.Kind != KStruct {
				return fmt.Errorf("line %d: . on non-struct value (%s)", x.Pos(), bt)
			}
			st = bt.S
		}
		f, ok := st.ByName[x.Name]
		if !ok {
			return fmt.Errorf("line %d: struct %s has no field %q", x.Pos(), st.Name, x.Name)
		}
		x.Offset = f.Offset
		x.FieldType = f.Type
		x.setType(f.Type)
		return nil
	case *Call:
		for _, a := range x.Args {
			if err := c.expr(a, sc); err != nil {
				return err
			}
		}
		if intr, ok := intrinsics[x.Name]; ok {
			if intr.args >= 0 && len(x.Args) != intr.args {
				return fmt.Errorf("line %d: %s expects %d arguments, got %d", x.Pos(), x.Name, intr.args, len(x.Args))
			}
			if x.Name == "cas" || x.Name == "lock" || x.Name == "unlock" {
				// First argument must be an address (a pointer-typed value).
				if x.Args[0].Type().Kind != KPtr {
					return fmt.Errorf("line %d: %s expects an address as first argument (use &x)", x.Pos(), x.Name)
				}
			}
			x.setType(intr.ret)
			return nil
		}
		sym, ok := c.u.Funcs[x.Name]
		if !ok {
			return fmt.Errorf("line %d: call to undefined function %q", x.Pos(), x.Name)
		}
		if len(x.Args) != len(sym.Fn.Params) {
			return fmt.Errorf("line %d: %s expects %d arguments, got %d", x.Pos(), x.Name, len(sym.Fn.Params), len(x.Args))
		}
		x.setType(sym.Type)
		return nil
	case *Fork:
		sym, ok := c.u.Funcs[x.Name]
		if !ok {
			return fmt.Errorf("line %d: fork of undefined function %q", x.Pos(), x.Name)
		}
		if len(x.Args) != len(sym.Fn.Params) {
			return fmt.Errorf("line %d: fork %s expects %d arguments, got %d", x.Pos(), x.Name, len(sym.Fn.Params), len(x.Args))
		}
		for _, a := range x.Args {
			if err := c.expr(a, sc); err != nil {
				return err
			}
		}
		x.setType(tInt)
		return nil
	}
	return fmt.Errorf("sema: unknown expression %T", e)
}

// addressable verifies & can be applied: memory lvalues only (globals,
// dereferences, fields, array elements) — locals live in registers.
func (c *fnChecker) addressable(e Expr) error {
	switch x := e.(type) {
	case *Ident:
		if x.Sym != nil && x.Sym.Kind == SymGlobal {
			return nil
		}
		return fmt.Errorf("line %d: cannot take the address of %q (locals live in registers; use a global or heap cell)", x.Pos(), x.Name)
	case *Unary:
		if x.Op == "*" {
			return nil
		}
	case *Index, *Field:
		return nil
	}
	return fmt.Errorf("line %d: expression is not addressable", e.Pos())
}
