package lang

import "fmt"

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
	// structNames is pre-scanned so `Node* p;` parses as a declaration.
	structNames map[string]bool
}

// Parse tokenizes and parses a translation unit.
func Parse(src string) (*File, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, structNames: map[string]bool{}}
	// Pre-scan struct names for the declaration heuristic.
	for i := 0; i+1 < len(toks); i++ {
		if toks[i].Kind == TKeyword && toks[i].Text == "struct" && toks[i+1].Kind == TIdent {
			p.structNames[toks[i+1].Text] = true
		}
	}
	return p.file()
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) la(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("line %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *Parser) expectPunct(s string) error {
	if p.cur().Kind == TPunct && p.cur().Text == s {
		p.advance()
		return nil
	}
	return p.errf("expected %q, found %s", s, p.cur())
}

func (p *Parser) isPunct(s string) bool {
	return p.cur().Kind == TPunct && p.cur().Text == s
}

func (p *Parser) isKeyword(s string) bool {
	return p.cur().Kind == TKeyword && p.cur().Text == s
}

func (p *Parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectIdent() (Token, error) {
	if p.cur().Kind != TIdent {
		return Token{}, p.errf("expected identifier, found %s", p.cur())
	}
	return p.advance(), nil
}

// isTypeStart reports whether the current token begins a type.
func (p *Parser) isTypeStart() bool {
	t := p.cur()
	if t.Kind == TKeyword && (t.Text == "int" || t.Text == "void") {
		return true
	}
	return t.Kind == TIdent && p.structNames[t.Text]
}

// typeExpr parses base ptrs*.
func (p *Parser) typeExpr() (TypeExpr, error) {
	t := p.cur()
	var base string
	switch {
	case p.isKeyword("int"), p.isKeyword("void"):
		base = t.Text
		p.advance()
	case t.Kind == TIdent && p.structNames[t.Text]:
		base = t.Text
		p.advance()
	default:
		return TypeExpr{}, p.errf("expected type, found %s", t)
	}
	x := TypeExpr{Base: base, Line: t.Line}
	for p.acceptPunct("*") {
		x.Ptrs++
	}
	return x, nil
}

// --- top level ---

func (p *Parser) file() (*File, error) {
	f := &File{}
	for p.cur().Kind != TEOF {
		switch {
		case p.isKeyword("struct"):
			d, err := p.structDecl()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, d)
		case p.isKeyword("const"):
			d, err := p.constDecl()
			if err != nil {
				return nil, err
			}
			f.Consts = append(f.Consts, d)
		case p.isKeyword("operation"):
			line := p.cur().Line
			p.advance()
			fn, err := p.funcDecl(line)
			if err != nil {
				return nil, err
			}
			fn.IsOperation = true
			f.Funcs = append(f.Funcs, fn)
		case p.isTypeStart():
			// Global or function: type ident then '(' means function.
			save := p.pos
			tx, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.isPunct("(") {
				p.pos = save
				fn, err := p.funcDecl(tx.Line)
				if err != nil {
					return nil, err
				}
				f.Funcs = append(f.Funcs, fn)
				continue
			}
			g := &GlobalDecl{Name: name.Text, TypeX: tx, Line: tx.Line}
			if p.acceptPunct("[") {
				if p.cur().Kind != TInt {
					return nil, p.errf("expected array length")
				}
				g.ArrayLen = p.advance().Val
				if err := p.expectPunct("]"); err != nil {
					return nil, err
				}
			}
			if p.acceptPunct("=") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				g.Init = e
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, g)
		default:
			return nil, p.errf("unexpected %s at top level", p.cur())
		}
	}
	return f, nil
}

func (p *Parser) structDecl() (*StructDecl, error) {
	line := p.advance().Line // struct
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	d := &StructDecl{Name: name.Text, Line: line}
	for !p.acceptPunct("}") {
		tx, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		fn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		d.Fields = append(d.Fields, Param{Name: fn.Text, TypeX: tx, Line: tx.Line})
	}
	// optional trailing semicolon after }
	p.acceptPunct(";")
	return d, nil
}

func (p *Parser) constDecl() (*ConstDecl, error) {
	line := p.advance().Line // const
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &ConstDecl{Name: name.Text, Expr: e, Line: line}, nil
}

func (p *Parser) funcDecl(line int) (*FuncDecl, error) {
	retx, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, RetX: retx, Line: line}
	for !p.isPunct(")") {
		tx, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Name: pn.Text, TypeX: tx, Line: tx.Line})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// --- statements ---

func (p *Parser) block() (*BlockStmt, error) {
	line := p.cur().Line
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{Line: line}
	for !p.acceptPunct("}") {
		if p.cur().Kind == TEOF {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *Parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.isPunct("{"):
		return p.block()
	case p.isKeyword("if"):
		return p.ifStmt()
	case p.isKeyword("while"):
		return p.whileStmt()
	case p.isKeyword("for"):
		return p.forStmt()
	case p.isKeyword("return"):
		p.advance()
		r := &ReturnStmt{Line: t.Line}
		if !p.isPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = e
		}
		return r, p.expectPunct(";")
	case p.isKeyword("break"):
		p.advance()
		return &BreakStmt{Line: t.Line}, p.expectPunct(";")
	case p.isKeyword("continue"):
		p.advance()
		return &ContinueStmt{Line: t.Line}, p.expectPunct(";")
	case p.isKeyword("join"):
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &JoinStmt{X: e, Line: t.Line}, p.expectPunct(";")
	case p.isTypeStart():
		// Type keywords and struct names only ever begin declarations in
		// this dialect (struct names are not expression identifiers).
		return p.declStmt()
	}
	return p.simpleStmt(true)
}

func (p *Parser) declStmt() (Stmt, error) {
	line := p.cur().Line
	tx, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name.Text, TypeX: tx, Line: line}
	if p.acceptPunct("=") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, p.expectPunct(";")
}

// simpleStmt parses `lvalue = expr;` or `expr;`. When wantSemi is false
// (for-loop clauses) the trailing semicolon is not consumed.
func (p *Parser) simpleStmt(wantSemi bool) (Stmt, error) {
	line := p.cur().Line
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	var s Stmt
	if p.acceptPunct("=") {
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		s = &AssignStmt{LHS: e, RHS: rhs, Line: line}
	} else {
		s = &ExprStmt{X: e, Line: line}
	}
	if wantSemi {
		return s, p.expectPunct(";")
	}
	return s, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	line := p.advance().Line
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Line: line}
	if p.isKeyword("else") {
		p.advance()
		if p.isKeyword("if") {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.Else = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	line := p.advance().Line
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	line := p.advance().Line
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	s := &ForStmt{Line: line}
	if !p.isPunct(";") {
		var init Stmt
		var err error
		if p.isTypeStart() {
			// decl without consuming the ';' twice: declStmt eats ';'
			init, err = p.declStmtNoSemi()
		} else {
			init, err = p.simpleStmt(false)
		}
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.simpleStmt(false)
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *Parser) declStmtNoSemi() (Stmt, error) {
	line := p.cur().Line
	tx, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name.Text, TypeX: tx, Line: line}
	if p.acceptPunct("=") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

// --- expressions (precedence climbing, C-like levels) ---
//
// Loosest to tightest: || , && , | , ^ , & , == != , < <= > >= , + - ,
// * / % , unary, postfix.

// expr := or
func (p *Parser) expr() (Expr, error) { return p.orExpr() }

// binaryLevel parses a left-associative chain of the given operators over
// the next-tighter level.
func (p *Parser) binaryLevel(ops []string, next func() (Expr, error)) (Expr, error) {
	x, err := next()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		if op.Kind != TPunct {
			return x, nil
		}
		matched := false
		for _, o := range ops {
			if op.Text == o {
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
		p.advance()
		y, err := next()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op.Text, X: x, Y: y, exprBase: exprBase{Line: op.Line}}
	}
}

func (p *Parser) orExpr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("||") {
		line := p.advance().Line
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &Logical{Op: "||", X: x, Y: y, exprBase: exprBase{Line: line}}
	}
	return x, nil
}

func (p *Parser) andExpr() (Expr, error) {
	x, err := p.bitOrExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("&&") {
		line := p.advance().Line
		y, err := p.bitOrExpr()
		if err != nil {
			return nil, err
		}
		x = &Logical{Op: "&&", X: x, Y: y, exprBase: exprBase{Line: line}}
	}
	return x, nil
}

func (p *Parser) bitOrExpr() (Expr, error) {
	return p.binaryLevel([]string{"|"}, p.bitXorExpr)
}

func (p *Parser) bitXorExpr() (Expr, error) {
	return p.binaryLevel([]string{"^"}, p.bitAndExpr)
}

func (p *Parser) bitAndExpr() (Expr, error) {
	// `&` is binary AND here; the unary address-of case is handled in
	// unaryExpr (prefix position).
	return p.binaryLevel([]string{"&"}, p.eqExpr)
}

func (p *Parser) eqExpr() (Expr, error) {
	return p.binaryLevel([]string{"==", "!="}, p.relExpr)
}

func (p *Parser) relExpr() (Expr, error) {
	return p.binaryLevel([]string{"<", "<=", ">", ">="}, p.addExpr)
}

func (p *Parser) addExpr() (Expr, error) {
	return p.binaryLevel([]string{"+", "-"}, p.mulExpr)
}

func (p *Parser) mulExpr() (Expr, error) {
	return p.binaryLevel([]string{"*", "/", "%"}, p.unaryExpr)
}

func (p *Parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == TPunct {
		switch t.Text {
		case "!", "-", "*", "&":
			p.advance()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.Text, X: x, exprBase: exprBase{Line: t.Line}}, nil
		}
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("["):
			line := p.advance().Line
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{Base: x, Idx: idx, exprBase: exprBase{Line: line}}
		case p.isPunct("->"):
			line := p.advance().Line
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Field{Base: x, Name: name.Text, Arrow: true, exprBase: exprBase{Line: line}}
		case p.isPunct("."):
			line := p.advance().Line
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Field{Base: x, Name: name.Text, Arrow: false, exprBase: exprBase{Line: line}}
		default:
			return x, nil
		}
	}
}

func (p *Parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TInt:
		p.advance()
		return &IntLit{Val: t.Val, exprBase: exprBase{Line: t.Line}}, nil
	case p.isKeyword("null"):
		p.advance()
		return &IntLit{Val: 0, exprBase: exprBase{Line: t.Line}}, nil
	case p.isKeyword("sizeof"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &SizeOf{TypeName: name.Text, exprBase: exprBase{Line: t.Line}}, nil
	case p.isKeyword("fork"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		args, err := p.argList()
		if err != nil {
			return nil, err
		}
		return &Fork{Name: name.Text, Args: args, exprBase: exprBase{Line: t.Line}}, nil
	case t.Kind == TIdent:
		p.advance()
		if p.isPunct("(") {
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			return &Call{Name: t.Text, Args: args, exprBase: exprBase{Line: t.Line}}, nil
		}
		return &Ident{Name: t.Text, exprBase: exprBase{Line: t.Line}}, nil
	case p.isPunct("("):
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	}
	return nil, p.errf("unexpected %s in expression", t)
}

func (p *Parser) argList() ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.isPunct(")") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if !p.acceptPunct(",") {
			break
		}
	}
	return args, p.expectPunct(")")
}
