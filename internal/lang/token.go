// Package lang implements the mini-C front end of the reproduction: a
// lexer, recursive-descent parser, semantic analyzer, and a lowering pass
// producing the IR of package ir. It replaces the paper's llvm-gcc → LLVM
// bytecode path: the benchmark algorithms are written in this C dialect
// and compiled to labelled IR that the interpreter and synthesizer
// consume.
//
// The dialect covers what the paper's 13 benchmarks need: word-sized ints,
// pointers, global scalars/arrays/structs, struct types, functions,
// if/while/for control flow, short-circuit booleans, and the concurrency
// primitives cas, fence (full, store-store, store-load), fork/join/self,
// lock/unlock (lowered to a CAS spin loop wrapped in fences, §5.2), the
// allocator hooks alloc/free (mmap analogues), and assert/print.
// Functions may be marked `operation` to appear in checked histories.
package lang

import (
	"fmt"
	"unicode"
)

// Kind classifies tokens.
type Kind uint8

const (
	TEOF Kind = iota
	TIdent
	TInt
	TPunct   // single/multi char operators and delimiters
	TKeyword // reserved words
)

// Token is one lexeme with its source position.
type Token struct {
	Kind Kind
	Text string
	Val  int64 // TInt value
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TEOF:
		return "end of file"
	case TInt:
		return fmt.Sprintf("%d", t.Val)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"int": true, "void": true, "struct": true, "const": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
	"operation": true, "fork": true, "join": true, "null": true,
	"sizeof": true,
}

// Lexer tokenizes mini-C source.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			startLine := l.line
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("line %d: unterminated block comment", startLine)
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-char punctuation, longest first
var punct2 = []string{"==", "!=", "<=", ">=", "&&", "||", "->"}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TEOF
		return tok, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var s []rune
		for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			s = append(s, l.advance())
		}
		tok.Text = string(s)
		if keywords[tok.Text] {
			tok.Kind = TKeyword
		} else {
			tok.Kind = TIdent
		}
		return tok, nil
	case unicode.IsDigit(r):
		var v int64
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			v = v*10 + int64(l.advance()-'0')
		}
		if l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || l.peek() == '_') {
			return tok, fmt.Errorf("line %d:%d: malformed number", tok.Line, tok.Col)
		}
		tok.Kind = TInt
		tok.Val = v
		return tok, nil
	default:
		for _, p2 := range punct2 {
			if r == rune(p2[0]) && l.peek2() == rune(p2[1]) {
				l.advance()
				l.advance()
				tok.Kind = TPunct
				tok.Text = p2
				return tok, nil
			}
		}
		switch r {
		case '+', '-', '*', '/', '%', '(', ')', '{', '}', '[', ']', ';', ',', '=', '<', '>', '!', '&', '.', '|', '^':
			l.advance()
			tok.Kind = TPunct
			tok.Text = string(r)
			return tok, nil
		}
		return tok, fmt.Errorf("line %d:%d: unexpected character %q", tok.Line, tok.Col, string(r))
	}
}

// Tokenize consumes the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TEOF {
			return out, nil
		}
	}
}
