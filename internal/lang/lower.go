package lang

import (
	"fmt"

	"dfence/internal/ir"
	"dfence/internal/staticanalysis"
)

// Compile parses, analyzes, and lowers mini-C source into a linked IR
// program ready for execution and synthesis.
func Compile(src string) (*ir.Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	u, err := Analyze(f)
	if err != nil {
		return nil, err
	}
	return Lower(u)
}

// MustCompile is Compile that panics on error — for the embedded benchmark
// programs, whose sources are fixed at build time and covered by tests.
func MustCompile(src string) *ir.Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Lower generates IR for an analyzed unit and links it.
func Lower(u *Unit) (*ir.Program, error) {
	prog := ir.NewProgram()
	for _, g := range u.GlobalOrder {
		if err := prog.AddGlobal(&ir.Global{Name: g.Name, Size: g.Words}); err != nil {
			return nil, err
		}
	}
	// Scalar initializers.
	for _, gd := range u.File.Globals {
		if gd.Init == nil {
			continue
		}
		v, err := u.foldConst(gd.Init)
		if err != nil {
			return nil, err
		}
		prog.Global(gd.Name).Init = []int64{v}
	}
	for _, fn := range u.File.Funcs {
		if err := lowerFunc(u, prog, fn); err != nil {
			return nil, err
		}
	}
	if err := prog.Link(); err != nil {
		return nil, err
	}
	// The verifier backstops the lowering itself: any def-before-use hole,
	// stale link, or unsound ThreadLocal claim the front end produces is a
	// compiler bug and surfaces here instead of as a miscompiled execution.
	if err := staticanalysis.Verify(prog); err != nil {
		return nil, fmt.Errorf("lower: generated IR failed verification: %w", err)
	}
	return prog, nil
}

// loopCtx tracks the innermost loop's branch targets during lowering.
type loopCtx struct {
	continueTo  ir.Label   // backward target (loop head or post section)
	contFwd     []ir.Patch // forward continues (for-loop post emitted later)
	breaks      []ir.Patch
	forwardCont bool
}

type lowerer struct {
	u     *Unit
	prog  *ir.Program
	b     *ir.FuncBuilder
	regs  map[*Symbol]ir.Reg
	loops []*loopCtx
	ret   *Type
	fname string
}

func lowerFunc(u *Unit, prog *ir.Program, fn *FuncDecl) error {
	b := ir.NewFuncBuilder(prog, fn.Name, len(fn.Params))
	if fn.IsOperation {
		b.MarkOperation()
	}
	l := &lowerer{
		u:     u,
		prog:  prog,
		b:     b,
		regs:  map[*Symbol]ir.Reg{},
		ret:   u.Funcs[fn.Name].Type,
		fname: fn.Name,
	}
	// Sema bound a symbol to each parameter; map them to the incoming
	// argument registers.
	for i := range fn.Params {
		l.regs[fn.Params[i].Sym] = b.Param(i)
	}

	if err := l.block(fn.Body); err != nil {
		return err
	}
	// Fall-off-the-end: non-void functions return 0; void functions return.
	b.SetLine(0)
	if l.ret.Kind != KVoid {
		z := b.Const(0)
		b.RetVal(z)
	} else {
		b.Ret()
	}
	_, err := b.Finish()
	return err
}

func (l *lowerer) errf(line int, format string, args ...any) error {
	return fmt.Errorf("line %d (%s): %s", line, l.fname, fmt.Sprintf(format, args...))
}

// reg returns (allocating on demand) the register of a local/param symbol.
func (l *lowerer) reg(sym *Symbol) ir.Reg {
	if r, ok := l.regs[sym]; ok {
		return r
	}
	r := l.b.NewReg()
	l.regs[sym] = r
	return r
}

func (l *lowerer) block(b *BlockStmt) error {
	for _, s := range b.Stmts {
		if err := l.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (l *lowerer) stmt(s Stmt) error {
	switch x := s.(type) {
	case *BlockStmt:
		return l.block(x)

	case *DeclStmt:
		l.b.SetLine(x.Line)
		dst := l.reg(x.Sym)
		if x.Init != nil {
			v, err := l.expr(x.Init)
			if err != nil {
				return err
			}
			l.b.Mov(dst, v)
		} else {
			z := l.b.Const(0)
			l.b.Mov(dst, z)
		}
		return nil

	case *AssignStmt:
		l.b.SetLine(x.Line)
		return l.assign(x.LHS, x.RHS)

	case *ExprStmt:
		l.b.SetLine(x.Line)
		_, err := l.expr(x.X)
		return err

	case *IfStmt:
		l.b.SetLine(x.Line)
		cond, err := l.expr(x.Cond)
		if err != nil {
			return err
		}
		thenP, elseP := l.b.CondBrF(cond)
		thenP.Here()
		if err := l.block(x.Then); err != nil {
			return err
		}
		if x.Else == nil {
			elseP.Here()
			return nil
		}
		endP := l.b.BrF()
		elseP.Here()
		if err := l.stmt(x.Else); err != nil {
			return err
		}
		endP.Here()
		return nil

	case *WhileStmt:
		l.b.SetLine(x.Line)
		head := l.b.NextLabel()
		cond, err := l.expr(x.Cond)
		if err != nil {
			return err
		}
		bodyP, exitP := l.b.CondBrF(cond)
		bodyP.Here()
		lc := &loopCtx{continueTo: head}
		l.loops = append(l.loops, lc)
		err = l.block(x.Body)
		l.loops = l.loops[:len(l.loops)-1]
		if err != nil {
			return err
		}
		l.b.Br(head)
		exitP.Here()
		for _, p := range lc.breaks {
			p.Here()
		}
		return nil

	case *ForStmt:
		l.b.SetLine(x.Line)
		if x.Init != nil {
			if err := l.stmt(x.Init); err != nil {
				return err
			}
		}
		head := l.b.NextLabel()
		var bodyP, exitP ir.Patch
		hasCond := x.Cond != nil
		if hasCond {
			cond, err := l.expr(x.Cond)
			if err != nil {
				return err
			}
			bodyP, exitP = l.b.CondBrF(cond)
			bodyP.Here()
		}
		lc := &loopCtx{forwardCont: x.Post != nil, continueTo: head}
		l.loops = append(l.loops, lc)
		err := l.block(x.Body)
		l.loops = l.loops[:len(l.loops)-1]
		if err != nil {
			return err
		}
		// Post section: forward continues land here.
		for _, p := range lc.contFwd {
			p.Here()
		}
		if x.Post != nil {
			if err := l.stmt(x.Post); err != nil {
				return err
			}
		}
		l.b.Br(head)
		if hasCond {
			exitP.Here()
		}
		for _, p := range lc.breaks {
			p.Here()
		}
		return nil

	case *ReturnStmt:
		l.b.SetLine(x.Line)
		if x.X == nil {
			l.b.Ret()
			return nil
		}
		v, err := l.expr(x.X)
		if err != nil {
			return err
		}
		l.b.RetVal(v)
		return nil

	case *BreakStmt:
		l.b.SetLine(x.Line)
		lc := l.loops[len(l.loops)-1]
		lc.breaks = append(lc.breaks, l.b.BrF())
		return nil

	case *ContinueStmt:
		l.b.SetLine(x.Line)
		lc := l.loops[len(l.loops)-1]
		if lc.forwardCont {
			lc.contFwd = append(lc.contFwd, l.b.BrF())
		} else {
			l.b.Br(lc.continueTo)
		}
		return nil

	case *JoinStmt:
		l.b.SetLine(x.Line)
		v, err := l.expr(x.X)
		if err != nil {
			return err
		}
		l.b.Join(v)
		return nil
	}
	return fmt.Errorf("lower: unknown statement %T", s)
}

// assign lowers LHS = RHS.
func (l *lowerer) assign(lhs, rhs Expr) error {
	// Local/param targets are registers.
	if id, ok := lhs.(*Ident); ok && (id.Sym.Kind == SymLocal || id.Sym.Kind == SymParam) {
		v, err := l.expr(rhs)
		if err != nil {
			return err
		}
		l.b.Mov(l.reg(id.Sym), v)
		return nil
	}
	addr, err := l.addr(lhs)
	if err != nil {
		return err
	}
	v, err := l.expr(rhs)
	if err != nil {
		return err
	}
	l.b.Store(addr, v, describe(lhs))
	return nil
}

// addr lowers a memory lvalue to its address register.
func (l *lowerer) addr(e Expr) (ir.Reg, error) {
	switch x := e.(type) {
	case *Ident:
		if x.Sym.Kind == SymGlobal {
			return l.b.GlobalAddr(x.Name), nil
		}
		return 0, l.errf(x.Pos(), "%q is not in memory", x.Name)
	case *Unary:
		if x.Op == "*" {
			return l.expr(x.X)
		}
	case *Index:
		base, err := l.expr(x.Base)
		if err != nil {
			return 0, err
		}
		idx, err := l.expr(x.Idx)
		if err != nil {
			return 0, err
		}
		stride := x.Type().SizeWords()
		if stride != 1 {
			s := l.b.Const(stride)
			idx = l.b.BinOp(ir.BinMul, idx, s)
		}
		return l.b.BinOp(ir.BinAdd, base, idx), nil
	case *Field:
		var base ir.Reg
		var err error
		if x.Arrow {
			base, err = l.expr(x.Base)
		} else {
			base, err = l.addr(x.Base)
		}
		if err != nil {
			return 0, err
		}
		if x.Offset == 0 {
			return base, nil
		}
		off := l.b.Const(x.Offset)
		return l.b.BinOp(ir.BinAdd, base, off), nil
	}
	return 0, l.errf(e.Pos(), "expression is not addressable")
}

// expr lowers an expression to a value register.
func (l *lowerer) expr(e Expr) (ir.Reg, error) {
	switch x := e.(type) {
	case *IntLit:
		return l.b.Const(x.Val), nil

	case *SizeOf:
		return l.b.Const(l.u.Structs[x.TypeName].SizeWds), nil

	case *Ident:
		switch x.Sym.Kind {
		case SymLocal, SymParam:
			return l.reg(x.Sym), nil
		case SymConst:
			return l.b.Const(x.Sym.ConstVal), nil
		case SymGlobal:
			if x.Sym.IsArray || x.Sym.Type.Kind == KStruct {
				// Arrays decay; struct values are used via their address.
				return l.b.GlobalAddr(x.Name), nil
			}
			a := l.b.GlobalAddr(x.Name)
			v, _ := l.b.Load(a, x.Name)
			return v, nil
		}
		return 0, l.errf(x.Pos(), "cannot evaluate %q", x.Name)

	case *Unary:
		switch x.Op {
		case "!":
			v, err := l.expr(x.X)
			if err != nil {
				return 0, err
			}
			return l.b.Not(v), nil
		case "-":
			v, err := l.expr(x.X)
			if err != nil {
				return 0, err
			}
			return l.b.Neg(v), nil
		case "&":
			return l.addr(x.X)
		case "*":
			a, err := l.expr(x.X)
			if err != nil {
				return 0, err
			}
			if x.Type().Kind == KStruct {
				return a, nil // struct value == its address
			}
			v, _ := l.b.Load(a, describe(x))
			return v, nil
		}

	case *Binary:
		return l.binary(x)

	case *Logical:
		return l.logical(x)

	case *Index, *Field:
		a, err := l.addr(e)
		if err != nil {
			return 0, err
		}
		if e.Type().Kind == KStruct {
			return a, nil
		}
		v, _ := l.b.Load(a, describe(e))
		return v, nil

	case *Call:
		return l.call(x)

	case *Fork:
		args, err := l.exprList(x.Args)
		if err != nil {
			return 0, err
		}
		return l.b.Fork(x.Name, args...), nil
	}
	return 0, fmt.Errorf("lower: unknown expression %T", e)
}

var binOps = map[string]ir.Bin{
	"+": ir.BinAdd, "-": ir.BinSub, "*": ir.BinMul, "/": ir.BinDiv,
	"%": ir.BinMod, "&": ir.BinAnd, "|": ir.BinOr, "^": ir.BinXor,
	"==": ir.BinEq, "!=": ir.BinNe, "<": ir.BinLt, "<=": ir.BinLe,
	">": ir.BinGt, ">=": ir.BinGe,
}

func (l *lowerer) binary(x *Binary) (ir.Reg, error) {
	a, err := l.expr(x.X)
	if err != nil {
		return 0, err
	}
	b, err := l.expr(x.Y)
	if err != nil {
		return 0, err
	}
	op, ok := binOps[x.Op]
	if !ok {
		return 0, l.errf(x.Pos(), "unknown operator %q", x.Op)
	}
	// C pointer arithmetic: p ± n advances by n elements.
	if (x.Op == "+" || x.Op == "-") && x.X.Type().Kind == KPtr && x.Y.Type().Kind != KPtr {
		if stride := x.X.Type().Elem.SizeWords(); stride != 1 {
			s := l.b.Const(stride)
			b = l.b.BinOp(ir.BinMul, b, s)
		}
	}
	return l.b.BinOp(op, a, b), nil
}

func (l *lowerer) logical(x *Logical) (ir.Reg, error) {
	res := l.b.NewReg()
	a, err := l.expr(x.X)
	if err != nil {
		return 0, err
	}
	at, af := l.b.CondBrF(a)
	if x.Op == "&&" {
		// a true: result = (y != 0); a false: result = 0.
		at.Here()
		bv, err := l.expr(x.Y)
		if err != nil {
			return 0, err
		}
		nb := l.b.Not(bv)
		l.b.Mov(res, l.b.Not(nb)) // normalize to 0/1
		end := l.b.BrF()
		af.Here()
		z := l.b.Const(0)
		l.b.Mov(res, z)
		end.Here()
	} else {
		// a true: result = 1; a false: result = (y != 0).
		at.Here()
		one := l.b.Const(1)
		l.b.Mov(res, one)
		end := l.b.BrF()
		af.Here()
		bv, err := l.expr(x.Y)
		if err != nil {
			return 0, err
		}
		nb := l.b.Not(bv)
		l.b.Mov(res, l.b.Not(nb))
		end.Here()
	}
	return res, nil
}

func (l *lowerer) exprList(es []Expr) ([]ir.Reg, error) {
	out := make([]ir.Reg, len(es))
	for i, e := range es {
		r, err := l.expr(e)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func (l *lowerer) call(x *Call) (ir.Reg, error) {
	switch x.Name {
	case "cas":
		addr, err := l.expr(x.Args[0])
		if err != nil {
			return 0, err
		}
		old, err := l.expr(x.Args[1])
		if err != nil {
			return 0, err
		}
		newv, err := l.expr(x.Args[2])
		if err != nil {
			return 0, err
		}
		r, _ := l.b.Cas(addr, old, newv, "cas "+describe(x.Args[0]))
		return r, nil
	case "fence":
		l.b.Fence(ir.FenceFull)
		return l.b.Const(0), nil
	case "fence_ss":
		l.b.Fence(ir.FenceStoreStore)
		return l.b.Const(0), nil
	case "fence_sl":
		l.b.Fence(ir.FenceStoreLoad)
		return l.b.Const(0), nil
	case "fence_ll":
		l.b.Fence(ir.FenceLoadLoad)
		return l.b.Const(0), nil
	case "fence_ls":
		l.b.Fence(ir.FenceLoadStore)
		return l.b.Const(0), nil
	case "fence_acq":
		l.b.Fence(ir.FenceAcquire)
		return l.b.Const(0), nil
	case "fence_rel":
		l.b.Fence(ir.FenceRelease)
		return l.b.Const(0), nil
	case "alloc":
		n, err := l.expr(x.Args[0])
		if err != nil {
			return 0, err
		}
		return l.b.Alloc(n), nil
	case "sysfree":
		p, err := l.expr(x.Args[0])
		if err != nil {
			return 0, err
		}
		l.b.Free(p)
		return l.b.Const(0), nil
	case "self":
		return l.b.Self(), nil
	case "assert":
		c, err := l.expr(x.Args[0])
		if err != nil {
			return 0, err
		}
		l.b.Assert(c, fmt.Sprintf("%s: assertion at line %d", l.fname, x.Pos()))
		return l.b.Const(0), nil
	case "print":
		v, err := l.expr(x.Args[0])
		if err != nil {
			return 0, err
		}
		l.b.Print(v)
		return l.b.Const(0), nil
	case "lock":
		// Paper §5.2: acquire is a CAS loop writing 1, wrapped in fences.
		addr, err := l.expr(x.Args[0])
		if err != nil {
			return 0, err
		}
		l.b.Fence(ir.FenceFull)
		head := l.b.NextLabel()
		zero := l.b.Const(0)
		one := l.b.Const(1)
		ok, _ := l.b.Cas(addr, zero, one, "lock "+describe(x.Args[0]))
		fail := l.b.Not(ok)
		again, done := l.b.CondBrF(fail)
		again.Here()
		l.b.Br(head)
		done.Here()
		l.b.Fence(ir.FenceFull)
		return l.b.Const(0), nil
	case "unlock":
		addr, err := l.expr(x.Args[0])
		if err != nil {
			return 0, err
		}
		l.b.Fence(ir.FenceFull)
		zero := l.b.Const(0)
		l.b.Store(addr, zero, "unlock "+describe(x.Args[0]))
		l.b.Fence(ir.FenceFull)
		return l.b.Const(0), nil
	}
	// User function.
	args, err := l.exprList(x.Args)
	if err != nil {
		return 0, err
	}
	sym := l.u.Funcs[x.Name]
	dst := ir.NoReg
	if sym.Type.Kind != KVoid {
		dst = l.b.NewReg()
	}
	l.b.Call(dst, x.Name, args...)
	if dst == ir.NoReg {
		return l.b.Const(0), nil
	}
	return dst, nil
}

// describe renders a short source-ish description for IR comments.
func describe(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *Unary:
		return x.Op + describe(x.X)
	case *Index:
		return describe(x.Base) + "[i]"
	case *Field:
		sep := "."
		if x.Arrow {
			sep = "->"
		}
		return describe(x.Base) + sep + x.Name
	case *IntLit:
		return fmt.Sprint(x.Val)
	}
	return "expr"
}
