package lang

import (
	"strings"
	"testing"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/sched"
)

// runProg executes an already-compiled program under the given model.
func runProg(t *testing.T, prog *ir.Program, model memmodel.Model) *interp.Result {
	t.Helper()
	res := sched.Run(prog, model, nil, sched.DefaultOptions(1))
	if res.Violation != nil {
		t.Fatalf("violation: %v", res.Violation)
	}
	return res
}

func TestDisasmStructure(t *testing.T) {
	prog, err := Compile(`
int g = 3;
operation int bump(int d) {
  g = g + d;
  return g;
}
int main() {
  return bump(2);
}`)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Disasm()
	for _, want := range []string{
		"global g[1]",
		"operation bump",
		"func main",
		"load",
		"store",
		"call bump",
		"ret",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	res := run(t, `
int main() {
  print(2 + 3 * 4);        // 14
  print((2 + 3) * 4);      // 20
  print(10 - 4 - 3);       // 3 (left assoc)
  print(20 / 2 / 5);       // 2
  print(1 + 2 == 3);       // 1
  print(1 < 2 == 1);       // (1<2)==1 = 1
  print(1 | 2 + 1);        // 1 | 3 = 3 (| looser than +)
  print(!1 + 1);           // (!1)+1 = 1
  print(- 2 * 3);          // -6
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 14, 20, 3, 2, 1, 1, 3, 1, -6)
}

func TestCommentsEverywhere(t *testing.T) {
	res := run(t, `
// leading comment
int /* inline */ main() {
  int x = 1; // trailing
  /* block
     spanning lines */
  return x;
}`, memmodel.SC)
	if res.ExitCode != 1 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestShadowingInNestedScopes(t *testing.T) {
	res := run(t, `
int main() {
  int x = 1;
  {
    int x = 2;
    print(x);
  }
  print(x);
  for (int x = 9; x < 10; x = x + 1) {
    print(x);
  }
  print(x);
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 2, 1, 9, 1)
}

func TestWhileWithComplexCondition(t *testing.T) {
	res := run(t, `
int main() {
  int i = 0;
  int j = 10;
  while (i < 5 && j > 7) {
    i = i + 1;
    j = j - 1;
  }
  print(i);
  print(j);
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 3, 7)
}

func TestEmptyForParts(t *testing.T) {
	res := run(t, `
int main() {
  int i = 0;
  for (; i < 3;) {
    i = i + 1;
  }
  print(i);
  int n = 0;
  for (int k = 0; ; k = k + 1) {
    if (k == 4) { break; }
    n = n + 1;
  }
  print(n);
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 3, 4)
}

func TestStructPointerChains(t *testing.T) {
	res := run(t, `
struct Node { int val; Node* next; }
int main() {
  Node* a = alloc(sizeof(Node));
  Node* b = alloc(sizeof(Node));
  Node* c = alloc(sizeof(Node));
  a->next = b;
  b->next = c;
  c->val = 99;
  print(a->next->next->val);
  a->next->next->val = 100;
  print(c->val);
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 99, 100)
}

func TestGlobalStructWithStructArrayField(t *testing.T) {
	res := run(t, `
struct Inner { int a; int b; }
struct Outer { int tag; Inner in; }
Outer o;
int main() {
  o.tag = 1;
  o.in.a = 2;
  o.in.b = 3;
  print(o.tag + o.in.a + o.in.b);
  print(sizeof(Outer));
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 6, 3)
}

func TestRecursiveMutualFunctions(t *testing.T) {
	res := run(t, `
int isEven(int n) {
  if (n == 0) { return 1; }
  return isOdd(n - 1);
}
int isOdd(int n) {
  if (n == 0) { return 0; }
  return isEven(n - 1);
}
int main() {
  print(isEven(10));
  print(isOdd(7));
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 1, 1)
}

func TestOptimizeOnCompiledProgram(t *testing.T) {
	prog, err := Compile(`
int g = 0;
int main() {
  int a = 2 + 3;
  int b = a * 4;
  g = b;
  return g;
}`)
	if err != nil {
		t.Fatal(err)
	}
	before := prog.CountInstrs()
	ir.Optimize(prog)
	if prog.CountInstrs() >= before {
		t.Errorf("optimizer did not shrink compiled output: %d -> %d", before, prog.CountInstrs())
	}
	res := runProg(t, prog, memmodel.SC)
	if res.ExitCode != 20 {
		t.Errorf("exit = %d, want 20", res.ExitCode)
	}
}

func TestNegativeConstants(t *testing.T) {
	res := run(t, `
const NEG = -5;
int main() {
  print(NEG);
  print(-NEG);
  int x = -3;
  print(x % 2);  // Go-style: -1
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, -5, 5, -1)
}

func TestDeepExpressionNesting(t *testing.T) {
	res := run(t, `
int main() {
  print(((((1 + 2) * (3 + 4)) - ((5 - 6) * (7 - 8))) / 2));
  return 0;
}`, memmodel.SC)
	wantOutput(t, res, 10)
}

func TestErrorForkUnknownFunction(t *testing.T) {
	wantCompileError(t, `int main() { int t = fork nope(); join t; return 0; }`, "fork of undefined")
}

func TestErrorForkArgCount(t *testing.T) {
	wantCompileError(t, `
void w(int a) { }
int main() { int t = fork w(); join t; return 0; }`, "expects 1 arguments")
}

func TestErrorSizeofUnknown(t *testing.T) {
	wantCompileError(t, `int main() { return sizeof(Nope); }`, "unknown struct")
}

func TestErrorDotOnPointer(t *testing.T) {
	wantCompileError(t, `
struct N { int v; }
int main() {
  N* p = alloc(sizeof(N));
  return p.v;
}`, ". on non-struct")
}

func TestErrorAssignToArray(t *testing.T) {
	wantCompileError(t, `
int arr[4];
int main() { arr = 0; return 0; }`, "cannot assign to array")
}

func TestErrorAssignToConst(t *testing.T) {
	wantCompileError(t, `
const K = 5;
int main() { K = 6; return 0; }`, "cannot assign")
}

func TestErrorContinueOutsideLoop(t *testing.T) {
	wantCompileError(t, `int main() { continue; return 0; }`, "continue outside loop")
}

func TestErrorGlobalStructInitializer(t *testing.T) {
	wantCompileError(t, `
struct P { int a; }
P g = 5;
int main() { return 0; }`, "scalar globals")
}

func TestErrorNonConstGlobalInit(t *testing.T) {
	wantCompileError(t, `
int f() { return 1; }
int g = f();
int main() { return 0; }`, "constant")
}

func TestErrorDuplicateField(t *testing.T) {
	wantCompileError(t, `
struct P { int a; int a; }
int main() { return 0; }`, "duplicate field")
}

func TestErrorDuplicateParam(t *testing.T) {
	wantCompileError(t, `
int f(int a, int a) { return a; }
int main() { return 0; }`, "duplicate parameter")
}

func TestErrorLocalRedeclared(t *testing.T) {
	wantCompileError(t, `
int main() {
  int x = 1;
  int x = 2;
  return x;
}`, "redeclared")
}
