package proggen

import (
	"reflect"
	"testing"

	"dfence/internal/litmus"
	"dfence/internal/memmodel"
)

func TestEnumerateSB(t *testing.T) {
	sb, err := litmus.ByName("SB")
	if err != nil {
		t.Fatal(err)
	}
	prog := sb.Program()
	var opts EnumOptions

	esc := Enumerate(prog, memmodel.SC, opts)
	if !esc.Complete {
		t.Fatalf("SC enumeration incomplete (%d states)", esc.States)
	}
	for _, o := range []string{"0,1|exit=0", "1,0|exit=0", "1,1|exit=0"} {
		if !esc.Outcomes[o] {
			t.Errorf("SC misses interleaving outcome %q (got %v)", o, esc.SortedOutcomes())
		}
	}
	if esc.Outcomes["0,0|exit=0"] {
		t.Errorf("SC reaches the store-buffering outcome 0,0: %v", esc.SortedOutcomes())
	}

	etso := Enumerate(prog, memmodel.TSO, opts)
	if !etso.Complete {
		t.Fatalf("TSO enumeration incomplete (%d states)", etso.States)
	}
	if !etso.Outcomes["0,0|exit=0"] {
		t.Errorf("TSO enumeration misses the store-buffering outcome 0,0: %v", etso.SortedOutcomes())
	}
	for o := range esc.Outcomes {
		if !etso.Outcomes[o] {
			t.Errorf("SC outcome %q not reachable under TSO", o)
		}
	}
}

// TestEnumerateVsLitmus replays the whole litmus conformance suite
// against the enumerator: every verdict the suite states (outcome
// forbidden under a model / distinguishing outcome the model allows) must
// hold of the exhaustively computed behavior set, not just of sampled
// schedules. Litmus outcomes lack the enumerator's exit suffix; all suite
// programs return 0.
func TestEnumerateVsLitmus(t *testing.T) {
	opts := EnumOptions{MaxStates: 400000, MaxSteps: 50000}
	for _, test := range litmus.All() {
		prog := test.Program()
		for _, model := range memmodel.Models() {
			v, ok := test.Results[model]
			if !ok {
				continue
			}
			r := Enumerate(prog, model, opts)
			if !r.Complete {
				t.Fatalf("%s under %v: enumeration incomplete (%d states)", test.Name, model, r.States)
			}
			if r.HasViolation() {
				t.Errorf("%s under %v: unexpected violation %v", test.Name, model, r.SortedViolations())
			}
			for _, f := range v.Forbidden {
				if r.Outcomes[string(f)+"|exit=0"] {
					t.Errorf("%s under %v: forbidden outcome %q is enumerable", test.Name, model, f)
				}
			}
			if v.Distinguishing != "" && !r.Outcomes[string(v.Distinguishing)+"|exit=0"] {
				t.Errorf("%s under %v: distinguishing outcome %q not enumerable (got %v)",
					test.Name, model, v.Distinguishing, r.SortedOutcomes())
			}
		}
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	p := Corpus(11, 3)[1] // a random program
	prog, err := p.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var opts EnumOptions
	a := Enumerate(prog, memmodel.PSO, opts)
	b := Enumerate(prog, memmodel.PSO, opts)
	if a.States != b.States || a.Paths != b.Paths {
		t.Errorf("state/path counts differ across runs: %d/%d vs %d/%d", a.States, a.Paths, b.States, b.Paths)
	}
	if !reflect.DeepEqual(a.SortedOutcomes(), b.SortedOutcomes()) {
		t.Errorf("outcome sets differ across runs:\n%v\n%v", a.SortedOutcomes(), b.SortedOutcomes())
	}
}

// TestEnumerateSpinLoop pins down that state dedup makes unbounded spin
// loops enumerable: MP's consumer busy-waits on a flag, so the naive
// schedule tree is infinite, but the spin revisits one machine state.
func TestEnumerateSpinLoop(t *testing.T) {
	mp, err := litmus.ByName("MP")
	if err != nil {
		t.Fatal(err)
	}
	r := Enumerate(mp.Program(), memmodel.PSO, EnumOptions{})
	if !r.Complete {
		t.Fatalf("MP enumeration incomplete (%d states) — spin-loop dedup broken?", r.States)
	}
	if !r.Outcomes["0|exit=0"] || !r.Outcomes["42|exit=0"] {
		t.Errorf("MP under PSO should reach both 0 and 42, got %v", r.SortedOutcomes())
	}
}
