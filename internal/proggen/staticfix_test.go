package proggen

// Corpus-wide cross-check of the static fence synthesis
// (staticanalysis.Fix) against the two independent ground truths this
// package owns:
//
//   - the exhaustive enumerator: a statically fixed template must have no
//     reachable violation under its model (soundness);
//   - dynamic synthesis: running core.Synthesize on the fixed program
//     must converge with zero additional fences (the static repair
//     subsumes the dynamic one).
//
// Plus the placement's own contracts: determinism (bit-identical across
// runs), non-redundancy (dropping any fence breaks robustness), and the
// cost ceiling (never costlier than one full fence per delay L).

import (
	"fmt"
	"testing"

	"dfence/internal/core"
	"dfence/internal/memmodel"
	"dfence/internal/spec"
	"dfence/internal/staticanalysis"
)

// fixModels are the relaxed models the cross-check sweeps. SC is omitted:
// every program is robust under SC and Fix degenerates to "no fences".
var fixModels = []memmodel.Model{memmodel.TSO, memmodel.PSO, memmodel.RMO}

// bareTemplates compiles every bare template admissible under model with
// the given thread counts.
func bareTemplates(t *testing.T, model memmodel.Model, threads []int) []*Prog {
	t.Helper()
	var out []*Prog
	for _, n := range threads {
		for _, shape := range staticanalysis.CriticalCycleShapes(model, n) {
			out = append(out, TemplateProg(shape, VariantBare))
		}
	}
	if len(out) == 0 {
		t.Fatalf("no %v cycle shapes — RelaxedEdgeKinds broken?", model)
	}
	return out
}

func TestStaticFixTemplatesSoundAndMinimal(t *testing.T) {
	if testing.Short() {
		t.Skip("enumerates every fixed template in full")
	}
	for _, model := range fixModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			for _, p := range bareTemplates(t, model, []int{2, 3}) {
				prog, err := p.Compile()
				if err != nil {
					t.Fatalf("%s: compile: %v", p.Name, err)
				}
				fr, err := staticanalysis.Fix(prog, model)
				if err != nil {
					t.Fatalf("%s: Fix: %v", p.Name, err)
				}
				if len(fr.Placements) == 0 {
					t.Errorf("%s: bare template robust under %v — template generation lost its cycle", p.Name, model)
					continue
				}
				if fr.Truncated || fr.Baseline {
					t.Errorf("%s: litmus-sized fix hit the solver budget (truncated=%v baseline=%v)",
						p.Name, fr.Truncated, fr.Baseline)
				}
				if fr.TotalCost > fr.BaselineCost {
					t.Errorf("%s: TotalCost %d exceeds the all-full-fence baseline %d",
						p.Name, fr.TotalCost, fr.BaselineCost)
				}
				// Determinism: same input, bit-identical placement.
				fr2, err := staticanalysis.Fix(prog, model)
				if err != nil {
					t.Fatalf("%s: second Fix: %v", p.Name, err)
				}
				if fmt.Sprint(fr.Placements) != fmt.Sprint(fr2.Placements) {
					t.Errorf("%s: nondeterministic placement:\n  first  %v\n  second %v",
						p.Name, fr.Placements, fr2.Placements)
				}
				// Soundness per the exhaustive enumerator: the fixed
				// program reaches no violation under the model.
				fenced := prog.Clone()
				if err := staticanalysis.Apply(fenced, fr.Placements); err != nil {
					t.Fatalf("%s: Apply: %v", p.Name, err)
				}
				er := Enumerate(fenced, model, EnumOptions{})
				if !er.Complete {
					t.Errorf("%s: enumeration of the fixed program hit its budget — cannot certify", p.Name)
				} else if er.HasViolation() {
					t.Errorf("%s: fixed program still violates under %v: %v\nplacements: %v",
						p.Name, model, er.SortedViolations(), fr.Placements)
				}
				// Non-redundancy: dropping any placement re-opens a cycle.
				if err := staticanalysis.CheckNonRedundant(prog, model, fr); err != nil {
					t.Errorf("%s: %v", p.Name, err)
				}
			}
		})
	}
}

func TestStaticFixSubsumesDynamicSynthesis(t *testing.T) {
	if testing.Short() {
		t.Skip("runs dynamic synthesis per fixed template")
	}
	for _, model := range fixModels {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			// 2-thread shapes keep the dynamic budget small; the 3-thread
			// shapes exercise the same code paths in the enumerator test.
			for _, p := range bareTemplates(t, model, []int{2}) {
				prog, err := p.Compile()
				if err != nil {
					t.Fatalf("%s: compile: %v", p.Name, err)
				}
				fr, err := staticanalysis.Fix(prog, model)
				if err != nil {
					t.Fatalf("%s: Fix: %v", p.Name, err)
				}
				fenced := prog.Clone()
				if err := staticanalysis.Apply(fenced, fr.Placements); err != nil {
					t.Fatalf("%s: Apply: %v", p.Name, err)
				}
				res, err := core.Synthesize(fenced, core.Config{
					Model:         model,
					Criterion:     spec.MemorySafety,
					ExecsPerRound: 300,
					MaxRounds:     4,
					Seed:          7,
				})
				if err != nil {
					t.Fatalf("%s: Synthesize on fixed program: %v", p.Name, err)
				}
				if len(res.Fences) != 0 {
					t.Errorf("%s: dynamic synthesis added %d fence(s) to a statically fixed program under %v: %v",
						p.Name, len(res.Fences), model, res.Fences)
				}
				if res.Outcome != core.OutcomeConverged {
					t.Errorf("%s: dynamic synthesis on fixed program: outcome %v, want converged", p.Name, res.Outcome)
				}
			}
		})
	}
}
