package proggen

// Litmus-template instantiation: turn an abstract critical-cycle shape
// (staticanalysis.CriticalCycleShapes) into a concrete program with a
// known-forbidden outcome. Thread i of an n-thread shape with edge kind
// e_i performs
//
//	A_i: x_i = 1          (e_i.AClass() == store)
//	     load x_i → a_i   (e_i.AClass() == load; published after B_i)
//	B_i: x_{(i+1)%n} = 2  (e_i.BClass() == store)
//	     load x_{(i+1)%n} → r_i (e_i.BClass() == load)
//
// and the forbidden outcome is the conjunction of the conflict-edge
// witnesses between B_i and A_{i+1}, both at x_{i+1}, each asserting
// that B_i took effect before A_{i+1}:
//
//	B_i store, A_{i+1} store:  x_{i+1} == 1  (A's value survived — co)
//	B_i store, A_{i+1} load:   a_{i+1} == 2  (A read B's value — rf)
//	B_i load,  A_{i+1} store:  r_i == 0      (B read the initial value — fr)
//
// (both loads cannot conflict; CriticalCycleShapes filters those shapes
// out). If every thread's A_i takes effect before its B_i the witnesses
// chain into a cycle A_0 < B_0 ≤ A_1 < B_1 ≤ … < A_0, a contradiction:
// the outcome is unreachable under SC. Conversely, as soon as the model
// relaxes even one thread's po edge (a buffered store or a deferred
// load) the chain breaks and the relaxed semantics reach the outcome —
// which is also why repairing a template requires a fence in *every*
// thread whose edge the model relaxes. The load-class shapes are exactly
// the RMO litmus family: MP-without-dependencies is (st,st)+(ld,ld), LB
// is (ld,st)+(ld,st). main asserts the negation, so the outcome is a
// memory-safety violation dynamic synthesis can chase.

import (
	"fmt"

	"dfence/internal/ir"
	"dfence/internal/staticanalysis"
)

// TemplateVariant selects how much of the cycle is fenced.
type TemplateVariant uint8

const (
	// VariantBare has no fences: every edge of the shape can relax.
	VariantBare TemplateVariant = iota
	// VariantFenced places a full fence between every thread's A and B:
	// the program is robust and the forbidden outcome is unreachable
	// under every model.
	VariantFenced
	// VariantPartial fences only thread 0 — a half-repaired program. With
	// ≥2 threads and any other edge relaxed, the forbidden outcome stays
	// reachable (one delayed thread suffices, see the package comment), so
	// synthesis must finish the job by fencing exactly the remaining
	// relaxed edges.
	VariantPartial
)

func (v TemplateVariant) String() string {
	switch v {
	case VariantBare:
		return "bare"
	case VariantFenced:
		return "fenced"
	case VariantPartial:
		return "partial"
	}
	return fmt.Sprintf("variant(%d)", uint8(v))
}

// TemplateVariants lists every variant, bare first.
func TemplateVariants() []TemplateVariant {
	return []TemplateVariant{VariantBare, VariantFenced, VariantPartial}
}

// TemplateProg instantiates a cycle shape as a structured program.
func TemplateProg(shape staticanalysis.CycleShape, variant TemplateVariant) *Prog {
	n := shape.Threads()
	p := &Prog{Name: fmt.Sprintf("%s-%s", shape.Name(), variant), Template: true}
	for i := 0; i < n; i++ {
		p.Globals = append(p.Globals, Global{Name: fmt.Sprintf("x%d", i)})
	}
	for i, e := range shape.Edges {
		self := fmt.Sprintf("x%d", i)
		next := fmt.Sprintf("x%d", (i+1)%n)
		t := Thread{}
		// Observations are published after B_i so the publishing stores
		// cannot sit between A_i and B_i and perturb the cycle.
		var publish []Stmt
		if e.AClass() == ir.ClassLoad {
			a := fmt.Sprintf("a%d", i)
			p.Globals = append(p.Globals, Global{Name: a})
			t.Stmts = append(t.Stmts, Stmt{Kind: SLoad, L: "u", G: self}) // A_i
			publish = append(publish, Stmt{Kind: SStoreLocal, G: a, L: "u"})
			p.Observe = append(p.Observe, a)
		} else {
			t.Stmts = append(t.Stmts, Stmt{Kind: SStoreConst, G: self, Val: 1}) // A_i
		}
		if variant == VariantFenced || (variant == VariantPartial && i == 0) {
			t.Stmts = append(t.Stmts, Stmt{Kind: SFence, Fence: ir.FenceFull})
		}
		if e.BClass() == ir.ClassLoad {
			r := fmt.Sprintf("r%d", i)
			p.Globals = append(p.Globals, Global{Name: r})
			t.Stmts = append(t.Stmts, Stmt{Kind: SLoad, L: "v", G: next}) // B_i
			publish = append(publish, Stmt{Kind: SStoreLocal, G: r, L: "v"})
			p.Observe = append(p.Observe, r)
		} else {
			t.Stmts = append(t.Stmts, Stmt{Kind: SStoreConst, G: next, Val: 2}) // B_i
		}
		t.Stmts = append(t.Stmts, publish...)
		p.Threads = append(p.Threads, t)
	}
	// Conflict-edge witnesses: one per adjacent pair (B_i, A_{i+1}), both
	// at x_{i+1}, each asserting B_i took effect first.
	for i, e := range shape.Edges {
		j := (i + 1) % n
		bc, ac := e.BClass(), shape.Edges[j].AClass()
		switch {
		case bc == ir.ClassStore && ac == ir.ClassStore:
			p.Forbidden = append(p.Forbidden, Cond{Global: fmt.Sprintf("x%d", j), Equals: 1})
			p.Observe = append(p.Observe, fmt.Sprintf("x%d", j))
		case bc == ir.ClassStore && ac == ir.ClassLoad:
			p.Forbidden = append(p.Forbidden, Cond{Global: fmt.Sprintf("a%d", j), Equals: 2})
		case bc == ir.ClassLoad && ac == ir.ClassStore:
			p.Forbidden = append(p.Forbidden, Cond{Global: fmt.Sprintf("r%d", i), Equals: 0})
		default:
			// Load-load conflicts are filtered out by CriticalCycleShapes;
			// reaching here means the shape is malformed.
			panic(fmt.Sprintf("proggen: shape %s has load-load conflict at edge %d", shape.Name(), i))
		}
	}
	return p
}
