package proggen

// Litmus-template instantiation: turn an abstract critical-cycle shape
// (staticanalysis.CriticalCycleShapes) into a concrete program with a
// known-forbidden outcome. Thread i of an n-thread shape performs
//
//	A_i: x_i = 1
//	B_i: load  x_{(i+1)%n}  (EdgeStoreLoad; result published via r_i)
//	     store x_{(i+1)%n} = 2 (EdgeStoreStore)
//
// and the forbidden outcome is the conjunction of the conflict-edge
// witnesses: r_i == 0 for a load edge (B_i read x_{i+1}'s initial value,
// so it executed before A_{i+1} committed — an fr edge) and x_{i+1} == 1
// for a store edge (A_{i+1}'s value survived, so B_i's store committed
// first — a co edge). If every thread's A_i commits before its B_i takes
// effect the witnesses chain into a cycle A_0 < B_0 ≤ A_1 < B_1 ≤ … < A_0,
// a contradiction: the outcome is unreachable under SC. Conversely, as
// soon as the model relaxes even one thread's po edge the chain breaks
// and the store-buffer semantics reach the outcome (delay that one A in
// its buffer, run everything else SC) — which is also why repairing a
// template requires a fence in *every* thread whose edge the model
// relaxes. main asserts the negation, so the outcome is a memory-safety
// violation dynamic synthesis can chase.

import (
	"fmt"

	"dfence/internal/ir"
	"dfence/internal/staticanalysis"
)

// TemplateVariant selects how much of the cycle is fenced.
type TemplateVariant uint8

const (
	// VariantBare has no fences: every edge of the shape can relax.
	VariantBare TemplateVariant = iota
	// VariantFenced places a full fence between every thread's A and B:
	// the program is robust and the forbidden outcome is unreachable
	// under every model.
	VariantFenced
	// VariantPartial fences only thread 0 — a half-repaired program. With
	// ≥2 threads and any other edge relaxed, the forbidden outcome stays
	// reachable (one delayed thread suffices, see the package comment), so
	// synthesis must finish the job by fencing exactly the remaining
	// relaxed edges.
	VariantPartial
)

func (v TemplateVariant) String() string {
	switch v {
	case VariantBare:
		return "bare"
	case VariantFenced:
		return "fenced"
	case VariantPartial:
		return "partial"
	}
	return fmt.Sprintf("variant(%d)", uint8(v))
}

// TemplateVariants lists every variant, bare first.
func TemplateVariants() []TemplateVariant {
	return []TemplateVariant{VariantBare, VariantFenced, VariantPartial}
}

// TemplateProg instantiates a cycle shape as a structured program.
func TemplateProg(shape staticanalysis.CycleShape, variant TemplateVariant) *Prog {
	n := shape.Threads()
	p := &Prog{Name: fmt.Sprintf("%s-%s", shape.Name(), variant), Template: true}
	for i := 0; i < n; i++ {
		p.Globals = append(p.Globals, Global{Name: fmt.Sprintf("x%d", i)})
	}
	for i, e := range shape.Edges {
		next := fmt.Sprintf("x%d", (i+1)%n)
		t := Thread{}
		t.Stmts = append(t.Stmts, Stmt{Kind: SStoreConst, G: fmt.Sprintf("x%d", i), Val: 1}) // A_i
		if variant == VariantFenced || (variant == VariantPartial && i == 0) {
			t.Stmts = append(t.Stmts, Stmt{Kind: SFence, Fence: ir.FenceFull})
		}
		switch e {
		case staticanalysis.EdgeStoreLoad:
			r := fmt.Sprintf("r%d", i)
			p.Globals = append(p.Globals, Global{Name: r})
			t.Stmts = append(t.Stmts,
				Stmt{Kind: SLoad, L: "v", G: next},    // B_i
				Stmt{Kind: SStoreLocal, G: r, L: "v"}) // publish the observation
			p.Forbidden = append(p.Forbidden, Cond{Global: r, Equals: 0})
			p.Observe = append(p.Observe, r)
		case staticanalysis.EdgeStoreStore:
			t.Stmts = append(t.Stmts, Stmt{Kind: SStoreConst, G: next, Val: 2}) // B_i
			p.Forbidden = append(p.Forbidden, Cond{Global: next, Equals: 1})
			p.Observe = append(p.Observe, next)
		}
		p.Threads = append(p.Threads, t)
	}
	return p
}
