package proggen

// Greedy structural shrinking. A divergence's program is minimized by
// repeatedly trying deletions — whole threads, individual statements
// (anywhere in the nesting), if/loop unwrapping, assert conjuncts,
// observed globals — and keeping any deletion after which the *same*
// divergence kind still reproduces under the same model. Operating on the
// structured Prog keeps every candidate well-formed by construction:
// loops carry their render-managed counter with them, threads take their
// fork/join pair along, and main's assert/print tail is regenerated from
// the Forbidden/Observe lists.
//
// The recheck re-runs the oracle's own comparison (not a cheaper proxy),
// so a shrunk reproduction is guaranteed to still diverge. Synthesis-
// independent divergence kinds skip the synthesis phase during rechecks
// to keep shrinking fast.

import "dfence/internal/memmodel"

// shrinkBudget caps oracle rechecks per divergence; greedy first-success
// restarts keep typical shrinks far below it.
const shrinkBudget = 80

// synthKinds are the divergence kinds whose recheck needs the synthesis
// phase.
var synthKinds = map[string]bool{
	"unfixable":           true,
	"insufficient-fences": true,
	"synth-error":         true,
}

// shrink minimizes d.Prog in place, filling d.Shrunk/d.ShrunkSource.
func (f *fuzzer) shrink(d *Divergence) {
	budget := shrinkBudget
	sub := &fuzzer{cfg: f.cfg, rep: &FuzzReport{}}
	sub.cfg.NoShrink = true
	sub.cfg.Logf = nil
	sub.cfg.skipSynth = !synthKinds[d.Kind]

	reproduces := func(c *Prog) bool {
		if budget <= 0 {
			return false
		}
		budget--
		for _, dd := range sub.check(c, d.Index, []memmodel.Model{d.Model}) {
			if dd.Kind == d.Kind && dd.Model == d.Model {
				return true
			}
		}
		return false
	}

	cur := d.Prog
	improved := true
	for improved && budget > 0 {
		improved = false
		for _, cand := range shrinkCandidates(cur) {
			if reproduces(cand) {
				cur = cand
				improved = true
				break
			}
		}
	}
	d.Shrunk = cur
	d.ShrunkSource = cur.Render()
}

// shrinkCandidates enumerates the one-step reductions of p, smallest-
// impact last (thread deletion first shrinks fastest).
func shrinkCandidates(p *Prog) []*Prog {
	var out []*Prog
	for i := range p.Threads {
		q := p.Clone()
		q.Threads = append(q.Threads[:i], q.Threads[i+1:]...)
		out = append(out, q)
	}
	n := countStmts(p)
	for k := 0; k < n; k++ {
		q := p.Clone()
		if mutateNth(q, k, false) {
			out = append(out, q)
		}
	}
	for k := 0; k < n; k++ {
		q := p.Clone()
		if mutateNth(q, k, true) {
			out = append(out, q)
		}
	}
	if len(p.Forbidden) > 1 {
		for i := range p.Forbidden {
			q := p.Clone()
			q.Forbidden = append(q.Forbidden[:i], q.Forbidden[i+1:]...)
			out = append(out, q)
		}
	}
	if len(p.Observe) > 1 {
		for i := range p.Observe {
			q := p.Clone()
			q.Observe = append(q.Observe[:i], q.Observe[i+1:]...)
			out = append(out, q)
		}
	}
	return out
}

// countStmts counts statements in preorder (the index space mutateNth
// addresses).
func countStmts(p *Prog) int {
	var rec func(ss []Stmt) int
	rec = func(ss []Stmt) int {
		n := 0
		for i := range ss {
			n += 1 + rec(ss[i].Body) + rec(ss[i].Else)
		}
		return n
	}
	n := 0
	for i := range p.Threads {
		n += rec(p.Threads[i].Stmts)
	}
	return n
}

// mutateNth deletes (unwrap=false) or unwraps (unwrap=true; if/loop
// bodies replace the construct) the k-th statement of p in preorder,
// in place. Returns false when the operation was inapplicable (unwrap of
// a flat statement) or k is out of range.
func mutateNth(p *Prog, k int, unwrap bool) bool {
	cnt := 0
	applied := false
	applicable := false
	var rec func(ss []Stmt) []Stmt
	rec = func(ss []Stmt) []Stmt {
		out := make([]Stmt, 0, len(ss))
		for _, s := range ss {
			my := cnt
			cnt++
			if my == k && !applied {
				applied = true
				if unwrap {
					if s.Kind == SIf || s.Kind == SLoop {
						applicable = true
						out = append(out, s.Body...)
						out = append(out, s.Else...)
					} else {
						out = append(out, s)
					}
				} else {
					applicable = true // deletion: drop s and its subtree
				}
				continue
			}
			s.Body = rec(s.Body)
			s.Else = rec(s.Else)
			out = append(out, s)
		}
		return out
	}
	for i := range p.Threads {
		p.Threads[i].Stmts = rec(p.Threads[i].Stmts)
	}
	return applied && applicable
}
