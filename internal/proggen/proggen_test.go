package proggen

import (
	"strings"
	"testing"

	"dfence/internal/memmodel"
	"dfence/internal/staticanalysis"
)

// corpusSources renders every corpus entry (stable fingerprint of the
// whole generation pipeline).
func corpusSources(seed int64, n int) []string {
	out := make([]string, 0, n)
	for _, p := range Corpus(seed, n) {
		out = append(out, p.Name+"\n"+p.Render())
	}
	return out
}

func TestCorpusDeterministic(t *testing.T) {
	a := corpusSources(42, 60)
	b := corpusSources(42, 60)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus entry %d differs between identically-seeded runs:\n%s\n---\n%s", i, a[i], b[i])
		}
	}
	c := corpusSources(43, 60)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	// Templates (every 4th entry) are seed-independent; the 45 randoms
	// must not all coincide across seeds.
	if same >= len(a) {
		t.Fatalf("corpus is seed-independent: all %d entries identical for seeds 42 and 43", same)
	}
}

func TestCorpusCompiles(t *testing.T) {
	for i, p := range Corpus(7, 120) {
		if _, err := p.Compile(); err != nil {
			t.Errorf("corpus[%d] %s does not compile: %v\nsource:\n%s", i, p.Name, err, p.Render())
		}
	}
}

// shapeViolates reports whether the bare template of shape admits its
// forbidden outcome under model: true iff the model relaxes at least one
// edge of the cycle (see template.go's package comment).
func shapeViolates(shape staticanalysis.CycleShape, model memmodel.Model) bool {
	for _, e := range shape.Edges {
		if e == staticanalysis.EdgeStoreLoad && model.RelaxesStoreLoad() {
			return true
		}
		if e == staticanalysis.EdgeStoreStore && model.RelaxesStoreStore() {
			return true
		}
	}
	return false
}

// partialViolates is shapeViolates restricted to the unfenced threads
// (VariantPartial fences thread 0).
func partialViolates(shape staticanalysis.CycleShape, model memmodel.Model) bool {
	for i, e := range shape.Edges {
		if i == 0 {
			continue
		}
		if e == staticanalysis.EdgeStoreLoad && model.RelaxesStoreLoad() {
			return true
		}
		if e == staticanalysis.EdgeStoreStore && model.RelaxesStoreStore() {
			return true
		}
	}
	return false
}

// TestTemplateGroundTruth checks every template against exhaustive
// enumeration: SC never reaches the forbidden outcome, and a weak model
// reaches it exactly when the variant leaves a relaxed edge unfenced.
func TestTemplateGroundTruth(t *testing.T) {
	var opts EnumOptions
	for _, threads := range []int{2, 3} {
		for _, shape := range staticanalysis.CriticalCycleShapes(memmodel.PSO, threads) {
			for _, v := range TemplateVariants() {
				p := TemplateProg(shape, v)
				prog, err := p.Compile()
				if err != nil {
					t.Fatalf("%s: compile: %v\n%s", p.Name, err, p.Render())
				}
				esc := Enumerate(prog, memmodel.SC, opts)
				if !esc.Complete {
					t.Fatalf("%s: SC enumeration incomplete (%d states)", p.Name, esc.States)
				}
				if esc.HasViolation() {
					t.Errorf("%s: forbidden outcome reachable under SC: %v", p.Name, esc.SortedViolations())
				}
				for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
					want := false
					switch v {
					case VariantBare:
						want = shapeViolates(shape, model)
					case VariantPartial:
						want = partialViolates(shape, model)
					}
					em := Enumerate(prog, model, opts)
					if !em.Complete {
						t.Fatalf("%s: %v enumeration incomplete (%d states)", p.Name, model, em.States)
					}
					if got := em.HasViolation(); got != want {
						t.Errorf("%s under %v: violation reachable = %v, want %v (violations: %v)",
							p.Name, model, got, want, em.SortedViolations())
					}
				}
			}
		}
	}
}

// TestConstructDetect closes the loop with the static analysis: a bare
// cycle built *from* the delay-set machinery's own shapes must be flagged
// non-robust by Analyze, and the fully fenced variant robust.
func TestConstructDetect(t *testing.T) {
	for _, threads := range []int{2, 3} {
		for _, shape := range staticanalysis.CriticalCycleShapes(memmodel.PSO, threads) {
			bare := TemplateProg(shape, VariantBare)
			prog, err := bare.Compile()
			if err != nil {
				t.Fatalf("%s: compile: %v", bare.Name, err)
			}
			st, err := staticanalysis.Analyze(prog, memmodel.PSO)
			if err != nil {
				t.Fatalf("%s: analyze: %v", bare.Name, err)
			}
			if st.Robust() {
				t.Errorf("%s: bare critical cycle reported statically robust under PSO", bare.Name)
			}
			if len(st.Delays) < shape.Threads() {
				t.Errorf("%s: %d delay pairs for a %d-thread cycle, want at least one per thread",
					bare.Name, len(st.Delays), shape.Threads())
			}

			fenced := TemplateProg(shape, VariantFenced)
			fprog, err := fenced.Compile()
			if err != nil {
				t.Fatalf("%s: compile: %v", fenced.Name, err)
			}
			fst, err := staticanalysis.Analyze(fprog, memmodel.PSO)
			if err != nil {
				t.Fatalf("%s: analyze: %v", fenced.Name, err)
			}
			if !fst.Robust() {
				t.Errorf("%s: fully fenced cycle not statically robust under PSO (delays: %v)",
					fenced.Name, fst.Delays)
			}
		}
	}
}

func TestTemplateShapeCounts(t *testing.T) {
	if got := staticanalysis.CriticalCycleShapes(memmodel.SC, 2); got != nil {
		t.Errorf("SC shapes = %v, want none", got)
	}
	if got := len(staticanalysis.CriticalCycleShapes(memmodel.TSO, 2)); got != 1 {
		t.Errorf("TSO 2-thread shapes = %d, want 1 (all edges st-ld)", got)
	}
	if got := len(staticanalysis.CriticalCycleShapes(memmodel.PSO, 3)); got != 8 {
		t.Errorf("PSO 3-thread shapes = %d, want 2^3", got)
	}
}

func TestRenderShape(t *testing.T) {
	shapes := staticanalysis.CriticalCycleShapes(memmodel.TSO, 2)
	p := TemplateProg(shapes[0], VariantBare)
	src := p.Render()
	for _, want := range []string{"int x0 = 0;", "void t0()", "fork t0()", "join", "assert(!("} {
		if !strings.Contains(src, want) {
			t.Errorf("rendered template missing %q:\n%s", want, src)
		}
	}
}
