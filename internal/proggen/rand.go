package proggen

// Randomized mini-C generation. Programs are memory-safe and deadlock-free
// by construction: every address is a named scalar global, loops run a
// fixed trip count over a render-managed counter (no spinning on shared
// state), and asserts are only ever injected later by the oracle from an
// enumerated outcome. That confines the interesting behavior to exactly
// what the harness cross-checks — which outcome tuples the store-buffer
// semantics admit.
//
// Sizes are tuned so the brute-force enumerator stays tractable: 2–3
// worker threads, a handful of shared accesses each, loops of trip count
// 2 at most one level deep.

import (
	"fmt"
	"math/rand"

	"dfence/internal/ir"
)

// splitmix64 derives a well-mixed per-program seed from (base, index), so
// neighboring corpus indices get uncorrelated streams and the corpus is a
// pure function of the base seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ProgSeed returns the RNG seed for corpus entry idx under base seed.
func ProgSeed(base int64, idx int) int64 {
	return int64(splitmix64(splitmix64(uint64(base)) ^ uint64(idx)))
}

type randGen struct {
	rng     *rand.Rand
	globals []string // shared variables
	locals  []string // per-thread local names (same names reused per thread)
}

// RandomProg generates corpus entry idx for the base seed. Same (seed,
// idx) always yields the identical program.
func RandomProg(seed int64, idx int) *Prog {
	g := &randGen{rng: rand.New(rand.NewSource(ProgSeed(seed, idx)))}
	nShared := 2 + g.rng.Intn(3) // 2..4
	nThreads := 2                //
	if g.rng.Intn(4) == 0 {      // 25%: three threads
		nThreads = 3
	}
	nLocals := 1 + g.rng.Intn(2) // 1..2

	p := &Prog{Name: fmt.Sprintf("rand-%d", idx)}
	for i := 0; i < nShared; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		p.Globals = append(p.Globals, Global{Name: name})
	}
	for i := 0; i < nLocals; i++ {
		g.locals = append(g.locals, fmt.Sprintf("l%d", i))
	}

	for t := 0; t < nThreads; t++ {
		n := 2 + g.rng.Intn(4) // 2..5 top-level statements
		var body []Stmt
		for i := 0; i < n; i++ {
			body = append(body, g.stmt(1))
		}
		// Publish each local into a dedicated result global so local
		// computation becomes part of the observable outcome tuple.
		for li, l := range g.locals {
			r := fmt.Sprintf("r%d_%d", t, li)
			p.Globals = append(p.Globals, Global{Name: r})
			p.Observe = append(p.Observe, r)
			body = append(body, Stmt{Kind: SStoreLocal, G: r, L: l})
		}
		p.Threads = append(p.Threads, Thread{Stmts: body})
	}
	for _, name := range g.globals {
		p.Observe = append(p.Observe, name)
	}
	return p
}

// stmt draws one statement; depth limits nesting (if/loop bodies only
// contain flat statements).
func (g *randGen) stmt(depth int) Stmt {
	lim := 100
	if depth > 1 {
		lim = 72 // flat kinds only
	}
	switch n := g.rng.Intn(lim); {
	case n < 22: // store constant
		return Stmt{Kind: SStoreConst, G: g.global(), Val: int64(1 + g.rng.Intn(3))}
	case n < 30: // store local
		return Stmt{Kind: SStoreLocal, G: g.global(), L: g.local()}
	case n < 52: // load
		return Stmt{Kind: SLoad, L: g.local(), G: g.global()}
	case n < 58: // cas, result discarded
		return Stmt{Kind: SCas, G: g.global(), Old: int64(g.rng.Intn(2)), New: int64(1 + g.rng.Intn(3))}
	case n < 62: // cas into local
		return Stmt{Kind: SCasTo, L: g.local(), G: g.global(), Old: int64(g.rng.Intn(2)), New: int64(1 + g.rng.Intn(3))}
	case n < 66: // fence, drawn from the full vocabulary
		kinds := ir.FenceKinds()
		return Stmt{Kind: SFence, Fence: kinds[g.rng.Intn(len(kinds))]}
	case n < 72: // local arithmetic
		return Stmt{Kind: SLocalAdd, L: g.local(), Val: int64(1 + g.rng.Intn(2))}
	case n < 88: // branch on a local
		ops := []string{"==", "!=", "<", ">"}
		s := Stmt{
			Kind:  SIf,
			L:     g.local(),
			CmpOp: ops[g.rng.Intn(len(ops))],
			Val:   int64(g.rng.Intn(2)),
			Body:  []Stmt{g.stmt(depth + 1)},
		}
		if g.rng.Intn(2) == 0 {
			s.Else = []Stmt{g.stmt(depth + 1)}
		}
		return s
	default: // bounded loop
		body := []Stmt{g.stmt(depth + 1)}
		if g.rng.Intn(2) == 0 {
			body = append(body, g.stmt(depth+1))
		}
		return Stmt{Kind: SLoop, Iters: 2, Body: body}
	}
}

func (g *randGen) global() string { return g.globals[g.rng.Intn(len(g.globals))] }
func (g *randGen) local() string  { return g.locals[g.rng.Intn(len(g.locals))] }
