package proggen

// Exhaustive interleaving+flush+resolve enumeration — the ground-truth
// oracle. The interpreter (interp.Machine) exposes three scheduler-visible
// transitions — "thread tid executes its next step", "thread tid flushes
// the oldest buffered store for address a", and (under load-deferring
// models) "thread tid resolves its idx-th deferred load" — so a program's
// full behavior space is the tree of finite choice sequences. The enumerator
// walks that tree by depth-first replay: a pooled Machine is Reset and
// the choice prefix re-applied (the Machine has no snapshot/undo), and
// each decision point is fingerprinted with Machine.AppendStateKey so any
// prefix reaching an already-expanded state is pruned. With memoization
// the cost is O(|states| × branching × replay-depth), which is what keeps
// litmus-sized programs (a few thousand states) enumerable in
// milliseconds.
//
// Two reductions keep the tree small without losing outcomes:
//
//   - Local-run collapse: after an exec choice the chosen thread keeps
//     stepping while its steps are StepLocal (registers / provably
//     thread-local memory only, the same partial-order reduction
//     sched.Run applies). Local steps commute with every other thread's
//     transitions, so bundling them with the preceding visible step
//     cannot remove a reachable outcome.
//   - State dedup subsumes path symmetry: two interleavings reaching the
//     same memory/buffers/frames state share their entire future.
//
// Enumeration is exact when Complete is true; budgets (states, steps)
// make it degrade to "explored a prefix" rather than hang on a too-large
// program, and the oracle skips containment checks that need
// completeness when a budget tripped.

import (
	"fmt"
	"sort"
	"strings"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
)

// choice is one scheduler transition: an exec step, a flush of one
// buffered store, or a resolve of one deferred load.
type choice struct {
	tid     int
	flush   bool
	resolve bool
	addr    int64 // flush target (flush=true only)
	idx     int   // deferred-load queue index (resolve=true only)
}

// EnumOptions bounds one enumeration.
type EnumOptions struct {
	// MaxStates bounds the number of distinct decision-point states
	// expanded (default 60000).
	MaxStates int
	// MaxSteps bounds machine steps along any single replay (default
	// 20000) — a backstop; generated programs terminate long before it.
	MaxSteps int
	// LocalRun bounds the local-run collapse (default 128).
	LocalRun int
}

func (o *EnumOptions) fill() {
	if o.MaxStates <= 0 {
		o.MaxStates = 60000
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 20000
	}
	if o.LocalRun <= 0 {
		o.LocalRun = 128
	}
}

// EnumResult is the behavior space of one program under one model.
type EnumResult struct {
	Model memmodel.Model
	// Outcomes is the set of terminal outcome strings (see OutcomeString)
	// of violation-free executions.
	Outcomes map[string]bool
	// Violations is the set of distinct violation descriptions reached.
	Violations map[string]bool
	// States is the number of distinct decision-point states expanded;
	// Paths the number of terminal states reached.
	States, Paths int
	// Complete is true when no budget tripped: Outcomes and Violations
	// are then exactly the reachable sets.
	Complete bool
}

// HasViolation reports whether any explored execution violated.
func (r *EnumResult) HasViolation() bool { return len(r.Violations) > 0 }

// SortedOutcomes returns the outcome set in sorted order (for reports).
func (r *EnumResult) SortedOutcomes() []string {
	out := make([]string, 0, len(r.Outcomes))
	for o := range r.Outcomes {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// SortedViolations returns the violation descriptions sorted.
func (r *EnumResult) SortedViolations() []string {
	out := make([]string, 0, len(r.Violations))
	for v := range r.Violations {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// OutcomeString canonicalizes a terminal execution: the printed values in
// order plus the exit code.
func OutcomeString(output []int64, exitCode int64) string {
	var b strings.Builder
	for i, v := range output {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	fmt.Fprintf(&b, "|exit=%d", exitCode)
	return b.String()
}

// violationString canonicalizes a violation for set membership.
func violationString(v *interp.Violation) string {
	return fmt.Sprintf("%v@L%d: %s", v.Kind, v.Label, v.Msg)
}

// enumerator holds the replay machinery for one Enumerate call.
type enumerator struct {
	c     *interp.Compiled
	model memmodel.Model
	opts  EnumOptions
	m     interp.Machine
	key   []byte
}

// Enumerate explores every schedule of prog under model within the
// budgets. prog must be linked.
func Enumerate(prog *ir.Program, model memmodel.Model, opts EnumOptions) *EnumResult {
	opts.fill()
	e := &enumerator{c: interp.Compile(prog), model: model, opts: opts}
	res := &EnumResult{
		Model:      model,
		Outcomes:   make(map[string]bool),
		Violations: make(map[string]bool),
		Complete:   true,
	}

	seen := make(map[string]struct{})
	// DFS over choice prefixes. Each stack entry owns its backing array
	// (paths are copied on push), so popping cannot alias a sibling.
	stack := [][]choice{nil}
	var scratch []choice
	for len(stack) > 0 {
		last := len(stack) - 1
		path := stack[last]
		stack = stack[:last]

		overBudget := e.replay(path)
		if overBudget {
			res.Complete = false
			continue
		}
		e.key = e.m.AppendStateKey(e.key[:0])
		if _, dup := seen[string(e.key)]; dup {
			continue
		}
		if res.States >= e.opts.MaxStates {
			res.Complete = false
			// Keep draining the stack cheaply? No: once the state budget
			// trips, further expansion cannot restore completeness — stop.
			break
		}
		seen[string(e.key)] = struct{}{}
		res.States++

		if e.m.Done() {
			res.Paths++
			if v := e.m.Violation(); v != nil {
				res.Violations[violationString(v)] = true
			} else {
				res.Outcomes[OutcomeString(e.m.Output(), e.m.ExitCode())] = true
			}
			continue
		}

		scratch = e.choices(scratch[:0])
		if len(scratch) == 0 {
			// No transition possible and not Done: a deadlock terminal
			// (e.g. a join on a thread that can never finish).
			res.Paths++
			res.Violations[violationString(&interp.Violation{
				Kind:  interp.VDeadlock,
				Label: ir.NoLabel,
				Msg:   "no thread can make progress",
			})] = true
			continue
		}
		// Push in reverse so choices explore in their natural order.
		for i := len(scratch) - 1; i >= 0; i-- {
			next := make([]choice, len(path)+1)
			copy(next, path)
			next[len(path)] = scratch[i]
			stack = append(stack, next)
		}
	}
	return res
}

// replay resets the machine and re-applies a choice prefix, reporting
// whether the step budget tripped.
func (e *enumerator) replay(path []choice) (overBudget bool) {
	m := &e.m
	m.Reset(e.c, e.model, nil)
	for _, ch := range path {
		if ch.flush {
			m.FlushOne(ch.tid, ch.addr)
		} else if ch.resolve {
			m.ResolveOne(ch.tid, ch.idx)
		} else {
			kind := m.StepThread(ch.tid)
			// Local-run collapse (mirrors sched.Run's POR window): a
			// thread that only touched registers or thread-local memory
			// keeps going — interleaving those steps cannot change any
			// observable outcome.
			for n := 0; kind == interp.StepLocal && n < e.opts.LocalRun; n++ {
				if m.Violation() != nil || !m.CanExec(ch.tid) {
					break
				}
				kind = m.StepThread(ch.tid)
			}
		}
		if m.Steps() >= e.opts.MaxSteps {
			return true
		}
	}
	return false
}

// choices enumerates the transitions available at the machine's current
// state in deterministic order: exec per thread id ascending, then flush
// per (thread id, flushable address in canonical buffer order), then
// resolve per (thread id, deferred-load queue index). Flushes offer only
// the currently flushable addresses — an address parked behind a
// store-store barrier epoch is not a legal transition. Resolves offer
// every queue index: out-of-order resolution is exactly the load
// reordering the deferring models exhibit, so skipping indices would
// prune reachable outcomes.
func (e *enumerator) choices(dst []choice) []choice {
	m := &e.m
	n := m.NumThreads()
	for tid := 0; tid < n; tid++ {
		if m.CanExec(tid) {
			dst = append(dst, choice{tid: tid})
		}
	}
	for tid := 0; tid < n; tid++ {
		if !m.CanFlush(tid) {
			continue
		}
		// FlushableAddrs copies; the view would be invalidated by nothing
		// here, but the copy keeps this loop obviously safe.
		for _, addr := range m.Thread(tid).Buffers().FlushableAddrs() {
			dst = append(dst, choice{tid: tid, flush: true, addr: addr})
		}
	}
	for tid := 0; tid < n; tid++ {
		for idx := 0; idx < m.DeferredCount(tid); idx++ {
			dst = append(dst, choice{tid: tid, resolve: true, idx: idx})
		}
	}
	return dst
}
