package proggen

import (
	"fmt"
	"strings"
	"testing"

	"dfence/internal/memmodel"
)

// smokeConfig is a scaled-down campaign that still exercises every oracle
// phase (templates, injection, sampling, static analysis, synthesis).
func smokeConfig(seed int64, n int) FuzzConfig {
	return FuzzConfig{
		Seed:      seed,
		N:         n,
		Execs:     60,
		MaxRounds: 6,
	}
}

func TestFuzzClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential pass in -short mode")
	}
	rep := Fuzz(smokeConfig(1, 24))
	for _, d := range rep.Divergences {
		t.Errorf("divergence: %v\nsource:\n%s", d, d.Source)
		if d.Shrunk != nil {
			t.Logf("shrunk reproduction:\n%s", d.ShrunkSource)
		}
	}
	if rep.Programs != 24 {
		t.Errorf("Programs = %d, want 24", rep.Programs)
	}
	if rep.Templates == 0 || rep.Randoms == 0 {
		t.Errorf("corpus mix degenerate: %d templates, %d randoms", rep.Templates, rep.Randoms)
	}
	if rep.Violating == 0 {
		t.Errorf("no program enumerated a violation — templates and injection both inert")
	}
	if rep.Checked != rep.Programs*3 {
		t.Errorf("Checked = %d, want %d (three models per program)", rep.Checked, rep.Programs*3)
	}
}

// fingerprint summarizes a report for equality comparison.
func fingerprint(rep *FuzzReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "prog=%d tmpl=%d rand=%d inj=%d chk=%d viol=%d robust=%d\n",
		rep.Programs, rep.Templates, rep.Randoms, rep.Injected, rep.Checked, rep.Violating, rep.Robust)
	for _, n := range rep.Notes {
		fmt.Fprintf(&b, "note %s\n", n)
	}
	for _, d := range rep.Divergences {
		fmt.Fprintf(&b, "div %v\n", d)
	}
	return b.String()
}

func TestFuzzDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential pass in -short mode")
	}
	cfg := smokeConfig(99, 12)
	a := fingerprint(Fuzz(cfg))
	b := fingerprint(Fuzz(cfg))
	if a != b {
		t.Errorf("identically-seeded campaigns diverge:\n--- first\n%s--- second\n%s", a, b)
	}
}

// TestOracleGates is the harness self-test: with SkewEnum the enumeration
// phase sees an assert-stripped clone of each program, so on any
// violating template the dynamic phase observes a violation the
// enumerator claims unreachable. A harness that reports nothing here
// would also wave through a real interpreter/scheduler bug.
func TestOracleGates(t *testing.T) {
	cfg := smokeConfig(1, 1) // corpus entry 0 is a bare PSO template
	cfg.SkewEnum = true
	rep := Fuzz(cfg)
	var hit *Divergence
	for _, d := range rep.Divergences {
		if d.Kind == "phantom-violation" {
			hit = d
			break
		}
	}
	if hit == nil {
		var kinds []string
		for _, d := range rep.Divergences {
			kinds = append(kinds, d.Kind)
		}
		t.Fatalf("skewed oracle reported no phantom-violation (got %v) — the harness does not gate", kinds)
	}
	if hit.Shrunk == nil || hit.ShrunkSource == "" {
		t.Fatalf("divergence was not shrunk: %+v", hit)
	}
	if len(hit.Shrunk.Threads) > len(hit.Prog.Threads) {
		t.Errorf("shrunk program grew: %d threads from %d", len(hit.Shrunk.Threads), len(hit.Prog.Threads))
	}
	if _, err := hit.Shrunk.Compile(); err != nil {
		t.Errorf("shrunk reproduction does not compile: %v\n%s", err, hit.ShrunkSource)
	}
}

// TestInjectAddsAssert pins the assert-injection contract: a random
// program whose weak-model behaviors strictly exceed SC gains a Forbidden
// clause matching one of the extra outcomes, making it a synthesis target
// with known ground truth.
func TestInjectAddsAssert(t *testing.T) {
	f := &fuzzer{cfg: smokeConfig(5, 0), rep: &FuzzReport{}}
	f.cfg.Fill()
	injected := 0
	for idx := 0; idx < 40; idx++ {
		p := RandomProg(5, idx)
		q := f.inject(p, idx)
		if len(q.Forbidden) == 0 {
			continue
		}
		injected++
		if len(q.Forbidden) != len(q.Observe) {
			t.Errorf("rand-%d: injected assert has %d conjuncts for %d observed globals",
				idx, len(q.Forbidden), len(q.Observe))
		}
		prog, err := q.Compile()
		if err != nil {
			t.Fatalf("rand-%d: injected program does not compile: %v", idx, err)
		}
		esc := Enumerate(prog, memmodel.SC, f.cfg.Enum)
		if !esc.Complete {
			t.Fatalf("rand-%d: SC enumeration incomplete", idx)
		}
		if esc.HasViolation() {
			t.Errorf("rand-%d: injected assert fires under SC: %v", idx, esc.SortedViolations())
		}
	}
	if injected == 0 {
		t.Error("no random program out of 40 earned an injected assert — generator too weak to exhibit relaxed behavior")
	}
	if f.rep.Injected != injected {
		t.Errorf("report counts %d injections, saw %d", f.rep.Injected, injected)
	}
}

func TestOutcomeConds(t *testing.T) {
	conds, ok := outcomeConds([]string{"a", "b"}, "3,0|exit=0")
	if !ok || len(conds) != 2 || conds[0] != (Cond{Global: "a", Equals: 3}) || conds[1] != (Cond{Global: "b", Equals: 0}) {
		t.Errorf("outcomeConds = %v, %v", conds, ok)
	}
	if _, ok := outcomeConds([]string{"a"}, "1,2|exit=0"); ok {
		t.Error("arity mismatch accepted")
	}
	if _, ok := outcomeConds([]string{"a"}, "1"); ok {
		t.Error("missing exit suffix accepted")
	}
}

func TestShrinkMutations(t *testing.T) {
	p := &Prog{
		Name:    "m",
		Globals: []Global{{Name: "x"}, {Name: "y"}},
		Observe: []string{"x", "y"},
		Threads: []Thread{{Stmts: []Stmt{
			{Kind: SStoreConst, G: "x", Val: 1},
			{Kind: SLoop, Iters: 2, Body: []Stmt{
				{Kind: SStoreConst, G: "y", Val: 2},
			}},
		}}},
	}
	n := countStmts(p)
	if n != 3 {
		t.Fatalf("countStmts = %d, want 3", n)
	}
	// Deleting the loop (preorder index 1) drops its subtree.
	q := p.Clone()
	if !mutateNth(q, 1, false) {
		t.Fatal("delete of stmt 1 not applied")
	}
	if got := countStmts(q); got != 1 {
		t.Errorf("after loop deletion countStmts = %d, want 1", got)
	}
	// Unwrapping the loop splices its body into the parent.
	q = p.Clone()
	if !mutateNth(q, 1, true) {
		t.Fatal("unwrap of stmt 1 not applied")
	}
	if got := countStmts(q); got != 2 {
		t.Errorf("after loop unwrap countStmts = %d, want 2", got)
	}
	if q.Threads[0].Stmts[1].Kind != SStoreConst || q.Threads[0].Stmts[1].G != "y" {
		t.Errorf("unwrap did not splice the body: %+v", q.Threads[0].Stmts)
	}
	// Unwrap of a flat statement is inapplicable.
	q = p.Clone()
	if mutateNth(q, 0, true) {
		t.Error("unwrap of a flat store reported applicable")
	}
	// Every candidate of a corpus program must render and compile.
	for i, cand := range shrinkCandidates(Corpus(3, 2)[1]) {
		if _, err := cand.Compile(); err != nil {
			t.Errorf("shrink candidate %d does not compile: %v\n%s", i, err, cand.Render())
		}
	}
}
