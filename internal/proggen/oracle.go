package proggen

// The differential oracle. For every generated program it computes three
// independent answers and checks the lattice of containments that must
// hold between them:
//
//	E_SC, E_M   exhaustive enumeration (ground truth when Complete)
//	D_M         dynamic sampling: outcomes, violations, and the
//	            instrumented-semantics predicates of sched.Run
//	S_M         static delay-set analysis (staticanalysis.Analyze)
//	synth       dynamic fence synthesis (core.Synthesize)
//
// Invariants checked, with the divergence kind each failure reports:
//
//	sc-violation        E_SC must be violation-free: templates assert
//	                    SC-infeasible outcomes, randoms assert an
//	                    outcome enumeration proved SC-unreachable, and
//	                    generated programs cannot deadlock or fault.
//	sc-outcome-escape   E_SC ⊆ E_M — eager flushing simulates SC on a
//	                    store-buffer machine.
//	phantom-outcome     D_M outcomes ⊆ E_M (enumeration is complete).
//	phantom-violation   D_M violations ⊆ E_M violations.
//	predicate-escape    D_M predicates ⊆ S_M candidates (the static
//	                    over-approximation claim of delayset.go).
//	unsound-robust      S_M robust ⇒ E_M = E_SC (all executions SC).
//	unfixable           synthesis must never declare a generated
//	                    program unfixable (its violations are
//	                    store-buffer-induced, so fences fix them).
//	insufficient-fences a TEMPLATE program converged but exhaustive
//	                    enumeration of the fenced program still finds a
//	                    violation (after one escalated retry). Template
//	                    witnesses are single critical cycles — short and
//	                    high-probability by construction — so missing
//	                    them twice is a defect, not bad luck. For RANDOM
//	                    programs the same situation is a soft finding
//	                    (SamplingMisses + note): enumeration violations
//	                    are concrete machine replays, every machine path
//	                    has positive probability under the scheduler, and
//	                    random programs can push that probability into an
//	                    arbitrarily deep tail (observed at ~1e-3/exec);
//	                    a reachability burst annotates the note with how
//	                    hard the residual actually is to hit.
//	panic               any execution panicked (sched.RunSafe).
//	compile-error       the rendered source failed to compile or link.
//	analyze-error       the verifier/static analysis rejected the IR.
//
// Soft findings that are expected occasionally (enumeration budget
// tripped, synthesis inconclusive) become report notes, not divergences.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dfence/internal/core"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/sched"
	"dfence/internal/spec"
	"dfence/internal/staticanalysis"
	"dfence/internal/synth"
)

// flushProbs are cycled across sampled executions so both store-heavy and
// flush-heavy schedules are exercised (paper §6.5 uses ~0.1 for TSO and
// ~0.5 for PSO).
var flushProbs = []float64{0.1, 0.3, 0.6}

// FuzzConfig configures one fuzzing campaign. The zero value is not
// usable; Fill applies CI-smoke defaults.
type FuzzConfig struct {
	Seed int64
	// N is the corpus size (templates + randoms).
	N int
	// Models are the weak models to differentially test; SC is always
	// enumerated as the baseline. Defaults to TSO, PSO, and RMO.
	Models []memmodel.Model
	// Execs is the dynamic sampling budget per (program, model); the
	// synthesis phase uses the same number per round.
	Execs int
	// MaxRounds bounds synthesis repair rounds.
	MaxRounds int
	// Enum bounds each exhaustive enumeration.
	Enum EnumOptions
	// NoShrink skips shrinking (used by the shrinker's own recheck and
	// by tests asserting on raw findings).
	NoShrink bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	// SkewEnum is test-only fault injection: the enumeration phase runs
	// on an assert-stripped clone of each program while every other
	// phase sees the real one. A harness that cannot catch the resulting
	// phantom-violation divergence is broken — the self-test in
	// oracle_test.go turns this on to prove the oracle actually gates.
	SkewEnum bool

	// skipSynth elides the synthesis phase — the shrinker's recheck sets
	// it when minimizing a divergence whose reproduction does not depend
	// on synthesis.
	skipSynth bool
}

// Fill applies defaults.
func (c *FuzzConfig) Fill() {
	if c.N <= 0 {
		c.N = 200
	}
	if len(c.Models) == 0 {
		c.Models = []memmodel.Model{memmodel.TSO, memmodel.PSO, memmodel.RMO}
	}
	if c.Execs <= 0 {
		// Recalibrated from 120 when the scheduler switched PRNGs
		// (sched.schedRNG): the new stream needs a slightly larger
		// fixed-seed budget to expose the deepest RMO template
		// residuals within the un-escalated pass.
		c.Execs = 160
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 8
	}
	c.Enum.fill()
}

// Divergence is one oracle disagreement, with the shrunk reproduction.
type Divergence struct {
	Index        int // corpus index
	Kind         string
	Model        memmodel.Model
	Detail       string
	Prog         *Prog  // program as generated (post assert-injection)
	Source       string // rendered Prog
	Shrunk       *Prog  // greedily minimized reproduction (nil if NoShrink)
	ShrunkSource string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("#%d [%s/%v] %s", d.Index, d.Kind, d.Model, d.Detail)
}

// FuzzReport summarizes a campaign.
type FuzzReport struct {
	Seed      int64
	Programs  int
	Templates int
	Randoms   int
	Injected  int // randoms that received a forbidden-outcome assert
	Checked   int // (program, model) differential checks run
	Violating int // programs whose enumeration found a violation under some model
	Robust    int // (program, model) pairs statically robust
	Escalated int // synthesis retries at a raised budget
	// SamplingMisses counts random programs whose escalated synthesis
	// still converged under-fenced: the repair loop's budget missed a
	// rare-but-reachable schedule (enumeration witnesses are concrete
	// machine replays, so the residual is always reachable in principle).
	// Expected occasionally on random programs; the same situation on a
	// template gates as insufficient-fences instead.
	SamplingMisses int
	EnumPartial    int // enumerations that hit a budget
	Notes          []string
	Divergences    []*Divergence
}

// Corpus builds the deterministic program corpus for a seed: the full
// template pool (every RMO-admissible cycle shape over 2 and 3 threads —
// a superset of PSO's and TSO's shapes, since RelaxedEdgeKinds grows
// monotonically down the hierarchy — in all three fence variants)
// interleaved with seeded random programs at one template per four
// entries. The RMO-only shapes are exactly the deferred-load litmus
// family (MP without dependencies, LB, and their 3-thread extensions).
func Corpus(seed int64, n int) []*Prog {
	var templates []*Prog
	for _, threads := range []int{2, 3} {
		for _, shape := range staticanalysis.CriticalCycleShapes(memmodel.RMO, threads) {
			for _, v := range TemplateVariants() {
				templates = append(templates, TemplateProg(shape, v))
			}
		}
	}
	out := make([]*Prog, 0, n)
	for i := 0; i < n; i++ {
		if i%4 == 0 && i/4 < len(templates) {
			out = append(out, templates[i/4])
		} else {
			out = append(out, RandomProg(seed, i))
		}
	}
	return out
}

// fuzzer is the per-campaign state.
type fuzzer struct {
	cfg FuzzConfig
	rep *FuzzReport
}

func (f *fuzzer) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Fuzz runs a campaign and returns its report. It never writes files —
// the CLI owns reproduction/journal output.
func Fuzz(cfg FuzzConfig) *FuzzReport {
	cfg.Fill()
	f := &fuzzer{cfg: cfg, rep: &FuzzReport{Seed: cfg.Seed}}
	corpus := Corpus(cfg.Seed, cfg.N)
	for idx, p := range corpus {
		if p.Template {
			f.rep.Templates++
		} else {
			f.rep.Randoms++
			p = f.inject(p, idx)
		}
		f.rep.Programs++
		divs := f.check(p, idx, f.cfg.Models)
		for _, d := range divs {
			if !f.cfg.NoShrink {
				f.shrink(d)
			}
			f.rep.Divergences = append(f.rep.Divergences, d)
			f.logf("DIVERGENCE %v", d)
		}
		if (idx+1)%50 == 0 {
			f.logf("checked %d/%d programs, %d divergences", idx+1, len(corpus), len(f.rep.Divergences))
		}
	}
	return f.rep
}

// inject upgrades a random program into a synthesis target: if some weak
// model reaches an outcome that SC provably cannot, assert the negation
// of the lexicographically smallest such outcome. The program is then
// SC-clean by construction with a violation reachable under that model.
func (f *fuzzer) inject(p *Prog, idx int) *Prog {
	prog, err := p.Compile()
	if err != nil {
		return p // check() will report compile-error
	}
	esc := Enumerate(prog, memmodel.SC, f.cfg.Enum)
	if !esc.Complete {
		return p
	}
	for _, model := range f.cfg.Models {
		em := Enumerate(prog, model, f.cfg.Enum)
		if !em.Complete {
			continue
		}
		var extra []string
		for o := range em.Outcomes {
			if !esc.Outcomes[o] {
				extra = append(extra, o)
			}
		}
		if len(extra) == 0 {
			continue
		}
		sort.Strings(extra)
		conds, ok := outcomeConds(p.Observe, extra[0])
		if !ok {
			continue
		}
		q := p.Clone()
		q.Forbidden = conds
		q.Name = p.Name + "+assert"
		f.rep.Injected++
		return q
	}
	return p
}

// outcomeConds converts a canonical outcome string back into the
// per-global equality conjunction it denotes.
func outcomeConds(observe []string, outcome string) ([]Cond, bool) {
	body, _, ok := strings.Cut(outcome, "|")
	if !ok {
		return nil, false
	}
	var vals []string
	if body != "" {
		vals = strings.Split(body, ",")
	}
	if len(vals) != len(observe) {
		return nil, false
	}
	conds := make([]Cond, len(vals))
	for i, v := range vals {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, false
		}
		conds[i] = Cond{Global: observe[i], Equals: n}
	}
	return conds, true
}

// dynamicSample aggregates one sampling pass.
type dynamicSample struct {
	outcomes     map[string]bool
	violations   map[string]bool
	preds        []synth.Predicate
	panics       []string
	inconclusive int
}

// sample runs execs schedules of prog under model, cycling flush
// probabilities and strategies, accumulating outcomes, violations, and
// instrumented-semantics predicates.
func (f *fuzzer) sample(prog *ir.Program, model memmodel.Model, seed int64, execs int) *dynamicSample {
	s := &dynamicSample{outcomes: map[string]bool{}, violations: map[string]bool{}}
	col := synth.NewCollector(model)
	predSet := map[synth.Predicate]bool{}
	for i := 0; i < execs; i++ {
		opts := sched.Options{
			Seed:      seed + int64(i),
			FlushProb: flushProbs[i%len(flushProbs)],
			MaxSteps:  f.cfg.Enum.MaxSteps,
			PORWindow: 64,
		}
		if i%4 == 3 {
			opts.Strategy = sched.Priority
		}
		res, execErr := sched.RunSafe(prog, model, col, opts)
		for _, p := range col.TakeDisjunction() {
			predSet[p] = true
		}
		if execErr != nil {
			s.panics = append(s.panics, execErr.Error())
			continue
		}
		if res.StepLimitHit || res.TimedOut {
			s.inconclusive++
			continue
		}
		if res.Violation != nil {
			s.violations[violationString(res.Violation)] = true
		} else {
			s.outcomes[OutcomeString(res.Output, res.ExitCode)] = true
		}
	}
	for p := range predSet {
		s.preds = append(s.preds, p)
	}
	sort.Slice(s.preds, func(i, j int) bool {
		if s.preds[i].L != s.preds[j].L {
			return s.preds[i].L < s.preds[j].L
		}
		return s.preds[i].K < s.preds[j].K
	})
	return s
}

func (f *fuzzer) synthConfig(model memmodel.Model, seed int64, execs, rounds int) core.Config {
	return core.Config{
		Model:           model,
		Criterion:       spec.MemorySafety,
		ExecsPerRound:   execs,
		MaxRounds:       rounds,
		FlushProb:       0.3,
		MaxStepsPerExec: f.cfg.Enum.MaxSteps,
		Seed:            seed,
		Workers:         1, // single-threaded: verdicts must be bit-deterministic
		OptionsHook: func(round, index int, opts sched.Options) sched.Options {
			// Diversify flush probabilities across the round, but leave the
			// portfolio's eager phases (high flush, with starve+priority or
			// lazy resolve — see core's portfolioPhase) their own setting:
			// those combinations are what reach 3-thread write-cycle and
			// load-buffering residuals. A phase that set its own FlushProb
			// no longer carries the config's base value.
			if opts.FlushProb == 0.3 {
				opts.FlushProb = flushProbs[index%len(flushProbs)]
			}
			return opts
		},
	}
}

// check runs the full differential comparison of one prepared program
// under the given models and returns every divergence found.
func (f *fuzzer) check(p *Prog, idx int, models []memmodel.Model) []*Divergence {
	var divs []*Divergence
	report := func(kind string, model memmodel.Model, format string, args ...any) {
		divs = append(divs, &Divergence{
			Index:  idx,
			Kind:   kind,
			Model:  model,
			Detail: fmt.Sprintf(format, args...),
			Prog:   p,
			Source: p.Render(),
		})
	}
	note := func(format string, args ...any) {
		f.rep.Notes = append(f.rep.Notes, fmt.Sprintf("#%d %s: ", idx, p.Name)+fmt.Sprintf(format, args...))
	}

	prog, err := p.Compile()
	if err != nil {
		report("compile-error", memmodel.SC, "%v", err)
		return divs
	}
	enumProg := prog
	if f.cfg.SkewEnum {
		q := p.Clone()
		q.Forbidden = nil
		if ep, err := q.Compile(); err == nil {
			enumProg = ep
		}
	}
	baseSeed := ProgSeed(f.cfg.Seed, idx)

	esc := Enumerate(enumProg, memmodel.SC, f.cfg.Enum)
	if !esc.Complete {
		f.rep.EnumPartial++
		note("SC enumeration incomplete (%d states)", esc.States)
	}
	if esc.Complete && esc.HasViolation() {
		report("sc-violation", memmodel.SC, "SC enumeration reached: %s",
			strings.Join(esc.SortedViolations(), "; "))
	}

	violating := false
	for _, model := range models {
		f.rep.Checked++
		em := Enumerate(enumProg, model, f.cfg.Enum)
		if !em.Complete {
			f.rep.EnumPartial++
			note("%v enumeration incomplete (%d states)", model, em.States)
		}
		if em.HasViolation() {
			violating = true
		}

		// E_SC ⊆ E_M: a store-buffer machine can always emulate SC.
		if esc.Complete && em.Complete {
			var missing []string
			for o := range esc.Outcomes {
				if !em.Outcomes[o] {
					missing = append(missing, o)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				report("sc-outcome-escape", model,
					"SC outcomes unreachable under %v: %s", model, strings.Join(missing, "; "))
			}
		}

		st, err := staticanalysis.Analyze(prog, model)
		if err != nil {
			report("analyze-error", model, "%v", err)
			continue
		}
		if st.Robust() {
			f.rep.Robust++
			// Robust ⇒ every execution is SC ⇒ behavior sets coincide.
			if esc.Complete && em.Complete {
				if em.HasViolation() {
					report("unsound-robust", model,
						"statically robust but %v enumeration violates: %s",
						model, strings.Join(em.SortedViolations(), "; "))
				}
				var extra []string
				for o := range em.Outcomes {
					if !esc.Outcomes[o] {
						extra = append(extra, o)
					}
				}
				if len(extra) > 0 {
					sort.Strings(extra)
					report("unsound-robust", model,
						"statically robust but %v reaches non-SC outcomes: %s",
						model, strings.Join(extra, "; "))
				}
			}
		}

		dyn := f.sample(prog, model, baseSeed, f.cfg.Execs)
		for _, msg := range dyn.panics {
			report("panic", model, "%s", msg)
		}
		cands := st.CandidateSet()
		for _, pr := range dyn.preds {
			if !cands[staticanalysis.Pair{L: pr.L, K: pr.K}] {
				report("predicate-escape", model,
					"dynamic predicate %v not in the %d static candidates", pr, len(st.Candidates))
			}
		}
		if em.Complete {
			for o := range dyn.outcomes {
				if !em.Outcomes[o] {
					report("phantom-outcome", model,
						"dynamic outcome %q not reachable per enumeration", o)
				}
			}
			for v := range dyn.violations {
				if !em.Violations[v] {
					report("phantom-violation", model,
						"dynamic violation %q not reachable per enumeration", v)
				}
			}
		}

		if !f.cfg.skipSynth {
			divs = append(divs, f.checkSynthesis(p, prog, idx, model, baseSeed, em, note)...)
		}
	}
	if violating {
		f.rep.Violating++
	}
	return divs
}

// checkSynthesis cross-checks core.Synthesize against the enumerator:
// unfixable is always a divergence, and a converged repair must leave no
// enumerable violation. The dynamic phase is probabilistic, so a failed
// sufficiency check earns one escalated retry (4× executions) before
// being reported.
func (f *fuzzer) checkSynthesis(p *Prog, prog *ir.Program, idx int, model memmodel.Model,
	seed int64, em *EnumResult, note func(string, ...any)) []*Divergence {
	var divs []*Divergence
	report := func(kind, format string, args ...any) {
		divs = append(divs, &Divergence{
			Index: idx, Kind: kind, Model: model,
			Detail: fmt.Sprintf(format, args...),
			Prog:   p, Source: p.Render(),
		})
	}

	run := func(execs, rounds int) (*core.Result, error) {
		return core.Synthesize(prog, f.synthConfig(model, seed, execs, rounds))
	}
	res, err := run(f.cfg.Execs, f.cfg.MaxRounds)
	if err != nil {
		report("synth-error", "%v", err)
		return divs
	}
	verdict := func(r *core.Result) (fixedOK bool, detail string) {
		switch r.Outcome {
		case core.OutcomeUnfixable:
			return false, "unfixable"
		case core.OutcomeConverged:
			fenced := em // no fences inserted: the repaired program is the input
			if len(r.Fences) > 0 {
				fenced = Enumerate(r.Program, model, f.cfg.Enum)
			}
			if fenced.Complete && fenced.HasViolation() {
				return false, fmt.Sprintf("converged with %d fence(s) but enumeration still violates: %s",
					len(r.Fences), strings.Join(fenced.SortedViolations(), "; "))
			}
			return true, ""
		default:
			return true, "" // inconclusive/aborted: soft
		}
	}
	ok, detail := verdict(res)
	if ok {
		if res.Outcome == core.OutcomeInconclusive || res.Outcome == core.OutcomeAborted {
			note("%v synthesis %v after %d rounds", model, res.Outcome, len(res.Rounds))
		}
		return divs
	}
	// Escalate once with a 4× budget: a thin sampling pass can both miss
	// real violations (falsely converging) and fail to gather enough
	// clauses. Only a reproducible failure is a divergence.
	f.rep.Escalated++
	res2, err := run(4*f.cfg.Execs, f.cfg.MaxRounds+4)
	if err != nil {
		report("synth-error", "escalated run: %v", err)
		return divs
	}
	ok2, detail2 := verdict(res2)
	if ok2 {
		note("%v synthesis needed an escalated budget (first: %s)", model, detail)
		return divs
	}
	if detail2 == "unfixable" {
		report("unfixable", "synthesis declared the program unfixable (example: %s)", res2.UnfixableExample)
		return divs
	}
	// Triage the reproducible under-fencing. Templates gate: their only
	// violating family is the critical cycle itself — a short schedule the
	// demonic scheduler hits with high probability — so converging past it
	// twice means synthesis (or the scheduler's distribution) is broken.
	// Random programs do not gate: an enumeration violation is a concrete
	// machine replay, every machine path has positive probability under
	// the scheduler, and random programs can push the residual into an
	// arbitrarily deep tail (#27 of seed 1 needs ~1e-3/exec luck twice).
	// That is the documented under-approximation of dynamic synthesis, so
	// it is counted and noted, with a reachability burst measuring how
	// deep the tail actually is.
	if p.Template {
		report("insufficient-fences", "template repair failed: %s", detail2)
		return divs
	}
	f.rep.SamplingMisses++
	if hit, burst := f.dynReachable(res2.Program, model, seed+9_999_991); hit {
		note("%v synthesis under-fenced (%s); residual reached within %d burst executions — sampling miss", model, detail2, burst)
	} else {
		note("%v synthesis under-fenced (%s); residual beyond a %d-execution burst — deep sampling tail", model, detail2, burst)
	}
	return divs
}

// dynReachable sweeps flush probabilities, both strategies, and the
// starvation discipline over a fresh seed block asking whether ANY
// violation of prog is dynamically reachable. It early-exits on the first
// hit and returns the executions spent.
func (f *fuzzer) dynReachable(prog *ir.Program, model memmodel.Model, seed int64) (found bool, execs int) {
	probs := []float64{0.05, 0.1, 0.3, 0.6}
	for _, strat := range []sched.Strategy{sched.Random, sched.Priority} {
		for _, starve := range []bool{false, true} {
			for _, p := range probs {
				for i := 0; i < 75; i++ {
					opts := sched.Options{
						Seed:      seed + int64(execs),
						Strategy:  strat,
						FlushProb: p,
						MaxSteps:  f.cfg.Enum.MaxSteps,
						PORWindow: 64,
						Starve:    starve,
					}
					res, err := sched.RunSafe(prog, model, nil, opts)
					execs++
					if err == nil && res.Violation != nil {
						return true, execs
					}
				}
			}
		}
	}
	return false, execs
}
