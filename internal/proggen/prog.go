// Package proggen is the differential fuzzing harness: a seeded,
// deterministic generator of small concurrent mini-C programs (critical-
// cycle litmus templates and randomized programs over the lang grammar),
// a brute-force interleaving+flush enumerator that computes ground-truth
// outcome sets on those programs, and a differential oracle that cross-
// checks the enumerator against dynamic fence synthesis (core.Synthesize)
// and static delay-set analysis (staticanalysis.Analyze). Divergences are
// auto-shrunk to minimal reproductions.
//
// Programs are held in a structured form (Prog/Thread/Stmt) rather than
// as source text so the shrinker can delete threads and statements while
// preserving well-formedness by construction; Render turns the structure
// into mini-C accepted by lang.Compile.
package proggen

import (
	"fmt"
	"sort"
	"strings"

	"dfence/internal/ir"
	"dfence/internal/lang"
)

// Global is one shared variable (always a single int).
type Global struct {
	Name string
	Init int64
}

// Cond is one conjunct of a forbidden outcome: Global == Equals.
type Cond struct {
	Global string
	Equals int64
}

// Prog is a structured generated program. main is implicit: it forks every
// thread, joins them all, optionally asserts that the Forbidden conjunction
// does not hold, prints every Observe global, and returns 0. Keeping main
// synthetic guarantees two properties the enumerator's soundness argument
// leans on: all prints happen after every join (outcome tuples are
// insensitive to print interleaving), and fork/join pairs can never be
// half-deleted by the shrinker.
type Prog struct {
	Name    string
	Globals []Global
	Threads []Thread
	// Observe lists the globals main prints (in order) after all joins;
	// the printed tuple plus main's exit code is the program's outcome.
	Observe []string
	// Forbidden, when non-empty, makes main execute
	// assert(!(c1 && c2 && ...)) before printing — a violation visible to
	// dynamic synthesis under the memory-safety criterion.
	Forbidden []Cond
	// Template marks a critical-cycle litmus template (TemplateProg).
	// Template violations are single short cycles the scheduler hits with
	// high probability, so the synthesis oracle holds templates to a
	// stricter standard than random programs (see checkSynthesis).
	Template bool
}

// Thread is one forked worker's body.
type Thread struct {
	Stmts []Stmt
}

// StmtKind enumerates the statement forms the generator emits.
type StmtKind uint8

const (
	// SStoreConst: G = Val
	SStoreConst StmtKind = iota
	// SStoreLocal: G = L
	SStoreLocal
	// SLoad: L = G
	SLoad
	// SCas: cas(&G, Old, New) with the result discarded
	SCas
	// SCasTo: L = cas(&G, Old, New)
	SCasTo
	// SFence: a memory fence of the given kind
	SFence
	// SLocalAdd: L = L + Val (pure register/local arithmetic)
	SLocalAdd
	// SIf: if (L CmpOp Val) { Body } else { Else } (Else may be empty)
	SIf
	// SLoop: a counted loop running Body exactly Iters times; the counter
	// is render-managed and invisible to the rest of the program, so the
	// loop is always bounded and the shrinker can treat it as one node.
	SLoop
)

// Stmt is a tagged union over StmtKind; only the fields relevant to the
// kind are meaningful.
type Stmt struct {
	Kind     StmtKind
	G        string // target global (stores, loads, cas)
	L        string // local variable (SStoreLocal src, SLoad dst, SCasTo dst, SLocalAdd, SIf cond)
	Val      int64  // SStoreConst value, SLocalAdd addend, SIf comparison constant
	Old, New int64  // cas arguments
	Fence    ir.FenceKind
	CmpOp    string // SIf comparison: "==", "!=", "<", ">"
	Iters    int    // SLoop trip count
	Body     []Stmt // SIf then / SLoop body
	Else     []Stmt // SIf else
}

// Clone returns a deep copy (the shrinker mutates candidates in place).
func (p *Prog) Clone() *Prog {
	q := &Prog{Name: p.Name, Template: p.Template}
	q.Globals = append([]Global(nil), p.Globals...)
	q.Observe = append([]string(nil), p.Observe...)
	q.Forbidden = append([]Cond(nil), p.Forbidden...)
	q.Threads = make([]Thread, len(p.Threads))
	for i := range p.Threads {
		q.Threads[i] = Thread{Stmts: cloneStmts(p.Threads[i].Stmts)}
	}
	return q
}

func cloneStmts(ss []Stmt) []Stmt {
	if ss == nil {
		return nil
	}
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		s.Body = cloneStmts(s.Body)
		s.Else = cloneStmts(s.Else)
		out[i] = s
	}
	return out
}

// locals collects the local-variable names a statement list references.
func locals(ss []Stmt, set map[string]bool) {
	for i := range ss {
		s := &ss[i]
		switch s.Kind {
		case SStoreLocal, SLoad, SCasTo, SLocalAdd, SIf:
			if s.L != "" {
				set[s.L] = true
			}
		}
		locals(s.Body, set)
		locals(s.Else, set)
	}
}

// renderer carries the indentation and the loop-counter allocator.
type renderer struct {
	b       strings.Builder
	counter int
}

func (r *renderer) line(depth int, format string, args ...any) {
	for i := 0; i < depth; i++ {
		r.b.WriteString("  ")
	}
	fmt.Fprintf(&r.b, format, args...)
	r.b.WriteByte('\n')
}

func (r *renderer) stmts(depth int, ss []Stmt) {
	for i := range ss {
		r.stmt(depth, &ss[i])
	}
}

func (r *renderer) stmt(depth int, s *Stmt) {
	switch s.Kind {
	case SStoreConst:
		r.line(depth, "%s = %d;", s.G, s.Val)
	case SStoreLocal:
		r.line(depth, "%s = %s;", s.G, s.L)
	case SLoad:
		r.line(depth, "%s = %s;", s.L, s.G)
	case SCas:
		r.line(depth, "cas(&%s, %d, %d);", s.G, s.Old, s.New)
	case SCasTo:
		r.line(depth, "%s = cas(&%s, %d, %d);", s.L, s.G, s.Old, s.New)
	case SFence:
		switch s.Fence {
		case ir.FenceStoreStore:
			r.line(depth, "fence_ss();")
		case ir.FenceStoreLoad:
			r.line(depth, "fence_sl();")
		case ir.FenceLoadLoad:
			r.line(depth, "fence_ll();")
		case ir.FenceLoadStore:
			r.line(depth, "fence_ls();")
		case ir.FenceAcquire:
			r.line(depth, "fence_acq();")
		case ir.FenceRelease:
			r.line(depth, "fence_rel();")
		default:
			r.line(depth, "fence();")
		}
	case SLocalAdd:
		r.line(depth, "%s = %s + %d;", s.L, s.L, s.Val)
	case SIf:
		r.line(depth, "if (%s %s %d) {", s.L, s.CmpOp, s.Val)
		r.stmts(depth+1, s.Body)
		if len(s.Else) > 0 {
			r.line(depth, "} else {")
			r.stmts(depth+1, s.Else)
		}
		r.line(depth, "}")
	case SLoop:
		c := fmt.Sprintf("_c%d", r.counter)
		r.counter++
		r.line(depth, "int %s = 0;", c)
		r.line(depth, "while (%s < %d) {", c, s.Iters)
		r.stmts(depth+1, s.Body)
		r.line(depth+1, "%s = %s + 1;", c, c)
		r.line(depth, "}")
	}
}

// Render emits the program as mini-C source.
func (p *Prog) Render() string {
	var r renderer
	if p.Name != "" {
		r.line(0, "// proggen: %s", p.Name)
	}
	for _, g := range p.Globals {
		r.line(0, "int %s = %d;", g.Name, g.Init)
	}
	r.line(0, "")
	for ti := range p.Threads {
		r.line(0, "void t%d() {", ti)
		set := map[string]bool{}
		locals(p.Threads[ti].Stmts, set)
		names := make([]string, 0, len(set))
		for n := range set {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			r.line(1, "int %s = 0;", n)
		}
		r.stmts(1, p.Threads[ti].Stmts)
		r.line(0, "}")
		r.line(0, "")
	}
	r.line(0, "int main() {")
	for ti := range p.Threads {
		r.line(1, "int h%d = fork t%d();", ti, ti)
	}
	for ti := range p.Threads {
		r.line(1, "join h%d;", ti)
	}
	if len(p.Forbidden) > 0 {
		parts := make([]string, len(p.Forbidden))
		for i, c := range p.Forbidden {
			parts[i] = fmt.Sprintf("%s == %d", c.Global, c.Equals)
		}
		r.line(1, "assert(!(%s));", strings.Join(parts, " && "))
	}
	for _, g := range p.Observe {
		r.line(1, "print(%s);", g)
	}
	r.line(1, "return 0;")
	r.line(0, "}")
	return r.b.String()
}

// Compile renders and compiles the program to linked IR, then runs the
// IR optimizer. The optimizer matters for semantics coverage, not just
// size: the naive lowering of `u = x;` copies the loaded register into
// the local's register immediately, and that use forces a deferred load
// to resolve on the spot (and statically kills its candidate pairs) —
// hiding every load-class reordering the RMO templates exist to
// exercise. Copy propagation + DCE delete the move, so the loaded
// register's first use is the publishing store after B_i.
func (p *Prog) Compile() (*ir.Program, error) {
	prog, err := lang.Compile(p.Render())
	if err != nil {
		return nil, err
	}
	ir.Optimize(prog)
	return prog, nil
}
