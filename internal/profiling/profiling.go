// Package profiling wires the conventional -cpuprofile / -memprofile
// flags into the commands. Profiles are written with runtime/pprof and
// read with `go tool pprof`; the synthesis loop is the usual subject
// (see the Engine performance section of EXPERIMENTS.md).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memFile (when non-empty). Either file name may be empty; stop is
// always non-nil. Callers must invoke stop on every exit path —
// os.Exit skips deferred calls, so paths that exit with a status code
// need an explicit stop first.
func Start(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
			cpu = nil // stop is idempotent
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not garbage awaiting collection
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
			memFile = ""
		}
	}, nil
}
