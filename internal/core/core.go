// Package core implements DFENCE's top-level dynamic synthesis loop
// (paper Algorithm 1). Given a program, a correctness specification, and a
// memory model, it repeatedly executes the program under the flush-
// delaying demonic scheduler, collects the repair disjunction of every
// violating execution via the instrumented semantics, conjoins them into
// the global repair formula φ, and — at the end of each round — enforces a
// minimal satisfying assignment of φ as fences. Synthesis converges when a
// full round of executions exposes no violation.
package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/sat"
	"dfence/internal/sched"
	"dfence/internal/spec"
	"dfence/internal/staticanalysis"
	"dfence/internal/synth"
	"dfence/internal/telemetry"
	"dfence/internal/trace"
)

// Config controls one synthesis run.
type Config struct {
	// Model is the memory model to synthesize for.
	Model memmodel.Model
	// Criterion selects the specification: memory safety only,
	// operation-level sequential consistency, or linearizability.
	Criterion spec.Criterion
	// NewSpec constructs the sequential specification consulted by the SC
	// and linearizability checks. May be nil for MemorySafety.
	NewSpec func() spec.Sequential
	// CheckGarbage additionally applies the "no garbage tasks returned"
	// history check (used for the idempotent WSQs, §6.2).
	CheckGarbage bool
	// RelaxStealAborts treats contended steal()=EMPTY results as aborts
	// (spec.RelaxStealAborts) — used by the work-stealing benchmarks whose
	// published steal returns ABORT on a lost race.
	RelaxStealAborts bool
	// ExecsPerRound is K, the number of executions gathered before each
	// repair (the realization of Algorithm 1's nondeterministic choice "?"
	// as an iteration count, §5.2). Default 1000.
	ExecsPerRound int
	// MaxRounds bounds the number of repair rounds. Default 12.
	MaxRounds int
	// FlushProb is the scheduler's flush probability (§6.5: ≈0.1 for TSO,
	// ≈0.5 for PSO). Zero selects the model-specific default; a negative
	// value explicitly requests probability 0 (never flush early — the low
	// end of the §6.5 Figure 5 sweep), which the zero-means-default
	// convention could not express.
	FlushProb float64
	// MaxStepsPerExec bounds each execution. Default 100000.
	MaxStepsPerExec int
	// Seed makes the whole synthesis deterministic. Executions use seeds
	// Seed + round*ExecsPerRound + i.
	Seed int64
	// Workers is the number of goroutines the per-round executions (and
	// the validation, redundancy, and CheckOnly trials) are fanned across.
	// Results are bit-identical for every value: the seed schedule is
	// unchanged and per-execution results are merged in execution-index
	// order, not completion order. Default runtime.NumCPU(); 1 forces the
	// serial path.
	Workers int
	// MergeFences enables the redundant-fence merge pass after synthesis
	// converges (§5.2). Default off; Table 3 runs use it.
	MergeFences bool
	// ValidateFences greedily re-tests each synthesized fence after
	// convergence: a fence whose removal leaves ValidateExecs executions
	// violation-free is dropped as redundant. This separates needed from
	// redundant fences — the distinction behind the paper's Figure 5
	// discussion of low flush probabilities inferring redundant fences.
	ValidateFences bool
	// ValidateExecs is the per-trial execution budget of the validation
	// pass (default: 3 * ExecsPerRound, set by fill). FindRedundantFences
	// has a separate per-fence budget knob, execsPerFence, whose default
	// is 2 * ExecsPerRound.
	ValidateExecs int
	// NoMinimize disables minimal-model selection (the paper's behaviour
	// is minimization): instead of enforcing the smallest satisfying
	// assignment of φ, the union of every predicate appearing in some
	// minimal solution is enforced — kept as an ablation knob.
	NoMinimize bool
	// EnforceWithCAS realizes ordering predicates as dummy-location CAS
	// instructions instead of fences (paper §4.2, TSO only).
	EnforceWithCAS bool
	// NoWitness disables counterexample capture (one extra traced
	// execution when the first violation is found).
	NoWitness bool
	// ExecTimeout bounds each round execution's wall-clock time (0 =
	// none). A run that exceeds it stops and is counted Inconclusive —
	// the guard against pathological schedules that MaxStepsPerExec alone
	// cannot bound in time. Wall-clock cuts are machine-dependent, so
	// leave it zero when bit-identical results across runs matter.
	ExecTimeout time.Duration
	// MaxItersPerExec bounds each execution's scheduler-loop iterations
	// (0 = none) — the deterministic analogue of ExecTimeout. The
	// load-starving portfolio phases can spin in deferral loops that make
	// no machine steps, so MaxStepsPerExec never trips; this budget counts
	// every loop iteration and cuts such executions identically on every
	// machine (they are judged Inconclusive, like a step-limit hit).
	MaxItersPerExec int
	// RoundTimeout bounds each round's execution batch (0 = none).
	// Executions still in flight when it expires stop and count
	// Inconclusive; not-yet-started ones are Skipped.
	RoundTimeout time.Duration
	// Deadline bounds the whole repair loop's wall-clock time (0 = none).
	// When it expires, the in-flight round is cut short, the rounds
	// completed so far are kept, and the Result reports Outcome ==
	// OutcomeAborted. The post-convergence validation and merge passes are
	// not covered; bound those with ValidateExecs.
	Deadline time.Duration
	// MinConclusive is the floor on the fraction of a round's execution
	// budget that must be conclusive (not step-limited, timed out,
	// errored, or skipped) for a violation-free round to count as
	// convergence — the guard against vacuous convergence, where a round
	// "sees no violations" only because nearly every run was cut off.
	// 0 selects the default 0.5; negative disables the floor.
	MinConclusive float64
	// MaxModels caps the solver's minimal-model enumeration per round
	// (0 = default 4096, negative = unlimited). SolverTimeout additionally
	// bounds the enumeration in wall clock (0 = none). Hitting either
	// budget degrades gracefully — the round enforces the best repair
	// found so far — and sets Result.SolverTruncated.
	MaxModels     int
	SolverTimeout time.Duration
	// OptionsHook, if non-nil, may rewrite the scheduler options of
	// synthesis-round execution (round, index) before it runs — the
	// fault-injection harness's entry point (internal/faultinject), also
	// usable for per-execution tuning. It is not applied to the
	// validation, redundancy, or CheckOnly trials.
	OptionsHook func(round, index int, opts sched.Options) sched.Options
	// StaticPrune consults the static delay-set analysis
	// (internal/staticanalysis) before and during synthesis: a program
	// whose delay set is empty is reported converged with zero dynamic
	// executions (StaticallyRobust), and each violating execution's repair
	// disjunction is filtered to the predicates on some static critical
	// cycle. Pruning is sound — if filtering would empty a non-empty
	// disjunction, the full disjunction is kept and the round's
	// PruneFallbacks counter records it. Default off; results with the
	// flag off are bit-identical to earlier versions.
	StaticPrune bool
	// NoExecCache disables the cross-phase execution caches (see
	// execcache.go): the per-worker verdict memo, which judges each
	// distinct history once, and the fence-touch outcome transfer, which
	// lets the validation and redundancy trials skip executions provably
	// unaffected by the dropped fences. Both caches are exact, so results
	// are bit-identical with the flag on or off — the knob exists for
	// measurement and as the determinism-test control.
	NoExecCache bool
	// FreshSolver disables the cross-round persistent SAT solver: each
	// round's φ is solved on a brand-new Formula (and therefore a fresh
	// CDCL solver), as earlier versions did. The minimal-model set of a
	// monotone formula is unique and the solution order is a total sort,
	// so results are bit-identical with the flag on or off — the knob
	// exists for measurement and as the incremental-vs-fresh
	// differential-test control.
	FreshSolver bool
	// Metrics, when non-nil, receives the run's hot-path instrumentation:
	// execution/verdict/cache counters per worker shard, solver effort,
	// fence lifecycle, and the step/wall-time histograms. Nil (the default)
	// costs the instrumented paths one nil check per site — telemetry off
	// is benchmark-neutral.
	Metrics *telemetry.Metrics
	// Sink, when non-nil, receives the run's typed journal events
	// (RoundStart, Violation, SolverResult, FenceChange, RoundEnd,
	// Checkpoint, Converged) — the structured story a JSONL journal or the
	// /runz view is built from. The loop does not emit RunStart: only the
	// caller knows the program's source form, so CLI/eval emit it before
	// Synthesize. Emission happens on the coordinating goroutine only
	// (never inside worker executions), so a Sink adds no hot-path cost.
	Sink telemetry.Sink
	// Tracer, when non-nil, receives the run's timeline: run/round/phase
	// spans on the coordinator lane, sampled per-execution spans with
	// portfolio attribution on worker lanes, and instants for violations,
	// checkpoints, cache hits, and solver restarts. Purely observational —
	// results are bit-identical with tracing on or off, and nil costs the
	// instrumented sites one pointer check (no allocations).
	Tracer *trace.Tracer
	// Interrupt, when non-nil, requests a graceful stop: the loop polls it
	// (non-blocking) at each round boundary, right after journaling the
	// boundary's Checkpoint, and if it is closed the run ends with
	// OutcomeAborted and Result.Interrupted set. Because the stop lands
	// only on checkpointed boundaries, a journal cut this way resumes with
	// zero re-execution — this is how `dfence` answers SIGINT and how
	// dfenced drains in-flight jobs.
	Interrupt <-chan struct{}
	// Resume, when non-nil, restarts the loop from a journal checkpoint
	// (ResumeFromEvents): the checkpointed fences are re-applied to the
	// working clone, the completed rounds' statistics and counters are
	// restored, and execution begins at round Resume.Round+1 with the same
	// positional seeds the uninterrupted run would have used there. prog
	// must be the same original (un-fenced) program the journaled run
	// started from, and the determinism-relevant Config fields must match
	// the journal's RunStart; under those conditions the resumed Result is
	// bit-identical to the uninterrupted run's.
	Resume *ResumeState

	// mv is the nil-safe metrics view fill() caches so hot paths record
	// unconditionally through no-op handles when Metrics is nil.
	mv telemetry.Metrics
}

func (c *Config) fill() {
	if c.ExecsPerRound <= 0 {
		c.ExecsPerRound = 1000
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 12
	}
	if c.FlushProb < 0 {
		c.FlushProb = 0 // explicit "never flush early" (sentinel)
	} else if c.FlushProb == 0 {
		if c.Model == memmodel.TSO {
			c.FlushProb = 0.1
		} else {
			c.FlushProb = 0.5
		}
	}
	if c.MaxStepsPerExec <= 0 {
		c.MaxStepsPerExec = 100000
	}
	if c.ValidateExecs <= 0 {
		c.ValidateExecs = 3 * c.ExecsPerRound
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.MinConclusive == 0 {
		c.MinConclusive = 0.5
	} else if c.MinConclusive < 0 {
		c.MinConclusive = 0 // floor disabled: legacy convergence semantics
	}
	if c.MaxModels == 0 {
		c.MaxModels = 4096
	} else if c.MaxModels < 0 {
		c.MaxModels = 0 // unlimited for sat.Budget
	}
	c.mv = c.Metrics.View()
}

// solverBudget translates the config's solver knobs into a sat.Budget.
func (c *Config) solverBudget() sat.Budget {
	return sat.Budget{MaxModels: c.MaxModels, Timeout: c.SolverTimeout}
}

// Outcome classifies how a synthesis ended — the unambiguous replacement
// for reading the Converged/Unfixable boolean pair.
type Outcome uint8

const (
	// OutcomeInconclusive: the round budget ran out without a conclusive
	// answer — either violations persisted without an unfixable witness,
	// or a violation-free round fell below the MinConclusive floor
	// (vacuous convergence). Also the zero value.
	OutcomeInconclusive Outcome = iota
	// OutcomeConverged: a sufficiently conclusive round saw no violations.
	OutcomeConverged
	// OutcomeUnfixable: synthesis did not converge and some violating
	// execution had no candidate repairs (the paper's Table 3 "-").
	OutcomeUnfixable
	// OutcomeAborted: the Config.Deadline expired; Rounds holds whatever
	// completed before the cut.
	OutcomeAborted
)

func (o Outcome) String() string {
	switch o {
	case OutcomeInconclusive:
		return "inconclusive"
	case OutcomeConverged:
		return "converged"
	case OutcomeUnfixable:
		return "unfixable"
	case OutcomeAborted:
		return "aborted"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// Round records one repair round's statistics.
type Round struct {
	// Executions is the number of runs performed this round.
	Executions int
	// Violations is how many of them violated the specification.
	Violations int
	// Inconclusive counts executions that ran but produced no verdict:
	// step-limit hits, wall-clock timeouts, and errored (panicked) runs.
	Inconclusive int
	// Errors counts the executions whose interpreter or observer panicked
	// (a subset of Inconclusive); the structured errors land in
	// Result.ExecErrors.
	Errors int
	// Skipped counts executions never started because the round was cut
	// off (deadline, round timeout, or an externally cancelled batch).
	Skipped int
	// DistinctClauses is the number of distinct repair disjunctions
	// accumulated into φ.
	DistinctClauses int
	// Predicates is the number of distinct ordering predicates seen.
	Predicates int
	// Inserted lists the fences enforced at the end of the round.
	Inserted []synth.InsertedFence
	// Wall is the wall-clock time of the round's execution batch plus the
	// formula merge (the part the parallel engine accelerates).
	Wall time.Duration
	// ExecsPerSec is Executions divided by Wall — the engine's observed
	// throughput, so Workers speedups show up directly in Summary.
	ExecsPerSec float64
	// StaticDelayPairs is the size of the static delay set computed for the
	// round's program (0 when StaticPrune is off). Fences inserted by
	// earlier rounds shrink it.
	StaticDelayPairs int
	// PrunedPredicates counts the dynamically proposed predicates this
	// round discarded because they lie on no static critical cycle.
	PrunedPredicates int
	// PruneFallbacks counts the violating executions whose entire repair
	// disjunction fell outside the static delay set; their disjunctions
	// were kept unpruned (the soundness fallback).
	PruneFallbacks int
}

// execRate divides executions by wall time, guarding the degenerate
// timings sub-millisecond rounds can produce: a zero execution count is
// rate 0, and a zero (or negative) wall time — possible on platforms with
// coarse monotonic clocks — is clamped to one microsecond so the reported
// rate is a large finite upper bound instead of 0 or +Inf.
func execRate(execs int, wall time.Duration) float64 {
	if execs <= 0 {
		return 0
	}
	if wall < time.Microsecond {
		wall = time.Microsecond
	}
	return float64(execs) / wall.Seconds()
}

// ConclusiveFraction is the share of the round's execution budget that
// produced a verdict — the coverage number the MinConclusive floor guards.
func (r *Round) ConclusiveFraction() float64 {
	total := r.Executions + r.Skipped
	if total == 0 {
		return 0
	}
	return float64(r.Executions-r.Inconclusive) / float64(total)
}

// maxExecErrors caps how many structured execution errors a Result keeps;
// the per-round Errors counters still account for all of them.
const maxExecErrors = 8

// Result is the outcome of Synthesize.
type Result struct {
	// Program is the repaired program (a clone; the input is untouched).
	Program *ir.Program
	// Fences are all fences inserted across rounds, in insertion order.
	Fences []synth.InsertedFence
	// Rounds holds per-round statistics.
	Rounds []Round
	// Outcome classifies the ending: OutcomeConverged, OutcomeUnfixable,
	// OutcomeInconclusive, or OutcomeAborted. Prefer it over the
	// Converged/Unfixable pair, which cannot express the latter two.
	Outcome Outcome
	// Converged reports that the final round saw no violations and met
	// the MinConclusive coverage floor (Outcome == OutcomeConverged).
	Converged bool
	// Unfixable reports that synthesis did not converge and at least one
	// violating execution had no candidate repairs — fences cannot fix the
	// program under this specification (the paper's Table 3 "-" entries).
	Unfixable bool
	// EmptyRepairs counts violating executions whose repair disjunction
	// was empty across the whole synthesis (they may still be transient:
	// if synthesis converges afterwards, Unfixable stays false).
	EmptyRepairs int
	// UnfixableExample describes one empty-repair violation, if any.
	UnfixableExample string
	// TotalExecutions counts all runs across rounds.
	TotalExecutions int
	// TotalInconclusive counts, across rounds, the executions that
	// produced no verdict (inconclusive) or never ran (skipped) — the
	// complement of the synthesis's effective coverage.
	TotalInconclusive int
	// ExecErrors holds the first maxExecErrors structured errors from
	// executions whose interpreter or observer panicked; each names the
	// round, index, and seed that reproduce the failure with sched.Run.
	// The per-round Errors counters account for every occurrence.
	ExecErrors []*sched.ExecError
	// SolverTruncated reports that some round's minimal-model enumeration
	// hit the MaxModels/SolverTimeout budget: the enforced repairs were
	// the best found within budget, not a provably minimal choice.
	SolverTruncated bool
	// MergedAway is the number of redundant fences removed by the merge
	// pass (0 if disabled).
	MergedAway int
	// Redundant is the number of synthesized fences dropped by the
	// validation pass (0 if disabled). Fences then holds only the
	// validated, necessary fences.
	Redundant int
	// SynthesizedFences is the raw count before validation/merging.
	SynthesizedFences int
	// StaticallyRobust reports that the pre-round static analysis proved
	// the input program's delay set empty: every execution is sequentially
	// consistent under the model, so synthesis converged with zero dynamic
	// executions. Only set when Config.StaticPrune is on.
	StaticallyRobust bool
	// StaticCandidates and StaticDelayPairs record the initial program's
	// static analysis sizes (0 when StaticPrune is off).
	StaticCandidates int
	StaticDelayPairs int
	// PrunedPredicates totals the statically pruned predicates across
	// rounds.
	PrunedPredicates int
	// CacheHits counts execution verdicts answered by the caches: verdict
	// memo hits plus validation-trial executions whose outcome transferred
	// from the baseline instead of re-running. CacheMisses counts verdicts
	// computed afresh (and memoized). These are throughput diagnostics;
	// every other Result field is bit-identical whether caching is on or
	// off.
	CacheHits   int
	CacheMisses int
	// Interrupted reports that the run stopped because Config.Interrupt
	// fired at a round boundary (Outcome is OutcomeAborted). The journal's
	// last Checkpoint covers every completed round, so resuming from it
	// loses nothing.
	Interrupted bool
	// Witness is the schedule of the first violating execution observed
	// (against the program as it was in that round): a reproducible
	// counterexample the user can sched.Replay. Nil if no violation or
	// witness capture is disabled.
	Witness *sched.Trace
	// WitnessViolation describes what the witness violated.
	WitnessViolation string
}

// Summary renders a human-readable account of the synthesis. This is the
// single renderer every front-end shares — cmd/dfence and cmd/experiments
// both print it verbatim (optionally preceded by their own header lines),
// so prune/cache/outcome reporting cannot drift between them. The layout
// is pinned by the snapshot test in summary_test.go; extend it there when
// adding lines.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d executions=%d converged=%v outcome=%v",
		len(r.Rounds), r.TotalExecutions, r.Converged, r.Outcome)
	if r.TotalInconclusive > 0 {
		fmt.Fprintf(&b, " inconclusive=%d", r.TotalInconclusive)
	}
	if r.Unfixable {
		fmt.Fprintf(&b, " UNFIXABLE (%s)", r.UnfixableExample)
	}
	for i, rd := range r.Rounds {
		fmt.Fprintf(&b, "\nround %d: %d/%d violations, %d predicates, %d clauses, %d fences inserted in %s (%.0f execs/s)",
			i+1, rd.Violations, rd.Executions, rd.Predicates, rd.DistinctClauses,
			len(rd.Inserted), rd.Wall.Round(time.Millisecond), rd.ExecsPerSec)
		if rd.Inconclusive > 0 || rd.Skipped > 0 {
			fmt.Fprintf(&b, ", %d inconclusive (%d errored), %d skipped, %.0f%% conclusive",
				rd.Inconclusive, rd.Errors, rd.Skipped, 100*rd.ConclusiveFraction())
		}
		if rd.StaticDelayPairs > 0 || rd.PrunedPredicates > 0 || rd.PruneFallbacks > 0 {
			fmt.Fprintf(&b, ", static: %d delay pairs, %d predicates pruned",
				rd.StaticDelayPairs, rd.PrunedPredicates)
			if rd.PruneFallbacks > 0 {
				fmt.Fprintf(&b, " (%d fallbacks)", rd.PruneFallbacks)
			}
		}
	}
	if r.StaticallyRobust {
		b.WriteString("\nstatic analysis: delay set empty — program proved robust, no dynamic rounds needed")
	} else if r.StaticCandidates > 0 {
		fmt.Fprintf(&b, "\nstatic analysis: %d candidate pairs, %d on critical cycles; %d dynamic predicates pruned",
			r.StaticCandidates, r.StaticDelayPairs, r.PrunedPredicates)
	}
	fmt.Fprintf(&b, "\nfences inserted: %d", len(r.Fences))
	if r.SynthesizedFences > len(r.Fences) || r.Redundant > 0 {
		fmt.Fprintf(&b, " (synthesized %d, %d pruned as redundant)", r.SynthesizedFences, r.Redundant)
	}
	for _, f := range r.Fences {
		fmt.Fprintf(&b, "\n  %s", f)
		if r.Program != nil {
			fmt.Fprintf(&b, " %s", DescribeFence(r.Program, f))
		}
	}
	if r.MergedAway > 0 {
		fmt.Fprintf(&b, "\nmerged away: %d", r.MergedAway)
	}
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&b, "\nexec cache: %d hits, %d misses (%.0f%% hit rate)",
			r.CacheHits, r.CacheMisses, 100*float64(r.CacheHits)/float64(r.CacheHits+r.CacheMisses))
	}
	if r.SolverTruncated {
		b.WriteString("\nsolver enumeration truncated by budget (repairs best-effort, not provably minimal)")
	}
	if r.WitnessViolation != "" {
		fmt.Fprintf(&b, "\nwitness violation: %s", r.WitnessViolation)
	}
	for _, e := range r.ExecErrors {
		fmt.Fprintf(&b, "\nexec error: %v", e)
	}
	return b.String()
}

// verdict is the three-valued judgement of one execution.
type verdict uint8

const (
	// verdictClean: the execution completed and satisfied the spec.
	verdictClean verdict = iota
	// verdictViolation: the execution completed and violated the spec.
	verdictViolation
	// verdictInconclusive: the execution was cut off (step limit or
	// wall-clock budget) before a verdict was possible. Previously such
	// runs were silently lumped with "no violation"; now they are counted
	// per round so coverage is visible.
	verdictInconclusive
)

// judge classifies one execution against the configuration's specification.
func judge(cfg *Config, res *interp.Result) verdict {
	if res.StepLimitHit || res.TimedOut {
		return verdictInconclusive
	}
	if res.Violation != nil {
		return verdictViolation
	}
	ops := spec.CompleteOps(res.History)
	if cfg.RelaxStealAborts {
		ops = spec.RelaxStealAborts(ops)
	}
	if spec.Check(cfg.Criterion, ops, cfg.NewSpec, cfg.CheckGarbage) {
		return verdictClean
	}
	return verdictViolation
}

// Synthesize runs Algorithm 1 on a clone of prog and returns the repaired
// program together with the synthesis trace. The input program must be
// linked.
func Synthesize(prog *ir.Program, cfg Config) (*Result, error) {
	cfg.fill()
	if cfg.Criterion != spec.MemorySafety && cfg.NewSpec == nil {
		return nil, fmt.Errorf("core: criterion %v requires a sequential specification", cfg.Criterion)
	}
	runSpan := cfg.Tracer.Begin(0, trace.SpanRun, 0)
	defer runSpan.End()
	work := prog.Clone()
	result := &Result{Program: work}

	if cfg.StaticPrune {
		sa, err := staticanalysis.Analyze(work, cfg.Model)
		if err != nil {
			return nil, fmt.Errorf("core: static analysis rejected the input program: %w", err)
		}
		result.StaticCandidates = len(sa.Candidates)
		result.StaticDelayPairs = len(sa.Delays)
		if sa.Robust() {
			// No relaxation lies on a critical cycle: every execution is
			// sequentially consistent under the model, so there is nothing
			// for the dynamic loop to find. Converge in zero rounds.
			result.StaticallyRobust = true
			result.Converged = true
			result.Outcome = OutcomeConverged
			emitConverged(&cfg, result)
			return result, nil
		}
	}

	// The deadline context bounds the whole repair loop: rounds run under
	// it, and once it expires the in-flight round's remaining executions
	// are skipped and the loop records OutcomeAborted.
	ctx := context.Background()
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	aborted := false
	jcs := newJudgeCaches(&cfg)

	// Resume, if requested, is applied after the static robustness check
	// above: that check ran on the original program in the journaled run
	// too (a checkpoint exists only if the program was not statically
	// robust), while the fences below must land on the working clone so
	// the loop's per-round analysis and execution see the checkpointed
	// program state.
	startRound := 0
	witnessDone := false
	if cfg.Resume != nil {
		if err := applyResume(work, &cfg, result); err != nil {
			return nil, err
		}
		startRound = cfg.Resume.Round
		witnessDone = cfg.Resume.WitnessCaptured
	}

	// checkpoint journals a round boundary the loop is about to cross —
	// the durable commit record resume trusts — and then polls Interrupt:
	// a graceful stop lands exactly on the boundary just checkpointed, so
	// the interrupted run's journal resumes with zero lost work. Terminal
	// rounds are never checkpointed (their journals end in Converged
	// instead), which guarantees a resumed loop only re-enters rounds the
	// uninterrupted run also executed.
	checkpoint := func(completed int) (stop bool) {
		cfg.Tracer.Instant(0, trace.InstantCheckpoint, completed, 0)
		telemetry.Emit(cfg.Sink, telemetry.Checkpoint{
			Round:             completed,
			Fences:            telemetry.FencesOf(result.Fences),
			TotalExecutions:   result.TotalExecutions,
			TotalInconclusive: result.TotalInconclusive,
			EmptyRepairs:      result.EmptyRepairs,
			UnfixableExample:  result.UnfixableExample,
			PrunedPredicates:  result.PrunedPredicates,
			SolverTruncated:   result.SolverTruncated,
			WitnessCaptured:   result.Witness != nil || witnessDone,
		})
		select {
		case <-cfg.Interrupt:
			return true
		default:
			return false
		}
	}

	// endRound is the single exit path of a round's bookkeeping: it
	// appends the statistics, feeds the round-level metrics, closes the
	// round's trace span, and emits the RoundEnd journal event — so every
	// break/continue below reports identically.
	var roundSpan trace.Span
	endRound := func(stats *Round, round int) {
		roundSpan.End()
		result.Rounds = append(result.Rounds, *stats)
		cfg.mv.Rounds.Inc(0)
		cfg.mv.Skipped.Add(0, int64(stats.Skipped))
		cfg.mv.Predicates.Add(0, int64(stats.Predicates))
		cfg.mv.PrunedPredicates.Add(0, int64(stats.PrunedPredicates))
		cfg.mv.RoundWallUS.Observe(0, stats.Wall.Microseconds())
		telemetry.Emit(cfg.Sink, telemetry.RoundEnd{
			Round:           round + 1,
			Executions:      stats.Executions,
			Violations:      stats.Violations,
			Inconclusive:    stats.Inconclusive,
			Errors:          stats.Errors,
			Skipped:         stats.Skipped,
			DistinctClauses: stats.DistinctClauses,
			Predicates:      stats.Predicates,
			WallUS:          stats.Wall.Microseconds(),
			ExecsPerSec:     stats.ExecsPerSec,
			PrunedPreds:     stats.PrunedPredicates,
			PruneFallbacks:  stats.PruneFallbacks,
		})
	}

	// The repair formula is long-lived: each round resets φ to true via
	// BeginRound while the owned SAT solver keeps its learnt clauses,
	// activity, and predicate vocabulary warm across rounds. FreshSolver
	// rebuilds the Formula per round instead (the differential control).
	formula := synth.NewFormula()
	for round := startRound; round < cfg.MaxRounds; round++ {
		if cfg.FreshSolver {
			formula = synth.NewFormula() // φ := true on a fresh solver
		} else {
			formula.BeginRound() // φ := true, solver state retained
		}
		stats := Round{}
		var delaySet map[staticanalysis.Pair]bool
		if cfg.StaticPrune {
			// Re-analyse the working program: fences inserted by earlier
			// rounds kill pending paths and shrink the delay set, so each
			// round prunes against the current program, not the original.
			sa, err := staticanalysis.Analyze(work, cfg.Model)
			if err != nil {
				return nil, fmt.Errorf("core: static analysis failed in round %d: %w", round+1, err)
			}
			delaySet = sa.DelaySet()
			stats.StaticDelayPairs = len(sa.Delays)
		}
		cfg.mv.CurrentRound.Set(int64(round + 1))
		telemetry.Emit(cfg.Sink, telemetry.RoundStart{Round: round + 1, DelayPairs: stats.StaticDelayPairs})
		roundSpan = cfg.Tracer.Begin(0, trace.SpanRound, round+1)
		collectSpan := cfg.Tracer.Begin(0, trace.SpanCollect, round+1)
		started := time.Now()
		// Fan the round's K executions across cfg.Workers goroutines; the
		// outcome slots come back in execution order, so the merge below is
		// identical to the serial loop.
		outcomes := runRound(ctx, work, &cfg, jcs, round)
		// vioEvents collects this round's journal-worthy violations (one
		// per distinct disjunction, plus the first unfixable one); the
		// witness trace, captured after the merge, lands on the entry of
		// the witness execution before emission.
		var vioEvents []telemetry.Violation
		witnessEvIdx := -1
		emittedEmpty := false
		witnessIdx := -1
		for i, o := range outcomes {
			if !o.ran {
				stats.Skipped++
				continue
			}
			stats.Executions++
			result.TotalExecutions++
			if o.err != nil {
				stats.Errors++
				stats.Inconclusive++
				if len(result.ExecErrors) < maxExecErrors {
					result.ExecErrors = append(result.ExecErrors, o.err)
				}
				continue
			}
			if o.inconclusive {
				stats.Inconclusive++
				continue
			}
			if !o.violated {
				continue
			}
			stats.Violations++
			if witnessIdx < 0 {
				witnessIdx = i
			}
			if delaySet != nil && len(o.repairs) > 0 {
				kept := make([]synth.Predicate, 0, len(o.repairs))
				for _, p := range o.repairs {
					if delaySet[staticanalysis.Pair{L: p.L, K: p.K}] {
						kept = append(kept, p)
					}
				}
				if len(kept) == 0 {
					// Every proposed predicate fell outside the static delay
					// set. The static model should over-approximate the
					// dynamic engine, so this means the violation escaped the
					// abstraction; keep the full disjunction rather than
					// declare the execution unfixable.
					stats.PruneFallbacks++
				} else {
					stats.PrunedPredicates += len(o.repairs) - len(kept)
					result.PrunedPredicates += len(o.repairs) - len(kept)
					o.repairs = kept
				}
			}
			if len(o.repairs) == 0 {
				// No candidate repairs: this execution cannot be avoided by
				// the predicate class (Algorithm 1 aborts here; we record it
				// and keep going — later rounds may still fix everything
				// else, and if a clean round is reached the empty-repair
				// executions were spurious for the final program).
				result.EmptyRepairs++
				if result.UnfixableExample == "" {
					result.UnfixableExample = o.desc
				}
				if cfg.Sink != nil && !emittedEmpty {
					// Journal the first empty-disjunction violation of the
					// round (they recur heavily; RoundEnd's counters cover
					// the rest).
					emittedEmpty = true
					if i == witnessIdx {
						witnessEvIdx = len(vioEvents)
					}
					vioEvents = append(vioEvents, telemetry.Violation{
						Round: round + 1, Index: i, Seed: roundOpts(&cfg, round, i).Seed, Desc: o.desc,
					})
				}
				continue
			}
			if cfg.Sink != nil {
				// Journal one Violation per distinct disjunction: φ dedupes
				// clauses, so "did NumClauses grow" is exactly that test.
				pre := formula.NumClauses()
				if err := formula.AddExecution(o.repairs); err != nil {
					return nil, err
				}
				if formula.NumClauses() > pre {
					if i == witnessIdx {
						witnessEvIdx = len(vioEvents)
					}
					vioEvents = append(vioEvents, telemetry.Violation{
						Round: round + 1, Index: i, Seed: roundOpts(&cfg, round, i).Seed,
						Disjunction: telemetry.PredsOf(o.repairs),
					})
				}
				continue
			}
			if err := formula.AddExecution(o.repairs); err != nil {
				return nil, err
			}
		}
		result.TotalInconclusive += stats.Inconclusive + stats.Skipped
		stats.DistinctClauses = formula.NumClauses()
		stats.Predicates = formula.NumPredicates()
		stats.Wall = time.Since(started)
		stats.ExecsPerSec = execRate(stats.Executions, stats.Wall)
		collectSpan.End()
		if witnessIdx >= 0 && result.Witness == nil && !witnessDone && !cfg.NoWitness {
			// Re-run the lowest violating seed traced to capture a
			// reproducible counterexample schedule (the same execution the
			// serial loop would have traced first).
			opts := roundOpts(&cfg, round, witnessIdx)
			if wres, tr := sched.RunTraced(work.Clone(), cfg.Model, nil, opts); judge(&cfg, wres) == verdictViolation {
				result.Witness = tr
				result.WitnessViolation = describeViolation(&cfg, wres)
				if witnessEvIdx >= 0 {
					// The witness execution's journal entry carries the full
					// schedule (and the failure description) so `dfence
					// explain` can re-render it without re-running synthesis.
					vioEvents[witnessEvIdx].Trace = telemetry.TraceOf(tr)
					if vioEvents[witnessEvIdx].Desc == "" {
						vioEvents[witnessEvIdx].Desc = result.WitnessViolation
					}
				}
			}
		}
		for _, ve := range vioEvents {
			telemetry.Emit(cfg.Sink, ve)
		}

		if ctx.Err() != nil {
			// The deadline expired during (or before) this round. Keep the
			// partial round's statistics but trust no verdict from it.
			endRound(&stats, round)
			aborted = true
			break
		}
		if stats.Violations == 0 {
			endRound(&stats, round)
			if stats.ConclusiveFraction() >= cfg.MinConclusive {
				result.Converged = true
				break
			}
			// Vacuous round: no violations, but too few executions produced
			// a verdict for "no violations" to mean anything. Keep going
			// with fresh seeds rather than declaring convergence.
			if round+1 < cfg.MaxRounds {
				if checkpoint(round + 1) {
					aborted = true
					result.Interrupted = true
					break
				}
			}
			continue
		}
		if formula.Empty() {
			// Every violation this round was unfixable.
			endRound(&stats, round)
			break
		}
		var sst sat.Stats
		var sols [][]synth.Predicate
		var truncated bool
		solveSpan := cfg.Tracer.Begin(0, trace.SpanSolve, round+1)
		solveStart := time.Now()
		pprof.Do(ctx, pprof.Labels("dfence_phase", "solve"), func(context.Context) {
			sols, truncated = formula.MinimalSolutionsStats(cfg.solverBudget(), &sst)
		})
		solverWall := time.Since(solveStart)
		solveSpan.End()
		if sst.Restarts > 0 {
			cfg.Tracer.Instant(0, trace.InstantSolverRestarts, round+1, sst.Restarts)
		}
		cfg.mv.SolverModels.Add(0, int64(sst.Models))
		cfg.mv.SolverConflicts.Add(0, sst.Conflicts)
		cfg.mv.SolverDecisions.Add(0, sst.Decisions)
		cfg.mv.SolverPropagations.Add(0, sst.Propagations)
		cfg.mv.SolverRestarts.Add(0, sst.Restarts)
		cfg.mv.SolverClauses.Add(0, int64(sst.Clauses))
		cfg.mv.SolverWallUS.Observe(0, solverWall.Microseconds())
		if truncated {
			result.SolverTruncated = true
		}
		chosen := sols[0] // smallest, lexicographically first (deterministic)
		if cfg.NoMinimize {
			// Ablation: take the union of all predicates in the largest
			// minimal solution's place — emulate a non-minimal SAT model by
			// enforcing every predicate mentioned in some minimal solution.
			seen := map[synth.Predicate]bool{}
			chosen = chosen[:0:0]
			for _, s := range sols {
				for _, p := range s {
					if !seen[p] {
						seen[p] = true
						chosen = append(chosen, p)
					}
				}
			}
		}
		telemetry.Emit(cfg.Sink, telemetry.SolverResult{
			Round:        round + 1,
			Clauses:      sst.Clauses,
			Predicates:   stats.Predicates,
			Models:       sst.Models,
			Conflicts:    sst.Conflicts,
			Decisions:    sst.Decisions,
			Propagations: sst.Propagations,
			Restarts:     sst.Restarts,
			Truncated:    truncated,
			WallUS:       solverWall.Microseconds(),
			Chosen:       telemetry.PredsOf(chosen),
		})
		var fences []synth.InsertedFence
		var err error
		if cfg.EnforceWithCAS {
			fences, err = synth.EnforceWithCAS(work, cfg.Model, chosen)
		} else {
			fences, err = synth.Enforce(work, cfg.Model, chosen)
		}
		if err != nil {
			return nil, err
		}
		stats.Inserted = fences
		result.Fences = append(result.Fences, fences...)
		if len(fences) > 0 {
			cfg.mv.FencesInserted.Add(0, int64(len(fences)))
			telemetry.Emit(cfg.Sink, telemetry.FenceChange{
				Round: round + 1, Action: "insert",
				Fences: telemetry.FencesOf(fences), Count: len(fences),
			})
		}
		endRound(&stats, round)
		if len(fences) == 0 && stats.Violations > 0 {
			// No progress possible (all fences already present yet
			// violations persist): stop rather than loop.
			break
		}
		if round+1 < cfg.MaxRounds {
			if checkpoint(round + 1) {
				aborted = true
				result.Interrupted = true
				break
			}
		}
	}

	result.Unfixable = !result.Converged && result.EmptyRepairs > 0
	switch {
	case aborted:
		result.Outcome = OutcomeAborted
	case result.Converged:
		result.Outcome = OutcomeConverged
	case result.Unfixable:
		result.Outcome = OutcomeUnfixable
	default:
		result.Outcome = OutcomeInconclusive
	}
	result.SynthesizedFences = len(result.Fences)
	if cfg.ValidateFences && !cfg.EnforceWithCAS && result.Converged && len(result.Fences) > 0 {
		validateSpan := cfg.Tracer.Begin(0, trace.SpanValidate, 0)
		handled := false
		if !cfg.NoExecCache {
			var err error
			handled, err = validateFencesCached(prog, &cfg, result, jcs)
			if err != nil {
				return nil, err
			}
		}
		if !handled {
			if err := validateFences(prog, &cfg, result, jcs); err != nil {
				return nil, err
			}
		}
		validateSpan.End()
	}
	if cfg.MergeFences {
		minimizeSpan := cfg.Tracer.Begin(0, trace.SpanMinimize, 0)
		merged, err := synth.MergeFences(result.Program)
		if err != nil {
			return nil, err
		}
		result.MergedAway = merged
		if merged > 0 {
			cfg.mv.FencesRemoved.Add(0, int64(merged))
			telemetry.Emit(cfg.Sink, telemetry.FenceChange{Action: "merge", Count: merged})
		}
		minimizeSpan.End()
	}
	tallyJudgeCaches(jcs, result)
	emitConverged(&cfg, result)
	return result, nil
}

// emitConverged closes the journal with the terminal event (emitted for
// every outcome) and settles the gauge-style run totals.
func emitConverged(cfg *Config, result *Result) {
	telemetry.Emit(cfg.Sink, telemetry.Converged{
		Outcome:          result.Outcome.String(),
		Rounds:           len(result.Rounds),
		TotalExecutions:  result.TotalExecutions,
		Fences:           len(result.Fences),
		Redundant:        result.Redundant,
		MergedAway:       result.MergedAway,
		CacheHits:        result.CacheHits,
		CacheMisses:      result.CacheMisses,
		StaticallyRobust: result.StaticallyRobust,
	})
}

// validateFences greedily removes fences whose absence no longer produces
// violations, rebuilding the result program from the original plus the
// surviving fences. Validation runs use a disjoint seed block so fences are
// not kept merely because the synthesis schedules recur.
func validateFences(orig *ir.Program, cfg *Config, result *Result, jcs []judgeCache) error {
	budget := cfg.ValidateExecs // fill() defaulted this to 3 * ExecsPerRound
	seedBase := cfg.Seed + 1_000_003
	trial := func(fences []synth.InsertedFence) (bool, error) {
		p := orig.Clone()
		if _, err := synth.InsertFences(p, fences); err != nil {
			return false, err
		}
		// One violation decides the trial, so the batch early-cancels the
		// remaining workers as soon as any execution violates.
		_, found := violationBatch(p, cfg, jcs, budget, true, func(i int) sched.Options {
			return trialOpts(cfg, seedBase, i)
		})
		return !found, nil
	}
	kept := append([]synth.InsertedFence(nil), result.Fences...)
	// Try dropping fences newest-first: later rounds react to rarer
	// violations and are the likelier over-fit.
	for i := len(kept) - 1; i >= 0; i-- {
		dropped := kept[i]
		candidate := append(append([]synth.InsertedFence(nil), kept[:i]...), kept[i+1:]...)
		ok, err := trial(candidate)
		if err != nil {
			return err
		}
		if ok {
			kept = candidate
			result.Redundant++
			cfg.mv.FencesRemoved.Inc(0)
			telemetry.Emit(cfg.Sink, telemetry.FenceChange{
				Action: "drop-redundant",
				Fences: telemetry.FencesOf([]synth.InsertedFence{dropped}),
			})
		}
	}
	p := orig.Clone()
	final, err := synth.InsertFences(p, kept)
	if err != nil {
		return err
	}
	result.Program = p
	result.Fences = final
	return nil
}

// describeViolation renders what a violating execution violated: the
// interpreter fault if there was one, otherwise the specification
// checker's prose diagnosis of the failed history (which names the first
// offending operation), falling back to the raw operation list when the
// checker has nothing more specific to say.
func describeViolation(cfg *Config, res *interp.Result) string {
	if res.Violation != nil {
		return res.Violation.Error()
	}
	ops := spec.CompleteOps(res.History)
	if cfg.RelaxStealAborts {
		ops = spec.RelaxStealAborts(ops)
	}
	if d := spec.DescribeFailure(cfg.Criterion, ops, cfg.NewSpec, cfg.CheckGarbage); d != "" {
		return d
	}
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return "history not accepted: " + strings.Join(parts, " ")
}

// FindRedundantFences examines an already-fenced program (§6.3.1: "our
// tool discovered a redundant (store-load) fence in the take operation"):
// it greedily removes each existing fence instruction and re-tests; fences
// whose removal leaves every execution violation-free are reported as
// redundant. The returned labels identify the removable fences in prog;
// prog itself is not modified.
func FindRedundantFences(prog *ir.Program, cfg Config, execsPerFence int) ([]ir.Label, error) {
	cfg.fill()
	if cfg.Criterion != spec.MemorySafety && cfg.NewSpec == nil {
		return nil, fmt.Errorf("core: criterion %v requires a sequential specification", cfg.Criterion)
	}
	if execsPerFence <= 0 {
		execsPerFence = 2 * cfg.ExecsPerRound
	}
	jcs := newJudgeCaches(&cfg)
	verify := func(p *ir.Program) error {
		if err := staticanalysis.Verify(p); err != nil {
			return fmt.Errorf("core: program failed verification after fence removal: %w", err)
		}
		return nil
	}
	if !cfg.NoExecCache {
		if redundant, handled, err := findRedundantCached(prog, &cfg, jcs, execsPerFence, verify); handled {
			return redundant, err
		}
	}
	clean := func(p *ir.Program) bool {
		_, found := violationBatch(p, &cfg, jcs, execsPerFence, true, func(i int) sched.Options {
			return trialOpts(&cfg, cfg.Seed, i)
		})
		return !found
	}
	if !clean(prog) {
		return nil, fmt.Errorf("core: program violates its specification even with all fences present")
	}
	kept := prog.Fences()
	var redundant []ir.Label
	for i := len(kept) - 1; i >= 0; i-- {
		// Try without fence i (and without those already found redundant).
		trial := prog.Clone()
		drop := append(append([]ir.Label(nil), redundant...), kept[i])
		removeFences(trial, drop)
		if err := staticanalysis.Verify(trial); err != nil {
			return nil, fmt.Errorf("core: program failed verification after fence removal: %w", err)
		}
		if clean(trial) {
			redundant = append(redundant, kept[i])
		}
	}
	return redundant, nil
}

// removeFences deletes the fence instructions with the given labels,
// retargeting branches to their successors. A fence that is a function's
// last instruction has no successor: it is deleted without retargeting,
// unless a branch targets it (removal would leave the branch dangling, so
// the fence is kept — such functions fail Program.Validate anyway).
func removeFences(p *ir.Program, labels []ir.Label) {
	for _, l := range labels {
		f := p.FuncOf(l)
		if f == nil {
			continue
		}
		idx := f.IndexOf(l)
		if idx < 0 || f.Code[idx].Op != ir.OpFence {
			continue
		}
		if idx+1 < len(f.Code) {
			succ := f.Code[idx+1].Label
			for j := range f.Code {
				in := &f.Code[j]
				if in.Op != ir.OpBr && in.Op != ir.OpCondBr {
					continue
				}
				if in.Target == l {
					in.Target = succ
				}
				if in.Op == ir.OpCondBr && in.Target2 == l {
					in.Target2 = succ
				}
			}
		} else if branchesTo(f, l) {
			continue
		}
		f.Code = append(f.Code[:idx], f.Code[idx+1:]...)
		f.Rebuild()
	}
}

// branchesTo reports whether any branch in f targets label l.
func branchesTo(f *ir.Func, l ir.Label) bool {
	for j := range f.Code {
		in := &f.Code[j]
		switch in.Op {
		case ir.OpBr:
			if in.Target == l {
				return true
			}
		case ir.OpCondBr:
			if in.Target == l || in.Target2 == l {
				return true
			}
		}
	}
	return false
}

// CheckOnly runs n executions without synthesizing and reports how many
// violate the specification — used to validate programs (e.g. checking
// that Cilk's THE is not linearizable even under SC, §6.6) and by the
// scheduler-effectiveness benchmarks.
func CheckOnly(prog *ir.Program, cfg Config, n int) (violations int) {
	cfg.fill()
	violations, _ = violationBatch(prog, &cfg, newJudgeCaches(&cfg), n, false, func(i int) sched.Options {
		return sched.Options{
			Seed:      cfg.Seed + int64(i),
			FlushProb: cfg.FlushProb,
			MaxSteps:  cfg.MaxStepsPerExec,
			MaxIters:  cfg.MaxItersPerExec,
			PORWindow: 64,
			Tracer:    cfg.Tracer,
		}
	})
	return violations
}
