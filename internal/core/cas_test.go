package core

import (
	"testing"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/spec"
	"dfence/internal/synth"
)

// buildSB builds a store-buffering program whose assertion fails under
// TSO: each worker stores its flag then reads the other's; both reading 0
// is the non-SC outcome. The violating read is detected by asserting that
// at least one worker sees the other's store.
func buildSBAssert(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	for _, g := range []string{"x", "y", "r1", "r2"} {
		if err := p.AddGlobal(&ir.Global{Name: g, Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(name, st, ld, out string) {
		b := ir.NewFuncBuilder(p, name, 0)
		sa := b.GlobalAddr(st)
		one := b.Const(1)
		b.Store(sa, one, st)
		la := b.GlobalAddr(ld)
		v, _ := b.Load(la, ld)
		oa := b.GlobalAddr(out)
		b.Store(oa, v, out)
		b.Ret()
		if _, err := b.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	mk("w1", "x", "y", "r1")
	mk("w2", "y", "x", "r2")
	b := ir.NewFuncBuilder(p, "main", 0)
	t1 := b.Fork("w1")
	t2 := b.Fork("w2")
	b.Join(t1)
	b.Join(t2)
	r1a := b.GlobalAddr("r1")
	r1, _ := b.Load(r1a, "r1")
	r2a := b.GlobalAddr("r2")
	r2, _ := b.Load(r2a, "r2")
	either := b.BinOp(ir.BinOr, r1, r2)
	b.Assert(either, "SB: both loads bypassed both stores")
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEnforceWithCASRepairsSBOnTSO(t *testing.T) {
	p := buildSBAssert(t)
	cfg := Config{
		Model:          memmodel.TSO,
		Criterion:      spec.MemorySafety,
		ExecsPerRound:  400,
		MaxRounds:      6,
		Seed:           3,
		EnforceWithCAS: true,
	}
	// Sanity: the bug exists.
	if v := CheckOnly(p, cfg, 400); v == 0 {
		t.Fatal("SB assertion never failed under TSO")
	}
	res, err := Synthesize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CAS enforcement did not converge: %s", res.Summary())
	}
	if len(res.Fences) == 0 {
		t.Fatal("no enforcement inserted")
	}
	// The repaired program contains no fences — only dummy CAS sequences.
	if got := len(res.Program.Fences()); got != 0 {
		t.Errorf("CAS mode inserted %d fence instructions", got)
	}
	if res.Program.Global(synth.DummyCASGlobal) == nil {
		t.Error("dummy CAS global missing")
	}
	foundCas := false
	for _, name := range res.Program.FuncNames() {
		for _, in := range res.Program.Funcs[name].Code {
			if in.Op == ir.OpCas && in.Comment != "" && len(in.Comment) >= 5 && in.Comment[:5] == "dummy" {
				foundCas = true
			}
		}
	}
	if !foundCas {
		t.Error("no dummy CAS instruction found in repaired program")
	}
	// Repaired program is clean.
	clean := cfg
	clean.Seed = 12345
	if v := CheckOnly(res.Program, clean, 400); v != 0 {
		t.Errorf("repaired program still fails %d/400", v)
	}
}

func TestEnforceWithCASRejectsPSO(t *testing.T) {
	p := buildSBAssert(t)
	if _, err := synth.EnforceWithCAS(p, memmodel.PSO, []synth.Predicate{{L: 0, K: 1}}); err == nil {
		t.Fatal("CAS enforcement accepted PSO")
	}
}

func TestFenceAndCASEnforcementAgree(t *testing.T) {
	// Both enforcement modes must repair the same program.
	pf := buildSBAssert(t)
	cfgF := Config{
		Model: memmodel.TSO, Criterion: spec.MemorySafety,
		ExecsPerRound: 400, MaxRounds: 6, Seed: 3,
	}
	rf, err := Synthesize(pf, cfgF)
	if err != nil {
		t.Fatal(err)
	}
	if !rf.Converged {
		t.Fatalf("fence mode did not converge: %s", rf.Summary())
	}
	// Same predicates, hence same After labels, in both modes.
	pc := buildSBAssert(t)
	cfgC := cfgF
	cfgC.EnforceWithCAS = true
	rc, err := Synthesize(pc, cfgC)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Converged {
		t.Fatalf("CAS mode did not converge: %s", rc.Summary())
	}
	if len(rf.Fences) != len(rc.Fences) {
		t.Errorf("fence mode placed %d, CAS mode %d", len(rf.Fences), len(rc.Fences))
	}
}

func TestValidationSkippedInCASMode(t *testing.T) {
	p := buildSBAssert(t)
	cfg := Config{
		Model: memmodel.TSO, Criterion: spec.MemorySafety,
		ExecsPerRound: 400, MaxRounds: 6, Seed: 3,
		EnforceWithCAS: true, ValidateFences: true,
	}
	res, err := Synthesize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Redundant != 0 {
		t.Error("validation ran in CAS mode")
	}
}
