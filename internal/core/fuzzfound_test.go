package core_test

// Regressions found by the differential fuzzing harness (internal/proggen,
// `dfence fuzz`). Each case is a shrunk reproduction from a real campaign
// divergence, kept here so the bug class stays fixed.

import (
	"testing"

	"dfence/internal/core"
	"dfence/internal/lang"
	"dfence/internal/memmodel"
	"dfence/internal/proggen"
	"dfence/internal/sched"
	"dfence/internal/spec"
)

// fuzz2plus2W is the fuzzer's shrunk reproduction of a 2+2W-style write
// cycle (campaign seed 1, corpus entry 9, PSO). The forbidden outcome
// g0==0 && g1==0 needs t0's g1=0 to commit after t1's g1=3 AND t1's g0=0
// to commit after both of t0's g0=1 — so a correct repair must order the
// store pair in *both* threads.
const fuzz2plus2W = `
int g0 = 0;
int g1 = 0;

void t0() {
  int l0 = 0;
  g1 = l0;
  int _c0 = 0;
  while (_c0 < 2) {
    g0 = 1;
    _c0 = _c0 + 1;
  }
}

void t1() {
  int l0 = 0;
  g0 = l0;
  g1 = 3;
}

int main() {
  int h0 = fork t0();
  int h1 = fork t1();
  join h0;
  join h1;
  assert(!(g0 == 0 && g1 == 0));
  print(g0);
  print(g1);
  return 0;
}
`

// TestFuzzFound2Plus2WUnderFenced reproduces the harness's first real
// find (campaign seed 1, corpus entry 9, reported as under-fenced
// synthesis under PSO): synthesis used to converge after fencing only
// one thread. The witness for the residual violation needs the
// *other* thread's buffered store to outlive the writing thread itself —
// the scheduler force-flushed finished threads' buffers on every pick, so
// that schedule was exponentially suppressed and the violation-free round
// was a mirage. With the flush-delaying coin extended to finished threads
// and the starvation discipline cycled into synthesis rounds, the repair
// loop sees the residual and fences both threads.
func TestFuzzFound2Plus2WUnderFenced(t *testing.T) {
	prog := lang.MustCompile(fuzz2plus2W)
	cfg := core.Config{
		Model:         memmodel.PSO,
		Criterion:     spec.MemorySafety,
		ExecsPerRound: 240,
		MaxRounds:     10,
		FlushProb:     0.3,
		Seed:          proggen.ProgSeed(1, 9), // the campaign's exact seed
		Workers:       1,
	}
	res, err := core.Synthesize(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.OutcomeConverged {
		t.Fatalf("outcome = %v, want converged", res.Outcome)
	}
	if len(res.Fences) < 2 {
		t.Fatalf("converged with %d fence(s), want at least one per thread: %v", len(res.Fences), res.Fences)
	}
	em := proggen.Enumerate(res.Program, memmodel.PSO, proggen.EnumOptions{})
	if !em.Complete {
		t.Fatalf("enumeration of the repaired program incomplete (%d states)", em.States)
	}
	if em.HasViolation() {
		t.Errorf("repaired program still violates per exhaustive enumeration: %v", em.SortedViolations())
	}
}

// TestFuzzFoundDeadThreadDelay pins the scheduler half of the fix at its
// own layer: a finished thread's buffered store must be delayable past
// another thread's entire run. Under the starvation discipline the 2+2W
// forbidden outcome is reachable within a small, fixed budget; before the
// fix the forced flush-on-pick made it vanishingly rare.
func TestFuzzFoundDeadThreadDelay(t *testing.T) {
	prog := lang.MustCompile(fuzz2plus2W)
	for seed := int64(0); seed < 400; seed++ {
		res := sched.Run(prog, memmodel.PSO, nil, sched.Options{
			Seed:      seed,
			FlushProb: 0.1,
			MaxSteps:  20000,
			PORWindow: 64,
			Starve:    true,
		})
		if res.Violation != nil {
			return // witness reached
		}
	}
	t.Fatal("2+2W write-cycle violation unreachable in 400 starved executions — dead-thread store delay regressed")
}
