// Cross-phase execution caching. Two exact caches sit between the engine
// and Algorithm 1's verdict/trial logic:
//
//  1. The verdict memo: judging an execution (spec.CompleteOps + the
//     sequentialization search) is a pure function of the recorded
//     history, so each worker memoizes verdict-by-history. Round
//     executions under the demonic scheduler produce heavily recurring
//     histories, and the memo persists across rounds AND into the
//     validation pass — the sequentialization DFS runs once per distinct
//     history instead of once per execution.
//
//  2. The fence-touch outcome transfer: the validation and redundancy
//     trials re-run the same seed block against programs differing only
//     in which fences are present. An execution that never reaches a
//     fence is bit-identical with or without it (same instruction
//     sequence, same RNG draws, same history), so its verdict transfers
//     to every candidate program whose dropped fences it never touched.
//     Trials are compiled with interp.CompileWatched, which records per
//     seed the bitmask of fences the execution reached; a trial then
//     runs only the seeds whose outcome the candidate could actually
//     change. The validation pass arms this baseline opportunistically:
//     a failed drop early-stops exactly like the uncached pass (no
//     baseline cost), while a successful drop necessarily ran its whole
//     seed block clean — the same executions the uncached pass pays for —
//     and those watched results become the baseline for every later
//     trial. The redundancy scan seeds the baseline from its all-fences
//     cleanliness check, which the uncached scan runs in full anyway.
//
// Both caches are exact — they skip recomputation, never approximate it —
// so synthesis results are bit-identical with Config.NoExecCache on or
// off (the determinism tests in determinism_test.go enforce this).
package core

import (
	"context"
	"encoding/binary"

	"dfence/internal/interp"
	"dfence/internal/ir"
	"dfence/internal/sched"
	"dfence/internal/spec"
	"dfence/internal/synth"
	"dfence/internal/telemetry"
	"dfence/internal/trace"
)

// maxJudgeMemoEntries bounds each worker's verdict memo. At the cap the
// memo stops inserting (lookups keep working), so a pathological workload
// with unbounded distinct histories degrades to the uncached cost plus
// one map probe instead of growing without bound.
const maxJudgeMemoEntries = 1 << 16

// judgeCache is one worker's verdict memo. It is owned by the reduce
// calls of a single batch worker index (the worker-ownership invariant in
// sched/batch.go), so no locking is needed; a slice of them indexed by
// worker is shared across every batch of one synthesis, which is what
// carries hits across rounds and into the validation trials.
type judgeCache struct {
	memo map[string]verdict
	key  []byte // scratch for the alloc-free map[string(bytes)] probe
	// ck owns the reusable checker state (memo table, partition buffers,
	// recycled spec states) that makes cache misses cheap too.
	ck           spec.Checker
	hits, misses int64
}

// newJudgeCaches returns one verdict memo per worker, or nil when the
// config disables caching (judgeWorker falls back to plain judge).
func newJudgeCaches(cfg *Config) []judgeCache {
	if cfg.NoExecCache {
		return nil
	}
	return make([]judgeCache, cfg.Workers)
}

// tally adds the caches' hit/miss counters to the result.
func tallyJudgeCaches(jcs []judgeCache, result *Result) {
	for i := range jcs {
		result.CacheHits += int(jcs[i].hits)
		result.CacheMisses += int(jcs[i].misses)
	}
}

// judgeWorker is judge with the calling worker's verdict memo. The memo
// only covers the history check: step-limited, timed-out, and
// interpreter-detected violations are classified directly from the
// result, exactly as judge does.
func judgeWorker(cfg *Config, jcs []judgeCache, worker int, res *interp.Result) verdict {
	if res.StepLimitHit || res.TimedOut {
		return verdictInconclusive
	}
	if res.Violation != nil {
		return verdictViolation
	}
	if jcs == nil || worker >= len(jcs) {
		return judge(cfg, res)
	}
	jc := &jcs[worker]
	jc.key = appendHistoryKey(jc.key[:0], res.History)
	if v, ok := jc.memo[string(jc.key)]; ok {
		jc.hits++
		cfg.mv.CacheHits.Inc(worker)
		cfg.Tracer.InstantSampled(worker+1, trace.InstantCacheHit, 0, 0)
		return v
	}
	v := judgeMiss(cfg, jc, res)
	jc.misses++
	cfg.mv.CacheMisses.Inc(worker)
	if jc.memo == nil {
		jc.memo = make(map[string]verdict, 256)
	}
	if len(jc.memo) < maxJudgeMemoEntries {
		jc.memo[string(jc.key)] = v
	}
	return v
}

// judgeMiss is judge's history check on the worker's reusable Checker:
// identical verdicts, none of the per-call allocations.
func judgeMiss(cfg *Config, jc *judgeCache, res *interp.Result) verdict {
	ops := jc.ck.CompleteOps(res.History)
	if cfg.RelaxStealAborts {
		ops = jc.ck.RelaxStealAborts(ops)
	}
	if jc.ck.Check(cfg.Criterion, ops, cfg.NewSpec, cfg.CheckGarbage) {
		return verdictClean
	}
	return verdictViolation
}

// appendHistoryKey serializes a history into dst as a memo key. The
// encoding is injective (op names are NUL-terminated, counts are
// explicit), so two executions share a key exactly when their observable
// histories are identical — the condition under which the verdict is
// guaranteed equal.
func appendHistoryKey(dst []byte, evs []interp.Event) []byte {
	for _, e := range evs {
		dst = append(dst, byte(e.Kind))
		dst = binary.AppendVarint(dst, int64(e.Thread))
		dst = append(dst, e.Op...)
		dst = append(dst, 0)
		dst = binary.AppendVarint(dst, int64(len(e.Args)))
		for _, a := range e.Args {
			dst = binary.AppendVarint(dst, a)
		}
		if e.HasRet {
			dst = append(dst, 1)
			dst = binary.AppendVarint(dst, e.Ret)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// --- fence-touch outcome transfer ---

// trialOut records one watched trial execution: whether it ran (an
// early-cancelled batch leaves abandoned slots), whether it violated, and
// the watch-order bitmask of fences it reached.
type trialOut struct {
	ran      bool
	violated bool
	mask     uint64
}

// watchedBatch runs the executions seeds[k] (k in order) of the watched
// compile c and reports, per seed, the violation verdict and the touched
// bitmask. With stopEarly the first violation cancels the rest — callers
// use the full per-seed data only when no violation was found, in which
// case every slot completed.
func watchedBatch(c *interp.Compiled, cfg *Config, jcs []judgeCache, seeds []int, optsFor func(i int) sched.Options, stopEarly bool) []trialOut {
	return sched.RunBatchCompiled(context.Background(), c, cfg.Model, len(seeds), cfg.Workers, nil,
		func(k int) sched.Options { return optsFor(seeds[k]) },
		func(k, worker int, _ interp.Observer, res *interp.Result, err *sched.ExecError) (trialOut, bool) {
			cfg.mv.Executions.Inc(worker)
			if err != nil {
				// The touched mask of a panicked execution is unknowable, so
				// report every fence touched: the seed is re-run in every
				// trial, exactly as the uncached pass would.
				cfg.mv.Panics.Inc(worker)
				return trialOut{ran: true, mask: ^uint64(0)}, false
			}
			v := judgeWorker(cfg, jcs, worker, res) == verdictViolation
			if v {
				cfg.mv.Violations.Inc(worker)
			}
			return trialOut{ran: true, violated: v, mask: res.FenceTouched}, v && stopEarly
		})
}

// baseEntry is the baseline record of one trial seed: whether the
// current fence set's execution at that seed is known (and clean — only
// clean runs are recorded), and the canonical mask (bit = fence's index
// in the original fence list) of fences it reached. Unknown seeds are
// must-run for every trial.
type baseEntry struct {
	known   bool
	touched uint64
}

// fenceTrialCache drives the outcome transfer for one greedy
// fence-dropping pass. Fences are identified by their index in the
// original list (the canonical bit), which stays stable as the kept set
// shrinks.
type fenceTrialCache struct {
	cfg     *Config
	jcs     []judgeCache
	optsFor func(i int) sched.Options
	budget  int
	base    []baseEntry
	// skipped counts executions whose verdict transferred from the
	// baseline instead of running.
	skipped int
}

// canonicalize maps a watch-order touched mask to canonical fence bits.
func canonicalize(mask uint64, bits []int) uint64 {
	var out uint64
	for w, bit := range bits {
		if mask&(1<<uint(w)) != 0 {
			out |= 1 << uint(bit)
		}
	}
	return out
}

// seedBaseline records the full-seed-block baseline from a violation-free
// pass: out[k] is seed k's run against the current fence set, bits[w] the
// canonical bit of watch index w.
func (fc *fenceTrialCache) seedBaseline(out []trialOut, bits []int) {
	fc.base = make([]baseEntry, len(out))
	for k, o := range out {
		fc.base[k] = baseEntry{known: true, touched: canonicalize(o.mask, bits)}
	}
}

// mustRun returns the seeds whose verdict the candidate (current set
// minus the fences in dropMask) could change: seeds with no baseline
// record yet, and clean runs that reached a dropped fence. Every other
// seed's execution is bit-identical under the candidate, so its clean
// verdict transfers.
func (fc *fenceTrialCache) mustRun(dropMask uint64) []int {
	var seeds []int
	for k := range fc.base {
		if !fc.base[k].known || fc.base[k].touched&dropMask != 0 {
			seeds = append(seeds, k)
		}
	}
	fc.skipped += fc.budget - len(seeds)
	return seeds
}

// trial runs the candidate compile over the must-run seeds and reports
// whether any violated. A violated trial leaves the baseline untouched
// (its partial results describe a program that is not becoming the kept
// set). A clean trial ran every must-run seed, the drop succeeds, and
// the candidate becomes the new kept set — so the trial's own watched
// results refresh the baseline entries of the seeds that ran, while the
// transferred seeds' entries stay valid verbatim (their executions are
// bit-identical under the new set and their masks cannot contain the
// dropped bit). This is what arms the cache without a dedicated
// baseline pass in validation.
func (fc *fenceTrialCache) trial(c *interp.Compiled, seeds []int, bits []int) bool {
	if len(seeds) == 0 {
		return false
	}
	out := watchedBatch(c, fc.cfg, fc.jcs, seeds, fc.optsFor, true)
	for _, o := range out {
		if o.ran && o.violated {
			return true
		}
	}
	for k, o := range out {
		fc.base[seeds[k]] = baseEntry{known: true, touched: canonicalize(o.mask, bits)}
	}
	return false
}

// validateFencesCached is validateFences with the outcome transfer. It
// reports handled == false (leaving result untouched) when the fence set
// cannot be watched — more fences than interp.MaxWatchedFences, or an
// insertion-site collision — in which case the caller falls back to the
// uncached pass. The kept/dropped decisions are bit-identical to the
// uncached pass: each trial's any-violation verdict is computed over the
// same seed block, with provably unchanged executions answered from the
// baseline instead of re-run.
func validateFencesCached(orig *ir.Program, cfg *Config, result *Result, jcs []judgeCache) (handled bool, err error) {
	if len(result.Fences) > interp.MaxWatchedFences {
		return false, nil
	}
	seedBase := cfg.Seed + 1_000_003
	fc := &fenceTrialCache{
		cfg: cfg, jcs: jcs, budget: cfg.ValidateExecs,
		optsFor: func(i int) sched.Options {
			return trialOpts(cfg, seedBase, i)
		},
	}
	// kept[j] pairs each surviving fence with its canonical bit (index in
	// the original Fences list).
	type keptFence struct {
		f   synth.InsertedFence
		bit int
	}
	kept := make([]keptFence, len(result.Fences))
	for i, f := range result.Fences {
		kept[i] = keptFence{f: f, bit: i}
	}
	// compile rebuilds orig + the given fences and watches each inserted
	// fence; bits[w] is the canonical bit of watch index w. A skipped
	// insertion (site collision) breaks the watch mapping and is reported
	// as unhandled.
	compile := func(ks []keptFence) (*interp.Compiled, []int, error) {
		p := orig.Clone()
		ins := make([]synth.InsertedFence, len(ks))
		bits := make([]int, len(ks))
		for j, k := range ks {
			ins[j] = k.f
			bits[j] = k.bit
		}
		final, ierr := synth.InsertFences(p, ins)
		if ierr != nil {
			return nil, nil, ierr
		}
		if len(final) != len(ks) {
			return nil, nil, nil // collision: caller falls back
		}
		watch := make([]ir.Label, len(final))
		for j, f := range final {
			watch[j] = f.Label
		}
		c, cerr := interp.CompileWatched(p, watch)
		if cerr != nil {
			return nil, nil, cerr
		}
		return c, bits, nil
	}

	// Compile the full set once, purely to detect unwatchable fence sets
	// (insertion-site collisions) before mutating the result: no executions
	// run against it. The baseline arms itself from the first clean trial.
	if baseC, _, cerr := compile(kept); cerr != nil || baseC == nil {
		return false, cerr
	}
	fc.base = make([]baseEntry, fc.budget)

	for i := len(kept) - 1; i >= 0; i-- {
		candidate := append(append([]keptFence(nil), kept[:i]...), kept[i+1:]...)
		seeds := fc.mustRun(1 << uint(kept[i].bit))
		if len(seeds) > 0 {
			c, bits, cerr := compile(candidate)
			if cerr != nil {
				return true, cerr
			}
			if c == nil {
				return true, errInsertCollision
			}
			if fc.trial(c, seeds, bits) {
				continue // a violation needs this fence: keep it
			}
		}
		dropped := kept[i].f
		kept = candidate
		result.Redundant++
		cfg.mv.FencesRemoved.Inc(0)
		telemetry.Emit(cfg.Sink, telemetry.FenceChange{
			Action: "drop-redundant",
			Fences: telemetry.FencesOf([]synth.InsertedFence{dropped}),
		})
	}

	p := orig.Clone()
	ins := make([]synth.InsertedFence, len(kept))
	for j, k := range kept {
		ins[j] = k.f
	}
	final, err := synth.InsertFences(p, ins)
	if err != nil {
		return true, err
	}
	result.Program = p
	result.Fences = final
	result.CacheHits += fc.skipped
	cfg.mv.CacheHits.Add(0, int64(fc.skipped))
	return true, nil
}

// findRedundantCached is FindRedundantFences' greedy loop with the
// outcome transfer. It reports handled == false when the program's fence
// count exceeds interp.MaxWatchedFences (the caller falls back to the
// uncached loop). The redundant set is bit-identical to the uncached
// loop's: trials run over the same seed block with provably unchanged
// executions answered from the baseline.
func findRedundantCached(prog *ir.Program, cfg *Config, jcs []judgeCache, execsPerFence int, verify func(*ir.Program) error) (redundant []ir.Label, handled bool, err error) {
	kept := prog.Fences()
	if len(kept) > interp.MaxWatchedFences {
		return nil, false, nil
	}
	fc := &fenceTrialCache{
		cfg: cfg, jcs: jcs, budget: execsPerFence,
		optsFor: func(i int) sched.Options {
			return trialOpts(cfg, cfg.Seed, i)
		},
	}
	baseC, cerr := interp.CompileWatched(prog, kept)
	if cerr != nil {
		return nil, false, nil // e.g. a watch label is not a fence: fall back
	}
	bits := make([]int, len(kept))
	for i := range bits {
		bits[i] = i
	}
	allSeeds := make([]int, execsPerFence)
	for i := range allSeeds {
		allSeeds[i] = i
	}
	// The all-fences baseline doubles as the initial cleanliness check.
	out := watchedBatch(baseC, cfg, jcs, allSeeds, fc.optsFor, false)
	for _, o := range out {
		if o.violated {
			return nil, true, errBaselineViolates
		}
	}
	fc.seedBaseline(out, bits)

	isRedundant := make([]bool, len(kept))
	for i := len(kept) - 1; i >= 0; i-- {
		trial := prog.Clone()
		drop := append(append([]ir.Label(nil), redundant...), kept[i])
		removeFences(trial, drop)
		if verr := verify(trial); verr != nil {
			return nil, true, verr
		}
		seeds := fc.mustRun(1 << uint(i))
		if len(seeds) > 0 {
			// Watch the fences surviving this candidate; labels are stable
			// across Clone, and removeFences leaves other fences' labels
			// untouched.
			var watch []ir.Label
			var wbits []int
			for j, l := range kept {
				if j != i && !isRedundant[j] {
					watch = append(watch, l)
					wbits = append(wbits, j)
				}
			}
			c, werr := interp.CompileWatched(trial, watch)
			if werr != nil {
				return nil, true, werr
			}
			if fc.trial(c, seeds, wbits) {
				continue // a violation needs this fence
			}
		}
		redundant = append(redundant, kept[i])
		isRedundant[i] = true
	}
	return redundant, true, nil
}

// errBaselineViolates mirrors the uncached loop's precondition error.
var errBaselineViolates = errBaselineViolatesT{}

type errBaselineViolatesT struct{}

func (errBaselineViolatesT) Error() string {
	return "core: program violates its specification even with all fences present"
}

// errInsertCollision reports a fence-insertion site collision appearing
// mid-pass after the initial compile succeeded — dropping a fence cannot
// create one, so this is a logic error, not an input condition.
var errInsertCollision = errInsertCollisionT{}

type errInsertCollisionT struct{}

func (errInsertCollisionT) Error() string {
	return "core: fence insertion collided mid-validation (watch mapping lost)"
}
