package core

import (
	"testing"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/sched"
	"dfence/internal/spec"
)

// buildSPSC constructs a minimal single-producer queue exhibiting the
// paper's Fig. 2b bug under PSO:
//
//	operation put(v): items[T] = v; T = T + 1        (needs st-st fence)
//	operation take():  t = T; if t == 0 return EMPTY; return items[t-1]
//
// main forks one owner (put(7)) and one consumer (take()).
// Under PSO, T can become visible before items[T], so take returns the
// uninitialized 0 — a value never put, violating SC against the deque
// spec. A store-store fence after the items store repairs it. Under TSO
// the FIFO buffer already orders the two stores.
func buildSPSC(t *testing.T) (*ir.Program, ir.Label, ir.Label) {
	t.Helper()
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "T", Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGlobal(&ir.Global{Name: "items", Size: 8}); err != nil {
		t.Fatal(err)
	}

	pb := ir.NewFuncBuilder(p, "put", 1).MarkOperation()
	v := pb.Param(0)
	ta := pb.GlobalAddr("T")
	tv, _ := pb.Load(ta, "T")
	ia := pb.GlobalAddr("items")
	at := pb.BinOp(ir.BinAdd, ia, tv)
	storeItems := pb.Store(at, v, "items[T]")
	one := pb.Const(1)
	t1 := pb.BinOp(ir.BinAdd, tv, one)
	storeT := pb.Store(ta, t1, "T")
	pb.Ret()
	if _, err := pb.Finish(); err != nil {
		t.Fatal(err)
	}

	tb := ir.NewFuncBuilder(p, "take", 0).MarkOperation()
	tta := tb.GlobalAddr("T")
	tt, _ := tb.Load(tta, "T")
	zero := tb.Const(0)
	isEmpty := tb.BinOp(ir.BinEq, tt, zero)
	emptyBr, haveBr := tb.CondBrF(isEmpty)
	haveBr.Here()
	tia := tb.GlobalAddr("items")
	onec := tb.Const(1)
	idx := tb.BinOp(ir.BinSub, tt, onec)
	at2 := tb.BinOp(ir.BinAdd, tia, idx)
	got, _ := tb.Load(at2, "items[t-1]")
	tb.RetVal(got)
	emptyBr.Here()
	empty := tb.Const(spec.EmptyVal)
	tb.RetVal(empty)
	if _, err := tb.Finish(); err != nil {
		t.Fatal(err)
	}

	ob := ir.NewFuncBuilder(p, "owner", 0)
	seven := ob.Const(7)
	ob.Call(ir.NoReg, "put", seven)
	ob.Ret()
	if _, err := ob.Finish(); err != nil {
		t.Fatal(err)
	}

	cb := ir.NewFuncBuilder(p, "consumer", 0)
	r := cb.NewReg()
	cb.Call(r, "take")
	cb.Ret()
	if _, err := cb.Finish(); err != nil {
		t.Fatal(err)
	}

	mb := ir.NewFuncBuilder(p, "main", 0)
	t1m := mb.Fork("owner")
	t2m := mb.Fork("consumer")
	mb.Join(t1m)
	mb.Join(t2m)
	mb.Ret()
	if _, err := mb.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p, storeItems, storeT
}

func TestCheckOnlyFindsPSOViolations(t *testing.T) {
	p, _, _ := buildSPSC(t)
	cfg := Config{Model: memmodel.PSO, Criterion: spec.SeqConsistency, NewSpec: spec.NewDeque, Seed: 1}
	if v := CheckOnly(p, cfg, 300); v == 0 {
		t.Fatal("no SC violations found under PSO in 300 runs")
	}
	cfgSC := cfg
	cfgSC.Model = memmodel.SC
	if v := CheckOnly(p, cfgSC, 300); v != 0 {
		t.Fatalf("%d violations under the SC memory model — program should be correct there", v)
	}
}

func TestSynthesizeInsertsStoreStoreFencePSO(t *testing.T) {
	p, storeItems, _ := buildSPSC(t)
	res, err := Synthesize(p, Config{
		Model:         memmodel.PSO,
		Criterion:     spec.SeqConsistency,
		NewSpec:       spec.NewDeque,
		ExecsPerRound: 300,
		MaxRounds:     6,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %s", res.Summary())
	}
	if res.Unfixable {
		t.Fatalf("marked unfixable: %s", res.Summary())
	}
	if len(res.Fences) != 1 {
		t.Fatalf("inserted %d fences, want exactly 1:\n%s", len(res.Fences), res.Summary())
	}
	f := res.Fences[0]
	if f.After != storeItems {
		t.Errorf("fence after L%d, want after the items store L%d", f.After, storeItems)
	}
	if f.Kind != ir.FenceStoreStore {
		t.Errorf("fence kind = %v, want store-store", f.Kind)
	}
	if f.Func != "put" {
		t.Errorf("fence in %s, want put", f.Func)
	}
	// Input program untouched.
	if len(p.Fences()) != 0 {
		t.Error("Synthesize mutated the input program")
	}
	// Repaired program no longer violates.
	cfg := Config{Model: memmodel.PSO, Criterion: spec.SeqConsistency, NewSpec: spec.NewDeque, Seed: 777}
	if v := CheckOnly(res.Program, cfg, 300); v != 0 {
		t.Errorf("repaired program still violates %d/300", v)
	}
}

func TestSynthesizeTSONeedsNoFence(t *testing.T) {
	p, _, _ := buildSPSC(t)
	res, err := Synthesize(p, Config{
		Model:         memmodel.TSO,
		Criterion:     spec.SeqConsistency,
		NewSpec:       spec.NewDeque,
		ExecsPerRound: 300,
		MaxRounds:     4,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Fences) != 0 {
		t.Fatalf("TSO run: converged=%v fences=%d, want converged with 0 fences\n%s",
			res.Converged, len(res.Fences), res.Summary())
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	p1, _, _ := buildSPSC(t)
	p2, _, _ := buildSPSC(t)
	cfg := Config{
		Model: memmodel.PSO, Criterion: spec.SeqConsistency, NewSpec: spec.NewDeque,
		ExecsPerRound: 200, MaxRounds: 5, Seed: 99,
	}
	a, err := Synthesize(p1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(p2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Fences) != len(b.Fences) || a.TotalExecutions != b.TotalExecutions {
		t.Fatalf("nondeterministic: %v vs %v", a.Summary(), b.Summary())
	}
	for i := range a.Fences {
		if a.Fences[i].After != b.Fences[i].After || a.Fences[i].Kind != b.Fences[i].Kind {
			t.Fatalf("fence %d differs: %v vs %v", i, a.Fences[i], b.Fences[i])
		}
	}
}

func TestSynthesizeUnfixable(t *testing.T) {
	// A program that fails its assertion on every execution regardless of
	// fences: no candidate predicates, must be flagged unfixable.
	p := ir.NewProgram()
	b := ir.NewFuncBuilder(p, "main", 0)
	z := b.Const(0)
	b.Assert(z, "always fails")
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(p, Config{
		Model:         memmodel.PSO,
		Criterion:     spec.MemorySafety,
		ExecsPerRound: 10,
		MaxRounds:     3,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unfixable {
		t.Fatalf("logic bug not flagged unfixable: %s", res.Summary())
	}
	if len(res.Fences) != 0 {
		t.Errorf("fences inserted for an unfixable bug: %v", res.Fences)
	}
}

func TestSynthesizeRequiresSpecForSC(t *testing.T) {
	p, _, _ := buildSPSC(t)
	if _, err := Synthesize(p, Config{Model: memmodel.PSO, Criterion: spec.SeqConsistency}); err == nil {
		t.Fatal("missing sequential spec accepted")
	}
}

func TestSynthesizeMemorySafetyOnlyIgnoresHistories(t *testing.T) {
	// Under the memory-safety criterion the SPSC SC violation (garbage
	// value) is NOT a violation — no fence should be inserted (the paper
	// §6.6: memory safety is usually too weak to trigger WSQ violations).
	p, _, _ := buildSPSC(t)
	res, err := Synthesize(p, Config{
		Model:         memmodel.PSO,
		Criterion:     spec.MemorySafety,
		ExecsPerRound: 200,
		MaxRounds:     3,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Fences) != 0 {
		t.Fatalf("memory-safety run inserted fences: %s", res.Summary())
	}
}

func TestWitnessCapturedAndReplayable(t *testing.T) {
	p, _, _ := buildSPSC(t)
	res, err := Synthesize(p, Config{
		Model:         memmodel.PSO,
		Criterion:     spec.SeqConsistency,
		NewSpec:       spec.NewDeque,
		ExecsPerRound: 300,
		MaxRounds:     6,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness == nil {
		t.Fatal("no witness captured despite violations")
	}
	if res.WitnessViolation == "" {
		t.Error("witness has no description")
	}
	// The witness replays against the ORIGINAL (unfenced) program and
	// reproduces a violating history.
	rep, ok := sched.Replay(p, nil, res.Witness)
	if !ok {
		t.Fatal("witness replay diverged on the original program")
	}
	ops := spec.CompleteOps(rep.History)
	if rep.Violation == nil && spec.Check(spec.SeqConsistency, ops, spec.NewDeque, false) {
		t.Error("witness replay did not reproduce the violation")
	}
}

func TestNoWitnessOption(t *testing.T) {
	p, _, _ := buildSPSC(t)
	res, err := Synthesize(p, Config{
		Model:         memmodel.PSO,
		Criterion:     spec.SeqConsistency,
		NewSpec:       spec.NewDeque,
		ExecsPerRound: 200,
		MaxRounds:     4,
		Seed:          42,
		NoWitness:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness != nil {
		t.Error("witness captured despite NoWitness")
	}
}
