// Journal-based checkpoint/resume for the synthesis loop.
//
// The loop emits a telemetry.Checkpoint after every round it intends to
// follow with another round; the event carries the cumulative fence set
// and Result counters as of that boundary. Because the whole run is a
// pure function of (program, Config) — seeds are Seed + round*K + i, the
// per-round repair formula starts empty, and the working program at round
// r is exactly the original plus the fences of rounds < r — a run killed
// anywhere can restart from its last checkpoint and produce a Result
// bit-identical to the uninterrupted run (wall-clock fields and cache
// counters aside, which no determinism contract covers). The partially
// completed round after the checkpoint is simply re-executed: its seeds,
// and therefore its violations, repairs, and fences, are the same ones
// the dead process was computing.
package core

import (
	"fmt"
	"time"

	"dfence/internal/ir"
	"dfence/internal/synth"
	"dfence/internal/telemetry"
)

// ResumeState is the decoded form of a round-boundary checkpoint: what
// Synthesize needs to skip rounds 1..Round and still return the same
// Result. Build one with ResumeFromEvents and install it as
// Config.Resume.
type ResumeState struct {
	// Round is the number of completed rounds; the loop restarts at
	// round Round+1 (index Round).
	Round int
	// Fences is the cumulative fence set in insertion order, re-applied to
	// the working clone before the loop starts.
	Fences []synth.InsertedFence
	// Rounds holds the completed rounds' statistics, rebuilt from the
	// journaled RoundStart/RoundEnd/FenceChange events.
	Rounds []Round
	// Cumulative Result counters as of the checkpoint.
	TotalExecutions   int
	TotalInconclusive int
	EmptyRepairs      int
	UnfixableExample  string
	PrunedPredicates  int
	SolverTruncated   bool
	// WitnessCaptured suppresses witness re-capture: the uninterrupted run
	// captured its counterexample in an earlier round, and that trace lives
	// on the journaled Violation event, not in the resumed Result.
	WitnessCaptured bool
}

// ResumeFromEvents folds a decoded journal (telemetry.ReadJournal /
// ReadJournalOptions with AllowTornTail, typically) into the resume state
// of its last checkpoint. A journal with no Checkpoint event returns
// (nil, nil): there is no completed round to resume from, and the caller
// starts the run fresh. Events after the last checkpoint belong to the
// round that died and are ignored.
func ResumeFromEvents(events []telemetry.Event) (*ResumeState, error) {
	cpIdx := -1
	var cp telemetry.Checkpoint
	for i, e := range events {
		if c, ok := e.(telemetry.Checkpoint); ok {
			cpIdx, cp = i, c
		}
	}
	if cpIdx < 0 {
		return nil, nil
	}
	fences, err := telemetry.InsertedFences(cp.Fences)
	if err != nil {
		return nil, fmt.Errorf("core: resume: %w", err)
	}
	rs := &ResumeState{
		Round:             cp.Round,
		Fences:            fences,
		TotalExecutions:   cp.TotalExecutions,
		TotalInconclusive: cp.TotalInconclusive,
		EmptyRepairs:      cp.EmptyRepairs,
		UnfixableExample:  cp.UnfixableExample,
		PrunedPredicates:  cp.PrunedPredicates,
		SolverTruncated:   cp.SolverTruncated,
		WitnessCaptured:   cp.WitnessCaptured,
	}
	// Rebuild the per-round statistics from the events before the
	// checkpoint. RoundEnd carries the counters, FenceChange(insert) the
	// round's fences, RoundStart the static delay-set size.
	delayPairs := map[int]int{}
	inserted := map[int][]synth.InsertedFence{}
	for _, e := range events[:cpIdx] {
		switch ev := e.(type) {
		case telemetry.RoundStart:
			delayPairs[ev.Round] = ev.DelayPairs
		case telemetry.FenceChange:
			if ev.Action == "insert" && ev.Round > 0 {
				ins, err := telemetry.InsertedFences(ev.Fences)
				if err != nil {
					return nil, fmt.Errorf("core: resume: round %d: %w", ev.Round, err)
				}
				inserted[ev.Round] = append(inserted[ev.Round], ins...)
			}
		case telemetry.RoundEnd:
			rs.Rounds = append(rs.Rounds, Round{
				Executions:       ev.Executions,
				Violations:       ev.Violations,
				Inconclusive:     ev.Inconclusive,
				Errors:           ev.Errors,
				Skipped:          ev.Skipped,
				DistinctClauses:  ev.DistinctClauses,
				Predicates:       ev.Predicates,
				Wall:             time.Duration(ev.WallUS) * time.Microsecond,
				ExecsPerSec:      ev.ExecsPerSec,
				StaticDelayPairs: delayPairs[ev.Round],
				Inserted:         inserted[ev.Round],
				PrunedPredicates: ev.PrunedPreds,
				PruneFallbacks:   ev.PruneFallbacks,
			})
		}
	}
	// The fences of round r are journaled before r's RoundEnd, so the map
	// lookup above misses them only when the journal is out of order —
	// reattach by round number for robustness.
	for i := range rs.Rounds {
		if rs.Rounds[i].Inserted == nil {
			rs.Rounds[i].Inserted = inserted[i+1]
		}
	}
	if len(rs.Rounds) != rs.Round {
		return nil, fmt.Errorf("core: resume: checkpoint says %d completed rounds but journal holds %d RoundEnd events before it",
			rs.Round, len(rs.Rounds))
	}
	return rs, nil
}

// applyResume installs a checkpoint's state into a fresh Synthesize call:
// the cumulative fences are re-inserted into the working clone (the same
// synth.InsertFences path `dfence explain` uses to rebuild a round's
// program, so labels come out identical to the original Enforce calls)
// and the completed rounds' statistics and counters are restored.
func applyResume(work *ir.Program, cfg *Config, result *Result) error {
	rs := cfg.Resume
	if rs.Round < 0 {
		return fmt.Errorf("core: resume: negative round %d", rs.Round)
	}
	if rs.Round > cfg.MaxRounds {
		return fmt.Errorf("core: resume: checkpoint round %d exceeds MaxRounds %d", rs.Round, cfg.MaxRounds)
	}
	if len(rs.Fences) > 0 {
		ins, err := synth.InsertFences(work, rs.Fences)
		if err != nil {
			return fmt.Errorf("core: resume: re-inserting checkpointed fences: %w", err)
		}
		result.Fences = ins
	}
	result.Rounds = append(result.Rounds, rs.Rounds...)
	result.TotalExecutions = rs.TotalExecutions
	result.TotalInconclusive = rs.TotalInconclusive
	result.EmptyRepairs = rs.EmptyRepairs
	result.UnfixableExample = rs.UnfixableExample
	result.PrunedPredicates = rs.PrunedPredicates
	result.SolverTruncated = rs.SolverTruncated
	return nil
}
