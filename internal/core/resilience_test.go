package core

import (
	"strings"
	"testing"

	"dfence/internal/ir"
	"dfence/internal/memmodel"
	"dfence/internal/spec"
)

// buildLivelock builds a program whose worker spins forever, so every
// execution exhausts its step budget — the workload behind the vacuous
// convergence guard.
func buildLivelock(t *testing.T) *ir.Program {
	t.Helper()
	p := ir.NewProgram()
	if err := p.AddGlobal(&ir.Global{Name: "x", Size: 1}); err != nil {
		t.Fatal(err)
	}
	b := ir.NewFuncBuilder(p, "spin", 0)
	addr := b.GlobalAddr("x")
	head := b.NextLabel()
	b.Load(addr, "x")
	b.Br(head)
	b.Ret()
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	m := ir.NewFuncBuilder(p, "main", 0)
	tid := m.Fork("spin")
	m.Join(tid)
	m.Ret()
	if _, err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAllStepLimitIsInconclusive: a program whose executions all hit the
// step limit never sees a violation, but that is not convergence — the
// MinConclusive floor must report OutcomeInconclusive.
func TestAllStepLimitIsInconclusive(t *testing.T) {
	cfg := Config{
		Model:           memmodel.PSO,
		Criterion:       spec.MemorySafety,
		ExecsPerRound:   8,
		MaxRounds:       2,
		MaxStepsPerExec: 2000,
		Seed:            1,
	}
	res, err := Synthesize(buildLivelock(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Outcome != OutcomeInconclusive {
		t.Fatalf("all-step-limit run reported converged=%v outcome=%v: %s",
			res.Converged, res.Outcome, res.Summary())
	}
	want := cfg.ExecsPerRound * cfg.MaxRounds
	if res.TotalInconclusive != want || res.TotalExecutions != want {
		t.Errorf("counted %d inconclusive of %d executions, want %d/%d",
			res.TotalInconclusive, res.TotalExecutions, want, want)
	}
	if !strings.Contains(res.Summary(), "outcome=inconclusive") {
		t.Errorf("Summary does not surface the outcome:\n%s", res.Summary())
	}
}

// TestMinConclusiveDisabled: a negative floor restores the legacy
// semantics — a violation-free round converges no matter how little of it
// was conclusive.
func TestMinConclusiveDisabled(t *testing.T) {
	cfg := Config{
		Model:           memmodel.PSO,
		Criterion:       spec.MemorySafety,
		ExecsPerRound:   8,
		MaxRounds:       2,
		MaxStepsPerExec: 2000,
		Seed:            1,
		MinConclusive:   -1,
	}
	res, err := Synthesize(buildLivelock(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Outcome != OutcomeConverged {
		t.Fatalf("disabled floor still blocked convergence: %s", res.Summary())
	}
	if len(res.Rounds) != 1 {
		t.Errorf("legacy semantics should stop after round 1, ran %d", len(res.Rounds))
	}
}

// TestConfigSentinels pins the fill() defaults and the negative sentinels
// of FlushProb, MinConclusive, and MaxModels.
func TestConfigSentinels(t *testing.T) {
	cases := []struct {
		name string
		in   Config
		want func(t *testing.T, c Config)
	}{
		{"tso default flush", Config{Model: memmodel.TSO}, func(t *testing.T, c Config) {
			if c.FlushProb != 0.1 {
				t.Errorf("FlushProb = %v, want 0.1", c.FlushProb)
			}
		}},
		{"pso default flush", Config{Model: memmodel.PSO}, func(t *testing.T, c Config) {
			if c.FlushProb != 0.5 {
				t.Errorf("FlushProb = %v, want 0.5", c.FlushProb)
			}
		}},
		{"explicit zero flush", Config{Model: memmodel.TSO, FlushProb: -1}, func(t *testing.T, c Config) {
			if c.FlushProb != 0 {
				t.Errorf("FlushProb = %v, want explicit 0", c.FlushProb)
			}
		}},
		{"explicit flush kept", Config{FlushProb: 0.25}, func(t *testing.T, c Config) {
			if c.FlushProb != 0.25 {
				t.Errorf("FlushProb = %v, want 0.25", c.FlushProb)
			}
		}},
		{"conclusive default", Config{}, func(t *testing.T, c Config) {
			if c.MinConclusive != 0.5 {
				t.Errorf("MinConclusive = %v, want 0.5", c.MinConclusive)
			}
		}},
		{"conclusive disabled", Config{MinConclusive: -1}, func(t *testing.T, c Config) {
			if c.MinConclusive != 0 {
				t.Errorf("MinConclusive = %v, want 0 (disabled)", c.MinConclusive)
			}
		}},
		{"conclusive kept", Config{MinConclusive: 0.8}, func(t *testing.T, c Config) {
			if c.MinConclusive != 0.8 {
				t.Errorf("MinConclusive = %v, want 0.8", c.MinConclusive)
			}
		}},
		{"models default", Config{}, func(t *testing.T, c Config) {
			if c.MaxModels != 4096 {
				t.Errorf("MaxModels = %v, want 4096", c.MaxModels)
			}
		}},
		{"models unlimited", Config{MaxModels: -1}, func(t *testing.T, c Config) {
			if c.MaxModels != 0 {
				t.Errorf("MaxModels = %v, want 0 (unlimited)", c.MaxModels)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.in
			c.fill()
			tc.want(t, c)
		})
	}
}
